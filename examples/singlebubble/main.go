// Single-bubble collapse against the Rayleigh model — the century-old
// reference the paper's introduction positions cloud simulations against
// ("current estimates of cavitation phenomena are largely based on the
// theory of single bubble collapse as developed ... by Lord Rayleigh").
//
// A vapor bubble at 0.0234 bar sits in liquid pressurized at 100 bar. The
// program integrates the classical Rayleigh–Plesset ODE and runs the full
// 3D compressible solver on the same configuration, printing both radius
// histories; the 3D collapse should track the incompressible ODE until
// compressibility effects take over near the final stage.
//
//	go run ./examples/singlebubble [-n 16] [-steps 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cubism"
	"cubism/internal/physics"
)

func main() {
	n := flag.Int("n", 16, "block edge in cells")
	blocks := flag.Int("blocks", 4, "blocks per dimension")
	steps := flag.Int("steps", 300, "3D solver steps")
	flag.Parse()

	const (
		bubbleR = 0.12 // in domain units
		pInf    = 100e5
		pV      = 0.0234e5
		rhoL    = 1000.0
	)

	// Classical reference: Rayleigh-Plesset with adiabatic vapor cushion.
	rp := physics.RayleighPlesset{
		R0:    bubbleR,
		PInf:  pInf,
		PB0:   pV,
		Rho:   rhoL,
		Kappa: 1.4,
	}
	tau := physics.RayleighCollapseTime(bubbleR, rhoL, pInf-pV)
	fmt.Fprintf(os.Stderr, "Rayleigh collapse time: %.4e\n", tau)
	times, radii, err := rp.Integrate(1.2*tau, tau/50)
	if err != nil {
		log.Fatal(err)
	}

	// 3D compressible solver on the same setup.
	cfg := cubism.Config{
		Blocks:    [3]int{*blocks, *blocks, *blocks},
		BlockSize: *n,
		Extent:    1.0,
		Init:      cubism.CloudField([]cubism.Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: bubbleR}}, 0.02),
		Steps:     *steps,
		DiagEvery: 5,
	}
	type sample struct{ t, r float64 }
	var sim3d []sample
	if _, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		if s.HasDiag {
			sim3d = append(sim3d, sample{s.Time, s.Diag.EquivRadius})
		}
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("# source, t/tau, R/R0")
	for i := range times {
		fmt.Printf("rayleigh-plesset, %.4f, %.4f\n", times[i]/tau, radii[i]/bubbleR)
	}
	r0 := 0.0
	for _, s := range sim3d {
		if r0 == 0 {
			r0 = s.r
		}
		fmt.Printf("solver-3d, %.4f, %.4f\n", s.t/tau, s.r/r0)
	}
	fmt.Fprintln(os.Stderr, "# shape: the 3D radius tracks the ODE early, then departs as")
	fmt.Fprintln(os.Stderr, "# compressibility radiates the collapse energy (Hickling & Plesset)")
}
