// Riemann problem validation suite: runs a battery of one-dimensional shock
// tube problems through the full 3D solver stack and reports the L1 error
// of each field against the exact solution of the generalized (stiffened
// gas) Riemann problem — the standard quantitative validation for the
// WENO5/HLLE/RK3 discretization at the heart of the paper.
//
//	go run ./examples/riemann [-cells 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// problem is one Riemann configuration.
type problem struct {
	name        string
	left, right physics.Prim
	tEnd        float64
}

func problems() []problem {
	ideal := 1 / (1.4 - 1)
	return []problem{
		{
			name:  "sod",
			left:  physics.Prim{Rho: 1, P: 1, G: ideal},
			right: physics.Prim{Rho: 0.125, P: 0.1, G: ideal},
			tEnd:  0.15,
		},
		{
			name:  "lax",
			left:  physics.Prim{Rho: 0.445, U: 0.698, P: 3.528, G: ideal},
			right: physics.Prim{Rho: 0.5, U: 0, P: 0.571, G: ideal},
			tEnd:  0.1,
		},
		{
			name:  "double-rarefaction",
			left:  physics.Prim{Rho: 1, U: -0.5, P: 0.4, G: ideal},
			right: physics.Prim{Rho: 1, U: 0.5, P: 0.4, G: ideal},
			tEnd:  0.12,
		},
		{
			// Liquid water shock tube in the stiffened gas: the paper's
			// liquid phase with a 10:1 pressure jump.
			name:  "stiffened-liquid",
			left:  physics.Prim{Rho: 1000, P: 1000e5, G: physics.Liquid.G(), Pi: physics.Liquid.P()},
			right: physics.Prim{Rho: 1000, P: 100e5, G: physics.Liquid.G(), Pi: physics.Liquid.P()},
			tEnd:  2e-4,
		},
	}
}

func main() {
	cells := flag.Int("cells", 64, "cells along x (multiple of 16)")
	flag.Parse()

	fmt.Println("problem              cells    L1(rho)      L1(u)        L1(p)/scale")
	for _, pb := range problems() {
		l1r, l1u, l1p := run(pb, *cells)
		fmt.Printf("%-20s %5d    %.5f      %.5f      %.5f\n", pb.name, *cells, l1r, l1u, l1p)
	}
	fmt.Println("\nErrors are first-order in h at shocks/contacts (the formal limit of any")
	fmt.Println("shock-capturing scheme); halving h should roughly halve each entry.")
}

// run integrates one problem and returns normalized L1 errors.
func run(pb problem, cells int) (l1r, l1u, l1p float64) {
	n := 16
	nbx := cells / n
	cfg := cluster.Config{
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{nbx, 1, 1},
		BlockSize: n,
		Extent:    1,
		BC:        grid.DefaultBC(),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			if x < 0.5 {
				return pb.left
			}
			return pb.right
		},
	}
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg)
		for r.Time < pb.tEnd {
			r.Advance()
		}
		exact := physics.RiemannExact{Left: pb.left, Right: pb.right}
		// Reference scales for normalization; the velocity scale is the
		// star-region speed (the natural magnitude of the induced flow).
		_, ustar, err := exact.Solve()
		if err != nil {
			log.Fatalf("%s: %v", pb.name, err)
		}
		rScale := math.Max(pb.left.Rho, pb.right.Rho)
		pScale := math.Max(pb.left.P, pb.right.P)
		uScale := math.Max(1e-12, math.Max(math.Abs(ustar),
			math.Max(math.Abs(pb.left.U), math.Abs(pb.right.U))))
		count := 0
		g := r.G
		for _, b := range g.Blocks {
			if b.Y != 0 || b.Z != 0 {
				continue
			}
			for ix := 0; ix < n; ix++ {
				gx := b.X*n + ix
				x, _, _ := g.CellCenter(gx, 0, 0)
				c := b.At(ix, 0, 0)
				cons := physics.Cons{
					R: float64(c[physics.QR]), RU: float64(c[physics.QU]),
					RV: float64(c[physics.QV]), RW: float64(c[physics.QW]),
					E: float64(c[physics.QE]), G: float64(c[physics.QG]), Pi: float64(c[physics.QP]),
				}
				got := cons.ToPrim()
				want := exact.Sample((x - 0.5) / r.Time)
				l1r += math.Abs(got.Rho-want.Rho) / rScale
				l1u += math.Abs(got.U-want.U) / uScale
				l1p += math.Abs(got.P-want.P) / pScale
				count++
			}
		}
		l1r /= float64(count)
		l1u /= float64(count)
		l1p /= float64(count)
	})
	if math.IsNaN(l1r) {
		log.Fatalf("%s produced NaN", pb.name)
	}
	return
}
