// Quickstart: a Sod shock tube through the full solver stack in ~40 lines.
//
// Runs the classic Riemann problem on a 64x16x16 grid (8 blocks of 16³ in
// x), prints per-step diagnostics, and reports the final throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cubism"
)

func main() {
	cfg := cubism.Config{
		Blocks:    [3]int{4, 1, 1}, // 4 blocks of 16³ along x
		BlockSize: 16,
		Extent:    1.0,
		Init:      cubism.SodInit,
		TEnd:      0.15,
		Steps:     10000, // bounded by TEnd
		DiagEvery: 10,
	}
	fmt.Println("Sod shock tube, 64x16x16 cells, WENO5/HLLE/RK3")
	summary, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		if s.HasDiag {
			fmt.Printf("step %4d  t=%.4f  dt=%.2e  max p=%.3f  Ekin=%.3e\n",
				s.Step, s.Time, s.DT, s.Diag.MaxPressure, s.Diag.KineticEnergy)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d steps to t=%.3f in %v (%.2f Mpoints/s)\n",
		summary.Steps, summary.SimTime, summary.WallTime.Round(1e6),
		summary.PointsPerSec/1e6)
	fmt.Println("\nKernel breakdown (paper Figure 7: RHS dominates):")
	fmt.Print(summary.Report)
}
