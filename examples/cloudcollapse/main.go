// Cloud cavitation collapse near a solid wall — a laptop-scale version of
// the paper's production run (§7), driven through the scenario registry: the
// same named case cmd/mpcf-sim (-scenario), cmd/mpcf-verify and
// cmd/mpcf-bench (-exp cloud) run. The example prints the Figure 5
// diagnostics (maximum pressure in the field and on the wall, kinetic
// energy, equivalent cloud radius) as CSV while the run advances, and the
// reduced collapse observables when it finishes.
//
//	go run ./examples/cloudcollapse [-scenario cloud] [-bubbles N] [-beta B] [-dumps]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"cubism"
)

func main() {
	name := flag.String("scenario", "cloud", fmt.Sprintf("named scenario, one of %v", cubism.ScenarioNames()))
	nb := flag.Int("bubbles", 0, "bubble count (cloud) or lattice edge (array); 0: scenario default")
	beta := flag.Float64("beta", 0, "target interaction parameter β — picks the cloud bubble count (0: off)")
	steps := flag.Int("steps", 0, "number of time steps (0: scenario default)")
	n := flag.Int("n", 16, "block edge in cells")
	blocks := flag.Int("blocks", 4, "blocks per dimension")
	dumps := flag.Bool("dumps", false, "write compressed p and Γ snapshots")
	seed := flag.Int64("seed", 0, "cloud random seed (0: scenario default)")
	flag.Parse()

	c, err := cubism.BuildScenario(*name, cubism.ScenarioParams{
		Blocks:    [3]int{*blocks, *blocks, *blocks},
		BlockSize: *n,
		Steps:     *steps,
		Bubbles:   *nb,
		Seed:      *seed,
		Beta:      *beta,
		DiagEvery: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d bubbles, β=%.3f, α₀=%.4f, Rayleigh τ=%.3e\n",
		c.Name, len(c.Bubbles), c.Beta, c.VoidFraction, c.RayleighTau)

	cfg := cubism.ScenarioConfig(c)
	if *dumps {
		dir, err := os.MkdirTemp("", "mpcf-dumps-*")
		if err != nil {
			log.Fatal(err)
		}
		cfg.DumpEvery = 50
		cfg.DumpDir = dir
		fmt.Fprintf(os.Stderr, "dumps: %s (p at eps=1e-2, Γ at eps=1e-3)\n", dir)
	}

	obs := cubism.NewScenarioObserver(c)
	fmt.Println("time,dt,max_p_over_ambient,wall_p_over_ambient,kinetic_energy,equiv_radius")
	summary, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		obs.OnStep(s)
		if s.HasDiag {
			fmt.Printf("%.4e,%.3e,%.3f,%.3f,%.4e,%.4f\n",
				s.Time, s.DT, s.Diag.MaxPressure/c.AmbientP, s.Diag.WallPressure/c.AmbientP,
				s.Diag.KineticEnergy, s.Diag.EquivRadius)
		}
		for q, rate := range s.DumpRates {
			fmt.Fprintf(os.Stderr, "step %d: dumped %s at %.1f:1\n", s.Step, q, rate)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	metrics := obs.Metrics()
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(os.Stderr, "\nobservables:\n")
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "  %-14s %.6g\n", k, metrics[k])
	}
	fmt.Fprintf(os.Stderr, "\n%d steps in %v (%.2f Mpoints/s)\n%s",
		summary.Steps, summary.WallTime.Round(1e6), summary.PointsPerSec/1e6, summary.Report)
}
