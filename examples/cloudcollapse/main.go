// Cloud cavitation collapse near a solid wall — a laptop-scale version of
// the paper's production run (§7): spherical vapor bubbles with lognormal
// radii inside liquid pressurized at 100 bar, a reflecting wall at z=0,
// compressed data dumps of p and Γ, and the Figure 5 diagnostics (maximum
// pressure in the field and on the wall, kinetic energy, equivalent cloud
// radius) printed as CSV.
//
//	go run ./examples/cloudcollapse [-bubbles N] [-steps N] [-dumps]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cubism"
)

func main() {
	nb := flag.Int("bubbles", 12, "number of bubbles in the cloud")
	steps := flag.Int("steps", 150, "number of time steps")
	n := flag.Int("n", 16, "block edge in cells")
	blocks := flag.Int("blocks", 4, "blocks per dimension")
	dumps := flag.Bool("dumps", false, "write compressed p and Γ snapshots")
	seed := flag.Int64("seed", 42, "cloud random seed")
	flag.Parse()

	// Cloud of bubbles above the wall, radii 50-200 (in units of 1e-3 of
	// the domain; the paper's 50-200 micron range scaled to the box).
	spec := cubism.CloudSpec{
		Center: [3]float64{0.5, 0.5, 0.55},
		Radius: 0.3,
		N:      *nb,
		RMin:   0.04, RMax: 0.09,
		Seed: *seed,
	}
	bubbles, err := cubism.GenerateCloud(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cloud: %d bubbles generated\n", len(bubbles))

	cfg := cubism.Config{
		Blocks:     [3]int{*blocks, *blocks, *blocks},
		BlockSize:  *n,
		Extent:     1.0,
		Boundaries: cubism.WallBC(cubism.ZLo),
		Init:       cubism.CloudField(bubbles, 0.015),
		Steps:      *steps,
		DiagEvery:  5,
		Wall:       cubism.ZLo,
		HasWall:    true,
	}
	if *dumps {
		dir, err := os.MkdirTemp("", "mpcf-dumps-*")
		if err != nil {
			log.Fatal(err)
		}
		cfg.DumpEvery = 50
		cfg.DumpDir = dir
		fmt.Fprintf(os.Stderr, "dumps: %s (p at eps=1e-2, Γ at eps=1e-3)\n", dir)
	}

	const ambient = 100e5
	fmt.Println("time,dt,max_p_over_ambient,wall_p_over_ambient,kinetic_energy,equiv_radius")
	summary, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		if s.HasDiag {
			fmt.Printf("%.4e,%.3e,%.3f,%.3f,%.4e,%.4f\n",
				s.Time, s.DT, s.Diag.MaxPressure/ambient, s.Diag.WallPressure/ambient,
				s.Diag.KineticEnergy, s.Diag.EquivRadius)
		}
		for q, rate := range s.DumpRates {
			fmt.Fprintf(os.Stderr, "step %d: dumped %s at %.1f:1\n", s.Step, q, rate)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\n%d steps in %v (%.2f Mpoints/s)\n%s",
		summary.Steps, summary.WallTime.Round(1e6), summary.PointsPerSec/1e6, summary.Report)
}
