package main

import (
	"testing"

	"cubism"
)

// TestScenarioSmoke drives the example's scenario path end to end at a tiny
// resolution: every registered scenario must build through the public API,
// run, and hand the observer a finite observable set. This is the example's
// compile-and-run guard — it breaks when the registry or the public scenario
// surface drifts away from what the example (and its README snippet) shows.
func TestScenarioSmoke(t *testing.T) {
	for _, name := range cubism.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			c, err := cubism.BuildScenario(name, cubism.ScenarioParams{
				Blocks:    [3]int{2, 2, 2},
				BlockSize: 8,
				Steps:     2,
				Workers:   2,
				DiagEvery: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Bubbles) == 0 {
				t.Fatal("scenario built no bubbles")
			}
			obs := cubism.NewScenarioObserver(c)
			cfg := cubism.ScenarioConfig(c)
			if _, err := cubism.Run(cfg, obs.OnStep); err != nil {
				t.Fatal(err)
			}
			m := obs.Metrics()
			if m["non_finite"] != 0 {
				t.Fatalf("non-finite cells after 2 steps: %v", m["non_finite"])
			}
			for _, k := range []string{"peak_amp", "ke_peak", "min_ratio"} {
				if _, ok := m[k]; !ok {
					t.Errorf("metric %s missing from %v", k, m)
				}
			}
		})
	}
}
