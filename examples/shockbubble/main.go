// Shock-bubble interaction: a planar pressure wave in liquid impacting a
// single vapor bubble — the configuration of the software's predecessor
// (Hejazialhosseini et al., SC12, paper ref. [33,34]) and the elementary
// mechanism inside a collapsing cloud.
//
// The incoming liquid at 10x ambient pressure drives an asymmetric collapse;
// the run reports the bubble's equivalent radius and the peak pressure as
// the collapse focuses the wave.
//
//	go run ./examples/shockbubble [-n blockcells] [-steps N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"cubism"
)

func main() {
	n := flag.Int("n", 16, "block edge in cells (multiple of 4)")
	steps := flag.Int("steps", 120, "number of time steps")
	vector := flag.Bool("vector", false, "use the QPX-model vector kernels")
	flag.Parse()

	const (
		bubbleR  = 0.12
		shockX   = 0.20
		ambientP = 100e5 // pressurized liquid, 100 bar
		shockP   = 10 * ambientP
		bubbleP  = 0.0234e5
	)
	bubble := []cubism.Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: bubbleR}}

	cfg := cubism.Config{
		Blocks:    [3]int{4, 4, 4},
		BlockSize: *n,
		Extent:    1.0,
		Vector:    *vector,
		Steps:     *steps,
		DiagEvery: 5,
		Init: func(x, y, z float64) cubism.State {
			// Two-phase field: bubble in liquid, plus a left shock state.
			field := cubism.CloudField(bubble, 0.02)
			s := field(x, y, z)
			if x < shockX {
				// Post-shock liquid state moving right.
				s.P = shockP
				s.Rho *= 1.1
				s.U = math.Sqrt((shockP - ambientP) * (1/0.9 - 1) / s.Rho * 0.9)
			}
			return s
		},
	}

	fmt.Println("# shock-bubble interaction: t, dt, equivalent_radius, max_pressure/ambient")
	r0 := 0.0
	summary, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		if !s.HasDiag {
			return
		}
		if r0 == 0 {
			r0 = s.Diag.EquivRadius
		}
		fmt.Printf("%.4e, %.3e, %.4f, %.2f\n",
			s.Time, s.DT, s.Diag.EquivRadius/r0, s.Diag.MaxPressure/ambientP)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# %d steps in %v (%.2f Mpoints/s)\n",
		summary.Steps, summary.WallTime.Round(1e6), summary.PointsPerSec/1e6)
}
