// Compression walkthrough: the paper's wavelet pipeline on a synthetic
// two-phase snapshot, sweeping the decimation threshold ε and both lossless
// coders, then verifying the L∞ error bound by decompressing against a
// near-lossless reference.
//
// Reproduces the §7 observations: Γ (piecewise constant across the
// interface) compresses an order of magnitude better than p, the rate grows
// with ε, and the reconstruction error tracks ε.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"cubism"
)

const steps = 2

func main() {
	bubbles, err := cubism.GenerateCloud(cubism.CloudSpec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.35,
		N:      10,
		RMin:   0.05, RMax: 0.1,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference snapshot: effectively lossless (ε = 1e-9 relative).
	ref, _, err := snapshot(bubbles, 1e-9, "zlib")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quantity  encoder  epsilon     rate    max_err/range")
	for _, eps := range []float64{1e-4, 1e-3, 1e-2} {
		for _, enc := range []string{"zlib", "rle"} {
			rec, rates, err := snapshot(bubbles, eps, enc)
			if err != nil {
				log.Fatal(err)
			}
			for _, q := range []string{"p", "G"} {
				e := maxRelErr(ref[q], rec[q])
				fmt.Printf("%-9s %-8s %.0e   %8.1f:1   %.2e\n", q, enc, eps, rates[q], e)
			}
		}
	}
	fmt.Println("\nShape check (paper §7): Γ rates ≫ p rates; error tracks ε.")
}

// snapshot runs the deterministic 2-step cloud and returns the decompressed
// fields (flattened per quantity) plus the achieved compression rates.
func snapshot(bubbles []cubism.Bubble, eps float64, enc string) (map[string][]float32, map[string]float64, error) {
	dir, err := os.MkdirTemp("", "mpcf-compress-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	var rates map[string]float64
	cfg := cubism.Config{
		Blocks:    [3]int{4, 4, 4},
		BlockSize: 16,
		Extent:    1.0,
		Init:      cubism.CloudField(bubbles, 0.02),
		Steps:     steps,
		DumpEvery: steps,
		DumpDir:   dir,
		EpsP:      eps,
		EpsG:      eps,
		Encoder:   enc,
		DiagEvery: 1000,
	}
	if _, err := cubism.Run(cfg, func(s cubism.StepInfo) {
		if s.DumpRates != nil {
			rates = s.DumpRates
		}
	}); err != nil {
		return nil, nil, err
	}
	out := map[string][]float32{}
	for _, q := range []string{"p", "G"} {
		path := filepath.Join(dir, fmt.Sprintf("%s_step%06d.mpcf", q, steps))
		_, fields, err := cubism.ReadDump(path)
		if err != nil {
			return nil, nil, err
		}
		var flat []float32
		for _, rank := range fields {
			for _, blk := range rank {
				flat = append(flat, blk...)
			}
		}
		out[q] = flat
	}
	return out, rates, nil
}

// maxRelErr returns the maximum absolute deviation normalized by the
// reference field range.
func maxRelErr(ref, rec []float32) float64 {
	maxV, minV := math.Inf(-1), math.Inf(1)
	for _, v := range ref {
		fv := float64(v)
		if fv > maxV {
			maxV = fv
		}
		if fv < minV {
			minV = fv
		}
	}
	rng := maxV - minV
	if rng == 0 {
		rng = 1
	}
	maxE := 0.0
	for i := range ref {
		if e := math.Abs(float64(ref[i] - rec[i])); e > maxE {
			maxE = e
		}
	}
	return maxE / rng
}
