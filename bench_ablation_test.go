package cubism

// Ablation benchmarks for the design choices DESIGN.md calls out: block
// size (the paper's outlook asks about "optimal block sizes for future
// systems"), space-filling-curve choice for the block ordering, the
// lossless encoder back-end, and the low-storage versus three-register
// Runge-Kutta formulation.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"encoding/binary"

	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/node"
	"cubism/internal/physics"
	"cubism/internal/sfc"
	"cubism/internal/wavelet"
)

// BenchmarkAblationBlockSize sweeps the block edge at fixed total cell
// count: smaller blocks raise the ghost overhead ((N+6)³/N³), larger
// blocks stress the per-worker cache footprint.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		nb := 32 / n // fixed 32³ cells
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			g := benchGrid(n, nb)
			e := node.New(g, grid.PeriodicBC(), runtime.NumCPU(), false)
			outs := make([][]float32, len(g.Blocks))
			for i := range outs {
				outs[i] = make([]float32, n*n*n*physics.NQ)
			}
			cells := int64(g.Cells())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ComputeRHS(g.Blocks, outs)
			}
			b.StopTimer()
			setFlops(b, cells*core.RHSFlopsPerCell(n))
			b.ReportMetric(core.OperationalIntensityRHS(n), "FLOP/B")
		})
	}
}

// BenchmarkAblationCurve compares block orderings on the node-layer RHS:
// Hilbert (production), Morton and row-major.
func BenchmarkAblationCurve(b *testing.B) {
	const n, nb = 8, 4
	curves := map[string]sfc.Curve{
		"hilbert":  sfc.Hilbert{Bits: 2},
		"morton":   sfc.Morton{Bits: 2},
		"rowmajor": sfc.RowMajor{NX: nb, NY: nb, NZ: nb},
	}
	for _, name := range []string{"hilbert", "morton", "rowmajor"} {
		b.Run(name, func(b *testing.B) {
			g := grid.NewWithCurve(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)}, curves[name])
			fillBench(g, benchField)
			e := node.New(g, grid.PeriodicBC(), runtime.NumCPU(), false)
			outs := make([][]float32, len(g.Blocks))
			for i := range outs {
				outs[i] = make([]float32, n*n*n*physics.NQ)
			}
			cells := int64(g.Cells())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ComputeRHS(g.Blocks, outs)
			}
			b.StopTimer()
			setFlops(b, cells*core.RHSFlopsPerCell(n))
		})
	}
}

// BenchmarkAblationEncoder compares the lossless back-ends on the same
// decimated payload: zlib (paper's choice), run-length, significance-map.
func BenchmarkAblationEncoder(b *testing.B) {
	g := benchGrid(benchN, 2)
	for _, enc := range []string{"zlib", "rle", "sig"} {
		b.Run(enc, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				_, st, err := compress.Compress(g, compress.Pressure, compress.Options{
					Epsilon: 1e-2, Encoder: enc, Workers: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = st.Rate()
			}
			b.ReportMetric(rate, "rate:1")
		})
	}
}

// BenchmarkAblationTimeStepper compares the 2N low-storage Runge-Kutta
// (paper §5: "low-storage time stepping schemes, to reduce the overall
// memory footprint") against the classic three-register SSP-RK3.
func BenchmarkAblationTimeStepper(b *testing.B) {
	for _, scheme := range []string{"lsrk3", "ssprk3"} {
		b.Run(scheme, func(b *testing.B) {
			values := benchN * benchN * benchN * physics.NQ
			u := make([]float32, values)
			reg := make([]float32, values)
			u0 := make([]float32, values)
			rhs := make([]float32, values)
			for i := range u {
				u[i] = float32(i%13) + 1
				rhs[i] = float32(i%7) - 3
			}
			b.SetBytes(int64(values) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if scheme == "lsrk3" {
					for s := 0; s < 3; s++ {
						core.UpdateScalar(u, reg, rhs, core.RK3A[s], core.RK3B[s], 1e-6)
					}
				} else {
					copy(u0, u)
					for s := 0; s < 3; s++ {
						core.UpdateSSP(u, u0, rhs, s, 1e-6)
					}
				}
			}
		})
	}
}

// BenchmarkAblationZerotree compares the embedded zerotree coder (paper
// ref. [72]) against the decimate+zlib pipeline on the same transformed
// pressure block.
func BenchmarkAblationZerotree(b *testing.B) {
	g := benchGrid(benchN, 1)
	field := make([]float32, benchN*benchN*benchN)
	compress.Pressure.Extract(g.Blocks[0], field)
	var scale float64
	for _, v := range field {
		if a := math.Abs(float64(v)); a > scale {
			scale = a
		}
	}
	tr := wavelet.NewFWT3(benchN)
	tr.Forward(field)
	threshold := 1e-3 * scale
	b.Run("zerotree", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			stream := compress.ZerotreeEncode(append([]float32(nil), field...), benchN, threshold)
			size = len(stream)
		}
		b.ReportMetric(float64(benchN*benchN*benchN*4)/float64(size), "rate:1")
	})
	b.Run("decimate-zlib", func(b *testing.B) {
		enc, _ := compress.NewEncoder("zlib")
		var size int
		for i := 0; i < b.N; i++ {
			work := append([]float32(nil), field...)
			for j, v := range work {
				if math.Abs(float64(v)) <= threshold {
					work[j] = 0
				}
			}
			raw := make([]byte, 0, len(work)*4)
			var w [4]byte
			for _, v := range work {
				binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
				raw = append(raw, w[:]...)
			}
			out, err := enc.Encode(nil, raw)
			if err != nil {
				b.Fatal(err)
			}
			size = len(out)
		}
		b.ReportMetric(float64(benchN*benchN*benchN*4)/float64(size), "rate:1")
	})
}
