module cubism

go 1.22
