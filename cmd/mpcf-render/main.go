// mpcf-render turns compressed dump files into images — the reproduction's
// counterpart of the paper's pressure/interface visualizations (Figures 4,
// 6, 8). It decodes a .mpcf dump, reassembles the global field, slices it,
// and writes a binary PPM with the paper-style blue/yellow/red palette and
// an optional white interface isoline from a matching Γ dump.
//
// Usage:
//
//	mpcf-render -slice z -index 32 p_step000100.mpcf > p.ppm
//	mpcf-render -iso G_step000100.mpcf p_step000100.mpcf > overlay.ppm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cubism/internal/dump"
	"cubism/internal/viz"
)

func main() {
	axisName := flag.String("slice", "z", "slice axis: x, y or z")
	index := flag.Int("index", -1, "slice index (default: middle)")
	isoPath := flag.String("iso", "", "optional Γ dump whose mid-value isoline overlays the image")
	gray := flag.Bool("gray", false, "grayscale palette instead of pressure colors")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mpcf-render [flags] <dump.mpcf>")
		os.Exit(2)
	}
	axis := map[string]int{"x": 0, "y": 1, "z": 2}[*axisName]

	vol := load(flag.Arg(0))
	idx := *index
	if idx < 0 {
		idx = [3]int{vol.NX, vol.NY, vol.NZ}[axis] / 2
	}
	plane := vol.Slice(axis, idx)

	cmap := viz.Pressure
	if *gray {
		cmap = viz.Grayscale
	}
	var img []byte
	if *isoPath != "" {
		iso := load(*isoPath).Slice(axis, idx)
		if iso.W != plane.W || iso.H != plane.H {
			log.Fatal("iso dump geometry does not match")
		}
		lo, hi := iso.MinMax()
		img = renderWithOverlay(plane, iso, cmap, (lo+hi)/2)
	} else {
		img = plane.PPM(cmap, 0, false)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(img); err != nil {
		log.Fatal(err)
	}
}

// load reads a dump and reassembles the global volume.
func load(path string) *viz.Volume {
	hdr, payloads, err := dump.Read(path)
	if err != nil {
		log.Fatal(err)
	}
	fields := make([][][]float32, len(payloads))
	for r, c := range payloads {
		fields[r], err = c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
	}
	vol, err := viz.Assemble(hdr, fields)
	if err != nil {
		log.Fatal(err)
	}
	return vol
}

// renderWithOverlay colors the base plane and whitens the pixels where the
// overlay field crosses the isovalue.
func renderWithOverlay(base, overlay viz.Plane, cmap func(float64) viz.RGB, iso float64) []byte {
	// Render the base, then re-render marking isoline pixels: reuse the
	// Plane PPM path by substituting the overlay for the iso test.
	img := base.PPM(cmap, 0, false)
	black := func(float64) viz.RGB { return viz.RGB{} }
	mask := overlay.PPM(black, iso, true)
	// PPM header is identical; walk pixels and replace where mask is white.
	hdrEnd := 0
	newlines := 0
	for i, b := range img {
		if b == '\n' {
			newlines++
			if newlines == 3 {
				hdrEnd = i + 1
				break
			}
		}
	}
	for i := hdrEnd; i+2 < len(img); i += 3 {
		if mask[i] == 255 && mask[i+1] == 255 && mask[i+2] == 255 {
			img[i], img[i+1], img[i+2] = 255, 255, 255
		}
	}
	return img
}
