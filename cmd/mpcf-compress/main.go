// mpcf-compress inspects and decodes the compressed dump files written by
// the simulation (one file per quantity, wavelet + decimation + lossless
// coding; see internal/dump for the format).
//
// Usage:
//
//	mpcf-compress -info file.mpcf          # header and compression summary
//	mpcf-compress -stats file.mpcf         # per-rank payloads, field ranges
//	mpcf-compress -csv file.mpcf > out.csv # decode to cell CSV (small files)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cubism"
)

func main() {
	info := flag.Bool("info", false, "print the file header")
	stats := flag.Bool("stats", false, "decode and print field statistics")
	csv := flag.Bool("csv", false, "decode and print block,cell,value CSV")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mpcf-compress [-info|-stats|-csv] <file.mpcf>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	hdr, fields, err := cubism.ReadDump(path)
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}

	if *info || (!*stats && !*csv) {
		fmt.Printf("quantity:   %s\n", hdr.Quantity)
		fmt.Printf("encoder:    %s (epsilon %.1e)\n", hdr.Encoder, hdr.Epsilon)
		fmt.Printf("step/time:  %d / %.6e\n", hdr.Step, hdr.Time)
		fmt.Printf("geometry:   ranks %v, blocks/rank %v, block %d^3\n",
			hdr.RankDims, hdr.BlockDims, hdr.BlockSize)
		var blocks int
		for _, r := range hdr.Ranks {
			blocks += r.Blocks
		}
		raw := int64(blocks) * int64(hdr.BlockSize*hdr.BlockSize*hdr.BlockSize) * 4
		fmt.Printf("payload:    %d blocks, %d bytes on disk, %.1f:1 vs raw %d bytes\n",
			blocks, fi.Size(), float64(raw)/float64(fi.Size()), raw)
	}

	if *stats {
		lo, hi := math.Inf(1), math.Inf(-1)
		var sum float64
		var count int64
		for _, rank := range fields {
			for _, blk := range rank {
				for _, v := range blk {
					f := float64(v)
					if f < lo {
						lo = f
					}
					if f > hi {
						hi = f
					}
					sum += f
					count++
				}
			}
		}
		fmt.Printf("cells:      %d\n", count)
		fmt.Printf("min/max:    %.6e / %.6e\n", lo, hi)
		fmt.Printf("mean:       %.6e\n", sum/float64(count))
		for r, entry := range hdr.Ranks {
			fmt.Printf("rank %3d:   %d blocks, %d bytes\n", r, entry.Blocks, entry.Size)
		}
	}

	if *csv {
		fmt.Println("rank,block,cell,value")
		for r, rank := range fields {
			for b, blk := range rank {
				for i, v := range blk {
					fmt.Printf("%d,%d,%d,%g\n", r, b, i, v)
				}
			}
		}
	}
}
