// mpcf-launch runs a multi-process simulation on one machine: it forks N
// local mpcf-sim processes over the tcp transport, injecting the per-rank
// flags (-transport tcp -rank i -coord) and multiplexing their output with
// [rank i] prefixes — a minimal local mpirun.
//
// Usage:
//
//	mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -steps 50
//	mpcf-launch -n 8 -sim ./bin/mpcf-sim -- -ranks 2,2,2 -steps 100
//
// Everything after "--" is passed to every rank verbatim. The -ranks triple
// in the passed-through arguments must multiply to -n; when absent,
// "-ranks n,1,1" is injected. The coordinator port is chosen by binding a
// free listener here and passing its address down, so concurrent launches
// cannot race on a port. The first rank to fail kills the others, and the
// launcher exits with that first failure's exit code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// killGrace is how long the cascade kill waits between the polite SIGINT
// (which lets mpcf-sim flush its telemetry buffers, leaving usable partial
// traces) and the SIGKILL escalation for ranks that ignore it.
const killGrace = 2 * time.Second

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole launcher, factored from main so the regression tests can
// drive it in-process and observe the exit code. The returned code is the
// first failing rank's (normalized: a signal death counts as 1), 0 when
// every rank succeeds, 2 on usage errors.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpcf-launch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 2, "number of ranks (local processes)")
	simBin := fs.String("sim", "", "mpcf-sim binary (default: mpcf-sim next to this binary, else from PATH)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "mpcf-launch: -n must be positive")
		return 2
	}
	passThrough := fs.Args()

	// Validate or inject the -ranks decomposition: its product must be -n.
	if prod, ok := ranksProduct(passThrough); !ok {
		passThrough = append(passThrough, "-ranks", fmt.Sprintf("%d,1,1", *n))
	} else if prod != *n {
		fmt.Fprintf(stderr, "mpcf-launch: -ranks product %d does not match -n %d\n", prod, *n)
		return 2
	}

	bin := *simBin
	if bin == "" {
		bin = siblingOrPath("mpcf-sim")
	}

	// Bind the coordinator port here: rank 0 could race another launcher if
	// it picked its own. The listener is closed and the address re-bound by
	// rank 0; the window is tiny and a stolen port fails loudly at dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(stderr, "mpcf-launch: reserving coordinator port: %v\n", err)
		return 1
	}
	coord := ln.Addr().String()
	ln.Close()

	// procs is appended to by the launch loop while rank-exit goroutines may
	// already be cascading a kill, so both sides go through mu; aborted stops
	// the launch loop from starting ranks that would outlive the cascade.
	var mu sync.Mutex
	procs := make([]*exec.Cmd, 0, *n)
	aborted := false
	var outWG sync.WaitGroup
	killAll := func() {
		mu.Lock()
		aborted = true
		targets := append([]*exec.Cmd(nil), procs...)
		mu.Unlock()
		// Interrupt first so the ranks can flush trace and step-log buffers
		// on the way down; escalate to Kill after the grace period for any
		// rank that ignores the signal. Signaling an already-exited process
		// just returns an error, which is fine to drop.
		for _, p := range targets {
			if p.Process != nil {
				p.Process.Signal(os.Interrupt)
			}
		}
		go func() {
			time.Sleep(killGrace)
			mu.Lock()
			defer mu.Unlock()
			for _, p := range procs {
				if p.Process != nil {
					p.Process.Kill()
				}
			}
		}()
	}

	// The exit verdict is the FIRST failure observed, recorded exactly once
	// before the cascade kill: the ranks killed by killAll die with -1
	// (signal) and must not shadow the real failing code. A rank 0 that
	// times out waiting for rendezvous registrations exits non-zero the same
	// way, so a partial launch also tears down the stragglers here.
	var failOnce sync.Once
	var failCode int
	fail := func(code int) {
		failOnce.Do(func() { failCode = code })
		killAll()
	}

	var procWG sync.WaitGroup
	for r := 0; r < *n; r++ {
		args := append([]string{
			"-transport", "tcp",
			"-rank", strconv.Itoa(r),
			"-coord", coord,
		}, passThrough...)
		cmd := exec.Command(bin, args...)
		pipe, err := cmd.StdoutPipe()
		if err == nil {
			cmd.Stderr = cmd.Stdout // one interleave-safe stream per rank
		}
		if err != nil {
			fmt.Fprintf(stderr, "mpcf-launch: rank %d pipe: %v\n", r, err)
			fail(1)
			break
		}
		mu.Lock()
		if aborted {
			mu.Unlock()
			break
		}
		if err := cmd.Start(); err != nil {
			mu.Unlock()
			fmt.Fprintf(stderr, "mpcf-launch: rank %d start: %v\n", r, err)
			fail(1)
			break
		}
		procs = append(procs, cmd)
		mu.Unlock()
		outWG.Add(1)
		go prefixCopy(&outWG, stdout, r, pipe)
		procWG.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer procWG.Done()
			err := cmd.Wait()
			code := 0
			if err != nil {
				code = 1
				if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
					code = ee.ExitCode()
				}
			}
			if code != 0 {
				fmt.Fprintf(stderr, "[rank %d] exited with code %d\n", r, code)
				fail(code) // a dead rank wedges the others; fail fast
			}
		}(r, cmd)
	}
	procWG.Wait()
	outWG.Wait()
	return failCode
}

// prefixCopy copies r's output line by line with a "[rank i]" prefix, so
// interleaved output from concurrent ranks stays attributable.
func prefixCopy(wg *sync.WaitGroup, w io.Writer, rank int, r io.Reader) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(w, "[rank %d] %s\n", rank, sc.Text())
	}
}

// ranksProduct scans args for -ranks/--ranks and returns the product of
// the decomposition triple (single value = cube shorthand, as mpcf-sim
// parses it).
func ranksProduct(args []string) (int, bool) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		var val string
		switch {
		case a == "-ranks" || a == "--ranks":
			if i+1 >= len(args) {
				return 0, false
			}
			val = args[i+1]
		case strings.HasPrefix(a, "-ranks="):
			val = strings.TrimPrefix(a, "-ranks=")
		case strings.HasPrefix(a, "--ranks="):
			val = strings.TrimPrefix(a, "--ranks=")
		default:
			continue
		}
		parts := strings.Split(val, ",")
		if len(parts) == 1 {
			parts = []string{parts[0], parts[0], parts[0]}
		}
		prod := 1
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return 0, false
			}
			prod *= v
		}
		return prod, true
	}
	return 0, false
}

// siblingOrPath prefers a binary sitting next to this one (the common
// "make build" layout), falling back to PATH lookup.
func siblingOrPath(name string) string {
	if self, err := os.Executable(); err == nil {
		sib := self[:strings.LastIndexByte(self, '/')+1] + name
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib
		}
	}
	return name
}
