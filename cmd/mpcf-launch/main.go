// mpcf-launch runs a multi-process simulation on one machine: it forks N
// local mpcf-sim processes over the tcp transport, injecting the per-rank
// flags (-transport tcp -rank i -coord) and multiplexing their output with
// [rank i] prefixes — a minimal local mpirun. The fleet-spawning machinery
// lives in internal/launch, shared with the job service (mpcf-serve); this
// binary is the thin CLI wrapper.
//
// Usage:
//
//	mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -steps 50
//	mpcf-launch -n 8 -sim ./bin/mpcf-sim -- -ranks 2,2,2 -steps 100
//
// Everything after "--" is passed to every rank verbatim. The -ranks triple
// in the passed-through arguments must multiply to -n; when absent,
// "-ranks n,1,1" is injected. The coordinator port is chosen by binding a
// free listener here and passing its address down, so concurrent launches
// cannot race on a port. The first rank to fail kills the others, and the
// launcher exits with that first failure's exit code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cubism/internal/launch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses the CLI flags and delegates to launch.Run, factored from main
// so the regression tests can drive it in-process and observe the exit
// code. The returned code is the first failing rank's (normalized: a
// signal death counts as 1), 0 when every rank succeeds, 2 on usage
// errors.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpcf-launch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 2, "number of ranks (local processes)")
	simBin := fs.String("sim", "", "mpcf-sim binary (default: mpcf-sim next to this binary, else from PATH)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "mpcf-launch: -n must be positive")
		return 2
	}
	return launch.Run(launch.Spec{
		N:      *n,
		SimBin: *simBin,
		Args:   fs.Args(),
		Stdout: stdout,
		Stderr: stderr,
	})
}

// ranksProduct is kept as a thin alias so the historical regression tests
// keep exercising the shared implementation through this package.
func ranksProduct(args []string) (int, bool) { return launch.RanksProduct(args) }
