// mpcf-launch runs a multi-process simulation on one machine: it forks N
// local mpcf-sim processes over the tcp transport, injecting the per-rank
// flags (-transport tcp -rank i -coord) and multiplexing their output with
// [rank i] prefixes — a minimal local mpirun.
//
// Usage:
//
//	mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -steps 50
//	mpcf-launch -n 8 -sim ./bin/mpcf-sim -- -ranks 2,2,2 -steps 100
//
// Everything after "--" is passed to every rank verbatim. The -ranks triple
// in the passed-through arguments must multiply to -n; when absent,
// "-ranks n,1,1" is injected. The coordinator port is chosen by binding a
// free listener here and passing its address down, so concurrent launches
// cannot race on a port. The first rank to fail kills the others, and the
// launcher exits with the first non-zero exit code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
)

func main() {
	n := flag.Int("n", 2, "number of ranks (local processes)")
	simBin := flag.String("sim", "", "mpcf-sim binary (default: mpcf-sim next to this binary, else from PATH)")
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "mpcf-launch: -n must be positive")
		os.Exit(2)
	}
	passThrough := flag.Args()

	// Validate or inject the -ranks decomposition: its product must be -n.
	if prod, ok := ranksProduct(passThrough); !ok {
		passThrough = append(passThrough, "-ranks", fmt.Sprintf("%d,1,1", *n))
	} else if prod != *n {
		fmt.Fprintf(os.Stderr, "mpcf-launch: -ranks product %d does not match -n %d\n", prod, *n)
		os.Exit(2)
	}

	bin := *simBin
	if bin == "" {
		bin = siblingOrPath("mpcf-sim")
	}

	// Bind the coordinator port here: rank 0 could race another launcher if
	// it picked its own. The listener is closed and the address re-bound by
	// rank 0; the window is tiny and a stolen port fails loudly at dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcf-launch: reserving coordinator port: %v\n", err)
		os.Exit(1)
	}
	coord := ln.Addr().String()
	ln.Close()

	procs := make([]*exec.Cmd, *n)
	var outWG sync.WaitGroup
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, p := range procs {
				if p != nil && p.Process != nil {
					p.Process.Kill()
				}
			}
		})
	}

	exitCodes := make([]int, *n)
	var procWG sync.WaitGroup
	for r := 0; r < *n; r++ {
		args := append([]string{
			"-transport", "tcp",
			"-rank", strconv.Itoa(r),
			"-coord", coord,
		}, passThrough...)
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			cmd.Stderr = cmd.Stdout // one interleave-safe stream per rank
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcf-launch: rank %d pipe: %v\n", r, err)
			killAll()
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "mpcf-launch: rank %d start: %v\n", r, err)
			killAll()
			os.Exit(1)
		}
		procs[r] = cmd
		outWG.Add(1)
		go prefixCopy(&outWG, r, stdout)
		procWG.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer procWG.Done()
			err := cmd.Wait()
			code := 0
			if err != nil {
				code = 1
				if ee, ok := err.(*exec.ExitError); ok {
					code = ee.ExitCode()
				}
			}
			exitCodes[r] = code
			if code != 0 {
				fmt.Fprintf(os.Stderr, "[rank %d] exited with code %d\n", r, code)
				killAll() // a dead rank wedges the others; fail fast
			}
		}(r, cmd)
	}
	procWG.Wait()
	outWG.Wait()
	for _, code := range exitCodes {
		if code != 0 {
			os.Exit(code)
		}
	}
}

// prefixCopy copies r's output line by line with a "[rank i]" prefix, so
// interleaved output from concurrent ranks stays attributable.
func prefixCopy(wg *sync.WaitGroup, rank int, r io.Reader) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fmt.Printf("[rank %d] %s\n", rank, sc.Text())
	}
}

// ranksProduct scans args for -ranks/--ranks and returns the product of
// the decomposition triple (single value = cube shorthand, as mpcf-sim
// parses it).
func ranksProduct(args []string) (int, bool) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		var val string
		switch {
		case a == "-ranks" || a == "--ranks":
			if i+1 >= len(args) {
				return 0, false
			}
			val = args[i+1]
		case strings.HasPrefix(a, "-ranks="):
			val = strings.TrimPrefix(a, "-ranks=")
		case strings.HasPrefix(a, "--ranks="):
			val = strings.TrimPrefix(a, "--ranks=")
		default:
			continue
		}
		parts := strings.Split(val, ",")
		if len(parts) == 1 {
			parts = []string{parts[0], parts[0], parts[0]}
		}
		prod := 1
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return 0, false
			}
			prod *= v
		}
		return prod, true
	}
	return 0, false
}

// siblingOrPath prefers a binary sitting next to this one (the common
// "make build" layout), falling back to PATH lookup.
func siblingOrPath(name string) string {
	if self, err := os.Executable(); err == nil {
		sib := self[:strings.LastIndexByte(self, '/')+1] + name
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib
		}
	}
	return name
}
