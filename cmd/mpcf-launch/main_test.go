package main

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as a fake mpcf-sim: when MPCF_LAUNCH_HELPER is set, the
// test binary plays the child rank the launcher forked — the rank named by
// MPCF_HELPER_FAIL_RANK exits with MPCF_HELPER_FAIL_CODE, every other rank
// hangs until killed (as real ranks do when a peer dies mid-rendezvous).
func TestMain(m *testing.M) {
	if os.Getenv("MPCF_LAUNCH_HELPER") == "" {
		os.Exit(m.Run())
	}
	rank := -1
	for i, a := range os.Args {
		if a == "-rank" && i+1 < len(os.Args) {
			rank, _ = strconv.Atoi(os.Args[i+1])
		}
	}
	failRank, _ := strconv.Atoi(os.Getenv("MPCF_HELPER_FAIL_RANK"))
	failCode, _ := strconv.Atoi(os.Getenv("MPCF_HELPER_FAIL_CODE"))
	if rank == failRank {
		os.Stdout.WriteString("helper: failing as instructed\n")
		os.Exit(failCode)
	}
	// Healthy ranks wedge (blocked on the dead peer) until the launcher
	// kills them; exiting 0 here would mask a missing cascade kill.
	time.Sleep(60 * time.Second)
	os.Exit(0)
}

// TestLaunchPropagatesFirstFailureAndKillsStragglers: rank 1 exits 7, ranks
// 0 and 2 hang. The launcher must return 7 — not the stragglers' kill
// verdict — and must return promptly, proving the cascade kill happened.
func TestLaunchPropagatesFirstFailureAndKillsStragglers(t *testing.T) {
	t.Setenv("MPCF_LAUNCH_HELPER", "1")
	t.Setenv("MPCF_HELPER_FAIL_RANK", "1")
	t.Setenv("MPCF_HELPER_FAIL_CODE", "7")
	var out, errOut bytes.Buffer
	start := time.Now()
	code := run([]string{"-n", "3", "-sim", os.Args[0]}, &out, &errOut)
	if code != 7 {
		t.Fatalf("launcher returned %d, want the failing rank's code 7\nstderr:\n%s", code, errOut.String())
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("launcher took %v: hung ranks were not killed after the first failure", el)
	}
	if !strings.Contains(errOut.String(), "[rank 1] exited with code 7") {
		t.Fatalf("stderr does not attribute the failure to rank 1:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "[rank 1] helper: failing as instructed") {
		t.Fatalf("child output was not prefixed and multiplexed:\n%s", out.String())
	}
}

// TestLaunchCoordinatorDeathKillsRemaining is the rendezvous-timeout shape:
// rank 0 (the coordinator) dies first, the other ranks are stuck waiting.
// The launcher must tear them down and surface rank 0's code.
func TestLaunchCoordinatorDeathKillsRemaining(t *testing.T) {
	t.Setenv("MPCF_LAUNCH_HELPER", "1")
	t.Setenv("MPCF_HELPER_FAIL_RANK", "0")
	t.Setenv("MPCF_HELPER_FAIL_CODE", "3")
	var out, errOut bytes.Buffer
	start := time.Now()
	code := run([]string{"-n", "4", "-sim", os.Args[0]}, &out, &errOut)
	if code != 3 {
		t.Fatalf("launcher returned %d, want coordinator rank's code 3\nstderr:\n%s", code, errOut.String())
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("launcher took %v: ranks waiting on the dead coordinator were not killed", el)
	}
}

// TestLaunchRejectsRankMismatch: a -ranks triple that does not multiply to
// -n is a usage error (2), caught before any process starts.
func TestLaunchRejectsRankMismatch(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "2", "--", "-ranks", "2,2,1"}, &out, &errOut); code != 2 {
		t.Fatalf("rank mismatch returned %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "does not match") {
		t.Fatalf("usage error does not explain the mismatch:\n%s", errOut.String())
	}
}

func TestRanksProduct(t *testing.T) {
	for _, tc := range []struct {
		args []string
		prod int
		ok   bool
	}{
		{[]string{"-ranks", "2,2,2"}, 8, true},
		{[]string{"-ranks=4"}, 64, true},
		{[]string{"--ranks", "3,1,1"}, 3, true},
		{[]string{"-steps", "5"}, 0, false},
		{[]string{"-ranks", "0,1,1"}, 0, false},
	} {
		prod, ok := ranksProduct(tc.args)
		if prod != tc.prod || ok != tc.ok {
			t.Errorf("ranksProduct(%v) = (%d, %v), want (%d, %v)", tc.args, prod, ok, tc.prod, tc.ok)
		}
	}
}
