// mpcf-verify runs the solver verification suite: exact-solution
// convergence ladders, conservation audits and the Rayleigh-collapse
// comparison (see docs/verification.md). Results are written as a
// machine-readable VERIFY.json and checked against the tolerance bands in
// internal/verify/testdata/tolerances.json; the process exits non-zero when
// any band fails.
//
// Usage examples:
//
//	mpcf-verify                       # full ladder, writes VERIFY.json
//	mpcf-verify -mode short           # the tier-1 (go test) ladder
//	mpcf-verify -only sod,iface       # subset of scenarios
//	mpcf-verify -tolerances bands.json -o out/VERIFY.json
//	mpcf-verify -step-log steps.jsonl # per-step records via telemetry
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cubism/internal/telemetry"
	"cubism/internal/verify"
)

func main() {
	mode := flag.String("mode", "full", "resolution ladder: short or full")
	out := flag.String("o", "VERIFY.json", "output report path")
	only := flag.String("only", "", "comma-separated scenario subset (default: all)")
	workers := flag.Int("workers", 0, "workers per rank (0: NumCPU)")
	tolPath := flag.String("tolerances", "", "external tolerance-band JSON (default: built-in)")
	stepLogPath := flag.String("step-log", "", "write a JSONL structured step log of every scenario run (- for stdout)")
	quiet := flag.Bool("quiet", false, "suppress the result table (exit code and VERIFY.json only)")
	flag.Parse()

	var m verify.Mode
	switch *mode {
	case "short":
		m = verify.Short
	case "full":
		m = verify.Full
	default:
		log.Fatalf("unknown mode %q (want short or full)", *mode)
	}

	bands, err := verify.DefaultBands()
	if err != nil {
		log.Fatal(err)
	}
	if *tolPath != "" {
		data, err := os.ReadFile(*tolPath)
		if err != nil {
			log.Fatalf("tolerances: %v", err)
		}
		if bands, err = verify.LoadBands(data); err != nil {
			log.Fatal(err)
		}
	}

	opt := verify.Options{Workers: *workers}
	if *stepLogPath != "" {
		w := os.Stdout
		if *stepLogPath != "-" {
			f, err := os.Create(*stepLogPath)
			if err != nil {
				log.Fatalf("step log: %v", err)
			}
			w = f
		}
		opt.StepLog = telemetry.NewStepLogger(w)
		defer opt.StepLog.Close()
	}

	var names []string
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	rep, err := verify.RunAll(m, opt, bands, names...)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteJSON(*out); err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Print(rep.Table())
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	if !rep.Pass {
		os.Exit(1)
	}
}
