// mpcf-bench regenerates the paper's evaluation: every table (3-10) and
// figure (5, 7, 9) plus the §7 compression-rate and throughput analyses,
// printed as text with the paper's published values alongside.
//
// Usage:
//
//	mpcf-bench                  # run everything
//	mpcf-bench -exp table7      # one experiment
//	mpcf-bench -n 32 -dur 2s    # production block size, longer timing
//
// Experiments: table3 table4 table5 table6 table7 table8 table9 table10
// fig5 fig7 fig9 compression throughput io sim net all
//
// The net experiment sweeps wire-transport message sizes (1 KiB – 4 MiB)
// on both the inproc and tcp transports, emitting BENCH_net.json with
// per-size latency percentiles and achieved bandwidth.
//
// The sim experiment also emits a machine-readable BENCH_sim.json (per-kernel
// GFLOP/s, step latency percentiles, cross-rank imbalance) next to the
// human-readable report, so the perf trajectory across PRs is diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cubism/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table3..table10, fig5, fig7, fig9, compression, throughput, io, sim, all)")
	n := flag.Int("n", 16, "block edge in cells (paper production: 32)")
	dur := flag.Duration("dur", 500*time.Millisecond, "minimum timing window per kernel measurement")
	steps := flag.Int("steps", 100, "time steps for the simulation-driven experiments")
	jsonPath := flag.String("json", "BENCH_sim.json", "machine-readable output path of the sim experiment (empty: skip)")
	netJSONPath := flag.String("net-json", "BENCH_net.json", "machine-readable output path of the net experiment (empty: skip)")
	pipeline := flag.Bool("pipeline", true, "primary sim-experiment mode: dependency-driven fused RHS+UP pipeline (false: bulk-synchronous staged baseline); both modes are always measured")
	flag.Parse()

	w := os.Stdout
	run := map[string]func(){
		"table3":      func() { experiments.Table3(w, *n) },
		"table4":      func() { experiments.Table4(w, *n) },
		"table5":      func() { experiments.Table5(w, *n, *dur) },
		"table6":      func() { experiments.Table6(w, *n, *dur) },
		"table7":      func() { experiments.Table7(w, *n, *dur) },
		"table8":      func() { experiments.Table8(w, *n) },
		"table9":      func() { experiments.Table9(w, *n, *dur) },
		"table10":     func() { experiments.Table10(w, *n, *dur) },
		"fig5":        func() { experiments.Fig5(w, *steps) },
		"fig7":        func() { experiments.Fig7(w, *steps) },
		"fig9":        func() { experiments.Fig9(w, *dur) },
		"compression": func() { experiments.Compression(w, *n) },
		"throughput":  func() { experiments.Throughput(w, *steps) },
		"io":          func() { experiments.IO(w, *n) },
		"sim":         func() { experiments.BenchSim(w, *n, *steps, *jsonPath, *pipeline) },
		"net":         func() { experiments.BenchNet(w, *netJSONPath) },
	}
	order := []string{
		"table3", "table4", "table5", "table6", "table7", "table8",
		"table9", "table10", "fig5", "fig7", "fig9", "compression", "throughput", "io", "sim", "net",
	}
	if *exp == "all" {
		for _, id := range order {
			run[id]()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; one of %v or all\n", *exp, order)
		os.Exit(2)
	}
	f()
}
