// mpcf-bench regenerates the paper's evaluation: every table (3-10) and
// figure (5, 7, 9) plus the §7 compression-rate and throughput analyses,
// printed as text with the paper's published values alongside.
//
// Usage:
//
//	mpcf-bench                  # run everything
//	mpcf-bench -exp table7      # one experiment
//	mpcf-bench -n 32 -dur 2s    # production block size, longer timing
//
// Experiments: table3 table4 table5 table6 table7 table8 table9 table10
// fig5 fig7 fig9 compression throughput io sim net cloud service all
//
// The net experiment sweeps wire-transport message sizes (1 KiB – 4 MiB)
// on both the inproc and tcp transports, emitting BENCH_net.json with
// per-size latency percentiles and achieved bandwidth.
//
// The sim experiment also emits a machine-readable BENCH_sim.json (per-kernel
// GFLOP/s, step latency percentiles, cross-rank imbalance) next to the
// human-readable report, so the perf trajectory across PRs is diffable.
//
// The cloud experiment runs the scenario engine's default cloud-collapse
// case (internal/scenario) at the fixed benchmark configuration (32³,
// 40 steps) and emits BENCH_cloud.json: throughput and step latency plus
// the deterministic Figure-5 observables (peak/wall pressure amplification,
// equivalent-radius collapse, kinetic energy, β), which the -compare gate
// holds to a tight relative tolerance.
//
// The service experiment stands the simulation-as-a-service front end up
// in-process (internal/service), pushes a batch of smoke jobs through the
// multi-tenant queue over the HTTP API with several concurrent stream
// subscribers per job, and emits BENCH_service.json: submit-to-first-step
// latency, end-to-end jobs/minute and the structural stream-completeness
// invariants.
//
// The io experiment, besides the §7 footprint summary, runs the ENC
// pipeline serially and across the worker pool on the same snapshot and
// emits BENCH_io.json: per-encoder encoded sizes (pinned exactly for the
// deterministic coders), the bitwise serial/parallel equality and lossless
// round-trip invariants, the Table-4-shaped per-worker ENC imbalance, and
// a two-rank frame-stream leg asserting the TagDump frame equals the
// collective file bit for bit.
//
// The regression gate diffs fresh results against checked-in baselines:
//
//	mpcf-bench -compare bench/BENCH_sim.json,bench/BENCH_net.json
//	mpcf-bench -compare bench/BENCH_sim.json -compare-current BENCH_sim.json
//	mpcf-bench -compare ... -compare-warn        # report-only (CI smoke)
//	mpcf-bench -compare ... -compare-slack 2     # noisy shared runner
//
// Structural checks (analytic traffic constants, kernel/transport presence,
// the pool spawn-once invariant) are exact; rate checks use generous
// relative thresholds. Exit code 1 on regression unless -compare-warn.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cubism/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table3..table10, fig5, fig7, fig9, compression, throughput, io, sim, net, cloud, service, all)")
	n := flag.Int("n", 16, "block edge in cells (paper production: 32)")
	dur := flag.Duration("dur", 500*time.Millisecond, "minimum timing window per kernel measurement")
	steps := flag.Int("steps", 100, "time steps for the simulation-driven experiments")
	jsonPath := flag.String("json", "BENCH_sim.json", "machine-readable output path of the sim experiment (empty: skip)")
	netJSONPath := flag.String("net-json", "BENCH_net.json", "machine-readable output path of the net experiment (empty: skip)")
	cloudJSONPath := flag.String("cloud-json", "BENCH_cloud.json", "machine-readable output path of the cloud experiment (empty: skip)")
	serviceJSONPath := flag.String("service-json", "BENCH_service.json", "machine-readable output path of the service experiment (empty: skip)")
	ioJSONPath := flag.String("io-json", "BENCH_io.json", "machine-readable output path of the io experiment's ENC-pipeline record (empty: skip)")
	pipeline := flag.Bool("pipeline", true, "primary sim-experiment mode: dependency-driven fused RHS+UP pipeline (false: bulk-synchronous staged baseline); both modes are always measured")
	compare := flag.String("compare", "", "comma-separated baseline BENCH_*.json paths; rerun the matching benchmarks and exit 1 on regression")
	compareCurrent := flag.String("compare-current", "", "comma-separated fresh BENCH_*.json paths paired with -compare by position: diff files instead of rerunning")
	compareWarn := flag.Bool("compare-warn", false, "report regressions without the non-zero exit (CI report-only mode)")
	compareSlack := flag.Float64("compare-slack", 1, "widen the relative tolerances by this factor (noisy shared runners)")
	flag.Parse()

	w := os.Stdout
	if *compare != "" {
		os.Exit(runCompare(w, *compare, *compareCurrent, *compareWarn, *compareSlack, *pipeline))
	}
	run := map[string]func(){
		"table3":      func() { experiments.Table3(w, *n) },
		"table4":      func() { experiments.Table4(w, *n) },
		"table5":      func() { experiments.Table5(w, *n, *dur) },
		"table6":      func() { experiments.Table6(w, *n, *dur) },
		"table7":      func() { experiments.Table7(w, *n, *dur) },
		"table8":      func() { experiments.Table8(w, *n) },
		"table9":      func() { experiments.Table9(w, *n, *dur) },
		"table10":     func() { experiments.Table10(w, *n, *dur) },
		"fig5":        func() { experiments.Fig5(w, *steps) },
		"fig7":        func() { experiments.Fig7(w, *steps) },
		"fig9":        func() { experiments.Fig9(w, *dur) },
		"compression": func() { experiments.Compression(w, *n) },
		"throughput":  func() { experiments.Throughput(w, *steps) },
		"io":          func() { experiments.IO(w, *n); experiments.BenchIO(w, *n, *ioJSONPath) },
		"sim":         func() { experiments.BenchSim(w, *n, *steps, *jsonPath, *pipeline) },
		"net":         func() { experiments.BenchNet(w, *netJSONPath) },
		"cloud":       func() { experiments.BenchCloud(w, "cloud", 0, *cloudJSONPath) },
		"service":     func() { experiments.BenchService(w, *serviceJSONPath) },
	}
	order := []string{
		"table3", "table4", "table5", "table6", "table7", "table8",
		"table9", "table10", "fig5", "fig7", "fig9", "compression", "throughput", "io", "sim", "net", "cloud", "service",
	}
	if *exp == "all" {
		for _, id := range order {
			run[id]()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; one of %v or all\n", *exp, order)
		os.Exit(2)
	}
	f()
}

// runCompare drives the regression gate and returns the process exit code:
// 0 when every baseline holds (or warn mode), 1 on regression, 2 on usage
// or I/O errors.
func runCompare(w *os.File, baselines, current string, warn bool, slack float64, pipeline bool) int {
	th := experiments.DefaultThresholds(slack)
	basePaths := strings.Split(baselines, ",")
	var curPaths []string
	if current != "" {
		curPaths = strings.Split(current, ",")
		if len(curPaths) != len(basePaths) {
			fmt.Fprintf(os.Stderr, "mpcf-bench: -compare lists %d baselines but -compare-current lists %d files\n",
				len(basePaths), len(curPaths))
			return 2
		}
	}
	regressed := false
	for i, basePath := range basePaths {
		basePath = strings.TrimSpace(basePath)
		var rep *experiments.CompareReport
		var err error
		if curPaths != nil {
			rep, err = experiments.CompareBenchFiles(basePath, strings.TrimSpace(curPaths[i]), th)
		} else {
			// Rerun the matching benchmark fresh; keep the record next to
			// the baseline's name for artifact upload.
			rep, err = experiments.CompareAgainstBaseline(basePath, "", pipeline, th)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcf-bench: compare %s: %v\n", basePath, err)
			return 2
		}
		status := "ok"
		if !rep.OK() {
			status = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "compare %-4s %s: %s (%d checks)\n", rep.Kind, basePath, status, rep.Checks)
		for _, msg := range rep.Regressions {
			fmt.Fprintf(w, "  FAIL %s\n", msg)
		}
		for _, msg := range rep.Notes {
			fmt.Fprintf(w, "  note %s\n", msg)
		}
	}
	if regressed && !warn {
		return 1
	}
	if regressed {
		fmt.Fprintln(w, "regressions reported only (-compare-warn)")
	}
	return 0
}
