// mpcf-serve is the simulation-as-a-service front end: it exposes the
// scenario registry over a REST job API with a multi-tenant admission-
// controlled queue, runs small jobs in-process and larger decompositions
// as supervised local rank fleets (mpcf-sim over the tcp transport), and
// streams structured step events, logs and final collapse observables to
// any number of concurrent subscribers as chunked JSONL. Per-job
// artifacts (observables.json, checkpoint.ckp, events.jsonl, steps.jsonl)
// land under -data/jobs/<id>. See docs/service.md.
//
// Usage:
//
//	mpcf-serve -addr :8080 -data ./service-data
//	curl -XPOST localhost:8080/v1/jobs -d '{"scenario":"cloud","tenant":"alice","params":{"steps":40}}'
//	curl localhost:8080/v1/jobs/<id>/events        # live JSONL stream
//
// SIGTERM/SIGINT drains gracefully: admission stops, running jobs end at
// their next step boundary with a final checkpoint, and the queued specs
// are snapshotted so the next start requeues them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cubism/internal/launch"
	"cubism/internal/service"
	"cubism/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	dataDir := flag.String("data", "service-data", "artifact root (per-job directories, drain snapshot)")
	simBin := flag.String("sim", "", "mpcf-sim binary for fleet jobs (default: sibling of this executable, then PATH)")
	workers := flag.Int("workers", 2, "warm worker pool size (global concurrent-job bound)")
	maxQueue := flag.Int("max-queue", 64, "total queued-job bound across tenants")
	tenantRunning := flag.Int("tenant-running", 1, "per-tenant concurrently-running cap")
	tenantQueued := flag.Int("tenant-queued", 8, "per-tenant queued-job cap")
	inprocRanks := flag.Int("inproc-ranks", 1, "largest rank product an auto-mode job runs in-process; beyond it the job forks a rank fleet")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for running jobs to reach a step boundary and checkpoint")
	stopGrace := flag.Duration("stop-grace", 20*time.Second, "how long a canceled fleet rank may take to reach its step boundary before force-exit fallbacks fire (keep below -drain-grace)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	svc, err := service.New(service.Config{
		DataDir:         *dataDir,
		SimBin:          simBin1(*simBin),
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		TenantRunning:   *tenantRunning,
		TenantQueued:    *tenantQueued,
		InprocRankLimit: *inprocRanks,
		StopGrace:       *stopGrace,
		Registry:        reg,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mpcf-serve: listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("mpcf-serve: serve: %v", err)
		}
	}()
	// The ready line carries the bound address so scripts can use -addr :0.
	fmt.Printf("mpcf-serve: listening on http://%s\n", ln.Addr())
	log.Printf("mpcf-serve: data dir %s, %d workers, queue %d, tenant caps run=%d queue=%d",
		*dataDir, *workers, *maxQueue, *tenantRunning, *tenantQueued)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	s := <-sigCh
	log.Printf("mpcf-serve: %s: draining (running jobs checkpoint at their next step boundary)", s)
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		log.Printf("mpcf-serve: drain: %v", err)
	}
	svc.Close()
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	srv.Shutdown(shutdownCtx)
	log.Printf("mpcf-serve: stopped")
}

// simBin1 resolves the fleet binary like mpcf-launch does: an explicit
// flag wins, then a sibling mpcf-sim, then PATH.
func simBin1(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return launch.SiblingOrPath("mpcf-sim")
}
