// mpcf-sim is the production-style simulation driver: cloud cavitation
// collapse with configurable decomposition, kernels, dumps, diagnostics
// and telemetry (see docs/observability.md).
//
// Usage examples:
//
//	mpcf-sim -steps 200                          # default small cloud
//	mpcf-sim -scenario cloud                     # registry case with wall + β
//	mpcf-sim -scenario cloud -beta 3             # target interaction parameter
//	mpcf-sim -scenario shockbubble               # shock-induced collapse
//	mpcf-sim -ranks 2,2,2 -blocks 2,2,2 -n 16    # 8 simulated MPI ranks
//	mpcf-sim -bubbles 40 -wall -dump-every 100 -dump-dir out/
//	mpcf-sim -case sod                           # validation case
//	mpcf-sim -steps 20 -trace out.trace.json -telemetry-addr :0
//	mpcf-sim -step-log steps.jsonl -quiet
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cubism"
)

func parseTriple(s string, def [3]int) [3]int {
	if s == "" {
		return def
	}
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		// A single value is cube shorthand: "4" == "4,4,4".
		parts = []string{parts[0], parts[0], parts[0]}
	}
	if len(parts) != 3 {
		log.Fatalf("expected one or three comma-separated values, got %q", s)
	}
	var out [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("bad value %q: %v", p, err)
		}
		out[i] = v
	}
	return out
}

func main() {
	caseName := flag.String("case", "cloud", "initial condition: cloud, sod, bubble")
	scenarioName := flag.String("scenario", "", "named scenario from the registry (cloud, shockbubble, array); replaces -case and hand-rolled init")
	beta := flag.Float64("beta", 0, "target cloud interaction parameter β for -scenario cloud (picks the bubble count; mutually exclusive with -bubbles)")
	ranks := flag.String("ranks", "", "rank grid, e.g. 2,2,2 (default 1,1,1)")
	blocks := flag.String("blocks", "", "blocks per rank, e.g. 4,4,4")
	n := flag.Int("n", 16, "block edge in cells (paper production: 32)")
	steps := flag.Int("steps", 100, "number of time steps")
	workers := flag.Int("workers", 0, "workers per rank (0: NumCPU)")
	vector := flag.Bool("vector", false, "use the QPX-model vector kernels")
	pipeline := flag.Bool("pipeline", true, "dependency-driven fused RHS+UP pipeline (false: bulk-synchronous staged baseline)")
	layoutName := flag.String("layout", "", "block-to-rank layout: cartesian (default), hilbert, morton or rowmajor (see docs/sharding.md)")
	rebalanceEvery := flag.Int("rebalance-every", 0, "measure load imbalance every so many steps and migrate blocks on SFC layouts when it exceeds the threshold (0: never)")
	rebalanceThreshold := flag.Float64("rebalance-threshold", 0, "max/avg-1 imbalance that triggers a rebalance (0: 0.1)")
	rebalanceForceStep := flag.Int("rebalance-force-step", 0, "force one rebalance at exactly this step regardless of imbalance (migration fault drill; 0: never)")
	bubbles := flag.Int("bubbles", 12, "bubbles in the cloud case")
	seed := flag.Int64("seed", 42, "cloud random seed")
	wall := flag.Bool("wall", false, "reflecting wall at z=0 with wall-pressure diagnostics")
	dumpEvery := flag.Int("dump-every", 0, "compressed dump cadence in steps (0: never)")
	dumpDir := flag.String("dump-dir", ".", "dump output directory")
	encoder := flag.String("encoder", "zlib", "dump encoder: zlib, rle, sig or huff")
	frameDir := flag.String("frame-dir", "", "stream every dump as an assembled frame over the TagDump channel and write the raw frame bytes (bitwise identical to the dump file) into this directory on rank 0")
	frameLog := flag.String("frame-log", "", "stream every dump as an assembled frame and append one JSONL record per frame (base64 payload) to this path on rank 0 — the file mpcf-serve tails into job \"frame\" events")
	diagEvery := flag.Int("diag-every", 10, "diagnostics cadence in steps")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a lossless checkpoint every so many steps (0: never)")
	ckptPath := flag.String("checkpoint", "checkpoint.ckp", "checkpoint file path")
	restorePath := flag.String("restore", "", "resume from this checkpoint file (same decomposition; the recovery path after a rank failure)")
	stopCkpt := flag.Bool("stop-checkpoint", false, "write a final checkpoint at the stop boundary when a signal ends the run early (implied by -checkpoint-every > 0)")
	stopGrace := flag.Duration("stop-grace", 1500*time.Millisecond, "how long a signaled run may take to reach the next step boundary before the immediate flush-and-exit fallback fires")
	observablesPath := flag.String("observables", "", "write the scenario collapse observables (flat JSON metric map) to this path on rank 0 after the run (requires -scenario)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this path (open in chrome://tracing or Perfetto)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090; :0 picks a port; empty: disabled)")
	stepLogPath := flag.String("step-log", "", "write a JSONL structured step log to this path (- for stdout)")
	quiet := flag.Bool("quiet", false, "suppress per-step human output (final summary still printed)")
	transportName := flag.String("transport", "inproc", "rank transport: inproc (all ranks in this process) or tcp (this process is one rank)")
	rank := flag.Int("rank", 0, "this process's rank (tcp transport)")
	coord := flag.String("coord", "", "rendezvous coordinator host:port; rank 0 listens on it (tcp transport)")
	listen := flag.String("listen", "", "data listener bind address (tcp transport; empty picks a free port)")
	dialTimeout := flag.Duration("net-dial-timeout", 0, "rendezvous + mesh construction budget (0: 30s)")
	readTimeout := flag.Duration("net-read-timeout", 0, "per-frame read deadline (0: none)")
	writeTimeout := flag.Duration("net-write-timeout", 0, "per-frame write deadline (0: none)")
	netHeartbeat := flag.Duration("net-heartbeat", 0, "idle-link heartbeat cadence (0: 2s; negative disables)")
	netPeerTimeout := flag.Duration("net-peer-timeout", 0, "declare a silent peer failed after this long (0: 30s)")
	netRetransmit := flag.Duration("net-retransmit", 0, "force a reconnect when acks stall this long (0: 3s; negative disables)")
	netMaxReconnect := flag.Int("net-max-reconnect", 0, "reconnect attempts per failure episode (0: 8; negative disables reconnect)")
	netChaos := flag.String("net-chaos", "", "inject seeded wire faults, e.g. drop=0.01,reset=0.001,seed=7 (fault drill; physics must stay bitwise identical)")
	sumsPath := flag.String("sums", "", "write final conserved-field checksums (hex float64 bits) to this file on rank 0")
	obsTrace := flag.String("obs-trace", "", "write the cluster-wide merged clock-aligned Chrome trace to this path on rank 0 (enables the cross-rank observatory)")
	obsReport := flag.String("obs-report", "", "write the Table-4-shaped cluster imbalance report (text) to this path on rank 0 (- for stderr)")
	obsReportJSON := flag.String("obs-report-json", "", "write the cluster imbalance report (JSON) to this path on rank 0")
	obsSyncEvery := flag.Int("obs-sync-every", 0, "clock-offset re-sync cadence in steps on tcp worlds (0: 64)")
	obsWriteEvery := flag.Int("obs-write-every", 0, "observatory artifact rewrite cadence in steps, so kills leave usable partial output (0: 16)")
	flag.Parse()

	obsOn := *obsTrace != "" || *obsReport != "" || *obsReportJSON != ""
	obsReportPath := *obsReport
	if obsReportPath == "-" {
		obsReportPath = "" // rendered to stderr after the run instead
	}

	// Telemetry sinks, each opt-in via its flag; the hot loop pays only a
	// pointer check for whatever stays disabled.
	var tel *cubism.Telemetry
	telOn := *tracePath != "" || *telemetryAddr != "" || *stepLogPath != "" || obsOn
	if telOn {
		tel = &cubism.Telemetry{Metrics: cubism.NewMetricsRegistry()}
	}
	var traceFile *os.File
	if *tracePath != "" {
		// Created up front so a bad path fails before the run, not after.
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		traceFile = f
		tel.Tracer = cubism.NewTracer()
	}
	if obsOn && tel.Tracer == nil {
		// The observatory's merged trace needs span data even when no
		// per-process -trace file was requested.
		tel.Tracer = cubism.NewTracer()
	}
	if *telemetryAddr != "" {
		srv, err := cubism.ServeTelemetry(*telemetryAddr, tel.Metrics)
		if err != nil {
			log.Fatalf("telemetry listener: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}
	if *stepLogPath != "" {
		w := os.Stdout
		if *stepLogPath != "-" {
			f, err := os.Create(*stepLogPath)
			if err != nil {
				log.Fatalf("step log: %v", err)
			}
			w = f
		}
		tel.StepLog = cubism.NewStepLogger(w)
	}

	// flushTelemetry drains whatever the local sinks have buffered — the
	// per-process trace file and the step log. It runs once, from whichever
	// path ends the process first: the normal exit, a wire-failure
	// escalation, or a termination signal (mpcf-launch's cascade kill sends
	// SIGINT first for exactly this reason), so chaos runs leave usable
	// partial traces instead of truncated JSON. The step log is JSONL and
	// unbuffered per line, so closing it is enough.
	var flushOnce sync.Once
	flushTelemetry := func() {
		flushOnce.Do(func() {
			if traceFile != nil {
				if err := tel.Tracer.Write(traceFile); err != nil {
					fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
				}
				if err := traceFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
				}
			}
			if tel != nil && tel.StepLog != nil {
				tel.StepLog.Close()
			}
		})
	}
	// Signals request a graceful stop through the run controller: the step
	// loop ends at the next step boundary — collectively, so signaling any
	// one rank of a tcp fleet drains the whole world at the same step —
	// and a final checkpoint lands when configured. The historical
	// immediate flush-and-exit remains as two fallbacks: a wedged rank
	// that never reaches the boundary exits after -stop-grace, and a
	// second signal forces the exit right away. The grace fallback stands
	// down the moment the step loop acknowledges the stop (or the run
	// returns), so a drain that merely has long steps — or the
	// post-boundary checkpoint/observables writes — is never killed by it.
	ctl := cubism.NewController()
	runDone := make(chan struct{})
	var signalExit atomic.Int32
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		code := 130 // 128 + SIGINT
		if s == syscall.SIGTERM {
			code = 143
		}
		signalExit.Store(int32(code))
		ctl.Stop(s.String())
		go func() {
			select {
			case <-ctl.Acked():
				return // boundary reached; the main path owns the exit
			case <-runDone:
				return // run ended on its own before the boundary check
			case <-time.After(*stopGrace):
			}
			flushTelemetry()
			os.Exit(code)
		}()
		<-sigCh
		flushTelemetry()
		os.Exit(code)
	}()

	cfg := cubism.Config{
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		RestorePath:     *restorePath,
		Control:         ctl,
		StopCheckpoint:  *stopCkpt,
		Ranks:           parseTriple(*ranks, [3]int{1, 1, 1}),
		Blocks:          parseTriple(*blocks, [3]int{4, 4, 4}),
		BlockSize:       *n,
		Extent:          1.0,
		Workers:         *workers,
		Vector:          *vector,
		Pipeline:        *pipeline,
		Layout:          *layoutName,
		Steps:           *steps,
		DumpEvery:       *dumpEvery,
		DumpDir:         *dumpDir,
		Encoder:         *encoder,
		DiagEvery:       *diagEvery,
		Telemetry:       tel,
		ChecksumPath:    *sumsPath,
	}
	cfg.RebalanceEvery = *rebalanceEvery
	cfg.RebalanceThreshold = *rebalanceThreshold
	cfg.ForceRebalanceStep = *rebalanceForceStep
	// Frame streaming: the flags are uniform across a fleet (the streaming
	// is collective), while the sink below only ever runs on rank 0.
	if *frameDir != "" || *frameLog != "" {
		cfg.StreamFrames = true
		var frameLogFile *os.File
		cfg.FrameSink = func(f cubism.Frame) error {
			if *frameDir != "" {
				if err := os.WriteFile(filepath.Join(*frameDir, f.Name), f.Data, 0o644); err != nil {
					return err
				}
			}
			if *frameLog != "" {
				if frameLogFile == nil {
					var err error
					frameLogFile, err = os.OpenFile(*frameLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
					if err != nil {
						return err
					}
				}
				rec, err := json.Marshal(cubism.FrameRecord{
					Name: f.Name, Step: f.Step, Quantity: f.Quantity,
					Time: f.Time, Bytes: len(f.Data), Data: f.Data,
				})
				if err != nil {
					return err
				}
				if _, err := frameLogFile.Write(append(rec, '\n')); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if obsOn {
		cfg.Observe = &cubism.ObserveConfig{
			TracePath:      *obsTrace,
			ReportPath:     obsReportPath,
			ReportJSONPath: *obsReportJSON,
			SyncEvery:      *obsSyncEvery,
			WriteEvery:     *obsWriteEvery,
		}
	}
	switch *transportName {
	case "inproc", "":
	case "tcp":
		if *coord == "" {
			log.Fatal("-transport tcp requires -coord host:port")
		}
		cfg.Net = &cubism.NetConfig{
			OnWireError: func(err error) {
				// The mailbox is already poisoned; flush the local sinks,
				// then abort with the same code and guidance as the
				// transport's default escalation path.
				fmt.Fprintf(os.Stderr,
					"mpcf-sim: unrecoverable wire failure: %v\n"+
						"restart the job from the last checkpoint (mpcf-sim -restore)\n", err)
				flushTelemetry()
				os.Exit(3)
			},
			Transport:         "tcp",
			Rank:              *rank,
			Coord:             *coord,
			Listen:            *listen,
			DialTimeout:       *dialTimeout,
			ReadTimeout:       *readTimeout,
			WriteTimeout:      *writeTimeout,
			HeartbeatInterval: *netHeartbeat,
			PeerTimeout:       *netPeerTimeout,
			RetransmitTimeout: *netRetransmit,
			MaxReconnect:      *netMaxReconnect,
			Chaos:             *netChaos,
		}
	default:
		log.Fatalf("unknown transport %q (want inproc or tcp)", *transportName)
	}

	var scenarioObs *cubism.ScenarioObserver
	if *observablesPath != "" && *scenarioName == "" {
		log.Fatal("-observables requires -scenario (the metric map is defined by the scenario's analytic references)")
	}
	if *scenarioName != "" {
		// Registry-backed setup: the scenario provides the initial condition,
		// boundary conditions and wall diagnostics; the CLI decomposition and
		// step flags override its laptop-scale defaults.
		setFlags := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
		sp := cubism.ScenarioParams{
			Ranks:     cfg.Ranks,
			Blocks:    cfg.Blocks,
			BlockSize: *n,
			Steps:     *steps,
			Workers:   *workers,
			Seed:      *seed,
			DiagEvery: *diagEvery,
			Beta:      *beta,
		}
		if setFlags["bubbles"] {
			// Only forward an explicit count: the array scenario reads it as
			// the lattice edge, and -beta computes the cloud count itself.
			sp.Bubbles = *bubbles
		}
		c, err := cubism.BuildScenario(*scenarioName, sp)
		if err != nil {
			log.Fatal(err)
		}
		sc := cubism.ScenarioConfig(c)
		cfg.Init = sc.Init
		cfg.Boundaries = sc.Boundaries
		cfg.Wall = sc.Wall
		cfg.HasWall = sc.HasWall
		if *observablesPath != "" {
			scenarioObs = cubism.NewScenarioObserver(c)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "scenario %s: %d bubbles", c.Name, len(c.Bubbles))
			if c.Beta > 0 {
				fmt.Fprintf(os.Stderr, ", beta=%.3f, alpha0=%.4f", c.Beta, c.VoidFraction)
			}
			if c.RayleighTau > 0 {
				fmt.Fprintf(os.Stderr, ", rayleigh tau=%.3e", c.RayleighTau)
			}
			fmt.Fprintln(os.Stderr)
		}
	} else {
		switch *caseName {
		case "sod":
			cfg.Init = cubism.SodInit
		case "bubble":
			cfg.Init = cubism.CloudField([]cubism.Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.15}}, 0.02)
		case "cloud":
			cloudBubbles, err := cubism.GenerateCloud(cubism.CloudSpec{
				Center: [3]float64{0.5, 0.5, 0.55},
				Radius: 0.3,
				N:      *bubbles,
				RMin:   0.04, RMax: 0.09,
				Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "generated %d bubbles\n", len(cloudBubbles))
			}
			cfg.Init = cubism.CloudField(cloudBubbles, 0.015)
		default:
			log.Fatalf("unknown case %q", *caseName)
		}
	}
	if *wall {
		cfg.Boundaries = cubism.WallBC(cubism.ZLo)
		cfg.Wall = cubism.ZLo
		cfg.HasWall = true
	}

	// Per-step output: the structured record goes to the step log (when
	// enabled); here only a human summary line remains, -quiet silences it.
	summary, runErr := cubism.Run(cfg, func(s cubism.StepInfo) {
		if scenarioObs != nil {
			scenarioObs.OnStep(s)
		}
		if *quiet {
			return
		}
		if s.HasDiag {
			fmt.Printf("step %6d  t=%.6e  dt=%.3e  wall=%6.1fms  max_p=%.4e  wall_p=%.4e  ke=%.4e  R=%.4e\n",
				s.Step, s.Time, s.DT, s.WallMS, s.Diag.MaxPressure, s.Diag.WallPressure,
				s.Diag.KineticEnergy, s.Diag.EquivRadius)
		}
		for q, rate := range s.DumpRates {
			fmt.Fprintf(os.Stderr, "step %d: %s compressed %.1f:1 (%.1f MB/s)\n",
				s.Step, q, rate, s.DumpMBps)
		}
	})
	close(runDone)
	if runErr != nil {
		flushTelemetry()
		log.Fatal(runErr)
	}
	flushTelemetry()
	if scenarioObs != nil && (cfg.Net == nil || cfg.Net.Rank == 0) {
		// Written on the normal AND the graceful-stop path: a canceled job
		// still leaves its partial observables as a usable artifact.
		data, err := json.MarshalIndent(scenarioObs.Metrics(), "", "  ")
		if err == nil {
			err = os.WriteFile(*observablesPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			log.Fatalf("observables: %v", err)
		}
	}
	if summary.Stopped && (cfg.Net == nil || cfg.Net.Rank == 0) {
		fmt.Fprintf(os.Stderr, "stopped gracefully at step %d (reason: %s)\n",
			summary.Steps, summary.StopReason)
	}
	if code := signalExit.Load(); code != 0 {
		// The run drained at the stop boundary; exit with the signal's
		// conventional code so supervisors see the interruption.
		os.Exit(int(code))
	}
	if traceFile != nil {
		fmt.Fprintf(os.Stderr, "telemetry: wrote %d spans to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
			tel.Tracer.Len(), *tracePath)
	}
	if cfg.Net == nil || cfg.Net.Rank == 0 {
		if *obsReport == "-" && summary.Observatory != nil {
			if err := summary.Observatory.WriteText(os.Stderr); err != nil {
				log.Fatalf("imbalance report: %v", err)
			}
		}
		if *obsTrace != "" {
			fmt.Fprintf(os.Stderr, "observatory: merged trace at %s\n", *obsTrace)
		}
		// The summary is gathered on rank 0; peer ranks hold a zero value.
		fmt.Fprintf(os.Stderr, "\n%d steps, t=%.3e, wall %v, %.2f Mpoints/s\n%s",
			summary.Steps, summary.SimTime, summary.WallTime.Round(1e6),
			summary.PointsPerSec/1e6, summary.Report)
	}
}
