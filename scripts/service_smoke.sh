#!/usr/bin/env bash
# Service smoke (docs/service.md): start mpcf-serve, submit two concurrent
# jobs over the REST API — one in-process, one 2-rank tcp fleet — stream
# both event logs to completion, and assert both succeeded with the metrics
# endpoint reporting zero stuck jobs.
set -euo pipefail

BIN=${BIN:-bin}
TMP=${TMP:-service-smoke.tmp}
ADDR=${ADDR:-127.0.0.1:18977}
BASE="http://$ADDR"

rm -rf "$TMP" && mkdir -p "$TMP"
"$BIN/mpcf-serve" -addr "$ADDR" -data "$TMP/data" -workers 2 >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

submit() {
  curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "$1" |
    grep -o '"id": *"j-[0-9a-f]*"' | head -n 1 | grep -o 'j-[0-9a-f]*'
}

INPROC_ID=$(submit '{"scenario":"shockbubble","tenant":"smoke-inproc","params":{"blocks":[2,2,2],"block_size":8,"steps":4,"diag_every":2,"workers":2}}')
FLEET_ID=$(submit '{"scenario":"shockbubble","tenant":"smoke-fleet","mode":"fleet","params":{"ranks":[2,1,1],"blocks":[2,2,2],"block_size":8,"steps":4,"diag_every":2,"workers":2}}')
test -n "$INPROC_ID" && test -n "$FLEET_ID"
echo "submitted inproc=$INPROC_ID fleet=$FLEET_ID"

# Stream both event logs concurrently; the chunked stream closes at the
# job's terminal state.
curl -fsS -N "$BASE/v1/jobs/$INPROC_ID/events" >"$TMP/inproc.events" &
S1=$!
curl -fsS -N "$BASE/v1/jobs/$FLEET_ID/events" >"$TMP/fleet.events" &
S2=$!
wait "$S1" "$S2"

for f in inproc fleet; do
  if ! tail -n 1 "$TMP/$f.events" | grep -q '"state":"succeeded"'; then
    echo "FAIL: $f job did not end succeeded"
    cat "$TMP/$f.events" "$TMP/serve.log"
    exit 1
  fi
  if [ "$(grep -c '"type":"step"' "$TMP/$f.events")" -ne 4 ]; then
    echo "FAIL: $f streamed the wrong step-event count"
    cat "$TMP/$f.events"
    exit 1
  fi
done

# Capture bodies before grepping: grep -q exits at the first match, and
# under pipefail the SIGPIPE it sends curl would fail the pipeline.
curl -fsS "$BASE/v1/jobs/$INPROC_ID/observables" >"$TMP/inproc.obs"
curl -fsS "$BASE/v1/jobs/$FLEET_ID/observables" >"$TMP/fleet.obs"
grep -q peak_amp "$TMP/inproc.obs"
grep -q peak_amp "$TMP/fleet.obs"

# The event stream closes at the terminal event, a moment before the
# service finishes its bookkeeping — give the counters a few beats.
ok=0
for _ in $(seq 1 50); do
  curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
  if grep -q 'mpcf_service_jobs_done_total{state="succeeded"} 2' "$TMP/metrics.txt" &&
     grep -q 'mpcf_service_jobs_queued 0' "$TMP/metrics.txt" &&
     grep -q 'mpcf_service_jobs_running 0' "$TMP/metrics.txt"; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "FAIL: metrics never settled to two successes and zero stuck jobs"
  grep mpcf_service "$TMP/metrics.txt" || true
  exit 1
fi
curl -fsS "$BASE/healthz" >"$TMP/healthz.json"
grep -q '"stuck": *0' "$TMP/healthz.json"

echo "service-smoke: inproc + 2-rank fleet jobs succeeded, streams complete, zero stuck jobs"
