package cubism_test

import (
	"fmt"

	"cubism"
)

// Example runs a minimal Sod shock tube and prints the step count — the
// smallest complete use of the public API.
func Example() {
	summary, err := cubism.Run(cubism.Config{
		Blocks:    [3]int{2, 1, 1},
		BlockSize: 8,
		Extent:    1.0,
		Init:      cubism.SodInit,
		Steps:     3,
		DiagEvery: 1 << 30,
	}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("steps:", summary.Steps)
	// Output: steps: 3
}

// ExampleGenerateCloud shows reproducible bubble-cloud generation.
func ExampleGenerateCloud() {
	bubbles, err := cubism.GenerateCloud(cubism.CloudSpec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.3,
		N:      5,
		RMin:   0.03, RMax: 0.06,
		Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("bubbles:", len(bubbles))
	// Output: bubbles: 5
}
