package physics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimConsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Prim{
			Rho: 0.1 + rng.Float64()*1000,
			U:   rng.NormFloat64() * 100,
			V:   rng.NormFloat64() * 100,
			W:   rng.NormFloat64() * 100,
			P:   1 + rng.Float64()*1e7,
			G:   0.5 + rng.Float64()*3,
			Pi:  rng.Float64() * 1e8,
		}
		q := p.ToCons().ToPrim()
		tol := 1e-9
		rel := func(a, b float64) float64 { return math.Abs(a-b) / (math.Abs(a) + math.Abs(b) + 1) }
		return rel(q.Rho, p.Rho) < tol && rel(q.U, p.U) < tol && rel(q.V, p.V) < tol &&
			rel(q.W, p.W) < tol && rel(q.P, p.P) < tol && rel(q.G, p.G) < tol && rel(q.Pi, p.Pi) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaterialFunctions(t *testing.T) {
	// Vapor: γ=1.4, pc=1e5: Γ = 2.5, Π = 1.4e5*2.5 = 3.5e5.
	if g := Vapor.G(); math.Abs(g-2.5) > 1e-12 {
		t.Errorf("vapor Γ = %g, want 2.5", g)
	}
	if pi := Vapor.P(); math.Abs(pi-3.5e5) > 1e-6 {
		t.Errorf("vapor Π = %g, want 3.5e5", pi)
	}
	// Round trip through the effective getters.
	pr := Prim{Rho: 1, P: 1e5, G: Liquid.G(), Pi: Liquid.P()}
	if gm := pr.Gamma(); math.Abs(gm-6.59) > 1e-12 {
		t.Errorf("effective γ = %g, want 6.59", gm)
	}
	if pc := pr.PcEff(); math.Abs(pc-4096e5)/4096e5 > 1e-12 {
		t.Errorf("effective pc = %g, want %g", pc, 4096e5)
	}
}

func TestSoundSpeedIdealGas(t *testing.T) {
	// Ideal gas (Π=0): c = sqrt(γ p / ρ).
	p := Prim{Rho: 1.4, P: 1, G: 2.5, Pi: 0}
	want := math.Sqrt(1.4 * 1 / 1.4)
	if c := SoundSpeed(p.Rho, p.P, p.G, p.Pi); math.Abs(c-want) > 1e-12 {
		t.Errorf("c = %g, want %g", c, want)
	}
	// Negative argument clamps to zero instead of NaN.
	if c := SoundSpeed(1, -10, 2.5, 0); c != 0 {
		t.Errorf("clamped c = %g, want 0", c)
	}
}

func TestCharVel(t *testing.T) {
	p := Prim{Rho: 1.4, P: 1, U: -3, V: 1, W: 0.5, G: 2.5, Pi: 0}
	want := 3 + math.Sqrt(1.4*1/1.4)
	if v := p.CharVel(); math.Abs(v-want) > 1e-12 {
		t.Errorf("CharVel = %g, want %g", v, want)
	}
}

func TestMixEndpoints(t *testing.T) {
	g0, pi0 := Mix(Liquid, Vapor, 0)
	if g0 != Liquid.G() || pi0 != Liquid.P() {
		t.Error("Mix(0) is not pure liquid")
	}
	g1, pi1 := Mix(Liquid, Vapor, 1)
	if g1 != Vapor.G() || pi1 != Vapor.P() {
		t.Error("Mix(1) is not pure vapor")
	}
}

// TestRiemannSod checks the exact solver against the textbook Sod star
// state (Toro): p* = 0.30313, u* = 0.92745.
func TestRiemannSod(t *testing.T) {
	g := 1 / (1.4 - 1)
	r := RiemannExact{
		Left:  Prim{Rho: 1, P: 1, G: g, Pi: 0},
		Right: Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0},
	}
	pstar, ustar, err := r.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pstar-0.30313) > 1e-4 {
		t.Errorf("p* = %g, want 0.30313", pstar)
	}
	if math.Abs(ustar-0.92745) > 1e-4 {
		t.Errorf("u* = %g, want 0.92745", ustar)
	}
	// Sampled states: left of the fan head is undisturbed.
	if s := r.Sample(-2); math.Abs(s.Rho-1) > 1e-12 {
		t.Errorf("undisturbed left rho = %g", s.Rho)
	}
	// Right of the shock is undisturbed.
	if s := r.Sample(2); math.Abs(s.Rho-0.125) > 1e-12 {
		t.Errorf("undisturbed right rho = %g", s.Rho)
	}
	// Density on the left of the contact (Toro: 0.42632).
	if s := r.Sample(ustar - 1e-6); math.Abs(s.Rho-0.42632) > 1e-4 {
		t.Errorf("left-of-contact rho = %g, want 0.42632", s.Rho)
	}
	// Density on the right of the contact (Toro: 0.26557).
	if s := r.Sample(ustar + 1e-6); math.Abs(s.Rho-0.26557) > 1e-4 {
		t.Errorf("right-of-contact rho = %g, want 0.26557", s.Rho)
	}
	// Inside the left rarefaction fan the state must satisfy the
	// characteristic relation u - c = s exactly.
	for _, s := range []float64{-1.0, -0.7, -0.3} {
		st := r.Sample(s)
		c := SoundSpeed(st.Rho, st.P, st.G, st.Pi)
		if math.Abs(st.U-c-s) > 1e-6 {
			t.Errorf("fan state at s=%g violates u-c=s: u=%g c=%g", s, st.U, c)
		}
	}
}

// TestRiemannSymmetric: equal states with opposite velocities produce a
// symmetric solution with u*=0.
func TestRiemannSymmetric(t *testing.T) {
	g := 1 / (1.4 - 1)
	r := RiemannExact{
		Left:  Prim{Rho: 1, U: 1, P: 1, G: g, Pi: 0},
		Right: Prim{Rho: 1, U: -1, P: 1, G: g, Pi: 0},
	}
	pstar, ustar, err := r.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ustar) > 1e-10 {
		t.Errorf("u* = %g, want 0", ustar)
	}
	if pstar <= 1 {
		t.Errorf("colliding streams must compress: p* = %g", pstar)
	}
}

// TestRiemannStiffenedGas: a liquid-like stiffened gas shock tube must
// produce a consistent solution (star pressure between the two inputs for
// an expansion-compression pair, positive density everywhere).
func TestRiemannStiffenedGas(t *testing.T) {
	r := RiemannExact{
		Left:  Prim{Rho: 1000, P: 100e5, G: Liquid.G(), Pi: Liquid.P()},
		Right: Prim{Rho: 1000, P: 1e5, G: Liquid.G(), Pi: Liquid.P()},
	}
	pstar, _, err := r.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if pstar < 1e5 || pstar > 100e5 {
		t.Errorf("p* = %g outside the bracketing pressures", pstar)
	}
	for _, s := range []float64{-1500, -100, 0, 100, 1500} {
		st := r.Sample(s)
		if st.Rho <= 0 {
			t.Errorf("negative density %g at s=%g", st.Rho, s)
		}
	}
}

func TestRiemannVacuum(t *testing.T) {
	g := 1 / (1.4 - 1)
	r := RiemannExact{
		Left:  Prim{Rho: 1, U: -100, P: 1e-3, G: g, Pi: 0},
		Right: Prim{Rho: 1, U: 100, P: 1e-3, G: g, Pi: 0},
	}
	if _, _, err := r.Solve(); err == nil {
		t.Error("expected vacuum error for strongly receding states")
	}
}

func TestEnergyPressureInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.1 + rng.Float64()*1e8
		ke := rng.Float64() * 1e6
		g := 0.5 + rng.Float64()*5
		pi := rng.Float64() * 1e9
		e := Energy(p, ke, g, pi)
		back := Pressure(e, ke, g, pi)
		// Catastrophic cancellation is bounded by the magnitude of the
		// largest term relative to p.
		scale := math.Max(e, math.Max(pi, ke)) / g
		return math.Abs(back-p) <= 1e-12*scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
