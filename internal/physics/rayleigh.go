package physics

import (
	"errors"
	"math"
)

// Rayleigh–Plesset bubble dynamics (Lord Rayleigh 1917, paper ref. [61]).
// The paper positions its simulations against the century of cavitation
// modeling built on the spherical collapse of an isolated bubble; this
// integrator provides that classical reference solution so the 3D solver
// can be compared against it (examples, tests) — the incompressible,
// inviscid, surface-tension-free form:
//
//	R R̈ + (3/2) Ṙ² = (p_B - p_∞) / ρ
//
// with p_B the (constant or polytropic) bubble pressure and p_∞ the
// ambient liquid pressure.

// RayleighPlesset integrates the bubble radius under constant ambient
// conditions.
type RayleighPlesset struct {
	R0   float64 // initial radius [m]
	PInf float64 // ambient liquid pressure [Pa]
	PB0  float64 // initial bubble pressure [Pa]
	Rho  float64 // liquid density [kg/m³]
	// Kappa is the polytropic exponent of the bubble contents: 0 keeps the
	// bubble pressure constant; 1.4 models adiabatic vapor compression.
	Kappa float64
}

// errRPStalled reports that the integration exceeded the step budget.
var errRPStalled = errors.New("physics: Rayleigh-Plesset integration stalled")

// bubblePressure returns p_B at radius r.
func (rp RayleighPlesset) bubblePressure(r float64) float64 {
	if rp.Kappa == 0 {
		return rp.PB0
	}
	return rp.PB0 * math.Pow(rp.R0/r, 3*rp.Kappa)
}

// rhs evaluates (Ṙ, R̈) at state (r, v).
func (rp RayleighPlesset) rhs(r, v float64) (float64, float64) {
	acc := ((rp.bubblePressure(r)-rp.PInf)/rp.Rho - 1.5*v*v) / r
	return v, acc
}

// Integrate advances the radius from R0 at rest until it shrinks below
// rMin (fraction of R0) or tMax elapses, returning the time series with
// the requested sampling interval. Classic RK4 with adaptive step capping
// near the singular final collapse.
func (rp RayleighPlesset) Integrate(tMax, sample float64) (times, radii []float64, err error) {
	r, v := rp.R0, 0.0
	t := 0.0
	nextSample := 0.0
	const rMinFrac = 1e-3
	for steps := 0; t < tMax; steps++ {
		if steps > 50_000_000 {
			return times, radii, errRPStalled
		}
		if t >= nextSample {
			times = append(times, t)
			radii = append(radii, r)
			nextSample += sample
		}
		// Adaptive dt: resolve the local dynamical time scale.
		scale := math.Abs(v)/r + math.Sqrt(math.Abs(rp.PInf-rp.bubblePressure(r))/rp.Rho)/r
		dt := 1e-3 / math.Max(scale, 1e-12)
		if t+dt > tMax {
			dt = tMax - t
		}
		// RK4.
		k1r, k1v := rp.rhs(r, v)
		k2r, k2v := rp.rhs(r+0.5*dt*k1r, v+0.5*dt*k1v)
		k3r, k3v := rp.rhs(r+0.5*dt*k2r, v+0.5*dt*k2v)
		k4r, k4v := rp.rhs(r+dt*k3r, v+dt*k3v)
		r += dt / 6 * (k1r + 2*k2r + 2*k3r + k4r)
		v += dt / 6 * (k1v + 2*k2v + 2*k3v + k4v)
		t += dt
		if r <= rMinFrac*rp.R0 {
			times = append(times, t)
			radii = append(radii, r)
			return times, radii, nil
		}
	}
	times = append(times, t)
	radii = append(radii, r)
	return times, radii, nil
}

// CollapseTime integrates until the radius reaches the given fraction of
// R0 and returns the elapsed time.
func (rp RayleighPlesset) CollapseTime(frac float64) (float64, error) {
	r, v := rp.R0, 0.0
	t := 0.0
	for steps := 0; ; steps++ {
		if steps > 50_000_000 {
			return t, errRPStalled
		}
		scale := math.Abs(v)/r + math.Sqrt(math.Abs(rp.PInf-rp.bubblePressure(r))/rp.Rho)/r
		dt := 1e-3 / math.Max(scale, 1e-12)
		k1r, k1v := rp.rhs(r, v)
		k2r, k2v := rp.rhs(r+0.5*dt*k1r, v+0.5*dt*k1v)
		k3r, k3v := rp.rhs(r+0.5*dt*k2r, v+0.5*dt*k2v)
		k4r, k4v := rp.rhs(r+dt*k3r, v+dt*k3v)
		r += dt / 6 * (k1r + 2*k2r + 2*k3r + k4r)
		v += dt / 6 * (k1v + 2*k2v + 2*k3v + k4v)
		t += dt
		if r <= frac*rp.R0 {
			return t, nil
		}
	}
}

// RayleighCollapseTime is the closed-form collapse time of an empty cavity,
// τ = 0.91468 R0 sqrt(ρ/Δp) — the classical result the integrator is
// validated against.
func RayleighCollapseTime(r0, rho, dp float64) float64 {
	return 0.91468 * r0 * math.Sqrt(rho/dp)
}
