// Package physics defines the governing-equation layer of the solver: the
// stiffened equation of state coupling the two phases, conversions between
// conserved and primitive variables, characteristic speeds, and material
// presets matching the paper's simulation setup (§7).
//
// The solver evolves the compressible Euler equations for density, momentum
// and total energy (paper eq. 1) together with two advected material
// functions (eq. 2):
//
//	Γ = 1/(γ-1),  Π = γ p_c/(γ-1)
//
// coupled through the stiffened equation of state Γp + Π = E - ρ|u|²/2.
// Reconstructing Γ and Π (rather than γ, p_c) preserves the zero jump
// conditions of pressure and velocity across contact discontinuities
// (Johnsen & Ham 2012, paper ref. [45]).
package physics

import "math"

// NQ is the number of flow quantities carried per cell:
// ρ, ρu, ρv, ρw, E, Γ, Π.
const NQ = 7

// Indices of the quantities inside a cell.
const (
	QR = 0 // density ρ
	QU = 1 // x-momentum ρu
	QV = 2 // y-momentum ρv
	QW = 3 // z-momentum ρw
	QE = 4 // total energy E
	QG = 5 // Γ = 1/(γ-1)
	QP = 6 // Π = γ p_c/(γ-1)
)

// QuantityNames maps quantity index to a short name used in dumps and tools.
var QuantityNames = [NQ]string{"rho", "ru", "rv", "rw", "E", "G", "P"}

// Material describes one pure phase by its specific heat ratio and
// correction pressure.
type Material struct {
	Gamma float64 // specific heat ratio γ
	Pc    float64 // correction pressure p_c [Pa]
}

// G returns Γ = 1/(γ-1) for the material.
func (m Material) G() float64 { return 1 / (m.Gamma - 1) }

// P returns Π = γ p_c/(γ-1) for the material.
func (m Material) P() float64 { return m.Gamma * m.Pc / (m.Gamma - 1) }

// Paper §7 material properties: γ and p_c are 1.4 and 1 bar for pure vapor,
// 6.59 and 4096 bar for pure liquid; initial states 1 kg/m³ / 0.0234 bar for
// vapor and 1000 kg/m³ / 100 bar for the pressurized liquid.
const Bar = 1e5 // Pa

// Vapor is the pure vapor phase of the paper's cloud simulations.
var Vapor = Material{Gamma: 1.4, Pc: 1 * Bar}

// Liquid is the pressurized-liquid phase of the paper's cloud simulations.
var Liquid = Material{Gamma: 6.59, Pc: 4096 * Bar}

// InitialState holds the initial primitive state of one phase.
type InitialState struct {
	Rho float64 // density [kg/m³]
	U   float64 // velocity [m/s]
	P   float64 // pressure [Pa]
}

// VaporInit and LiquidInit are the paper's initial conditions.
var (
	VaporInit  = InitialState{Rho: 1, U: 0, P: 0.0234 * Bar}
	LiquidInit = InitialState{Rho: 1000, U: 0, P: 100 * Bar}
)

// Prim is a primitive-variable state.
type Prim struct {
	Rho     float64 // density
	U, V, W float64 // velocity components
	P       float64 // pressure
	G       float64 // Γ
	Pi      float64 // Π
}

// Cons is a conserved-variable state.
type Cons struct {
	R          float64 // ρ
	RU, RV, RW float64 // momenta
	E          float64 // total energy
	G          float64 // Γ (advected)
	Pi         float64 // Π (advected)
}

// ToCons converts primitives to conserved variables.
func (p Prim) ToCons() Cons {
	ke := 0.5 * p.Rho * (p.U*p.U + p.V*p.V + p.W*p.W)
	return Cons{
		R:  p.Rho,
		RU: p.Rho * p.U,
		RV: p.Rho * p.V,
		RW: p.Rho * p.W,
		E:  p.G*p.P + p.Pi + ke,
		G:  p.G,
		Pi: p.Pi,
	}
}

// ToPrim converts conserved variables to primitives.
func (c Cons) ToPrim() Prim {
	inv := 1 / c.R
	u, v, w := c.RU*inv, c.RV*inv, c.RW*inv
	ke := 0.5 * (c.RU*u + c.RV*v + c.RW*w)
	return Prim{
		Rho: c.R,
		U:   u, V: v, W: w,
		P:  Pressure(c.E, ke, c.G, c.Pi),
		G:  c.G,
		Pi: c.Pi,
	}
}

// Pressure inverts the stiffened equation of state:
// p = (E - ke - Π)/Γ.
func Pressure(e, ke, g, pi float64) float64 { return (e - ke - pi) / g }

// Energy evaluates the stiffened equation of state:
// E = Γp + Π + ke.
func Energy(p, ke, g, pi float64) float64 { return g*p + pi + ke }

// SoundSpeed returns the speed of sound of the mixture,
// c = sqrt(((Γ+1)p + Π) / (Γ ρ)), which reduces to sqrt(γ(p+p_c)/ρ)
// in a pure phase.
func SoundSpeed(rho, p, g, pi float64) float64 {
	c2 := ((g+1)*p + pi) / (g * rho)
	if c2 < 0 {
		// Near-vacuum states from aggressive reconstruction can momentarily
		// produce tiny negative arguments; clamp to keep DT finite.
		return 0
	}
	return math.Sqrt(c2)
}

// CharVel returns the maximum characteristic velocity |u|+c of a state; its
// global maximum drives the CFL time step (the paper's DT/SOS kernel).
func (p Prim) CharVel() float64 {
	c := SoundSpeed(p.Rho, p.P, p.G, p.Pi)
	m := math.Abs(p.U)
	if a := math.Abs(p.V); a > m {
		m = a
	}
	if a := math.Abs(p.W); a > m {
		m = a
	}
	return m + c
}

// Gamma returns the effective specific heat ratio γ = 1 + 1/Γ of the state.
func (p Prim) Gamma() float64 { return 1 + 1/p.G }

// PcEff returns the effective correction pressure p_c = Π/(Γ+1) ... derived
// from Π = γ p_c Γ with γ = 1+1/Γ: p_c = Π/(Γ γ) = Π/(Γ+1).
func (p Prim) PcEff() float64 { return p.Pi / (p.G + 1) }

// Mix linearly blends the material functions of two phases by the volume
// fraction a of phase m2 (a=0 → m1, a=1 → m2). Blending Γ and Π (not γ and
// p_c) is the paper's interface-capturing choice.
func Mix(m1, m2 Material, a float64) (g, pi float64) {
	g = (1-a)*m1.G() + a*m2.G()
	pi = (1-a)*m1.P() + a*m2.P()
	return
}

// KineticEnergy returns ke = ρ|u|²/2 from conserved variables.
func (c Cons) KineticEnergy() float64 {
	return 0.5 * (c.RU*c.RU + c.RV*c.RV + c.RW*c.RW) / c.R
}
