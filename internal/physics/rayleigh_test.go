package physics

import (
	"math"
	"testing"
)

// TestRayleighCollapseTime: the RK4 integration of an (almost) empty
// cavity must reproduce the classical Rayleigh collapse time
// τ = 0.91468 R0 sqrt(ρ/Δp) within a fraction of a percent.
func TestRayleighCollapseTime(t *testing.T) {
	rp := RayleighPlesset{
		R0:    100e-6,    // 100 micron, the paper's bubble scale
		PInf:  100 * Bar, // pressurized liquid
		PB0:   0,         // empty cavity (Rayleigh's limit)
		Rho:   1000,
		Kappa: 0,
	}
	got, err := rp.CollapseTime(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := RayleighCollapseTime(rp.R0, rp.Rho, rp.PInf)
	if rel := math.Abs(got-want) / want; rel > 0.005 {
		t.Errorf("collapse time %g, Rayleigh %g (rel err %.3f)", got, want, rel)
	}
}

// TestRayleighScaling: τ scales linearly with R0 and as 1/sqrt(Δp).
func TestRayleighScaling(t *testing.T) {
	base := RayleighPlesset{R0: 50e-6, PInf: 100 * Bar, PB0: 0, Rho: 1000}
	t1, err := base.CollapseTime(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	doubleR := base
	doubleR.R0 *= 2
	t2, err := doubleR.CollapseTime(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(t2-2*t1) / (2 * t1); rel > 0.01 {
		t.Errorf("radius scaling: τ(2R)=%g, want 2τ(R)=%g", t2, 2*t1)
	}
	quadP := base
	quadP.PInf *= 4
	t4, err := quadP.CollapseTime(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(t4-t1/2) / (t1 / 2); rel > 0.01 {
		t.Errorf("pressure scaling: τ(4Δp)=%g, want τ/2=%g", t4, t1/2)
	}
}

// TestRayleighPolytropicRebound: with adiabatic bubble contents the
// collapse arrests and the radius rebounds instead of reaching zero.
func TestRayleighPolytropicRebound(t *testing.T) {
	rp := RayleighPlesset{
		R0:    100e-6,
		PInf:  100 * Bar,
		PB0:   0.0234 * Bar, // the paper's vapor pressure
		Rho:   1000,
		Kappa: 1.4,
	}
	tau := RayleighCollapseTime(rp.R0, rp.Rho, rp.PInf)
	times, radii, err := rp.Integrate(3*tau, tau/200)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 10 {
		t.Fatalf("too few samples: %d", len(times))
	}
	// Find the minimum radius; it must be positive (gas cushion) and the
	// radius must grow again afterwards (rebound).
	minR, minI := radii[0], 0
	for i, r := range radii {
		if r < minR {
			minR, minI = r, i
		}
	}
	if minR <= 0 {
		t.Fatal("radius collapsed to zero despite gas cushion")
	}
	if minI == len(radii)-1 {
		t.Fatal("no rebound observed within 3 collapse times")
	}
	if radii[len(radii)-1] <= minR {
		t.Errorf("radius did not rebound: min %g, final %g", minR, radii[len(radii)-1])
	}
	// The minimum must occur near the Rayleigh time (within 25%: the gas
	// cushion delays it slightly).
	if dev := math.Abs(times[minI]-tau) / tau; dev > 0.25 {
		t.Errorf("collapse at t=%g, Rayleigh time %g (dev %.2f)", times[minI], tau, dev)
	}
}

func TestRayleighMonotoneBeforeCollapse(t *testing.T) {
	rp := RayleighPlesset{R0: 100e-6, PInf: 100 * Bar, PB0: 0, Rho: 1000}
	tau := RayleighCollapseTime(rp.R0, rp.Rho, rp.PInf)
	_, radii, err := rp.Integrate(0.95*tau, tau/100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(radii); i++ {
		if radii[i] > radii[i-1]+1e-15 {
			t.Fatalf("radius grew during collapse at sample %d", i)
		}
	}
}
