package physics

import (
	"errors"
	"math"
)

// RiemannExact solves the one-dimensional Riemann problem for the stiffened
// gas equation of state exactly. It generalizes the classical ideal-gas
// solver (Toro) by the substitution p → p + p_c; with Pc=0 it reduces to the
// textbook solution and is used by the tests to validate the HLLE solver and
// the full solver stack on Sod's shock tube.
type RiemannExact struct {
	Left, Right Prim
	// pstar, ustar cache the star-region solution after Solve.
	pstar, ustar float64
	solved       bool
}

// errRiemannVacuum reports that a vacuum forms between the states.
var errRiemannVacuum = errors.New("physics: vacuum in Riemann problem")

// Star returns the cached star-region pressure and velocity, solving first
// when needed. The verification harness records these alongside the error
// norms so a failing tolerance band can be traced to the reference itself.
func (r *RiemannExact) Star() (pstar, ustar float64, err error) {
	if !r.solved {
		if _, _, err := r.Solve(); err != nil {
			return 0, 0, err
		}
	}
	return r.pstar, r.ustar, nil
}

func gammaPc(s Prim) (gamma, pc float64) {
	gamma = s.Gamma()
	pc = s.PcEff()
	return
}

// fK evaluates Toro's flux function f_K(p) and its derivative for one side.
func fK(p float64, s Prim) (f, df float64) {
	gamma, pc := gammaPc(s)
	a := SoundSpeed(s.Rho, s.P, s.G, s.Pi)
	if p > s.P { // shock
		A := 2 / ((gamma + 1) * s.Rho)
		B := (gamma - 1) / (gamma + 1) * (s.P + pc)
		ps := p + pc // shifted pressure
		q := math.Sqrt(A / (ps + B))
		f = (p - s.P) * q
		df = q * (1 - (p-s.P)/(2*(ps+B)))
	} else { // rarefaction
		ps := p + pc
		psk := s.P + pc
		pr := ps / psk
		f = 2 * a / (gamma - 1) * (math.Pow(pr, (gamma-1)/(2*gamma)) - 1)
		df = 1 / (s.Rho * a) * math.Pow(pr, -(gamma+1)/(2*gamma))
	}
	return
}

// Solve finds the star-region pressure and velocity by Newton iteration.
func (r *RiemannExact) Solve() (pstar, ustar float64, err error) {
	l, rr := r.Left, r.Right
	aL := SoundSpeed(l.Rho, l.P, l.G, l.Pi)
	aR := SoundSpeed(rr.Rho, rr.P, rr.G, rr.Pi)
	gL, _ := gammaPc(l)
	gR, _ := gammaPc(rr)
	// Vacuum check (pressure positivity condition).
	if 2*aL/(gL-1)+2*aR/(gR-1) <= rr.U-l.U {
		return 0, 0, errRiemannVacuum
	}
	// Initial guess: two-rarefaction approximation on the shifted pressures.
	p := 0.5*(l.P+rr.P) - 0.125*(rr.U-l.U)*(l.Rho+rr.Rho)*(aL+aR)
	if p < 1e-8*(l.P+rr.P) {
		p = 1e-8 * (l.P + rr.P)
	}
	for iter := 0; iter < 100; iter++ {
		fL, dL := fK(p, l)
		fR, dR := fK(p, rr)
		g := fL + fR + (rr.U - l.U)
		dg := dL + dR
		dp := g / dg
		pn := p - dp
		if pn <= -min(l.PcEff(), rr.PcEff()) {
			pn = 0.5 * p // damp toward positivity
		}
		if math.Abs(pn-p) < 1e-12*(math.Abs(pn)+1e-300) {
			p = pn
			break
		}
		p = pn
	}
	fL, _ := fK(p, l)
	fR, _ := fK(p, rr)
	u := 0.5*(l.U+rr.U) + 0.5*(fR-fL)
	r.pstar, r.ustar, r.solved = p, u, true
	return p, u, nil
}

// Sample returns the exact solution state at similarity coordinate s = x/t.
func (r *RiemannExact) Sample(s float64) Prim {
	if !r.solved {
		if _, _, err := r.Solve(); err != nil {
			// Vacuum: return a near-vacuum state; callers validate upstream.
			return Prim{Rho: 1e-12, P: 1e-12, G: r.Left.G, Pi: 0}
		}
	}
	p, u := r.pstar, r.ustar
	if s <= u {
		return sampleSide(r.Left, p, u, s, -1)
	}
	return sampleSide(r.Right, p, u, s, +1)
}

// sampleSide samples left (-1) or right (+1) of the contact.
func sampleSide(k Prim, pstar, ustar, s float64, sign float64) Prim {
	gamma, pc := gammaPc(k)
	a := SoundSpeed(k.Rho, k.P, k.G, k.Pi)
	psK := k.P + pc
	psS := pstar + pc
	out := k // carries G, Pi, V, W of the side
	if pstar > k.P {
		// Shock on this side.
		ratio := psS / psK
		gm := (gamma - 1) / (gamma + 1)
		sSpeed := k.U + sign*a*math.Sqrt((gamma+1)/(2*gamma)*ratio+(gamma-1)/(2*gamma))
		if sign*s >= sign*sSpeed {
			return k // ahead of shock: undisturbed
		}
		out.Rho = k.Rho * (ratio + gm) / (gm*ratio + 1)
		out.U = ustar
		out.P = pstar
		return out
	}
	// Rarefaction on this side.
	aStar := a * math.Pow(psS/psK, (gamma-1)/(2*gamma))
	head := k.U + sign*a
	tail := ustar + sign*aStar
	if sign*s >= sign*head {
		return k // ahead of the head: undisturbed
	}
	if sign*s <= sign*tail {
		out.Rho = k.Rho * math.Pow(psS/psK, 1/gamma)
		out.U = ustar
		out.P = pstar
		return out
	}
	// Inside the fan (Toro eqs. 4.56/4.63, generalized by p -> p + pc):
	// left fan uses (u-s), right fan (s-u); both collapse to sign*(s-u).
	gm1 := gamma - 1
	gp1 := gamma + 1
	fac := 2/gp1 + sign*gm1/(gp1*a)*(s-k.U)
	out.Rho = k.Rho * math.Pow(fac, 2/gm1)
	out.U = 2 / gp1 * (-sign*a + gm1/2*k.U + s)
	out.P = (psK)*math.Pow(fac, 2*gamma/gm1) - pc
	return out
}
