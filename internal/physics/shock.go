package physics

import "math"

// ShockedLiquid returns the post-shock state of the pressurized liquid for
// a planar pressure wave carrying pShock, the driver of shock-induced
// bubble collapse (the predecessor software's SC12 configuration and the
// elementary mechanism inside a collapsing cloud).
//
// The state follows the weak-shock approximation the examples have used
// since the seed: density compressed by the fixed ratio 1.1 of the §7
// shock-bubble setup, and the particle velocity from the mass/momentum
// jump conditions at that compression,
//
//	u = sqrt((p_s - p_∞)(1/ρ_∞ - 1/ρ_s)),
//
// directed along +x. For the pressure ratios of interest (≤ ~10× ambient,
// far below the liquid's stiffening pressure p_c = 4096 bar) the liquid is
// nearly incompressible and this closes the state without a full Hugoniot.
func ShockedLiquid(pShock float64) Prim {
	const compression = 1.1
	rho0, p0 := LiquidInit.Rho, LiquidInit.P
	rho := rho0 * compression
	u := 0.0
	if pShock > p0 {
		u = math.Sqrt((pShock - p0) * (1/rho0 - 1/rho))
	}
	return Prim{
		Rho: rho,
		U:   u,
		P:   pShock,
		G:   Liquid.G(),
		Pi:  Liquid.P(),
	}
}
