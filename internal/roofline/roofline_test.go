package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperMachineNumbers(t *testing.T) {
	// Table 2: BGQ ridge point 204.8/28 = 7.3 FLOP/B.
	if r := BGQ.Ridge(); math.Abs(r-7.3) > 0.05 {
		t.Errorf("BGQ ridge = %g, want ~7.3", r)
	}
	// §4: Monte Rosa ridge 9 FLOP/B, Piz Daint 8.4 FLOP/B.
	if r := MonteRosa.Ridge(); math.Abs(r-9) > 0.05 {
		t.Errorf("XE6 ridge = %g, want ~9", r)
	}
	if r := PizDaint.Ridge(); math.Abs(r-8.4) > 0.05 {
		t.Errorf("XC30 ridge = %g, want ~8.4", r)
	}
}

func TestAttainable(t *testing.T) {
	// Paper's example: 200 GFLOP/s peak, 30 GB/s, OI 0.1 -> 3 GFLOP/s.
	m := Machine{Name: "example", PeakGFLOPS: 200, MemBW: 30}
	if got := m.Attainable(0.1); math.Abs(got-3) > 1e-12 {
		t.Errorf("Attainable(0.1) = %g, want 3", got)
	}
	// Above the ridge: peak.
	if got := m.Attainable(100); got != 200 {
		t.Errorf("Attainable(100) = %g, want 200", got)
	}
	// Ridge point itself: peak.
	if got := m.Attainable(m.Ridge()); math.Abs(got-200) > 1e-9 {
		t.Errorf("Attainable(ridge) = %g, want 200", got)
	}
}

func TestAttainableMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return BGQ.Attainable(lo) <= BGQ.Attainable(hi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeakFractionBounds(t *testing.T) {
	for _, oi := range []float64{0.1, 1, 7.3, 50} {
		pf := BGQ.PeakFraction(oi)
		if pf <= 0 || pf > 1 {
			t.Errorf("PeakFraction(%g) = %g outside (0,1]", oi, pf)
		}
	}
}

func TestSystemsTable1(t *testing.T) {
	// Table 1: Sequoia 96 racks, 1.6M cores, 20.1 PFLOP/s.
	if Systems[0].Name != "Sequoia" || Systems[0].Racks != 96 || Systems[0].Cores != 1572864 {
		t.Errorf("Sequoia entry wrong: %+v", Systems[0])
	}
	// Rack peak: 0.21 PFLOP/s nominal.
	if math.Abs(RackGFLOPS-209715.2) > 1 {
		t.Errorf("rack peak = %g GFLOP/s, want ~0.21 PFLOP/s", RackGFLOPS)
	}
}

func TestMeasureHostSane(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmarks in short mode")
	}
	m := MeasureHost()
	if m.PeakGFLOPS < 0.1 || m.PeakGFLOPS > 1000 {
		t.Errorf("implausible host peak %g GFLOP/s", m.PeakGFLOPS)
	}
	if m.MemBW < 0.1 || m.MemBW > 10000 {
		t.Errorf("implausible host bandwidth %g GB/s", m.MemBW)
	}
}
