// Package roofline implements the roofline performance model (Williams et
// al., paper ref. [79]) that guided the paper's high performance techniques,
// plus the machine descriptions of the paper's experimental platforms
// (Tables 1, 2 and §4) used to project measured kernel behavior onto the
// original hardware for the portability analysis (Table 10).
package roofline

import (
	"fmt"
	"time"
)

// Machine characterizes one compute node by its nominal peak performance
// and measured memory bandwidth.
type Machine struct {
	Name       string
	PeakGFLOPS float64 // nominal peak, GFLOP/s per node
	MemBW      float64 // measured peak memory bandwidth, GB/s per node
}

// Paper platforms (§4).
var (
	// BGQ is one Blue Gene/Q node: 16 cores at 1.6 GHz, 204.8 GFLOP/s peak,
	// 28 GB/s measured memory bandwidth (Table 2).
	BGQ = Machine{Name: "IBM BGQ (BQC)", PeakGFLOPS: 204.8, MemBW: 28}
	// MonteRosa is one Cray XE6 node: 2P AMD Bulldozer, 540 GFLOP/s,
	// 60 GB/s aggregate.
	MonteRosa = Machine{Name: "Cray XE6 Monte Rosa", PeakGFLOPS: 540, MemBW: 60}
	// PizDaint is one Cray XC30 node: Sandy Bridge, 670 GFLOP/s, 80 GB/s.
	PizDaint = Machine{Name: "Cray XC30 Piz Daint", PeakGFLOPS: 670, MemBW: 80}
)

// System is a full installation (Table 1).
type System struct {
	Name    string
	Racks   int
	Cores   int
	PFLOPSs float64
}

// BGQ installations used by the paper (Table 1).
var Systems = []System{
	{Name: "Sequoia", Racks: 96, Cores: 1572864, PFLOPSs: 20.1},
	{Name: "Juqueen", Racks: 24, Cores: 393216, PFLOPSs: 5.0},
	{Name: "ZRL", Racks: 1, Cores: 16384, PFLOPSs: 0.2},
}

// RackGFLOPS is the nominal peak of one BGQ rack (32 node boards of 32
// nodes... 32 nodes per board x 32 boards: 1024 nodes): 0.21 PFLOP/s.
const RackGFLOPS = 1024 * 204.8

// Ridge returns the machine's ridge point in FLOP/Byte: kernels below it
// are memory-bound.
func (m Machine) Ridge() float64 { return m.PeakGFLOPS / m.MemBW }

// Attainable returns the roofline bound min(peak, OI*BW) for a kernel with
// the given operational intensity.
func (m Machine) Attainable(oi float64) float64 {
	bw := oi * m.MemBW
	if bw < m.PeakGFLOPS {
		return bw
	}
	return m.PeakGFLOPS
}

// PeakFraction returns Attainable/Peak: the best peak fraction the roofline
// model allows for the given operational intensity.
func (m Machine) PeakFraction(oi float64) float64 {
	return m.Attainable(oi) / m.PeakGFLOPS
}

// Project estimates the peak fraction a kernel reaches on machine m given
// its operational intensity and the efficiency observed on a reference
// machine (measured GFLOP/s divided by the reference roofline bound). This
// is the model behind the portability discussion of Table 10: the same
// kernel implementation realizes a similar fraction of its roofline bound
// across micro-architectures.
func (m Machine) Project(oi, efficiency float64) float64 {
	return efficiency * m.PeakFraction(oi)
}

// String renders the machine line used by reports.
func (m Machine) String() string {
	return fmt.Sprintf("%-22s peak %7.1f GFLOP/s  bw %5.1f GB/s  ridge %.1f FLOP/B",
		m.Name, m.PeakGFLOPS, m.MemBW, m.Ridge())
}

// MeasureHost estimates the host's effective scalar peak and memory
// bandwidth with two micro-benchmarks, returning a Machine usable in the
// same projections. The FLOP benchmark chains fused multiply-adds per the
// paper's counting convention (FMA = 2 FLOPs); the bandwidth benchmark
// streams a buffer much larger than cache.
func MeasureHost() Machine {
	// Peak: 8 independent FMA chains to fill the pipeline.
	const iters = 1 << 22
	a0, a1, a2, a3 := 1.0, 1.1, 1.2, 1.3
	a4, a5, a6, a7 := 1.4, 1.5, 1.6, 1.7
	const c1, c2 = 0.999999, 1e-9
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		a0 = a0*c1 + c2
		a1 = a1*c1 + c2
		a2 = a2*c1 + c2
		a3 = a3*c1 + c2
		a4 = a4*c1 + c2
		a5 = a5*c1 + c2
		a6 = a6*c1 + c2
		a7 = a7*c1 + c2
	}
	dt := time.Since(t0).Seconds()
	sink = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	gflops := float64(iters) * 16 / dt / 1e9 // 8 FMAs x 2 FLOPs

	// Bandwidth: stream-copy a 64 MB buffer.
	buf := make([]float64, 8<<20)
	dst := make([]float64, len(buf))
	for i := range buf {
		buf[i] = float64(i)
	}
	t0 = time.Now()
	const passes = 4
	for p := 0; p < passes; p++ {
		copy(dst, buf)
	}
	dt = time.Since(t0).Seconds()
	bytes := float64(passes) * float64(len(buf)) * 8 * 2 // read + write
	bw := bytes / dt / 1e9
	return Machine{Name: "host (measured, 1 core)", PeakGFLOPS: gflops, MemBW: bw}
}

// sink defeats dead-code elimination in MeasureHost.
var sink float64
