// Package qpx models the IBM Blue Gene/Q QPX vector instruction set as a
// 4-lane double-precision value type.
//
// The paper's core kernels (RHS, DT, UP, FWT) are explicitly vectorized with
// QPX intrinsics: 4-wide fused multiply-adds, inter-lane permutations and
// sign-based conditional selects. Go exposes no vector intrinsics, so this
// package substitutes a portable model: Vec4 is a four-field struct whose
// method set mirrors the QPX operations used by CUBISM-MPCF. Kernels written
// against Vec4 keep the *structure* of the vector code — AoS/SoA conversion,
// lane shuffles for stencil shifts, branch-free selects — which is what the
// paper's FLOP/instruction-density analysis (Table 8) measures.
//
// Vec4 is a struct rather than a [4]float64 array because the Go compiler
// SSA-decomposes small structs into registers but spills arrays to the
// stack; with the struct layout the whole arithmetic of a kernel stays in
// registers, exactly like a vector register file. The four lanes still
// execute serially on the host CPU; absolute throughput is therefore that
// of scalar hardware.
package qpx

import "math"

// Width is the SIMD width of the modeled QPX unit (4 doubles).
const Width = 4

// Vec4 is one QPX register: four double-precision lanes.
type Vec4 struct {
	A, B, C, D float64
}

// New builds a vector from four lane values.
func New(a, b, c, d float64) Vec4 { return Vec4{a, b, c, d} }

// Splat returns a vector with all four lanes set to x (QPX vec_splats).
func Splat(x float64) Vec4 { return Vec4{x, x, x, x} }

// Zero returns the all-zero vector.
func Zero() Vec4 { return Vec4{} }

// Lane returns lane i (0..3).
func (a Vec4) Lane(i int) float64 {
	switch i {
	case 0:
		return a.A
	case 1:
		return a.B
	case 2:
		return a.C
	default:
		return a.D
	}
}

// Load4 gathers four consecutive float64 values (QPX vec_ld).
// The slice must have at least 4 elements.
func Load4(s []float64) Vec4 {
	_ = s[3]
	return Vec4{s[0], s[1], s[2], s[3]}
}

// Load4f gathers four consecutive float32 values, widening to double.
// This models the QPX single-precision load with conversion (vec_lds),
// matching the paper's mixed-precision scheme: float32 memory
// representation, float64 computation.
func Load4f(s []float32) Vec4 {
	_ = s[3]
	return Vec4{float64(s[0]), float64(s[1]), float64(s[2]), float64(s[3])}
}

// Store4 writes the four lanes to consecutive float64 slots (QPX vec_st).
func (a Vec4) Store4(s []float64) { s[0], s[1], s[2], s[3] = a.A, a.B, a.C, a.D }

// Store4f narrows the four lanes to float32 and stores them (vec_sts).
func (a Vec4) Store4f(s []float32) {
	s[0], s[1], s[2], s[3] = float32(a.A), float32(a.B), float32(a.C), float32(a.D)
}

// Add returns a+b lane-wise.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a.A + b.A, a.B + b.B, a.C + b.C, a.D + b.D}
}

// Sub returns a-b lane-wise.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a.A - b.A, a.B - b.B, a.C - b.C, a.D - b.D}
}

// Mul returns a*b lane-wise.
func (a Vec4) Mul(b Vec4) Vec4 {
	return Vec4{a.A * b.A, a.B * b.B, a.C * b.C, a.D * b.D}
}

// Div returns a/b lane-wise. QPX has no divide; the real kernels use
// reciprocal estimates plus Newton refinement, which we fold into one op.
func (a Vec4) Div(b Vec4) Vec4 {
	return Vec4{a.A / b.A, a.B / b.B, a.C / b.C, a.D / b.D}
}

// MAdd returns a*b+c lane-wise (QPX vec_madd, a fused multiply-add). The
// lanes use plain multiply-add rather than math.FMA: the correctly rounded
// FMA intrinsic carries a per-call CPU-feature branch and, on hardware
// without FMA units, a very slow soft-float path, while the model only
// needs the arithmetic shape.
func (a Vec4) MAdd(b, c Vec4) Vec4 {
	return Vec4{a.A*b.A + c.A, a.B*b.B + c.B, a.C*b.C + c.C, a.D*b.D + c.D}
}

// MSub returns a*b-c lane-wise (QPX vec_msub).
func (a Vec4) MSub(b, c Vec4) Vec4 {
	return Vec4{a.A*b.A - c.A, a.B*b.B - c.B, a.C*b.C - c.C, a.D*b.D - c.D}
}

// NMSub returns c-a*b lane-wise (QPX vec_nmsub).
func (a Vec4) NMSub(b, c Vec4) Vec4 {
	return Vec4{c.A - a.A*b.A, c.B - a.B*b.B, c.C - a.C*b.C, c.D - a.D*b.D}
}

// Neg returns -a lane-wise (QPX vec_neg).
func (a Vec4) Neg() Vec4 { return Vec4{-a.A, -a.B, -a.C, -a.D} }

// Abs returns |a| lane-wise (QPX vec_abs; the paper notes this intrinsic has
// no SSE counterpart and needed special handling in the portability macros).
func (a Vec4) Abs() Vec4 {
	return Vec4{math.Abs(a.A), math.Abs(a.B), math.Abs(a.C), math.Abs(a.D)}
}

// Max returns the lane-wise maximum.
func (a Vec4) Max(b Vec4) Vec4 {
	return Vec4{math.Max(a.A, b.A), math.Max(a.B, b.B), math.Max(a.C, b.C), math.Max(a.D, b.D)}
}

// Min returns the lane-wise minimum.
func (a Vec4) Min(b Vec4) Vec4 {
	return Vec4{math.Min(a.A, b.A), math.Min(a.B, b.B), math.Min(a.C, b.C), math.Min(a.D, b.D)}
}

// Sqrt returns the lane-wise square root (QPX vec_swsqrt, software-assisted).
func (a Vec4) Sqrt() Vec4 {
	return Vec4{math.Sqrt(a.A), math.Sqrt(a.B), math.Sqrt(a.C), math.Sqrt(a.D)}
}

// Recip returns the lane-wise reciprocal (vec_re + Newton step).
func (a Vec4) Recip() Vec4 {
	return Vec4{1 / a.A, 1 / a.B, 1 / a.C, 1 / a.D}
}

// Sel returns, lane-wise, b if the mask lane >= 0 else a. This models QPX
// vec_sel/fpsel, which selects on the sign bit and is how the vector WENO
// and HLLE stages eliminate data-dependent branches. NaN mask lanes select
// a (the fallback operand).
func Sel(mask, a, b Vec4) Vec4 {
	var r Vec4
	if mask.A >= 0 {
		r.A = b.A
	} else {
		r.A = a.A
	}
	if mask.B >= 0 {
		r.B = b.B
	} else {
		r.B = a.B
	}
	if mask.C >= 0 {
		r.C = b.C
	} else {
		r.C = a.C
	}
	if mask.D >= 0 {
		r.D = b.D
	} else {
		r.D = a.D
	}
	return r
}

// CmpGE returns +1 in lanes where a>=b, -1 elsewhere (QPX vec_cmpge mask).
func (a Vec4) CmpGE(b Vec4) Vec4 {
	r := Vec4{-1, -1, -1, -1}
	if a.A >= b.A {
		r.A = 1
	}
	if a.B >= b.B {
		r.B = 1
	}
	if a.C >= b.C {
		r.C = 1
	}
	if a.D >= b.D {
		r.D = 1
	}
	return r
}

// CmpLT returns +1 in lanes where a<b, -1 elsewhere.
func (a Vec4) CmpLT(b Vec4) Vec4 {
	r := Vec4{-1, -1, -1, -1}
	if a.A < b.A {
		r.A = 1
	}
	if a.B < b.B {
		r.B = 1
	}
	if a.C < b.C {
		r.C = 1
	}
	if a.D < b.D {
		r.D = 1
	}
	return r
}

// Perm returns a general inter-lane permutation of the 8-lane concatenation
// (a,b): result lane i is pick(a,b)[sel[i]], sel in [0,8). This is the QPX
// vec_perm used for stencil shifts; the paper notes it is significantly more
// flexible than SSE shuffles.
func Perm(a, b Vec4, sel [4]int) Vec4 {
	pick := func(s int) float64 {
		if s < Width {
			return a.Lane(s)
		}
		return b.Lane(s - Width)
	}
	return Vec4{pick(sel[0]), pick(sel[1]), pick(sel[2]), pick(sel[3])}
}

// ShiftL1 returns (a1,a2,a3,b0): the window over (a,b) advanced by one lane.
// This is the workhorse permutation of the vector WENO stage, producing the
// shifted stencil operands from two consecutive registers.
func ShiftL1(a, b Vec4) Vec4 { return Vec4{a.B, a.C, a.D, b.A} }

// ShiftL2 returns (a2,a3,b0,b1).
func ShiftL2(a, b Vec4) Vec4 { return Vec4{a.C, a.D, b.A, b.B} }

// ShiftL3 returns (a3,b0,b1,b2).
func ShiftL3(a, b Vec4) Vec4 { return Vec4{a.D, b.A, b.B, b.C} }

// HMax returns the horizontal maximum of the four lanes. Horizontal
// reductions are done with two inter-lane permutes plus max ops on QPX.
func (a Vec4) HMax() float64 {
	m := a.A
	if a.B > m {
		m = a.B
	}
	if a.C > m {
		m = a.C
	}
	if a.D > m {
		m = a.D
	}
	return m
}

// HSum returns the horizontal sum of the four lanes.
func (a Vec4) HSum() float64 { return (a.A + a.B) + (a.C + a.D) }

// Transpose4 transposes a 4x4 tile held in four registers in place. The FWT
// kernel uses this for the 4-stream vectorization of the wavelet filters
// (the paper's "additional 4 x 4 transpositions").
func Transpose4(r0, r1, r2, r3 *Vec4) {
	a, b, c, d := *r0, *r1, *r2, *r3
	*r0 = Vec4{a.A, b.A, c.A, d.A}
	*r1 = Vec4{a.B, b.B, c.B, d.B}
	*r2 = Vec4{a.C, b.C, c.C, d.C}
	*r3 = Vec4{a.D, b.D, c.D, d.D}
}
