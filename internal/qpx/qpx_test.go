package qpx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand) Vec4 {
	return New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
}

func eq(a, b Vec4, tol float64) bool {
	for i := 0; i < Width; i++ {
		if math.Abs(a.Lane(i)-b.Lane(i)) > tol {
			return false
		}
	}
	return true
}

func TestLaneArithmetic(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(10, 20, 30, 40)
	if got := a.Add(b); got != New(11, 22, 33, 44) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != New(9, 18, 27, 36) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != New(10, 40, 90, 160) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); got != New(10, 10, 10, 10) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2, -3, -4) {
		t.Errorf("Neg = %v", got)
	}
}

func TestFusedOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVec(rng), randVec(rng), randVec(rng)
		if !eq(a.MAdd(b, c), a.Mul(b).Add(c), 1e-12) {
			return false
		}
		if !eq(a.MSub(b, c), a.Mul(b).Sub(c), 1e-12) {
			return false
		}
		if !eq(a.NMSub(b, c), c.Sub(a.Mul(b)), 1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelSemantics(t *testing.T) {
	mask := New(-1, 0, 1, math.NaN())
	a := New(10, 20, 30, 40) // fallback (mask < 0 or NaN)
	b := New(1, 2, 3, 4)     // selected when mask >= 0
	got := Sel(mask, a, b)
	want := New(10, 2, 3, 40)
	if got != want {
		t.Errorf("Sel = %v, want %v", got, want)
	}
}

func TestCompareMasks(t *testing.T) {
	a := New(1, 5, 3, 2)
	b := New(2, 5, 1, 9)
	if got := a.CmpGE(b); got != New(-1, 1, 1, -1) {
		t.Errorf("CmpGE = %v", got)
	}
	if got := a.CmpLT(b); got != New(1, -1, -1, 1) {
		t.Errorf("CmpLT = %v", got)
	}
}

func TestShifts(t *testing.T) {
	a := New(0, 1, 2, 3)
	b := New(4, 5, 6, 7)
	if got := ShiftL1(a, b); got != New(1, 2, 3, 4) {
		t.Errorf("ShiftL1 = %v", got)
	}
	if got := ShiftL2(a, b); got != New(2, 3, 4, 5) {
		t.Errorf("ShiftL2 = %v", got)
	}
	if got := ShiftL3(a, b); got != New(3, 4, 5, 6) {
		t.Errorf("ShiftL3 = %v", got)
	}
}

func TestPermMatchesShift(t *testing.T) {
	a := New(0, 1, 2, 3)
	b := New(4, 5, 6, 7)
	if got := Perm(a, b, [4]int{1, 2, 3, 4}); got != ShiftL1(a, b) {
		t.Errorf("Perm shift-1 = %v", got)
	}
	if got := Perm(a, b, [4]int{3, 2, 1, 0}); got != New(3, 2, 1, 0) {
		t.Errorf("Perm reverse = %v", got)
	}
}

func TestHorizontalOps(t *testing.T) {
	a := New(3, -1, 7, 2)
	if got := a.HMax(); got != 7 {
		t.Errorf("HMax = %v", got)
	}
	if got := a.HSum(); got != 11 {
		t.Errorf("HSum = %v", got)
	}
}

func TestTranspose4(t *testing.T) {
	r0 := New(0, 1, 2, 3)
	r1 := New(4, 5, 6, 7)
	r2 := New(8, 9, 10, 11)
	r3 := New(12, 13, 14, 15)
	Transpose4(&r0, &r1, &r2, &r3)
	if r0 != New(0, 4, 8, 12) || r1 != New(1, 5, 9, 13) ||
		r2 != New(2, 6, 10, 14) || r3 != New(3, 7, 11, 15) {
		t.Errorf("Transpose4 = %v %v %v %v", r0, r1, r2, r3)
	}
	// Transposing twice restores the original.
	Transpose4(&r0, &r1, &r2, &r3)
	if r0 != New(0, 1, 2, 3) || r3 != New(12, 13, 14, 15) {
		t.Error("double transpose is not the identity")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s64 := []float64{1.5, -2.25, 3, 4.75}
	v := Load4(s64)
	out := make([]float64, 4)
	v.Store4(out)
	for i := range s64 {
		if out[i] != s64[i] {
			t.Errorf("float64 roundtrip[%d] = %v", i, out[i])
		}
	}
	s32 := []float32{1.5, -2.25, 3, 4.75}
	v = Load4f(s32)
	out32 := make([]float32, 4)
	v.Store4f(out32)
	for i := range s32 {
		if out32[i] != s32[i] {
			t.Errorf("float32 roundtrip[%d] = %v", i, out32[i])
		}
	}
}

func TestAbsMinMaxSqrtRecip(t *testing.T) {
	a := New(-4, 9, -16, 25)
	if got := a.Abs(); got != New(4, 9, 16, 25) {
		t.Errorf("Abs = %v", got)
	}
	if got := a.Abs().Sqrt(); got != New(2, 3, 4, 5) {
		t.Errorf("Sqrt = %v", got)
	}
	if got := New(2, 4, 8, 10).Recip(); got != New(0.5, 0.25, 0.125, 0.1) {
		t.Errorf("Recip = %v", got)
	}
	b := New(1, 10, -20, 30)
	if got := a.Max(b); got != New(1, 10, -16, 30) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != New(-4, 9, -20, 25) {
		t.Errorf("Min = %v", got)
	}
}
