// Observables pipeline: consumes the per-step diagnostics of a scenario run
// and reduces them to the Figure-5 collapse metrics — peak field/wall
// pressure amplification, kinetic energy, equivalent cloud radius trajectory,
// and collapse time against the Rayleigh prediction — as a flat metric map
// the verify bands and the cloud bench record both consume.
package scenario

import (
	"math"

	"cubism/internal/sim"
)

// Sample is one diagnostics point of the equivalent-radius trajectory.
type Sample struct {
	Step          int
	Time          float64
	MaxPressure   float64
	WallPressure  float64
	KineticEnergy float64
	EquivRadius   float64
}

// Observer accumulates the collapse observables of one scenario run. Use it
// as the sim.Run step callback (rank 0 only — sim delivers StepInfo there):
//
//	obs := scenario.NewObserver(c)
//	sum, err := sim.Run(c.Config, obs.OnStep)
//	metrics := obs.Metrics()
type Observer struct {
	c *Case

	// Series is the diagnostics trajectory (DiagEvery cadence).
	Series []Sample

	r0           float64 // initial equivalent radius (first diagnostics point)
	peakP        float64
	peakWallP    float64
	peakKE       float64
	minRadius    float64
	finalT       float64
	nonFinite    int
	mass0, massN float64
	hasTotals    bool
}

// NewObserver builds the pipeline for a built case.
func NewObserver(c *Case) *Observer {
	return &Observer{c: c, minRadius: math.Inf(1)}
}

// OnStep is the sim.Run callback.
func (o *Observer) OnStep(s sim.StepInfo) {
	o.finalT = s.Time
	if s.HasTotals {
		if !o.hasTotals {
			o.mass0 = s.Totals.Mass
			o.hasTotals = true
		}
		o.massN = s.Totals.Mass
		o.nonFinite += s.Totals.NonFinite
	}
	if !s.HasDiag {
		return
	}
	d := s.Diag
	o.Series = append(o.Series, Sample{
		Step: s.Step, Time: s.Time,
		MaxPressure:   d.MaxPressure,
		WallPressure:  d.WallPressure,
		KineticEnergy: d.KineticEnergy,
		EquivRadius:   d.EquivRadius,
	})
	if o.r0 == 0 {
		o.r0 = d.EquivRadius
	}
	o.peakP = math.Max(o.peakP, d.MaxPressure)
	o.peakWallP = math.Max(o.peakWallP, d.WallPressure)
	o.peakKE = math.Max(o.peakKE, d.KineticEnergy)
	if d.EquivRadius < o.minRadius {
		o.minRadius = d.EquivRadius
	}
}

// Metrics reduces the run to the flat observable map the tolerance bands
// check. All pressures are normalized by the driving ambient pressure, radii
// by the analytic initial equivalent radius, so the bands are resolution-
// and unit-robust:
//
//	peak_amp      max field pressure / ambient driving pressure
//	wall_amp      max wall pressure / ambient (wall cases only)
//	ke_peak       maximum kinetic energy
//	r0_rel_err    |measured initial equiv radius − analytic| / analytic
//	min_ratio     min equiv radius / initial (collapse depth so far)
//	final_ratio   final equiv radius / initial
//	collapse_frac simulated end time / Rayleigh collapse time of the mean bubble
//	mass_drift    |final mass − initial| / initial (audit cadence)
//	non_finite    accumulated non-finite cell count (must stay 0)
func (o *Observer) Metrics() map[string]float64 {
	m := map[string]float64{
		"non_finite": float64(o.nonFinite),
	}
	if o.c.AmbientP > 0 {
		m["peak_amp"] = o.peakP / o.c.AmbientP
		if o.c.HasWall {
			m["wall_amp"] = o.peakWallP / o.c.AmbientP
		}
	}
	m["ke_peak"] = o.peakKE
	if len(o.Series) > 0 && o.r0 > 0 {
		m["min_ratio"] = o.minRadius / o.r0
		m["final_ratio"] = o.Series[len(o.Series)-1].EquivRadius / o.r0
	}
	if exact := o.c.analyticR0(); exact > 0 && o.r0 > 0 {
		m["r0_rel_err"] = math.Abs(o.r0-exact) / exact
	}
	if o.c.RayleighTau > 0 {
		m["collapse_frac"] = o.finalT / o.c.RayleighTau
	}
	if o.hasTotals && o.mass0 != 0 {
		m["mass_drift"] = math.Abs(o.massN-o.mass0) / math.Abs(o.mass0)
	}
	return m
}

// analyticR0 is the equivalent radius of the case's initial bubble set,
// (3V/4π)^(1/3) for the analytic (unsmeared) vapor volume.
func (c *Case) analyticR0() float64 {
	v := 0.0
	for _, b := range c.Bubbles {
		v += 4.0 / 3.0 * math.Pi * b.R * b.R * b.R
	}
	if v <= 0 {
		return 0
	}
	return math.Cbrt(3 * v / (4 * math.Pi))
}

// Run builds nothing new: it executes the case with the observables pipeline
// attached and returns the metric map plus the sim summary. Extra per-step
// callbacks can be layered by the caller via cfg before calling.
func (c *Case) Run(onStep func(sim.StepInfo)) (map[string]float64, *Observer, sim.Summary, error) {
	obs := NewObserver(c)
	sum, err := sim.Run(c.Config, func(s sim.StepInfo) {
		obs.OnStep(s)
		if onStep != nil {
			onStep(s)
		}
	})
	if err != nil {
		return nil, nil, sum, err
	}
	return obs.Metrics(), obs, sum, nil
}
