package scenario

import (
	"math"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/physics"
	"cubism/internal/sim"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"array", "cloud", "shockbubble"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, s := range Registry() {
		if s.Description == "" {
			t.Errorf("scenario %s has no description", s.Name)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", Params{}); err == nil {
		t.Fatal("Build(nope) succeeded, want error")
	}
}

// TestCloudGolden pins the default cloud case: the seed-42 geometry must
// never drift silently, because the tolerance bands and the committed
// BENCH_cloud baseline are measured against it.
func TestCloudGolden(t *testing.T) {
	c, err := Build("cloud", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bubbles) != 12 {
		t.Fatalf("default cloud has %d bubbles, want 12", len(c.Bubbles))
	}
	if !c.HasWall {
		t.Error("cloud case should mark the wall diagnostic")
	}
	if c.Beta < 1 || c.Beta > 10 {
		t.Errorf("default cloud beta = %v, want interacting regime [1, 10]", c.Beta)
	}
	if c.VoidFraction <= 0 || c.VoidFraction >= 0.5 {
		t.Errorf("void fraction = %v, want (0, 0.5)", c.VoidFraction)
	}
	if c.RayleighTau <= 0 {
		t.Errorf("RayleighTau = %v, want > 0", c.RayleighTau)
	}
	for _, b := range c.Bubbles {
		if b.R < 0.04 || b.R > 0.09 {
			t.Errorf("bubble radius %v outside clip [0.04, 0.09]", b.R)
		}
	}

	// Identical Params must reproduce the identical cloud, bitwise.
	c2, err := Build("cloud", Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Bubbles {
		a, b := c.Bubbles[i], c2.Bubbles[i]
		if math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
			math.Float64bits(a.Z) != math.Float64bits(b.Z) ||
			math.Float64bits(a.R) != math.Float64bits(b.R) {
			t.Fatalf("bubble %d differs between identical builds: %+v vs %+v", i, a, b)
		}
	}

	// A different seed must give a different cloud.
	c3, err := Build("cloud", Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c.Bubbles {
		if c.Bubbles[i] != c3.Bubbles[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 7 reproduced the seed-42 cloud")
	}
}

// TestCloudBetaTarget checks the β-targeting path: the realized interaction
// parameter of the sampled cloud must land near the request (the deviation
// comes only from the lognormal radius spread).
func TestCloudBetaTarget(t *testing.T) {
	for _, target := range []float64{0.5, 1.5, 3.0} {
		c, err := Build("cloud", Params{Beta: target})
		if err != nil {
			t.Fatalf("beta=%v: %v", target, err)
		}
		if c.Beta < target/2 || c.Beta > target*2 {
			t.Errorf("beta target %v realized %v, want within 2x", target, c.Beta)
		}
	}
	// Unreachable target: 12 bubbles cannot make β=1e6 in the unit box.
	if _, err := Build("cloud", Params{Beta: 1e6}); err == nil {
		t.Error("beta=1e6 build succeeded, want error")
	}
}

func TestShockBubbleBuild(t *testing.T) {
	c, err := Build("shockbubble", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bubbles) != 1 {
		t.Fatalf("shockbubble has %d bubbles, want 1", len(c.Bubbles))
	}
	init := c.Config.Cluster.Init
	// Left of the front: post-shock liquid at 10x ambient, moving right.
	s := init(0.1, 0.5, 0.5)
	if s.P != 10*physics.LiquidInit.P {
		t.Errorf("post-shock pressure = %v, want %v", s.P, 10*physics.LiquidInit.P)
	}
	if s.U <= 0 {
		t.Errorf("post-shock velocity = %v, want > 0", s.U)
	}
	// Bubble center: vapor state at rest.
	s = init(0.5, 0.5, 0.5)
	if s.Rho > 2 || s.U != 0 {
		t.Errorf("bubble center state = %+v, want vapor at rest", s)
	}
	// Far field right: undisturbed pressurized liquid.
	s = init(0.9, 0.5, 0.5)
	if s.P != physics.LiquidInit.P || s.U != 0 {
		t.Errorf("far field state = %+v, want ambient liquid", s)
	}
}

func TestArrayBuild(t *testing.T) {
	c, err := Build("array", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bubbles) != 8 {
		t.Fatalf("default array has %d bubbles, want 2^3 = 8", len(c.Bubbles))
	}
	r := c.Bubbles[0].R
	for _, b := range c.Bubbles {
		if b.R != r {
			t.Errorf("array radii differ: %v vs %v", b.R, r)
		}
	}
	if c.Beta <= 0 {
		t.Errorf("array beta = %v, want > 0", c.Beta)
	}
	if _, err := Build("array", Params{Bubbles: 99}); err == nil {
		t.Error("array with edge count 99 built, want error")
	}
}

// TestObserverMetrics feeds a synthetic diagnostics sequence through the
// pipeline and checks every reduced observable exactly.
func TestObserverMetrics(t *testing.T) {
	c := &Case{
		Name:     "synthetic",
		Bubbles:  nil,
		AmbientP: 100,
		HasWall:  true,
	}
	c.RayleighTau = 2.0
	obs := NewObserver(c)
	steps := []sim.StepInfo{
		{Step: 0, Time: 0.0, HasDiag: true, Diag: cluster.Diagnostics{
			MaxPressure: 100, WallPressure: 100, KineticEnergy: 0, EquivRadius: 0.5},
			HasTotals: true, Totals: cluster.Totals{Mass: 1000}},
		{Step: 1, Time: 0.5, HasDiag: true, Diag: cluster.Diagnostics{
			MaxPressure: 250, WallPressure: 180, KineticEnergy: 7, EquivRadius: 0.4}},
		{Step: 2, Time: 1.0, HasDiag: true, Diag: cluster.Diagnostics{
			MaxPressure: 150, WallPressure: 120, KineticEnergy: 3, EquivRadius: 0.45},
			HasTotals: true, Totals: cluster.Totals{Mass: 999, NonFinite: 2}},
	}
	for _, s := range steps {
		obs.OnStep(s)
	}
	m := obs.Metrics()
	want := map[string]float64{
		"peak_amp":      2.5,        // 250 / 100
		"wall_amp":      1.8,        // 180 / 100
		"ke_peak":       7,
		"min_ratio":     0.8,        // 0.4 / 0.5
		"final_ratio":   0.9,        // 0.45 / 0.5
		"collapse_frac": 0.5,        // t=1.0 / tau=2.0
		"mass_drift":    1.0 / 1000, // |999-1000|/1000
		"non_finite":    2,
	}
	for k, w := range want {
		got, ok := m[k]
		if !ok {
			t.Errorf("metric %s missing (have %v)", k, m)
			continue
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("metric %s = %v, want %v", k, got, w)
		}
	}
	if _, ok := m["r0_rel_err"]; ok {
		t.Error("r0_rel_err present without bubbles")
	}
	if len(obs.Series) != 3 {
		t.Errorf("series length %d, want 3", len(obs.Series))
	}
}

// TestRunDeterminism runs the tiniest cloud case twice in-process and
// requires bitwise-identical observables — the single-rank anchor the
// multi-rank transport tests (net_test.go) extend across wires.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke skipped in -short")
	}
	tiny := Params{Blocks: [3]int{2, 2, 2}, BlockSize: 8, Steps: 10, Workers: 2}
	run := func() map[string]float64 {
		c, err := Build("cloud", tiny)
		if err != nil {
			t.Fatal(err)
		}
		m, _, _, err := c.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("metric sets differ: %v vs %v", a, b)
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Fatalf("metric %s missing from second run", k)
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Errorf("metric %s differs bitwise: %v vs %v", k, va, vb)
		}
	}
}
