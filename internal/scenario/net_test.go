package scenario

import (
	"math"
	"net"
	"sync"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
	"cubism/internal/sim"
)

// netParams is the 2-rank cloud decomposition the wire tests share: the same
// 32³ short-verify resolution split across two ranks in x, with per-step
// diagnostics so the wall-pressure and radius reductions cross the wire too.
func netParams() Params {
	return Params{
		Ranks:     [3]int{2, 1, 1},
		Blocks:    [3]int{1, 2, 2},
		BlockSize: 16,
		Steps:     3,
		Workers:   2,
		DiagEvery: 1,
	}
}

// totalsOn attaches the collective conserved-totals sample to a config; the
// sink is written on rank 0 only.
func totalsOn(cfg sim.Config, sink *cluster.Totals) sim.Config {
	cfg.OnFinish = func(r *cluster.Rank) {
		tot := r.ConservedTotals() // collective: every rank participates
		if r.Comm.Rank() == 0 {
			*sink = tot
		}
	}
	return cfg
}

func totalsFields(tot cluster.Totals) []struct {
	name string
	v    float64
} {
	return []struct {
		name string
		v    float64
	}{
		{"mass", tot.Mass},
		{"mom_x", tot.MomX},
		{"mom_y", tot.MomY},
		{"mom_z", tot.MomZ},
		{"energy", tot.Energy},
		{"gamma_min", tot.GammaMin},
		{"gamma_max", tot.GammaMax},
		{"pi_min", tot.PiMin},
		{"pi_max", tot.PiMax},
		{"time", tot.Time},
	}
}

func assertTotalsBitwise(t *testing.T, label string, ref, got cluster.Totals) {
	t.Helper()
	rf, gf := totalsFields(ref), totalsFields(got)
	for i := range rf {
		if math.Float64bits(rf[i].v) != math.Float64bits(gf[i].v) {
			t.Errorf("%s: %s diverged: %016x (%v) vs %016x (%v)", label, rf[i].name,
				math.Float64bits(rf[i].v), rf[i].v, math.Float64bits(gf[i].v), gf[i].v)
		}
	}
	if ref.Step != got.Step {
		t.Errorf("%s: step count diverged: %d vs %d", label, ref.Step, got.Step)
	}
}

func assertMetricsBitwise(t *testing.T, label string, ref, got map[string]float64) {
	t.Helper()
	if len(got) != len(ref) {
		t.Errorf("%s: metric sets differ: %d vs %d keys", label, len(ref), len(got))
	}
	for k, rv := range ref {
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s: metric %s missing", label, k)
			continue
		}
		if math.Float64bits(rv) != math.Float64bits(gv) {
			t.Errorf("%s: %s diverged: %016x (%v) vs %016x (%v)", label, k,
				math.Float64bits(rv), rv, math.Float64bits(gv), gv)
		}
	}
}

// connectLoopback builds a 2-rank tcp world over the loopback interface —
// exactly what two mpcf-sim processes do, compressed into one test process.
// tweak customizes each rank's wire config (fault injection, timeouts).
func connectLoopback(t *testing.T, tweak func(rank int, cfg *mpi.TCPConfig)) [2]*mpi.World {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	var worlds [2]*mpi.World
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				OnError: func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			if tweak != nil {
				tweak(rank, &cfg)
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	return worlds
}

// runCloudTCP advances the cloud scenario on a pre-built 2-rank world, one
// sim.Run per rank, and returns rank 0's observable map.
func runCloudTCP(t *testing.T, worlds [2]*mpi.World, sink *cluster.Totals) map[string]float64 {
	t.Helper()
	var metrics map[string]float64
	runErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := Build("cloud", netParams())
			if err != nil {
				runErrs[rank] = err
				return
			}
			c.Config = totalsOn(c.Config, sink)
			c.Config.World = worlds[rank]
			m, _, _, err := c.Run(nil)
			if err != nil {
				runErrs[rank] = err
				return
			}
			if rank == 0 {
				metrics = m
			}
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
	return metrics
}

// TestCloudTCPBitwiseMatchesInproc extends the transport-correctness keystone
// to the headline workload: the seeded cloud-collapse scenario advanced on
// two ranks over the tcp wire must reproduce the in-process run bit for bit —
// both the conserved totals and every Figure-5 observable the verify bands
// and the cloud bench record consume.
func TestCloudTCPBitwiseMatchesInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank scenario run")
	}
	refCase, err := Build("cloud", netParams())
	if err != nil {
		t.Fatal(err)
	}
	var refTot cluster.Totals
	refCase.Config = totalsOn(refCase.Config, &refTot)
	refMetrics, _, _, err := refCase.Run(nil)
	if err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	worlds := connectLoopback(t, nil)
	var gotTot cluster.Totals
	gotMetrics := runCloudTCP(t, worlds, &gotTot)

	assertTotalsBitwise(t, "cloud tcp vs inproc", refTot, gotTot)
	assertMetricsBitwise(t, "cloud tcp vs inproc", refMetrics, gotMetrics)
}
