package scenario

import (
	"sync/atomic"
	"testing"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
	"cubism/internal/transport"
	"cubism/internal/transport/faulty"
)

// countingFaults gives each rank its own deterministic injector while
// funneling all ranks' hits into one shared counter, proving the chaos run
// actually injected faults.
type countingFaults struct {
	inner transport.FaultInjector
	hits  *atomic.Int64
}

func (c *countingFaults) Outgoing(dst, tag, size int) transport.FaultDecision {
	d := c.inner.Outgoing(dst, tag, size)
	if d.Action != transport.FaultPass {
		c.hits.Add(1)
	}
	return d
}

// TestCloudBitwiseUnderChaos is the scenario-level chaos keystone: the cloud
// collapse advanced over a tcp wire that drops, duplicates and resets frames
// (seeded, so the run reproduces) must still land on the clean in-process
// run's bits — totals and observables both. The reliability layer has to
// mask every injected fault; a leaked halo byte or a replayed reduction
// flips a float64 bit here.
func TestCloudBitwiseUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank scenario run")
	}
	refCase, err := Build("cloud", netParams())
	if err != nil {
		t.Fatal(err)
	}
	var refTot cluster.Totals
	refCase.Config = totalsOn(refCase.Config, &refTot)
	refMetrics, _, _, err := refCase.Run(nil)
	if err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	plan := faulty.Plan{Seed: 2013, Drop: 0.06, Dup: 0.06, Reset: 0.01}
	var hits atomic.Int64
	worlds := connectLoopback(t, func(rank int, cfg *mpi.TCPConfig) {
		cfg.HeartbeatInterval = 50 * time.Millisecond
		cfg.RetransmitTimeout = 150 * time.Millisecond
		cfg.PeerTimeout = 20 * time.Second
		cfg.Fault = &countingFaults{inner: faulty.New(plan), hits: &hits}
	})
	var gotTot cluster.Totals
	gotMetrics := runCloudTCP(t, worlds, &gotTot)

	assertTotalsBitwise(t, "cloud chaos tcp vs inproc", refTot, gotTot)
	assertMetricsBitwise(t, "cloud chaos tcp vs inproc", refMetrics, gotMetrics)
	if hits.Load() == 0 {
		t.Fatalf("plan %q injected no faults; the run proved nothing", plan.String())
	}
	t.Logf("faults injected: %d", hits.Load())
}
