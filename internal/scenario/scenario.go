// Package scenario is the named-scenario engine for the paper's headline
// workload: cloud cavitation collapse (§7) and its building blocks. Each
// registered scenario turns a small set of parameters into a fully
// initialized sim.Config — seeded random bubble clouds with lognormal radii
// and a computed/targeted interaction parameter β (Rasthofer et al.'s
// 12'500-bubble study), shock-induced single-bubble collapse, and regular
// bubble arrays — plus the analytic references (Rayleigh collapse time,
// initial vapor volume) that the observables pipeline in observe.go
// compares the run against.
//
// The registry is wired through cmd/mpcf-sim (-scenario), cmd/mpcf-verify
// (tolerance-band checks per scenario, internal/verify), and cmd/mpcf-bench
// (-exp cloud → BENCH_cloud.json), in the shape of MFC's case registry: a
// user asks for a workload by name and every driver agrees on what that
// name means.
package scenario

import (
	"fmt"
	"sort"

	"cubism/internal/cloud"
	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/sim"
)

// Params overrides a scenario's laptop-scale defaults. Zero values keep the
// scenario's own choice, so Params{} always builds a valid case.
type Params struct {
	// Ranks is the cartesian rank decomposition (zero: scenario default,
	// usually a single rank).
	Ranks [3]int
	// Blocks is the per-rank block grid.
	Blocks [3]int
	// BlockSize is the block edge in cells.
	BlockSize int
	// Steps bounds the run.
	Steps int
	// Workers per rank (0: NumCPU).
	Workers int
	// Bubbles is the bubble count of the cloud case (and the per-edge count
	// k of the k³ array case).
	Bubbles int
	// Seed makes the sampled cloud reproducible (0: scenario default).
	Seed int64
	// Beta, when positive, picks the bubble count of the cloud case so the
	// monodisperse interaction parameter hits this target
	// (cloud.CountForBeta); mutually exclusive with Bubbles. The realized β
	// of the sampled cloud is reported in Case.Beta.
	Beta float64
	// DiagEvery is the diagnostics cadence feeding the observables pipeline
	// (0: scenario default).
	DiagEvery int
}

// Case is one fully initialized simulation setup plus the references its
// observables are judged against.
type Case struct {
	Name string
	// Config is ready for sim.Run; callers may still attach telemetry,
	// transports or extra callbacks before running.
	Config sim.Config

	// Bubbles is the initial bubble set (nil for non-bubble cases).
	Bubbles []cloud.Bubble
	// Beta is the realized cloud interaction parameter β = α₀(1−α₀)(R_C/R₀)²
	// of the sampled cloud (0 when a cloud region is not meaningful).
	Beta float64
	// VoidFraction is the realized gas fraction α₀ of the cloud region.
	VoidFraction float64
	// CloudRadius and MeanRadius are the geometric scales entering β.
	CloudRadius, MeanRadius float64

	// AmbientP is the far-field liquid pressure driving the collapse; for
	// the shock-driven case this is the post-shock pressure, the relevant
	// driver of the Rayleigh reference. BubbleP is the vapor pressure.
	AmbientP, BubbleP float64
	// LiquidRho is the liquid density entering the Rayleigh time.
	LiquidRho float64
	// RayleighTau is the classical collapse time τ = 0.91468 R₀ √(ρ/Δp) of
	// the mean bubble under the driving pressure difference.
	RayleighTau float64
	// HasWall marks the wall-pressure diagnostic as meaningful.
	HasWall bool
}

// Scenario is one registered named case.
type Scenario struct {
	Name        string
	Description string
	Build       func(p Params) (*Case, error)
}

// Registry returns the built-in scenarios in presentation order.
func Registry() []Scenario {
	return []Scenario{
		cloudScenario(),
		shockBubbleScenario(),
		arrayScenario(),
	}
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	var names []string
	for _, s := range Registry() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Build resolves and builds a named scenario in one call.
func Build(name string, p Params) (*Case, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return s.Build(p)
}

// pick returns v unless it is zero.
func pick(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func pick3(v, def [3]int) [3]int {
	if v != ([3]int{}) {
		return v
	}
	return def
}

func pick64(v, def int64) int64 {
	if v != 0 {
		return v
	}
	return def
}

// baseConfig assembles the decomposition shared by every scenario and
// returns the global cell spacing h the interface smoothing scales with.
func baseConfig(p Params, defBlocks [3]int, defN, defSteps, defDiag int) (sim.Config, float64) {
	ranks := pick3(p.Ranks, [3]int{1, 1, 1})
	blocks := pick3(p.Blocks, defBlocks)
	n := pick(p.BlockSize, defN)
	h := 1.0 / float64(ranks[0]*blocks[0]*n)
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  ranks,
			BlockDims: blocks,
			BlockSize: n,
			Extent:    1.0,
			BC:        grid.DefaultBC(),
			CFL:       0.3,
			Workers:   p.Workers,
		},
		Steps:      pick(p.Steps, defSteps),
		DiagEvery:  pick(p.DiagEvery, defDiag),
		AuditEvery: 20,
	}
	return cfg, h
}

// rayleighTau fills the collapse-time reference of a case from its driving
// pressures and mean radius.
func (c *Case) rayleighTau() {
	if c.MeanRadius > 0 && c.AmbientP > c.BubbleP {
		c.RayleighTau = physics.RayleighCollapseTime(c.MeanRadius, c.LiquidRho, c.AmbientP-c.BubbleP)
	}
}

// --- cloud: seeded random bubble cloud near a wall -------------------------

func cloudScenario() Scenario {
	return Scenario{
		Name: "cloud",
		Description: "seeded lognormal bubble cloud above a reflecting wall, " +
			"interaction parameter β per Rasthofer et al.",
		Build: buildCloud,
	}
}

func buildCloud(p Params) (*Case, error) {
	cfg, h := baseConfig(p, [3]int{4, 4, 4}, 16, 150, 5)
	nb := pick(p.Bubbles, 12)
	spec := cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.55},
		Radius: 0.3,
		N:      nb,
		// The paper's 50-200 micron range scaled to the unit box.
		RMin: 0.04, RMax: 0.09,
		Seed: pick64(p.Seed, 42),
	}
	if p.Beta > 0 {
		// β is targeted through the bubble count at fixed cloud geometry —
		// the knob that moves β while the bubbles stay resolvable (the cloud
		// radius itself is pinned by the unit box, so RadiusForBeta can only
		// reach a narrow β range here). The sampled cloud's realized β is
		// reported back on the case.
		if p.Bubbles != 0 {
			return nil, fmt.Errorf("scenario cloud: set either Bubbles or Beta, not both (β determines the count)")
		}
		n, err := cloud.CountForBeta(0.06, spec.Radius, p.Beta)
		if err != nil {
			return nil, fmt.Errorf("scenario cloud: %w", err)
		}
		spec.N = n
	}
	bubbles, err := spec.Generate()
	if err != nil {
		return nil, fmt.Errorf("scenario cloud: %w", err)
	}
	field := cloud.NewField(bubbles, 1.5*h)
	cfg.Cluster.BC = grid.WallBC(grid.ZLo)
	cfg.Cluster.Init = field.At
	cfg.Wall = grid.ZLo
	cfg.HasWall = true
	c := &Case{
		Name:         "cloud",
		Config:       cfg,
		Bubbles:      bubbles,
		Beta:         cloud.InteractionParameter(bubbles, spec.Radius),
		VoidFraction: cloud.VoidFraction(bubbles, spec.Radius),
		CloudRadius:  spec.Radius,
		MeanRadius:   cloud.MeanRadius(bubbles),
		AmbientP:     physics.LiquidInit.P,
		BubbleP:      physics.VaporInit.P,
		LiquidRho:    physics.LiquidInit.Rho,
		HasWall:      true,
	}
	c.rayleighTau()
	return c, nil
}

// --- shockbubble: shock-induced single-bubble collapse ---------------------

func shockBubbleScenario() Scenario {
	return Scenario{
		Name: "shockbubble",
		Description: "planar 10x-ambient pressure wave impacting a single vapor " +
			"bubble (shock-induced collapse)",
		Build: buildShockBubble,
	}
}

func buildShockBubble(p Params) (*Case, error) {
	cfg, h := baseConfig(p, [3]int{4, 4, 4}, 16, 120, 5)
	const (
		bubbleR = 0.12
		shockX  = 0.20
	)
	shockP := 10 * physics.LiquidInit.P
	bubbles := []cloud.Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: bubbleR}}
	field := cloud.NewField(bubbles, 1.5*h)
	shocked := physics.ShockedLiquid(shockP)
	cfg.Cluster.Init = func(x, y, z float64) physics.Prim {
		s := field.At(x, y, z)
		if x < shockX {
			// Post-shock liquid moving right; the pre-shock side keeps the
			// two-phase field (the bubble sits well right of the front).
			return shocked
		}
		return s
	}
	c := &Case{
		Name:       "shockbubble",
		Config:     cfg,
		Bubbles:    bubbles,
		MeanRadius: bubbleR,
		// The shock pressure drives the collapse once the front arrives;
		// the Rayleigh reference uses it as the far-field pressure.
		AmbientP:  shockP,
		BubbleP:   physics.VaporInit.P,
		LiquidRho: physics.LiquidInit.Rho,
	}
	c.rayleighTau()
	return c, nil
}

// --- array: regular bubble lattice -----------------------------------------

func arrayScenario() Scenario {
	return Scenario{
		Name: "array",
		Description: "regular k³ lattice of equal vapor bubbles in pressurized " +
			"liquid (interaction without statistical geometry)",
		Build: buildArray,
	}
}

func buildArray(p Params) (*Case, error) {
	cfg, h := baseConfig(p, [3]int{4, 4, 4}, 16, 120, 5)
	k := pick(p.Bubbles, 2)
	if k < 1 || k > 8 {
		return nil, fmt.Errorf("scenario array: edge count %d outside [1, 8]", k)
	}
	// The lattice fills the central half of the box; radius at 75% of the
	// half-pitch keeps bubbles ≥3 cells at the 32³ verify resolution while
	// leaving a surface gap wider than the interface smoothing.
	r := 0.75 * 0.25 / float64(k)
	bubbles := cloud.Lattice(k, k, k, r, [3]float64{0.25, 0.25, 0.25}, [3]float64{0.75, 0.75, 0.75})
	field := cloud.NewField(bubbles, 1.5*h)
	cfg.Cluster.Init = field.At
	// The bounding sphere of the lattice region stands in for the cloud
	// radius of β; a regular array has one by construction.
	cloudR := 0.25 * 1.7320508075688772 // half-diagonal of the lattice box
	c := &Case{
		Name:         "array",
		Config:       cfg,
		Bubbles:      bubbles,
		Beta:         cloud.InteractionParameter(bubbles, cloudR),
		VoidFraction: cloud.VoidFraction(bubbles, cloudR),
		CloudRadius:  cloudR,
		MeanRadius:   cloud.MeanRadius(bubbles),
		AmbientP:     physics.LiquidInit.P,
		BubbleP:      physics.VaporInit.P,
		LiquidRho:    physics.LiquidInit.Rho,
	}
	c.rayleighTau()
	return c, nil
}
