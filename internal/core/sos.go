package core

import "math"

// SOS/DT kernel: the maximum characteristic velocity ("speed of sound"
// reduction) over a block, whose global reduction yields the CFL time step
// (paper Figure 1, kernel DT).

// MaxCharVelScalar returns max(|u_i| + c) over all cells of a block given
// in AoS conserved float32 layout.
func MaxCharVelScalar(data []float32) float64 {
	maxVel := 0.0
	for off := 0; off < len(data); off += nq {
		c := data[off : off+nq : off+nq]
		r := float64(c[qr])
		inv := 1 / r
		u := float64(c[qu]) * inv
		v := float64(c[qv]) * inv
		w := float64(c[qw]) * inv
		g := float64(c[qg])
		pi := float64(c[qp])
		ke := 0.5 * r * (u*u + v*v + w*w)
		p := (float64(c[qe]) - ke - pi) / g
		c2 := ((g+1)*p + pi) / (g * r)
		if c2 < 0 {
			c2 = 0
		}
		vel := math.Max(math.Abs(u), math.Max(math.Abs(v), math.Abs(w))) + math.Sqrt(c2)
		if vel > maxVel {
			maxVel = vel
		}
	}
	return maxVel
}

// SOSFlopsPerCell is the floating point work of one SOS cell
// (conversion + sound speed + comparisons).
const SOSFlopsPerCell = 24

// SOSBytesPerCell is the compulsory traffic of one SOS cell: one read of
// the seven float32 quantities.
const SOSBytesPerCell = nq * 4
