package core

// Analytic operation and traffic counts per kernel, the inputs to the
// perf/roofline accounting that regenerates Table 3 (operational intensity,
// naive vs reordered) and the GFLOP/s figures of Tables 5-7.
//
// The floating point counts are derived from the scalar kernel sources
// (one count per arithmetic op, fused multiply-add = 2) and validated
// against the instrumented instruction audit (audit.go, TestAuditMatches).

// WENOFlops is the arithmetic of one wenoMinus/wenoPlus evaluation.
const WENOFlops = 69

// HLLEFlops is the arithmetic of one hlleFace evaluation (7 flux
// components + the face velocity).
const HLLEFlops = 130

// ConvFlopsPerCell is the CONV stage arithmetic per converted cell
// (conserved float32 AoS -> primitive float64 SoA via the EOS).
const ConvFlopsPerCell = 14

// SumFlopsPerCell is the SUM-stage arithmetic per cell (seven flux
// differences plus the non-conservative material terms, three directions).
const SumFlopsPerCell = 54

// BackFlopsPerCell is the BACK-stage arithmetic per cell (scale by 1/h).
const BackFlopsPerCell = 7

// faceFlops is the per-face arithmetic: 14 WENO reconstructions
// (7 quantities x minus/plus) and one HLLE flux.
const faceFlops = 14*WENOFlops + HLLEFlops

// RHSFlopsPerCell returns the total RHS arithmetic per cell for blocks of
// edge n: three directional sweeps with (n+1) faces per n cells, the
// conversion of the ghost-extended slices, the flux summation and the
// write-back.
func RHSFlopsPerCell(n int) int64 {
	faces := 3.0 * float64(n+1) / float64(n)
	ghost := ghostFactor(n)
	per := faces*faceFlops + SumFlopsPerCell + ghost*ConvFlopsPerCell + BackFlopsPerCell
	return int64(per)
}

// ghostFactor is the ratio of converted cells (block + ghost cross region)
// to interior cells.
func ghostFactor(n int) float64 {
	interior := float64(n * n * n)
	cross := interior + 6*float64(sw*n*n) // six face slabs of the cross
	return cross / interior
}

// RHSBytesPerCell returns the compulsory off-chip traffic per cell of the
// reordered (block-based) RHS: each block and its ghosts are read once
// (float32 AoS) and the result written once. This is the denominator of the
// paper's "reordered" operational intensity in Table 3.
func RHSBytesPerCell(n int) int64 {
	read := ghostFactor(n) * float64(nq) * 4
	write := float64(nq) * 4
	return int64(read + write)
}

// RHSBytesPerCellNaive returns the traffic per cell of a naive evaluation
// with no data reuse: every stencil operand of every face is fetched from
// memory (2 sides x 5 cells x 7 quantities x 3 directions, both faces of
// the cell) plus the result write. This is the "naive" row of Table 3.
func RHSBytesPerCellNaive(n int) int64 {
	perFace := 2 * 5 * nq // both sides of one face, 5-cell stencils
	reads := 3 * 2 * perFace * 4
	return int64(reads + nq*4)
}

// DTBytesPerCellNaive is the naive DT traffic: the 7 quantities re-fetched
// for each of the 4 partial results of the characteristic velocity (no
// register reuse across |u|,|v|,|w| and c).
const DTBytesPerCellNaive = 4 * nq * 4

// OperationalIntensityRHS returns FLOP/B of the reordered RHS.
func OperationalIntensityRHS(n int) float64 {
	return float64(RHSFlopsPerCell(n)) / float64(RHSBytesPerCell(n))
}

// OperationalIntensityRHSNaive returns FLOP/B of the naive RHS.
func OperationalIntensityRHSNaive(n int) float64 {
	return float64(RHSFlopsPerCell(n)) / float64(RHSBytesPerCellNaive(n))
}

// OperationalIntensityDT returns FLOP/B of the reordered DT kernel (one
// streaming read of the block).
func OperationalIntensityDT() float64 {
	return float64(SOSFlopsPerCell) / float64(SOSBytesPerCell)
}

// OperationalIntensityDTNaive returns FLOP/B of the naive DT kernel.
func OperationalIntensityDTNaive() float64 {
	return float64(SOSFlopsPerCell) / float64(DTBytesPerCellNaive)
}

// OperationalIntensityUP returns FLOP/B of the UP kernel; it is identical
// in both layouts (pure streaming), which is why Table 3 reports no gain.
func OperationalIntensityUP() float64 {
	return float64(UpdateFlopsPerValue) / float64(UpdateBytesPerValue)
}

// FusedUpdateBytesPerValue is the compulsory traffic of one UP element when
// the update is fused into the RHS BACK stage: u and reg are each read and
// written once; the rhs value is consumed in-register out of the
// accumulator and never round-trips through memory (vs. a write in BACK
// plus a read in UP for the staged path).
const FusedUpdateBytesPerValue = 4 * 4

// FusedStageFlopsPerCell returns the arithmetic per cell of one fused
// RHS+UP stage: the flop count is unchanged by fusion.
func FusedStageFlopsPerCell(n int) int64 {
	return RHSFlopsPerCell(n) + nq*UpdateFlopsPerValue
}

// FusedStageBytesPerCell returns the compulsory traffic per cell of one
// fused RHS+UP stage: the RHS traffic minus the rhs write-back, plus the
// fused update traffic. Compared with the staged RHSBytesPerCell +
// nq·UpdateBytesPerValue, fusion saves 2·nq·4 bytes per cell (the rhs
// write and its re-read).
func FusedStageBytesPerCell(n int) int64 {
	return RHSBytesPerCell(n) - nq*4 + nq*FusedUpdateBytesPerValue
}

// OperationalIntensityFused returns FLOP/B of the fused RHS+UP stage.
func OperationalIntensityFused(n int) float64 {
	return float64(FusedStageFlopsPerCell(n)) / float64(FusedStageBytesPerCell(n))
}
