package core

import "cubism/internal/qpx"

// Vector WENO5 reconstruction: four faces (or four cells of a face plane)
// per invocation, written against the QPX model's Vec4 method set. The
// structure mirrors the explicitly vectorized QPX kernels of the paper:
// fused multiply-adds wherever an add follows a multiply, and no
// data-dependent branches (the nonlinear weights are pure arithmetic).

var (
	vD0      = qpx.Splat(d0)
	vD1      = qpx.Splat(d1)
	vD2      = qpx.Splat(d2)
	vEps     = qpx.Splat(wenoEps)
	vC1312   = qpx.Splat(13.0 / 12.0)
	vQuarter = qpx.Splat(0.25)
	vSixth   = qpx.Splat(1.0 / 6.0)
	v2       = qpx.Splat(2)
	v3       = qpx.Splat(3)
	v4       = qpx.Splat(4)
	v5       = qpx.Splat(5)
	v7       = qpx.Splat(7)
	v11      = qpx.Splat(11)
)

// wenoMinusV is the vector counterpart of wenoMinus: the left-biased face
// value at i+1/2 from the cell averages a..e = v[i-2..i+2], four lanes at
// a time.
func wenoMinusV(a, b, c, d, e qpx.Vec4) qpx.Vec4 {
	// Smoothness indicators, expressed through fused multiply-adds the way
	// the QPX kernels pair them.
	t1 := v2.NMSub(b, a.Add(c))      // a - 2b + c
	t2 := v4.NMSub(b, v3.MAdd(c, a)) // a - 4b + 3c
	b0 := vC1312.Mul(t1).MAdd(t1, vQuarter.Mul(t2).Mul(t2))
	t1 = v2.NMSub(c, b.Add(d)) // b - 2c + d
	t2 = b.Sub(d)              // b - d
	b1 := vC1312.Mul(t1).MAdd(t1, vQuarter.Mul(t2).Mul(t2))
	t1 = v2.NMSub(d, c.Add(e))      // c - 2d + e
	t2 = v4.NMSub(d, v3.MAdd(c, e)) // 3c - 4d + e
	b2 := vC1312.Mul(t1).MAdd(t1, vQuarter.Mul(t2).Mul(t2))
	// Nonlinear weights.
	e0 := vEps.Add(b0)
	e1 := vEps.Add(b1)
	e2 := vEps.Add(b2)
	w0 := vD0.Div(e0.Mul(e0))
	w1 := vD1.Div(e1.Mul(e1))
	w2 := vD2.Div(e2.Mul(e2))
	inv := w0.Add(w1).Add(w2).Recip()
	// Candidate polynomials.
	q0 := v11.MAdd(c, v7.NMSub(b, v2.Mul(a))).Mul(vSixth)
	q1 := v5.MAdd(c, v2.MAdd(d, b.Neg())).Mul(vSixth)
	q2 := v2.MAdd(c, v5.MSub(d, e)).Mul(vSixth)
	acc := w0.Mul(q0)
	acc = w1.MAdd(q1, acc)
	acc = w2.MAdd(q2, acc)
	return acc.Mul(inv)
}

// wenoPlusV is the right-biased reconstruction from a..e = v[i-1..i+3],
// the mirror of wenoMinusV.
func wenoPlusV(a, b, c, d, e qpx.Vec4) qpx.Vec4 {
	return wenoMinusV(e, d, c, b, a)
}
