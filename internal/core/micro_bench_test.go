package core

import (
	"testing"

	"cubism/internal/qpx"
)

var sinkF float64
var sinkV qpx.Vec4

func BenchmarkWenoScalarX4(b *testing.B) {
	vals := [8]float64{1.2, 0.9, 1.1, 1.4, 1.0, 1.3, 0.8, 1.05}
	var s float64
	for i := 0; i < b.N; i++ {
		for l := 0; l < 4; l++ {
			s += wenoMinus(vals[l], vals[l+1], vals[l+2], vals[l+3], vals[l+4])
		}
	}
	sinkF = s
}

func BenchmarkWenoVec(b *testing.B) {
	var a [6]qpx.Vec4
	for i := range a {
		a[i] = qpx.Splat(1.0 + 0.1*float64(i))
	}
	var s qpx.Vec4
	for i := 0; i < b.N; i++ {
		s = s.Add(wenoMinusV(a[0], a[1], a[2], a[3], a[4]))
	}
	sinkV = s
}

func BenchmarkFMA4(b *testing.B) {
	x := qpx.Splat(1.0000001)
	y := qpx.Splat(0.9999999)
	acc := qpx.Splat(0)
	for i := 0; i < b.N; i++ {
		acc = x.MAdd(y, acc)
	}
	sinkV = acc
}
