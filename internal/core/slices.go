// Package core implements the compute kernels of the solver — the paper's
// core layer (§6): RHS evaluation (CONV → WENO → HLLE → SUM → BACK stages,
// Figure 1), the UP update kernel, the SOS/DT reduction, in scalar ("C++")
// and 4-lane vector ("QPX") variants, plus the micro-fused WENO+HLLE path
// measured in Table 9 and the instruction-mix audit behind Table 8.
package core

import (
	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/qpx"
)

// Re-exported quantity indices for brevity.
const (
	nq = physics.NQ
	qr = physics.QR
	qu = physics.QU
	qv = physics.QV
	qw = physics.QW
	qe = physics.QE
	qg = physics.QG
	qp = physics.QP
)

// sw is the one-sided stencil width of the WENO5 scheme.
const sw = grid.StencilWidth

// ZSlice holds the primitive quantities of one z-plane of a lab in SoA
// ("data-slice") layout. These are the paper's SIMD-friendly temporary
// structures: converting AoS cells into per-quantity arrays renders the
// stencil sweeps amenable to vectorization (§5, Figure 2 right).
//
// The plane covers lab coordinates [-sw, N+sw) in x and y. The x-stride is
// padded to a multiple of the SIMD width so vector loads never split rows.
type ZSlice struct {
	N int // block edge
	M int // N + 2*sw cells per dimension
	S int // row stride (M rounded up to a multiple of 4)
	// Primitive quantities: density, velocity components, pressure, Γ, Π.
	R, U, V, W, P, G, Pi []float64
	// Z is the lab z-coordinate this slice currently represents.
	Z int
}

// NewZSlice allocates a slice plane for blocks of edge n.
func NewZSlice(n int) *ZSlice {
	m := n + 2*sw
	s := (m + 3) &^ 3
	total := s * m
	backing := make([]float64, 7*total)
	zs := &ZSlice{N: n, M: m, S: s, Z: -1 << 30}
	zs.R = backing[0*total : 1*total]
	zs.U = backing[1*total : 2*total]
	zs.V = backing[2*total : 3*total]
	zs.W = backing[3*total : 4*total]
	zs.P = backing[4*total : 5*total]
	zs.G = backing[5*total : 6*total]
	zs.Pi = backing[6*total : 7*total]
	return zs
}

// Idx converts lab coordinates (ix,iy in [-sw, N+sw)) to the SoA offset.
func (zs *ZSlice) Idx(ix, iy int) int { return (iy+sw)*zs.S + (ix + sw) }

// Convert fills the slice from lab plane z (lab coordinates, may be in
// [-sw, N+sw)). This is the CONV stage: conserved AoS float32 cells become
// primitive SoA float64 arrays via the stiffened equation of state.
//
// Only the cross region is converted: for ghost z-planes and ghost y-rows
// the x-range is restricted to the interior, because corner/edge ghosts are
// never filled by the Lab and never read by the directional sweeps.
func (zs *ZSlice) Convert(lab *grid.Lab, z int) {
	n := zs.N
	zs.Z = z
	zGhost := z < 0 || z >= n
	for iy := -sw; iy < n+sw; iy++ {
		yGhost := iy < 0 || iy >= n
		x0, x1 := -sw, n+sw
		if zGhost || yGhost {
			x0, x1 = 0, n
		}
		if zGhost && yGhost {
			continue // edge region, never read
		}
		for ix := x0; ix < x1; ix++ {
			c := lab.At(ix, iy, z)
			o := zs.Idx(ix, iy)
			r := float64(c[qr])
			inv := 1 / r
			u := float64(c[qu]) * inv
			v := float64(c[qv]) * inv
			w := float64(c[qw]) * inv
			g := float64(c[qg])
			pi := float64(c[qp])
			ke := 0.5 * r * (u*u + v*v + w*w)
			zs.R[o] = r
			zs.U[o] = u
			zs.V[o] = v
			zs.W[o] = w
			zs.P[o] = (float64(c[qe]) - ke - pi) / g
			zs.G[o] = g
			zs.Pi[o] = pi
		}
	}
}

// Ring is the ring buffer of 2*sw+1 primitive slices used by the RHS
// z-sweep ("the ring buffer ... contains 6 slices" plus the incoming one;
// we hold the full 7 needed for both z-faces of the current layer).
type Ring struct {
	slices [2*sw + 1]*ZSlice
}

// NewRing allocates the ring for blocks of edge n.
func NewRing(n int) *Ring {
	var r Ring
	for i := range r.slices {
		r.slices[i] = NewZSlice(n)
	}
	return &r
}

// At returns the slice currently holding lab plane z; it must have been
// loaded via Load and not yet evicted.
func (r *Ring) At(z int) *ZSlice {
	zs := r.slices[((z%len(r.slices))+len(r.slices))%len(r.slices)]
	if zs.Z != z {
		panic("core: ring buffer miss")
	}
	return zs
}

// Load converts lab plane z into its ring slot and returns the slice.
func (r *Ring) Load(lab *grid.Lab, z int) *ZSlice {
	zs := r.slices[((z%len(r.slices))+len(r.slices))%len(r.slices)]
	zs.Convert(lab, z)
	return zs
}

// ConvertVec is the vectorized CONV stage: four consecutive cells per step,
// gathered from the AoS block layout into lane registers (the QPX code does
// this with vector loads plus inter-lane permutations), converted through
// the equation of state with 4-lane arithmetic, and stored to the SoA
// slice arrays. Ghost rows fall back to the scalar path (partial rows).
func (zs *ZSlice) ConvertVec(lab *grid.Lab, z int) {
	n := zs.N
	zs.Z = z
	zGhost := z < 0 || z >= n
	half := qpx.Splat(0.5)
	for iy := -sw; iy < n+sw; iy++ {
		yGhost := iy < 0 || iy >= n
		if zGhost && yGhost {
			continue // edge region, never read
		}
		x0, x1 := -sw, n+sw
		if zGhost || yGhost {
			x0, x1 = 0, n
		}
		ix := x0
		// Vector main loop over aligned groups of 4 cells.
		for ; ix+qpx.Width <= x1; ix += qpx.Width {
			row := lab.Row(ix, iy, z, qpx.Width)
			gather := func(q int) qpx.Vec4 {
				return qpx.New(
					float64(row[q]), float64(row[nq+q]),
					float64(row[2*nq+q]), float64(row[3*nq+q]),
				)
			}
			o := zs.Idx(ix, iy)
			r := gather(qr)
			inv := r.Recip()
			u := gather(qu).Mul(inv)
			v := gather(qv).Mul(inv)
			w := gather(qw).Mul(inv)
			g := gather(qg)
			pi := gather(qp)
			ke := u.Mul(u).Add(v.Mul(v)).Add(w.Mul(w)).Mul(r).Mul(half)
			p := gather(qe).Sub(ke).Sub(pi).Div(g)
			r.Store4(zs.R[o:])
			u.Store4(zs.U[o:])
			v.Store4(zs.V[o:])
			w.Store4(zs.W[o:])
			p.Store4(zs.P[o:])
			g.Store4(zs.G[o:])
			pi.Store4(zs.Pi[o:])
		}
		// Scalar tail.
		for ; ix < x1; ix++ {
			c := lab.At(ix, iy, z)
			o := zs.Idx(ix, iy)
			r := float64(c[qr])
			inv := 1 / r
			u := float64(c[qu]) * inv
			v := float64(c[qv]) * inv
			w := float64(c[qw]) * inv
			g := float64(c[qg])
			pi := float64(c[qp])
			ke := 0.5 * r * (u*u + v*v + w*w)
			zs.R[o] = r
			zs.U[o] = u
			zs.V[o] = v
			zs.W[o] = w
			zs.P[o] = (float64(c[qe]) - ke - pi) / g
			zs.G[o] = g
			zs.Pi[o] = pi
		}
	}
}

// LoadVec converts lab plane z into its ring slot with the vectorized CONV.
func (r *Ring) LoadVec(lab *grid.Lab, z int) *ZSlice {
	zs := r.slices[((z%len(r.slices))+len(r.slices))%len(r.slices)]
	zs.ConvertVec(lab, z)
	return zs
}
