package core

import "cubism/internal/qpx"

// Vector variants of the streaming kernels. UP gains nothing from
// vectorization (it is memory-bound at 0.2 FLOP/B, Table 3) and is included
// to reproduce exactly that observation in Table 7; SOS benefits from the
// lane-parallel max reduction.

// UpdateQPX is the vector UP stage: identical arithmetic to UpdateScalar,
// four values per step. len(u) must be a multiple of the vector width
// (always true for whole blocks: N³·7 with N divisible by 4).
func UpdateQPX(u, reg, rhs []float32, a, b, dt float64) {
	va, vb, vdt := qpx.Splat(a), qpx.Splat(b), qpx.Splat(dt)
	n := len(u)
	for i := 0; i < n; i += qpx.Width {
		r := va.Mul(qpx.Load4f(reg[i:]))
		r = vdt.MAdd(qpx.Load4f(rhs[i:]), r)
		r.Store4f(reg[i:])
		vb.MAdd(r, qpx.Load4f(u[i:])).Store4f(u[i:])
	}
}

// MaxCharVelQPX is the vector SOS kernel: four cells per step, gathered
// from the AoS block layout (the QPX original performs this AoS/SoA
// conversion with inter-lane permutations), with a final horizontal max.
func MaxCharVelQPX(data []float32) float64 {
	maxV := qpx.Zero()
	ncells := len(data) / nq
	gather := func(base, q int) qpx.Vec4 {
		return qpx.New(
			float64(data[base+q]),
			float64(data[base+nq+q]),
			float64(data[base+2*nq+q]),
			float64(data[base+3*nq+q]),
		)
	}
	for c := 0; c+qpx.Width <= ncells; c += qpx.Width {
		base := c * nq
		r := gather(base, qr)
		inv := r.Recip()
		u := gather(base, qu).Mul(inv)
		v := gather(base, qv).Mul(inv)
		w := gather(base, qw).Mul(inv)
		g := gather(base, qg)
		pi := gather(base, qp)
		e := gather(base, qe)
		ke := u.Mul(u).Add(v.Mul(v)).Add(w.Mul(w)).Mul(r).Mul(vHalf)
		p := e.Sub(ke).Sub(pi).Div(g)
		c2 := g.Add(vOne).MAdd(p, pi).Div(g.Mul(r)).Max(vZero)
		vel := u.Abs().Max(v.Abs()).Max(w.Abs()).Add(c2.Sqrt())
		maxV = maxV.Max(vel)
	}
	m := maxV.HMax()
	// Scalar tail for cell counts not divisible by the width.
	if rem := ncells % qpx.Width; rem != 0 {
		tail := MaxCharVelScalar(data[(ncells-rem)*nq:])
		if tail > m {
			m = tail
		}
	}
	return m
}
