package core

import "cubism/internal/grid"

// RHS is a reusable per-worker workspace that evaluates the right-hand side
// of the governing equations for one block (the paper's RHS kernel).
//
// The evaluation follows the paper's computation reordering (§5, Figure 2):
// the kernel operates on 2D slices in the z-direction held in a ring
// buffer, performs directional sweeps to evaluate the x-, y- and z-fluxes,
// and writes the result back to the block's temporary area (BACK stage).
//
// Two code paths implement the WENO→HLLE pipeline:
//
//   - the micro-fused path (default) evaluates the reconstruction and the
//     numerical flux per face in one pass, mixing the instructions of
//     subsequent computational stages to increase temporal locality;
//   - the staged path materializes all reconstructed face states of a sweep
//     before running HLLE, the non-fused baseline of Table 9.
//
// The accumulator and flux planes are SoA so the scalar and vector drivers
// share all bookkeeping; the BACK stage converts to the block's AoS layout.
type RHS struct {
	N      int
	Staged bool // use the non-fused WENO→HLLE baseline path

	ring *Ring
	// acc[q] accumulates the flux differences of quantity q; cell-major
	// layout (z*N+y)*N+x, length N³.
	acc [nq][]float64
	// z-face flux planes (N² each) at the low and high face of the layer.
	zPrev, zCur *fluxPlane
	// Per-row face flux buffer, padded to a multiple of the vector width.
	row *fluxPlane
	// Per-row reconstructed face states for the staged path: 7 quantities,
	// minus and plus side.
	stM, stP [nq][]float64
}

// fluxPlane holds HLLE outputs in SoA layout: the seven fluxes in sweep
// order (mass, normal momentum, two tangential momenta, energy, Γ, Π) plus
// the face velocity for the non-conservative term.
type fluxPlane struct {
	fr, fun, fut1, fut2, fe, fg, fpi, ustar []float64
}

func newFluxPlane(n int) *fluxPlane {
	backing := make([]float64, 8*n)
	return &fluxPlane{
		fr:    backing[0*n : 1*n],
		fun:   backing[1*n : 2*n],
		fut1:  backing[2*n : 3*n],
		fut2:  backing[3*n : 4*n],
		fe:    backing[4*n : 5*n],
		fg:    backing[5*n : 6*n],
		fpi:   backing[6*n : 7*n],
		ustar: backing[7*n : 8*n],
	}
}

// NewRHS allocates a workspace for blocks of edge n.
func NewRHS(n int) *RHS {
	r := &RHS{
		N:     n,
		ring:  NewRing(n),
		zPrev: newFluxPlane(n * n),
		zCur:  newFluxPlane(n * n),
		row:   newFluxPlane((n + 1 + 3) &^ 3),
	}
	for q := 0; q < nq; q++ {
		r.acc[q] = make([]float64, n*n*n)
		r.stM[q] = make([]float64, (n+1+3)&^3)
		r.stP[q] = make([]float64, (n+1+3)&^3)
	}
	return r
}

// Compute evaluates the RHS of the block assembled in lab with grid spacing
// h and stores dU/dt into out (block AoS layout, N³ x nq float32).
func (r *RHS) Compute(lab *grid.Lab, h float64, out []float32) {
	n := r.N
	if len(out) != n*n*n*nq {
		panic("core: rhs output size mismatch")
	}
	r.sweep(lab)
	r.back(h, out)
}

// ComputeFused evaluates the RHS and immediately applies the low-storage RK
// update stage (reg ← a·reg + dt·rhs, u ← u + b·reg) while the accumulators
// are cache-resident: the rhs value is consumed in-register instead of
// round-tripping through the block's temporary area. It rounds the rhs
// through float32 exactly like the BACK stage, so the result is bitwise
// identical to Compute followed by UpdateScalar.
func (r *RHS) ComputeFused(lab *grid.Lab, h float64, u, reg []float32, a, b, dt float64) {
	n := r.N
	if len(u) != n*n*n*nq || len(reg) != len(u) {
		panic("core: fused rhs+up buffer size mismatch")
	}
	r.sweep(lab)
	r.backFused(h, u, reg, a, b, dt)
}

// sweep runs the directional flux sweeps over the lab, filling the SoA
// accumulators with the summed flux differences (everything up to BACK).
func (r *RHS) sweep(lab *grid.Lab) {
	n := r.N
	for q := 0; q < nq; q++ {
		clear(r.acc[q])
	}

	// Prime the ring with the low-side ghost slices and the first interior
	// slices, then bootstrap the z-face flux at the domain-low face.
	for z := -sw; z <= sw-1; z++ {
		r.ring.Load(lab, z)
	}
	r.computeZFace(0, r.zPrev)

	for z := 0; z < n; z++ {
		r.ring.Load(lab, z+sw)
		r.xSweep(z)
		r.ySweep(z)
		r.computeZFace(z+1, r.zCur)
		r.accumulateZ(z)
		r.zPrev, r.zCur = r.zCur, r.zPrev
	}
}

// back is the BACK stage: scale the SoA accumulators by 1/h and write the
// result into the block's AoS temporary area.
func (r *RHS) back(h float64, out []float32) {
	invH := 1 / h
	ncells := r.N * r.N * r.N
	for q := 0; q < nq; q++ {
		a := r.acc[q]
		for i := 0; i < ncells; i++ {
			out[i*nq+q] = float32(a[i] * invH)
		}
	}
}

// backFused is the fused BACK+UP stage: the scaled accumulator value is
// narrowed to float32 (the same rounding point back applies on its way to
// memory) and fed straight into the RK update arithmetic of UpdateScalar.
func (r *RHS) backFused(h float64, u, reg []float32, ca, cb, dt float64) {
	invH := 1 / h
	ncells := r.N * r.N * r.N
	for q := 0; q < nq; q++ {
		a := r.acc[q]
		for i := 0; i < ncells; i++ {
			idx := i*nq + q
			rhs := float32(a[i] * invH)
			rr := ca*float64(reg[idx]) + dt*float64(rhs)
			reg[idx] = float32(rr)
			u[idx] = float32(float64(u[idx]) + cb*rr)
		}
	}
}

// reconstructFace fills the minus and plus states at face f of a sweep with
// stride st: stencil cell k sits at offset o + (f+k)*st.
//
// Positivity safeguard: when the high-order reconstruction produces a
// non-physical state (negative density or a pressure below the stiffened
// vacuum, (Γ+1)p + Π <= 0, where the sound speed would be imaginary) the
// face falls back to the adjacent cell average — a local first-order
// reconstruction, the standard remedy for under-resolved violent collapses.
func reconstructFace(zs *ZSlice, o, f, st int, un, ut1, ut2 []float64) (m, p faceState) {
	i := o + f*st
	rm := func(a []float64) float64 {
		return wenoMinus(a[i-3*st], a[i-2*st], a[i-st], a[i], a[i+st])
	}
	rp := func(a []float64) float64 {
		return wenoPlus(a[i-2*st], a[i-st], a[i], a[i+st], a[i+2*st])
	}
	m = faceState{r: rm(zs.R), un: rm(un), ut1: rm(ut1), ut2: rm(ut2), p: rm(zs.P), g: rm(zs.G), pi: rm(zs.Pi)}
	p = faceState{r: rp(zs.R), un: rp(un), ut1: rp(ut1), ut2: rp(ut2), p: rp(zs.P), g: rp(zs.G), pi: rp(zs.Pi)}
	if !physical(m) {
		c := i - st // cell left of the face
		m = faceState{r: zs.R[c], un: un[c], ut1: ut1[c], ut2: ut2[c], p: zs.P[c], g: zs.G[c], pi: zs.Pi[c]}
	}
	if !physical(p) {
		c := i // cell right of the face
		p = faceState{r: zs.R[c], un: un[c], ut1: ut1[c], ut2: ut2[c], p: zs.P[c], g: zs.G[c], pi: zs.Pi[c]}
	}
	return
}

// physical reports whether a reconstructed face state admits a real sound
// speed and positive density.
func physical(s faceState) bool {
	return s.r > 0 && (s.g+1)*s.p+s.pi > 0 && s.g > 0
}

// lineSweep evaluates all face fluxes of one pencil of n cells (n+1 faces)
// into r.row. o is the slice offset of cell 0 and st the stencil stride.
func (r *RHS) lineSweep(zs *ZSlice, o, st int, un, ut1, ut2 []float64) {
	n := r.N
	if r.Staged {
		// WENO stage: materialize all reconstructed face states.
		for f := 0; f <= n; f++ {
			m, p := reconstructFace(zs, o, f, st, un, ut1, ut2)
			storeState(&r.stM, f, m)
			storeState(&r.stP, f, p)
		}
		// HLLE stage.
		for f := 0; f <= n; f++ {
			r.row.store(f, hlleFace(loadState(&r.stM, f), loadState(&r.stP, f)))
		}
		return
	}
	// Micro-fused path: reconstruction and flux per face in one pass.
	for f := 0; f <= n; f++ {
		m, p := reconstructFace(zs, o, f, st, un, ut1, ut2)
		r.row.store(f, hlleFace(m, p))
	}
}

func storeState(dst *[nq][]float64, f int, s faceState) {
	dst[0][f], dst[1][f], dst[2][f], dst[3][f] = s.r, s.un, s.ut1, s.ut2
	dst[4][f], dst[5][f], dst[6][f] = s.p, s.g, s.pi
}

func loadState(src *[nq][]float64, f int) faceState {
	return faceState{
		r: src[0][f], un: src[1][f], ut1: src[2][f], ut2: src[3][f],
		p: src[4][f], g: src[5][f], pi: src[6][f],
	}
}

// store writes one face flux into SoA position f.
func (fp *fluxPlane) store(f int, ff faceFlux) {
	fp.fr[f], fp.fun[f], fp.fut1[f], fp.fut2[f] = ff.fr, ff.fun, ff.fut1, ff.fut2
	fp.fe[f], fp.fg[f], fp.fpi[f], fp.ustar[f] = ff.fe, ff.fg, ff.fpi, ff.ustar
}

// load reads one face flux from SoA position f.
func (fp *fluxPlane) load(f int) faceFlux {
	return faceFlux{
		fr: fp.fr[f], fun: fp.fun[f], fut1: fp.fut1[f], fut2: fp.fut2[f],
		fe: fp.fe[f], fg: fp.fg[f], fpi: fp.fpi[f], ustar: fp.ustar[f],
	}
}

// accumulateRow adds the flux differences of one pencil from r.row (SUM
// stage). base is the accumulator index of cell 0 and step its stride along
// the pencil; so is the slice offset of cell 0 with stride sst; qn/qt1/qt2
// map the sweep-normal flux components to quantity indices.
func (r *RHS) accumulateRow(zs *ZSlice, base, step, so, sst, qn, qt1, qt2 int) {
	n := r.N
	row := r.row
	for i := 0; i < n; i++ {
		ai := base + i*step
		si := so + i*sst
		du := row.ustar[i+1] - row.ustar[i]
		r.acc[qr][ai] -= row.fr[i+1] - row.fr[i]
		r.acc[qn][ai] -= row.fun[i+1] - row.fun[i]
		r.acc[qt1][ai] -= row.fut1[i+1] - row.fut1[i]
		r.acc[qt2][ai] -= row.fut2[i+1] - row.fut2[i]
		r.acc[qe][ai] -= row.fe[i+1] - row.fe[i]
		r.acc[qg][ai] -= row.fg[i+1] - row.fg[i] - zs.G[si]*du
		r.acc[qp][ai] -= row.fpi[i+1] - row.fpi[i] - zs.Pi[si]*du
	}
}

// xSweep accumulates the x-direction flux differences of layer z.
func (r *RHS) xSweep(z int) {
	n := r.N
	zs := r.ring.At(z)
	for iy := 0; iy < n; iy++ {
		o := zs.Idx(0, iy)
		r.lineSweep(zs, o, 1, zs.U, zs.V, zs.W)
		r.accumulateRow(zs, (z*n+iy)*n, 1, o, 1, qu, qv, qw)
	}
}

// ySweep accumulates the y-direction flux differences of layer z.
func (r *RHS) ySweep(z int) {
	n := r.N
	zs := r.ring.At(z)
	for ix := 0; ix < n; ix++ {
		o := zs.Idx(ix, 0)
		r.lineSweep(zs, o, zs.S, zs.V, zs.U, zs.W)
		r.accumulateRow(zs, z*n*n+ix, n, o, zs.S, qv, qu, qw)
	}
}

// computeZFace fills dst with the HLLE fluxes across z-face f (between
// layers f-1 and f), reconstructing across the ring slices.
func (r *RHS) computeZFace(f int, dst *fluxPlane) {
	n := r.N
	var s [6]*ZSlice
	for k := range s {
		s[k] = r.ring.At(f - 3 + k)
	}
	for iy := 0; iy < n; iy++ {
		o := s[0].Idx(0, iy)
		for ix := 0; ix < n; ix++ {
			i := o + ix
			m := faceState{
				r:   wenoMinus(s[0].R[i], s[1].R[i], s[2].R[i], s[3].R[i], s[4].R[i]),
				un:  wenoMinus(s[0].W[i], s[1].W[i], s[2].W[i], s[3].W[i], s[4].W[i]),
				ut1: wenoMinus(s[0].U[i], s[1].U[i], s[2].U[i], s[3].U[i], s[4].U[i]),
				ut2: wenoMinus(s[0].V[i], s[1].V[i], s[2].V[i], s[3].V[i], s[4].V[i]),
				p:   wenoMinus(s[0].P[i], s[1].P[i], s[2].P[i], s[3].P[i], s[4].P[i]),
				g:   wenoMinus(s[0].G[i], s[1].G[i], s[2].G[i], s[3].G[i], s[4].G[i]),
				pi:  wenoMinus(s[0].Pi[i], s[1].Pi[i], s[2].Pi[i], s[3].Pi[i], s[4].Pi[i]),
			}
			p := faceState{
				r:   wenoPlus(s[1].R[i], s[2].R[i], s[3].R[i], s[4].R[i], s[5].R[i]),
				un:  wenoPlus(s[1].W[i], s[2].W[i], s[3].W[i], s[4].W[i], s[5].W[i]),
				ut1: wenoPlus(s[1].U[i], s[2].U[i], s[3].U[i], s[4].U[i], s[5].U[i]),
				ut2: wenoPlus(s[1].V[i], s[2].V[i], s[3].V[i], s[4].V[i], s[5].V[i]),
				p:   wenoPlus(s[1].P[i], s[2].P[i], s[3].P[i], s[4].P[i], s[5].P[i]),
				g:   wenoPlus(s[1].G[i], s[2].G[i], s[3].G[i], s[4].G[i], s[5].G[i]),
				pi:  wenoPlus(s[1].Pi[i], s[2].Pi[i], s[3].Pi[i], s[4].Pi[i], s[5].Pi[i]),
			}
			if !physical(m) {
				m = faceState{r: s[2].R[i], un: s[2].W[i], ut1: s[2].U[i], ut2: s[2].V[i], p: s[2].P[i], g: s[2].G[i], pi: s[2].Pi[i]}
			}
			if !physical(p) {
				p = faceState{r: s[3].R[i], un: s[3].W[i], ut1: s[3].U[i], ut2: s[3].V[i], p: s[3].P[i], g: s[3].G[i], pi: s[3].Pi[i]}
			}
			ff := hlleFace(m, p)
			j := iy*n + ix
			dst.fr[j], dst.fun[j], dst.fut1[j], dst.fut2[j] = ff.fr, ff.fun, ff.fut1, ff.fut2
			dst.fe[j], dst.fg[j], dst.fpi[j], dst.ustar[j] = ff.fe, ff.fg, ff.fpi, ff.ustar
		}
	}
}

// accumulateZ adds the z-direction flux differences of layer z using the
// face planes zPrev (face z) and zCur (face z+1).
func (r *RHS) accumulateZ(z int) {
	n := r.N
	zs := r.ring.At(z)
	lo, hi := r.zPrev, r.zCur
	for iy := 0; iy < n; iy++ {
		o := zs.Idx(0, iy)
		base := (z*n + iy) * n
		for ix := 0; ix < n; ix++ {
			j := iy*n + ix
			ai := base + ix
			si := o + ix
			du := hi.ustar[j] - lo.ustar[j]
			r.acc[qr][ai] -= hi.fr[j] - lo.fr[j]
			r.acc[qw][ai] -= hi.fun[j] - lo.fun[j]
			r.acc[qu][ai] -= hi.fut1[j] - lo.fut1[j]
			r.acc[qv][ai] -= hi.fut2[j] - lo.fut2[j]
			r.acc[qe][ai] -= hi.fe[j] - lo.fe[j]
			r.acc[qg][ai] -= hi.fg[j] - lo.fg[j] - zs.G[si]*du
			r.acc[qp][ai] -= hi.fpi[j] - lo.fpi[j] - zs.Pi[si]*du
		}
	}
}
