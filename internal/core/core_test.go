package core

import (
	"math"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/physics"
)

// fillGrid initializes every cell of g from a primitive-state field.
func fillGrid(g *grid.Grid, f func(x, y, z float64) physics.Prim) {
	for _, b := range g.Blocks {
		n := b.N
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[qr] = float32(c.R)
					cell[qu] = float32(c.RU)
					cell[qv] = float32(c.RV)
					cell[qw] = float32(c.RW)
					cell[qe] = float32(c.E)
					cell[qg] = float32(c.G)
					cell[qp] = float32(c.Pi)
				}
			}
		}
	}
}

func smallGrid(n, nb int) *grid.Grid {
	return grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
}

// smoothField is a smooth, fully 3D test state.
func smoothField(x, y, z float64) physics.Prim {
	s := math.Sin(2 * math.Pi * x)
	c := math.Cos(2 * math.Pi * y)
	t := math.Sin(2 * math.Pi * z)
	return physics.Prim{
		Rho: 1.5 + 0.3*s*c,
		U:   0.2 * c * t,
		V:   -0.1 * s * t,
		W:   0.15 * s * c,
		P:   2 + 0.5*c*t,
		G:   2.5 + 0.4*s*t,
		Pi:  0.3 + 0.1*c,
	}
}

func computeRHSBlocks(t *testing.T, g *grid.Grid, bc grid.BC, vector, staged bool) [][]float32 {
	t.Helper()
	n := g.N
	lab := grid.NewLab(n)
	outs := make([][]float32, len(g.Blocks))
	var scalar *RHS
	var vec *RHSVec
	if vector {
		vec = NewRHSVec(n)
		vec.Staged = staged
	} else {
		scalar = NewRHS(n)
		scalar.Staged = staged
	}
	for i, b := range g.Blocks {
		lab.Load(g, bc, b)
		out := make([]float32, n*n*n*nq)
		if vector {
			vec.Compute(lab, g.H, out)
		} else {
			scalar.Compute(lab, g.H, out)
		}
		outs[i] = out
	}
	return outs
}

func TestRHSUniformIsZero(t *testing.T) {
	g := smallGrid(8, 2)
	uniform := physics.Prim{Rho: 1000, U: 3, V: -2, W: 1, P: 1e7, G: physics.Liquid.G(), Pi: physics.Liquid.P()}
	fillGrid(g, func(x, y, z float64) physics.Prim { return uniform })
	for _, cfg := range []struct {
		name           string
		vector, staged bool
	}{
		{"scalar-fused", false, false},
		{"scalar-staged", false, true},
		{"qpx-fused", true, false},
		{"qpx-staged", true, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			outs := computeRHSBlocks(t, g, grid.PeriodicBC(), cfg.vector, cfg.staged)
			// Scale: fluxes ~ E*u ~ 1e7*3; differences should cancel to
			// float32 roundoff of the inputs.
			for bi, out := range outs {
				for i, v := range out {
					if math.Abs(float64(v)) > 1e-1*1e7*g.H/g.H*1e-6 {
						// tolerance: 1e-6 relative to flux magnitude 1e7
						t.Fatalf("block %d elem %d: RHS=%g, want ~0", bi, i, v)
					}
				}
			}
		})
	}
}

func TestRHSScalarVectorAgree(t *testing.T) {
	g := smallGrid(8, 2)
	fillGrid(g, smoothField)
	bc := grid.PeriodicBC()
	s := computeRHSBlocks(t, g, bc, false, false)
	v := computeRHSBlocks(t, g, bc, true, false)
	st := computeRHSBlocks(t, g, bc, false, true)
	vst := computeRHSBlocks(t, g, bc, true, true)
	for bi := range s {
		for i := range s[bi] {
			ref := float64(s[bi][i])
			scale := math.Max(math.Abs(ref), 1)
			for name, other := range map[string]float64{
				"qpx":        float64(v[bi][i]),
				"staged":     float64(st[bi][i]),
				"qpx-staged": float64(vst[bi][i]),
			} {
				if math.Abs(float64(other)-ref)/scale > 1e-5 {
					t.Fatalf("block %d elem %d: %s=%g, scalar=%g", bi, i, name, other, ref)
				}
			}
		}
	}
}

// TestRHSContactPreservation checks the interface-capturing property the
// reconstruction of Γ and Π buys (paper §3): a stationary contact
// discontinuity in density and material functions with uniform pressure and
// zero velocity must keep pressure and velocity exactly uniform.
func TestRHSContactPreservation(t *testing.T) {
	g := smallGrid(8, 2)
	const p0 = 5e6
	field := func(x, y, z float64) physics.Prim {
		a := 0.0 // vapor fraction
		if x > 0.5 {
			a = 1
		}
		gm, pi := physics.Mix(physics.Liquid, physics.Vapor, a)
		rho := 1000.0*(1-a) + 1.0*a
		return physics.Prim{Rho: rho, P: p0, G: gm, Pi: pi}
	}
	fillGrid(g, field)
	outs := computeRHSBlocks(t, g, grid.DefaultBC(), false, false)

	// Forward-Euler update with a small dt, then verify p and u uniform.
	dt := 1e-9
	for bi, b := range g.Blocks {
		out := outs[bi]
		for i := range b.Data {
			b.Data[i] = float32(float64(b.Data[i]) + dt*float64(out[i]))
		}
		n := b.N
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					cons := physics.Cons{
						R: float64(c[qr]), RU: float64(c[qu]), RV: float64(c[qv]), RW: float64(c[qw]),
						E: float64(c[qe]), G: float64(c[qg]), Pi: float64(c[qp]),
					}
					pr := cons.ToPrim()
					if math.Abs(pr.P-p0)/p0 > 2e-5 {
						t.Fatalf("pressure disturbed at contact: p=%g want %g", pr.P, p0)
					}
					if vmag := math.Abs(pr.U) + math.Abs(pr.V) + math.Abs(pr.W); vmag > 1e-3 {
						t.Fatalf("velocity disturbed at contact: |u|=%g", vmag)
					}
				}
			}
		}
	}
}

func TestHLLEConsistency(t *testing.T) {
	s := faceState{r: 2, un: 1.5, ut1: -0.5, ut2: 0.25, p: 3, g: 2.5, pi: 0.7}
	ff := hlleFace(s, s)
	e := s.g*s.p + s.pi + 0.5*s.r*(s.un*s.un+s.ut1*s.ut1+s.ut2*s.ut2)
	want := faceFlux{
		fr:    s.r * s.un,
		fun:   s.r*s.un*s.un + s.p,
		fut1:  s.r * s.un * s.ut1,
		fut2:  s.r * s.un * s.ut2,
		fe:    (e + s.p) * s.un,
		fg:    s.g * s.un,
		fpi:   s.pi * s.un,
		ustar: s.un,
	}
	got := []float64{ff.fr, ff.fun, ff.fut1, ff.fut2, ff.fe, ff.fg, ff.fpi, ff.ustar}
	exp := []float64{want.fr, want.fun, want.fut1, want.fut2, want.fe, want.fg, want.fpi, want.ustar}
	for i := range got {
		if math.Abs(got[i]-exp[i]) > 1e-12*math.Max(1, math.Abs(exp[i])) {
			t.Errorf("flux[%d] = %g, want %g", i, got[i], exp[i])
		}
	}
}

func TestHLLEUpwindForSupersonic(t *testing.T) {
	// Supersonic flow to the right: the flux must be the left physical flux.
	m := faceState{r: 1, un: 10, ut1: 0, ut2: 0, p: 1, g: 2.5, pi: 0}
	p := faceState{r: 0.5, un: 10, ut1: 0, ut2: 0, p: 0.8, g: 2.5, pi: 0}
	ff := hlleFace(m, p)
	if math.Abs(ff.fr-m.r*m.un) > 1e-12 {
		t.Errorf("supersonic mass flux %g, want %g", ff.fr, m.r*m.un)
	}
	if math.Abs(ff.ustar-m.un) > 1e-12 {
		t.Errorf("supersonic ustar %g, want %g", ff.ustar, m.un)
	}
}

func TestWENOConstantExact(t *testing.T) {
	if got := wenoMinus(3, 3, 3, 3, 3); math.Abs(got-3) > 1e-14 {
		t.Errorf("wenoMinus(const) = %g", got)
	}
	if got := wenoPlus(3, 3, 3, 3, 3); math.Abs(got-3) > 1e-14 {
		t.Errorf("wenoPlus(const) = %g", got)
	}
}

// TestWENOSmoothOrder verifies high-order convergence on a smooth profile.
func TestWENOSmoothOrder(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	// avg returns the exact cell average of sin over [x-h/2, x+h/2]; the
	// finite-volume WENO5 scheme reconstructs the face point value from
	// cell averages.
	avg := func(x, h float64) float64 {
		return (math.Cos(x-h/2) - math.Cos(x+h/2)) / h
	}
	errAt := func(h float64) float64 {
		// Cells i-2..i+2 centered at 0; reconstruct the value at face h/2.
		var c [5]float64
		for k := range c {
			c[k] = avg(float64(k-2)*h, h)
		}
		got := wenoMinus(c[0], c[1], c[2], c[3], c[4])
		return math.Abs(got - f(h/2))
	}
	e1 := errAt(0.1)
	e2 := errAt(0.05)
	order := math.Log2(e1 / e2)
	if order < 4.5 {
		t.Errorf("WENO5 observed order %.2f, want >= 4.5 (e1=%g e2=%g)", order, e1, e2)
	}
}

// TestWENONoOvershoot verifies the essentially non-oscillatory property at
// a step: the reconstructed value stays within the data range.
func TestWENONoOvershoot(t *testing.T) {
	got := wenoMinus(0, 0, 0, 1, 1)
	if got < -1e-8 || got > 1+1e-8 {
		t.Errorf("reconstruction %g overshoots [0,1]", got)
	}
	got = wenoPlus(0, 0, 1, 1, 1)
	if got < -1e-8 || got > 1+1e-8 {
		t.Errorf("reconstruction %g overshoots [0,1]", got)
	}
}

func TestUpdateScalarVsQPX(t *testing.T) {
	n := 512
	u1 := make([]float32, n)
	r1 := make([]float32, n)
	rhs := make([]float32, n)
	for i := range u1 {
		u1[i] = float32(i%17) - 8
		r1[i] = float32(i%5) * 0.25
		rhs[i] = float32(i%11) - 5.5
	}
	u2 := append([]float32(nil), u1...)
	r2 := append([]float32(nil), r1...)
	UpdateScalar(u1, r1, rhs, -5.0/9.0, 15.0/16.0, 1e-3)
	UpdateQPX(u2, r2, rhs, -5.0/9.0, 15.0/16.0, 1e-3)
	for i := range u1 {
		if u1[i] != u2[i] || r1[i] != r2[i] {
			t.Fatalf("elem %d: scalar (%g,%g) vs qpx (%g,%g)", i, u1[i], r1[i], u2[i], r2[i])
		}
	}
}

func TestMaxCharVelScalarVsQPX(t *testing.T) {
	g := smallGrid(8, 1)
	fillGrid(g, smoothField)
	for _, b := range g.Blocks {
		s := MaxCharVelScalar(b.Data)
		v := MaxCharVelQPX(b.Data)
		if math.Abs(s-v)/s > 1e-12 {
			t.Fatalf("charvel scalar %g vs qpx %g", s, v)
		}
		if s <= 0 {
			t.Fatalf("charvel %g not positive", s)
		}
	}
}

func TestRingBufferReuse(t *testing.T) {
	g := smallGrid(8, 1)
	fillGrid(g, smoothField)
	lab := grid.NewLab(8)
	lab.Load(g, grid.PeriodicBC(), g.Blocks[0])
	ring := NewRing(8)
	for z := -3; z <= 3; z++ {
		ring.Load(lab, z)
	}
	if ring.At(0).Z != 0 || ring.At(3).Z != 3 || ring.At(-3).Z != -3 {
		t.Fatal("ring slot mapping broken")
	}
	// Loading z=4 evicts z=-3.
	ring.Load(lab, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on evicted slice access")
		}
	}()
	ring.At(-3)
}

// TestRKSchemesConsistency: both Runge-Kutta formulations must advance the
// state by exactly dt for a constant unit right-hand side (first-order
// consistency), despite their very different register usage.
func TestRKSchemesConsistency(t *testing.T) {
	const n = 64
	const dt = 0.5
	rhs := make([]float32, n)
	for i := range rhs {
		rhs[i] = 1
	}
	// Low-storage 2N scheme.
	u := make([]float32, n)
	reg := make([]float32, n)
	for s := 0; s < 3; s++ {
		UpdateScalar(u, reg, rhs, RK3A[s], RK3B[s], dt)
	}
	for i := range u {
		if math.Abs(float64(u[i])-dt) > 1e-6 {
			t.Fatalf("lsrk3: u[%d] = %g, want %g", i, u[i], dt)
		}
	}
	// Three-register SSP scheme.
	u2 := make([]float32, n)
	u0 := make([]float32, n)
	for s := 0; s < 3; s++ {
		UpdateSSP(u2, u0, rhs, s, dt)
	}
	for i := range u2 {
		if math.Abs(float64(u2[i])-dt) > 1e-6 {
			t.Fatalf("ssprk3: u[%d] = %g, want %g", i, u2[i], dt)
		}
	}
}

// TestConvertVecMatchesScalar: the vectorized CONV stage must produce the
// same primitive slices as the scalar conversion.
func TestConvertVecMatchesScalar(t *testing.T) {
	g := smallGrid(8, 1)
	fillGrid(g, smoothField)
	lab := grid.NewLab(8)
	lab.Load(g, grid.PeriodicBC(), g.Blocks[0])
	a := NewZSlice(8)
	b := NewZSlice(8)
	for z := -3; z < 11; z++ {
		a.Convert(lab, z)
		b.ConvertVec(lab, z)
		arrays := [][2][]float64{
			{a.R, b.R}, {a.U, b.U}, {a.V, b.V}, {a.W, b.W},
			{a.P, b.P}, {a.G, b.G}, {a.Pi, b.Pi},
		}
		for qi, pair := range arrays {
			for i := range pair[0] {
				d := math.Abs(pair[0][i] - pair[1][i])
				if d > 1e-12*(1+math.Abs(pair[0][i])) {
					t.Fatalf("z=%d quantity %d offset %d: scalar %g vs vec %g", z, qi, i, pair[0][i], pair[1][i])
				}
			}
		}
	}
}

// TestRHSRotationEquivariance: the discretization treats the three
// directions symmetrically, so rotating the input field by a cyclic axis
// permutation must rotate the RHS the same way (no directional bias).
func TestRHSRotationEquivariance(t *testing.T) {
	const n = 8
	base := func(x, y, z float64) physics.Prim {
		return physics.Prim{
			Rho: 1.5 + 0.3*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y),
			U:   0.2 * math.Sin(2*math.Pi*y) * math.Cos(2*math.Pi*z),
			V:   -0.1 * math.Sin(2*math.Pi*z) * math.Cos(2*math.Pi*x),
			W:   0.15 * math.Sin(2*math.Pi*x) * math.Cos(2*math.Pi*y),
			P:   2 + 0.5*math.Cos(2*math.Pi*z),
			G:   2.5 + 0.4*math.Sin(2*math.Pi*x),
			Pi:  0.3,
		}
	}
	// Rotation R: (x,y,z) -> (y,z,x); states transform with the cyclic
	// velocity permutation (u,v,w) -> (w,u,v) [u' along x' = old w? work it
	// out: new axis x' carries the old y direction, so u' = v∘R⁻¹, v' = w,
	// w' = u].
	rotated := func(x, y, z float64) physics.Prim {
		p := base(z, x, y) // R⁻¹(x,y,z) = (z,x,y)
		return physics.Prim{Rho: p.Rho, U: p.V, V: p.W, W: p.U, P: p.P, G: p.G, Pi: p.Pi}
	}

	g1 := smallGrid(n, 1)
	fillGrid(g1, base)
	g2 := smallGrid(n, 1)
	fillGrid(g2, rotated)
	o1 := computeRHSBlocks(t, g1, grid.PeriodicBC(), false, false)[0]
	o2 := computeRHSBlocks(t, g2, grid.PeriodicBC(), false, false)[0]

	// Compare: RHS2 at (x,y,z) must equal the permuted RHS1 at R⁻¹(x,y,z).
	idx := func(ix, iy, iz, q int) int { return ((iz*n+iy)*n+ix)*nq + q }
	var maxDiff float64
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				// R⁻¹ on indices: (ix,iy,iz) -> (iz,ix,iy).
				jx, jy, jz := iz, ix, iy
				pairs := [][2]int{
					{qr, qr}, {qe, qe}, {qg, qg}, {qp, qp},
					{qu, qv}, {qv, qw}, {qw, qu}, // momenta permute with velocities
				}
				for _, pr := range pairs {
					a := float64(o2[idx(ix, iy, iz, pr[0])])
					b := float64(o1[idx(jx, jy, jz, pr[1])])
					if d := math.Abs(a - b); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("rotation equivariance violated by %g", maxDiff)
	}
}
