package core

import (
	"math"
	"testing"
)

func TestKahanSumCompensates(t *testing.T) {
	// 1 + n·ε with ε chosen so naive accumulation loses every addend:
	// ε = 1e-17 < ulp(1)/2, so naive sum stays exactly 1.
	var k KahanSum
	k.Add(1)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		k.Add(1e-17)
	}
	want := 1 + n*1e-17
	if got := k.Value(); math.Abs(got-want) > 1e-18 {
		t.Errorf("compensated sum = %.20f, want %.20f", got, want)
	}
	naive := 1.0
	for i := 0; i < n; i++ {
		naive += 1e-17
	}
	if naive != 1 {
		t.Fatalf("test premise broken: naive sum %v moved", naive)
	}
}

func TestKahanSumCancellation(t *testing.T) {
	// Large/small alternation (Neumaier's case where classic Kahan fails).
	var k KahanSum
	for i := 0; i < 10; i++ {
		k.Add(1e100)
		k.Add(1)
		k.Add(-1e100)
	}
	if got := k.Value(); got != 10 {
		t.Errorf("sum = %v, want 10", got)
	}
}

func TestKahanSumEmpty(t *testing.T) {
	var k KahanSum
	if got := k.Value(); got != 0 {
		t.Errorf("zero-value sum = %v", got)
	}
}
