package core

// Fifth-order Weighted Essentially Non-Oscillatory reconstruction
// (Jiang & Shu 1996, paper ref. [42]), scalar variant. The vector variant
// lives in weno_qpx.go and the micro-fused WENO+HLLE path in rhs drivers.

// wenoEps regularizes the smoothness indicators.
const wenoEps = 1e-6

// WENO5 ideal weights.
const (
	d0 = 0.1
	d1 = 0.6
	d2 = 0.3
)

// wenoMinus reconstructs the left-biased ("minus") face value at the
// interface i+1/2 from the five cell averages a..e = v[i-2..i+2].
func wenoMinus(a, b, c, d, e float64) float64 {
	// Smoothness indicators.
	t1 := a - 2*b + c
	t2 := a - 4*b + 3*c
	b0 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	t1 = b - 2*c + d
	t2 = b - d
	b1 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	t1 = c - 2*d + e
	t2 = 3*c - 4*d + e
	b2 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	// Nonlinear weights.
	w0 := d0 / ((wenoEps + b0) * (wenoEps + b0))
	w1 := d1 / ((wenoEps + b1) * (wenoEps + b1))
	w2 := d2 / ((wenoEps + b2) * (wenoEps + b2))
	inv := 1 / (w0 + w1 + w2)
	w0 *= inv
	w1 *= inv
	w2 *= inv
	// Candidate polynomials.
	q0 := (2*a - 7*b + 11*c) * (1.0 / 6.0)
	q1 := (-b + 5*c + 2*d) * (1.0 / 6.0)
	q2 := (2*c + 5*d - e) * (1.0 / 6.0)
	return w0*q0 + w1*q1 + w2*q2
}

// wenoPlus reconstructs the right-biased ("plus") face value at the
// interface i+1/2 from the five cell averages a..e = v[i-1..i+3]. It is the
// mirror image of wenoMinus.
func wenoPlus(a, b, c, d, e float64) float64 {
	return wenoMinus(e, d, c, b, a)
}
