package core

import "math"

// HLLE approximate Riemann solver (Harten, Lax, van Leer, Einfeldt; paper
// ref. [78]), scalar variant. Given the reconstructed primitive states on
// the two sides of a cell face, it returns the seven numerical fluxes and
// the HLLE-consistent face velocity used by the non-conservative term of
// the material advection equations.

// faceState is one reconstructed primitive state at a face: density, the
// velocity component normal to the face, the two tangential components,
// pressure, and the material functions.
type faceState struct {
	r, un, ut1, ut2, p, g, pi float64
}

// faceFlux collects the HLLE output at one face in sweep-normal order:
// mass, normal momentum, tangential momenta, energy, Γ, Π fluxes plus the
// face velocity for the φ∇·u term.
type faceFlux struct {
	fr, fun, fut1, fut2, fe, fg, fpi float64
	ustar                            float64
}

// hlleFace computes the HLLE flux across a face with minus state m (left of
// the face along the sweep) and plus state p (right of the face).
func hlleFace(m, p faceState) faceFlux {
	cm := soundSpeed(m)
	cp := soundSpeed(p)
	// Davis wave-speed estimates, clamped around zero as the scheme requires.
	sm := math.Min(m.un-cm, p.un-cp)
	sp := math.Max(m.un+cm, p.un+cp)
	if sm > 0 {
		sm = 0
	}
	if sp < 0 {
		sp = 0
	}
	if sp-sm < 1e-12 {
		// Fully degenerate face (vacuum-like state on both sides): widen
		// the fan symmetrically so the combination stays finite; all
		// fluxes are then vanishingly small central averages.
		sp, sm = 5e-13, -5e-13
	}
	inv := 1 / (sp - sm)

	// Conserved states and physical fluxes on both sides.
	kem := 0.5 * m.r * (m.un*m.un + m.ut1*m.ut1 + m.ut2*m.ut2)
	kep := 0.5 * p.r * (p.un*p.un + p.ut1*p.ut1 + p.ut2*p.ut2)
	em := m.g*m.p + m.pi + kem
	ep := p.g*p.p + p.pi + kep

	combine := func(fl, fr, ul, ur float64) float64 {
		return (sp*fl - sm*fr + sp*sm*(ur-ul)) * inv
	}

	var out faceFlux
	out.fr = combine(m.r*m.un, p.r*p.un, m.r, p.r)
	out.fun = combine(m.r*m.un*m.un+m.p, p.r*p.un*p.un+p.p, m.r*m.un, p.r*p.un)
	out.fut1 = combine(m.r*m.un*m.ut1, p.r*p.un*p.ut1, m.r*m.ut1, p.r*p.ut1)
	out.fut2 = combine(m.r*m.un*m.ut2, p.r*p.un*p.ut2, m.r*m.ut2, p.r*p.ut2)
	out.fe = combine((em+m.p)*m.un, (ep+p.p)*p.un, em, ep)
	// Material functions advect with the flow; HLLE applied to the
	// quasi-conservative form ∂φ/∂t + ∇·(φu) - φ∇·u = 0.
	out.fg = combine(m.g*m.un, p.g*p.un, m.g, p.g)
	out.fpi = combine(m.pi*m.un, p.pi*p.un, m.pi, p.pi)
	// HLLE-consistent face velocity: positive-weight average of the two
	// sides, used to discretize the non-conservative φ∇·u term so that
	// uniform φ stays exactly uniform across contacts.
	out.ustar = (sp*m.un - sm*p.un) * inv
	return out
}

// soundSpeed is the mixture sound speed of a face state (see
// physics.SoundSpeed; duplicated on float64 locals to keep the kernel
// self-contained and inlinable).
func soundSpeed(s faceState) float64 {
	c2 := ((s.g+1)*s.p + s.pi) / (s.g * s.r)
	if c2 < 0 {
		return 0
	}
	return math.Sqrt(c2)
}
