package core

import (
	"cubism/internal/grid"
	"cubism/internal/qpx"
)

// RHSVec is the explicitly vectorized RHS driver — the paper's QPX code
// path. It shares the ring buffer, accumulators and flux planes with the
// scalar driver and replaces the per-face arithmetic with 4-lane bundles:
//
//   - the x-sweep vectorizes along the faces of a pencil (four consecutive
//     faces per step, with the shifted stencil operands the QPX code builds
//     through inter-lane permutations);
//   - the y- and z-sweeps vectorize across x (four cells of a face plane
//     per step), where the SoA data-slices make every stencil operand a
//     contiguous vector load.
//
// Block edges must be a multiple of the vector width; lanes that fall
// beyond the last face of a pencil are computed and discarded, exactly like
// the padded registers of the original implementation.
type RHSVec struct {
	*RHS
	// rowA/rowB are flux-row ping-pong buffers for the y-sweep.
	rowA, rowB *fluxPlane
}

// NewRHSVec allocates a vector workspace for blocks of edge n (n % 4 == 0).
func NewRHSVec(n int) *RHSVec {
	if n%qpx.Width != 0 {
		panic("core: vector RHS requires block edge divisible by the SIMD width")
	}
	return &RHSVec{
		RHS:  NewRHS(n),
		rowA: newFluxPlane(n),
		rowB: newFluxPlane(n),
	}
}

// Compute evaluates the RHS of the block assembled in lab (vector path).
func (r *RHSVec) Compute(lab *grid.Lab, h float64, out []float32) {
	n := r.N
	if len(out) != n*n*n*nq {
		panic("core: rhs output size mismatch")
	}
	r.sweepVec(lab)
	r.back(h, out)
}

// ComputeFused evaluates the RHS and immediately applies the low-storage RK
// update (the vector counterpart of RHS.ComputeFused): the BACK narrowing
// and the UpdateQPX op sequence run back to back on in-register values, so
// the result is bitwise identical to Compute followed by UpdateQPX.
func (r *RHSVec) ComputeFused(lab *grid.Lab, h float64, u, reg []float32, a, b, dt float64) {
	n := r.N
	if len(u) != n*n*n*nq || len(reg) != len(u) {
		panic("core: fused rhs+up buffer size mismatch")
	}
	r.sweepVec(lab)
	r.backFusedVec(h, u, reg, a, b, dt)
}

// sweepVec runs the vectorized directional sweeps, filling the SoA
// accumulators (everything up to BACK).
func (r *RHSVec) sweepVec(lab *grid.Lab) {
	n := r.N
	for q := 0; q < nq; q++ {
		clear(r.acc[q])
	}
	for z := -sw; z <= sw-1; z++ {
		r.ring.LoadVec(lab, z)
	}
	r.zFaceVec(0, r.zPrev)
	for z := 0; z < n; z++ {
		r.ring.LoadVec(lab, z+sw)
		r.xSweepVec(z)
		r.ySweepVec(z)
		r.zFaceVec(z+1, r.zCur)
		r.accumulateZVec(z)
		r.zPrev, r.zCur = r.zCur, r.zPrev
	}
}

// backFusedVec is the fused BACK+UP stage of the vector path: four
// accumulator lanes are scaled by 1/h, narrowed to float32 in-register (the
// rounding point of the staged BACK store), and consumed by the exact
// multiply-add sequence of UpdateQPX on the strided AoS slots of quantity q.
func (r *RHSVec) backFusedVec(h float64, u, reg []float32, a, b, dt float64) {
	invH := qpx.Splat(1 / h)
	va, vb, vdt := qpx.Splat(a), qpx.Splat(b), qpx.Splat(dt)
	ncells := r.N * r.N * r.N
	var rhs4 [qpx.Width]float32
	for q := 0; q < nq; q++ {
		acc := r.acc[q]
		for i := 0; i < ncells; i += qpx.Width {
			invH.Mul(qpx.Load4(acc[i:])).Store4f(rhs4[:])
			i0, i1 := i*nq+q, (i+1)*nq+q
			i2, i3 := (i+2)*nq+q, (i+3)*nq+q
			rr := va.Mul(qpx.New(float64(reg[i0]), float64(reg[i1]), float64(reg[i2]), float64(reg[i3])))
			rr = vdt.MAdd(qpx.Load4f(rhs4[:]), rr)
			reg[i0], reg[i1], reg[i2], reg[i3] = float32(rr.A), float32(rr.B), float32(rr.C), float32(rr.D)
			uu := vb.MAdd(rr, qpx.New(float64(u[i0]), float64(u[i1]), float64(u[i2]), float64(u[i3])))
			u[i0], u[i1], u[i2], u[i3] = float32(uu.A), float32(uu.B), float32(uu.C), float32(uu.D)
		}
	}
}

// reconstructX reconstructs the minus/plus states of the four faces
// fg..fg+3 of an x-pencil whose cell 0 sits at slice offset o.
func reconstructX(zs *ZSlice, o, fg int, staged bool, stM, stP *[nq][]float64) (m, p faceStateV) {
	load := func(a []float64, k int) qpx.Vec4 { return qpx.Load4(a[o+fg+k:]) }
	rec := func(a []float64) (qpx.Vec4, qpx.Vec4) {
		c0, c1, c2 := load(a, -3), load(a, -2), load(a, -1)
		c3, c4, c5 := load(a, 0), load(a, 1), load(a, 2)
		return wenoMinusV(c0, c1, c2, c3, c4), wenoPlusV(c1, c2, c3, c4, c5)
	}
	m.r, p.r = rec(zs.R)
	m.un, p.un = rec(zs.U)
	m.ut1, p.ut1 = rec(zs.V)
	m.ut2, p.ut2 = rec(zs.W)
	m.p, p.p = rec(zs.P)
	m.g, p.g = rec(zs.G)
	m.pi, p.pi = rec(zs.Pi)
	// First-order fallback for non-physical lanes (see reconstructFace).
	cen := func(k int) faceStateV {
		return faceStateV{
			r: load(zs.R, k), un: load(zs.U, k), ut1: load(zs.V, k), ut2: load(zs.W, k),
			p: load(zs.P, k), g: load(zs.G, k), pi: load(zs.Pi, k),
		}
	}
	m = safeguardV(m, cen(-1))
	p = safeguardV(p, cen(0))
	if staged {
		storeStateV(stM, fg, m)
		storeStateV(stP, fg, p)
	}
	return
}

func storeStateV(dst *[nq][]float64, f int, s faceStateV) {
	s.r.Store4(dst[0][f:])
	s.un.Store4(dst[1][f:])
	s.ut1.Store4(dst[2][f:])
	s.ut2.Store4(dst[3][f:])
	s.p.Store4(dst[4][f:])
	s.g.Store4(dst[5][f:])
	s.pi.Store4(dst[6][f:])
}

func loadStateV(src *[nq][]float64, f int) faceStateV {
	return faceStateV{
		r:   qpx.Load4(src[0][f:]),
		un:  qpx.Load4(src[1][f:]),
		ut1: qpx.Load4(src[2][f:]),
		ut2: qpx.Load4(src[3][f:]),
		p:   qpx.Load4(src[4][f:]),
		g:   qpx.Load4(src[5][f:]),
		pi:  qpx.Load4(src[6][f:]),
	}
}

// storeFluxV writes a 4-lane flux bundle into a fluxPlane at face f.
func storeFluxV(fp *fluxPlane, f int, ff faceFluxV) {
	ff.fr.Store4(fp.fr[f:])
	ff.fun.Store4(fp.fun[f:])
	ff.fut1.Store4(fp.fut1[f:])
	ff.fut2.Store4(fp.fut2[f:])
	ff.fe.Store4(fp.fe[f:])
	ff.fg.Store4(fp.fg[f:])
	ff.fpi.Store4(fp.fpi[f:])
	ff.ustar.Store4(fp.ustar[f:])
}

// xSweepVec accumulates the x-direction flux differences of layer z.
func (r *RHSVec) xSweepVec(z int) {
	n := r.N
	zs := r.ring.At(z)
	for iy := 0; iy < n; iy++ {
		o := zs.Idx(0, iy)
		if r.Staged {
			for fg := 0; fg <= n; fg += qpx.Width {
				reconstructX(zs, o, fg, true, &r.stM, &r.stP)
			}
			for fg := 0; fg <= n; fg += qpx.Width {
				storeFluxV(r.row, fg, hlleFaceV(loadStateV(&r.stM, fg), loadStateV(&r.stP, fg)))
			}
		} else {
			for fg := 0; fg <= n; fg += qpx.Width {
				m, p := reconstructX(zs, o, fg, false, nil, nil)
				storeFluxV(r.row, fg, hlleFaceV(m, p))
			}
		}
		r.accumulateRowVec(zs, (z*n+iy)*n, o, qu, qv, qw, r.row, 1)
	}
}

// accumulateRowVec is the vector SUM stage for a pencil whose flux rows are
// contiguous (offset shift between the low and high face of cell i is
// `shift`). base is the accumulator index of cell 0 (x-contiguous) and so
// the slice offset of cell 0.
func (r *RHSVec) accumulateRowVec(zs *ZSlice, base, so, qn, qt1, qt2 int, row *fluxPlane, shift int) {
	n := r.N
	for i := 0; i < n; i += qpx.Width {
		diff := func(a []float64) qpx.Vec4 {
			return qpx.Load4(a[i+shift:]).Sub(qpx.Load4(a[i:]))
		}
		du := diff(row.ustar)
		sub := func(acc []float64, d qpx.Vec4) {
			qpx.Load4(acc[base+i:]).Sub(d).Store4(acc[base+i:])
		}
		sub(r.acc[qr], diff(row.fr))
		sub(r.acc[qn], diff(row.fun))
		sub(r.acc[qt1], diff(row.fut1))
		sub(r.acc[qt2], diff(row.fut2))
		sub(r.acc[qe], diff(row.fe))
		g := qpx.Load4(zs.G[so+i:])
		pi := qpx.Load4(zs.Pi[so+i:])
		sub(r.acc[qg], diff(row.fg).Sub(g.Mul(du)))
		sub(r.acc[qp], diff(row.fpi).Sub(pi.Mul(du)))
	}
}

// reconstructPlane reconstructs the four cells ix..ix+3 of a face plane
// whose stencil runs across six SoA arrays rows (c0..c5 are the base
// offsets of the six stencil rows/slices at cell ix).
func reconstructPlane(arrs *[7][6][]float64, offs [6]int, ix int) (m, p faceStateV) {
	rec := func(q int) (qpx.Vec4, qpx.Vec4) {
		a := &arrs[q]
		c0 := qpx.Load4(a[0][offs[0]+ix:])
		c1 := qpx.Load4(a[1][offs[1]+ix:])
		c2 := qpx.Load4(a[2][offs[2]+ix:])
		c3 := qpx.Load4(a[3][offs[3]+ix:])
		c4 := qpx.Load4(a[4][offs[4]+ix:])
		c5 := qpx.Load4(a[5][offs[5]+ix:])
		return wenoMinusV(c0, c1, c2, c3, c4), wenoPlusV(c1, c2, c3, c4, c5)
	}
	m.r, p.r = rec(0)
	m.un, p.un = rec(1)
	m.ut1, p.ut1 = rec(2)
	m.ut2, p.ut2 = rec(3)
	m.p, p.p = rec(4)
	m.g, p.g = rec(5)
	m.pi, p.pi = rec(6)
	// First-order fallback for non-physical lanes: the minus center is the
	// stencil row 2, the plus center row 3.
	cen := func(row int) faceStateV {
		ld := func(q int) qpx.Vec4 { return qpx.Load4(arrs[q][row][offs[row]+ix:]) }
		return faceStateV{r: ld(0), un: ld(1), ut1: ld(2), ut2: ld(3), p: ld(4), g: ld(5), pi: ld(6)}
	}
	m = safeguardV(m, cen(2))
	p = safeguardV(p, cen(3))
	return
}

// ySweepVec accumulates the y-direction flux differences of layer z,
// vectorizing across x. Flux rows at faces f and f+1 ping-pong between
// rowA and rowB.
func (r *RHSVec) ySweepVec(z int) {
	n := r.N
	zs := r.ring.At(z)
	prev, cur := r.rowA, r.rowB

	computeRow := func(f int, dst *fluxPlane) {
		// Stencil rows f-3..f+2; normal velocity is V, tangentials U, W.
		var arrs [7][6][]float64
		var offs [6]int
		for k := 0; k < 6; k++ {
			arrs[0][k] = zs.R
			arrs[1][k] = zs.V
			arrs[2][k] = zs.U
			arrs[3][k] = zs.W
			arrs[4][k] = zs.P
			arrs[5][k] = zs.G
			arrs[6][k] = zs.Pi
			offs[k] = zs.Idx(0, f-3+k)
		}
		for ix := 0; ix < n; ix += qpx.Width {
			m, p := reconstructPlane(&arrs, offs, ix)
			storeFluxV(dst, ix, hlleFaceV(m, p))
		}
	}

	computeRow(0, prev)
	for f := 1; f <= n; f++ {
		computeRow(f, cur)
		// Accumulate cells of row f-1 between faces f-1 (prev) and f (cur).
		base := (z*n + f - 1) * n
		so := zs.Idx(0, f-1)
		for i := 0; i < n; i += qpx.Width {
			diff := func(lo, hi []float64) qpx.Vec4 {
				return qpx.Load4(hi[i:]).Sub(qpx.Load4(lo[i:]))
			}
			du := diff(prev.ustar, cur.ustar)
			sub := func(acc []float64, d qpx.Vec4) {
				qpx.Load4(acc[base+i:]).Sub(d).Store4(acc[base+i:])
			}
			sub(r.acc[qr], diff(prev.fr, cur.fr))
			sub(r.acc[qv], diff(prev.fun, cur.fun))
			sub(r.acc[qu], diff(prev.fut1, cur.fut1))
			sub(r.acc[qw], diff(prev.fut2, cur.fut2))
			sub(r.acc[qe], diff(prev.fe, cur.fe))
			g := qpx.Load4(zs.G[so+i:])
			pi := qpx.Load4(zs.Pi[so+i:])
			sub(r.acc[qg], diff(prev.fg, cur.fg).Sub(g.Mul(du)))
			sub(r.acc[qp], diff(prev.fpi, cur.fpi).Sub(pi.Mul(du)))
		}
		prev, cur = cur, prev
	}
}

// zFaceVec fills dst with the HLLE fluxes across z-face f, vectorizing
// across x.
func (r *RHSVec) zFaceVec(f int, dst *fluxPlane) {
	n := r.N
	var s [6]*ZSlice
	for k := range s {
		s[k] = r.ring.At(f - 3 + k)
	}
	for iy := 0; iy < n; iy++ {
		var arrs [7][6][]float64
		var offs [6]int
		for k := 0; k < 6; k++ {
			arrs[0][k] = s[k].R
			arrs[1][k] = s[k].W
			arrs[2][k] = s[k].U
			arrs[3][k] = s[k].V
			arrs[4][k] = s[k].P
			arrs[5][k] = s[k].G
			arrs[6][k] = s[k].Pi
			offs[k] = s[k].Idx(0, iy)
		}
		for ix := 0; ix < n; ix += qpx.Width {
			m, p := reconstructPlane(&arrs, offs, ix)
			ff := hlleFaceV(m, p)
			j := iy*n + ix
			ff.fr.Store4(dst.fr[j:])
			ff.fun.Store4(dst.fun[j:])
			ff.fut1.Store4(dst.fut1[j:])
			ff.fut2.Store4(dst.fut2[j:])
			ff.fe.Store4(dst.fe[j:])
			ff.fg.Store4(dst.fg[j:])
			ff.fpi.Store4(dst.fpi[j:])
			ff.ustar.Store4(dst.ustar[j:])
		}
	}
}

// accumulateZVec adds the z-direction flux differences of layer z.
func (r *RHSVec) accumulateZVec(z int) {
	n := r.N
	zs := r.ring.At(z)
	lo, hi := r.zPrev, r.zCur
	for iy := 0; iy < n; iy++ {
		o := zs.Idx(0, iy)
		base := (z*n + iy) * n
		j0 := iy * n
		for ix := 0; ix < n; ix += qpx.Width {
			j := j0 + ix
			diff := func(a, b []float64) qpx.Vec4 {
				return qpx.Load4(b[j:]).Sub(qpx.Load4(a[j:]))
			}
			du := diff(lo.ustar, hi.ustar)
			sub := func(acc []float64, d qpx.Vec4) {
				qpx.Load4(acc[base+ix:]).Sub(d).Store4(acc[base+ix:])
			}
			sub(r.acc[qr], diff(lo.fr, hi.fr))
			sub(r.acc[qw], diff(lo.fun, hi.fun))
			sub(r.acc[qu], diff(lo.fut1, hi.fut1))
			sub(r.acc[qv], diff(lo.fut2, hi.fut2))
			sub(r.acc[qe], diff(lo.fe, hi.fe))
			g := qpx.Load4(zs.G[o+ix:])
			pi := qpx.Load4(zs.Pi[o+ix:])
			sub(r.acc[qg], diff(lo.fg, hi.fg).Sub(g.Mul(du)))
			sub(r.acc[qp], diff(lo.fpi, hi.fpi).Sub(pi.Mul(du)))
		}
	}
}
