package core

// Compensated (Kahan-Neumaier) summation. The verification subsystem audits
// conservation of mass, momentum and energy across a run; the drift it is
// after sits many orders of magnitude below the total, so a naive float64
// accumulation over millions of float32 cells would bury the signal under
// its own rounding. Neumaier's variant also handles the case where the
// addend exceeds the running sum, which happens on the first few cells.

// KahanSum accumulates a sum with a running compensation term.
type KahanSum struct {
	sum, c float64
}

// Add folds v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs64(k.sum) >= abs64(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
