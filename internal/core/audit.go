package core

import "cubism/internal/qpx"

// Instruction-mix audit: the analysis behind Table 8. The paper estimates
// the RHS upper bound from the nominal instruction issue bandwidth by
// inspecting the compiler-generated assembly of the QPX micro-kernels,
// counting as "FLOP" also permutations, negations, conditional moves and
// comparisons, and dividing by the QPX instructions excluding loads and
// stores.
//
// Go compiles the Vec4 model to scalar code, so instead of reading
// assembly we *execute* the same kernels on a counting interpreter: CVec
// mirrors the Vec4 method set and tallies one QPX instruction per call.
// The audited kernels are verified against the production kernels for
// numerical equality (audit_test.go), so the mix corresponds to real code.

// OpClass categorizes QPX instructions.
type OpClass int

// Instruction classes. FMA counts 8 FLOPs (4 lanes x 2); every other
// non-memory class counts 4, following the paper's upper-bound convention.
const (
	OpArith OpClass = iota // add/sub/mul/neg/abs/min/max/cmp
	OpFMA                  // fused multiply-add family
	OpDiv                  // divide / reciprocal / sqrt (software-assisted)
	OpPerm                 // inter-lane permutations
	OpSel                  // conditional select
	OpLoad                 // vector load (excluded from density)
	OpStore                // vector store (excluded from density)
	numOpClasses
)

// Counter tallies the executed instruction mix.
type Counter struct {
	Counts [numOpClasses]int64
}

// Instructions returns the non-memory instruction count.
func (c *Counter) Instructions() int64 {
	var t int64
	for cl, n := range c.Counts {
		if OpClass(cl) != OpLoad && OpClass(cl) != OpStore {
			t += n
		}
	}
	return t
}

// FLOPs returns the FLOP count under the paper's convention.
func (c *Counter) FLOPs() int64 {
	var t int64
	for cl, n := range c.Counts {
		switch OpClass(cl) {
		case OpFMA:
			t += 8 * n
		case OpLoad, OpStore:
		default:
			t += 4 * n
		}
	}
	return t
}

// Density returns the FLOP/instruction density divided by the SIMD width —
// the "x 4" convention of Table 8 (1.0 = pure non-FMA vector arithmetic,
// 2.0 = pure FMA).
func (c *Counter) Density() float64 {
	ins := c.Instructions()
	if ins == 0 {
		return 0
	}
	return float64(c.FLOPs()) / float64(ins) / 4
}

// PeakBound returns the maximum achievable peak fraction implied by the
// issue rate: one QPX instruction per cycle, peak = 8 FLOP/cycle, so the
// bound is Density/2.
func (c *Counter) PeakBound() float64 { return c.Density() / 2 }

// Add merges another counter.
func (c *Counter) Add(o *Counter) {
	for i := range c.Counts {
		c.Counts[i] += o.Counts[i]
	}
}

// CVec is the counting vector register.
type CVec struct {
	V qpx.Vec4
	C *Counter
}

func (a CVec) bin(cl OpClass, v qpx.Vec4) CVec {
	a.C.Counts[cl]++
	return CVec{V: v, C: a.C}
}

// CSplat creates a constant register; constant materialization is not
// counted (the real kernels keep constants resident).
func CSplat(c *Counter, x float64) CVec { return CVec{V: qpx.Splat(x), C: c} }

// CLoad counts a vector load.
func CLoad(c *Counter, s []float64) CVec {
	c.Counts[OpLoad]++
	return CVec{V: qpx.Load4(s), C: c}
}

// CLoadF counts a single-precision vector load with widening.
func CLoadF(c *Counter, s []float32) CVec {
	c.Counts[OpLoad]++
	return CVec{V: qpx.Load4f(s), C: c}
}

// Store counts a vector store.
func (a CVec) Store(s []float64) {
	a.C.Counts[OpStore]++
	a.V.Store4(s)
}

// Arithmetic mirror of the Vec4 method set.

// Add returns a+b.
func (a CVec) Add(b CVec) CVec { return a.bin(OpArith, a.V.Add(b.V)) }

// Sub returns a-b.
func (a CVec) Sub(b CVec) CVec { return a.bin(OpArith, a.V.Sub(b.V)) }

// Mul returns a*b.
func (a CVec) Mul(b CVec) CVec { return a.bin(OpArith, a.V.Mul(b.V)) }

// Div returns a/b.
func (a CVec) Div(b CVec) CVec { return a.bin(OpDiv, a.V.Div(b.V)) }

// Recip returns 1/a.
func (a CVec) Recip() CVec { return a.bin(OpDiv, a.V.Recip()) }

// Sqrt returns the lane-wise square root.
func (a CVec) Sqrt() CVec { return a.bin(OpDiv, a.V.Sqrt()) }

// MAdd returns a*b+c.
func (a CVec) MAdd(b, c CVec) CVec { return a.bin(OpFMA, a.V.MAdd(b.V, c.V)) }

// MSub returns a*b-c.
func (a CVec) MSub(b, c CVec) CVec { return a.bin(OpFMA, a.V.MSub(b.V, c.V)) }

// NMSub returns c-a*b.
func (a CVec) NMSub(b, c CVec) CVec { return a.bin(OpFMA, a.V.NMSub(b.V, c.V)) }

// Min returns the lane-wise minimum.
func (a CVec) Min(b CVec) CVec { return a.bin(OpArith, a.V.Min(b.V)) }

// Max returns the lane-wise maximum.
func (a CVec) Max(b CVec) CVec { return a.bin(OpArith, a.V.Max(b.V)) }

// Abs returns |a|.
func (a CVec) Abs() CVec { return a.bin(OpArith, a.V.Abs()) }

// Neg returns -a.
func (a CVec) Neg() CVec { return a.bin(OpArith, a.V.Neg()) }

// Shift returns the stencil-shift permutation of (a,b) by k lanes.
func (a CVec) Shift(b CVec, k int) CVec {
	var v qpx.Vec4
	switch k {
	case 1:
		v = qpx.ShiftL1(a.V, b.V)
	case 2:
		v = qpx.ShiftL2(a.V, b.V)
	case 3:
		v = qpx.ShiftL3(a.V, b.V)
	default:
		v = a.V
	}
	return a.bin(OpPerm, v)
}

// auditWENOMinus replays wenoMinusV on the counting interpreter.
func auditWENOMinus(a, b, c, d, e CVec) CVec {
	cnt := a.C
	vd0 := CSplat(cnt, d0)
	vd1 := CSplat(cnt, d1)
	vd2 := CSplat(cnt, d2)
	veps := CSplat(cnt, wenoEps)
	c1312 := CSplat(cnt, 13.0/12.0)
	quarter := CSplat(cnt, 0.25)
	sixth := CSplat(cnt, 1.0/6.0)
	two := CSplat(cnt, 2)
	three := CSplat(cnt, 3)
	four := CSplat(cnt, 4)
	five := CSplat(cnt, 5)
	seven := CSplat(cnt, 7)
	eleven := CSplat(cnt, 11)

	t1 := two.NMSub(b, a.Add(c))
	t2 := four.NMSub(b, three.MAdd(c, a))
	b0 := c1312.Mul(t1).MAdd(t1, quarter.Mul(t2).Mul(t2))
	t1 = two.NMSub(c, b.Add(d))
	t2 = b.Sub(d)
	b1 := c1312.Mul(t1).MAdd(t1, quarter.Mul(t2).Mul(t2))
	t1 = two.NMSub(d, c.Add(e))
	t2 = four.NMSub(d, three.MAdd(c, e))
	b2 := c1312.Mul(t1).MAdd(t1, quarter.Mul(t2).Mul(t2))
	e0 := veps.Add(b0)
	e1 := veps.Add(b1)
	e2 := veps.Add(b2)
	w0 := vd0.Div(e0.Mul(e0))
	w1 := vd1.Div(e1.Mul(e1))
	w2 := vd2.Div(e2.Mul(e2))
	inv := w0.Add(w1).Add(w2).Recip()
	q0 := eleven.MAdd(c, seven.NMSub(b, two.Mul(a))).Mul(sixth)
	q1 := five.MAdd(c, two.MAdd(d, b.Neg())).Mul(sixth)
	q2 := two.MAdd(c, five.MSub(d, e)).Mul(sixth)
	acc := w0.Mul(q0)
	acc = w1.MAdd(q1, acc)
	acc = w2.MAdd(q2, acc)
	return acc.Mul(inv)
}

// cFaceState and cFaceFlux mirror the vector HLLE bundles.
type cFaceState struct{ r, un, ut1, ut2, p, g, pi CVec }

type cFaceFlux struct {
	fr, fun, fut1, fut2, fe, fg, fpi, ustar CVec
}

func auditSoundSpeed(s cFaceState) CVec {
	cnt := s.r.C
	one := CSplat(cnt, 1)
	zero := CSplat(cnt, 0)
	num := s.g.Add(one).MAdd(s.p, s.pi)
	c2 := num.Div(s.g.Mul(s.r))
	return c2.Max(zero).Sqrt()
}

// auditHLLE replays hlleFaceV on the counting interpreter.
func auditHLLE(m, p cFaceState) cFaceFlux {
	cnt := m.r.C
	zero := CSplat(cnt, 0)
	half := CSplat(cnt, 0.5)
	cm := auditSoundSpeed(m)
	cp := auditSoundSpeed(p)
	sm := m.un.Sub(cm).Min(p.un.Sub(cp)).Min(zero)
	sp := m.un.Add(cm).Max(p.un.Add(cp)).Max(zero)
	inv := sp.Sub(sm).Recip()
	spsm := sp.Mul(sm)
	keM := m.un.Mul(m.un).Add(m.ut1.Mul(m.ut1)).Add(m.ut2.Mul(m.ut2)).Mul(m.r).Mul(half)
	keP := p.un.Mul(p.un).Add(p.ut1.Mul(p.ut1)).Add(p.ut2.Mul(p.ut2)).Mul(p.r).Mul(half)
	eM := m.g.MAdd(m.p, m.pi.Add(keM))
	eP := p.g.MAdd(p.p, p.pi.Add(keP))
	combine := func(fl, fr, ul, ur CVec) CVec {
		acc := sp.Mul(fl)
		acc = sm.NMSub(fr, acc)
		acc = spsm.MAdd(ur.Sub(ul), acc)
		return acc.Mul(inv)
	}
	rumM := m.r.Mul(m.un)
	rumP := p.r.Mul(p.un)
	var out cFaceFlux
	out.fr = combine(rumM, rumP, m.r, p.r)
	out.fun = combine(rumM.MAdd(m.un, m.p), rumP.MAdd(p.un, p.p), rumM, rumP)
	out.fut1 = combine(rumM.Mul(m.ut1), rumP.Mul(p.ut1), m.r.Mul(m.ut1), p.r.Mul(p.ut1))
	out.fut2 = combine(rumM.Mul(m.ut2), rumP.Mul(p.ut2), m.r.Mul(m.ut2), p.r.Mul(p.ut2))
	out.fe = combine(eM.Add(m.p).Mul(m.un), eP.Add(p.p).Mul(p.un), eM, eP)
	out.fg = combine(m.g.Mul(m.un), p.g.Mul(p.un), m.g, p.g)
	out.fpi = combine(m.pi.Mul(m.un), p.pi.Mul(p.un), m.pi, p.pi)
	out.ustar = sp.Mul(m.un).Sub(sm.Mul(p.un)).Mul(inv)
	return out
}

// auditConv replays the CONV stage for four cells: AoS gather (modeled as
// one load plus three permutes per quantity, the QPX AoS/SoA conversion
// pattern) followed by the EOS arithmetic.
func auditConv(cnt *Counter, cells []float32) [7]CVec {
	gather := func(q int) CVec {
		// 4 lanes from strided AoS positions: one load + 3 permutations.
		v := qpx.New(
			float64(cells[q]), float64(cells[nq+q]),
			float64(cells[2*nq+q]), float64(cells[3*nq+q]),
		)
		cnt.Counts[OpLoad]++
		cnt.Counts[OpPerm] += 3
		return CVec{V: v, C: cnt}
	}
	half := CSplat(cnt, 0.5)
	r := gather(qr)
	inv := r.Recip()
	u := gather(qu).Mul(inv)
	v := gather(qv).Mul(inv)
	w := gather(qw).Mul(inv)
	e := gather(qe)
	g := gather(qg)
	pi := gather(qp)
	ke := u.Mul(u).Add(v.Mul(v)).Add(w.Mul(w)).Mul(r).Mul(half)
	p := e.Sub(ke).Sub(pi).Div(g)
	return [7]CVec{r, u, v, w, p, g, pi}
}

// auditSum replays the SUM stage for four cells of one direction.
func auditSum(cnt *Counter, flux, phi [][]float64) {
	load := func(s []float64, off int) CVec { return CLoad(cnt, s[off:]) }
	du := load(flux[7], 1).Sub(load(flux[7], 0))
	for q := 0; q < 5; q++ {
		d := load(flux[q], 1).Sub(load(flux[q], 0))
		acc := load(phi[2], 0).Sub(d) // acc -= diff
		acc.Store(phi[2])
	}
	for k := 0; k < 2; k++ {
		d := load(flux[5+k], 1).Sub(load(flux[5+k], 0))
		g := load(phi[k], 0)
		acc := load(phi[2], 0).Sub(d.Sub(g.Mul(du)))
		acc.Store(phi[2])
	}
}

// auditBack replays the BACK stage for four values of one quantity.
func auditBack(cnt *Counter, acc []float64, invH float64, out []float64) {
	v := CLoad(cnt, acc).Mul(CSplat(cnt, invH))
	v.Store(out)
}

// StageMix is one row of Table 8.
type StageMix struct {
	Stage        string
	Weight       float64 // fraction of total non-memory instructions
	Density      float64 // FLOP/instruction / 4
	PeakBound    float64 // density / 2
	Instructions int64
}

// InstructionMix executes every RHS stage once per its per-cell invocation
// count for blocks of edge n and reports the Table 8 rows plus the overall
// bound.
func InstructionMix(n int) []StageMix {
	sample := []float64{1.2, 0.9, 1.1, 1.4, 1.0, 1.3, 0.8, 1.05, 0.95}
	mkState := func(c *Counter) cFaceState {
		ld := func(i int) CVec { return CVec{V: qpx.Splat(sample[i]), C: c} }
		return cFaceState{r: ld(0), un: ld(1), ut1: ld(2), ut2: ld(3), p: ld(4), g: ld(5), pi: ld(6)}
	}

	// Per-cell invocation counts (per 4 cells, the vector granularity):
	// every cell has 3 directions x ~1 face, each face needs 14 WENO
	// reconstructions; HLLE once per face; CONV once per cell (x ghost
	// overhead); SUM and BACK once per cell.
	facesPer4Cells := 3.0 * float64(n+1) / float64(n)
	ghost := ghostFactor(n)

	var weno, hlle, conv, sum, back Counter

	// WENO: stencil loads (6 vector loads per quantity pair via shifts in
	// the x-sweep) + arithmetic for minus and plus reconstruction.
	{
		c := &weno
		for q := 0; q < 7; q++ {
			c0 := CLoad(c, sample[0:])
			c1 := c0.Shift(c0, 1)
			c2 := c0.Shift(c0, 2)
			c3 := c0.Shift(c0, 3)
			c4 := CLoad(c, sample[1:])
			c5 := c4.Shift(c4, 1)
			_ = auditWENOMinus(c0, c1, c2, c3, c4)
			_ = auditWENOMinus(c5, c4, c3, c2, c1) // plus side, mirrored
		}
	}
	{
		c := &hlle
		m := mkState(c)
		p := mkState(c)
		_ = auditHLLE(m, p)
	}
	{
		c := &conv
		cells := make([]float32, 4*nq)
		for i := range cells {
			cells[i] = float32(sample[i%len(sample)]) + 1
		}
		_ = auditConv(c, cells)
	}
	{
		c := &sum
		flux := make([][]float64, 8)
		for i := range flux {
			flux[i] = []float64{1, 2, 3, 4, 5}
		}
		phi := [][]float64{{1, 1, 1, 1, 1}, {2, 2, 2, 2, 2}, {0, 0, 0, 0, 0}}
		auditSum(c, flux, phi)
	}
	{
		c := &back
		out := make([]float64, 4)
		auditBack(c, []float64{1, 2, 3, 4}, 0.5, out)
		// BACK also includes the float64->float32 AoS scatter: model as
		// 3 permutations + 1 store per quantity group.
		c.Counts[OpPerm] += 3
	}

	type stage struct {
		name   string
		c      *Counter
		invocs float64 // per 4 cells
	}
	stages := []stage{
		{"CONV", &conv, ghost},
		{"WENO", &weno, facesPer4Cells},
		{"HLLE", &hlle, facesPer4Cells},
		{"SUM", &sum, 3},
		{"BACK", &back, 7},
	}
	var rows []StageMix
	var insF []float64
	var totalIns float64
	var totalFLOP float64
	for _, s := range stages {
		ins := float64(s.c.Instructions()) * s.invocs
		fl := float64(s.c.FLOPs()) * s.invocs
		totalIns += ins
		totalFLOP += fl
		insF = append(insF, ins)
		rows = append(rows, StageMix{
			Stage:        s.name,
			Density:      s.c.Density(),
			PeakBound:    s.c.PeakBound(),
			Instructions: int64(ins),
		})
	}
	for i := range rows {
		rows[i].Weight = insF[i] / totalIns
	}
	all := StageMix{
		Stage:        "ALL",
		Weight:       1,
		Density:      totalFLOP / totalIns / 4,
		Instructions: int64(totalIns),
	}
	all.PeakBound = all.Density / 2
	return append(rows, all)
}
