package core

import "cubism/internal/qpx"

// Vector HLLE flux: four faces per invocation. Conditional clamping of the
// wave speeds uses lane-wise min/max against zero instead of branches,
// matching the select-based control flow of the QPX implementation.

// faceStateV is a 4-lane bundle of reconstructed face states.
type faceStateV struct {
	r, un, ut1, ut2, p, g, pi qpx.Vec4
}

// faceFluxV is a 4-lane bundle of HLLE outputs.
type faceFluxV struct {
	fr, fun, fut1, fut2, fe, fg, fpi qpx.Vec4
	ustar                            qpx.Vec4
}

var (
	vZero       = qpx.Zero()
	vOne        = qpx.Splat(1)
	vHalf       = qpx.Splat(0.5)
	vDegenerate = qpx.Splat(1e-12)
	vHalfDegen  = qpx.Splat(5e-13)
	vPhysEps    = qpx.Splat(1e-30)
)

// physMaskV returns +1 in lanes whose state admits a real sound speed and
// positive density and Γ, -1 elsewhere (NaN lanes map to -1).
func physMaskV(s faceStateV) qpx.Vec4 {
	phys := s.r.Min(s.g).Min(s.g.Add(vOne).MAdd(s.p, s.pi))
	return phys.CmpGE(vPhysEps)
}

// safeguardV replaces non-physical reconstructed lanes with the adjacent
// cell averages through branch-free selects (the vector counterpart of the
// scalar first-order fallback).
func safeguardV(s, center faceStateV) faceStateV {
	mask := physMaskV(s)
	return faceStateV{
		r:   qpx.Sel(mask, center.r, s.r),
		un:  qpx.Sel(mask, center.un, s.un),
		ut1: qpx.Sel(mask, center.ut1, s.ut1),
		ut2: qpx.Sel(mask, center.ut2, s.ut2),
		p:   qpx.Sel(mask, center.p, s.p),
		g:   qpx.Sel(mask, center.g, s.g),
		pi:  qpx.Sel(mask, center.pi, s.pi),
	}
}

// soundSpeedV is the vector mixture sound speed, clamped at zero.
func soundSpeedV(s faceStateV) qpx.Vec4 {
	num := s.g.Add(vOne).MAdd(s.p, s.pi) // (Γ+1)p + Π
	c2 := num.Div(s.g.Mul(s.r))
	return c2.Max(vZero).Sqrt()
}

// hlleFaceV computes the HLLE flux across four faces at once.
func hlleFaceV(m, p faceStateV) faceFluxV {
	cm := soundSpeedV(m)
	cp := soundSpeedV(p)
	sm := m.un.Sub(cm).Min(p.un.Sub(cp)).Min(vZero)
	sp := m.un.Add(cm).Max(p.un.Add(cp)).Max(vZero)
	// Degenerate-fan floor (see the scalar kernel): lanes with a collapsed
	// fan are widened symmetrically through selects.
	width := sp.Sub(sm)
	mask := width.CmpGE(vDegenerate) // +1 where the fan is wide enough
	sp = qpx.Sel(mask, vHalfDegen, sp)
	sm = qpx.Sel(mask, vHalfDegen.Neg(), sm)
	inv := sp.Sub(sm).Recip()
	spsm := sp.Mul(sm)

	// Conserved states and physical fluxes on both sides.
	keM := m.un.Mul(m.un).Add(m.ut1.Mul(m.ut1)).Add(m.ut2.Mul(m.ut2)).Mul(m.r).Mul(vHalf)
	keP := p.un.Mul(p.un).Add(p.ut1.Mul(p.ut1)).Add(p.ut2.Mul(p.ut2)).Mul(p.r).Mul(vHalf)
	eM := m.g.MAdd(m.p, m.pi.Add(keM))
	eP := p.g.MAdd(p.p, p.pi.Add(keP))

	combine := func(fl, fr, ul, ur qpx.Vec4) qpx.Vec4 {
		// (sp*fl - sm*fr + sp*sm*(ur-ul)) / (sp-sm)
		acc := sp.Mul(fl)
		acc = sm.NMSub(fr, acc)
		acc = spsm.MAdd(ur.Sub(ul), acc)
		return acc.Mul(inv)
	}

	rumM := m.r.Mul(m.un)
	rumP := p.r.Mul(p.un)

	var out faceFluxV
	out.fr = combine(rumM, rumP, m.r, p.r)
	out.fun = combine(rumM.MAdd(m.un, m.p), rumP.MAdd(p.un, p.p), rumM, rumP)
	out.fut1 = combine(rumM.Mul(m.ut1), rumP.Mul(p.ut1), m.r.Mul(m.ut1), p.r.Mul(p.ut1))
	out.fut2 = combine(rumM.Mul(m.ut2), rumP.Mul(p.ut2), m.r.Mul(m.ut2), p.r.Mul(p.ut2))
	out.fe = combine(eM.Add(m.p).Mul(m.un), eP.Add(p.p).Mul(p.un), eM, eP)
	out.fg = combine(m.g.Mul(m.un), p.g.Mul(p.un), m.g, p.g)
	out.fpi = combine(m.pi.Mul(m.un), p.pi.Mul(p.un), m.pi, p.pi)
	out.ustar = sp.Mul(m.un).Sub(sm.Mul(p.un)).Mul(inv)
	return out
}
