package core

import (
	"math"
	"testing"

	"cubism/internal/qpx"
)

// TestAuditWENOMatchesKernel: the counting interpreter must execute exactly
// the arithmetic of the production vector kernel.
func TestAuditWENOMatchesKernel(t *testing.T) {
	var cnt Counter
	vals := [6]float64{1.2, 0.9, 1.1, 1.4, 1.0, 1.3}
	mk := func(i int) CVec { return CVec{V: qpx.Splat(vals[i]), C: &cnt} }
	got := auditWENOMinus(mk(0), mk(1), mk(2), mk(3), mk(4))
	want := wenoMinusV(qpx.Splat(vals[0]), qpx.Splat(vals[1]), qpx.Splat(vals[2]), qpx.Splat(vals[3]), qpx.Splat(vals[4]))
	for l := 0; l < qpx.Width; l++ {
		if math.Abs(got.V.Lane(l)-want.Lane(l)) > 1e-14 {
			t.Errorf("lane %d: audit %g vs kernel %g", l, got.V.Lane(l), want.Lane(l))
		}
	}
	if cnt.Counts[OpFMA] == 0 || cnt.Counts[OpArith] == 0 || cnt.Counts[OpDiv] == 0 {
		t.Errorf("implausible WENO mix: %+v", cnt.Counts)
	}
}

func TestAuditHLLEMatchesKernel(t *testing.T) {
	var cnt Counter
	vals := [7]float64{1.2, 0.9, 1.1, 1.4, 1.0, 1.3, 0.8}
	mkC := func() cFaceState {
		ld := func(i int) CVec { return CVec{V: qpx.Splat(vals[i]), C: &cnt} }
		return cFaceState{r: ld(0), un: ld(1), ut1: ld(2), ut2: ld(3), p: ld(4), g: ld(5), pi: ld(6)}
	}
	mkV := func() faceStateV {
		ld := func(i int) qpx.Vec4 { return qpx.Splat(vals[i]) }
		return faceStateV{r: ld(0), un: ld(1), ut1: ld(2), ut2: ld(3), p: ld(4), g: ld(5), pi: ld(6)}
	}
	got := auditHLLE(mkC(), mkC())
	want := hlleFaceV(mkV(), mkV())
	pairs := []struct {
		a CVec
		b qpx.Vec4
	}{
		{got.fr, want.fr}, {got.fun, want.fun}, {got.fut1, want.fut1},
		{got.fut2, want.fut2}, {got.fe, want.fe}, {got.fg, want.fg},
		{got.fpi, want.fpi}, {got.ustar, want.ustar},
	}
	for i, p := range pairs {
		if math.Abs(p.a.V.A-p.b.A) > 1e-12*(1+math.Abs(p.b.A)) {
			t.Errorf("flux %d: audit %g vs kernel %g", i, p.a.V.A, p.b.A)
		}
	}
}

// TestInstructionMixShape: the audited mix must reproduce the structure of
// Table 8 — WENO dominates the instruction stream, every stage has density
// above 1 (some FMA) and at most 2, and the overall issue-rate bound falls
// between 50% and 100% of peak.
func TestInstructionMixShape(t *testing.T) {
	rows := InstructionMix(16)
	byName := map[string]StageMix{}
	for _, r := range rows {
		byName[r.Stage] = r
	}
	weno := byName["WENO"]
	if weno.Weight < 0.5 {
		t.Errorf("WENO weight %.2f, want > 0.5 (paper: 0.83)", weno.Weight)
	}
	for _, name := range []string{"CONV", "WENO", "HLLE", "SUM", "BACK", "ALL"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing stage %s", name)
		}
		if r.Density <= 0.4 || r.Density > 2 {
			t.Errorf("%s density %.2f outside (0.4, 2]", name, r.Density)
		}
		if r.PeakBound <= 0 || r.PeakBound > 1 {
			t.Errorf("%s peak bound %.2f outside (0, 1]", name, r.PeakBound)
		}
	}
	all := byName["ALL"]
	if all.PeakBound < 0.4 || all.PeakBound > 1 {
		t.Errorf("overall bound %.2f implausible (paper: 0.76)", all.PeakBound)
	}
	// Weights sum to ~1 over the real stages.
	sum := 0.0
	for _, name := range []string{"CONV", "WENO", "HLLE", "SUM", "BACK"} {
		sum += byName[name].Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stage weights sum to %g", sum)
	}
}

// TestFlopCountsConsistent: the analytic per-cell FLOP counts used by the
// perf accounting must agree with the audited kernel arithmetic to within
// the accounting conventions (audit counts permutes/selects as FLOPs, the
// analytic count does not; they must agree within 2x and the analytic
// count must not exceed the audit).
func TestFlopCountsConsistent(t *testing.T) {
	// WENO: analytic count (69 scalar FLOPs = 69 "vector FLOPs/4 lanes").
	var cnt Counter
	mk := func(x float64) CVec { return CVec{V: qpx.Splat(x), C: &cnt} }
	_ = auditWENOMinus(mk(1.2), mk(0.9), mk(1.1), mk(1.4), mk(1.0))
	auditFlopsPerLane := float64(cnt.FLOPs()) / 4
	ratio := auditFlopsPerLane / WENOFlops
	if ratio < 0.8 || ratio > 1.6 {
		t.Errorf("WENO audit/analytic FLOP ratio %.2f outside [0.8, 1.6] (audit %g, analytic %d)",
			ratio, auditFlopsPerLane, WENOFlops)
	}

	var hc Counter
	mkS := func() cFaceState {
		ld := func(x float64) CVec { return CVec{V: qpx.Splat(x), C: &hc} }
		return cFaceState{r: ld(1.2), un: ld(0.9), ut1: ld(1.1), ut2: ld(1.4), p: ld(1.0), g: ld(1.3), pi: ld(0.8)}
	}
	_ = auditHLLE(mkS(), mkS())
	hllePerLane := float64(hc.FLOPs()) / 4
	ratio = hllePerLane / HLLEFlops
	if ratio < 0.7 || ratio > 1.6 {
		t.Errorf("HLLE audit/analytic FLOP ratio %.2f outside [0.7, 1.6] (audit %g, analytic %d)",
			ratio, hllePerLane, HLLEFlops)
	}
}

// TestOperationalIntensityTable3Shape verifies the Table 3 shape: the
// reordered RHS intensity is an order of magnitude above naive, DT gains a
// smaller factor, UP gains nothing.
func TestOperationalIntensityTable3Shape(t *testing.T) {
	n := 32
	rhsNaive := OperationalIntensityRHSNaive(n)
	rhsReord := OperationalIntensityRHS(n)
	if factor := rhsReord / rhsNaive; factor < 8 {
		t.Errorf("RHS reordering factor %.1f, want >= 8 (paper: 15X)", factor)
	}
	if rhsReord < 10 {
		t.Errorf("reordered RHS OI %.1f below the compute-bound threshold 10", rhsReord)
	}
	dtNaive := OperationalIntensityDTNaive()
	dtReord := OperationalIntensityDT()
	if factor := dtReord / dtNaive; factor < 2 || factor > 8 {
		t.Errorf("DT reordering factor %.1f, want in [2, 8] (paper: 3.9X)", factor)
	}
	up := OperationalIntensityUP()
	if up > 0.5 {
		t.Errorf("UP OI %.2f, want memory-bound ~0.2", up)
	}
}
