package core

// UP kernel: advances the flow quantities with the low-storage third-order
// TVD Runge-Kutta scheme of Williamson (paper ref. [80], §5 "low-storage
// time stepping schemes, to reduce the overall memory footprint").
//
// The 2N-storage formulation keeps one extra register field R per cell:
//
//	R ← A_s R + Δt · rhs(u)
//	u ← u + B_s R
//
// executed for the three stages s. Only two full copies of the state are
// resident (u and R), matching the paper's memory-footprint constraint.

// RK3 stage coefficients (Williamson 1980).
var (
	RK3A = [3]float64{0, -5.0 / 9.0, -153.0 / 128.0}
	RK3B = [3]float64{1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0}
)

// UpdateScalar performs one UP stage over a block: u and reg are the block
// state and Runge-Kutta register (AoS float32), rhs the freshly evaluated
// right-hand side. a, b are the stage coefficients and dt the time step.
//
// The kernel is a pure streaming operation with an operational intensity of
// about 0.2 FLOP/B — memory-bound on every platform considered, which is
// why its vectorized variant shows no improvement (Table 7).
func UpdateScalar(u, reg, rhs []float32, a, b, dt float64) {
	for i := range u {
		r := a*float64(reg[i]) + dt*float64(rhs[i])
		reg[i] = float32(r)
		u[i] = float32(float64(u[i]) + b*r)
	}
}

// UpdateFlopsPerValue is the floating point work of one UP element
// (2 multiplies + 1 add for the register, 1 multiply + 1 add for the state).
const UpdateFlopsPerValue = 5

// UpdateBytesPerValue is the compulsory traffic of one UP element: read
// u, reg, rhs and write u, reg as float32.
const UpdateBytesPerValue = 5 * 4

// UpdateSSP performs one stage of the classic three-register SSP-RK3
// scheme (Shu & Osher), the ablation counterpart of the low-storage
// formulation: it needs a full copy u0 of the step's initial state, i.e.
// three resident fields instead of two.
//
//	stage 0: u ← u0 + Δt·L(u0)
//	stage 1: u ← 3/4·u0 + 1/4·u + 1/4·Δt·L(u)
//	stage 2: u ← 1/3·u0 + 2/3·u + 2/3·Δt·L(u)
func UpdateSSP(u, u0, rhs []float32, stage int, dt float64) {
	switch stage {
	case 0:
		for i := range u {
			u[i] = float32(float64(u0[i]) + dt*float64(rhs[i]))
		}
	case 1:
		for i := range u {
			u[i] = float32(0.75*float64(u0[i]) + 0.25*(float64(u[i])+dt*float64(rhs[i])))
		}
	default:
		const third = 1.0 / 3.0
		for i := range u {
			u[i] = float32(third*float64(u0[i]) + 2*third*(float64(u[i])+dt*float64(rhs[i])))
		}
	}
}
