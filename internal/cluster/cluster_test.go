package cluster

import (
	"math"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// runWorld executes one rank body per rank and returns rank 0's grid data
// flattened into a global field sampler.
func runRanks(t *testing.T, cfg Config, steps int) map[[3]int]physics.Prim {
	t.Helper()
	n := cfg.RankDims[0] * cfg.RankDims[1] * cfg.RankDims[2]
	world := mpi.NewWorld(n)
	type cell struct {
		pos [3]int
		pr  physics.Prim
	}
	out := make(chan []cell, n)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		for s := 0; s < steps; s++ {
			r.Advance()
		}
		// Collect global cells (block coordinates are box-global).
		var cells []cell
		g := r.G
		nn := g.N
		for _, b := range g.Blocks {
			for iz := 0; iz < nn; iz++ {
				for iy := 0; iy < nn; iy++ {
					for ix := 0; ix < nn; ix++ {
						c := b.At(ix, iy, iz)
						cons := physics.Cons{
							R: float64(c[physics.QR]), RU: float64(c[physics.QU]),
							RV: float64(c[physics.QV]), RW: float64(c[physics.QW]),
							E: float64(c[physics.QE]), G: float64(c[physics.QG]), Pi: float64(c[physics.QP]),
						}
						cells = append(cells, cell{
							pos: [3]int{b.X*nn + ix, b.Y*nn + iy, b.Z*nn + iz},
							pr:  cons.ToPrim(),
						})
					}
				}
			}
		}
		out <- cells
	})
	close(out)
	field := make(map[[3]int]physics.Prim)
	for cells := range out {
		for _, c := range cells {
			field[c.pos] = c.pr
		}
	}
	return field
}

func sodConfig(rankDims [3]int, blockDims [3]int) Config {
	return Config{
		RankDims:  rankDims,
		BlockDims: blockDims,
		BlockSize: 8,
		Extent:    1,
		BC:        grid.DefaultBC(),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			g := 1 / (1.4 - 1)
			if x < 0.5 {
				return physics.Prim{Rho: 1, P: 1, G: g, Pi: 0}
			}
			return physics.Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0}
		},
	}
}

// TestSodShockTube validates the full solver stack (grid, lab, WENO5, HLLE,
// RK3, node scheduling, cluster exchange) against the exact Riemann
// solution of Sod's problem.
func TestSodShockTube(t *testing.T) {
	cfg := sodConfig([3]int{1, 1, 1}, [3]int{8, 1, 1}) // 64x8x8 cells
	world := mpi.NewWorld(1)
	var l1 float64
	var tEnd float64
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		for r.Time < 0.15 {
			r.Advance()
		}
		tEnd = r.Time
		exact := physics.RiemannExact{
			Left:  physics.Prim{Rho: 1, P: 1, G: 2.5, Pi: 0},
			Right: physics.Prim{Rho: 0.125, P: 0.1, G: 2.5, Pi: 0},
		}
		g := r.G
		n := g.N
		count := 0
		for _, b := range g.Blocks {
			if b.Y != 0 || b.Z != 0 {
				continue
			}
			for ix := 0; ix < n; ix++ {
				gx := b.X*n + ix
				x, _, _ := g.CellCenter(gx, 4, 4)
				c := b.At(ix, 4, 4)
				want := exact.Sample((x - 0.5) / tEnd)
				l1 += math.Abs(float64(c[physics.QR]) - want.Rho)
				count++
			}
		}
		l1 /= float64(count)
	})
	if l1 > 0.015 {
		t.Errorf("Sod L1 density error %.4f exceeds 0.015 at t=%.3f", l1, tEnd)
	}
}

// TestConservation: on a periodic box, total mass, momentum and energy are
// conserved to float32 accumulation accuracy.
func TestConservation(t *testing.T) {
	cfg := Config{
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{2, 2, 2},
		BlockSize: 8,
		Extent:    1,
		BC:        grid.PeriodicBC(),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			return physics.Prim{
				Rho: 1 + 0.2*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y),
				U:   0.1 * math.Sin(2*math.Pi*z),
				V:   -0.05 * math.Cos(2*math.Pi*x),
				P:   1 + 0.1*math.Cos(2*math.Pi*y),
				G:   2.5,
				Pi:  0,
			}
		},
	}
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		sums := func() (m, px, e float64) {
			n := r.G.N
			for _, b := range r.G.Blocks {
				for iz := 0; iz < n; iz++ {
					for iy := 0; iy < n; iy++ {
						for ix := 0; ix < n; ix++ {
							c := b.At(ix, iy, iz)
							m += float64(c[physics.QR])
							px += float64(c[physics.QU])
							e += float64(c[physics.QE])
						}
					}
				}
			}
			return
		}
		m0, p0, e0 := sums()
		for s := 0; s < 10; s++ {
			r.Advance()
		}
		m1, p1, e1 := sums()
		cells := float64(r.G.Cells())
		if d := math.Abs(m1-m0) / cells; d > 1e-6 {
			t.Errorf("mass drift %g per cell", d)
		}
		if d := math.Abs(p1-p0) / cells; d > 1e-6 {
			t.Errorf("momentum drift %g per cell", d)
		}
		if d := math.Abs(e1-e0) / cells; d > 1e-5 {
			t.Errorf("energy drift %g per cell", d)
		}
	})
}

// TestMultiRankMatchesSingleRank: decomposing the same global problem over
// 8 ranks must reproduce the single-rank solution (ghost exchange
// correctness).
func TestMultiRankMatchesSingleRank(t *testing.T) {
	steps := 5
	single := runRanks(t, sodConfig([3]int{1, 1, 1}, [3]int{4, 2, 2}), steps)
	multi := runRanks(t, sodConfig([3]int{2, 2, 2}, [3]int{2, 1, 1}), steps)
	if len(single) != len(multi) {
		t.Fatalf("cell counts differ: %d vs %d", len(single), len(multi))
	}
	var maxDiff float64
	for pos, a := range single {
		b, ok := multi[pos]
		if !ok {
			t.Fatalf("cell %v missing in multi-rank run", pos)
		}
		d := math.Abs(a.Rho-b.Rho) + math.Abs(a.P-b.P) + math.Abs(a.U-b.U)
		if d > maxDiff {
			maxDiff = d
		}
	}
	// Identical arithmetic order within blocks; differences can only come
	// from float32 storage of ghosts, which is exact here too.
	if maxDiff > 1e-6 {
		t.Errorf("multi-rank deviates from single-rank by %g", maxDiff)
	}
}

// TestWallReflection: a wall boundary must reflect a pressure pulse rather
// than let it leave the domain.
func TestWallReflection(t *testing.T) {
	cfg := Config{
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{4, 1, 1},
		BlockSize: 8,
		Extent:    1,
		BC:        grid.WallBC(grid.XLo),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			p := 1.0
			if x > 0.2 && x < 0.4 {
				p = 5 // pulse moving both ways; part will hit the wall
			}
			return physics.Prim{Rho: 1, P: p, G: 2.5, Pi: 0}
		},
	}
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		d0 := r.Diagnose(grid.XLo, true)
		// March until the pulse reaches the wall.
		var peak float64
		for s := 0; s < 120; s++ {
			r.Advance()
			d := r.Diagnose(grid.XLo, true)
			if d.WallPressure > peak {
				peak = d.WallPressure
			}
		}
		if peak <= d0.WallPressure*1.2 {
			t.Errorf("wall pressure never rose: initial %.3f, peak %.3f", d0.WallPressure, peak)
		}
		// Mass flux through the reflecting wall is zero: total x-momentum
		// symmetric check is weaker; instead check density stayed positive.
		n := r.G.N
		for _, b := range r.G.Blocks {
			for iz := 0; iz < n; iz++ {
				for iy := 0; iy < n; iy++ {
					for ix := 0; ix < n; ix++ {
						if b.At(ix, iy, iz)[physics.QR] <= 0 {
							t.Fatal("negative density after wall reflection")
						}
					}
				}
			}
		}
	})
}

// TestVectorMatchesScalarCluster: the QPX engine must produce the same
// trajectory as the scalar engine.
func TestVectorMatchesScalarCluster(t *testing.T) {
	base := sodConfig([3]int{1, 1, 1}, [3]int{4, 1, 1})
	vec := base
	vec.Vector = true
	steps := 5
	a := runRanks(t, base, steps)
	b := runRanks(t, vec, steps)
	var maxDiff float64
	for pos, pa := range a {
		pb := b[pos]
		d := math.Abs(pa.Rho-pb.Rho) + math.Abs(pa.P-pb.P)
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("vector deviates from scalar by %g", maxDiff)
	}
}

func TestDiagnosticsEquivRadius(t *testing.T) {
	// A vapor sphere of radius R in liquid: the diagnostic equivalent
	// radius must come out near R.
	R := 0.2
	cfg := Config{
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{2, 2, 2},
		BlockSize: 16,
		Extent:    1,
		BC:        grid.DefaultBC(),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			dx, dy, dz := x-0.5, y-0.5, z-0.5
			a := 0.0
			if math.Sqrt(dx*dx+dy*dy+dz*dz) < R {
				a = 1
			}
			g, pi := physics.Mix(physics.Liquid, physics.Vapor, a)
			return physics.Prim{
				Rho: (1-a)*1000 + a*1,
				P:   (1-a)*100e5 + a*0.0234e5,
				G:   g, Pi: pi,
			}
		},
	}
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		d := r.Diagnose(grid.XLo, false)
		if math.Abs(d.EquivRadius-R)/R > 0.1 {
			t.Errorf("equivalent radius %.3f, want %.3f +- 10%%", d.EquivRadius, R)
		}
		if d.MaxPressure < 99e5 {
			t.Errorf("max pressure %.3g, want ~1e7", d.MaxPressure)
		}
	})
}

// TestTimeStepperAblation: the three-register SSP-RK3 and the low-storage
// 2N scheme are different third-order integrators, so their Sod
// trajectories must agree closely (to the scheme truncation level) while
// not being identical.
func TestTimeStepperAblation(t *testing.T) {
	steps := 10
	base := sodConfig([3]int{1, 1, 1}, [3]int{4, 1, 1})
	ssp := base
	ssp.TimeStepper = "ssprk3"
	a := runRanks(t, base, steps)
	b := runRanks(t, ssp, steps)
	var maxDiff float64
	identical := true
	for pos, pa := range a {
		pb := b[pos]
		d := math.Abs(pa.Rho - pb.Rho)
		if d > maxDiff {
			maxDiff = d
		}
		if pa.Rho != pb.Rho {
			identical = false
		}
	}
	if identical {
		t.Error("schemes produced identical states; ablation not exercised")
	}
	if maxDiff > 1e-3 {
		t.Errorf("schemes diverged by %g in density after %d steps", maxDiff, steps)
	}
}

// TestMirrorSymmetryPreserved: an x-mirror-symmetric initial condition must
// stay mirror symmetric under time stepping (catches any left/right bias in
// the reconstruction or flux logic).
func TestMirrorSymmetryPreserved(t *testing.T) {
	cfg := Config{
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{4, 1, 1},
		BlockSize: 8,
		Extent:    1,
		BC:        grid.DefaultBC(),
		Workers:   2,
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			// Symmetric pressure bump at the center.
			d := x - 0.5
			return physics.Prim{
				Rho: 1,
				P:   1 + 2*math.Exp(-200*d*d),
				G:   2.5,
			}
		},
	}
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		for s := 0; s < 8; s++ {
			r.Advance()
		}
		g := r.G
		nx := g.CellsX()
		var maxAsym float64
		for ix := 0; ix < nx/2; ix++ {
			mx := nx - 1 - ix
			for _, q := range []int{physics.QR, physics.QE, physics.QP} {
				a := float64(g.Cell(ix, 4, 4, q))
				b := float64(g.Cell(mx, 4, 4, q))
				if d := math.Abs(a - b); d > maxAsym {
					maxAsym = d
				}
			}
			// x-momentum is antisymmetric.
			a := float64(g.Cell(ix, 4, 4, physics.QU))
			b := float64(g.Cell(mx, 4, 4, physics.QU))
			if d := math.Abs(a + b); d > maxAsym {
				maxAsym = d
			}
		}
		if maxAsym > 1e-4 {
			t.Errorf("mirror symmetry broken by %g after 8 steps", maxAsym)
		}
	})
}
