package cluster

import (
	"runtime"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/mpi"
)

// TestPipelineMatchesStagedBitwise: the dependency-driven fused RHS+UP
// pipeline must produce bitwise identical state to the bulk-synchronous
// staged path on a multi-rank grid, for both kernel variants.
func TestPipelineMatchesStagedBitwise(t *testing.T) {
	for _, vector := range []bool{false, true} {
		name := "Scalar"
		if vector {
			name = "Vector"
		}
		t.Run(name, func(t *testing.T) {
			const steps = 5
			staged := determinismConfig()
			staged.Vector = vector
			a := collectBlockData(t, staged, steps)
			piped := determinismConfig()
			piped.Vector = vector
			piped.Pipeline = true
			b := collectBlockData(t, piped, steps)
			compareBlockData(t, a, b, "pipeline diverges from staged baseline")
		})
	}
}

// TestLinksMatchLayout: the neighbor/tag table precomputed at rank
// construction must agree with the layout — one link exactly for every
// (owned block, face) pair whose neighbor block is remote, pointing at the
// layout's owner — and the table must be globally symmetric (every send has
// a matching receive on the peer). The engine keeps the unmasked global BC:
// inter-rank faces are resolved through the block topology, not by masking.
func TestLinksMatchLayout(t *testing.T) {
	for _, layoutName := range []string{"cartesian", "hilbert"} {
		t.Run(layoutName, func(t *testing.T) {
			cfg := Config{
				RankDims:  [3]int{2, 1, 1},
				BlockDims: [3]int{2, 2, 2},
				BlockSize: 8,
				Extent:    1,
				Workers:   1,
				CFL:       0.3,
				Layout:    layoutName,
			}
			cfg.BC[grid.XLo] = grid.Reflecting
			cfg.BC[grid.XHi] = grid.Reflecting
			const nranks = 2
			world := mpi.NewWorld(nranks)
			type rankLinks struct {
				rank  int
				bc    grid.BC
				links []Link
				want  int
			}
			out := make(chan rankLinks, nranks)
			world.Run(func(comm *mpi.Comm) {
				r := NewRank(comm, cfg)
				defer r.Close()
				// Independently count the remote (block, face) pairs from the
				// layout alone.
				want := 0
				for _, c := range r.Layout.Blocks(comm.Rank()) {
					for f := grid.XLo; f <= grid.ZHi; f++ {
						nc, ok := r.Layout.Neighbor(c, f)
						if ok && nc != c && r.Layout.Owner(nc) != comm.Rank() {
							want++
						}
					}
				}
				for _, lk := range r.Links() {
					b := r.G.Blocks[lk.Block]
					c := [3]int{b.X, b.Y, b.Z}
					nc, ok := r.Layout.Neighbor(c, lk.Face)
					if !ok {
						t.Errorf("rank %d link %+v crosses a physical boundary", comm.Rank(), lk)
					} else if got := r.Layout.Owner(nc); got != lk.Peer {
						t.Errorf("rank %d link %+v: layout owner %d", comm.Rank(), lk, got)
					}
					if lk.MyID != r.Layout.LinearID(c) {
						t.Errorf("rank %d link %+v: MyID != LinearID(%v)", comm.Rank(), lk, c)
					}
				}
				out <- rankLinks{rank: comm.Rank(), bc: r.Engine.BC, links: r.Links(), want: want}
			})
			close(out)
			type half struct {
				peer int
				id   int64
				face grid.Face
			}
			seen := map[half]int{}
			for got := range out {
				if got.bc != cfg.BC {
					t.Errorf("rank %d engine BC %v, want unmasked global %v", got.rank, got.bc, cfg.BC)
				}
				if len(got.links) != got.want {
					t.Errorf("rank %d has %d links, layout implies %d", got.rank, len(got.links), got.want)
				}
				for _, lk := range got.links {
					seen[half{got.rank, lk.MyID, lk.Face}]++
					seen[half{lk.Peer, lk.NbID, opposite(lk.Face)}]--
				}
			}
			for h, n := range seen {
				if n != 0 {
					t.Errorf("asymmetric link table at rank %d block %d face %v (balance %d)",
						h.peer, h.id, h.face, n)
				}
			}
		})
	}
}

// TestOppositeFaceEncoding pins the face encoding the halo exchange relies
// on: the opposite of face f is f with the low bit flipped.
func TestOppositeFaceEncoding(t *testing.T) {
	pairs := [][2]grid.Face{
		{grid.XLo, grid.XHi},
		{grid.YLo, grid.YHi},
		{grid.ZLo, grid.ZHi},
	}
	for _, p := range pairs {
		lo, hi := p[0], p[1]
		if opposite(lo) != hi || opposite(hi) != lo {
			t.Errorf("opposite(%d)=%d, opposite(%d)=%d; want the pair swapped",
				lo, opposite(lo), hi, opposite(hi))
		}
		if opposite(lo) != lo^1 {
			t.Errorf("opposite(%d) != %d^1", lo, lo)
		}
		if lo.Axis() != hi.Axis() {
			t.Errorf("faces %d/%d axes differ", lo, hi)
		}
		if lo.IsHigh() || !hi.IsHigh() {
			t.Errorf("faces %d/%d high bits wrong", lo, hi)
		}
	}
}

// steadyStateConfig is a single-rank periodic setup where every face
// exchanges with itself — the worst case for pack-buffer churn.
func steadyStateConfig(pipeline bool) Config {
	cfg := determinismConfig()
	cfg.RankDims = [3]int{1, 1, 1}
	cfg.BlockDims = [3]int{2, 2, 2}
	cfg.Workers = 2
	cfg.Pipeline = pipeline
	return cfg
}

// TestSteadyStateAllocs: after warmup, a step must not allocate fresh ghost
// payload or reduction buffers; only small bookkeeping (lazy receive
// requests, stage-run headers, collective slots) remains.
func TestSteadyStateAllocs(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "Staged"
		if pipeline {
			name = "Pipeline"
		}
		t.Run(name, func(t *testing.T) {
			if raceEnabled {
				t.Skip("race-detector shadow allocations break the budget")
			}
			cfg := steadyStateConfig(pipeline)
			world := mpi.NewWorld(1)
			world.Run(func(comm *mpi.Comm) {
				r := NewRank(comm, cfg)
				defer r.Close()
				for s := 0; s < 3; s++ {
					r.Advance() // warmup: buffers reach steady-state capacity
				}
				const steps = 16
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				for s := 0; s < steps; s++ {
					r.Advance()
				}
				runtime.ReadMemStats(&after)
				mallocs := float64(after.Mallocs-before.Mallocs) / steps
				bytes := float64(after.TotalAlloc-before.TotalAlloc) / steps
				// The pre-reuse ExchangeGhosts alone allocated ~390 KB/step
				// here (18 PackFace payloads); observed steady state is
				// ~45 mallocs and ~4 KB per step — the budget leaves room
				// for runtime noise but catches any payload churn.
				if mallocs > 150 {
					t.Errorf("%.1f mallocs/step, want <= 150", mallocs)
				}
				if bytes > 32<<10 {
					t.Errorf("%.0f bytes/step allocated, want <= 32KiB", bytes)
				}
			})
		})
	}
}

// TestPoolSpawnConstantAcrossSteps: the engine pool must spawn its workers
// exactly once, no matter how many steps run.
func TestPoolSpawnConstantAcrossSteps(t *testing.T) {
	cfg := steadyStateConfig(true)
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		defer r.Close()
		for s := 0; s < 100; s++ {
			r.Advance()
		}
		ps := r.Engine.PoolStats()
		if ps.Spawned != int64(cfg.Workers) {
			t.Errorf("spawned %d worker goroutines over 100 steps, want %d",
				ps.Spawned, cfg.Workers)
		}
		if ps.QueueDepth != 0 {
			t.Errorf("queue depth %d after quiescence, want 0", ps.QueueDepth)
		}
		if ps.TasksRun == 0 {
			t.Error("pool ran no tasks")
		}
	})
}
