package cluster

import (
	"runtime"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/mpi"
)

// TestPipelineMatchesStagedBitwise: the dependency-driven fused RHS+UP
// pipeline must produce bitwise identical state to the bulk-synchronous
// staged path on a multi-rank grid, for both kernel variants.
func TestPipelineMatchesStagedBitwise(t *testing.T) {
	for _, vector := range []bool{false, true} {
		name := "Scalar"
		if vector {
			name = "Vector"
		}
		t.Run(name, func(t *testing.T) {
			const steps = 5
			staged := determinismConfig()
			staged.Vector = vector
			a := collectBlockData(t, staged, steps)
			piped := determinismConfig()
			piped.Vector = vector
			piped.Pipeline = true
			b := collectBlockData(t, piped, steps)
			compareBlockData(t, a, b, "pipeline diverges from staged baseline")
		})
	}
}

// TestRankBCMasksNeighborFaces: faces with a neighboring rank must be
// masked to Absorbing (the halo always wins there), while true domain
// boundaries keep the physical condition.
func TestRankBCMasksNeighborFaces(t *testing.T) {
	cfg := Config{
		RankDims:  [3]int{2, 1, 1},
		BlockDims: [3]int{2, 1, 1},
		BlockSize: 8,
		Extent:    1,
		Workers:   1,
		CFL:       0.3,
	}
	cfg.BC[grid.XLo] = grid.Reflecting
	cfg.BC[grid.XHi] = grid.Reflecting
	world := mpi.NewWorld(2)
	type bcAt struct {
		rank int
		bc   grid.BC
	}
	out := make(chan bcAt, 2)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		defer r.Close()
		out <- bcAt{rank: comm.Rank(), bc: r.Engine.BC}
	})
	close(out)
	for got := range out {
		// The two ranks split the x axis: each keeps the reflecting wall on
		// its outer x face and gets Absorbing on the shared inner face.
		wantLo, wantHi := grid.Reflecting, grid.Absorbing
		if got.rank == 1 {
			wantLo, wantHi = grid.Absorbing, grid.Reflecting
		}
		if got.bc[grid.XLo] != wantLo || got.bc[grid.XHi] != wantHi {
			t.Errorf("rank %d x faces: got (%v, %v), want (%v, %v)",
				got.rank, got.bc[grid.XLo], got.bc[grid.XHi], wantLo, wantHi)
		}
		for f := grid.YLo; f <= grid.ZHi; f++ {
			if got.bc[f] != grid.Absorbing {
				t.Errorf("rank %d face %d: got %v, want Absorbing (no neighbor, default BC)",
					got.rank, f, got.bc[f])
			}
		}
	}
}

// TestOppositeFaceEncoding pins the face encoding the halo exchange relies
// on: the opposite of face f is f with the low bit flipped.
func TestOppositeFaceEncoding(t *testing.T) {
	pairs := [][2]grid.Face{
		{grid.XLo, grid.XHi},
		{grid.YLo, grid.YHi},
		{grid.ZLo, grid.ZHi},
	}
	for _, p := range pairs {
		lo, hi := p[0], p[1]
		if opposite(lo) != hi || opposite(hi) != lo {
			t.Errorf("opposite(%d)=%d, opposite(%d)=%d; want the pair swapped",
				lo, opposite(lo), hi, opposite(hi))
		}
		if opposite(lo) != lo^1 {
			t.Errorf("opposite(%d) != %d^1", lo, lo)
		}
		if lo.Axis() != hi.Axis() {
			t.Errorf("faces %d/%d axes differ", lo, hi)
		}
		if lo.IsHigh() || !hi.IsHigh() {
			t.Errorf("faces %d/%d high bits wrong", lo, hi)
		}
	}
}

// steadyStateConfig is a single-rank periodic setup where every face
// exchanges with itself — the worst case for pack-buffer churn.
func steadyStateConfig(pipeline bool) Config {
	cfg := determinismConfig()
	cfg.RankDims = [3]int{1, 1, 1}
	cfg.BlockDims = [3]int{2, 2, 2}
	cfg.Workers = 2
	cfg.Pipeline = pipeline
	return cfg
}

// TestSteadyStateAllocs: after warmup, a step must not allocate fresh ghost
// payload or reduction buffers; only small bookkeeping (lazy receive
// requests, stage-run headers, collective slots) remains.
func TestSteadyStateAllocs(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "Staged"
		if pipeline {
			name = "Pipeline"
		}
		t.Run(name, func(t *testing.T) {
			if raceEnabled {
				t.Skip("race-detector shadow allocations break the budget")
			}
			cfg := steadyStateConfig(pipeline)
			world := mpi.NewWorld(1)
			world.Run(func(comm *mpi.Comm) {
				r := NewRank(comm, cfg)
				defer r.Close()
				for s := 0; s < 3; s++ {
					r.Advance() // warmup: buffers reach steady-state capacity
				}
				const steps = 16
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				for s := 0; s < steps; s++ {
					r.Advance()
				}
				runtime.ReadMemStats(&after)
				mallocs := float64(after.Mallocs-before.Mallocs) / steps
				bytes := float64(after.TotalAlloc-before.TotalAlloc) / steps
				// The pre-reuse ExchangeGhosts alone allocated ~390 KB/step
				// here (18 PackFace payloads); observed steady state is
				// ~45 mallocs and ~4 KB per step — the budget leaves room
				// for runtime noise but catches any payload churn.
				if mallocs > 150 {
					t.Errorf("%.1f mallocs/step, want <= 150", mallocs)
				}
				if bytes > 32<<10 {
					t.Errorf("%.0f bytes/step allocated, want <= 32KiB", bytes)
				}
			})
		})
	}
}

// TestPoolSpawnConstantAcrossSteps: the engine pool must spawn its workers
// exactly once, no matter how many steps run.
func TestPoolSpawnConstantAcrossSteps(t *testing.T) {
	cfg := steadyStateConfig(true)
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		defer r.Close()
		for s := 0; s < 100; s++ {
			r.Advance()
		}
		ps := r.Engine.PoolStats()
		if ps.Spawned != int64(cfg.Workers) {
			t.Errorf("spawned %d worker goroutines over 100 steps, want %d",
				ps.Spawned, cfg.Workers)
		}
		if ps.QueueDepth != 0 {
			t.Errorf("queue depth %d after quiescence, want 0", ps.QueueDepth)
		}
		if ps.TasksRun == 0 {
			t.Error("pool ran no tasks")
		}
	})
}
