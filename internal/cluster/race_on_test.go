//go:build race

package cluster

// raceEnabled reports whether the race detector instruments this build; its
// shadow-state allocations would drown the steady-state allocation budget.
const raceEnabled = true
