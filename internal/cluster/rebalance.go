package cluster

import (
	"fmt"

	"cubism/internal/grid"
	"cubism/internal/layout"
	"cubism/internal/mpi"
	"cubism/internal/sfc"
)

// RebalanceResult reports one rebalance decision. All fields are identical
// on every rank (the decision is computed from an allgathered load vector).
type RebalanceResult struct {
	// Imbalance is max/avg − 1 of the per-rank load metric since the last
	// check (pool busy time), the trigger quantity.
	Imbalance float64
	// Rebalanced reports whether the cut points were recomputed and blocks
	// migrated.
	Rebalanced bool
	// Moved counts the global ownership changes of the accepted layout.
	Moved int
}

// Rebalance measures the per-rank load since the previous call and, when
// the imbalance max/avg − 1 exceeds threshold (or force is set), recomputes
// the layout's curve cut points from the measured loads and migrates the
// reassigned blocks to their new owners. Collective; must be called at a
// step boundary (between RK steps) on every rank, outside any halo epoch.
//
// Determinism: every rank derives the new cuts from the same allgathered
// load vector with the same deterministic algorithm, so all ranks agree on
// the new layout without further coordination. Migrating only the conserved
// state Block.Data is lossless because the low-storage RK registers are
// step-local (RK3A[0] = 0 resets the register at the top of each step), so
// a migrated run continues bitwise identically to an unmigrated one.
func (r *Rank) Rebalance(threshold float64, force bool) RebalanceResult {
	sp := r.tr.StartSpan("rebalance", r.rankID, 0)
	defer sp.End()
	busy := r.Engine.PoolStats().BusyNS
	load := busy - r.lastBusyNS
	r.lastBusyNS = busy
	loads := r.Comm.Gather(float64(load))
	res := RebalanceResult{Imbalance: imbalance(loads)}
	if !r.Layout.CanRebalance() {
		return res
	}
	if res.Imbalance < threshold && !force {
		return res
	}
	newLay := r.Layout.WithCuts(r.loadCuts(loads, force))
	res.Moved = layout.Diff(r.Layout, newLay)
	if res.Moved == 0 {
		return res
	}
	res.Rebalanced = true
	r.migrate(newLay)
	return res
}

// imbalance is max/avg − 1 of a load vector (0 for an idle or empty one).
func imbalance(loads []float64) float64 {
	var sum, max float64
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum <= 0 {
		return 0
	}
	avg := sum / float64(len(loads))
	return max/avg - 1
}

// loadCuts derives new curve cut points from the per-rank load vector:
// each block is weighted by its owner's measured load divided by the
// owner's block count, and the weighted partitioner places the cuts so the
// per-chunk weight is as even as possible. When forcing with a degenerate
// (uniform or idle) load vector — the test hook — synthetic rank-indexed
// weights guarantee the cuts actually move.
func (r *Rank) loadCuts(loads []float64, force bool) []int {
	lay := r.Layout
	counts := make([]float64, lay.NRanks)
	for rank := 0; rank < lay.NRanks; rank++ {
		counts[rank] = float64(lay.Cuts[rank+1] - lay.Cuts[rank])
	}
	weights := make([]float64, lay.TotalBlocks())
	degenerate := true
	for rank := 0; rank < lay.NRanks; rank++ {
		w := loads[rank] / counts[rank]
		if rank > 0 && loads[rank] != loads[0] {
			degenerate = false
		}
		for i := lay.Cuts[rank]; i < lay.Cuts[rank+1]; i++ {
			weights[i] = w
		}
	}
	if force && degenerate {
		for rank := 0; rank < lay.NRanks; rank++ {
			for i := lay.Cuts[rank]; i < lay.Cuts[rank+1]; i++ {
				weights[i] = float64(rank + 1)
			}
		}
	}
	return sfc.PartitionWeighted(weights, lay.NRanks)
}

// migrate ships every reassigned block's conserved state from its old
// owner to its new one over the point-to-point transport (TagMigrate
// namespace, outside any halo epoch), rebuilds the rank-local grid in the
// new layout's block order, and recomputes the neighbor topology.
func (r *Rank) migrate(newLay *layout.Layout) {
	me := r.Comm.Rank()
	oldLay := r.Layout
	r.Comm.BeginTagEpoch()
	old := make(map[int64]*grid.Block, len(r.G.Blocks))
	for _, b := range r.G.Blocks {
		c := [3]int{b.X, b.Y, b.Z}
		id := oldLay.LinearID(c)
		old[id] = b
		if owner := newLay.Owner(c); owner != me {
			// Sends complete at post; the old grid is immutable from here.
			r.Comm.Isend(owner, mpi.TagMigrate(id), b.Data)
			r.migrations++
		}
	}
	coords := newLay.Blocks(me)
	g := grid.NewPartial(r.G.Desc, nil, coords)
	recvs := make([]*mpi.Request, len(coords))
	for i, c := range coords {
		if _, kept := old[newLay.LinearID(c)]; !kept {
			recvs[i] = r.Comm.Irecv(oldLay.Owner(c), mpi.TagMigrate(newLay.LinearID(c)))
		}
	}
	for i, c := range coords {
		if b := old[newLay.LinearID(c)]; b != nil {
			copy(g.Blocks[i].Data, b.Data)
			continue
		}
		data := recvs[i].Wait()
		if len(data) != len(g.Blocks[i].Data) {
			panic(fmt.Sprintf("cluster: migrated block %v payload size %d, want %d",
				c, len(data), len(g.Blocks[i].Data)))
		}
		copy(g.Blocks[i].Data, data)
		r.migrations++
	}
	r.Layout = newLay
	r.G = g
	r.Engine.SetGrid(g)
	r.allocBuffers()
	r.buildTopology()
}

// Migrations returns the cumulative number of blocks this rank has sent or
// received in rebalance migrations (the mpcf_migrations_total metric).
func (r *Rank) Migrations() int64 { return r.migrations }
