// Package cluster implements the paper's cluster layer (§6): the domain is
// decomposed across ranks under an explicit layout — the paper's cartesian
// topology with a constant subdomain size, or a space-filling-curve
// partition whose contiguous curve chunks can be rebalanced at run time —
// and non-blocking point-to-point messages exchange per-block ghost
// information for the halo blocks while the interior blocks are dispatched
// to the node layer, hiding the communication time behind computation.
package cluster

import (
	"fmt"
	"math"
	"time"

	"cubism/internal/checkpoint"
	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/layout"
	"cubism/internal/mpi"
	"cubism/internal/node"
	"cubism/internal/perf"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
)

// Config describes one production-style run.
type Config struct {
	// RankDims is the cartesian rank grid (product must equal world size).
	// Together with BlockDims it defines the global block box for every
	// layout.
	RankDims [3]int
	// BlockDims is the number of blocks per rank per dimension.
	BlockDims [3]int
	// BlockSize is the block edge in cells (paper production value: 32).
	BlockSize int
	// Extent is the physical edge length of one cell times global cells in
	// x; H is derived from it.
	Extent float64
	// BC are the global physical boundary conditions.
	BC grid.BC
	// Workers per rank (0: NumCPU).
	Workers int
	// Vector selects the QPX kernel variants.
	Vector bool
	// CFL is the time step safety factor (paper: 0.3).
	CFL float64
	// TimeStepper selects the Runge-Kutta formulation: "lsrk3" (default,
	// the paper's low-storage 2N scheme) or "ssprk3" (classic three-register
	// Shu-Osher scheme, the memory-footprint ablation).
	TimeStepper string
	// Pipeline selects the dependency-driven execution model for lsrk3
	// steps: per-block fused RHS+UP tasks on the persistent worker pool,
	// with halo blocks released per installed face. False (the zero value)
	// keeps the bulk-synchronous staged path, the ablation baseline.
	// ssprk3 always runs staged. Both paths are bitwise identical.
	Pipeline bool
	// Layout selects the cross-rank block decomposition: "" or "cartesian"
	// (the paper's fixed rank grid), or an SFC partition — "hilbert",
	// "morton", "rowmajor" — whose curve cut points the rebalancer can move
	// at run time. Physics is bitwise identical across all of them.
	Layout string
	// LayoutCuts overrides the initial curve cut points of an SFC layout
	// (len world+1) — the synthetic-skew hook of the rebalance benchmarks.
	LayoutCuts []int
	// Tracer (optional) records solver-phase spans for this rank; nil
	// disables tracing at the cost of a pointer check per phase.
	Tracer *telemetry.Tracer
	// Init fills the initial condition from global physical coordinates.
	Init func(x, y, z float64) physics.Prim
}

// Link is one entry of the precomputed neighbor/tag table: a face of a
// locally owned block whose neighbor block lives on another rank. Each link
// is simultaneously one receive (the neighbor's layers install as this
// block's face halo) and one send (this block's face layers feed the
// neighbor's opposite face), tagged by canonical block id so multiple
// blocks can cross the same rank pair in one direction.
type Link struct {
	Block int       // local block ordinal in grid order
	Face  grid.Face // face of the local block the link crosses
	Peer  int       // rank owning the neighbor block
	MyID  int64     // canonical linear id of the local block
	NbID  int64     // canonical linear id of the neighbor block
}

// Rank is the per-rank simulation state.
type Rank struct {
	Cfg    Config
	Comm   *mpi.Comm
	Layout *layout.Layout
	G      *grid.Grid
	Engine *node.Engine
	Mon    *perf.Monitor

	Step int
	Time float64

	tr     *telemetry.Tracer
	rankID int

	// Cumulative communication-phase time, nanoseconds: ghostNS covers the
	// pack/post side of the exchange, waitNS the time blocked on neighbor
	// messages (InstallHalos or the pipelined per-link installs). The
	// observatory diffs these per step for the Table-4 phase rows.
	ghostNS int64
	waitNS  int64

	// dumpSeq counts streamed frames; it versions the TagDump namespace so
	// frames of the same step (p then Γ) never reuse a (dst, tag) pair.
	dumpSeq int

	reg                  [][]float32 // low-storage Runge-Kutta registers, one per block
	rhs                  [][]float32 // RHS evaluation buffers, one per block
	u0                   [][]float32 // step-initial copies, allocated only for ssprk3
	interior, haloBlocks []*grid.Block
	interiorRHS, haloRHS [][]float32

	deps  *stageDeps
	links []Link
	// linkRelease[i] is the one-element release list of links[i], kept
	// allocated so the pipelined installs release without allocating.
	linkRelease [][]int32
	// recvs is the reusable request slice of ExchangeGhosts.
	recvs []*mpi.Request
	// packBufs reuses the PackFace payload buffers per link and RK stage.
	// One buffer per (link, stage) is safe: the receiver has finished
	// reading the stage-s slab of step k before this rank can reach stage
	// s of step k+1 (it cannot complete its own stages s+1 and s+2 without
	// this rank's later-stage messages, and each of those stages starts by
	// clearing the previously installed halos).
	packBufs [][3][]float32

	// migrations counts the blocks this rank has sent or received in
	// rebalance migrations; lastBusyNS is the pool busy counter at the
	// previous rebalance check (the load metric is the delta).
	migrations int64
	lastBusyNS int64
}

// stageDeps is the precomputed task-dependency structure of one fused
// RHS+UP stage (identical for all stages and steps under one layout).
type stageDeps struct {
	// start[i] counts the inter-rank halo links block i's lab reads; the
	// task may start only after those are installed.
	start []int32
	// labDeps[i] lists the ordinals of the locally owned blocks whose data
	// block i's lab assembly reads (face adjacency including periodic
	// wraps, which is symmetric — the same list enumerates the readers of
	// block i). Self-adjacency through a one-block periodic axis adds no
	// entry: the lab reads the block's own data, which needs no ordering.
	labDeps [][]int32
}

// NewRank builds the rank-local grid and engine for comm.
func NewRank(comm *mpi.Comm, cfg Config) *Rank {
	periodic := [3]bool{
		cfg.BC[grid.XLo] == grid.Periodic,
		cfg.BC[grid.YLo] == grid.Periodic,
		cfg.BC[grid.ZLo] == grid.Periodic,
	}
	lay, err := layout.New(cfg.Layout, cfg.RankDims, cfg.BlockDims, comm.Size(), periodic)
	if err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	if cfg.LayoutCuts != nil {
		lay = lay.WithCuts(cfg.LayoutCuts)
	}
	n := cfg.BlockSize
	globalCellsX := lay.GB[0] * n
	h := cfg.Extent / float64(globalCellsX)
	desc := grid.Desc{
		N:   n,
		NBX: lay.GB[0], NBY: lay.GB[1], NBZ: lay.GB[2],
		H: h,
	}
	g := grid.NewPartial(desc, nil, lay.Blocks(comm.Rank()))
	r := &Rank{
		Cfg:    cfg,
		Comm:   comm,
		Layout: lay,
		G:      g,
		Engine: node.New(g, cfg.BC, cfg.Workers, cfg.Vector),
		Mon:    perf.NewMonitor(),
		tr:     cfg.Tracer,
		rankID: comm.Rank(),
	}
	r.Engine.SetTrace(cfg.Tracer, r.rankID)
	r.allocBuffers()
	r.buildTopology()
	if cfg.Init != nil {
		r.Initialize(cfg.Init)
	}
	return r
}

// Close retires the rank's engine pool workers. Optional — unclosed
// engines are reclaimed by a finalizer — but long-lived processes that
// build many ranks should close them promptly.
func (r *Rank) Close() { r.Engine.Close() }

// allocBuffers sizes the per-block RK registers and RHS buffers to the
// current grid (called at construction and again after a migration).
func (r *Rank) allocBuffers() {
	per := r.G.N * r.G.N * r.G.N * physics.NQ
	nb := len(r.G.Blocks)
	r.reg = make([][]float32, nb)
	r.rhs = make([][]float32, nb)
	for i := range r.reg {
		r.reg[i] = make([]float32, per)
		r.rhs[i] = make([]float32, per)
	}
	r.u0 = nil
	if r.Cfg.TimeStepper == "ssprk3" {
		r.u0 = make([][]float32, nb)
		for i := range r.u0 {
			r.u0[i] = make([]float32, per)
		}
	}
}

// buildTopology derives, once per layout, everything the exchange and the
// pipelined stages replay every step: the neighbor/tag link table, the
// per-block start counts and in-rank lab dependencies, the halo/interior
// block split, and the reusable pack/request buffers. It is recomputed
// only when the layout changes (a migration).
func (r *Rank) buildTopology() {
	g, lay := r.G, r.Layout
	nb := len(g.Blocks)
	d := &stageDeps{
		start:   make([]int32, nb),
		labDeps: make([][]int32, nb),
	}
	ord := make(map[[3]int]int32, nb)
	for i, b := range g.Blocks {
		ord[[3]int{b.X, b.Y, b.Z}] = int32(i)
	}
	r.links = r.links[:0]
	for i, b := range g.Blocks {
		c := [3]int{b.X, b.Y, b.Z}
		for f := grid.XLo; f <= grid.ZHi; f++ {
			nc, ok := lay.Neighbor(c, f)
			if !ok {
				// Physical boundary: absorbing/reflecting ghosts mirror
				// cells of this same block, adding no dependency.
				continue
			}
			if nc == c {
				// One-block periodic axis: the wrap reads this block's own
				// data directly in the lab.
				continue
			}
			if j, owned := ord[nc]; owned {
				// Locally owned neighbor: the lab copies its data directly.
				d.labDeps[i] = append(d.labDeps[i], j)
				continue
			}
			// Remote neighbor: one halo link gates this block's start.
			d.start[i]++
			r.links = append(r.links, Link{
				Block: i,
				Face:  f,
				Peer:  lay.Owner(nc),
				MyID:  lay.LinearID(c),
				NbID:  lay.LinearID(nc),
			})
		}
	}
	r.deps = d
	r.linkRelease = make([][]int32, len(r.links))
	for i, lk := range r.links {
		r.linkRelease[i] = []int32{int32(lk.Block)}
	}
	r.recvs = make([]*mpi.Request, len(r.links))
	r.packBufs = make([][3][]float32, len(r.links))

	r.interior, r.haloBlocks = nil, nil
	r.interiorRHS, r.haloRHS = nil, nil
	for i, b := range g.Blocks {
		if d.start[i] > 0 {
			r.haloBlocks = append(r.haloBlocks, b)
			r.haloRHS = append(r.haloRHS, r.rhs[i])
		} else {
			r.interior = append(r.interior, b)
			r.interiorRHS = append(r.interiorRHS, r.rhs[i])
		}
	}
}

// Links returns a copy of the precomputed neighbor/tag table: one entry per
// (owned block, face) pair whose neighbor lives on another rank.
func (r *Rank) Links() []Link {
	return append([]Link(nil), r.links...)
}

// Initialize fills the rank subdomain from a global primitive field.
func (r *Rank) Initialize(f func(x, y, z float64) physics.Prim) {
	g := r.G
	n := g.N
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
}

// opposite returns the matching face on the neighboring block.
func opposite(f grid.Face) grid.Face { return f ^ 1 }

// ExchangeGhosts posts the ghost exchange for one RK stage: returns the
// receive requests, one per link; the caller computes interior blocks, then
// calls InstallHalos with the requests.
//
// "Every rank sends 6 messages to its adjacent neighbors ... while waiting
// for the messages, the rank dispatches the interior blocks to the node
// layer" (§6). Under an SFC layout a block's six neighbors may live on any
// rank, so messages are tagged per block (the receiver's canonical block
// id plus the receiving face) rather than per rank face.
func (r *Rank) ExchangeGhosts(stage int) []*mpi.Request {
	sp := r.tr.StartSpan("ghost_exchange", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	defer func() { r.ghostNS += int64(time.Since(t0)) }()
	r.Comm.BeginTagEpoch() // each halo cycle is one tag epoch for the reuse assertion
	r.G.ClearHalos()
	for i, lk := range r.links {
		b := r.G.Blocks[lk.Block]
		r.recvs[i] = r.Comm.Irecv(lk.Peer, mpi.TagGhostBlock(lk.MyID, int(lk.Face), stage))
		// Reuse the per-(link, stage) payload buffer; see packBufs for why
		// the receiver is guaranteed done with the previous round's slab.
		payload := b.PackFace(lk.Face, r.packBufs[i][stage][:0])
		r.packBufs[i][stage] = payload
		// The neighbor installs this as its opposite-face halo; tag with
		// the receiver's block id and face. PackFace emits depth d=0 as the
		// layer closest to the shared face, exactly the d=0 "adjacent to
		// the block" layer SetHalo expects, so the payload installs as is.
		r.Comm.Isend(lk.Peer, mpi.TagGhostBlock(lk.NbID, int(opposite(lk.Face)), stage), payload)
	}
	return r.recvs
}

// InstallHalos waits for the ghost messages and installs them on their
// blocks.
func (r *Rank) InstallHalos(recvs []*mpi.Request) {
	sp := r.tr.StartSpan("halo_wait", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	defer func() { r.waitNS += int64(time.Since(t0)) }()
	for i, rq := range recvs {
		lk := r.links[i]
		r.G.Blocks[lk.Block].SetHalo(lk.Face, rq.Wait())
	}
}

// MaxDT computes the global CFL time step (the DT kernel + its global
// scalar reduction).
func (r *Rank) MaxDT() float64 {
	sp := r.tr.StartSpan("DT", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	local := r.Engine.MaxCharVel()
	global := r.Comm.Allreduce(local, mpi.MaxOp)
	cells := int64(r.G.Cells())
	r.Mon.Kernel("DT").RecordSince(t0, cells*core.SOSFlopsPerCell, cells*core.SOSBytesPerCell)
	if global <= 0 {
		return 0
	}
	return r.Cfg.CFL * r.G.H / global
}

// RKStep advances one full Runge-Kutta step of size dt: three stages of
// ghost exchange, RHS evaluation (interior overlapped with communication)
// and UP update.
func (r *Rank) RKStep(dt float64) {
	if r.Cfg.Pipeline && r.u0 == nil {
		r.rkStepPipelined(dt)
		return
	}
	cells := int64(r.G.Cells())
	values := cells * physics.NQ
	ssp := r.u0 != nil
	if ssp {
		for i, b := range r.G.Blocks {
			copy(r.u0[i], b.Data)
		}
	}
	for s := 0; s < 3; s++ {
		recvs := r.ExchangeGhosts(s)
		t0 := time.Now()
		rhsSpan := r.tr.StartSpan("RHS", r.rankID, 0)
		r.Engine.ComputeRHS(r.interior, r.interiorRHS)
		r.InstallHalos(recvs)
		r.Engine.ComputeRHS(r.haloBlocks, r.haloRHS)
		rhsSpan.End()
		r.Mon.Kernel("RHS").RecordSince(t0,
			cells*core.RHSFlopsPerCell(r.G.N), cells*core.RHSBytesPerCell(r.G.N))

		t0 = time.Now()
		upSpan := r.tr.StartSpan("UP", r.rankID, 0)
		if ssp {
			for i, b := range r.G.Blocks {
				core.UpdateSSP(b.Data, r.u0[i], r.rhs[i], s, dt)
			}
		} else {
			r.Engine.Update(r.G.Blocks, r.reg, r.rhs, core.RK3A[s], core.RK3B[s], dt)
		}
		upSpan.End()
		r.Mon.Kernel("UP").RecordSince(t0,
			values*core.UpdateFlopsPerValue, values*core.UpdateBytesPerValue)
	}
	r.Step++
	r.Time += dt
}

// rkStepPipelined advances one lsrk3 step with the dependency-driven
// execution model: each stage submits every block as one fused RHS+UP task
// to the persistent pool. Interior blocks (StartDeps zero) start
// immediately and overlap the halo exchange; each arriving link releases
// exactly the block whose lab reads it. The fused tasks round the RHS
// through float32 and apply the identical update arithmetic, so the result
// is bitwise equal to the staged path regardless of execution order.
func (r *Rank) rkStepPipelined(dt float64) {
	cells := int64(r.G.Cells())
	for s := 0; s < 3; s++ {
		recvs := r.ExchangeGhosts(s)
		t0 := time.Now()
		stageSpan := r.tr.StartSpan("RHSUP", r.rankID, 0)
		run := r.Engine.BeginFused("RHSUP.worker", &node.FusedStage{
			Blocks: r.G.Blocks,
			RHS:    r.rhs,
			Reg:    r.reg,
			A:      core.RK3A[s], B: core.RK3B[s], Dt: dt,
			StartDeps: r.deps.start,
			LabDeps:   r.deps.labDeps,
		})
		for i, rq := range recvs {
			lk := r.links[i]
			sp := r.tr.StartSpan("halo_install", r.rankID, 0)
			tf := time.Now()
			r.G.Blocks[lk.Block].SetHalo(lk.Face, rq.Wait())
			run.Release(r.linkRelease[i])
			r.waitNS += int64(time.Since(tf))
			sp.End()
		}
		run.Wait()
		stageSpan.End()
		r.Mon.Kernel("RHSUP").RecordSince(t0,
			cells*core.FusedStageFlopsPerCell(r.G.N), cells*core.FusedStageBytesPerCell(r.G.N))
	}
	r.Step++
	r.Time += dt
}

// CommPhases returns the cumulative communication-phase durations: ghost is
// the pack/post side of the exchanges, wait the time blocked on neighbor
// messages. Callers diff successive values for per-step attribution.
func (r *Rank) CommPhases() (ghost, wait time.Duration) {
	return time.Duration(r.ghostNS), time.Duration(r.waitNS)
}

// Advance runs one complete simulation step (DT + RK3) and returns dt.
func (r *Rank) Advance() float64 {
	dt := r.MaxDT()
	r.RKStep(dt)
	return dt
}

// DumpTarget selects where one compressed snapshot goes: a collective
// shared file (Path), a streamed frame over the TagDump channel to the
// rank-0 sink (Stream, with Sink receiving the assembled file image there),
// or both from a single compression pass.
type DumpTarget struct {
	Path   string
	Stream bool
	// Sink receives the assembled frame on rank 0; nil streams and drops
	// (the network work stays identical on every rank).
	Sink dump.FrameSink
}

// Dump writes one quantity's compressed snapshot collectively. The header
// carries each rank's canonical block-id table so readers can reassemble
// the global field under any layout.
func (r *Rank) Dump(path string, q compress.Quantity, eps float64, encoder string) (compress.Stats, error) {
	stats, _, err := r.DumpTo(DumpTarget{Path: path}, q, eps, encoder)
	return stats, err
}

// DumpTo compresses one quantity once — the ENC stage fans out per block
// across the engine's persistent worker pool — and delivers the result to
// the selected targets. It returns the compression stats and the number of
// frame bytes this rank moved over the TagDump channel (0 when not
// streaming).
func (r *Rank) DumpTo(t DumpTarget, q compress.Quantity, eps float64, encoder string) (compress.Stats, int64, error) {
	sp := r.tr.StartSpan("dump", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	c, stats, err := compress.Compress(r.G, q, compress.Options{
		Epsilon: eps, Encoder: encoder, Workers: r.Engine.Workers(),
		Parallel: r.Engine.Parallel,
		Tracer:   r.tr, Rank: r.rankID,
	})
	if err != nil {
		return stats, 0, err
	}
	var dec, enc time.Duration
	for i := range stats.DecTimes {
		dec += stats.DecTimes[i]
		enc += stats.EncTimes[i]
	}
	r.Mon.Kernel("FWT").Record(perf.Sample{Duration: dec, FLOPs: 0, Bytes: stats.RawBytes})
	r.Mon.Kernel("ENC").Record(perf.Sample{Duration: enc, Bytes: stats.Encoded})
	tIO := time.Now()
	hdr := dump.Header{
		Quantity:  q.String(),
		Encoder:   encoder,
		Epsilon:   eps,
		BlockSize: r.G.N,
		RankDims:  r.Cfg.RankDims,
		BlockDims: r.Cfg.BlockDims,
		Layout:    r.Layout.Name,
		Step:      r.Step,
		Time:      r.Time,
	}
	ids := make([]int64, len(r.G.Blocks))
	for i, b := range r.G.Blocks {
		ids[i] = r.Layout.LinearID([3]int{b.X, b.Y, b.Z})
	}
	if t.Path != "" {
		if _, err := dump.WriteCollective(r.Comm, t.Path, hdr, c, ids); err != nil {
			return stats, 0, err
		}
	}
	var streamed int64
	if t.Stream {
		seq := r.dumpSeq
		r.dumpSeq++
		streamed, err = dump.StreamCollective(r.Comm, seq, hdr, c, ids, t.Sink)
		if err != nil {
			return stats, 0, err
		}
	}
	r.Mon.Kernel("IO").RecordSince(tIO, 0, stats.Encoded)
	r.Mon.Kernel("IO_WAVELET").RecordSince(t0, 0, stats.RawBytes)
	return stats, streamed, nil
}

// Diagnostics holds the global flow statistics of Figure 5.
type Diagnostics struct {
	Time          float64
	Step          int
	MaxPressure   float64 // maximum pressure in the flow field
	WallPressure  float64 // maximum pressure on the solid wall (if any)
	KineticEnergy float64
	VaporVolume   float64
	EquivRadius   float64
}

// Diagnose computes the global diagnostics via reductions. The kinetic
// energy and vapor volume integrals fold per-block partial sums in
// canonical block order (see foldBlockSums), so the result is bitwise
// identical across layouts, rank counts and migrations.
func (r *Rank) Diagnose(wall grid.Face, hasWall bool) Diagnostics {
	sp := r.tr.StartSpan("diagnose", r.rankID, 0)
	defer sp.End()
	g := r.G
	n := g.N
	h3 := g.H * g.H * g.H
	gV, gL := physics.Vapor.G(), physics.Liquid.G()
	var maxP, wallP float64
	sums := r.foldBlockSums(2, func(b *grid.Block, out []float64) {
		var ke, vap float64
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					cons := physics.Cons{
						R: float64(c[physics.QR]), RU: float64(c[physics.QU]),
						RV: float64(c[physics.QV]), RW: float64(c[physics.QW]),
						E: float64(c[physics.QE]), G: float64(c[physics.QG]), Pi: float64(c[physics.QP]),
					}
					kin := cons.KineticEnergy()
					p := physics.Pressure(cons.E, kin, cons.G, cons.Pi)
					if p > maxP {
						maxP = p
					}
					ke += kin * h3
					// Vapor volume fraction from the mixture Γ.
					alpha := (cons.G - gL) / (gV - gL)
					if alpha > 1 {
						alpha = 1
					}
					if alpha < 0 {
						alpha = 0
					}
					vap += alpha * h3
					if hasWall && r.onWall(b, wall, ix, iy, iz) && p > wallP {
						wallP = p
					}
				}
			}
		}
		out[0], out[1] = ke, vap
	})
	d := Diagnostics{Time: r.Time, Step: r.Step}
	d.MaxPressure = r.Comm.Allreduce(maxP, mpi.MaxOp)
	d.WallPressure = r.Comm.Allreduce(wallP, mpi.MaxOp)
	d.KineticEnergy = sums[0]
	d.VaporVolume = sums[1]
	d.EquivRadius = equivRadius(d.VaporVolume)
	return d
}

// equivRadius is the cloud-equivalent radius (3V/4π)^(1/3) of Figure 5.
func equivRadius(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Cbrt(3 * v / (4 * math.Pi))
}

// onWall reports whether cell (ix,iy,iz) of block b lies in the first layer
// adjacent to the global wall face.
func (r *Rank) onWall(b *grid.Block, wall grid.Face, ix, iy, iz int) bool {
	gc := [3]int{b.X*r.G.N + ix, b.Y*r.G.N + iy, b.Z*r.G.N + iz}[wall.Axis()]
	if wall.IsHigh() {
		limit := [3]int{r.G.CellsX(), r.G.CellsY(), r.G.CellsZ()}[wall.Axis()]
		return gc == limit-1
	}
	return gc == 0
}

// ComputeRHSOnly performs one ghost exchange plus a full RHS evaluation
// without the update — the benchmark unit for the node-to-cluster
// comparison (Table 6). All ranks must call it the same number of times.
func (r *Rank) ComputeRHSOnly() {
	recvs := r.ExchangeGhosts(0)
	r.Engine.ComputeRHS(r.interior, r.interiorRHS)
	r.InstallHalos(recvs)
	r.Engine.ComputeRHS(r.haloBlocks, r.haloRHS)
	// Every call reuses the stage-0 pack buffers; unlike RKStep there are no
	// later-stage messages to order successive calls, so align them here.
	r.Comm.Barrier()
}

// SaveCheckpoint writes the full conserved state collectively (lossless;
// see internal/checkpoint). All ranks must call it.
func (r *Rank) SaveCheckpoint(path string) error {
	sp := r.tr.StartSpan("checkpoint", r.rankID, 0)
	defer sp.End()
	return checkpoint.Write(r.Comm, path, r.G, r.Cfg.RankDims, r.Step, r.Time)
}

// RestoreCheckpoint replaces the rank state with the checkpoint contents.
// The checkpoint's block size and global geometry must match; the layout
// and rank count may differ from the writing run — each rank pulls exactly
// the blocks it owns out of the file (see checkpoint.Restore).
func (r *Rank) RestoreCheckpoint(path string) error {
	step, simTime, err := checkpoint.Restore(path, r.Comm.Rank(), r.G)
	if err != nil {
		return err
	}
	r.Step, r.Time = step, simTime
	return nil
}
