// Package cluster implements the paper's cluster layer (§6): the domain is
// decomposed across ranks in a cartesian topology with a constant subdomain
// size; non-blocking point-to-point messages exchange ghost information for
// the halo blocks while the interior blocks are dispatched to the node
// layer, hiding the communication time behind computation.
package cluster

import (
	"math"
	"time"

	"cubism/internal/checkpoint"
	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/node"
	"cubism/internal/perf"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
)

// Config describes one production-style run.
type Config struct {
	// RankDims is the cartesian rank grid (product must equal world size).
	RankDims [3]int
	// BlockDims is the number of blocks per rank per dimension.
	BlockDims [3]int
	// BlockSize is the block edge in cells (paper production value: 32).
	BlockSize int
	// Extent is the physical edge length of one cell times global cells in
	// x; H is derived from it.
	Extent float64
	// BC are the global physical boundary conditions.
	BC grid.BC
	// Workers per rank (0: NumCPU).
	Workers int
	// Vector selects the QPX kernel variants.
	Vector bool
	// CFL is the time step safety factor (paper: 0.3).
	CFL float64
	// TimeStepper selects the Runge-Kutta formulation: "lsrk3" (default,
	// the paper's low-storage 2N scheme) or "ssprk3" (classic three-register
	// Shu-Osher scheme, the memory-footprint ablation).
	TimeStepper string
	// Pipeline selects the dependency-driven execution model for lsrk3
	// steps: per-block fused RHS+UP tasks on the persistent worker pool,
	// with halo blocks released per installed face. False (the zero value)
	// keeps the bulk-synchronous staged path, the ablation baseline.
	// ssprk3 always runs staged. Both paths are bitwise identical.
	Pipeline bool
	// Tracer (optional) records solver-phase spans for this rank; nil
	// disables tracing at the cost of a pointer check per phase.
	Tracer *telemetry.Tracer
	// Init fills the initial condition from global physical coordinates.
	Init func(x, y, z float64) physics.Prim
}

// Rank is the per-rank simulation state.
type Rank struct {
	Cfg    Config
	Cart   *mpi.Cart
	G      *grid.Grid
	Engine *node.Engine
	Mon    *perf.Monitor

	Step int
	Time float64

	tr     *telemetry.Tracer
	rankID int

	// Cumulative communication-phase time, nanoseconds: ghostNS covers the
	// pack/post side of the exchange, waitNS the time blocked on neighbor
	// messages (InstallHalos or the pipelined per-face installs). The
	// observatory diffs these per step for the Table-4 phase rows.
	ghostNS int64
	waitNS  int64

	reg                  [][]float32 // low-storage Runge-Kutta registers, one per block
	rhs                  [][]float32 // RHS evaluation buffers, one per block
	u0                   [][]float32 // step-initial copies, allocated only for ssprk3
	interior, haloBlocks []*grid.Block
	interiorRHS, haloRHS [][]float32

	deps *stageDeps
	// packBufs reuses the PackFace payload buffers per face and RK stage.
	// One buffer per (face, stage) is safe: the receiver has finished
	// reading the stage-s slab of step k before this rank can reach stage
	// s of step k+1 (it cannot complete its own stages s+1 and s+2 without
	// this rank's later-stage messages, and each of those stages starts by
	// clearing the previously installed halos).
	packBufs [6][3][]float32
}

// stageDeps is the precomputed task-dependency structure of one fused
// RHS+UP stage (identical for all stages and steps).
type stageDeps struct {
	// start[i] counts the inter-rank halo faces block i's lab reads; the
	// task may start only after those faces are installed.
	start []int32
	// faceBlocks[f] lists the block ordinals gated on halo face f.
	faceBlocks [6][]int32
	// labDeps[i] lists the ordinals of the in-rank blocks whose data block
	// i's lab assembly reads (face adjacency, which is symmetric — the
	// same list enumerates the readers of block i).
	labDeps [][]int32
}

// NewRank builds the rank-local grid and engine for comm.
func NewRank(comm *mpi.Comm, cfg Config) *Rank {
	cart := mpi.NewCart(comm, cfg.RankDims, [3]bool{
		cfg.BC[grid.XLo] == grid.Periodic,
		cfg.BC[grid.YLo] == grid.Periodic,
		cfg.BC[grid.ZLo] == grid.Periodic,
	})
	n := cfg.BlockSize
	globalCellsX := cfg.RankDims[0] * cfg.BlockDims[0] * n
	h := cfg.Extent / float64(globalCellsX)
	desc := grid.Desc{
		N:   n,
		NBX: cfg.BlockDims[0], NBY: cfg.BlockDims[1], NBZ: cfg.BlockDims[2],
		H: h,
		Origin: [3]float64{
			float64(cart.Coords[0]*cfg.BlockDims[0]*n) * h,
			float64(cart.Coords[1]*cfg.BlockDims[1]*n) * h,
			float64(cart.Coords[2]*cfg.BlockDims[2]*n) * h,
		},
	}
	g := grid.New(desc)
	r := &Rank{
		Cfg:    cfg,
		Cart:   cart,
		G:      g,
		Engine: node.New(g, rankBC(cart, cfg.BC), cfg.Workers, cfg.Vector),
		Mon:    perf.NewMonitor(),
		tr:     cfg.Tracer,
		rankID: comm.Rank(),
	}
	r.Engine.SetTrace(cfg.Tracer, r.rankID)
	per := n * n * n * physics.NQ
	r.reg = make([][]float32, len(g.Blocks))
	r.rhs = make([][]float32, len(g.Blocks))
	for i := range r.reg {
		r.reg[i] = make([]float32, per)
		r.rhs[i] = make([]float32, per)
	}
	if cfg.TimeStepper == "ssprk3" {
		r.u0 = make([][]float32, len(g.Blocks))
		for i := range r.u0 {
			r.u0[i] = make([]float32, per)
		}
	}
	r.splitHaloInterior()
	r.buildStageDeps()
	if cfg.Init != nil {
		r.Initialize(cfg.Init)
	}
	return r
}

// Close retires the rank's engine pool workers. Optional — unclosed
// engines are reclaimed by a finalizer — but long-lived processes that
// build many ranks should close them promptly.
func (r *Rank) Close() { r.Engine.Close() }

// rankBC masks the physical BC to the faces that are actual domain
// boundaries of this rank. Faces with a neighboring rank receive their
// ghost data from the halo exchange (installed halos win in the grid's
// ghost resolution); masking them to Absorbing guarantees a missing halo
// can never be misread as a wall mirror or a rank-local periodic wrap, and
// it lets the stage dependency builder assume rank faces carry no
// grid-level BC coupling.
func rankBC(cart *mpi.Cart, bc grid.BC) grid.BC {
	out := bc
	for f := grid.XLo; f <= grid.ZHi; f++ {
		dir := -1
		if f.IsHigh() {
			dir = 1
		}
		if cart.Neighbor(f.Axis(), dir) >= 0 {
			out[f] = grid.Absorbing
		}
	}
	return out
}

// buildStageDeps derives, once, the per-block readiness structure the
// pipelined stages replay: which halo faces gate a block's start and which
// in-rank neighbors its lab assembly reads.
func (r *Rank) buildStageDeps() {
	g := r.G
	d := &stageDeps{
		start:   make([]int32, len(g.Blocks)),
		labDeps: make([][]int32, len(g.Blocks)),
	}
	ord := make(map[*grid.Block]int32, len(g.Blocks))
	for i, b := range g.Blocks {
		ord[b] = int32(i)
	}
	lim := [3]int{g.NBX, g.NBY, g.NBZ}
	for i, b := range g.Blocks {
		for f := grid.XLo; f <= grid.ZHi; f++ {
			a := f.Axis()
			dir := -1
			if f.IsHigh() {
				dir = 1
			}
			nc := [3]int{b.X, b.Y, b.Z}
			nc[a] += dir
			if nc[a] >= 0 && nc[a] < lim[a] {
				// In-rank neighbor: the lab copies its data directly.
				d.labDeps[i] = append(d.labDeps[i], ord[g.BlockAt(nc[0], nc[1], nc[2])])
				continue
			}
			if r.Cart.Neighbor(a, dir) >= 0 {
				// Rank boundary: the lab reads the halo slab of face f.
				d.start[i]++
				d.faceBlocks[f] = append(d.faceBlocks[f], int32(i))
			}
			// Otherwise a physical boundary: absorbing/reflecting ghosts
			// mirror cells of this same block, adding no dependency (and
			// rankBC guarantees rank faces never fall through to a
			// grid-level periodic wrap).
		}
	}
	r.deps = d
}

// splitHaloInterior partitions the blocks into those whose ghosts depend on
// a neighboring rank (halo) and the rest (interior), the overlap unit of
// the paper's communication scheme.
func (r *Rank) splitHaloInterior() {
	touchesNeighbor := func(b *grid.Block) bool {
		for f := grid.XLo; f <= grid.ZHi; f++ {
			dir := -1
			if f.IsHigh() {
				dir = 1
			}
			if r.Cart.Neighbor(f.Axis(), dir) < 0 {
				continue // physical boundary, handled by BC
			}
			at := [3]int{b.X, b.Y, b.Z}[f.Axis()]
			limit := 0
			if f.IsHigh() {
				limit = [3]int{r.G.NBX - 1, r.G.NBY - 1, r.G.NBZ - 1}[f.Axis()]
			}
			if at == limit {
				return true
			}
		}
		return false
	}
	for i, b := range r.G.Blocks {
		if touchesNeighbor(b) {
			r.haloBlocks = append(r.haloBlocks, b)
			r.haloRHS = append(r.haloRHS, r.rhs[i])
		} else {
			r.interior = append(r.interior, b)
			r.interiorRHS = append(r.interiorRHS, r.rhs[i])
		}
	}
}

// Initialize fills the rank subdomain from a global primitive field.
func (r *Rank) Initialize(f func(x, y, z float64) physics.Prim) {
	g := r.G
	n := g.N
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
}

// ghost message tags: one per face, offset by the RK stage so stages never
// cross-match, in the mpi ghost tag namespace so they cannot collide with
// collectives or dump streams.
func faceTag(f grid.Face, stage int) int { return mpi.TagGhost(int(f), stage) }

// opposite returns the matching face on the neighboring rank.
func opposite(f grid.Face) grid.Face { return f ^ 1 }

// ExchangeGhosts posts the ghost exchange for one RK stage: returns the
// receive requests; the caller computes interior blocks, then calls
// InstallHalos with the requests.
//
// "Every rank sends 6 messages to its adjacent neighbors ... while waiting
// for the messages, the rank dispatches the interior blocks to the node
// layer" (§6).
func (r *Rank) ExchangeGhosts(stage int) [6]*mpi.Request {
	sp := r.tr.StartSpan("ghost_exchange", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	defer func() { r.ghostNS += int64(time.Since(t0)) }()
	var recvs [6]*mpi.Request
	r.Cart.BeginTagEpoch() // each halo cycle is one tag epoch for the reuse assertion
	r.G.ClearHalos()
	for f := grid.XLo; f <= grid.ZHi; f++ {
		dir := -1
		if f.IsHigh() {
			dir = 1
		}
		nb := r.Cart.Neighbor(f.Axis(), dir)
		if nb < 0 {
			continue
		}
		recvs[f] = r.Cart.Irecv(nb, faceTag(f, stage))
		// Reuse the per-(face, stage) payload buffer; see packBufs for why
		// the receiver is guaranteed done with the previous round's slab.
		payload := r.G.PackFace(f, r.packBufs[f][stage][:0])
		r.packBufs[f][stage] = payload
		// The neighbor installs this as its opposite-face halo; tag with
		// the receiver's face index. PackFace emits depth d=0 as the layer
		// closest to the shared face, exactly the d=0 "adjacent to the
		// domain" layer SetHalo expects, so the payload installs as is.
		r.Cart.Isend(nb, faceTag(opposite(f), stage), payload)
	}
	return recvs
}

// InstallHalos waits for the ghost messages and installs them.
func (r *Rank) InstallHalos(recvs [6]*mpi.Request) {
	sp := r.tr.StartSpan("halo_wait", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	defer func() { r.waitNS += int64(time.Since(t0)) }()
	for f := grid.XLo; f <= grid.ZHi; f++ {
		if recvs[f] == nil {
			continue
		}
		r.G.SetHalo(f, recvs[f].Wait())
	}
}

// MaxDT computes the global CFL time step (the DT kernel + its global
// scalar reduction).
func (r *Rank) MaxDT() float64 {
	sp := r.tr.StartSpan("DT", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	local := r.Engine.MaxCharVel()
	global := r.Cart.Allreduce(local, mpi.MaxOp)
	cells := int64(r.G.Cells())
	r.Mon.Kernel("DT").RecordSince(t0, cells*core.SOSFlopsPerCell, cells*core.SOSBytesPerCell)
	if global <= 0 {
		return 0
	}
	return r.Cfg.CFL * r.G.H / global
}

// RKStep advances one full Runge-Kutta step of size dt: three stages of
// ghost exchange, RHS evaluation (interior overlapped with communication)
// and UP update.
func (r *Rank) RKStep(dt float64) {
	if r.Cfg.Pipeline && r.u0 == nil {
		r.rkStepPipelined(dt)
		return
	}
	cells := int64(r.G.Cells())
	values := cells * physics.NQ
	ssp := r.u0 != nil
	if ssp {
		for i, b := range r.G.Blocks {
			copy(r.u0[i], b.Data)
		}
	}
	for s := 0; s < 3; s++ {
		recvs := r.ExchangeGhosts(s)
		t0 := time.Now()
		rhsSpan := r.tr.StartSpan("RHS", r.rankID, 0)
		r.Engine.ComputeRHS(r.interior, r.interiorRHS)
		r.InstallHalos(recvs)
		r.Engine.ComputeRHS(r.haloBlocks, r.haloRHS)
		rhsSpan.End()
		r.Mon.Kernel("RHS").RecordSince(t0,
			cells*core.RHSFlopsPerCell(r.G.N), cells*core.RHSBytesPerCell(r.G.N))

		t0 = time.Now()
		upSpan := r.tr.StartSpan("UP", r.rankID, 0)
		if ssp {
			for i, b := range r.G.Blocks {
				core.UpdateSSP(b.Data, r.u0[i], r.rhs[i], s, dt)
			}
		} else {
			r.Engine.Update(r.G.Blocks, r.reg, r.rhs, core.RK3A[s], core.RK3B[s], dt)
		}
		upSpan.End()
		r.Mon.Kernel("UP").RecordSince(t0,
			values*core.UpdateFlopsPerValue, values*core.UpdateBytesPerValue)
	}
	r.Step++
	r.Time += dt
}

// faceInstallSpan names the per-face halo installation spans of the
// pipelined step.
var faceInstallSpan = [6]string{
	"halo_install.x-", "halo_install.x+",
	"halo_install.y-", "halo_install.y+",
	"halo_install.z-", "halo_install.z+",
}

// rkStepPipelined advances one lsrk3 step with the dependency-driven
// execution model: each stage submits every block as one fused RHS+UP task
// to the persistent pool. Interior blocks (StartDeps zero) start
// immediately and overlap the halo exchange; each arriving face releases
// exactly the blocks whose labs read it. The fused tasks round the RHS
// through float32 and apply the identical update arithmetic, so the result
// is bitwise equal to the staged path regardless of execution order.
func (r *Rank) rkStepPipelined(dt float64) {
	cells := int64(r.G.Cells())
	for s := 0; s < 3; s++ {
		recvs := r.ExchangeGhosts(s)
		t0 := time.Now()
		stageSpan := r.tr.StartSpan("RHSUP", r.rankID, 0)
		run := r.Engine.BeginFused("RHSUP.worker", &node.FusedStage{
			Blocks: r.G.Blocks,
			RHS:    r.rhs,
			Reg:    r.reg,
			A:      core.RK3A[s], B: core.RK3B[s], Dt: dt,
			StartDeps: r.deps.start,
			LabDeps:   r.deps.labDeps,
		})
		for f := grid.XLo; f <= grid.ZHi; f++ {
			if recvs[f] == nil {
				continue
			}
			sp := r.tr.StartSpan(faceInstallSpan[f], r.rankID, 0)
			tf := time.Now()
			r.G.SetHalo(f, recvs[f].Wait())
			run.Release(r.deps.faceBlocks[f])
			r.waitNS += int64(time.Since(tf))
			sp.End()
		}
		run.Wait()
		stageSpan.End()
		r.Mon.Kernel("RHSUP").RecordSince(t0,
			cells*core.FusedStageFlopsPerCell(r.G.N), cells*core.FusedStageBytesPerCell(r.G.N))
	}
	r.Step++
	r.Time += dt
}

// CommPhases returns the cumulative communication-phase durations: ghost is
// the pack/post side of the exchanges, wait the time blocked on neighbor
// messages. Callers diff successive values for per-step attribution.
func (r *Rank) CommPhases() (ghost, wait time.Duration) {
	return time.Duration(r.ghostNS), time.Duration(r.waitNS)
}

// Advance runs one complete simulation step (DT + RK3) and returns dt.
func (r *Rank) Advance() float64 {
	dt := r.MaxDT()
	r.RKStep(dt)
	return dt
}

// Dump writes one quantity's compressed snapshot collectively.
func (r *Rank) Dump(path string, q compress.Quantity, eps float64, encoder string) (compress.Stats, error) {
	sp := r.tr.StartSpan("dump", r.rankID, 0)
	defer sp.End()
	t0 := time.Now()
	c, stats, err := compress.Compress(r.G, q, compress.Options{
		Epsilon: eps, Encoder: encoder, Workers: r.Engine.Workers(),
		Tracer: r.tr, Rank: r.rankID,
	})
	if err != nil {
		return stats, err
	}
	var dec, enc time.Duration
	for i := range stats.DecTimes {
		dec += stats.DecTimes[i]
		enc += stats.EncTimes[i]
	}
	r.Mon.Kernel("FWT").Record(perf.Sample{Duration: dec, FLOPs: 0, Bytes: stats.RawBytes})
	r.Mon.Kernel("ENC").Record(perf.Sample{Duration: enc, Bytes: stats.Encoded})
	tIO := time.Now()
	hdr := dump.Header{
		Quantity:  q.String(),
		Encoder:   encoder,
		Epsilon:   eps,
		BlockSize: r.G.N,
		RankDims:  r.Cfg.RankDims,
		BlockDims: r.Cfg.BlockDims,
		Step:      r.Step,
		Time:      r.Time,
	}
	if _, err := dump.WriteCollective(r.Cart.Comm, path, hdr, c); err != nil {
		return stats, err
	}
	r.Mon.Kernel("IO").RecordSince(tIO, 0, stats.Encoded)
	r.Mon.Kernel("IO_WAVELET").RecordSince(t0, 0, stats.RawBytes)
	return stats, nil
}

// Diagnostics holds the global flow statistics of Figure 5.
type Diagnostics struct {
	Time          float64
	Step          int
	MaxPressure   float64 // maximum pressure in the flow field
	WallPressure  float64 // maximum pressure on the solid wall (if any)
	KineticEnergy float64
	VaporVolume   float64
	EquivRadius   float64
}

// Diagnose computes the global diagnostics via reductions.
func (r *Rank) Diagnose(wall grid.Face, hasWall bool) Diagnostics {
	sp := r.tr.StartSpan("diagnose", r.rankID, 0)
	defer sp.End()
	g := r.G
	n := g.N
	h3 := g.H * g.H * g.H
	gV, gL := physics.Vapor.G(), physics.Liquid.G()
	var maxP, wallP, ke, vap float64
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					cons := physics.Cons{
						R: float64(c[physics.QR]), RU: float64(c[physics.QU]),
						RV: float64(c[physics.QV]), RW: float64(c[physics.QW]),
						E: float64(c[physics.QE]), G: float64(c[physics.QG]), Pi: float64(c[physics.QP]),
					}
					kin := cons.KineticEnergy()
					p := physics.Pressure(cons.E, kin, cons.G, cons.Pi)
					if p > maxP {
						maxP = p
					}
					ke += kin * h3
					// Vapor volume fraction from the mixture Γ.
					alpha := (cons.G - gL) / (gV - gL)
					if alpha > 1 {
						alpha = 1
					}
					if alpha < 0 {
						alpha = 0
					}
					vap += alpha * h3
					if hasWall && r.onWall(b, wall, ix, iy, iz) && p > wallP {
						wallP = p
					}
				}
			}
		}
	}
	d := Diagnostics{Time: r.Time, Step: r.Step}
	d.MaxPressure = r.Cart.Allreduce(maxP, mpi.MaxOp)
	d.WallPressure = r.Cart.Allreduce(wallP, mpi.MaxOp)
	d.KineticEnergy = r.Cart.Allreduce(ke, mpi.SumOp)
	d.VaporVolume = r.Cart.Allreduce(vap, mpi.SumOp)
	d.EquivRadius = equivRadius(d.VaporVolume)
	return d
}

// equivRadius is the cloud-equivalent radius (3V/4π)^(1/3) of Figure 5.
func equivRadius(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Cbrt(3 * v / (4 * math.Pi))
}

// onWall reports whether rank-local cell (ix,iy,iz) of block b lies in the
// first layer adjacent to the global wall face.
func (r *Rank) onWall(b *grid.Block, wall grid.Face, ix, iy, iz int) bool {
	// The wall exists only on ranks at the corresponding domain boundary.
	dir := -1
	if wall.IsHigh() {
		dir = 1
	}
	if r.Cart.Neighbor(wall.Axis(), dir) >= 0 {
		return false
	}
	gc := [3]int{b.X*r.G.N + ix, b.Y*r.G.N + iy, b.Z*r.G.N + iz}[wall.Axis()]
	if wall.IsHigh() {
		limit := [3]int{r.G.CellsX(), r.G.CellsY(), r.G.CellsZ()}[wall.Axis()]
		return gc == limit-1
	}
	return gc == 0
}

// ComputeRHSOnly performs one ghost exchange plus a full RHS evaluation
// without the update — the benchmark unit for the node-to-cluster
// comparison (Table 6). All ranks must call it the same number of times.
func (r *Rank) ComputeRHSOnly() {
	recvs := r.ExchangeGhosts(0)
	r.Engine.ComputeRHS(r.interior, r.interiorRHS)
	r.InstallHalos(recvs)
	r.Engine.ComputeRHS(r.haloBlocks, r.haloRHS)
	// Every call reuses the stage-0 pack buffers; unlike RKStep there are no
	// later-stage messages to order successive calls, so align them here.
	r.Cart.Barrier()
}

// SaveCheckpoint writes the full conserved state collectively (lossless;
// see internal/checkpoint). All ranks must call it.
func (r *Rank) SaveCheckpoint(path string) error {
	sp := r.tr.StartSpan("checkpoint", r.rankID, 0)
	defer sp.End()
	return checkpoint.Write(r.Cart.Comm, path, r.G, r.Cfg.RankDims, r.Step, r.Time)
}

// RestoreCheckpoint replaces the rank state with the checkpoint contents;
// the configuration must match the one the checkpoint was written with.
func (r *Rank) RestoreCheckpoint(path string) error {
	step, simTime, err := checkpoint.Restore(path, r.Cart.Rank(), r.G)
	if err != nil {
		return err
	}
	r.Step, r.Time = step, simTime
	return nil
}
