package cluster

import (
	"math"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// collectBlockData runs the config for the given number of steps and
// returns every rank's raw float32 block state keyed by (rank, curve index).
func collectBlockData(t *testing.T, cfg Config, steps int) map[[2]int][]float32 {
	t.Helper()
	n := cfg.RankDims[0] * cfg.RankDims[1] * cfg.RankDims[2]
	world := mpi.NewWorld(n)
	type rankData struct {
		rank   int
		blocks [][]float32
	}
	out := make(chan rankData, n)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		for s := 0; s < steps; s++ {
			r.Advance()
		}
		blocks := make([][]float32, len(r.G.Blocks))
		for i, b := range r.G.Blocks {
			blocks[i] = append([]float32(nil), b.Data...)
		}
		out <- rankData{rank: comm.Rank(), blocks: blocks}
	})
	close(out)
	data := make(map[[2]int][]float32)
	for rd := range out {
		for i, blk := range rd.blocks {
			data[[2]int{rd.rank, i}] = blk
		}
	}
	return data
}

// determinismConfig is the shared multi-rank, multi-worker configuration of
// the determinism and pipeline-equivalence tests: uneven worker-to-block
// ratio, periodic exchange on every face, a fully 3D field.
func determinismConfig() Config {
	return Config{
		RankDims:  [3]int{2, 2, 1},
		BlockDims: [3]int{2, 1, 2},
		BlockSize: 8,
		Extent:    1,
		BC:        grid.PeriodicBC(),
		Workers:   3, // deliberately uneven vs block count
		CFL:       0.3,
		Init: func(x, y, z float64) physics.Prim {
			// Fully 3D smooth field so every exchange face carries signal.
			return physics.Prim{
				Rho: 1 + 0.3*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y),
				U:   0.2 * math.Sin(2*math.Pi*y),
				V:   -0.1 * math.Cos(2*math.Pi*z),
				W:   0.05 * math.Sin(2*math.Pi*x),
				P:   1 + 0.2*math.Cos(2*math.Pi*z),
				G:   2.5 + 0.5*boxcar(x),
				Pi:  0.25 * boxcar(x),
			}
		},
	}
}

// TestMultiRankDeterminism: two identical multi-rank, multi-worker runs must
// produce byte-identical block data — the halo exchange, worker scheduling
// and reduction order must not leak nondeterminism into the state, in
// either execution model. Run under -race via `make race`.
func TestMultiRankDeterminism(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "Staged"
		if pipeline {
			name = "Pipeline"
		}
		t.Run(name, func(t *testing.T) {
			cfg := determinismConfig()
			cfg.Pipeline = pipeline
			const steps = 5
			a := collectBlockData(t, cfg, steps)
			b := collectBlockData(t, cfg, steps)
			compareBlockData(t, a, b, "runs are not bitwise deterministic")
		})
	}
}

// compareBlockData asserts two collected states are bitwise identical
// (NaNs of any payload compare equal).
func compareBlockData(t *testing.T, a, b map[[2]int][]float32, msg string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("block counts differ: %d vs %d", len(a), len(b))
	}
	for key, blkA := range a {
		blkB, ok := b[key]
		if !ok {
			t.Fatalf("rank %d block %d missing in second run", key[0], key[1])
		}
		for i := range blkA {
			if blkA[i] != blkB[i] && !(isNaN32(blkA[i]) && isNaN32(blkB[i])) {
				t.Fatalf("rank %d block %d word %d: %v != %v — %s",
					key[0], key[1], i, blkA[i], blkB[i], msg)
			}
		}
	}
}

func boxcar(x float64) float64 {
	if x >= 0.25 && x < 0.75 {
		return 1
	}
	return 0
}

func isNaN32(v float32) bool { return v != v }
