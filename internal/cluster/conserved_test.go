package cluster

import (
	"math"
	"testing"

	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// serialTotals recomputes the conserved integrals of one rank's grid the
// straightforward way, as an independent reference for ConservedTotals.
func serialTotals(r *Rank) (mass, momX, energy float64) {
	n := r.G.N
	vol := r.G.H * r.G.H * r.G.H
	for _, b := range r.G.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					mass += float64(c[physics.QR]) * vol
					momX += float64(c[physics.QU]) * vol
					energy += float64(c[physics.QE]) * vol
				}
			}
		}
	}
	return
}

func TestConservedTotalsSingleRank(t *testing.T) {
	cfg := sodConfig([3]int{1, 1, 1}, [3]int{4, 2, 2})
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		for s := 0; s < 3; s++ {
			r.Advance()
		}
		got := r.ConservedTotals()
		mass, momX, energy := serialTotals(r)
		if rel := math.Abs(got.Mass-mass) / mass; rel > 1e-13 {
			t.Errorf("mass %v vs serial %v (rel %g)", got.Mass, mass, rel)
		}
		if d := math.Abs(got.MomX - momX); d > 1e-13*got.AbsMomSum {
			t.Errorf("momX %v vs serial %v", got.MomX, momX)
		}
		if rel := math.Abs(got.Energy-energy) / energy; rel > 1e-13 {
			t.Errorf("energy %v vs serial %v (rel %g)", got.Energy, energy, rel)
		}
		if got.GlobalCells != int64(r.G.Cells()) {
			t.Errorf("global cells %d, want %d", got.GlobalCells, r.G.Cells())
		}
		if got.NonFinite != 0 {
			t.Errorf("non-finite cells %d in a healthy run", got.NonFinite)
		}
		// Sod with Γ=2.5, Π=0 everywhere: the advected ranges are points.
		if got.GammaMin != got.GammaMax || math.Abs(got.GammaMin-2.5) > 1e-7 {
			t.Errorf("Γ range [%v,%v], want [2.5,2.5]", got.GammaMin, got.GammaMax)
		}
		if got.PiMin != 0 || got.PiMax != 0 {
			t.Errorf("Π range [%v,%v], want [0,0]", got.PiMin, got.PiMax)
		}
		if got.Step != r.Step || got.Time != r.Time {
			t.Errorf("stamp (%d,%v), want (%d,%v)", got.Step, got.Time, r.Step, r.Time)
		}
	})
}

// TestConservedTotalsMultiRank: the collective totals of a decomposed run
// must match the single-rank totals of the same global problem.
func TestConservedTotalsMultiRank(t *testing.T) {
	steps := 3
	totals := func(rankDims, blockDims [3]int) Totals {
		cfg := sodConfig(rankDims, blockDims)
		world := mpi.NewWorld(rankDims[0] * rankDims[1] * rankDims[2])
		out := make(chan Totals, 1)
		world.Run(func(comm *mpi.Comm) {
			r := NewRank(comm, cfg)
			for s := 0; s < steps; s++ {
				r.Advance()
			}
			tot := r.ConservedTotals() // collective: all ranks call
			if comm.Rank() == 0 {
				out <- tot
			}
		})
		return <-out
	}
	single := totals([3]int{1, 1, 1}, [3]int{4, 2, 2})
	multi := totals([3]int{2, 2, 2}, [3]int{2, 1, 1})
	if single.GlobalCells != multi.GlobalCells {
		t.Fatalf("cells %d vs %d", single.GlobalCells, multi.GlobalCells)
	}
	if rel := math.Abs(single.Mass-multi.Mass) / single.Mass; rel > 1e-12 {
		t.Errorf("mass differs across decompositions by %g", rel)
	}
	if rel := math.Abs(single.Energy-multi.Energy) / single.Energy; rel > 1e-12 {
		t.Errorf("energy differs across decompositions by %g", rel)
	}
	if single.GammaMin != multi.GammaMin || single.GammaMax != multi.GammaMax {
		t.Errorf("Γ range (%v,%v) vs (%v,%v)",
			single.GammaMin, single.GammaMax, multi.GammaMin, multi.GammaMax)
	}
}
