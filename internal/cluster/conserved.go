package cluster

import (
	"encoding/binary"
	"math"
	"sort"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// Totals holds globally reduced conserved-quantity integrals plus the
// bounds of the advected material functions — the observables the
// verification subsystem audits per step. Integrals are cell sums scaled by
// the cell volume h³, accumulated with compensated summation so the audit
// resolves drifts far below float32 resolution of the state itself.
type Totals struct {
	Time float64
	Step int

	Mass        float64 // ∫ρ dV
	MomX        float64 // ∫ρu dV
	MomY        float64 // ∫ρv dV
	MomZ        float64 // ∫ρw dV
	Energy      float64 // ∫E dV
	GammaMin    float64 // min Γ over all cells
	GammaMax    float64 // max Γ
	PiMin       float64 // min Π
	PiMax       float64 // max Π
	AbsMomSum   float64 // ∫(|ρu|+|ρv|+|ρw|) dV, the momentum-drift scale
	NonFinite   int     // cells holding NaN or Inf in any quantity
	GlobalCells int64   // global cell count behind the integrals
}

// foldBlockSums computes k per-block partial sums via fn on every locally
// owned block, then folds all partials globally in canonical block order:
// each partial travels to rank 0 labeled with its block's canonical linear
// id, rank 0 sorts by id and Kahan-folds each component, and the k global
// sums are broadcast back. Because the fold order is a property of the
// global block box — not of the layout, the rank count, or any migration
// history — the result is bitwise identical across all of them. Collective.
func (r *Rank) foldBlockSums(k int, fn func(b *grid.Block, out []float64)) []float64 {
	const rec = 8 // bytes per encoded value (int64 id or float64 partial)
	stride := (1 + k) * rec
	payload := make([]byte, len(r.G.Blocks)*stride)
	scratch := make([]float64, k)
	for i, b := range r.G.Blocks {
		for j := range scratch {
			scratch[j] = 0
		}
		fn(b, scratch)
		off := i * stride
		binary.LittleEndian.PutUint64(payload[off:], uint64(r.Layout.LinearID([3]int{b.X, b.Y, b.Z})))
		for j, v := range scratch {
			binary.LittleEndian.PutUint64(payload[off+(1+j)*rec:], math.Float64bits(v))
		}
	}
	parts := r.Comm.GatherBytesRoot(payload)
	var result []byte
	if r.Comm.Rank() == 0 {
		type entry struct {
			id       int64
			partials []float64
		}
		var all []entry
		for _, p := range parts {
			for off := 0; off < len(p); off += stride {
				e := entry{
					id:       int64(binary.LittleEndian.Uint64(p[off:])),
					partials: make([]float64, k),
				}
				for j := 0; j < k; j++ {
					e.partials[j] = math.Float64frombits(binary.LittleEndian.Uint64(p[off+(1+j)*rec:]))
				}
				all = append(all, e)
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
		result = make([]byte, k*rec)
		for j := 0; j < k; j++ {
			var s core.KahanSum
			for _, e := range all {
				s.Add(e.partials[j])
			}
			binary.LittleEndian.PutUint64(result[j*rec:], math.Float64bits(s.Value()))
		}
	}
	result = r.Comm.BcastBytes(result)
	out := make([]float64, k)
	for j := range out {
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(result[j*rec:]))
	}
	return out
}

// ConservedTotals integrates the conserved quantities over the global
// domain. The five integrals fold per-block Kahan partials in canonical
// block order (foldBlockSums), so their bit patterns are invariant under
// the layout, the rank count and any migration history — this is what lets
// the checksum files of a cartesian run be compared bitwise against a
// rebalanced SFC run. All ranks must call it collectively; every rank
// receives the global result.
func (r *Rank) ConservedTotals() Totals {
	g := r.G
	n := g.N
	h3 := g.H * g.H * g.H
	gMin, gMax := math.Inf(1), math.Inf(-1)
	piMin, piMax := math.Inf(1), math.Inf(-1)
	nonFinite := 0
	sums := r.foldBlockSums(6, func(b *grid.Block, out []float64) {
		var mass, mx, my, mz, e, amom core.KahanSum
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					for q := 0; q < physics.NQ; q++ {
						if !finite32(c[q]) {
							nonFinite++
							break
						}
					}
					mass.Add(float64(c[physics.QR]))
					mx.Add(float64(c[physics.QU]))
					my.Add(float64(c[physics.QV]))
					mz.Add(float64(c[physics.QW]))
					e.Add(float64(c[physics.QE]))
					amom.Add(abs64(float64(c[physics.QU])) +
						abs64(float64(c[physics.QV])) + abs64(float64(c[physics.QW])))
					gv, pv := float64(c[physics.QG]), float64(c[physics.QP])
					if gv < gMin {
						gMin = gv
					}
					if gv > gMax {
						gMax = gv
					}
					if pv < piMin {
						piMin = pv
					}
					if pv > piMax {
						piMax = pv
					}
				}
			}
		}
		out[0], out[1], out[2] = mass.Value(), mx.Value(), my.Value()
		out[3], out[4], out[5] = mz.Value(), e.Value(), amom.Value()
	})
	t := Totals{
		Time:        r.Time,
		Step:        r.Step,
		Mass:        sums[0] * h3,
		MomX:        sums[1] * h3,
		MomY:        sums[2] * h3,
		MomZ:        sums[3] * h3,
		Energy:      sums[4] * h3,
		AbsMomSum:   sums[5] * h3,
		GammaMin:    r.Comm.Allreduce(gMin, mpi.MinOp),
		GammaMax:    r.Comm.Allreduce(gMax, mpi.MaxOp),
		PiMin:       r.Comm.Allreduce(piMin, mpi.MinOp),
		PiMax:       r.Comm.Allreduce(piMax, mpi.MaxOp),
		NonFinite:   int(r.Comm.Allreduce(float64(nonFinite), mpi.SumOp)),
		GlobalCells: int64(r.G.Desc.Cells()),
	}
	return t
}

func finite32(v float32) bool {
	f := float64(v)
	return f == f && f < math.Inf(1) && f > math.Inf(-1)
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
