package cluster

import (
	"math"

	"cubism/internal/core"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

// Totals holds globally reduced conserved-quantity integrals plus the
// bounds of the advected material functions — the observables the
// verification subsystem audits per step. Integrals are cell sums scaled by
// the cell volume h³, accumulated with compensated summation so the audit
// resolves drifts far below float32 resolution of the state itself.
type Totals struct {
	Time float64
	Step int

	Mass       float64 // ∫ρ dV
	MomX       float64 // ∫ρu dV
	MomY       float64 // ∫ρv dV
	MomZ       float64 // ∫ρw dV
	Energy     float64 // ∫E dV
	GammaMin   float64 // min Γ over all cells
	GammaMax   float64 // max Γ
	PiMin      float64 // min Π
	PiMax      float64 // max Π
	AbsMomSum  float64 // ∫(|ρu|+|ρv|+|ρw|) dV, the momentum-drift scale
	NonFinite  int     // cells holding NaN or Inf in any quantity
	GlobalCells int64   // global cell count behind the integrals
}

// ConservedTotals integrates the conserved quantities over the rank
// subdomain and reduces them globally. All ranks must call it collectively;
// every rank receives the global result.
func (r *Rank) ConservedTotals() Totals {
	g := r.G
	n := g.N
	h3 := g.H * g.H * g.H
	var mass, mx, my, mz, e, amom core.KahanSum
	gMin, gMax := math.Inf(1), math.Inf(-1)
	piMin, piMax := math.Inf(1), math.Inf(-1)
	nonFinite := 0
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					c := b.At(ix, iy, iz)
					for q := 0; q < physics.NQ; q++ {
						if !finite32(c[q]) {
							nonFinite++
							break
						}
					}
					mass.Add(float64(c[physics.QR]))
					mx.Add(float64(c[physics.QU]))
					my.Add(float64(c[physics.QV]))
					mz.Add(float64(c[physics.QW]))
					e.Add(float64(c[physics.QE]))
					amom.Add(abs64(float64(c[physics.QU])) +
						abs64(float64(c[physics.QV])) + abs64(float64(c[physics.QW])))
					gv, pv := float64(c[physics.QG]), float64(c[physics.QP])
					if gv < gMin {
						gMin = gv
					}
					if gv > gMax {
						gMax = gv
					}
					if pv < piMin {
						piMin = pv
					}
					if pv > piMax {
						piMax = pv
					}
				}
			}
		}
	}
	nRanks := r.Cfg.RankDims[0] * r.Cfg.RankDims[1] * r.Cfg.RankDims[2]
	t := Totals{
		Time:       r.Time,
		Step:       r.Step,
		Mass:       r.Cart.Allreduce(mass.Value()*h3, mpi.SumOp),
		MomX:       r.Cart.Allreduce(mx.Value()*h3, mpi.SumOp),
		MomY:       r.Cart.Allreduce(my.Value()*h3, mpi.SumOp),
		MomZ:       r.Cart.Allreduce(mz.Value()*h3, mpi.SumOp),
		Energy:     r.Cart.Allreduce(e.Value()*h3, mpi.SumOp),
		AbsMomSum:  r.Cart.Allreduce(amom.Value()*h3, mpi.SumOp),
		GammaMin:   r.Cart.Allreduce(gMin, mpi.MinOp),
		GammaMax:   r.Cart.Allreduce(gMax, mpi.MaxOp),
		PiMin:      r.Cart.Allreduce(piMin, mpi.MinOp),
		PiMax:      r.Cart.Allreduce(piMax, mpi.MaxOp),
		NonFinite:  int(r.Cart.Allreduce(float64(nonFinite), mpi.SumOp)),
		GlobalCells: int64(g.Cells()) * int64(nRanks),
	}
	return t
}

func finite32(v float32) bool {
	f := float64(v)
	return f == f && f < math.Inf(1) && f > math.Inf(-1)
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
