package cluster

import (
	"testing"

	"cubism/internal/mpi"
)

// collectByID runs the config for steps steps and returns the final block
// states keyed by canonical linear block id — a layout-independent view of
// the global field. When rebalanceAt > 0, a forced rebalance (cut
// recomputation + block migration) runs after that step; moved receives the
// global ownership-change count of the last rebalance.
func collectByID(t *testing.T, cfg Config, steps, rebalanceAt int) (map[int64][]float32, int) {
	t.Helper()
	n := cfg.RankDims[0] * cfg.RankDims[1] * cfg.RankDims[2]
	world := mpi.NewWorld(n)
	type rankData struct {
		blocks map[int64][]float32
		moved  int
	}
	out := make(chan rankData, n)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		defer r.Close()
		moved := 0
		for s := 0; s < steps; s++ {
			r.Advance()
			if rebalanceAt > 0 && r.Step == rebalanceAt {
				res := r.Rebalance(0, true)
				moved = res.Moved
			}
		}
		blocks := make(map[int64][]float32, len(r.G.Blocks))
		for _, b := range r.G.Blocks {
			id := r.Layout.LinearID([3]int{b.X, b.Y, b.Z})
			blocks[id] = append([]float32(nil), b.Data...)
		}
		out <- rankData{blocks: blocks, moved: moved}
	})
	close(out)
	data := make(map[int64][]float32)
	moved := 0
	for rd := range out {
		for id, blk := range rd.blocks {
			if _, dup := data[id]; dup {
				t.Fatalf("block %d owned by more than one rank", id)
			}
			data[id] = blk
		}
		if rd.moved > moved {
			moved = rd.moved
		}
	}
	return data, moved
}

// compareByID asserts two id-keyed global fields are bitwise identical.
func compareByID(t *testing.T, a, b map[int64][]float32, msg string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: block counts differ: %d vs %d", msg, len(a), len(b))
	}
	for id, blkA := range a {
		blkB, ok := b[id]
		if !ok {
			t.Fatalf("%s: block %d missing", msg, id)
		}
		for i := range blkA {
			if blkA[i] != blkB[i] {
				t.Fatalf("%s: block %d value %d differs: %x vs %x",
					msg, id, i, blkA[i], blkB[i])
			}
		}
	}
}

// TestLayoutBitwiseIdentity: the same global problem advanced under the
// cartesian layout and under every SFC layout must produce bitwise
// identical block states — the decomposition is an implementation detail
// invisible to the physics.
func TestLayoutBitwiseIdentity(t *testing.T) {
	const steps = 5
	base := determinismConfig()
	ref, _ := collectByID(t, base, steps, 0)
	for _, name := range []string{"hilbert", "morton", "rowmajor"} {
		t.Run(name, func(t *testing.T) {
			cfg := determinismConfig()
			cfg.Layout = name
			cfg.Pipeline = true // cross-check the dependency-driven path too
			got, _ := collectByID(t, cfg, steps, 0)
			compareByID(t, ref, got, "layout "+name+" diverges from cartesian")
		})
	}
}

// TestMigrationBitwiseIdentity: a run that starts from skewed curve cuts
// and rebalances mid-run (migrating live blocks across ranks) must continue
// bitwise identically to an undisturbed cartesian run — block migration at
// a step boundary is invisible to the trajectory.
func TestMigrationBitwiseIdentity(t *testing.T) {
	const steps = 6
	base := determinismConfig()
	ref, _ := collectByID(t, base, steps, 0)
	cfg := determinismConfig()
	cfg.Layout = "hilbert"
	// Skew the initial partition (global box 4x2x2 = 16 blocks, 4 ranks).
	cfg.LayoutCuts = []int{0, 7, 10, 13, 16}
	got, moved := collectByID(t, cfg, steps, 3)
	if moved == 0 {
		t.Fatal("forced rebalance moved no blocks; migration path not exercised")
	}
	compareByID(t, ref, got, "migrated run diverges from cartesian baseline")
}

// TestRebalanceCartesianIsNoOp: the degenerate cartesian layout has no
// curve to re-cut; Rebalance must still report the measured imbalance but
// never migrate.
func TestRebalanceCartesianIsNoOp(t *testing.T) {
	cfg := determinismConfig()
	n := cfg.RankDims[0] * cfg.RankDims[1] * cfg.RankDims[2]
	world := mpi.NewWorld(n)
	world.Run(func(comm *mpi.Comm) {
		r := NewRank(comm, cfg)
		defer r.Close()
		r.Advance()
		res := r.Rebalance(0, true)
		if res.Rebalanced || res.Moved != 0 {
			t.Errorf("cartesian rebalance migrated %d blocks", res.Moved)
		}
		if r.Migrations() != 0 {
			t.Errorf("cartesian rank recorded %d migrations", r.Migrations())
		}
	})
}
