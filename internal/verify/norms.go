package verify

import (
	"math"
	"sync"

	"cubism/internal/core"
)

// normAccum accumulates cell-wise errors into L1/L2/L∞ norms. Ranks add
// their local cells concurrently from the sim OnFinish hook, so the
// accumulator is mutex-protected; sums are compensated so the fine-ladder
// norms are not polluted by accumulation rounding.
type normAccum struct {
	mu    sync.Mutex
	sum1  core.KahanSum
	sum2  core.KahanSum
	maxE  float64
	cells int64
}

// addCells folds a batch of absolute errors into the norms.
func (a *normAccum) addCells(errs []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range errs {
		e = math.Abs(e)
		a.sum1.Add(e)
		a.sum2.Add(e * e)
		if e > a.maxE {
			a.maxE = e
		}
		a.cells++
	}
}

// norms returns the cell-averaged L1, L2 and the L∞ norm.
func (a *normAccum) norms() (l1, l2, linf float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cells == 0 {
		return 0, 0, 0
	}
	n := float64(a.cells)
	return a.sum1.Value() / n, math.Sqrt(a.sum2.Value() / n), a.maxE
}

// observedOrders returns the convergence order between successive ladder
// points, p = log(E_coarse/E_fine)/log(h_coarse/h_fine), for the selected
// norm of each pair.
func observedOrders(ladder []LadderPoint, norm func(LadderPoint) float64) []float64 {
	var orders []float64
	for i := 1; i < len(ladder); i++ {
		ec, ef := norm(ladder[i-1]), norm(ladder[i])
		hc, hf := ladder[i-1].H, ladder[i].H
		if ec <= 0 || ef <= 0 || hc <= hf {
			orders = append(orders, math.NaN())
			continue
		}
		orders = append(orders, math.Log(ec/ef)/math.Log(hc/hf))
	}
	return orders
}

// fittedOrder is the least-squares slope of log E against log h over the
// whole ladder — more robust than a single pair on short ladders.
func fittedOrder(ladder []LadderPoint, norm func(LadderPoint) float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for _, lp := range ladder {
		e := norm(lp)
		if e <= 0 || lp.H <= 0 {
			continue
		}
		x, y := math.Log(lp.H), math.Log(e)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (fn*sxy - sx*sy) / den
}

// relDrift returns |v-base| relative to scale (or to |base| when scale is
// zero); a zero base and scale yields the absolute deviation.
func relDrift(v, base, scale float64) float64 {
	d := math.Abs(v - base)
	if scale == 0 {
		scale = math.Abs(base)
	}
	if scale == 0 {
		return d
	}
	return d / scale
}
