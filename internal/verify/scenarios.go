package verify

import (
	"fmt"
	"math"
	"sync"

	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
)

// runCase executes one scenario configuration through the real sim/cluster
// stack, wiring the shared step logger when the caller attached one.
func runCase(cfg sim.Config, opt Options, onStep func(sim.StepInfo)) (sim.Summary, error) {
	if cfg.Cluster.Workers == 0 {
		cfg.Cluster.Workers = opt.Workers
	}
	if opt.StepLog != nil {
		cfg.Telemetry = &telemetry.Set{StepLog: opt.StepLog}
	}
	return sim.Run(cfg, onStep)
}

// forEachCell visits every cell of the rank with its global physical cell
// center and primitive state.
func forEachCell(r *cluster.Rank, f func(x, y, z float64, pr physics.Prim)) {
	g := r.G
	n := g.N
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := b.At(ix, iy, iz)
					cons := physics.Cons{
						R: float64(c[physics.QR]), RU: float64(c[physics.QU]),
						RV: float64(c[physics.QV]), RW: float64(c[physics.QW]),
						E: float64(c[physics.QE]), G: float64(c[physics.QG]),
						Pi: float64(c[physics.QP]),
					}
					f(x, y, z, cons.ToPrim())
				}
			}
		}
	}
}

// --- Sod shock tube convergence ladder -----------------------------------

// sodScenario runs the stiffened-gas Sod shock tube (here with Π=0, the
// ideal-gas limit of the stiffened EOS) at a resolution ladder and measures
// density error norms against the exact Riemann solution, plus the observed
// convergence order between successive resolutions. First-order convergence
// at the shock and contact is the theoretical ceiling for the L1 norm.
func sodScenario() Scenario {
	return Scenario{
		Name:        "sod",
		Description: "Sod shock tube vs exact Riemann solution, resolution ladder",
		Run:         runSod,
	}
}

func sodLadder(mode Mode) []int {
	if mode == Full {
		return []int{64, 128, 256}
	}
	return []int{32, 64, 128}
}

func runSod(mode Mode, opt Options) (*Result, error) {
	const tEnd = 0.15
	exact := physics.RiemannExact{
		Left:  physics.Prim{Rho: 1, P: 1, G: 2.5, Pi: 0},
		Right: physics.Prim{Rho: 0.125, P: 0.1, G: 2.5, Pi: 0},
	}
	pstar, ustar, err := exact.Star()
	if err != nil {
		return nil, err
	}

	res := &Result{Metrics: map[string]float64{}}
	var finest driftTracker
	for _, nx := range sodLadder(mode) {
		ranksX := 1
		if nx >= 64 {
			ranksX = 2 // exercise the inter-rank ghost exchange on the ladder
		}
		var tracker driftTracker
		acc := &normAccum{}
		var tFinal float64
		var mu sync.Mutex
		cfg := sim.Config{
			Cluster: cluster.Config{
				RankDims:  [3]int{ranksX, 1, 1},
				BlockDims: [3]int{nx / 8 / ranksX, 1, 1},
				BlockSize: 8,
				Extent:    1,
				BC:        grid.DefaultBC(),
				CFL:       0.3,
				Init:      sim.SodInit,
			},
			TEnd:       tEnd,
			DiagEvery:  1 << 30,
			AuditEvery: 5,
			OnFinish: func(r *cluster.Rank) {
				mu.Lock()
				tFinal = r.Time
				mu.Unlock()
				errs := make([]float64, 0, r.G.Cells())
				forEachCell(r, func(x, y, z float64, pr physics.Prim) {
					want := exact.Sample((x - 0.5) / r.Time)
					errs = append(errs, pr.Rho-want.Rho)
				})
				acc.addCells(errs)
			},
		}
		summary, err := runCase(cfg, opt, func(s sim.StepInfo) {
			if s.HasTotals {
				tracker.observe(s.Totals)
			}
		})
		if err != nil {
			return nil, err
		}
		l1, l2, linf := acc.norms()
		res.Ladder = append(res.Ladder, LadderPoint{
			Cells: nx, H: 1 / float64(nx), TEnd: tFinal, Steps: summary.Steps,
			L1: l1, L2: l2, Linf: linf,
		})
		finest = tracker
	}

	ladder := res.Ladder
	o1 := observedOrders(ladder, func(p LadderPoint) float64 { return p.L1 })
	o2 := observedOrders(ladder, func(p LadderPoint) float64 { return p.L2 })
	res.Metrics["order_l1"] = o1[len(o1)-1]
	res.Metrics["order_l2"] = o2[len(o2)-1]
	res.Metrics["order_fit_l1"] = fittedOrder(ladder, func(p LadderPoint) float64 { return p.L1 })
	res.Metrics["l1_finest"] = ladder[len(ladder)-1].L1
	res.Metrics["linf_finest"] = ladder[len(ladder)-1].Linf
	// Mass and energy are conserved on the finest run until the waves reach
	// the x boundaries (outside the t<=0.15 window); momentum is not (net
	// pressure difference between the ends), so it is reported, not banded.
	res.Metrics["mass_drift"] = finest.mass
	res.Metrics["energy_drift"] = finest.energy
	res.Metrics["non_finite"] = float64(finest.nonFinite)
	res.Notes = append(res.Notes,
		fmt.Sprintf("exact star state: p*=%.6f u*=%.6f", pstar, ustar),
		fmt.Sprintf("observed L1 orders along ladder: %v", fmtOrders(o1)))
	return res, nil
}

func fmtOrders(os []float64) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = fmt.Sprintf("%.3f", o)
	}
	return out
}

// --- Isolated material-interface advection --------------------------------

// ifaceScenario advects a slab of a second material (jump in Γ and Π only)
// through a periodic box at uniform velocity and pressure. The scheme's
// interface-capturing property (reconstructing Γ and Π, paper ref. [45])
// demands that u and p stay exactly uniform; density is uniform too, so
// total mass must hold to the last bit. This is the regression gate for the
// contact-preservation property every later kernel change must keep.
func ifaceScenario() Scenario {
	return Scenario{
		Name:        "iface",
		Description: "material-interface advection: u/p uniformity and exact mass conservation",
		Run:         runIface,
	}
}

func runIface(mode Mode, opt Options) (*Result, error) {
	// The audit window is 50 steps in both modes: the u-noise the float32
	// state accumulates performs a random walk that stays below the density
	// quantization threshold for ~60 steps, so within the window the frozen
	// conserved state makes the mass check exact (doubling the window brings
	// drift up to ~1e-8 — measured, not a regression signal). Full mode
	// doubles the resolution instead.
	nx := 64
	if mode == Full {
		nx = 128
	}
	return runIfaceAt(nx, 50, opt)
}

func runIfaceAt(nx, steps int, opt Options) (*Result, error) {
	// All values are exactly representable in float32, and the slab's Π is
	// chosen so Γp+Π — hence the total energy E = Γp+Π+ρ|u|²/2 — is
	// continuous across the material interface. ρ, ρu and E then start as
	// exactly uniform float32 arrays whose flux divergences sit below the
	// float32 rounding threshold, so the conserved state is bitwise frozen
	// while Γ and Π genuinely advect through it: mass conservation must be
	// exact, and any u/p drift isolates an interface-consistency bug.
	const (
		rho0 = 1.0
		u0   = 1.0
		p0   = 1.0
		gOut = 2.5 // Γ of the carrier gas (γ=1.4)
		gIn  = 2.0 // Γ of the slab (γ=1.5)
		piIn = 0.5 // Π of the slab = (gOut-gIn)·p0; carrier Π=0
	)
	init := func(x, y, z float64) physics.Prim {
		pr := physics.Prim{Rho: rho0, U: u0, P: p0, G: gOut, Pi: 0}
		if x >= 0.25 && x < 0.75 {
			pr.G, pr.Pi = gIn, piIn
		}
		return pr
	}

	var tracker driftTracker
	var mu sync.Mutex
	var uDrift, pDrift float64
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{nx / 16, 1, 1},
			BlockSize: 8,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			CFL:       0.3,
			Init:      init,
		},
		Steps:      steps,
		DiagEvery:  1 << 30,
		AuditEvery: 1,
		OnFinish: func(r *cluster.Rank) {
			var du, dp float64
			forEachCell(r, func(x, y, z float64, pr physics.Prim) {
				if v := math.Abs(pr.U-u0) / u0; v > du {
					du = v
				}
				if v := math.Abs(pr.V) / u0; v > du {
					du = v
				}
				if v := math.Abs(pr.W) / u0; v > du {
					du = v
				}
				if v := math.Abs(pr.P-p0) / p0; v > dp {
					dp = v
				}
			})
			mu.Lock()
			if du > uDrift {
				uDrift = du
			}
			if dp > pDrift {
				pDrift = dp
			}
			mu.Unlock()
		},
	}
	summary, err := runCase(cfg, opt, func(s sim.StepInfo) {
		if s.HasTotals {
			tracker.observe(s.Totals)
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Metrics: map[string]float64{
		"u_drift": uDrift,
		"p_drift": pDrift,
	}}
	tracker.metrics(res.Metrics)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d steps, %d cells along x, slab Γ %.2f→%.2f Π 0→%.2f",
			summary.Steps, nx, gOut, gIn, piIn))
	return res, nil
}

// --- Rayleigh collapse vs the Rayleigh-Plesset ODE ------------------------

// rayleighScenario collapses a single vapor bubble in pressurized liquid
// and compares the equivalent-radius trajectory from the cluster
// diagnostics against the Rayleigh-Plesset reference integrated in
// internal/physics/rayleigh.go. The liquid uses a softened stiffening
// pressure so the acoustic time scale does not dwarf the collapse time at
// test resolutions; the RP comparison is insensitive to p_c (it only sees
// ρ, p_∞ and p_B).
func rayleighScenario() Scenario {
	return Scenario{
		Name:        "rayleigh",
		Description: "single-bubble collapse vs Rayleigh-Plesset ODE",
		Run:         runRayleigh,
	}
}

func runRayleigh(mode Mode, opt Options) (*Result, error) {
	nb := 3 // 24³ cells
	tauFrac := 0.6
	if mode == Full {
		nb = 4 // 32³
		tauFrac = 0.7
	}
	const (
		r0     = 0.2
		rhoLiq = 1000.0
		pLiq   = 100 * physics.Bar
		rhoVap = 1.0
	)
	pVap := physics.VaporInit.P // 0.0234 bar
	liquid := physics.Material{Gamma: 6.59, Pc: 2 * physics.Bar} // softened p_c
	vapor := physics.Material{Gamma: 1.4, Pc: 0}

	n := nb * 8
	h := 1.0 / float64(n)
	w := 1.5 * h // interface mollification width
	init := func(x, y, z float64) physics.Prim {
		dx, dy, dz := x-0.5, y-0.5, z-0.5
		d := math.Sqrt(dx*dx+dy*dy+dz*dz) - r0
		a := 0.5 * (1 - math.Tanh(d/w)) // 1 inside the bubble
		g, pi := physics.Mix(liquid, vapor, a)
		return physics.Prim{
			Rho: (1-a)*rhoLiq + a*rhoVap,
			P:   (1-a)*pLiq + a*pVap,
			G:   g, Pi: pi,
		}
	}

	tau := physics.RayleighCollapseTime(r0, rhoLiq, pLiq-pVap)
	rp := physics.RayleighPlesset{
		R0: r0, PInf: pLiq, PB0: pVap, Rho: rhoLiq, Kappa: 1.4,
	}
	times, radii, err := rp.Integrate(tau*tauFrac, tau/200)
	if err != nil {
		return nil, err
	}

	var tracker driftTracker
	type sample struct{ t, r float64 }
	var samples []sample
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{nb, nb, nb},
			BlockSize: 8,
			Extent:    1,
			BC:        grid.DefaultBC(),
			CFL:       0.3,
			Init:      init,
		},
		TEnd:       tau * tauFrac,
		DiagEvery:  2,
		AuditEvery: 10,
		Steps:      100000, // safety cap; TEnd stops the run
	}
	_, err = runCase(cfg, opt, func(s sim.StepInfo) {
		if s.HasDiag {
			samples = append(samples, sample{t: s.Time, r: s.Diag.EquivRadius})
		}
		if s.HasTotals {
			tracker.observe(s.Totals)
		}
	})
	if err != nil {
		return nil, err
	}
	if len(samples) < 3 {
		return nil, fmt.Errorf("rayleigh: only %d radius samples", len(samples))
	}

	res := &Result{Metrics: map[string]float64{}}
	rSim0 := samples[0].r
	var maxDev float64
	for _, s := range samples {
		rEx := interpAt(times, radii, s.t) / r0
		rSim := s.r / rSim0
		res.Series = append(res.Series, RadiusSample{T: s.t, RSim: rSim, RExact: rEx})
		if d := math.Abs(rSim - rEx); d > maxDev {
			maxDev = d
		}
	}
	final := res.Series[len(res.Series)-1]
	res.Metrics["max_rel_dev"] = maxDev
	res.Metrics["final_ratio"] = final.RSim
	res.Metrics["exact_final_ratio"] = final.RExact
	res.Metrics["non_finite"] = float64(tracker.nonFinite)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"R0=%.2f (%.1f cells), τ=%.3e, run to %.2fτ, R/R0 sim %.4f vs RP %.4f",
		r0, r0/h, tau, tauFrac, final.RSim, final.RExact))
	return res, nil
}

// interpAt linearly interpolates the (times, values) series at t, clamping
// to the endpoints.
func interpAt(times, values []float64, t float64) float64 {
	if len(times) == 0 {
		return math.NaN()
	}
	if t <= times[0] {
		return values[0]
	}
	for i := 1; i < len(times); i++ {
		if t <= times[i] {
			f := (t - times[i-1]) / (times[i] - times[i-1])
			return values[i-1] + f*(values[i]-values[i-1])
		}
	}
	return values[len(values)-1]
}
