// Package verify is the solver's verification subsystem: a registry of
// exact-solution scenarios that run through the real sim/cluster stack at a
// resolution ladder, measure error norms and observed convergence order
// against analytic references, and audit conservation of mass, momentum and
// energy per step (paper §2, eqs. 1–2; the validation ladder of the MFC
// solver papers).
//
// Each scenario produces a flat metric namespace ("sod.order_l1",
// "iface.mass_drift", ...) that is checked against tolerance bands stored
// in testdata/tolerances.json. The short ladder runs under plain
// `go test ./internal/verify` so tier-1 catches physics regressions; the
// full ladder runs via `cmd/mpcf-verify` (or `make verify`) and writes a
// machine-readable VERIFY.json that later performance and refactoring PRs
// are gated on.
package verify

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"cubism/internal/telemetry"
)

// Mode selects the resolution ladder depth.
type Mode string

// Supported modes: Short is the tier-1 (go test) ladder, Full the CI /
// release gate.
const (
	Short Mode = "short"
	Full  Mode = "full"
)

// Options configures a verification run.
type Options struct {
	// Workers per rank threaded into the cluster configs (0: NumCPU).
	Workers int
	// StepLog (optional) receives the structured per-step records of every
	// scenario run, reusing the telemetry step logger.
	StepLog *telemetry.StepLogger
}

// Scenario is one registered verification case.
type Scenario struct {
	Name        string
	Description string
	// Run executes the case and returns its result. It must populate
	// Result.Metrics with every value the tolerance bands reference.
	Run func(mode Mode, opt Options) (*Result, error)
}

// Result is the outcome of one scenario.
type Result struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Mode        string            `json:"mode"`
	// Metrics is the flat namespace checked against tolerance bands; keys
	// are metric names without the scenario prefix.
	Metrics map[string]float64 `json:"metrics"`
	// Ladder holds the per-resolution norms of convergence scenarios.
	Ladder []LadderPoint `json:"ladder,omitempty"`
	// Series holds the sampled radius trajectory of the Rayleigh case.
	Series []RadiusSample `json:"series,omitempty"`
	// Notes carries free-form context (star states, step counts, ...).
	Notes []string `json:"notes,omitempty"`
}

// LadderPoint is the error measurement at one resolution of a ladder.
type LadderPoint struct {
	Cells int     `json:"cells"` // cells along the resolved direction
	H     float64 `json:"h"`
	TEnd  float64 `json:"t_end"`
	Steps int     `json:"steps"`
	L1    float64 `json:"l1"`
	L2    float64 `json:"l2"`
	Linf  float64 `json:"linf"`
}

// RadiusSample is one point of the bubble-radius trajectory against the
// Rayleigh-Plesset reference.
type RadiusSample struct {
	T      float64 `json:"t"`
	RSim   float64 `json:"r_sim"`   // simulated R(t)/R(0)
	RExact float64 `json:"r_exact"` // ODE R(t)/R0
}

// Registry returns the built-in scenarios in run order.
func Registry() []Scenario {
	return []Scenario{
		sodScenario(),
		ifaceScenario(),
		rayleighScenario(),
		cloudCollapseScenario(),
		shockBubbleScenario(),
		bubbleArrayScenario(),
	}
}

// Report is the machine-readable verification record (VERIFY.json).
type Report struct {
	Version   int                `json:"version"`
	Mode      string             `json:"mode"`
	GoVersion string             `json:"go_version"`
	Scenarios map[string]*Result `json:"scenarios"`
	Checks    []Check            `json:"checks"`
	Pass      bool               `json:"pass"`
}

// Check is one tolerance-band comparison.
type Check struct {
	Name  string  `json:"name"` // "scenario.metric"
	Value float64 `json:"value"`
	Op    string  `json:"op"` // "le" or "ge"
	Bound float64 `json:"bound"`
	Pass  bool    `json:"pass"`
}

// RunAll executes every registered scenario (or the named subset) and
// checks the result against the tolerance bands for the mode.
func RunAll(mode Mode, opt Options, bands Bands, only ...string) (*Report, error) {
	sel := map[string]bool{}
	for _, n := range only {
		sel[n] = true
	}
	rep := &Report{
		Version:   1,
		Mode:      string(mode),
		GoVersion: runtime.Version(),
		Scenarios: map[string]*Result{},
	}
	for _, sc := range Registry() {
		if len(sel) > 0 && !sel[sc.Name] {
			continue
		}
		res, err := sc.Run(mode, opt)
		if err != nil {
			return nil, fmt.Errorf("verify: scenario %s: %w", sc.Name, err)
		}
		res.Name = sc.Name
		res.Description = sc.Description
		res.Mode = string(mode)
		rep.Scenarios[sc.Name] = res
	}
	rep.Checks = bands.Check(mode, rep.Scenarios)
	rep.Pass = true
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path (VERIFY.json).
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Table renders the checks as an aligned text table for terminal output.
func (r *Report) Table() string {
	out := fmt.Sprintf("verification mode=%s go=%s\n", r.Mode, r.GoVersion)
	names := make([]string, 0, len(r.Scenarios))
	for n := range r.Scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.Scenarios[n]
		out += fmt.Sprintf("\n[%s] %s\n", n, s.Description)
		for _, lp := range s.Ladder {
			out += fmt.Sprintf("  n=%4d  h=%.5f  t=%.4f  steps=%4d  L1=%.3e  L2=%.3e  Linf=%.3e\n",
				lp.Cells, lp.H, lp.TEnd, lp.Steps, lp.L1, lp.L2, lp.Linf)
		}
		for _, note := range s.Notes {
			out += "  " + note + "\n"
		}
	}
	out += "\nchecks:\n"
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		op := "<="
		if c.Op == "ge" {
			op = ">="
		}
		out += fmt.Sprintf("  %-28s %12.4e %s %10.4e  %s\n", c.Name, c.Value, op, c.Bound, status)
	}
	if r.Pass {
		out += "result: PASS\n"
	} else {
		out += "result: FAIL\n"
	}
	return out
}
