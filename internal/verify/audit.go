package verify

import (
	"math"

	"cubism/internal/cluster"
)

// driftTracker watches the per-step conserved totals of a run and records
// the worst relative drift of each integral against the first audited step.
// Momentum is normalized by the absolute-momentum integral (the natural
// scale when the net momentum is zero), and the advected material functions
// are checked for range violations (over/undershoot beyond the initial
// bounds — the Γ/Π interface-jump preservation property).
type driftTracker struct {
	base      cluster.Totals
	have      bool
	mass      float64 // max relative mass drift
	momentum  float64 // max momentum drift over the |momentum| scale
	energy    float64 // max relative energy drift
	gammaOut  float64 // worst Γ excursion beyond the initial [min,max]
	piOut     float64 // worst Π excursion beyond the initial [min,max]
	nonFinite int     // max non-finite cell count seen
	steps     int
}

// observe folds one audited step into the tracker.
func (d *driftTracker) observe(t cluster.Totals) {
	if !d.have {
		d.base = t
		d.have = true
	}
	d.steps++
	if v := relDrift(t.Mass, d.base.Mass, 0); v > d.mass {
		d.mass = v
	}
	momScale := d.base.AbsMomSum
	for _, pair := range [][2]float64{
		{t.MomX, d.base.MomX}, {t.MomY, d.base.MomY}, {t.MomZ, d.base.MomZ},
	} {
		if v := relDrift(pair[0], pair[1], momScale); v > d.momentum {
			d.momentum = v
		}
	}
	if v := relDrift(t.Energy, d.base.Energy, 0); v > d.energy {
		d.energy = v
	}
	gSpan := d.base.GammaMax - d.base.GammaMin
	if gSpan == 0 {
		gSpan = math.Abs(d.base.GammaMax)
	}
	if gSpan > 0 {
		if v := (d.base.GammaMin - t.GammaMin) / gSpan; v > d.gammaOut {
			d.gammaOut = v
		}
		if v := (t.GammaMax - d.base.GammaMax) / gSpan; v > d.gammaOut {
			d.gammaOut = v
		}
	}
	piSpan := d.base.PiMax - d.base.PiMin
	if piSpan > 0 {
		if v := (d.base.PiMin - t.PiMin) / piSpan; v > d.piOut {
			d.piOut = v
		}
		if v := (t.PiMax - d.base.PiMax) / piSpan; v > d.piOut {
			d.piOut = v
		}
	}
	if t.NonFinite > d.nonFinite {
		d.nonFinite = t.NonFinite
	}
}

// metrics flattens the tracker into the band namespace.
func (d *driftTracker) metrics(into map[string]float64) {
	into["mass_drift"] = d.mass
	into["momentum_drift"] = d.momentum
	into["energy_drift"] = d.energy
	into["gamma_overshoot"] = d.gammaOut
	into["pi_overshoot"] = d.piOut
	into["non_finite"] = float64(d.nonFinite)
	into["audited_steps"] = float64(d.steps)
}
