package verify

import (
	"fmt"

	"cubism/internal/scenario"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
)

// The cloud-collapse verification cases delegate geometry and observables to
// the scenario engine (internal/scenario): the registry builds the
// sim.Config, the observables pipeline reduces the run to the Figure-5
// metrics, and this file only chooses the per-mode resolution/step budget
// and translates the result into the band-checked Result shape.
//
// Mode budgets (set from measured baselines, see testdata/tolerances.json):
//
//	short — 32³, 40 steps per case: catches regressions in seconds under
//	        plain `go test` / the CI verify job.
//	full  — cloud stays at 32³ but runs 150 steps, past the Rayleigh
//	        collapse time of its mean bubble (collapse_frac > 1), so the
//	        wall-pressure amplification of the near-wall cloud is visible;
//	        shockbubble and array go to 64³ × 120 steps for resolution.
func cloudParams(name string, mode Mode) scenario.Params {
	p := scenario.Params{Blocks: [3]int{2, 2, 2}, Steps: 40}
	if mode == Full {
		switch name {
		case "cloud":
			p.Steps = 150
		default:
			p.Blocks = [3]int{4, 4, 4}
			p.Steps = 120
		}
	}
	return p
}

func runCloudCase(name string, mode Mode, opt Options) (*Result, error) {
	p := cloudParams(name, mode)
	p.Workers = opt.Workers
	c, err := scenario.Build(name, p)
	if err != nil {
		return nil, err
	}
	if opt.StepLog != nil {
		c.Config.Telemetry = &telemetry.Set{StepLog: opt.StepLog}
	}
	obs := scenario.NewObserver(c)
	sum, err := sim.Run(c.Config, obs.OnStep)
	if err != nil {
		return nil, err
	}
	metrics := obs.Metrics()
	// Expose the cloud geometry as metrics so the bands can assert the
	// default case sits in the interacting regime (β ≳ 1).
	if c.Beta > 0 {
		metrics["beta"] = c.Beta
		metrics["void_fraction"] = c.VoidFraction
	}
	res := &Result{Metrics: metrics}
	res.Notes = append(res.Notes,
		fmt.Sprintf("bubbles=%d  R0=%.4f  R_C=%.4f  beta=%.3f  alpha0=%.4f",
			len(c.Bubbles), c.MeanRadius, c.CloudRadius, c.Beta, c.VoidFraction),
		fmt.Sprintf("rayleigh tau=%.4e  reached t=%.4e (%.2f tau)  steps=%d",
			c.RayleighTau, sum.SimTime, sum.SimTime/c.RayleighTau, sum.Steps))
	// Equivalent-radius trajectory, normalized like the rayleigh series
	// (RExact stays zero: a cloud has no single-bubble ODE reference).
	if len(obs.Series) > 0 && obs.Series[0].EquivRadius > 0 {
		r0 := obs.Series[0].EquivRadius
		for _, s := range obs.Series {
			res.Series = append(res.Series, RadiusSample{T: s.Time, RSim: s.EquivRadius / r0})
		}
	}
	return res, nil
}

func cloudCollapseScenario() Scenario {
	return Scenario{
		Name: "cloud",
		Description: "seeded lognormal bubble cloud collapsing onto a wall " +
			"(interaction parameter β, Fig. 5 observables)",
		Run: func(mode Mode, opt Options) (*Result, error) {
			return runCloudCase("cloud", mode, opt)
		},
	}
}

func shockBubbleScenario() Scenario {
	return Scenario{
		Name: "shockbubble",
		Description: "shock-induced collapse of a single vapor bubble " +
			"(10x ambient planar wave)",
		Run: func(mode Mode, opt Options) (*Result, error) {
			return runCloudCase("shockbubble", mode, opt)
		},
	}
}

func bubbleArrayScenario() Scenario {
	return Scenario{
		Name:        "array",
		Description: "regular 2^3 lattice of equal vapor bubbles in pressurized liquid",
		Run: func(mode Mode, opt Options) (*Result, error) {
			return runCloudCase("array", mode, opt)
		},
	}
}
