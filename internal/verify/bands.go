package verify

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

//go:embed testdata/tolerances.json
var defaultBandsJSON []byte

// Band is one tolerance constraint on a metric.
type Band struct {
	Op    string  `json:"op"` // "le" or "ge"
	Bound float64 `json:"bound"`
}

// Bands maps mode -> "scenario.metric" -> constraint. The checked-in bands
// under testdata/tolerances.json were set from measured baselines with
// headroom; the headline constraints of the verification issue (Sod L1
// order ≥ 0.8, iface u/p drift ≤ 1e-6, iface mass drift ≤ 1e-12) are kept
// at least as tight as specified.
type Bands map[string]map[string]Band

// DefaultBands parses the embedded tolerance table.
func DefaultBands() (Bands, error) {
	var b Bands
	if err := json.Unmarshal(defaultBandsJSON, &b); err != nil {
		return nil, fmt.Errorf("verify: embedded tolerances: %w", err)
	}
	return b, nil
}

// LoadBands reads a tolerance table from JSON bytes (external override).
func LoadBands(data []byte) (Bands, error) {
	var b Bands
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("verify: tolerances: %w", err)
	}
	return b, nil
}

// Check evaluates every band of the mode against the scenario metrics. A
// banded metric that the run did not produce fails explicitly (NaN value)
// rather than passing silently.
func (b Bands) Check(mode Mode, scenarios map[string]*Result) []Check {
	table := b[string(mode)]
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	var checks []Check
	for _, name := range names {
		band := table[name]
		var scen, metric string
		if i := indexByte(name, '.'); i >= 0 {
			scen, metric = name[:i], name[i+1:]
		}
		c := Check{Name: name, Op: band.Op, Bound: band.Bound, Value: math.NaN()}
		if res, ok := scenarios[scen]; ok {
			if v, ok := res.Metrics[metric]; ok {
				c.Value = v
				switch band.Op {
				case "le":
					c.Pass = v <= band.Bound
				case "ge":
					c.Pass = v >= band.Bound
				}
			}
		} else {
			// Scenario not selected in this run: skip its bands.
			continue
		}
		checks = append(checks, c)
	}
	return checks
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
