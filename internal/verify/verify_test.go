package verify

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// shortReport runs the short-mode suite once and shares the report across
// the acceptance tests below (each scenario costs seconds, not millis).
var (
	shortOnce sync.Once
	shortRep  *Report
	shortErr  error
)

func getShortReport(t *testing.T) *Report {
	t.Helper()
	shortOnce.Do(func() {
		bands, err := DefaultBands()
		if err != nil {
			shortErr = err
			return
		}
		shortRep, shortErr = RunAll(Short, Options{}, bands)
	})
	if shortErr != nil {
		t.Fatal(shortErr)
	}
	return shortRep
}

func metric(t *testing.T, rep *Report, scenario, name string) float64 {
	t.Helper()
	res, ok := rep.Scenarios[scenario]
	if !ok {
		t.Fatalf("scenario %q missing from report", scenario)
	}
	v, ok := res.Metrics[name]
	if !ok {
		t.Fatalf("metric %s.%s missing; have %v", scenario, name, res.Metrics)
	}
	return v
}

func TestSodConvergenceOrder(t *testing.T) {
	rep := getShortReport(t)
	if o := metric(t, rep, "sod", "order_l1"); !(o >= 0.8) {
		t.Errorf("Sod L1 density convergence order = %.3f, want >= 0.8", o)
	}
	if o := metric(t, rep, "sod", "order_fit_l1"); !(o >= 0.8) {
		t.Errorf("Sod fitted L1 convergence order = %.3f, want >= 0.8", o)
	}
	ladder := rep.Scenarios["sod"].Ladder
	if len(ladder) < 2 {
		t.Fatalf("sod ladder has %d points, want >= 2", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].L1 >= ladder[i-1].L1 {
			t.Errorf("L1 not decreasing along ladder: %.3e (n=%d) -> %.3e (n=%d)",
				ladder[i-1].L1, ladder[i-1].Cells, ladder[i].L1, ladder[i].Cells)
		}
	}
}

func TestInterfaceAdvectionPreservation(t *testing.T) {
	rep := getShortReport(t)
	if d := metric(t, rep, "iface", "u_drift"); !(d <= 1e-6) {
		t.Errorf("interface advection u drift = %.3e, want <= 1e-6", d)
	}
	if d := metric(t, rep, "iface", "p_drift"); !(d <= 1e-6) {
		t.Errorf("interface advection p drift = %.3e, want <= 1e-6", d)
	}
	if d := metric(t, rep, "iface", "mass_drift"); !(d <= 1e-12) {
		t.Errorf("interface advection mass drift = %.3e, want <= 1e-12 over 50 steps", d)
	}
	if n := metric(t, rep, "iface", "audited_steps"); n < 50 {
		t.Errorf("conservation audit covered %v steps, want >= 50", n)
	}
}

func TestRayleighCollapseAgainstODE(t *testing.T) {
	rep := getShortReport(t)
	if d := metric(t, rep, "rayleigh", "max_rel_dev"); !(d <= 0.15) {
		t.Errorf("Rayleigh radius deviation from RP ODE = %.3f, want <= 0.15", d)
	}
	if f := metric(t, rep, "rayleigh", "final_ratio"); !(f < 1) {
		t.Errorf("bubble did not collapse: final R/R0 = %.3f", f)
	}
	series := rep.Scenarios["rayleigh"].Series
	if len(series) < 3 {
		t.Fatalf("rayleigh series has %d samples", len(series))
	}
	if last := series[len(series)-1]; last.RSim >= series[0].RSim {
		t.Errorf("radius did not shrink: %.4f -> %.4f", series[0].RSim, last.RSim)
	}
}

func TestShortBandsPass(t *testing.T) {
	rep := getShortReport(t)
	if len(rep.Checks) == 0 {
		t.Fatal("no tolerance checks ran")
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("band %s: value %.4e violates %s %.4e", c.Name, c.Value, c.Op, c.Bound)
		}
	}
	if !rep.Pass {
		t.Error("report Pass = false")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := getShortReport(t)
	path := filepath.Join(t.TempDir(), "VERIFY.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("VERIFY.json is not valid JSON: %v", err)
	}
	if got.Mode != string(Short) || !got.Pass {
		t.Errorf("round-trip mode=%q pass=%v", got.Mode, got.Pass)
	}
	if len(got.Scenarios) != len(rep.Scenarios) {
		t.Errorf("round-trip lost scenarios: %d != %d", len(got.Scenarios), len(rep.Scenarios))
	}
	if rep.Table() == "" {
		t.Error("empty table rendering")
	}
}

// --- fast unit tests (no simulation) --------------------------------------

func TestObservedOrders(t *testing.T) {
	// Errors manufactured for exactly 2nd order: E = h².
	ladder := []LadderPoint{
		{H: 0.1, L1: 0.01},
		{H: 0.05, L1: 0.0025},
		{H: 0.025, L1: 0.000625},
	}
	orders := observedOrders(ladder, func(p LadderPoint) float64 { return p.L1 })
	if len(orders) != 2 {
		t.Fatalf("got %d orders", len(orders))
	}
	for _, o := range orders {
		if math.Abs(o-2) > 1e-12 {
			t.Errorf("order = %v, want 2", o)
		}
	}
	if f := fittedOrder(ladder, func(p LadderPoint) float64 { return p.L1 }); math.Abs(f-2) > 1e-12 {
		t.Errorf("fitted order = %v, want 2", f)
	}
}

func TestObservedOrdersDegenerate(t *testing.T) {
	ladder := []LadderPoint{{H: 0.1, L1: 0}, {H: 0.05, L1: 0.001}}
	orders := observedOrders(ladder, func(p LadderPoint) float64 { return p.L1 })
	if !math.IsNaN(orders[0]) {
		t.Errorf("zero-error pair should give NaN, got %v", orders[0])
	}
	if f := fittedOrder(ladder[:1], func(p LadderPoint) float64 { return p.L1 }); !math.IsNaN(f) {
		t.Errorf("single-point fit should give NaN, got %v", f)
	}
}

func TestNormAccum(t *testing.T) {
	var a normAccum
	a.addCells([]float64{3, -4})
	l1, l2, linf := a.norms()
	if math.Abs(l1-3.5) > 1e-15 {
		t.Errorf("L1 = %v, want 3.5", l1)
	}
	if math.Abs(l2-math.Sqrt(12.5)) > 1e-15 {
		t.Errorf("L2 = %v, want sqrt(12.5)", l2)
	}
	if linf != 4 {
		t.Errorf("Linf = %v, want 4", linf)
	}
}

func TestRelDrift(t *testing.T) {
	if d := relDrift(1.0+1e-9, 1.0, 0); math.Abs(d-1e-9) > 1e-15 {
		t.Errorf("relDrift = %v", d)
	}
	if d := relDrift(0.5, 0, 2); d != 0.25 {
		t.Errorf("scaled relDrift = %v, want 0.25", d)
	}
	if d := relDrift(0.5, 0, 0); d != 0.5 {
		t.Errorf("absolute fallback = %v, want 0.5", d)
	}
}

func TestBandsCheck(t *testing.T) {
	bands := Bands{"short": {
		"a.x":       {Op: "le", Bound: 1},
		"a.y":       {Op: "ge", Bound: 2},
		"a.missing": {Op: "le", Bound: 1},
		"absent.z":  {Op: "le", Bound: 1},
	}}
	scen := map[string]*Result{"a": {Metrics: map[string]float64{"x": 0.5, "y": 1.5}}}
	checks := bands.Check(Short, scen)
	got := map[string]bool{}
	for _, c := range checks {
		got[c.Name] = c.Pass
	}
	if !got["a.x"] {
		t.Error("a.x should pass (0.5 <= 1)")
	}
	if got["a.y"] {
		t.Error("a.y should fail (1.5 < 2)")
	}
	if pass, ok := got["a.missing"]; !ok || pass {
		t.Error("missing metric must be reported as a failing check")
	}
	if _, ok := got["absent.z"]; ok {
		t.Error("bands of unselected scenarios must be skipped")
	}
}

func TestDefaultBandsParse(t *testing.T) {
	bands, err := DefaultBands()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"short", "full"} {
		table := bands[mode]
		if len(table) == 0 {
			t.Fatalf("no %s bands", mode)
		}
		for name, b := range table {
			if b.Op != "le" && b.Op != "ge" {
				t.Errorf("%s/%s: bad op %q", mode, name, b.Op)
			}
		}
		for _, headline := range []string{"sod.order_l1", "iface.mass_drift", "iface.u_drift", "iface.p_drift"} {
			if _, ok := table[headline]; !ok {
				t.Errorf("%s bands missing headline constraint %s", mode, headline)
			}
		}
	}
	if b := bands["short"]["iface.mass_drift"]; b.Bound > 1e-12 {
		t.Errorf("iface.mass_drift band %.1e looser than 1e-12", b.Bound)
	}
	if b := bands["short"]["sod.order_l1"]; b.Bound < 0.8 {
		t.Errorf("sod.order_l1 band %.2f below 0.8", b.Bound)
	}
}

func TestInterpAt(t *testing.T) {
	times := []float64{0, 1, 2}
	vals := []float64{10, 20, 40}
	for _, tc := range []struct{ t, want float64 }{
		{-1, 10}, {0, 10}, {0.5, 15}, {1.5, 30}, {2, 40}, {3, 40},
	} {
		if got := interpAt(times, vals, tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("interpAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if got := interpAt(nil, nil, 1); !math.IsNaN(got) {
		t.Errorf("empty series should give NaN, got %v", got)
	}
}
