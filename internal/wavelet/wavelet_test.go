package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardInverse1DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 16, 32, 64} {
		row := make([]float32, n)
		for i := range row {
			row[i] = float32(rng.NormFloat64())
		}
		tr := make([]float32, n)
		back := make([]float32, n)
		Forward1D(tr, row)
		Inverse1D(back, tr)
		for i := range row {
			if math.Abs(float64(back[i]-row[i])) > 1e-5 {
				t.Fatalf("n=%d: roundtrip[%d] = %g, want %g", n, i, back[i], row[i])
			}
		}
	}
}

// TestPolynomialVanishingDetails: the fourth-order interpolating wavelet
// reproduces cubic polynomials exactly, so every detail coefficient of a
// cubic sequence vanishes — except the very last one, whose prediction is
// deliberately linear (see the lagrange4 boundary comment), so it vanishes
// only for affine input.
func TestPolynomialVanishingDetails(t *testing.T) {
	n := 32
	row := make([]float32, n)
	for i := range row {
		x := float64(i)
		row[i] = float32(0.3 - 1.2*x + 0.05*x*x - 0.002*x*x*x)
	}
	tr := make([]float32, n)
	Forward1D(tr, row)
	for i := n / 2; i < n-1; i++ {
		if math.Abs(float64(tr[i])) > 1e-4 {
			t.Errorf("detail[%d] = %g, want ~0 for cubic input", i, tr[i])
		}
	}
	// Affine input: every detail vanishes, including the last.
	for i := range row {
		row[i] = float32(2 - 0.5*float64(i))
	}
	Forward1D(tr, row)
	for i := n / 2; i < n; i++ {
		if math.Abs(float64(tr[i])) > 1e-4 {
			t.Errorf("affine detail[%d] = %g, want 0", i, tr[i])
		}
	}
}

// TestLinearity: the transform is linear (property-based).
func TestLinearity(t *testing.T) {
	const n = 16
	f := func(seed int64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e3 {
			a = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, n)
		y := make([]float32, n)
		sum := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
			sum[i] = float32(a)*x[i] + y[i]
		}
		tx := make([]float32, n)
		ty := make([]float32, n)
		ts := make([]float32, n)
		Forward1D(tx, x)
		Forward1D(ty, y)
		Forward1D(ts, sum)
		for i := range ts {
			want := float64(float32(a)*tx[i] + ty[i])
			if math.Abs(float64(ts[i])-want) > 1e-3*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLevels(t *testing.T) {
	cases := map[int]int{4: 0, 8: 1, 16: 2, 32: 3, 64: 4, 7: 0, 12: 0}
	// 12: 12 >= 8 and even -> one level? 12/2=6 -> stop. So Levels(12)=1.
	cases[12] = 1
	for n, want := range cases {
		if got := Levels(n); got != want {
			t.Errorf("Levels(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFWT3RoundTrip(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		tr := NewFWT3(n)
		data := make([]float32, n*n*n)
		rng := rand.New(rand.NewSource(7))
		for i := range data {
			data[i] = float32(rng.NormFloat64())
		}
		orig := append([]float32(nil), data...)
		tr.Forward(data)
		// The transform must actually change the data (decorrelate).
		same := true
		for i := range data {
			if data[i] != orig[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("n=%d: forward transform is the identity", n)
		}
		tr.Inverse(data)
		for i := range data {
			if math.Abs(float64(data[i]-orig[i])) > 1e-4 {
				t.Fatalf("n=%d: roundtrip[%d] = %g, want %g", n, i, data[i], orig[i])
			}
		}
	}
}

// TestFWT3SmoothCompaction: on a smooth field, almost all energy must end
// up in the coarse corner — the de-correlation property the compression
// pipeline exploits.
func TestFWT3SmoothCompaction(t *testing.T) {
	n := 32
	tr := NewFWT3(n)
	data := make([]float32, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[(z*n+y)*n+x] = float32(
					math.Sin(2*math.Pi*float64(x)/float64(n)) *
						math.Cos(2*math.Pi*float64(y)/float64(n)) *
						math.Sin(2*math.Pi*float64(z)/float64(n)))
			}
		}
	}
	tr.Forward(data)
	// Count coefficients above a small threshold; for a smooth field the
	// significant set should be a small fraction of the total.
	significant := 0
	for _, v := range data {
		if math.Abs(float64(v)) > 1e-3 {
			significant++
		}
	}
	frac := float64(significant) / float64(len(data))
	if frac > 0.2 {
		t.Errorf("smooth field keeps %.1f%% significant coefficients, want < 20%%", 100*frac)
	}
}

// TestThresholdErrorBound: zeroing all detail coefficients with magnitude
// <= eps must keep the L∞ reconstruction error within a small multiple of
// eps (the guarantee the paper's decimation relies on).
func TestThresholdErrorBound(t *testing.T) {
	n := 32
	tr := NewFWT3(n)
	data := make([]float32, n*n*n)
	rng := rand.New(rand.NewSource(3))
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				smooth := math.Sin(7 * float64(x+2*y+3*z) / float64(n))
				data[(z*n+y)*n+x] = float32(smooth + 0.01*rng.NormFloat64())
			}
		}
	}
	orig := append([]float32(nil), data...)
	tr.Forward(data)
	const eps = 1e-3
	c := n >> uint(Levels(n))
	dropped := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x < c && y < c && z < c {
					continue // never decimate the coarse approximation
				}
				i := (z*n+y)*n + x
				if math.Abs(float64(data[i])) <= eps {
					data[i] = 0
					dropped++
				}
			}
		}
	}
	if dropped == 0 {
		t.Fatal("test vector produced no decimatable coefficients")
	}
	tr.Inverse(data)
	maxErr := 0.0
	for i := range data {
		if e := math.Abs(float64(data[i] - orig[i])); e > maxErr {
			maxErr = e
		}
	}
	// Error amplification across levels and directions is bounded; 20x is
	// a conservative engineering bound validated here.
	if maxErr > 10*eps {
		t.Errorf("L∞ error %g exceeds 10*eps = %g", maxErr, 10*eps)
	}
}

func TestBoundaryStencilWeightsSumToOne(t *testing.T) {
	for i, w := range lagrange4 {
		sum := w[0] + w[1] + w[2] + w[3]
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("stencil %d weights sum to %g, want 1", i, sum)
		}
	}
}

// TestForwardVecMatchesScalar: the 4-stream vectorized transform must be
// numerically equivalent to the scalar path.
func TestForwardVecMatchesScalar(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		a := make([]float32, n*n*n)
		rng := rand.New(rand.NewSource(11))
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		b := append([]float32(nil), a...)
		tr := NewFWT3(n)
		tr.Forward(a)
		tr.ForwardVec(b)
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4*(1+math.Abs(float64(a[i]))) {
				t.Fatalf("n=%d: elem %d scalar %g vs vec %g", n, i, a[i], b[i])
			}
		}
	}
}
