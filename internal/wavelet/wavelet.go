// Package wavelet implements the fourth-order interpolating wavelet
// transform "on the interval" that drives the paper's compression scheme
// (§5: "fourth-order interpolating wavelets, on the interval ... a balanced
// trade-off between compression rate and computational cost").
//
// The transform is the Deslauriers–Dubuc interpolating (lifting) scheme of
// Donoho (paper ref. [17]): even samples become the coarse approximation and
// each odd sample is replaced by its deviation from the cubic interpolation
// of four neighboring evens. Because the wavelets are interpolating,
// discarding detail coefficients below a threshold ε perturbs the
// reconstruction in L∞ by at most a small multiple of ε — the guarantee the
// paper relies on for its lossy dumps. Near the interval boundaries the
// interpolation stencils are shifted one-sided (Cohen–Daubechies–Vial-style
// boundary handling, ref. [12]), so each block transforms independently —
// the property that makes the per-block parallel compression possible.
package wavelet

// MinLen is the smallest row length the 4-point boundary stencils support.
const MinLen = 8

// lagrange4 holds the cubic Lagrange weights evaluated at the half-integer
// offsets needed by the interval boundary handling: stencil positions are
// 0..3 and the interpolation point sits at tau = 0.5 + idx.
var lagrange4 = [4][4]float64{
	// tau = 0.5: left boundary (one-sided)
	{0.3125, 0.9375, -0.3125, 0.0625},
	// tau = 1.5: interior stencil, the classic (-1, 9, 9, -1)/16
	{-0.0625, 0.5625, 0.5625, -0.0625},
	// tau = 2.5: right boundary (one-sided)
	{0.0625, -0.3125, 0.9375, 0.3125},
	// tau = 3.5: right boundary extrapolation for the last odd sample of a
	// row. The cubic extrapolation weights (-5/16, 21/16, -35/16, 35/16)
	// have an absolute sum of 6, which would amplify decimation errors
	// unacceptably through the multi-level prediction cascade; linear
	// extrapolation (gain 2) trades the last sample's approximation order
	// for a tight L∞ error bound under thresholding.
	{0, 0, -0.5, 1.5},
}

// predictWeights returns the stencil start s and weight row for the odd
// sample between evens i and i+1, for a coarse row of ne even samples.
func predictWeights(i, ne int) (s int, w *[4]float64) {
	s = i - 1
	if s < 0 {
		s = 0
	}
	if s > ne-4 {
		s = ne - 4
	}
	return s, &lagrange4[i-s]
}

// Forward1D performs one level of the interpolating wavelet transform on
// row (even length >= MinLen): the first half of dst receives the coarse
// (even) samples and the second half the detail coefficients. dst and row
// must not alias and len(dst) >= len(row).
func Forward1D(dst, row []float32) {
	n := len(row)
	ne := n / 2
	if n%2 != 0 || n < MinLen {
		panic("wavelet: row length must be even and >= MinLen")
	}
	coarse := dst[:ne]
	detail := dst[ne:n]
	for i := 0; i < ne; i++ {
		coarse[i] = row[2*i]
	}
	for i := 0; i < ne; i++ {
		s, w := predictWeights(i, ne)
		pred := w[0]*float64(coarse[s]) + w[1]*float64(coarse[s+1]) +
			w[2]*float64(coarse[s+2]) + w[3]*float64(coarse[s+3])
		detail[i] = float32(float64(row[2*i+1]) - pred)
	}
}

// Inverse1D undoes Forward1D: src holds [coarse | detail] and dst receives
// the interleaved samples. dst and src must not alias.
func Inverse1D(dst, src []float32) {
	n := len(src)
	ne := n / 2
	if n%2 != 0 || n < MinLen {
		panic("wavelet: row length must be even and >= MinLen")
	}
	coarse := src[:ne]
	detail := src[ne:n]
	for i := 0; i < ne; i++ {
		dst[2*i] = coarse[i]
	}
	for i := 0; i < ne; i++ {
		s, w := predictWeights(i, ne)
		pred := w[0]*float64(coarse[s]) + w[1]*float64(coarse[s+1]) +
			w[2]*float64(coarse[s+2]) + w[3]*float64(coarse[s+3])
		dst[2*i+1] = float32(float64(detail[i]) + pred)
	}
}

// Levels returns the number of transform levels applicable to a row of
// length n: a level applies while the current length is even and at least
// MinLen (n=32 gives three levels: 32 → 16 → 8 → 4).
func Levels(n int) int {
	levels := 0
	for n >= MinLen && n%2 == 0 {
		n /= 2
		levels++
	}
	return levels
}
