package wavelet

import "cubism/internal/qpx"

// Vectorized 4-stream filtering: the paper resolves the irregularity of the
// boundary filters "by processing four y-adjacent independent data streams"
// (§6 DLP) — the same stencil position of four rows occupies the four
// vector lanes, so the per-position weight selection happens once for all
// lanes and the arithmetic is pure 4-wide FMA.

// forward1DQuad transforms four equal-length rows simultaneously. dst and
// src must not alias per row.
func forward1DQuad(dst, src [4][]float32) {
	n := len(src[0])
	ne := n / 2
	// Evens to the coarse half of each row.
	for l := 0; l < 4; l++ {
		for i := 0; i < ne; i++ {
			dst[l][i] = src[l][2*i]
		}
	}
	for i := 0; i < ne; i++ {
		s, w := predictWeights(i, ne)
		w0, w1 := qpx.Splat(w[0]), qpx.Splat(w[1])
		w2, w3 := qpx.Splat(w[2]), qpx.Splat(w[3])
		gather := func(j int) qpx.Vec4 {
			return qpx.New(
				float64(dst[0][j]), float64(dst[1][j]),
				float64(dst[2][j]), float64(dst[3][j]),
			)
		}
		pred := w0.Mul(gather(s))
		pred = w1.MAdd(gather(s+1), pred)
		pred = w2.MAdd(gather(s+2), pred)
		pred = w3.MAdd(gather(s+3), pred)
		dst[0][ne+i] = float32(float64(src[0][2*i+1]) - pred.A)
		dst[1][ne+i] = float32(float64(src[1][2*i+1]) - pred.B)
		dst[2][ne+i] = float32(float64(src[2][2*i+1]) - pred.C)
		dst[3][ne+i] = float32(float64(src[3][2*i+1]) - pred.D)
	}
}

// ForwardVec is the 4-stream vectorized counterpart of Forward: identical
// output, with the row filtering performed four rows at a time.
func (t *FWT3) ForwardVec(data []float32) {
	n := t.n
	if len(data) != n*n*n {
		panic("wavelet: data length mismatch")
	}
	for m := n; m >= MinLen; m /= 2 {
		t.levelForwardVec(data, m)
	}
}

// rowQuad collects four consecutive rows of a plane held in buf.
func rowQuad(buf []float32, m, y int) [4][]float32 {
	return [4][]float32{
		buf[y*m : y*m+m],
		buf[(y+1)*m : (y+1)*m+m],
		buf[(y+2)*m : (y+2)*m+m],
		buf[(y+3)*m : (y+3)*m+m],
	}
}

func (t *FWT3) levelForwardVec(data []float32, m int) {
	n := t.n
	quadScratch := [4][]float32{
		make([]float32, m), make([]float32, m), make([]float32, m), make([]float32, m),
	}
	// x-direction: contiguous rows, four y-adjacent rows per step.
	for z := 0; z < m; z++ {
		for y := 0; y < m; y += 4 {
			src := [4][]float32{
				data[((z*n + y) * n) : (z*n+y)*n+m],
				data[((z*n + y + 1) * n) : (z*n+y+1)*n+m],
				data[((z*n + y + 2) * n) : (z*n+y+2)*n+m],
				data[((z*n + y + 3) * n) : (z*n+y+3)*n+m],
			}
			forward1DQuad(quadScratch, src)
			for l := 0; l < 4; l++ {
				copy(src[l], quadScratch[l])
			}
		}
	}
	// y-direction through the x-y transposition.
	for z := 0; z < m; z++ {
		t.transposeXY(data, z, m)
		for y := 0; y < m; y += 4 {
			src := rowQuad(t.plane, m, y)
			forward1DQuad(quadScratch, src)
			for l := 0; l < 4; l++ {
				copy(src[l], quadScratch[l])
			}
		}
		t.untransposeXY(data, z, m)
	}
	// z-direction through the x-z transposition.
	for y := 0; y < m; y++ {
		t.transposeXZ(data, y, m)
		for z := 0; z < m; z += 4 {
			src := rowQuad(t.plane, m, z)
			forward1DQuad(quadScratch, src)
			for l := 0; l < 4; l++ {
				copy(src[l], quadScratch[l])
			}
		}
		t.untransposeXZ(data, y, m)
	}
}
