package wavelet

import "cubism/internal/qpx"

// FWT3 performs the separable 3D forward wavelet transform of an n³ block
// in place (x-fastest layout), across all multiresolution levels. After the
// call, element (0,0,0)..(c-1,c-1,c-1) of the array holds the coarsest
// approximation (c = n >> Levels(n)) and the remainder holds detail
// coefficients of increasing resolution.
//
// The implementation follows the paper's vectorized structure (§6 DLP):
// one-dimensional filtering along x, an x–y transposition of each slice,
// filtering again (now the original y runs along memory), an x–z
// transposition of the dataset, filtering, and the transposes undone. The
// filtering of four adjacent rows is interleaved so the hot loop is
// expressible in 4-lane vector operations (the "four y-adjacent independent
// data streams" technique, at the cost of extra 4×4 transpositions).
type FWT3 struct {
	n       int
	scratch []float32 // one row (or transposed plane) of work space
	plane   []float32 // n² transposition buffer
}

// NewFWT3 creates a transform workspace for n³ blocks. n must be even and
// at least MinLen (production blocks are 32³).
func NewFWT3(n int) *FWT3 {
	if n < MinLen || n&(n-1) != 0 {
		panic("wavelet: block edge must be a power of two >= MinLen")
	}
	return &FWT3{n: n, scratch: make([]float32, n), plane: make([]float32, n*n)}
}

// N returns the block edge.
func (t *FWT3) N() int { return t.n }

// Forward transforms data (length n³) in place through all levels.
func (t *FWT3) Forward(data []float32) {
	n := t.n
	if len(data) != n*n*n {
		panic("wavelet: data length mismatch")
	}
	for m := n; m >= MinLen; m /= 2 {
		t.levelForward(data, m)
	}
}

// Inverse undoes Forward in place.
func (t *FWT3) Inverse(data []float32) {
	n := t.n
	if len(data) != n*n*n {
		panic("wavelet: data length mismatch")
	}
	// Reconstruct from the coarsest level up.
	for m := n >> uint(Levels(n)-1); m <= n; m *= 2 {
		t.levelInverse(data, m)
	}
}

// levelForward applies one transform level to the m³ coarse corner of the
// n³ dataset: filter along x, y and z.
func (t *FWT3) levelForward(data []float32, m int) {
	n := t.n
	// x-direction: rows are contiguous.
	for z := 0; z < m; z++ {
		for y := 0; y < m; y++ {
			row := data[(z*n+y)*n : (z*n+y)*n+m]
			Forward1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
	}
	// y-direction: x-y transpose each slice, filter contiguously, undo.
	for z := 0; z < m; z++ {
		t.transposeXY(data, z, m)
		for y := 0; y < m; y++ {
			row := t.plane[y*m : y*m+m]
			Forward1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
		t.untransposeXY(data, z, m)
	}
	// z-direction: x-z transpose planes, filter, undo.
	for y := 0; y < m; y++ {
		t.transposeXZ(data, y, m)
		for z := 0; z < m; z++ {
			row := t.plane[z*m : z*m+m]
			Forward1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
		t.untransposeXZ(data, y, m)
	}
}

// levelInverse undoes one transform level on the m³ corner (reverse order).
func (t *FWT3) levelInverse(data []float32, m int) {
	n := t.n
	for y := 0; y < m; y++ {
		t.transposeXZ(data, y, m)
		for z := 0; z < m; z++ {
			row := t.plane[z*m : z*m+m]
			Inverse1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
		t.untransposeXZ(data, y, m)
	}
	for z := 0; z < m; z++ {
		t.transposeXY(data, z, m)
		for y := 0; y < m; y++ {
			row := t.plane[y*m : y*m+m]
			Inverse1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
		t.untransposeXY(data, z, m)
	}
	for z := 0; z < m; z++ {
		for y := 0; y < m; y++ {
			row := data[(z*n+y)*n : (z*n+y)*n+m]
			Inverse1D(t.scratch[:m], row)
			copy(row, t.scratch[:m])
		}
	}
}

// transposeXY copies slice z of the m³ corner into the plane buffer with x
// and y exchanged, using 4x4 register tiles (qpx.Transpose4) — the FWT's
// "dangerous" cache transpositions the paper calls out.
func (t *FWT3) transposeXY(data []float32, z, m int) {
	n := t.n
	base := z * n * n
	t.transposeTiled(func(x, y int) float32 { return data[base+y*n+x] }, m)
}

func (t *FWT3) untransposeXY(data []float32, z, m int) {
	n := t.n
	base := z * n * n
	for y := 0; y < m; y++ {
		for x := 0; x < m; x++ {
			data[base+y*n+x] = t.plane[x*m+y]
		}
	}
}

// transposeXZ copies the y-plane (fixed y) with x and z exchanged.
func (t *FWT3) transposeXZ(data []float32, y, m int) {
	n := t.n
	t.transposeTiled(func(x, z int) float32 { return data[(z*n+y)*n+x] }, m)
}

func (t *FWT3) untransposeXZ(data []float32, y, m int) {
	n := t.n
	for z := 0; z < m; z++ {
		for x := 0; x < m; x++ {
			data[(z*n+y)*n+x] = t.plane[x*m+z]
		}
	}
}

// transposeTiled fills t.plane[v*m+u] = get(v, u) — i.e. the transposed
// view — walking 4x4 tiles through the qpx register transpose so the data
// movement pattern matches the vectorized original.
func (t *FWT3) transposeTiled(get func(u, v int) float32, m int) {
	for v0 := 0; v0 < m; v0 += 4 {
		for u0 := 0; u0 < m; u0 += 4 {
			var r [4]qpx.Vec4
			for dv := 0; dv < 4; dv++ {
				r[dv] = qpx.New(
					float64(get(u0, v0+dv)),
					float64(get(u0+1, v0+dv)),
					float64(get(u0+2, v0+dv)),
					float64(get(u0+3, v0+dv)),
				)
			}
			qpx.Transpose4(&r[0], &r[1], &r[2], &r[3])
			for du := 0; du < 4; du++ {
				o := (u0+du)*m + v0
				t.plane[o] = float32(r[du].A)
				t.plane[o+1] = float32(r[du].B)
				t.plane[o+2] = float32(r[du].C)
				t.plane[o+3] = float32(r[du].D)
			}
		}
	}
}

// FlopsPerCell is the approximate arithmetic of the full multi-level 3D
// transform per cell: each level-0 direction predicts n³/2 odd samples at 8
// FLOPs each (4 multiplies, 3 adds, 1 subtract), three directions, and the
// level series converges to x1.14.
const FlopsPerCell = 14
