// Package viz renders scalar fields of the simulation to NetPBM images —
// the reproduction's stand-in for the paper's volume renderings (Figures
// 4, 6, 8: pressure from translucent blue through yellow to red, with the
// liquid/vapor interface in white).
package viz

import (
	"fmt"
	"math"

	"cubism/internal/dump"
	"cubism/internal/sfc"
)

// RGB is one 8-bit color.
type RGB struct{ R, G, B uint8 }

// Pressure maps a normalized value in [0,1] through the paper's volume
// rendering palette: low pressure translucent blue, mid yellow, high red.
func Pressure(t float64) RGB {
	t = clamp01(t)
	switch {
	case t < 0.5:
		// blue (40,80,200) -> yellow (240,220,60)
		u := t / 0.5
		return lerp(RGB{40, 80, 200}, RGB{240, 220, 60}, u)
	default:
		// yellow -> red (220,30,20)
		u := (t - 0.5) / 0.5
		return lerp(RGB{240, 220, 60}, RGB{220, 30, 20}, u)
	}
}

// Grayscale maps [0,1] to gray levels.
func Grayscale(t float64) RGB {
	v := uint8(clamp01(t) * 255)
	return RGB{v, v, v}
}

func clamp01(t float64) float64 {
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

func lerp(a, b RGB, u float64) RGB {
	f := func(x, y uint8) uint8 { return uint8(float64(x) + u*(float64(y)-float64(x))) }
	return RGB{f(a.R, b.R), f(a.G, b.G), f(a.B, b.B)}
}

// Plane is a 2D scalar field.
type Plane struct {
	W, H int
	Data []float64 // row-major, Data[y*W+x]
}

// MinMax returns the value range (ignoring non-finite entries).
func (p Plane) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// PPM renders the plane through a colormap into a binary PPM (P6) image,
// normalizing to the plane's own range. An optional isoline value draws
// white pixels where the field crosses it (the interface overlay of the
// paper's figures).
func (p Plane) PPM(cmap func(float64) RGB, iso float64, drawIso bool) []byte {
	lo, hi := p.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	out := make([]byte, 0, 32+3*p.W*p.H)
	out = append(out, fmt.Sprintf("P6\n%d %d\n255\n", p.W, p.H)...)
	at := func(x, y int) float64 { return p.Data[y*p.W+x] }
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			v := at(x, y)
			c := cmap((v - lo) / span)
			if drawIso && crossesIso(p, x, y, iso) {
				c = RGB{255, 255, 255}
			}
			out = append(out, c.R, c.G, c.B)
		}
	}
	return out
}

// crossesIso reports whether the isoline passes between (x,y) and one of
// its right/down neighbors.
func crossesIso(p Plane, x, y int, iso float64) bool {
	v := p.Data[y*p.W+x]
	if x+1 < p.W {
		if (v-iso)*(p.Data[y*p.W+x+1]-iso) <= 0 && v != p.Data[y*p.W+x+1] {
			return true
		}
	}
	if y+1 < p.H {
		if (v-iso)*(p.Data[(y+1)*p.W+x]-iso) <= 0 && v != p.Data[(y+1)*p.W+x] {
			return true
		}
	}
	return false
}

// Volume is a reassembled global scalar field.
type Volume struct {
	NX, NY, NZ int
	Data       []float64 // Data[(z*NY+y)*NX+x]
}

// At returns the value at global cell (x,y,z).
func (v *Volume) At(x, y, z int) float64 { return v.Data[(z*v.NY+y)*v.NX+x] }

// Slice extracts the plane normal to axis (0=x,1=y,2=z) at the given index.
func (v *Volume) Slice(axis, index int) Plane {
	switch axis {
	case 0:
		p := Plane{W: v.NY, H: v.NZ, Data: make([]float64, v.NY*v.NZ)}
		for z := 0; z < v.NZ; z++ {
			for y := 0; y < v.NY; y++ {
				p.Data[z*v.NY+y] = v.At(index, y, z)
			}
		}
		return p
	case 1:
		p := Plane{W: v.NX, H: v.NZ, Data: make([]float64, v.NX*v.NZ)}
		for z := 0; z < v.NZ; z++ {
			for x := 0; x < v.NX; x++ {
				p.Data[z*v.NX+x] = v.At(x, index, z)
			}
		}
		return p
	default:
		p := Plane{W: v.NX, H: v.NY, Data: make([]float64, v.NX*v.NY)}
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				p.Data[y*v.NX+x] = v.At(x, y, index)
			}
		}
		return p
	}
}

// Assemble reconstructs the global field from a dump's per-rank block
// fields. Headers that carry per-rank block-id tables (any layout,
// including mid-run rebalanced ones) place each block by its canonical
// linear id; pre-layout headers fall back to the implied cartesian
// decomposition — ranks map to a cartesian box (x-fastest), blocks within a
// rank follow the same space-filling-curve order the grid used when
// compressing.
func Assemble(hdr dump.Header, fields [][][]float32) (*Volume, error) {
	n := hdr.BlockSize
	rb := hdr.BlockDims
	rd := hdr.RankDims
	gb := [3]int{rd[0] * rb[0], rd[1] * rb[1], rd[2] * rb[2]} // global block box
	vol := &Volume{
		NX: gb[0] * n,
		NY: gb[1] * n,
		NZ: gb[2] * n,
	}
	vol.Data = make([]float64, vol.NX*vol.NY*vol.NZ)
	if len(fields) != rd[0]*rd[1]*rd[2] {
		return nil, fmt.Errorf("viz: %d rank payloads for %v rank grid", len(fields), rd)
	}
	place := func(blk []float32, bx, by, bz int) {
		baseX, baseY, baseZ := bx*n, by*n, bz*n
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					vol.Data[((baseZ+z)*vol.NY+baseY+y)*vol.NX+baseX+x] =
						float64(blk[(z*n+y)*n+x])
				}
			}
		}
	}
	if len(hdr.Ranks) == len(fields) && len(hdr.Ranks) > 0 && hdr.Ranks[0].BlockIDs != nil {
		total := 0
		for rank, blocks := range fields {
			ids := hdr.Ranks[rank].BlockIDs
			if len(blocks) != len(ids) {
				return nil, fmt.Errorf("viz: rank %d has %d blocks but %d block ids", rank, len(blocks), len(ids))
			}
			total += len(ids)
			for bi, id := range ids {
				if id < 0 || id >= int64(gb[0]*gb[1]*gb[2]) {
					return nil, fmt.Errorf("viz: rank %d block id %d outside %v box", rank, id, gb)
				}
				bx := int(id) % gb[0]
				by := (int(id) / gb[0]) % gb[1]
				bz := int(id) / (gb[0] * gb[1])
				place(blocks[bi], bx, by, bz)
			}
		}
		if total != gb[0]*gb[1]*gb[2] {
			return nil, fmt.Errorf("viz: block-id tables cover %d of %d blocks", total, gb[0]*gb[1]*gb[2])
		}
		return vol, nil
	}
	curve := sfc.ForBox(rb[0], rb[1], rb[2])
	order := sfc.Enumerate(curve, rb[0], rb[1], rb[2])
	for rank, blocks := range fields {
		if len(blocks) != len(order) {
			return nil, fmt.Errorf("viz: rank %d has %d blocks, expected %d", rank, len(blocks), len(order))
		}
		rx := rank % rd[0]
		ry := (rank / rd[0]) % rd[1]
		rz := rank / (rd[0] * rd[1])
		for bi, c := range order {
			place(blocks[bi], rx*rb[0]+c[0], ry*rb[1]+c[1], rz*rb[2]+c[2])
		}
	}
	return vol, nil
}
