package viz_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"cubism/internal/cloud"
	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/viz"
)

// TestRenderRealDump runs a tiny two-rank cloud simulation, dumps the
// pressure field, reassembles it through viz and renders a slice —
// exercising the whole visualization path (the mpcf-render flow) end to
// end, including the multi-rank/multi-block reassembly.
func TestRenderRealDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mpcf")
	bubbles := []cloud.Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.2}}
	field := cloud.NewField(bubbles, 0.03)

	world := mpi.NewWorld(2)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{1, 2, 2},
			BlockSize: 8,
			Extent:    1,
			BC:        grid.DefaultBC(),
			Workers:   1,
			CFL:       0.3,
			Init:      field.At,
		})
		r.Advance()
		if _, err := r.Dump(path, compress.Pressure, 1e-3, "zlib"); err != nil {
			t.Error(err)
		}
	})

	hdr, payloads, err := dump.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([][][]float32, len(payloads))
	for ri, c := range payloads {
		fields[ri], err = c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
	}
	vol, err := viz.Assemble(hdr, fields)
	if err != nil {
		t.Fatal(err)
	}
	if vol.NX != 16 || vol.NY != 16 || vol.NZ != 16 {
		t.Fatalf("assembled volume %dx%dx%d, want 16³", vol.NX, vol.NY, vol.NZ)
	}
	// Physical sanity of the assembled field: vapor pressure inside the
	// bubble, liquid pressure in the corners, no seams at the rank boundary.
	if p := vol.At(8, 8, 8); p > 1e5 {
		t.Errorf("bubble center pressure %g, want vapor-scale", p)
	}
	if p := vol.At(0, 0, 0); p < 50e5 {
		t.Errorf("corner pressure %g, want liquid-scale", p)
	}
	// Continuity across the rank boundary (x=7|8): neighboring cells differ
	// far less than the phase contrast.
	for y := 0; y < 16; y++ {
		for z := 0; z < 16; z++ {
			a, b := vol.At(7, y, z), vol.At(8, y, z)
			if math.Abs(a-b) > 0.7*100e5 {
				t.Fatalf("seam at rank boundary y=%d z=%d: %g vs %g", y, z, a, b)
			}
		}
	}
	// Render the mid-plane; the image must have the right size and contain
	// both blue-dominant (low p) and red-dominant (high p) pixels.
	plane := vol.Slice(2, 8)
	img := plane.PPM(viz.Pressure, 0, false)
	if !bytes.HasPrefix(img, []byte("P6\n16 16\n255\n")) {
		t.Fatalf("bad PPM header")
	}
	body := img[len("P6\n16 16\n255\n"):]
	var sawBlue, sawRed bool
	for i := 0; i+2 < len(body); i += 3 {
		r, g, b := body[i], body[i+1], body[i+2]
		_ = g
		if b > r+50 {
			sawBlue = true
		}
		if r > b+50 {
			sawRed = true
		}
	}
	if !sawBlue || !sawRed {
		t.Errorf("rendered slice lacks phase contrast: blue=%v red=%v", sawBlue, sawRed)
	}
}
