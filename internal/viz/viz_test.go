package viz

import (
	"bytes"
	"math"
	"testing"

	"cubism/internal/dump"
	"cubism/internal/sfc"
)

func TestColormapEndpoints(t *testing.T) {
	lo := Pressure(0)
	hi := Pressure(1)
	if lo.B < lo.R {
		t.Errorf("low pressure should be blue-dominant: %+v", lo)
	}
	if hi.R < hi.B {
		t.Errorf("high pressure should be red-dominant: %+v", hi)
	}
	mid := Pressure(0.5)
	if mid.R < 200 || mid.G < 200 {
		t.Errorf("mid pressure should be yellow: %+v", mid)
	}
}

func TestColormapClamps(t *testing.T) {
	for _, v := range []float64{-1, 2, math.NaN()} {
		c := Pressure(v)
		_ = c // must not panic; NaN maps to the low end
	}
	if Pressure(math.NaN()) != Pressure(0) {
		t.Error("NaN should map like 0")
	}
}

func TestPlanePPMFormat(t *testing.T) {
	p := Plane{W: 4, H: 2, Data: []float64{0, 1, 2, 3, 4, 5, 6, 7}}
	img := p.PPM(Grayscale, 0, false)
	want := []byte("P6\n4 2\n255\n")
	if !bytes.HasPrefix(img, want) {
		t.Fatalf("bad PPM header: %q", img[:12])
	}
	if len(img) != len(want)+3*4*2 {
		t.Fatalf("image size %d", len(img))
	}
	// First pixel is the minimum (black), last the maximum (white).
	body := img[len(want):]
	if body[0] != 0 || body[len(body)-1] != 255 {
		t.Errorf("normalization wrong: first %d last %d", body[0], body[len(body)-1])
	}
}

func TestIsolineMarked(t *testing.T) {
	// A vertical step: the isoline at 0.5 must mark the transition column.
	p := Plane{W: 4, H: 1, Data: []float64{0, 0, 1, 1}}
	img := p.PPM(func(float64) RGB { return RGB{} }, 0.5, true)
	hdr := len("P6\n4 1\n255\n")
	// Pixel 1 crosses to pixel 2.
	if img[hdr+3] != 255 {
		t.Errorf("isoline not marked at crossing: % d", img[hdr:])
	}
	if img[hdr] != 0 {
		t.Errorf("isoline marked away from crossing")
	}
}

func TestVolumeSlices(t *testing.T) {
	v := &Volume{NX: 2, NY: 3, NZ: 4}
	v.Data = make([]float64, 2*3*4)
	for z := 0; z < 4; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 2; x++ {
				v.Data[(z*3+y)*2+x] = float64(x + 10*y + 100*z)
			}
		}
	}
	pz := v.Slice(2, 3)
	if pz.W != 2 || pz.H != 3 || pz.Data[1*2+1] != 1+10+300 {
		t.Errorf("z-slice wrong: %+v", pz)
	}
	px := v.Slice(0, 1)
	if px.W != 3 || px.H != 4 || px.Data[2*3+1] != 1+10+200 {
		t.Errorf("x-slice wrong: %+v", px)
	}
	py := v.Slice(1, 2)
	if py.W != 2 || py.H != 4 || py.Data[3*2+0] != 0+20+300 {
		t.Errorf("y-slice wrong: %+v", py)
	}
}

func TestAssembleSingleRank(t *testing.T) {
	// One rank, 2x2x2 blocks of 8³: fill block fields with their global
	// coordinates and check the assembly inverts the SFC ordering.
	n := 8
	hdr := dump.Header{
		BlockSize: n,
		RankDims:  [3]int{1, 1, 1},
		BlockDims: [3]int{2, 2, 2},
	}
	// Build the per-block fields in the same order Assemble expects by
	// asking it to reassemble coordinate-coded data and verifying pointwise.
	// We construct the block list via the same curve package used by the
	// grid, exactly like the writer does.
	fields := make([][][]float32, 1)
	blocks := make([][]float32, 8)
	order := sfc.Enumerate(sfc.ForBox(2, 2, 2), 2, 2, 2)
	for bi, c := range order {
		blk := make([]float32, n*n*n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					gx, gy, gz := c[0]*n+x, c[1]*n+y, c[2]*n+z
					blk[(z*n+y)*n+x] = float32(gx + 100*gy + 10000*gz)
				}
			}
		}
		blocks[bi] = blk
	}
	fields[0] = blocks
	vol, err := Assemble(hdr, fields)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][3]int{{0, 0, 0}, {15, 3, 7}, {8, 8, 8}, {1, 15, 9}} {
		want := float64(probe[0] + 100*probe[1] + 10000*probe[2])
		if got := vol.At(probe[0], probe[1], probe[2]); got != want {
			t.Errorf("At%v = %g, want %g", probe, got, want)
		}
	}
}

func TestAssembleRejectsBadShape(t *testing.T) {
	hdr := dump.Header{BlockSize: 8, RankDims: [3]int{2, 1, 1}, BlockDims: [3]int{1, 1, 1}}
	if _, err := Assemble(hdr, make([][][]float32, 1)); err == nil {
		t.Error("expected rank-count mismatch error")
	}
}
