package mpi

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestPointToPoint(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		c.Isend(next, 1, []float32{float32(c.Rank())})
		got := c.Recv(prev, 1)
		if int(got[0]) != prev {
			t.Errorf("rank %d received %v, want %d", c.Rank(), got, prev)
		}
	})
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Send out of order; receiver matches by tag.
			c.Send(1, 20, []float32{20})
			c.Send(1, 10, []float32{10})
		} else {
			a := c.Recv(0, 10)
			b := c.Recv(0, 20)
			if a[0] != 10 || b[0] != 20 {
				t.Errorf("tag matching failed: %v %v", a, b)
			}
		}
	})
}

func TestIrecvBeforeSend(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Irecv(1, 5)
			if got := req.Wait(); got[0] != 42 {
				t.Errorf("got %v", got)
			}
		} else {
			c.Send(0, 5, []float32{42})
		}
	})
}

func TestAllreduce(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		sum := c.Allreduce(float64(c.Rank()+1), SumOp)
		if sum != 15 {
			t.Errorf("sum = %g, want 15", sum)
		}
		maxV := c.Allreduce(float64(c.Rank()), MaxOp)
		if maxV != 4 {
			t.Errorf("max = %g, want 4", maxV)
		}
		minV := c.Allreduce(float64(c.Rank()), MinOp)
		if minV != 0 {
			t.Errorf("min = %g, want 0", minV)
		}
	})
}

func TestExscan(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		// Rank r contributes 10*(r+1); exclusive prefix of rank r is
		// sum_{i<r} 10*(i+1).
		got := c.Exscan(int64(10 * (c.Rank() + 1)))
		want := int64(0)
		for i := 0; i < c.Rank(); i++ {
			want += int64(10 * (i + 1))
		}
		if got != want {
			t.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(8)
	var before, violated atomic.Int32
	w.Run(func(c *Comm) {
		before.Add(1)
		c.Barrier()
		if before.Load() != 8 {
			violated.Add(1)
		}
	})
	if violated.Load() != 0 {
		t.Error("barrier released a rank before all arrived")
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		vals := c.Gather(float64(c.Rank() * c.Rank()))
		want := []float64{0, 1, 4}
		for i := range want {
			if vals[i] != want[i] {
				t.Errorf("gather[%d] = %g, want %g", i, vals[i], want[i])
			}
		}
	})
}

func TestSendRecvInts(t *testing.T) {
	w := NewWorld(2)
	vals := []int64{0, 1, -1, 1 << 40, -(1 << 52), 123456789012345}
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendInts(1, 9, vals)
		} else {
			got := c.RecvInts(0, 9)
			for i := range vals {
				if got[i] != vals[i] {
					t.Errorf("ints[%d] = %d, want %d", i, got[i], vals[i])
				}
			}
		}
	})
}

func TestManyCollectives(t *testing.T) {
	// Exercise the collective slot GC across hundreds of calls.
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		for i := 0; i < 300; i++ {
			if got := c.Allreduce(1, SumOp); got != 3 {
				t.Errorf("iteration %d: %g", i, got)
				return
			}
		}
	})
}

func TestCart(t *testing.T) {
	w := NewWorld(8)
	w.Run(func(c *Comm) {
		cart := NewCart(c, [3]int{2, 2, 2}, [3]bool{true, false, false})
		// Coordinates invert RankOf.
		if got := cart.RankOf(cart.Coords[0], cart.Coords[1], cart.Coords[2]); got != c.Rank() {
			t.Errorf("RankOf(coords) = %d, want %d", got, c.Rank())
		}
		// Periodic x wraps, non-periodic y does not.
		if cart.Coords[0] == 1 {
			if nb := cart.Neighbor(0, 1); nb != cart.RankOf(0, cart.Coords[1], cart.Coords[2]) {
				t.Errorf("periodic wrap failed: %d", nb)
			}
		}
		if cart.Coords[1] == 1 {
			if nb := cart.Neighbor(1, 1); nb != -1 {
				t.Errorf("non-periodic boundary returned %d", nb)
			}
		}
	})
}

func TestSharedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.bin")
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		f, err := CreateShared(c, path)
		if err != nil {
			t.Error(err)
			return
		}
		// Each rank writes 8 bytes at its region, like a dump payload.
		buf := make([]byte, 8)
		for i := range buf {
			buf[i] = byte(c.Rank())
		}
		if _, err := f.WriteAt(buf, int64(c.Rank()*8)); err != nil {
			t.Error(err)
		}
		c.Barrier()
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 32 {
		t.Fatalf("file size %d, want 32", len(data))
	}
	for i, b := range data {
		if int(b) != i/8 {
			t.Fatalf("byte %d = %d, want %d", i, b, i/8)
		}
	}
}

func TestDeterministicReduction(t *testing.T) {
	// Rank-ordered reduction must be bit-reproducible across runs even with
	// random arrival order.
	run := func() float64 {
		w := NewWorld(6)
		var result atomic.Value
		w.Run(func(c *Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			x := rng.NormFloat64() * 1e-8
			// Jitter arrival.
			for i := 0; i < rng.Intn(1000); i++ {
				_ = i
			}
			r := c.Allreduce(x, SumOp)
			if c.Rank() == 0 {
				result.Store(r)
			}
		})
		return result.Load().(float64)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("reduction not deterministic: %g vs %g", a, b)
	}
}

func TestAnySource(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				// Source-agnostic receive must match both senders.
				msg := c.Recv(AnySource, 3)
				seen[int(msg[0])] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("AnySource missed a sender: %v", seen)
			}
		} else {
			c.Send(0, 3, []float32{float32(c.Rank())})
		}
	})
}

func TestWaitAll(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			reqs := []*Request{c.Irecv(1, 1), c.Irecv(1, 2), nil}
			WaitAll(reqs)
			if reqs[0].Wait()[0] != 10 || reqs[1].Wait()[0] != 20 {
				t.Error("WaitAll delivered wrong payloads")
			}
		} else {
			c.Send(0, 2, []float32{20})
			c.Send(0, 1, []float32{10})
		}
	})
}
