package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Payload codecs. Every typed send/receive lowers onto one byte envelope;
// float32 slices — the hot ghost-halo path — are reinterpreted in place
// rather than copied, so the inproc transport preserves the original
// by-reference handoff bitwise (sender's backing array arrives at the
// receiver) and the tcp path serializes without a marshaling pass.

// floatsToBytes reinterprets v as its underlying bytes (no copy).
func floatsToBytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

// bytesToFloats reinterprets b as float32s, copying only in the rare case
// of a misaligned buffer. Frames produced by floatsToBytes are always
// 4-aligned (they alias a []float32); freshly read tcp frames are Go heap
// allocations, which are at least 4-byte aligned for any multiple-of-4
// size, so the copy path exists as a guard, not a cost.
func bytesToFloats(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("mpi: %d-byte payload is not a float32 array", len(b)))
	}
	n := len(b) / 4
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		out := make([]float32, n)
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), len(b)), b)
		return out
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

// intsToBytes encodes int64 values little-endian (the wire byte order).
func intsToBytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// bytesToInts decodes a payload written by intsToBytes.
func bytesToInts(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("mpi: %d-byte payload is not an int64 array", len(b)))
	}
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

func f64ToBytes(x float64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(x))
	return out
}

func bytesToF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func i64ToBytes(x int64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(x))
	return out
}

func bytesToI64(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

func f64SliceToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func bytesToF64Slice(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
