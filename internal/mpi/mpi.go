// Package mpi is an in-process message-passing runtime providing the MPI
// subset CUBISM-MPCF uses: non-blocking point-to-point messages, a cartesian
// communicator, allreduce, exclusive prefix sums (for the compressed
// parallel dumps), barriers, and a shared file abstraction with
// write-at-offset semantics.
//
// The paper runs on up to 96 Blue Gene/Q racks with one MPI rank per node.
// This machine has no MPI and no interconnect, so the substrate is
// simulated: ranks are goroutines inside one process and the network is
// replaced by in-memory mailboxes. All ordering and matching semantics
// (source+tag matching, collective call alignment) follow MPI, so the
// cluster layer above is written exactly as it would be against MPI proper;
// only the transport differs.
package mpi

import (
	"fmt"
	"math"
	"sync"
)

// message is one point-to-point payload in flight.
type message struct {
	src, tag int
	data     []float32
}

// mailbox is the per-rank receive queue with source/tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available and removes
// it. src == AnySource matches any sender.
func (m *mailbox) take(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// AnySource matches messages from any rank.
const AnySource = -1

// World owns the communication state of a set of ranks.
type World struct {
	size  int
	boxes []*mailbox

	collMu sync.Mutex
	colls  map[uint64]*collective
	seqs   []uint64
}

// NewWorld creates a world of the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		size:  size,
		colls: make(map[uint64]*collective),
		seqs:  make([]uint64, size),
	}
	for i := 0; i < size; i++ {
		w.boxes = append(w.boxes, newMailbox())
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes body once per rank, each on its own goroutine, and waits for
// all of them. It is the moral equivalent of mpirun.
func (w *World) Run(body func(*Comm)) {
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Request represents an in-flight non-blocking operation. Receive requests
// are lazy: the mailbox is matched on Wait rather than at post time. This
// is indistinguishable from an eager receive in this substrate — sends
// complete by depositing into the receiver's mailbox immediately, so
// progress never depends on a posted receive — and it avoids spawning one
// goroutine plus channel per receive.
type Request struct {
	recv     *Comm // non-nil for receives
	src, tag int
	received bool
	data     []float32
}

// sentRequest is the shared, already-complete request every Isend returns:
// sends in this substrate finish at post time, so there is nothing to wait
// for and nothing worth allocating.
var sentRequest = &Request{received: true}

// Wait blocks until the operation completes and returns the received data
// (nil for sends). Wait may be called multiple times; later calls return
// the same payload.
func (r *Request) Wait() []float32 {
	if !r.received {
		msg := r.recv.world.boxes[r.recv.rank].take(r.src, r.tag)
		r.data = msg.data
		r.received = true
	}
	return r.data
}

// WaitAll waits for every request.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Isend posts a non-blocking send of data to rank dst with the given tag.
// The payload is handed off by reference; the caller must not mutate it
// until the receiver is done with it (the cluster layer double-buffers).
func (c *Comm) Isend(dst, tag int, data []float32) *Request {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: data})
	return sentRequest
}

// Irecv posts a non-blocking receive matching (src, tag). The request must
// be completed with Wait by the posting goroutine.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{recv: c, src: src, tag: tag}
}

// Send is a blocking send.
func (c *Comm) Send(dst, tag int, data []float32) { c.Isend(dst, tag, data).Wait() }

// Recv is a blocking receive.
func (c *Comm) Recv(src, tag int) []float32 {
	msg := c.world.boxes[c.rank].take(src, tag)
	return msg.data
}

// collective is the rendezvous state for one collective call site.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	vals    []float64
	result  float64
	done    bool
}

// coll returns the collective state for this rank's next collective call.
// MPI semantics require all ranks to issue collectives in the same order,
// so the per-rank sequence number lines the calls up.
func (c *Comm) coll() *collective {
	w := c.world
	w.collMu.Lock()
	defer w.collMu.Unlock()
	seq := w.seqs[c.rank]
	w.seqs[c.rank]++
	st, ok := w.colls[seq]
	if !ok {
		st = &collective{vals: make([]float64, w.size)}
		st.cond = sync.NewCond(&st.mu)
		w.colls[seq] = st
	}
	// Garbage-collect completed slots behind the slowest rank occasionally.
	if seq > 64 && seq%64 == 0 {
		low := w.seqs[0]
		for _, s := range w.seqs {
			if s < low {
				low = s
			}
		}
		for k := range w.colls {
			if k+2 < low {
				delete(w.colls, k)
			}
		}
	}
	return st
}

// Op combines two float64 values in a reduction.
type Op func(a, b float64) float64

// MaxOp returns the larger value.
func MaxOp(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinOp returns the smaller value.
func MinOp(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SumOp adds the values.
func SumOp(a, b float64) float64 { return a + b }

// Allreduce combines x across all ranks with op and returns the result to
// every rank. The combination is performed in rank order, so results are
// deterministic (bit-reproducible) run to run.
func (c *Comm) Allreduce(x float64, op Op) float64 {
	st := c.coll()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.vals[c.rank] = x
	st.arrived++
	if st.arrived == c.world.size {
		acc := st.vals[0]
		for i := 1; i < c.world.size; i++ {
			acc = op(acc, st.vals[i])
		}
		st.result = acc
		st.done = true
		st.cond.Broadcast()
	} else {
		for !st.done {
			st.cond.Wait()
		}
	}
	return st.result
}

// Exscan returns the exclusive prefix sum of x over the ranks: rank r gets
// sum of x from ranks < r (0 for rank 0). The compressed dump uses it to
// assign file offsets to variable-size rank buffers (paper §6).
func (c *Comm) Exscan(x int64) int64 {
	st := c.coll()
	st.mu.Lock()
	st.vals[c.rank] = float64(x) // exact for |x| < 2^53, far above dump sizes
	st.arrived++
	if st.arrived == c.world.size {
		st.done = true
		st.cond.Broadcast()
	} else {
		for !st.done {
			st.cond.Wait()
		}
	}
	var sum int64
	for i := 0; i < c.rank; i++ {
		sum += int64(st.vals[i])
	}
	st.mu.Unlock()
	return sum
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() { c.Allreduce(0, SumOp) }

// Gather collects one float64 per rank on every rank (an allgather).
func (c *Comm) Gather(x float64) []float64 {
	st := c.coll()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.vals[c.rank] = x
	st.arrived++
	if st.arrived == c.world.size {
		st.done = true
		st.cond.Broadcast()
	} else {
		for !st.done {
			st.cond.Wait()
		}
	}
	out := make([]float64, c.world.size)
	copy(out, st.vals)
	return out
}

// SendInts transmits int64 values bit-exactly by packing each into two
// float32 bit patterns (the message payload type of this substrate).
func (c *Comm) SendInts(dst, tag int, v []int64) {
	data := make([]float32, 2*len(v))
	for i, x := range v {
		data[2*i] = math.Float32frombits(uint32(uint64(x) >> 32))
		data[2*i+1] = math.Float32frombits(uint32(uint64(x)))
	}
	c.Send(dst, tag, data)
}

// RecvInts receives a message sent with SendInts.
func (c *Comm) RecvInts(src, tag int) []int64 {
	data := c.Recv(src, tag)
	v := make([]int64, len(data)/2)
	for i := range v {
		hi := uint64(math.Float32bits(data[2*i]))
		lo := uint64(math.Float32bits(data[2*i+1]))
		v[i] = int64(hi<<32 | lo)
	}
	return v
}
