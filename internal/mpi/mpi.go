// Package mpi is a message-passing runtime providing the MPI subset
// CUBISM-MPCF uses: non-blocking point-to-point messages, a cartesian
// communicator, allreduce, exclusive prefix sums (for the compressed
// parallel dumps), barriers, and a shared file abstraction with
// write-at-offset semantics.
//
// The paper runs on up to 96 Blue Gene/Q racks with one MPI rank per node.
// Here the matching/collective semantics live in this package while the
// wire itself is pluggable (internal/transport): the default inproc
// transport runs every rank as a goroutine in one process with by-reference
// payload handoff (bitwise identical to the original substrate), and the
// tcp transport shards ranks across OS processes with length-prefixed
// frames (ConnectTCP). All ordering and matching semantics (source+tag
// matching, collective call alignment) follow MPI, so the cluster layer
// above is written exactly as it would be against MPI proper.
package mpi

import (
	"fmt"
	"sync"

	"cubism/internal/transport"
)

// message is one point-to-point payload in flight.
type message struct {
	src, tag int
	data     []byte
}

// mailbox is the per-rank receive queue with source/tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	err     error // poisoned: the wire failed, blocked takes must not hang
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver is the transport.Handler for this rank.
func (m *mailbox) deliver(src, tag int, payload []byte) {
	m.mu.Lock()
	m.pending = append(m.pending, message{src: src, tag: tag, data: payload})
	m.mu.Unlock()
	m.cond.Broadcast()
}

// poison marks the mailbox dead: every blocked and future take panics with
// the wire failure instead of waiting forever for a message that cannot
// arrive. Escalation (checkpoint-restart guidance, process exit) happens in
// the World.OnError path; poisoning just guarantees no rank hangs.
func (m *mailbox) poison(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available and removes
// it. src == AnySource matches any sender. Matching is FIFO per (src, tag).
// take panics if the mailbox is poisoned by an unrecoverable wire failure.
func (m *mailbox) take(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		if m.err != nil {
			panic(fmt.Sprintf("mpi: receive (src=%d tag=%#x) aborted: %v", src, tag, m.err))
		}
		m.cond.Wait()
	}
}

// AnySource matches messages from any rank.
const AnySource = -1

// World owns the communication state of a set of ranks. An in-process
// world (NewWorld) holds every rank; a distributed world (ConnectTCP)
// holds exactly one local rank, with the rest living in peer processes.
type World struct {
	size  int
	local int // local rank in a distributed world; -1 when all ranks are in-process

	boxes []*mailbox           // nil at remote ranks
	eps   []transport.Endpoint // nil at remote ranks

	closeErr error
}

// NewWorld creates an in-process world of the given number of ranks on the
// inproc transport.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		size:  size,
		local: -1,
		boxes: make([]*mailbox, size),
		eps:   make([]transport.Endpoint, size),
	}
	hub := transport.NewHub(size)
	for r := 0; r < size; r++ {
		w.boxes[r] = newMailbox()
		w.eps[r] = hub.Endpoint(r, w.boxes[r].deliver)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Distributed reports whether this world holds only one local rank of a
// multi-process run.
func (w *World) Distributed() bool { return w.local >= 0 }

// LocalRank returns the local rank of a distributed world (-1 in-process).
func (w *World) LocalRank() int { return w.local }

// Err returns the error, if any, from the distributed shutdown handshake
// after Run has returned.
func (w *World) Err() error { return w.closeErr }

// Run executes body once per local rank and waits. In-process it is the
// moral equivalent of mpirun: one goroutine per rank. In a distributed
// world it runs body for the single local rank, then performs a barrier
// (so no rank tears the wire down while peers still depend on it) and the
// graceful transport close; any close error is available via Err.
func (w *World) Run(body func(*Comm)) {
	if w.Distributed() {
		c := &Comm{world: w, rank: w.local}
		body(c)
		c.Barrier()
		w.closeErr = w.eps[w.local].Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world. A Comm belongs to the rank's
// main goroutine (as in MPI, where a rank issues its own calls); it must
// not be shared across goroutines.
type Comm struct {
	world   *World
	rank    int
	collSeq uint64
	tagSeen map[uint64]struct{} // send-side (dst,tag) dedup, only when tag checking is on
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Request represents an in-flight non-blocking operation. Receive requests
// are lazy: the mailbox is matched on Wait rather than at post time. This
// is indistinguishable from an eager receive in this substrate — sends
// complete at post time (inproc: deposited in the receiver's mailbox; tcp:
// enqueued on the peer's write loop), so progress never depends on a
// posted receive — and it avoids spawning one goroutine plus channel per
// receive.
type Request struct {
	recv     *Comm // non-nil for receives
	src, tag int
	received bool
	data     []byte
}

// sentRequest is the shared, already-complete request every Isend returns:
// sends in this substrate finish at post time, so there is nothing to wait
// for and nothing worth allocating.
var sentRequest = &Request{received: true}

// Wait blocks until the operation completes and returns the received data
// as float32s (nil for sends). Wait may be called multiple times; later
// calls return the same payload.
func (r *Request) Wait() []float32 {
	return bytesToFloats(r.WaitBytes())
}

// WaitBytes blocks until the operation completes and returns the raw
// payload bytes (nil for sends).
func (r *Request) WaitBytes() []byte {
	if !r.received {
		msg := r.recv.world.boxes[r.recv.rank].take(r.src, r.tag)
		r.data = msg.data
		r.received = true
	}
	return r.data
}

// WaitAll waits for every request.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// IsendBytes posts a non-blocking send of raw bytes to rank dst with the
// given tag — the single generic envelope every typed send lowers onto.
// The payload is handed off by reference; the caller must not mutate it
// until the receiver is done with it (the cluster layer double-buffers).
func (c *Comm) IsendBytes(dst, tag int, payload []byte) *Request {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	c.checkTag(dst, tag)
	if err := c.world.eps[c.rank].Send(dst, tag, payload); err != nil {
		panic(fmt.Sprintf("mpi: rank %d send to %d tag %#x: %v", c.rank, dst, tag, err))
	}
	return sentRequest
}

// Isend posts a non-blocking send of float32 data (by reference, see
// IsendBytes).
func (c *Comm) Isend(dst, tag int, data []float32) *Request {
	return c.IsendBytes(dst, tag, floatsToBytes(data))
}

// Irecv posts a non-blocking receive matching (src, tag). The request must
// be completed with Wait/WaitBytes by the posting goroutine.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{recv: c, src: src, tag: tag}
}

// Send is a blocking send of float32 data.
func (c *Comm) Send(dst, tag int, data []float32) { c.Isend(dst, tag, data).Wait() }

// SendBytes is a blocking send of raw bytes.
func (c *Comm) SendBytes(dst, tag int, payload []byte) { c.IsendBytes(dst, tag, payload).Wait() }

// Recv is a blocking receive returning float32 data.
func (c *Comm) Recv(src, tag int) []float32 { return bytesToFloats(c.RecvBytes(src, tag)) }

// RecvBytes is a blocking receive returning the raw payload bytes.
func (c *Comm) RecvBytes(src, tag int) []byte {
	return c.world.boxes[c.rank].take(src, tag).data
}

// SendInts transmits int64 values bit-exactly over the byte envelope.
func (c *Comm) SendInts(dst, tag int, v []int64) { c.SendBytes(dst, tag, intsToBytes(v)) }

// RecvInts receives a message sent with SendInts.
func (c *Comm) RecvInts(src, tag int) []int64 { return bytesToInts(c.RecvBytes(src, tag)) }

// Op combines two float64 values in a reduction.
type Op func(a, b float64) float64

// MaxOp returns the larger value.
func MaxOp(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinOp returns the smaller value.
func MinOp(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SumOp adds the values.
func SumOp(a, b float64) float64 { return a + b }

// nextCollTag returns the tag for this rank's next collective call. MPI
// semantics require all ranks to issue collectives in the same order, so
// the per-rank sequence number lines the calls up; it is carried in the
// tag's low bits so a fast rank's next-collective message sitting in rank
// 0's mailbox cannot be matched by the current one. Ranks drift by at most
// one collective (rank 0 answers call k only after every rank reached k),
// so the 16-bit wrap is collision-free.
func (c *Comm) nextCollTag() int {
	tag := TagColl(c.collSeq)
	c.collSeq++
	return tag
}

// Allreduce combines x across all ranks with op and returns the result to
// every rank. Rank 0 is the reduction root: it receives contributions in
// ascending rank order and folds them in that order, so results are
// deterministic (bit-reproducible) run to run and across transports.
func (c *Comm) Allreduce(x float64, op Op) float64 {
	tag := c.nextCollTag()
	size := c.world.size
	if size == 1 {
		return x
	}
	if c.rank == 0 {
		acc := x
		for r := 1; r < size; r++ {
			acc = op(acc, bytesToF64(c.RecvBytes(r, tag)))
		}
		out := f64ToBytes(acc)
		for r := 1; r < size; r++ {
			c.SendBytes(r, tag, out)
		}
		return acc
	}
	c.SendBytes(0, tag, f64ToBytes(x))
	return bytesToF64(c.RecvBytes(0, tag))
}

// Exscan returns the exclusive prefix sum of x over the ranks: rank r gets
// the sum of x from ranks < r (0 for rank 0). The compressed dump uses it
// to assign file offsets to variable-size rank buffers (paper §6).
func (c *Comm) Exscan(x int64) int64 {
	tag := c.nextCollTag()
	size := c.world.size
	if size == 1 {
		return 0
	}
	if c.rank == 0 {
		prefix := x // running sum of ranks < r, for each r ≥ 1 in turn
		for r := 1; r < size; r++ {
			xr := bytesToI64(c.RecvBytes(r, tag))
			c.SendBytes(r, tag, i64ToBytes(prefix))
			prefix += xr
		}
		return 0
	}
	c.SendBytes(0, tag, i64ToBytes(x))
	return bytesToI64(c.RecvBytes(0, tag))
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() { c.Allreduce(0, SumOp) }

// GatherBytesRoot collects each rank's variable-length payload on rank 0,
// in ascending rank order. Rank 0 returns one slice per rank (its own
// payload at index 0, by reference); other ranks return nil. Collective:
// all ranks must call it in matching order.
func (c *Comm) GatherBytesRoot(payload []byte) [][]byte {
	tag := c.nextCollTag()
	size := c.world.size
	if c.rank == 0 {
		out := make([][]byte, size)
		out[0] = payload
		for r := 1; r < size; r++ {
			out[r] = c.RecvBytes(r, tag)
		}
		return out
	}
	c.SendBytes(0, tag, payload)
	return nil
}

// BcastBytes distributes rank 0's payload to every rank (rank 0 passes the
// payload, others pass nil and receive a copy by reference). Collective.
func (c *Comm) BcastBytes(payload []byte) []byte {
	tag := c.nextCollTag()
	size := c.world.size
	if c.rank == 0 {
		for r := 1; r < size; r++ {
			c.SendBytes(r, tag, payload)
		}
		return payload
	}
	return c.RecvBytes(0, tag)
}

// Gather collects one float64 per rank on every rank (an allgather).
func (c *Comm) Gather(x float64) []float64 {
	tag := c.nextCollTag()
	size := c.world.size
	if c.rank == 0 {
		out := make([]float64, size)
		out[0] = x
		for r := 1; r < size; r++ {
			out[r] = bytesToF64(c.RecvBytes(r, tag))
		}
		if size > 1 {
			buf := f64SliceToBytes(out)
			for r := 1; r < size; r++ {
				c.SendBytes(r, tag, buf)
			}
		}
		return out
	}
	c.SendBytes(0, tag, f64ToBytes(x))
	return bytesToF64Slice(c.RecvBytes(0, tag))
}
