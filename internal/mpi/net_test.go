package mpi

import (
	"net"
	"sync"
	"testing"
)

// runWorlds executes body on a freshly built world for each transport under
// test and reports failures per transport: "inproc" is a size-rank
// in-process world, "tcp" is size single-rank worlds in this process meshed
// over a loopback socket pair — the same wiring mpcf-launch produces across
// processes, minus the fork.
func runWorlds(t *testing.T, size int, body func(c *Comm)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) {
		NewWorld(size).Run(body)
	})
	t.Run("tcp", func(t *testing.T) {
		worlds, errs := tcpWorlds(t, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				worlds[r].Run(body)
				errs[r] = worlds[r].Err()
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d world: %v", r, err)
			}
		}
	})
}

// tcpWorlds connects size single-rank TCP worlds over loopback with a
// pre-bound coordinator listener (no guessed ports).
func tcpWorlds(t *testing.T, size int) ([]*World, []error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*World, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := TCPConfig{
				Rank: rank, Size: size, Coord: coord,
				OnError: func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], errs[rank] = ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	return worlds, errs
}

func TestCollectivesSizeOne(t *testing.T) {
	runWorlds(t, 1, func(c *Comm) {
		if got := c.Allreduce(3.5, SumOp); got != 3.5 {
			t.Errorf("Allreduce at size 1 = %v, want 3.5", got)
		}
		if got := c.Exscan(7); got != 0 {
			t.Errorf("Exscan at size 1 = %d, want 0", got)
		}
		c.Barrier() // must not deadlock with no peers
		if got := c.Gather(2.25); len(got) != 1 || got[0] != 2.25 {
			t.Errorf("Gather at size 1 = %v, want [2.25]", got)
		}
	})
}

func TestCollectivesSizeTwo(t *testing.T) {
	runWorlds(t, 2, func(c *Comm) {
		x := float64(c.Rank() + 1) // rank 0 -> 1, rank 1 -> 2
		if got := c.Allreduce(x, SumOp); got != 3 {
			t.Errorf("rank %d: Allreduce sum = %v, want 3", c.Rank(), got)
		}
		if got := c.Allreduce(x, MaxOp); got != 2 {
			t.Errorf("rank %d: Allreduce max = %v, want 2", c.Rank(), got)
		}
		want := int64(0)
		if c.Rank() == 1 {
			want = 10
		}
		if got := c.Exscan(int64(10 * (c.Rank() + 1))); got != want {
			t.Errorf("rank %d: Exscan = %d, want %d", c.Rank(), got, want)
		}
		c.Barrier()
		g := c.Gather(x)
		if len(g) != 2 || g[0] != 1 || g[1] != 2 {
			t.Errorf("rank %d: Gather = %v, want [1 2]", c.Rank(), g)
		}
	})
}

func TestPointToPointBothTransports(t *testing.T) {
	runWorlds(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, TagStream(1), []float32{1.5, -2.5, 3.25})
			got := c.Recv(1, TagStream(2))
			if len(got) != 2 || got[0] != 9 || got[1] != 10 {
				t.Errorf("rank 0 received %v", got)
			}
			c.SendInts(1, TagStream(3), []int64{-7, 1 << 40})
		case 1:
			got := c.Recv(0, TagStream(1))
			if len(got) != 3 || got[0] != 1.5 || got[1] != -2.5 || got[2] != 3.25 {
				t.Errorf("rank 1 received %v", got)
			}
			c.Send(0, TagStream(2), []float32{9, 10})
			ints := c.RecvInts(0, TagStream(3))
			if len(ints) != 2 || ints[0] != -7 || ints[1] != 1<<40 {
				t.Errorf("rank 1 received ints %v", ints)
			}
		}
	})
}

func TestDistributedWorldIdentity(t *testing.T) {
	worlds, _ := tcpWorlds(t, 2)
	if !worlds[0].Distributed() || worlds[0].LocalRank() != 0 {
		t.Fatalf("world 0: Distributed=%v LocalRank=%d", worlds[0].Distributed(), worlds[0].LocalRank())
	}
	if worlds[1].LocalRank() != 1 {
		t.Fatalf("world 1: LocalRank=%d", worlds[1].LocalRank())
	}
	if w := NewWorld(2); w.Distributed() {
		t.Fatal("in-process world claims to be distributed")
	}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r].Run(func(c *Comm) {
				if c.Rank() != r || c.Size() != 2 {
					t.Errorf("world %d body saw rank=%d size=%d", r, c.Rank(), c.Size())
				}
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if err := worlds[r].Err(); err != nil {
			t.Fatalf("rank %d close: %v", r, err)
		}
	}
}

func TestTagReusePanics(t *testing.T) {
	SetTagCheck(true)
	defer SetTagCheck(false)
	var panicked [2]bool
	NewWorld(2).Run(func(c *Comm) {
		if c.Rank() == 1 {
			// Drain both sends so rank 0 isn't wedged if the panic is missed.
			c.Recv(0, TagStream(5))
			return
		}
		defer func() {
			if recover() != nil {
				panicked[0] = true
			}
		}()
		c.Send(1, TagStream(5), []float32{1})
		c.Send(1, TagStream(5), []float32{2}) // same (dst, tag) in one epoch
	})
	if !panicked[0] {
		t.Fatal("reusing a tag within an epoch did not panic with tag checking on")
	}
}

func TestTagEpochResetAllowsReuse(t *testing.T) {
	SetTagCheck(true)
	defer SetTagCheck(false)
	NewWorld(2).Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, TagStream(5))
			c.Recv(0, TagStream(5))
			return
		}
		c.Send(1, TagStream(5), []float32{1})
		c.BeginTagEpoch() // a halo cycle boundary: reuse is legal again
		c.Send(1, TagStream(5), []float32{2})
	})
}

func TestCollTagsExemptFromReuseCheck(t *testing.T) {
	SetTagCheck(true)
	defer SetTagCheck(false)
	// Collective seq tags wrap at 16 bits; they carry their own ordering
	// proof and must never trip the reuse assertion.
	NewWorld(2).Run(func(c *Comm) {
		for i := 0; i < 3; i++ {
			if got := c.Allreduce(1, SumOp); got != 2 {
				t.Errorf("Allreduce = %v, want 2", got)
			}
		}
	})
}
