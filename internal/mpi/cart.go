package mpi

import "fmt"

// Cart is a 3D cartesian communicator: it embeds the rank's communicator
// and adds the coordinate topology used for the domain decomposition
// ("the computational domain is decomposed into subdomains across the ranks
// in a cartesian topology with a constant subdomain size", paper §6).
type Cart struct {
	*Comm
	Dims     [3]int
	Periodic [3]bool
	Coords   [3]int
}

// NewCart builds the cartesian view of comm. The product of dims must equal
// the world size. Ranks map to coordinates x-fastest.
func NewCart(comm *Comm, dims [3]int, periodic [3]bool) *Cart {
	if dims[0]*dims[1]*dims[2] != comm.Size() {
		panic(fmt.Sprintf("mpi: cartesian dims %v incompatible with world size %d", dims, comm.Size()))
	}
	r := comm.Rank()
	return &Cart{
		Comm:     comm,
		Dims:     dims,
		Periodic: periodic,
		Coords:   [3]int{r % dims[0], (r / dims[0]) % dims[1], r / (dims[0] * dims[1])},
	}
}

// RankOf returns the rank at the given coordinates, or -1 when the
// coordinates fall outside a non-periodic boundary.
func (c *Cart) RankOf(x, y, z int) int {
	co := [3]int{x, y, z}
	for a := 0; a < 3; a++ {
		if co[a] < 0 || co[a] >= c.Dims[a] {
			if !c.Periodic[a] {
				return -1
			}
			co[a] = (co[a]%c.Dims[a] + c.Dims[a]) % c.Dims[a]
		}
	}
	return (co[2]*c.Dims[1]+co[1])*c.Dims[0] + co[0]
}

// Neighbor returns the rank adjacent along axis in direction dir (-1 or +1),
// or -1 at a non-periodic boundary.
func (c *Cart) Neighbor(axis, dir int) int {
	co := c.Coords
	co[axis] += dir
	return c.RankOf(co[0], co[1], co[2])
}
