package mpi

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosTCPWorlds is tcpWorlds with fast failure detection and an error
// capture channel instead of t.Errorf (these tests WANT wire failures).
func chaosTCPWorlds(t *testing.T, size int, errCh chan error) []*World {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*World, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := TCPConfig{
				Rank: rank, Size: size, Coord: coord,
				HeartbeatInterval: 50 * time.Millisecond,
				PeerTimeout:       time.Second,
				MaxReconnect:      2,
				OnError: func(err error) {
					select {
					case errCh <- err:
					default:
					}
				},
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], errs[rank] = ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	return worlds
}

// TestRecvPanicsWhenPeerDies is the rank-failure escalation contract at the
// mpi layer: when a peer crashes (no FIN, listener gone), a receive blocked
// on it must not hang forever — the wire failure poisons the local mailbox
// and the Recv panics with the failure, after OnError has fired.
func TestRecvPanicsWhenPeerDies(t *testing.T) {
	errCh := make(chan error, 4)
	worlds := chaosTCPWorlds(t, 2, errCh)

	recvDone := make(chan interface{}, 1)
	go func() {
		// The recover wraps Run itself: the poisoned-mailbox panic from the
		// blocked Recv must propagate out (Run's closing barrier would
		// deadlock against a dead peer anyway).
		defer func() { recvDone <- recover() }()
		worlds[0].Run(func(c *Comm) {
			c.Recv(1, TagStream(9)) // blocks: rank 1 never sends, then dies
		})
	}()
	// Give the receive time to block, then crash rank 1 without a FIN.
	time.Sleep(100 * time.Millisecond)
	worlds[1].eps[1].(interface{ Abort() }).Abort()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("OnError delivered nil")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("peer crash never surfaced through OnError")
	}
	select {
	case v := <-recvDone:
		if v == nil {
			t.Fatal("blocked Recv returned normally from a dead peer")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, "aborted") {
			t.Fatalf("Recv panic %v does not carry the wire failure", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("blocked Recv still hanging after the peer was declared dead")
	}
	_ = worlds[0].eps[0].Close()
}
