package mpi

import (
	"os"
	"sync"
)

// File is the parallel-I/O abstraction: all ranks write disjoint regions of
// one shared file at explicit offsets, the pattern MPI parallel file I/O
// gives CUBISM-MPCF ("the I/O write collective operation is preceded by an
// exclusive prefix sum; after the scan, each rank acquires a destination
// offset and ... writes its compressed buffer in the file", paper §6).
//
// Ranks share one *os.File; WriteAt on distinct regions is safe
// concurrently, so the simulated transport adds only open/close rendezvous.
type File struct {
	mu   sync.Mutex
	f    *os.File
	refs int
}

// fileRegistry deduplicates opens of the same path within a world.
var (
	fileMu  sync.Mutex
	fileReg = map[string]*File{}
)

// CreateShared opens (creating/truncating on first open) path as a shared
// file. Every rank must call it; the first call creates, the rest attach.
func CreateShared(path string) (*File, error) {
	fileMu.Lock()
	defer fileMu.Unlock()
	if sf, ok := fileReg[path]; ok {
		sf.mu.Lock()
		sf.refs++
		sf.mu.Unlock()
		return sf, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sf := &File{f: f, refs: 1}
	fileReg[path] = sf
	return sf, nil
}

// WriteAt writes data at the given byte offset.
func (sf *File) WriteAt(data []byte, off int64) (int, error) {
	return sf.f.WriteAt(data, off)
}

// Close detaches; the underlying file closes when every rank has closed.
func (sf *File) Close() error {
	sf.mu.Lock()
	sf.refs--
	last := sf.refs == 0
	sf.mu.Unlock()
	if !last {
		return nil
	}
	fileMu.Lock()
	for p, f := range fileReg {
		if f == sf {
			delete(fileReg, p)
		}
	}
	fileMu.Unlock()
	return sf.f.Close()
}
