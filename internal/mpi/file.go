package mpi

import (
	"fmt"
	"os"
	"sync"
)

// File is the parallel-I/O abstraction: all ranks write disjoint regions of
// one shared file at explicit offsets, the pattern MPI parallel file I/O
// gives CUBISM-MPCF ("the I/O write collective operation is preceded by an
// exclusive prefix sum; after the scan, each rank acquires a destination
// offset and ... writes its compressed buffer in the file", paper §6).
//
// In-process, ranks share one *os.File (WriteAt on distinct regions is
// safe concurrently), refcounted so the file closes when the last rank
// closes. Distributed, every process holds its own descriptor on the same
// path: rank 0 creates/truncates, a barrier orders the rest behind it, and
// they open without truncation.
type File struct {
	f      *os.File
	refs   int
	shared bool // registered in fileReg (in-process mode)
	refsMu sync.Mutex
}

// fileRegistry deduplicates opens of the same path within an in-process
// world.
var (
	fileMu  sync.Mutex
	fileReg = map[string]*File{}
)

// CreateShared opens (creating/truncating) path as a shared file across
// the world's ranks. Every rank must call it collectively.
func CreateShared(c *Comm, path string) (*File, error) {
	if c.world.Distributed() {
		return createSharedDistributed(c, path)
	}
	fileMu.Lock()
	defer fileMu.Unlock()
	if sf, ok := fileReg[path]; ok {
		sf.refsMu.Lock()
		sf.refs++
		sf.refsMu.Unlock()
		return sf, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sf := &File{f: f, refs: 1, shared: true}
	fileReg[path] = sf
	return sf, nil
}

// createSharedDistributed orders the truncating create on rank 0 before
// every other rank's non-truncating open. The error flag travels through
// the barrier allreduce so a failed create aborts all ranks coherently
// instead of letting them write into a file that was never created.
func createSharedDistributed(c *Comm, path string) (*File, error) {
	var f *os.File
	var err error
	if c.rank == 0 {
		f, err = os.Create(path)
	}
	flag := 0.0
	if err != nil {
		flag = 1.0
	}
	if c.Allreduce(flag, MaxOp) != 0 {
		if f != nil {
			f.Close()
		}
		if err == nil {
			err = fmt.Errorf("mpi: shared create of %s failed on rank 0", path)
		}
		return nil, err
	}
	if c.rank != 0 {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
	}
	return &File{f: f, refs: 1}, nil
}

// WriteAt writes data at the given byte offset.
func (sf *File) WriteAt(data []byte, off int64) (int, error) {
	return sf.f.WriteAt(data, off)
}

// Close detaches; the underlying file closes when every local rank has
// closed (distributed ranks each own their descriptor).
func (sf *File) Close() error {
	sf.refsMu.Lock()
	sf.refs--
	last := sf.refs == 0
	sf.refsMu.Unlock()
	if !last {
		return nil
	}
	if sf.shared {
		fileMu.Lock()
		for p, f := range fileReg {
			if f == sf {
				delete(fileReg, p)
			}
		}
		fileMu.Unlock()
	}
	return sf.f.Close()
}
