package mpi

import (
	"fmt"
	"net"
	"os"
	"time"

	"cubism/internal/telemetry"
	"cubism/internal/transport"
)

// TCPConfig configures one process's attachment to a distributed world
// over the tcp transport. Zero-valued durations and sizes take the
// transport defaults (see transport.TCPOptions).
type TCPConfig struct {
	Rank   int    // this process's rank in [0, Size)
	Size   int    // world size (number of processes)
	Coord  string // rendezvous coordinator address; rank 0 listens on it
	Listen string // data listener bind address ("" = any port, loopback advertised)

	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	CloseTimeout time.Duration

	MaxFrame  int
	SendQueue int

	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	// CoordListener, when non-nil on rank 0, is a pre-bound rendezvous
	// listener (lets a launcher pick a free port without a bind race).
	CoordListener net.Listener

	// OnError observes asynchronous wire failures. When nil, a failure
	// crashes the process: a rank whose peer link broke cannot make
	// progress (pending receives would hang forever), and MPI's own
	// convention is to abort the job.
	OnError func(error)
}

// ConnectTCP joins (or, for rank 0, convenes) a distributed world: it
// performs the rendezvous, builds the full peer mesh and returns a World
// holding this process's single local rank. The returned world's Run
// executes the body once, then barriers and closes the wire gracefully.
func ConnectTCP(cfg TCPConfig) (*World, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: invalid rank %d of %d", cfg.Rank, cfg.Size)
	}
	w := &World{
		size:  cfg.Size,
		local: cfg.Rank,
		boxes: make([]*mailbox, cfg.Size),
		eps:   make([]transport.Endpoint, cfg.Size),
	}
	w.boxes[cfg.Rank] = newMailbox()
	onErr := cfg.OnError
	if onErr == nil {
		onErr = func(err error) {
			fmt.Fprintf(os.Stderr, "mpi: fatal wire failure: %v\n", err)
			os.Exit(3)
		}
	}
	ep, err := transport.DialTCP(transport.TCPOptions{
		Rank:          cfg.Rank,
		Size:          cfg.Size,
		Coord:         cfg.Coord,
		Listen:        cfg.Listen,
		DialTimeout:   cfg.DialTimeout,
		ReadTimeout:   cfg.ReadTimeout,
		WriteTimeout:  cfg.WriteTimeout,
		CloseTimeout:  cfg.CloseTimeout,
		MaxFrame:      cfg.MaxFrame,
		SendQueue:     cfg.SendQueue,
		Registry:      cfg.Registry,
		Tracer:        cfg.Tracer,
		CoordListener: cfg.CoordListener,
		OnError:       onErr,
	}, w.boxes[cfg.Rank].deliver)
	if err != nil {
		return nil, err
	}
	w.eps[cfg.Rank] = ep
	return w, nil
}
