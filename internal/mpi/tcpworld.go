package mpi

import (
	"fmt"
	"net"
	"os"
	"time"

	"cubism/internal/telemetry"
	"cubism/internal/transport"
)

// TCPConfig configures one process's attachment to a distributed world
// over the tcp transport. Zero-valued durations and sizes take the
// transport defaults (see transport.TCPOptions).
type TCPConfig struct {
	Rank   int    // this process's rank in [0, Size)
	Size   int    // world size (number of processes)
	Coord  string // rendezvous coordinator address; rank 0 listens on it
	Listen string // data listener bind address ("" = any port, loopback advertised)

	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	CloseTimeout time.Duration

	MaxFrame  int
	SendQueue int

	// Robustness knobs, forwarded to the transport (zero = transport
	// defaults; see transport.TCPOptions and docs/networking.md):
	// heartbeat cadence on idle links, the failure-detection horizon for a
	// silent or unreachable peer, the ack-stall bound that triggers a
	// reconnect, the per-episode reconnect attempt cap, and the resend
	// window depth.
	HeartbeatInterval time.Duration
	PeerTimeout       time.Duration
	RetransmitTimeout time.Duration
	MaxReconnect      int
	ResendQueue       int

	// Fault, when non-nil, injects wire faults on outgoing data frames
	// (chaos testing; see transport.FaultInjector and internal/transport/faulty).
	Fault transport.FaultInjector

	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	// CoordListener, when non-nil on rank 0, is a pre-bound rendezvous
	// listener (lets a launcher pick a free port without a bind race).
	CoordListener net.Listener

	// OnError observes unrecoverable wire failures — a peer that stayed
	// unreachable past PeerTimeout despite reconnect attempts (transient
	// faults are recovered inside the transport and never surface here).
	// Whether or not it is set, the local mailbox is poisoned first, so
	// blocked receives panic with the failure instead of hanging forever.
	// When nil, the failure then crashes the process with exit code 3 and
	// checkpoint-restart guidance: a rank whose peer is gone cannot make
	// progress, and MPI's own convention is to abort the job.
	OnError func(error)
}

// ConnectTCP joins (or, for rank 0, convenes) a distributed world: it
// performs the rendezvous, builds the full peer mesh and returns a World
// holding this process's single local rank. The returned world's Run
// executes the body once, then barriers and closes the wire gracefully.
func ConnectTCP(cfg TCPConfig) (*World, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: invalid rank %d of %d", cfg.Rank, cfg.Size)
	}
	w := &World{
		size:  cfg.Size,
		local: cfg.Rank,
		boxes: make([]*mailbox, cfg.Size),
		eps:   make([]transport.Endpoint, cfg.Size),
	}
	box := newMailbox()
	w.boxes[cfg.Rank] = box
	userErr := cfg.OnError
	onErr := func(err error) {
		// Poison first: any receive blocked on the dead peer panics with
		// the failure instead of hanging, whatever the handler does next.
		box.poison(err)
		if userErr != nil {
			userErr(err)
			return
		}
		fmt.Fprintf(os.Stderr,
			"mpi: fatal wire failure: %v\nmpi: rank %d aborting; restart the job from the last checkpoint (mpcf-sim -restore <checkpoint.bin>)\n",
			err, cfg.Rank)
		os.Exit(3)
	}
	ep, err := transport.DialTCP(transport.TCPOptions{
		Rank:              cfg.Rank,
		Size:              cfg.Size,
		Coord:             cfg.Coord,
		Listen:            cfg.Listen,
		DialTimeout:       cfg.DialTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		CloseTimeout:      cfg.CloseTimeout,
		MaxFrame:          cfg.MaxFrame,
		SendQueue:         cfg.SendQueue,
		HeartbeatInterval: cfg.HeartbeatInterval,
		PeerTimeout:       cfg.PeerTimeout,
		RetransmitTimeout: cfg.RetransmitTimeout,
		MaxReconnect:      cfg.MaxReconnect,
		ResendQueue:       cfg.ResendQueue,
		Fault:             cfg.Fault,
		Registry:          cfg.Registry,
		Tracer:            cfg.Tracer,
		CoordListener:     cfg.CoordListener,
		OnError:           onErr,
	}, box.deliver)
	if err != nil {
		return nil, err
	}
	w.eps[cfg.Rank] = ep
	return w, nil
}
