package mpi

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Tag namespaces. Collectives, ghost exchange and the dump streams used to
// share one flat integer tag space, which worked only because the literal
// constants happened not to collide — a latent bug the moment a new
// subsystem picked an overlapping number. Tags now carry their class in
// the high byte (below transport.TagReserved = 0xFF000000, which the
// transport keeps for control frames), with class-specific payload bits
// beneath:
//
//	ghost:   0x01 | stage | face  (stage in bits 8..15, face in bits 0..7)
//	coll:    0x02 | seq&0xFFFF    (per-rank collective sequence number)
//	stream:  0x03 | n             (dump stream channel n)
//	ghostB:  0x04 | block | face | stage  (per-block halo messages of the
//	         layout-general exchange: block id in bits 5..23, face in bits
//	         2..4, RK stage in bits 0..1)
//	migrate: 0x05 | block         (whole-block state transfers during a
//	         rebalance, outside any halo epoch)
//	dump:    0x06 | seq | part    (compressed-frame streaming to the sink
//	         rank: frame sequence in bits 8..23, part in bits 0..7 with
//	         part 0 the metadata message and 1..255 the payload chunks)
const (
	classGhost   = 0x01 << 24
	classColl    = 0x02 << 24
	classStream  = 0x03 << 24
	classGhostB  = 0x04 << 24
	classMigrate = 0x05 << 24
	classDump    = 0x06 << 24

	classMask = 0xFF << 24
)

// TagGhost returns the tag for the ghost-halo message crossing the given
// face at the given RK stage.
func TagGhost(face, stage int) int {
	if face < 0 || face > 0xFF || stage < 0 || stage > 0xFF {
		panic(fmt.Sprintf("mpi: ghost tag out of range (face %d, stage %d)", face, stage))
	}
	return classGhost | stage<<8 | face
}

// TagGhostBlock returns the tag of the halo message feeding the given face
// of the given block (canonical linear id) at the given RK stage — the
// per-block generalization of TagGhost for layouts where a rank exchanges
// several blocks with the same peer across one face direction. The block id
// is bounded at 2^19 global blocks (production: 32³ = 2^15).
func TagGhostBlock(block int64, face, stage int) int {
	if block < 0 || block >= 1<<19 || face < 0 || face > 5 || stage < 0 || stage > 3 {
		panic(fmt.Sprintf("mpi: ghost block tag out of range (block %d, face %d, stage %d)", block, face, stage))
	}
	return classGhostB | int(block)<<5 | face<<2 | stage
}

// TagMigrate returns the tag carrying the full state of the given block
// (canonical linear id) from its old owner to its new one during a layout
// rebalance. Migration happens between halo epochs, so the namespace only
// needs to be unique per block.
func TagMigrate(block int64) int {
	if block < 0 || block >= 1<<24 {
		panic(fmt.Sprintf("mpi: migrate tag out of range (block %d)", block))
	}
	return classMigrate | int(block)
}

// MaxDumpParts bounds the payload chunk count of one streamed frame.
const MaxDumpParts = 0xFF

// TagDump returns the tag of one message of streamed compressed frame seq
// (wrapped to 16 bits): part 0 carries the rank's metadata, parts 1..255
// the payload chunks. The sequence number keeps successive frames on
// distinct (dst, tag) pairs even when several quantities dump in the same
// tag epoch.
func TagDump(seq, part int) int {
	if part < 0 || part > MaxDumpParts {
		panic(fmt.Sprintf("mpi: dump part out of range (%d)", part))
	}
	return classDump | (seq&0xFFFF)<<8 | part
}

// TagStream returns the tag for dump stream channel n.
func TagStream(n int) int {
	if n < 0 || n > 0xFFFF {
		panic(fmt.Sprintf("mpi: stream tag out of range (%d)", n))
	}
	return classStream | n
}

// TagColl returns the tag for the collective with the given per-rank
// sequence number (internal; exported for the conformance tests).
func TagColl(seq uint64) int { return classColl | int(seq&0xFFFF) }

// Observatory channels sit at the top of the stream namespace, far above
// the dump stream (channel 0) and the net-bench channels (1..4): telemetry
// batches ride one channel, and the clock-sync ping-pong uses one channel
// pair per sample index so a sync burst never reuses a (dst, tag) pair
// within a tag epoch.
const (
	obsBatchChannel = 0xF000
	obsPingChannel  = 0xF100
	obsPongChannel  = 0xF200

	// ObsMaxSyncSamples bounds the per-burst clock-sync sample count.
	ObsMaxSyncSamples = 0x100
)

// TagObsBatch returns the tag carrying observatory telemetry batches from a
// rank to the collector on rank 0.
func TagObsBatch() int { return TagStream(obsBatchChannel) }

// TagObsPing returns the root-to-peer tag of clock-sync sample k.
func TagObsPing(k int) int {
	if k < 0 || k >= ObsMaxSyncSamples {
		panic(fmt.Sprintf("mpi: clock-sync sample index out of range (%d)", k))
	}
	return TagStream(obsPingChannel + k)
}

// TagObsPong returns the peer-to-root reply tag of clock-sync sample k.
func TagObsPong(k int) int {
	if k < 0 || k >= ObsMaxSyncSamples {
		panic(fmt.Sprintf("mpi: clock-sync sample index out of range (%d)", k))
	}
	return TagStream(obsPongChannel + k)
}

// tagCheckOn enables the debug assertion that flags reuse of a (dst, tag)
// pair within one epoch. Off by default (it costs a map insert per send);
// enabled by SetTagCheck or MPCF_TAGCHECK=1.
var tagCheckOn atomic.Bool

func init() {
	if os.Getenv("MPCF_TAGCHECK") == "1" {
		tagCheckOn.Store(true)
	}
}

// SetTagCheck toggles the debug tag-reuse assertion for subsequently
// created sends on all ranks.
func SetTagCheck(on bool) { tagCheckOn.Store(on) }

// BeginTagEpoch opens a new tag epoch for this rank: the reuse assertion
// forgets all (dst, tag) pairs seen so far. The cluster layer calls it at
// the top of each ghost exchange, making the epoch one halo cycle.
func (c *Comm) BeginTagEpoch() {
	if c.tagSeen != nil {
		clear(c.tagSeen)
	}
}

// checkTag asserts, when enabled, that (dst, tag) was not already used for
// a send in this epoch. Collective tags are exempt: they are versioned by
// the sequence number, so reuse across epochs is by construction safe, and
// their cadence is not tied to the ghost-exchange epoch.
func (c *Comm) checkTag(dst, tag int) {
	if !tagCheckOn.Load() || tag&classMask == classColl {
		return
	}
	if c.tagSeen == nil {
		c.tagSeen = make(map[uint64]struct{})
	}
	key := uint64(dst)<<32 | uint64(uint32(tag))
	if _, dup := c.tagSeen[key]; dup {
		panic(fmt.Sprintf("mpi: rank %d reused tag %#x for a send to rank %d within one epoch; "+
			"a second in-flight message on the same (dst, tag) pair can be matched out of intent "+
			"(call BeginTagEpoch at phase boundaries, or namespace the tag)", c.rank, tag, dst))
	}
	c.tagSeen[key] = struct{}{}
}
