// Package service is the simulation-as-a-service front end: a JSON job
// API over the scenario registry, a multi-tenant admission-controlled
// queue feeding a warm worker pool, live result streaming to many
// concurrent subscribers, and per-job artifact directories (observables,
// checkpoints, step logs). Small jobs run in-process through sim.Run;
// larger decompositions fork local rank fleets through internal/launch —
// the same supervised-mpirun path the mpcf-launch CLI uses. See
// docs/service.md.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cubism/internal/scenario"
)

// SpecParams are the scenario parameter overrides a job may carry; zero
// values keep the scenario's laptop-scale defaults, mirroring
// scenario.Params field by field (plus the block layout knob).
type SpecParams struct {
	// Ranks is the cartesian rank decomposition. A product above the
	// service's in-process rank limit makes the job a fleet job.
	Ranks [3]int `json:"ranks,omitempty"`
	// Blocks is the per-rank block grid.
	Blocks [3]int `json:"blocks,omitempty"`
	// BlockSize is the block edge in cells (multiple of 4, at least 8).
	BlockSize int `json:"block_size,omitempty"`
	// Steps bounds the run.
	Steps int `json:"steps,omitempty"`
	// Workers per rank (0: NumCPU).
	Workers int `json:"workers,omitempty"`
	// Bubbles is the cloud bubble count (array: lattice edge k).
	Bubbles int `json:"bubbles,omitempty"`
	// Seed makes the sampled cloud reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Beta targets the cloud interaction parameter β (picks the bubble
	// count; mutually exclusive with Bubbles).
	Beta float64 `json:"beta,omitempty"`
	// DiagEvery is the diagnostics cadence feeding step events and the
	// observables pipeline.
	DiagEvery int `json:"diag_every,omitempty"`
	// Layout is the block-to-rank layout: cartesian (default), hilbert,
	// morton or rowmajor.
	Layout string `json:"layout,omitempty"`
	// DumpEvery streams a compressed p and Γ snapshot every so many steps
	// (0: never): the frames land in the job's artifact directory and are
	// forwarded as "frame" events on the job event stream, each carrying
	// the complete dump-file bytes.
	DumpEvery int `json:"dump_every,omitempty"`
	// Encoder selects the dump coder: zlib (default), rle, sig or huff.
	Encoder string `json:"encoder,omitempty"`
}

// JobSpec is the submission body of POST /v1/jobs. The spec hashes to a
// deterministic job ID: resubmitting an identical spec addresses the same
// job (set Nonce to force a distinct re-run of identical parameters).
type JobSpec struct {
	// Scenario names the registry case: cloud, shockbubble or array.
	Scenario string `json:"scenario"`
	// Tenant is the submitting tenant; admission control caps each
	// tenant's queued and concurrently running jobs independently.
	Tenant string `json:"tenant"`
	// Priority orders the queue (higher first, FIFO within a priority;
	// range [-10, 10], default 0).
	Priority int `json:"priority,omitempty"`
	// Mode picks the execution engine: "" or "auto" (in-process up to the
	// service's rank limit, fleet beyond), "inproc" (all ranks as
	// goroutines in the service process), "fleet" (fork one mpcf-sim
	// process per rank over the tcp transport).
	Mode string `json:"mode,omitempty"`
	// Nonce distinguishes otherwise-identical specs (re-runs).
	Nonce string `json:"nonce,omitempty"`
	// Params overrides the scenario defaults.
	Params SpecParams `json:"params,omitempty"`
}

// Execution modes.
const (
	ModeAuto   = "auto"
	ModeInproc = "inproc"
	ModeFleet  = "fleet"
)

// MaxSpecBytes bounds a submission body; a job spec is a handful of
// scalars, anything larger is garbage.
const MaxSpecBytes = 1 << 16

// maxRanks bounds the decomposition a single job may request from the
// shared service — 16 local processes (or goroutine ranks) is already an
// aggressive ask for one tenant on one machine.
const maxRanks = 16

// ParseSpec decodes one JSON job spec, rejecting unknown fields and
// trailing garbage so typos fail loudly at submit time.
func ParseSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("service: parsing job spec: %w", err)
	}
	if dec.More() {
		return s, fmt.Errorf("service: trailing data after job spec")
	}
	return s, nil
}

// validName reports whether s is a safe identifier (tenant, nonce): short
// and limited to [A-Za-z0-9._-], so it can appear in paths and labels.
func validName(s string, max int) bool {
	if s == "" || len(s) > max {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// validTriple checks a decomposition triple: fully zero (scenario default)
// or every component in [1, lim].
func validTriple(t [3]int, lim int) bool {
	if t == ([3]int{}) {
		return true
	}
	for _, v := range t {
		if v < 1 || v > lim {
			return false
		}
	}
	return true
}

// RankProduct is the total rank count the spec requests (1 for the
// scenario default single rank).
func (s *JobSpec) RankProduct() int {
	if s.Params.Ranks == ([3]int{}) {
		return 1
	}
	return s.Params.Ranks[0] * s.Params.Ranks[1] * s.Params.Ranks[2]
}

// Validate checks every field against its domain, then dry-builds the
// scenario so parameter combinations the registry rejects (unknown name,
// Beta with Bubbles, infeasible β targets) fail at submit time with a 400
// instead of as a failed job.
func (s *JobSpec) Validate() error {
	if _, ok := scenario.Lookup(s.Scenario); !ok {
		return fmt.Errorf("unknown scenario %q (have %s)", s.Scenario, strings.Join(scenario.Names(), ", "))
	}
	if !validName(s.Tenant, 64) {
		return fmt.Errorf("tenant %q must be 1-64 chars of [A-Za-z0-9._-]", s.Tenant)
	}
	if s.Nonce != "" && !validName(s.Nonce, 64) {
		return fmt.Errorf("nonce %q must be 1-64 chars of [A-Za-z0-9._-]", s.Nonce)
	}
	if s.Priority < -10 || s.Priority > 10 {
		return fmt.Errorf("priority %d outside [-10, 10]", s.Priority)
	}
	switch s.Mode {
	case "", ModeAuto, ModeInproc, ModeFleet:
	default:
		return fmt.Errorf("mode %q (want auto, inproc or fleet)", s.Mode)
	}
	p := &s.Params
	if !validTriple(p.Ranks, maxRanks) {
		return fmt.Errorf("ranks %v must be all zero or each in [1, %d]", p.Ranks, maxRanks)
	}
	if s.RankProduct() > maxRanks {
		return fmt.Errorf("rank product %d exceeds the per-job cap %d", s.RankProduct(), maxRanks)
	}
	if !validTriple(p.Blocks, 64) {
		return fmt.Errorf("blocks %v must be all zero or each in [1, 64]", p.Blocks)
	}
	if p.BlockSize != 0 && (p.BlockSize < 8 || p.BlockSize > 64 || p.BlockSize%4 != 0) {
		return fmt.Errorf("block_size %d must be a multiple of 4 in [8, 64]", p.BlockSize)
	}
	if p.Steps < 0 || p.Steps > 100000 {
		return fmt.Errorf("steps %d outside [0, 100000]", p.Steps)
	}
	if p.Workers < 0 || p.Workers > 256 {
		return fmt.Errorf("workers %d outside [0, 256]", p.Workers)
	}
	if p.Bubbles < 0 || p.Bubbles > 200 {
		return fmt.Errorf("bubbles %d outside [0, 200]", p.Bubbles)
	}
	if p.Seed < 0 {
		return fmt.Errorf("seed %d must not be negative", p.Seed)
	}
	if p.Beta < 0 || p.Beta > 10 {
		return fmt.Errorf("beta %g outside [0, 10]", p.Beta)
	}
	if p.DiagEvery < 0 || p.DiagEvery > 100000 {
		return fmt.Errorf("diag_every %d outside [0, 100000]", p.DiagEvery)
	}
	switch p.Layout {
	case "", "cartesian", "hilbert", "morton", "rowmajor":
	default:
		return fmt.Errorf("layout %q (want cartesian, hilbert, morton or rowmajor)", p.Layout)
	}
	if p.DumpEvery < 0 || p.DumpEvery > 100000 {
		return fmt.Errorf("dump_every %d outside [0, 100000]", p.DumpEvery)
	}
	switch p.Encoder {
	case "", "zlib", "rle", "sig", "huff":
	default:
		return fmt.Errorf("encoder %q (want zlib, rle, sig or huff)", p.Encoder)
	}
	// The dry build catches everything only the registry knows: it is the
	// single source of truth for parameter feasibility.
	if _, err := scenario.Build(s.Scenario, s.ScenarioParams()); err != nil {
		return err
	}
	return nil
}

// ScenarioParams maps the spec's overrides onto the registry's parameter
// struct.
func (s *JobSpec) ScenarioParams() scenario.Params {
	p := s.Params
	return scenario.Params{
		Ranks:     p.Ranks,
		Blocks:    p.Blocks,
		BlockSize: p.BlockSize,
		Steps:     p.Steps,
		Workers:   p.Workers,
		Bubbles:   p.Bubbles,
		Seed:      p.Seed,
		Beta:      p.Beta,
		DiagEvery: p.DiagEvery,
	}
}

// ID is the deterministic job identity: sha256 over the canonical JSON
// encoding of the spec (struct field order, zero fields omitted), truncated
// to 16 hex digits with a "j-" prefix. Identical specs — same scenario,
// tenant, parameters and nonce — always hash to the same ID, so a retried
// submission addresses the job it already created instead of enqueueing a
// duplicate.
func (s *JobSpec) ID() string {
	canon, err := json.Marshal(s)
	if err != nil {
		// A JobSpec of scalars and strings cannot fail to marshal.
		panic(fmt.Sprintf("service: canonicalizing spec: %v", err))
	}
	sum := sha256.Sum256(canon)
	return "j-" + hex.EncodeToString(sum[:])[:16]
}
