package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"cubism/internal/scenario"
)

// Handler builds the service's HTTP API:
//
//	GET    /v1/scenarios            registered scenario names + descriptions
//	POST   /v1/jobs                 submit a JobSpec (201 created, 200 existing)
//	GET    /v1/jobs[?tenant=t]      list jobs, newest first
//	GET    /v1/jobs/{id}            job status
//	DELETE /v1/jobs/{id}            cancel (also POST /v1/jobs/{id}/cancel)
//	GET    /v1/jobs/{id}/events     chunked JSONL stream: full replay + live
//	                                follow (?from=N resumes mid-stream)
//	GET    /v1/jobs/{id}/observables  final collapse metric map
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness + stuck-job count
//
// Admission rejections surface as 429 (caps) and 503 (draining), each with
// a JSON error body.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/observables", s.handleObservables)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResp(w, http.StatusOK, map[string]any{"ok": true, "stuck": s.Stuck()})
	})
	return mux
}

func writeJSONResp(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSONResp(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []entry
	for _, sc := range scenario.Registry() {
		out = append(out, entry{sc.Name, sc.Description})
	}
	writeJSONResp(w, http.StatusOK, map[string]any{"scenarios": out})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ParseSpec(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, created, err := s.Submit(spec)
	switch {
	case err == nil:
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSONResp(w, code, j.Status())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueued):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs(r.URL.Query().Get("tenant"))
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSONResp(w, http.StatusOK, map[string]any{"jobs": out})
}

// pathJob resolves the {id} path segment.
func (s *Service) pathJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound)
		return nil, false
	}
	return j, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.pathJob(w, r); ok {
		writeJSONResp(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	err := s.Cancel(j.ID, r.URL.Query().Get("reason"))
	switch {
	case err == nil:
		writeJSONResp(w, http.StatusAccepted, j.Status())
	case errors.Is(err, ErrFinished):
		writeErr(w, http.StatusConflict, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func (s *Service) handleObservables(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	m := j.Observables()
	if m == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("service: job %s has no observables yet (state %s)", j.ID, j.State()))
		return
	}
	writeJSONResp(w, http.StatusOK, m)
}

// handleEvents streams the job's event log as chunked JSONL: the full
// history replays first, then live events follow until the job reaches a
// terminal state or the subscriber disconnects. Any number of subscribers
// can follow one job concurrently; each gets the complete stream.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad from=%q", q))
			return
		}
		from = v
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	s.subscriberDelta(j, 1)
	defer s.subscriberDelta(j, -1)

	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		evs, done, err := j.EventsSince(ctx, from)
		if err != nil {
			return // subscriber went away
		}
		for _, e := range evs {
			if enc.Encode(e) != nil {
				return
			}
		}
		from += len(evs)
		if fl != nil {
			fl.Flush()
		}
		if done {
			return
		}
	}
}
