package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"cubism/internal/dump"
)

// TestMain doubles as the fake mpcf-sim of the fleet tests (the helper-
// process trick of the launch package): when MPCF_SERVICE_FAKE_SIM is set
// this process parses the fleet flags, plays one rank, and exits.
func TestMain(m *testing.M) {
	if os.Getenv("MPCF_SERVICE_FAKE_SIM") != "" {
		fakeSim()
		return
	}
	os.Exit(m.Run())
}

// fakeFramePayload is the frame body the fake rank-0 sim logs; the fleet
// frame-tail test asserts it survives the JSONL round trip untouched.
func fakeFramePayload() []byte { return []byte("\x00\x01frame-bytes\xff\xfe") }

// argVal extracts the value of a "-flag value" pair from os.Args.
func argVal(name string) string {
	for i, a := range os.Args {
		if (a == "-"+name || a == "--"+name) && i+1 < len(os.Args) {
			return os.Args[i+1]
		}
	}
	return ""
}

// fakeSim emulates one mpcf-sim rank: rank 0 writes the structured step
// log and the observables artifact; hang mode blocks until SIGINT and
// exits 130 like a graceful boundary stop.
func fakeSim() {
	rank, _ := strconv.Atoi(argVal("rank"))
	if os.Getenv("MPCF_SERVICE_FAKE_HANG") != "" {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		os.Exit(130)
	}
	if rank == 0 {
		if p := argVal("step-log"); p != "" {
			f, err := os.Create(p)
			if err == nil {
				for i := 1; i <= 3; i++ {
					fmt.Fprintf(f, `{"step":%d,"t":%g,"dt":0.001,"has_diag":true,"max_p":%g}`+"\n",
						i, float64(i)*0.001, 100.0*float64(i))
				}
				f.Close()
			}
		}
		if p := argVal("observables"); p != "" {
			os.WriteFile(p, []byte(`{"peak_amp": 2.5, "non_finite": 0}`+"\n"), 0o644)
		}
		if p := argVal("frame-log"); p != "" {
			rec, _ := json.Marshal(dump.FrameRecord{
				Name: "p_step000002.mpcf", Step: 2, Quantity: "p",
				Time: 0.002, Bytes: len(fakeFramePayload()), Data: fakeFramePayload(),
			})
			os.WriteFile(p, append(rec, '\n'), 0o644)
		}
		fmt.Println("fake rank 0 done")
	}
	os.Exit(0)
}

// fastSpec is a sub-second real shockbubble case.
func fastSpec(tenant, nonce string) JobSpec {
	return JobSpec{
		Scenario: "shockbubble",
		Tenant:   tenant,
		Nonce:    nonce,
		Params: SpecParams{
			Blocks: [3]int{2, 2, 2}, BlockSize: 8, Steps: 4, DiagEvery: 2, Workers: 2,
		},
	}
}

// slowSpec runs long enough to still be running while a test pokes at the
// queue behind it (and is ended by Cancel/Drain, never by completion).
func slowSpec(tenant, nonce string) JobSpec {
	s := fastSpec(tenant, nonce)
	s.Params.Steps = 20000
	s.Params.DiagEvery = 100000
	return s
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitState(t *testing.T, j *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := j.State()
		if st == want {
			return
		}
		if st.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %s while waiting for %s", j.ID, st, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within %v (state %s)", j.ID, want, timeout, j.State())
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) JobState {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := j.State(); st.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v (state %s)", j.ID, timeout, j.State())
	return ""
}

func TestSubmitIdempotent(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	spec := fastSpec("alice", "")
	j1, created, err := s.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	j2, created, err := s.Submit(spec)
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if j1 != j2 {
		t.Fatalf("resubmitting an identical spec made a new job: %s vs %s", j1.ID, j2.ID)
	}
	if st := waitTerminal(t, j1, 30*time.Second); st != StateSucceeded {
		t.Fatalf("job ended %s, want succeeded", st)
	}
	if j1.Observables() == nil {
		t.Fatal("succeeded job has no observables")
	}
	if _, err := os.Stat(filepath.Join(j1.Dir, "observables.json")); err != nil {
		t.Fatalf("observables artifact: %v", err)
	}
}

// TestPerTenantRunningCap: with two warm workers but a per-tenant running
// cap of one, a tenant's second job must wait for its first, while another
// tenant's job is free to use the second worker slot.
func TestPerTenantRunningCap(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, TenantRunning: 1})
	a1, _, err := s.Submit(fastSpec("alice", "1"))
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := s.Submit(fastSpec("alice", "2"))
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := s.Submit(fastSpec("bob", "1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{a1, a2, b1} {
		if st := waitTerminal(t, j, 30*time.Second); st != StateSucceeded {
			t.Fatalf("job %s ended %s", j.ID, st)
		}
	}
	// The cap shows in the timeline: alice's second job started only after
	// her first finished.
	s1, s2 := a1.Status(), a2.Status()
	if s2.Started.Before(*s1.Finished) {
		t.Fatalf("tenant running cap violated: a2 started %v before a1 finished %v",
			s2.Started, s1.Finished)
	}
}

// TestAdmissionControl: the bounded queue and the per-tenant queued cap
// both reject at submit time while a blocker occupies the only worker.
func TestAdmissionControl(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, MaxQueue: 2, TenantQueued: 1})
	blocker, _, err := s.Submit(slowSpec("blocker", ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 15*time.Second)

	if _, _, err := s.Submit(fastSpec("carol", "")); err != nil {
		t.Fatalf("first queued job rejected: %v", err)
	}
	// Carol is at her queued cap of one.
	if _, _, err := s.Submit(fastSpec("carol", "2")); err != ErrTenantQueued {
		t.Fatalf("tenant queued cap: got %v, want ErrTenantQueued", err)
	}
	// Dave still fits (queue depth 2)...
	if _, _, err := s.Submit(fastSpec("dave", "")); err != nil {
		t.Fatalf("second queued job rejected: %v", err)
	}
	// ...but the global queue is now full for anyone.
	if _, _, err := s.Submit(fastSpec("erin", "")); err != ErrQueueFull {
		t.Fatalf("bounded queue: got %v, want ErrQueueFull", err)
	}
	if err := s.Cancel(blocker.ID, "test done"); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, blocker, 30*time.Second)
}

// TestCancelQueuedVsRunning: a queued job cancels instantly without ever
// running; a running job stops at its next step boundary and leaves the
// final checkpoint artifact.
func TestCancelQueuedVsRunning(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	running, _, err := s.Submit(slowSpec("alice", ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 15*time.Second)
	queued, _, err := s.Submit(fastSpec("bob", ""))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel while queued: immediate, and the event stream never shows a
	// running state.
	if err := s.Cancel(queued.ID, "changed my mind"); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state %s after cancel, want canceled", st)
	}
	evs, done, err := queued.EventsSince(context.Background(), 0)
	if err != nil || !done {
		t.Fatalf("events: done=%v err=%v", done, err)
	}
	for _, e := range evs {
		if e.State == StateRunning {
			t.Fatal("cancel-while-queued job reports a running state event")
		}
	}

	// Cancel while running: graceful boundary stop with a checkpoint.
	if err := s.Cancel(running.ID, "preempted"); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, running, 30*time.Second); st != StateCanceled {
		t.Fatalf("running job ended %s after cancel, want canceled", st)
	}
	if st := running.Status(); st.Reason != "preempted" {
		t.Fatalf("cancel reason %q, want %q", st.Reason, "preempted")
	}
	if _, err := os.Stat(filepath.Join(running.Dir, "checkpoint.ckp")); err != nil {
		t.Fatalf("canceled running job left no checkpoint: %v", err)
	}
	if err := s.Cancel(running.ID, "again"); err != ErrFinished {
		t.Fatalf("cancel of finished job: got %v, want ErrFinished", err)
	}
}

// TestEventsSinceBeyondEnd: a resume position past the end of a terminal
// job's stream must report done immediately — the terminal state skips the
// wait loop, so anything else would make the HTTP stream loop spin hot for
// the lifetime of the connection.
func TestEventsSinceBeyondEnd(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, _, err := s.Submit(fastSpec("alice", ""))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateSucceeded {
		t.Fatalf("job ended %s", st)
	}
	evs, done, err := j.EventsSince(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 || !done {
		t.Fatalf("EventsSince past the end: %d events, done=%v, want 0 events and done",
			len(evs), done)
	}
}

// TestDrainRequeue: a drain checkpoints the running job, snapshots the
// queued specs, and a fresh service over the same data dir requeues them
// under their original IDs. The drained running job itself comes back too,
// carrying its boundary checkpoint as the restore point.
func TestDrainRequeue(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{Workers: 1, DataDir: dir})
	running, _, err := s.Submit(slowSpec("alice", ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 15*time.Second)
	q1, _, err := s.Submit(fastSpec("bob", ""))
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := s.Submit(fastSpec("carol", ""))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := running.State(); st != StateCanceled {
		t.Fatalf("drained running job state %s, want canceled", st)
	}
	if _, err := os.Stat(filepath.Join(running.Dir, "checkpoint.ckp")); err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}
	if _, _, err := s.Submit(fastSpec("erin", "")); err != ErrDraining {
		t.Fatalf("submit during drain: got %v, want ErrDraining", err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "queue.json"))
	if err != nil {
		t.Fatalf("queue snapshot: %v", err)
	}
	var parsed queueSnapshot
	if err := json.Unmarshal(snap, &parsed); err != nil || len(parsed.Specs) != 2 {
		t.Fatalf("snapshot holds %d specs (err %v), want 2", len(parsed.Specs), err)
	}
	if len(parsed.Resume) != 1 || parsed.Resume[0].Spec.ID() != running.ID {
		t.Fatalf("snapshot resume entries %+v, want the drained running job %s",
			parsed.Resume, running.ID)
	}
	if parsed.Resume[0].Restore != filepath.Join(running.Dir, "checkpoint.ckp") {
		t.Fatalf("resume restore %q, want the drained job's checkpoint", parsed.Resume[0].Restore)
	}
	s.Close()

	// The successor requeues the specs into the same deterministic jobs and
	// runs the queued ones to completion; the drained job returns with its
	// checkpoint as the restore point (it is canceled rather than waited
	// out — slowSpec runs for 20000 steps).
	s2 := newTestService(t, Config{Workers: 2, DataDir: dir})
	resumed, ok := s2.Job(running.ID)
	if !ok {
		t.Fatalf("drained running job %s not requeued after restart", running.ID)
	}
	if resumed.restore == "" {
		t.Fatalf("requeued drained job %s carries no restore checkpoint", running.ID)
	}
	for _, id := range []string{q1.ID, q2.ID} {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s not requeued after restart", id)
		}
		if st := waitTerminal(t, j, 30*time.Second); st != StateSucceeded {
			t.Fatalf("requeued job %s ended %s", id, st)
		}
	}
	if err := s2.Cancel(resumed.ID, "test done"); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, resumed, 30*time.Second)
	if _, err := os.Stat(filepath.Join(dir, "queue.json")); !os.IsNotExist(err) {
		t.Fatalf("queue snapshot not consumed: %v", err)
	}
}

// TestPriorityOrder: with one worker, a higher-priority spec submitted
// later overtakes the FIFO order.
func TestPriorityOrder(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	blocker, _, err := s.Submit(slowSpec("blocker", ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 15*time.Second)
	low, _, err := s.Submit(fastSpec("low", ""))
	if err != nil {
		t.Fatal(err)
	}
	hiSpec := fastSpec("high", "")
	hiSpec.Priority = 5
	high, _, err := s.Submit(hiSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(blocker.ID, "unblock"); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, blocker, 30*time.Second)
	waitTerminal(t, high, 30*time.Second)
	waitTerminal(t, low, 30*time.Second)
	lo, hi := low.Status(), high.Status()
	if lo.Started.Before(*hi.Started) {
		t.Fatalf("priority inversion: low started %v before high %v", lo.Started, hi.Started)
	}
}

// --- fleet engine against the fake sim ------------------------------------

func fleetService(t *testing.T, hang bool) *Service {
	t.Helper()
	t.Setenv("MPCF_SERVICE_FAKE_SIM", "1")
	if hang {
		t.Setenv("MPCF_SERVICE_FAKE_HANG", "1")
	} else {
		os.Unsetenv("MPCF_SERVICE_FAKE_HANG")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return newTestService(t, Config{Workers: 1, SimBin: exe})
}

// TestFleetModeResolution: a rank product beyond the in-process limit
// makes an auto-mode job a fleet job, the step log tail and the
// observables artifact feed the event stream, and the muxed rank output
// lands as log events.
func TestFleetJobRunsAndStreams(t *testing.T) {
	s := fleetService(t, false)
	spec := fastSpec("alice", "")
	spec.Params.Ranks = [3]int{2, 1, 1}
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.Mode != ModeFleet {
		t.Fatalf("rank product 2 resolved to mode %s, want fleet", j.Mode)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateSucceeded {
		t.Fatalf("fleet job ended %s", st)
	}
	obs := j.Observables()
	if obs == nil || obs["peak_amp"] != 2.5 {
		t.Fatalf("fleet observables not picked up: %v", obs)
	}
	evs, _, err := j.EventsSince(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	steps, logs := 0, 0
	for _, e := range evs {
		switch e.Type {
		case "step":
			steps++
		case "log":
			logs++
		}
	}
	if steps != 3 {
		t.Fatalf("fleet stream carries %d step events, want 3 (from the rank-0 step log)", steps)
	}
	if logs == 0 {
		t.Fatal("fleet stream carries no log events from the rank output mux")
	}
}

// TestFleetCancel: canceling a running fleet job triggers the SIGINT
// cascade; the interrupted ranks' exit is a cancel, not a failure.
func TestFleetCancel(t *testing.T) {
	s := fleetService(t, true)
	spec := fastSpec("alice", "")
	spec.Params.Ranks = [3]int{2, 1, 1}
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 15*time.Second)
	// Give the ranks a moment to install their signal handlers.
	time.Sleep(100 * time.Millisecond)
	if err := s.Cancel(j.ID, "fleet cancel"); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateCanceled {
		t.Fatalf("canceled fleet job ended %s", st)
	}
}
