package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cubism/internal/scenario"
	"cubism/internal/telemetry"
)

// postSpec submits a spec over HTTP and returns the decoded status.
func postSpec(t *testing.T, base string, spec JobSpec, wantCode int) Status {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("submit returned %d, want %d", resp.StatusCode, wantCode)
	}
	var st Status
	if wantCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
	}
	return st
}

// subscribe follows one job's event stream to completion and returns
// every event received.
func subscribe(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Errorf("subscribe %s: %v", id, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("subscribe %s: status %d", id, resp.StatusCode)
		return nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("subscribe %s: content type %q", id, ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Errorf("subscribe %s: bad event line %q: %v", id, sc.Text(), err)
			return evs
		}
		evs = append(evs, e)
	}
	return evs
}

// TestServiceEndToEnd is the acceptance drill: four tenants concurrently
// submit cloud, shockbubble and array jobs over the REST API (one tenant
// doubled up to exercise its running cap), every job streams its full
// event log to two concurrent subscribers, and each job's final
// observables are bitwise identical to a direct scenario-engine run of
// the same parameters — the service adds orchestration, not physics.
func TestServiceEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestService(t, Config{Workers: 3, TenantRunning: 1, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mk := func(tenant, scenarioName string, p SpecParams) JobSpec {
		return JobSpec{Scenario: scenarioName, Tenant: tenant, Params: p}
	}
	small := SpecParams{Blocks: [3]int{2, 2, 2}, BlockSize: 8, DiagEvery: 2, Workers: 2}
	cloudP := small
	cloudP.Steps, cloudP.Bubbles, cloudP.Seed = 6, 4, 7
	shockP := small
	shockP.Steps = 5
	arrayP := small
	arrayP.Steps, arrayP.Bubbles = 5, 2
	cloud2P := cloudP
	cloud2P.Seed = 11

	specs := []JobSpec{
		mk("tenant-0", "cloud", cloudP),
		mk("tenant-1", "shockbubble", shockP),
		mk("tenant-2", "array", arrayP),
		mk("tenant-3", "cloud", cloud2P),
		mk("tenant-0", "shockbubble", shockP), // doubles up tenant-0: must serialize
	}

	// Submit everything concurrently, as independent tenants would.
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			ids[i] = postSpec(t, ts.URL, spec, http.StatusCreated).ID
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Two concurrent subscribers per job, attached while the jobs run.
	streams := make([][]Event, 2*len(ids))
	for i, id := range ids {
		for sub := 0; sub < 2; sub++ {
			wg.Add(1)
			go func(slot int, id string) {
				defer wg.Done()
				streams[slot] = subscribe(t, ts.URL, id)
			}(2*i+sub, id)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, id := range ids {
		a, b := streams[2*i], streams[2*i+1]
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("job %s: empty subscriber stream", id)
		}
		if len(a) != len(b) {
			t.Fatalf("job %s: subscribers saw %d vs %d events", id, len(a), len(b))
		}
		for k, e := range a {
			if e.Seq != k {
				t.Fatalf("job %s: stream gap at %d (seq %d)", id, k, e.Seq)
			}
		}
		last := a[len(a)-1]
		if last.Type != "state" || last.State != StateSucceeded {
			t.Fatalf("job %s: stream ends with %s/%s, want state/succeeded", id, last.Type, last.State)
		}
		steps, obsEvents := 0, 0
		for _, e := range a {
			switch e.Type {
			case "step":
				steps++
			case "observables":
				obsEvents++
			}
		}
		if steps != specs[i].Params.Steps {
			t.Fatalf("job %s: streamed %d step events, want %d", id, steps, specs[i].Params.Steps)
		}
		if obsEvents != 1 {
			t.Fatalf("job %s: %d observables events, want 1", id, obsEvents)
		}
	}

	// The per-tenant running cap held: tenant-0's second job started only
	// after its first finished, even with free worker slots. Concurrent
	// submission means either job may have been the first to run.
	j1, _ := s.Job(ids[0])
	j2, _ := s.Job(ids[4])
	s1, s2 := j1.Status(), j2.Status()
	if s2.Started.Before(*s1.Started) {
		s1, s2 = s2, s1
	}
	if s2.Started.Before(*s1.Finished) {
		t.Fatalf("tenant-0 ran two jobs concurrently: second started %v, first finished %v",
			s2.Started, s1.Finished)
	}

	// Bitwise-identical observables: the service-run metric map must match
	// a direct scenario-engine run of the same parameters bit for bit.
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/observables")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s observables: %v (status %v)", id, err, resp.Status)
		}
		var got map[string]float64
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatalf("job %s observables decode: %v", id, err)
		}
		resp.Body.Close()

		c, err := scenario.Build(specs[i].Scenario, specs[i].ScenarioParams())
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := c.Run(nil)
		if err != nil {
			t.Fatalf("direct run of %s: %v", specs[i].Scenario, err)
		}
		if len(got) != len(want) {
			t.Fatalf("job %s: observables keys %d vs direct %d\nservice: %v\ndirect:  %v",
				id, len(got), len(want), got, want)
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("job %s: observable %q missing", id, k)
			}
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("job %s: observable %q differs bitwise: service %v (%016x) vs direct %v (%016x)",
					id, k, g, math.Float64bits(g), w, math.Float64bits(w))
			}
		}
	}

	// The metrics endpoint agrees: five terminal successes, nothing stuck.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	if !strings.Contains(text, `mpcf_service_jobs_done_total{state="succeeded"} 5`) {
		t.Fatalf("metrics missing success count:\n%s", text)
	}
	if !strings.Contains(text, "mpcf_service_jobs_queued 0") ||
		!strings.Contains(text, "mpcf_service_jobs_running 0") {
		t.Fatalf("metrics report stuck jobs:\n%s", text)
	}
	if s.Stuck() != 0 {
		t.Fatalf("%d stuck jobs after completion", s.Stuck())
	}
}

// TestHTTPErrorMapping: the admission and lookup failures map onto their
// HTTP status codes (400 invalid, 404 unknown, 429 caps, 409 re-cancel).
func TestHTTPErrorMapping(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, MaxQueue: 1, TenantQueued: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := JobSpec{Scenario: "warp", Tenant: "alice"}
	postSpec(t, ts.URL, bad, http.StatusBadRequest)

	resp, err := http.Get(ts.URL + "/v1/jobs/j-0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", resp.StatusCode)
	}

	// Fill the only worker, then the one queue slot; the next submit must
	// bounce with 429 and a Retry-After hint.
	blocker := postSpec(t, ts.URL, slowSpec("blocker", ""), http.StatusCreated)
	jb, _ := s.Job(blocker.ID)
	waitState(t, jb, StateRunning, 15*time.Second)
	postSpec(t, ts.URL, fastSpec("carol", ""), http.StatusCreated)
	body, _ := json.Marshal(fastSpec("dave", ""))
	r429, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r429.Body.Close()
	if r429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit returned %d, want 429", r429.StatusCode)
	}
	if r429.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel over HTTP, then cancel again: 202 then 409.
	req, _ := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/jobs/%s?reason=test", ts.URL, blocker.ID), nil)
	rc, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rc.Body.Close()
	if rc.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d, want 202", rc.StatusCode)
	}
	waitTerminal(t, jb, 30*time.Second)
	rc2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rc2.Body.Close()
	if rc2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel returned %d, want 409", rc2.StatusCode)
	}

	// Scenario listing names all three registry cases.
	rs, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scen struct {
		Scenarios []struct{ Name string } `json:"scenarios"`
	}
	json.NewDecoder(rs.Body).Decode(&scen)
	rs.Body.Close()
	if len(scen.Scenarios) != 3 {
		t.Fatalf("scenario listing has %d entries, want 3", len(scen.Scenarios))
	}
}
