package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cubism/internal/dump"
	"cubism/internal/launch"
	"cubism/internal/scenario"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
)

// Admission errors; the HTTP layer maps them to 429 (caps) and 503
// (draining).
var (
	ErrQueueFull    = errors.New("service: queue full")
	ErrTenantQueued = errors.New("service: tenant queued-job cap reached")
	ErrDraining     = errors.New("service: draining, not accepting jobs")
	ErrNotFound     = errors.New("service: no such job")
	ErrFinished     = errors.New("service: job already finished")
)

// Config sizes the service.
type Config struct {
	// DataDir is the artifact root; per-job directories are created under
	// DataDir/jobs/<id>, and the drain snapshot lands at DataDir/queue.json.
	DataDir string
	// SimBin locates mpcf-sim for fleet jobs ("" resolves a sibling of
	// the serving binary, then PATH).
	SimBin string
	// Workers is the warm worker pool size — the global concurrent-job
	// bound (default 2).
	Workers int
	// MaxQueue bounds the pending queue across all tenants (default 64).
	MaxQueue int
	// TenantRunning caps one tenant's concurrently running jobs
	// (default 1).
	TenantRunning int
	// TenantQueued caps one tenant's queued jobs (default 8).
	TenantQueued int
	// InprocRankLimit is the largest rank product an auto-mode job may
	// run in-process; beyond it the job forks a rank fleet (default 1).
	InprocRankLimit int
	// StopGrace is how long a canceled fleet rank may take to reach its
	// step boundary before the force-exit fallbacks fire: it is passed to
	// every rank as -stop-grace and stretches the launcher's SIGKILL
	// escalation to match, so a job whose steps outlast mpcf-sim's 1.5s
	// default still drains to a boundary checkpoint (default 20s; keep it
	// below the caller's drain budget).
	StopGrace time.Duration
	// Registry receives the service metrics (nil: disabled).
	Registry *telemetry.Registry
	// Logf is the service diagnostics sink (nil: discarded).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.TenantRunning <= 0 {
		c.TenantRunning = 1
	}
	if c.TenantQueued <= 0 {
		c.TenantQueued = 8
	}
	if c.InprocRankLimit <= 0 {
		c.InprocRankLimit = 1
	}
	if c.StopGrace <= 0 {
		c.StopGrace = 20 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// jobDurationBuckets span smoke jobs through multi-minute production
// cases (seconds).
var jobDurationBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Service is the job front end: admission-controlled multi-tenant queue,
// warm worker pool, and the in-process/fleet execution engines.
type Service struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // dispatch wakeups: submit, job finish, drain, close
	queue    []*Job     // pending jobs in admission order
	jobs     map[string]*Job
	running  map[string]int // running jobs per tenant
	queued   map[string]int // queued jobs per tenant
	nRunning int
	nextSeq  int64
	draining bool
	closed   bool

	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup

	mQueued    *telemetry.Gauge
	mRunning   *telemetry.Gauge
	mSubs      *telemetry.Gauge
	mDone      map[JobState]*telemetry.Counter
	mRejected  map[string]*telemetry.Counter
	mQueueWait *telemetry.Histogram
	mDuration  *telemetry.Histogram
}

// New builds the service, requeues any drain snapshot left in DataDir and
// starts the worker pool.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: data dir: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		running: make(map[string]int),
		queued:  make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	reg := cfg.Registry
	s.mQueued = reg.Gauge("mpcf_service_jobs_queued", "jobs waiting in the admission queue", nil)
	s.mRunning = reg.Gauge("mpcf_service_jobs_running", "jobs currently executing", nil)
	s.mSubs = reg.Gauge("mpcf_service_stream_subscribers", "open event-stream subscriptions", nil)
	s.mDone = map[JobState]*telemetry.Counter{}
	for _, st := range []JobState{StateSucceeded, StateFailed, StateCanceled} {
		s.mDone[st] = reg.Counter("mpcf_service_jobs_done_total",
			"jobs finished by terminal state", telemetry.Labels{"state": string(st)})
	}
	s.mRejected = map[string]*telemetry.Counter{}
	for _, r := range []string{"queue_full", "tenant_queued", "draining", "invalid"} {
		s.mRejected[r] = reg.Counter("mpcf_service_admission_rejected_total",
			"submissions rejected by admission control", telemetry.Labels{"reason": r})
	}
	s.mQueueWait = reg.Histogram("mpcf_service_job_queue_wait_seconds",
		"submit-to-start latency", jobDurationBuckets, nil)
	s.mDuration = reg.Histogram("mpcf_service_job_duration_seconds",
		"start-to-finish job duration", jobDurationBuckets, nil)

	if err := s.requeueSnapshot(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit validates, admits and enqueues one job. The bool reports whether
// the job was newly created; resubmitting an identical spec returns the
// existing job (deterministic IDs make retries idempotent).
func (s *Service) Submit(spec JobSpec) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		s.mRejected["invalid"].Inc()
		return nil, false, fmt.Errorf("service: invalid spec: %w", err)
	}
	mode := spec.Mode
	if mode == "" || mode == ModeAuto {
		mode = ModeInproc
		if spec.RankProduct() > s.cfg.InprocRankLimit {
			mode = ModeFleet
		}
	}
	id := spec.ID()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, false, nil
	}
	if s.draining || s.closed {
		s.mRejected["draining"].Inc()
		return nil, false, ErrDraining
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mRejected["queue_full"].Inc()
		return nil, false, ErrQueueFull
	}
	if s.queued[spec.Tenant] >= s.cfg.TenantQueued {
		s.mRejected["tenant_queued"].Inc()
		return nil, false, ErrTenantQueued
	}

	dir := filepath.Join(s.cfg.DataDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("service: job dir: %w", err)
	}
	s.nextSeq++
	j := newJob(id, spec, mode, dir, s.nextSeq)
	if f, err := os.Create(filepath.Join(dir, "events.jsonl")); err == nil {
		j.eventsLog = f
	}
	j.emit(Event{Type: "state", State: StateQueued})
	s.jobs[id] = j
	s.queue = append(s.queue, j)
	s.queued[spec.Tenant]++
	s.updateGaugesLocked()
	s.cond.Broadcast()
	s.cfg.Logf("service: job %s queued (tenant=%s scenario=%s mode=%s)",
		id, spec.Tenant, spec.Scenario, mode)
	return j, true, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs (optionally one tenant's), newest first.
func (s *Service) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if tenant == "" || j.Spec.Tenant == tenant {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq > out[k].seq })
	return out
}

// Cancel requests a graceful stop: a queued job leaves the queue
// immediately; a running job stops at its next step boundary (writing the
// final checkpoint) through whichever engine runs it.
func (s *Service) Cancel(id, reason string) error {
	if reason == "" {
		reason = "canceled by request"
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	// Queued: dequeue under the service lock so a worker cannot claim it
	// mid-cancel.
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queued[j.Spec.Tenant]--
			s.updateGaugesLocked()
			s.mu.Unlock()
			j.setState(StateCanceled, reason, "")
			s.mDone[StateCanceled].Inc()
			return nil
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return ErrFinished
	}
	j.cancelRequested = true
	j.reason = reason
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(reason)
	}
	return nil
}

// Drain stops admission, gracefully cancels every running job (each stops
// at a step boundary and checkpoints) and snapshots the still-queued specs
// to DataDir/queue.json so the next service start requeues them. It
// returns once every running job finished or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var runningJobs []*Job
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			runningJobs = append(runningJobs, j)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range runningJobs {
		j.mu.Lock()
		j.cancelRequested = true
		j.drained = true
		if j.reason == "" {
			j.reason = "service drain"
		}
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel("service drain")
		}
	}

	done := make(chan struct{})
	go func() { s.jobWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// A wedged running job must not take the queued specs down with
		// it: snapshot what we have before reporting the drain failure —
		// a restart is exactly when preserving the queue matters most.
		if serr := s.snapshotQueue(); serr != nil {
			s.cfg.Logf("service: drain: queue snapshot: %v", serr)
		}
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
	return s.snapshotQueue()
}

// resumeEntry is one drained running job in the queue snapshot: its spec
// plus the boundary checkpoint it resumes from ("" reruns from scratch
// when the drain ended the job before any checkpoint landed).
type resumeEntry struct {
	Spec    JobSpec `json:"spec"`
	Restore string  `json:"restore,omitempty"`
}

// queueSnapshot is the on-disk shape of DataDir/queue.json.
type queueSnapshot struct {
	Specs  []JobSpec     `json:"specs,omitempty"`
	Resume []resumeEntry `json:"resume,omitempty"`
}

// snapshotQueue persists the queued specs — and the drained running jobs
// with their checkpoints — for the next start.
func (s *Service) snapshotQueue() error {
	s.mu.Lock()
	snap := queueSnapshot{Specs: make([]JobSpec, 0, len(s.queue))}
	for _, j := range s.queue {
		snap.Specs = append(snap.Specs, j.Spec)
	}
	var drained []*Job
	for _, j := range s.jobs {
		j.mu.Lock()
		// A drained job that raced to normal completion (or failed on its
		// own) is settled; only a drain-canceled (or, on an expired drain
		// budget, still-running) job has work worth resuming.
		wasDrained := j.drained && j.state != StateSucceeded && j.state != StateFailed
		j.mu.Unlock()
		if wasDrained {
			drained = append(drained, j)
		}
	}
	sort.Slice(drained, func(i, k int) bool { return drained[i].seq < drained[k].seq })
	for _, j := range drained {
		e := resumeEntry{Spec: j.Spec}
		if ckpt := filepath.Join(j.Dir, "checkpoint.ckp"); fileExists(ckpt) {
			e.Restore = ckpt
		}
		snap.Resume = append(snap.Resume, e)
	}
	s.mu.Unlock()
	path := filepath.Join(s.cfg.DataDir, "queue.json")
	if len(snap.Specs) == 0 && len(snap.Resume) == 0 {
		os.Remove(path)
		return nil
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: queue snapshot: %w", err)
	}
	s.cfg.Logf("service: snapshotted %d queued + %d drained jobs to %s",
		len(snap.Specs), len(snap.Resume), path)
	return nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

// requeueSnapshot resubmits the specs a drained predecessor left behind.
// Deterministic IDs make this safe to repeat: the same spec lands in the
// same job.
func (s *Service) requeueSnapshot() error {
	path := filepath.Join(s.cfg.DataDir, "queue.json")
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: reading queue snapshot: %w", err)
	}
	var snap queueSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("service: queue snapshot corrupt: %w", err)
	}
	os.Remove(path)
	for _, spec := range snap.Specs {
		if _, _, err := s.Submit(spec); err != nil {
			s.cfg.Logf("service: requeue of snapshot spec failed: %v", err)
		}
	}
	for _, e := range snap.Resume {
		j, created, err := s.Submit(e.Spec)
		if err != nil {
			s.cfg.Logf("service: requeue of drained spec failed: %v", err)
			continue
		}
		// The worker pool starts after requeue, so the restore point can be
		// installed without racing the engines. A restore whose checkpoint
		// vanished in the meantime reruns from scratch.
		if created && fileExists(e.Restore) {
			j.restore = e.Restore
		}
	}
	if n := len(snap.Specs) + len(snap.Resume); n > 0 {
		s.cfg.Logf("service: requeued %d jobs from drain snapshot (%d resuming from checkpoints)",
			n, len(snap.Resume))
	}
	return nil
}

// Close shuts the worker pool down after the current jobs finish. It does
// not cancel running jobs — use Drain first for a graceful stop.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workerWG.Wait()
}

// Stuck reports the queued+running job count — the "zero stuck jobs"
// smoke-check hook.
func (s *Service) Stuck() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + s.nRunning
}

func (s *Service) updateGaugesLocked() {
	s.mQueued.Set(float64(len(s.queue)))
	s.mRunning.Set(float64(s.nRunning))
}

// subscriberDelta tracks open event streams for the metrics endpoint.
func (s *Service) subscriberDelta(j *Job, d int) {
	j.mu.Lock()
	j.subscribers += d
	j.mu.Unlock()
	s.mSubs.Add(float64(d))
}

// nextRunnableLocked picks the dispatchable job: highest priority first,
// FIFO within a priority, skipping tenants already at their running cap
// (a capped tenant's jobs wait without blocking other tenants behind
// them).
func (s *Service) nextRunnableLocked() int {
	best := -1
	for i, j := range s.queue {
		if s.running[j.Spec.Tenant] >= s.cfg.TenantRunning {
			continue
		}
		if best < 0 || j.Spec.Priority > s.queue[best].Spec.Priority {
			best = i
		}
	}
	return best
}

// worker is one warm pool slot: claim, run, repeat.
func (s *Service) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if !s.draining {
				if i := s.nextRunnableLocked(); i >= 0 {
					j = s.queue[i]
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.cond.Wait()
		}
		s.queued[j.Spec.Tenant]--
		s.running[j.Spec.Tenant]++
		s.nRunning++
		s.jobWG.Add(1)
		s.updateGaugesLocked()
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		s.running[j.Spec.Tenant]--
		s.nRunning--
		s.updateGaugesLocked()
		s.cond.Broadcast() // the freed tenant slot may unblock a queued job
		s.mu.Unlock()
		s.jobWG.Done()
	}
}

// runJob executes one claimed job through its engine and settles the
// terminal state.
func (s *Service) runJob(j *Job) {
	s.mQueueWait.Observe(time.Since(j.created).Seconds())
	j.setState(StateRunning, "", "")
	start := time.Now()
	s.cfg.Logf("service: job %s running (%s)", j.ID, j.Mode)

	var stopped bool
	var err error
	if j.Mode == ModeFleet {
		stopped, err = s.runFleet(j)
	} else {
		stopped, err = s.runInproc(j)
	}
	s.mDuration.Observe(time.Since(start).Seconds())

	j.mu.Lock()
	j.cancel = nil
	reason := j.reason
	canceled := j.cancelRequested
	j.mu.Unlock()
	switch {
	case err != nil:
		j.setState(StateFailed, "", err.Error())
		s.mDone[StateFailed].Inc()
		s.cfg.Logf("service: job %s failed: %v", j.ID, err)
	case stopped || canceled:
		if reason == "" {
			reason = "stopped"
		}
		j.setState(StateCanceled, reason, "")
		s.mDone[StateCanceled].Inc()
		s.cfg.Logf("service: job %s canceled (%s)", j.ID, reason)
	default:
		j.setState(StateSucceeded, "", "")
		s.mDone[StateSucceeded].Inc()
		s.cfg.Logf("service: job %s succeeded in %v", j.ID, time.Since(start).Round(time.Millisecond))
	}
}

// installCancel arms the job's cancel hook, firing it immediately when a
// cancel raced the start.
func (j *Job) installCancel(cancel func(reason string)) {
	j.mu.Lock()
	already := j.cancelRequested
	reason := j.reason
	if !already {
		j.cancel = cancel
	}
	j.mu.Unlock()
	if already {
		cancel(reason)
	}
}

// runInproc executes the job inside the service process: the scenario's
// goroutine-rank world with the observables pipeline attached and a
// controller stop as the cancel hook. Returns whether the run was stopped
// gracefully.
func (s *Service) runInproc(j *Job) (stopped bool, err error) {
	c, err := scenario.Build(j.Spec.Scenario, j.Spec.ScenarioParams())
	if err != nil {
		return false, err
	}
	cfg := c.Config
	cfg.Cluster.Layout = j.Spec.Params.Layout
	ctl := sim.NewController()
	cfg.Control = ctl
	cfg.StopCheckpoint = true
	cfg.CheckpointPath = filepath.Join(j.Dir, "checkpoint.ckp")
	cfg.RestorePath = j.restore // resume a requeued drained job's work
	if j.Spec.Params.DumpEvery > 0 {
		// Frames land in the artifact directory AND on the event stream:
		// the sink runs on the world's rank 0 goroutine with the assembled
		// dump-file image, bitwise identical to the file beside it.
		cfg.DumpEvery = j.Spec.Params.DumpEvery
		cfg.DumpDir = j.Dir
		cfg.Encoder = j.Spec.Params.Encoder
		cfg.StreamFrames = true
		cfg.FrameSink = func(f dump.Frame) error {
			j.emitFrame(f)
			return nil
		}
	}
	j.installCancel(func(reason string) { ctl.Stop(reason) })

	obs := scenario.NewObserver(c)
	sum, err := sim.Run(cfg, func(st sim.StepInfo) {
		obs.OnStep(st)
		j.emitStep(st)
	})
	if err != nil {
		return false, err
	}
	// Observables land on the canceled path too: a stopped job leaves its
	// partial metrics as a usable artifact, exactly like mpcf-sim does.
	metrics := obs.Metrics()
	if err := writeJSON(filepath.Join(j.Dir, "observables.json"), metrics); err != nil {
		return sum.Stopped, err
	}
	j.setObservables(metrics)
	return sum.Stopped, nil
}

// runFleet executes the job as a local rank fleet of mpcf-sim processes
// over the tcp transport, streaming rank 0's structured step log and the
// muxed process output as events. The cancel hook is the launch package's
// SIGINT cascade, which the ranks turn into a collective boundary stop.
func (s *Service) runFleet(j *Job) (stopped bool, err error) {
	// Resolve the scenario defaults locally so the fleet flags pin every
	// parameter explicitly — an in-process job and a fleet job of the same
	// spec must run the identical case.
	c, err := scenario.Build(j.Spec.Scenario, j.Spec.ScenarioParams())
	if err != nil {
		return false, err
	}
	stepLogPath := filepath.Join(j.Dir, "steps.jsonl")
	obsPath := filepath.Join(j.Dir, "observables.json")
	fl, err := launch.Start(launch.Spec{
		N:      j.Spec.RankProduct(),
		SimBin: s.cfg.SimBin,
		Args:   s.fleetArgs(j, c),
		// The ranks get StopGrace to reach their boundary; the launcher's
		// SIGKILL escalation must land after that, not at its 2s default,
		// or a long-step job loses its final checkpoint to the kill.
		KillGrace: s.cfg.StopGrace + launch.KillGrace,
		RankArgs: func(rank int) []string {
			// Every rank gets a -step-log: attaching telemetry changes the
			// rank's collective schedule (the per-step imbalance statistic
			// costs three allreduces), so it must be uniform across the
			// fleet or the ranks deadlock. Each rank writes its own file —
			// all of them truncating one shared path would corrupt it —
			// and only rank 0's is tailed into the event stream.
			if rank != 0 {
				return []string{"-step-log",
					filepath.Join(j.Dir, fmt.Sprintf("steps.rank%d.jsonl", rank))}
			}
			// Rank 0 additionally writes the observables artifact; the
			// scenario observer is rank-local, so it stays rank-0-only.
			return []string{"-step-log", stepLogPath, "-observables", obsPath}
		},
		Stdout: j.lineWriter("out"),
		Stderr: j.lineWriter("launch"),
	})
	if err != nil {
		return false, err
	}
	j.installCancel(func(string) { fl.Interrupt() })

	// Tail rank 0's step log into the event stream while the fleet runs,
	// and — when the job dumps — the frame log the rank-0 sink appends.
	tailStop := make(chan struct{})
	tailDone := make(chan struct{})
	go tailStepLog(stepLogPath, tailStop, tailDone, j)
	frameDone := make(chan struct{})
	if j.Spec.Params.DumpEvery > 0 {
		go tailFrameLog(filepath.Join(j.Dir, "frames.jsonl"), tailStop, frameDone, j)
	} else {
		close(frameDone)
	}

	code := fl.Wait()
	close(tailStop)
	<-tailDone
	<-frameDone

	if m, rerr := readObservables(obsPath); rerr == nil {
		j.setObservables(m)
	}
	j.mu.Lock()
	canceled := j.cancelRequested
	j.mu.Unlock()
	if canceled {
		// The SIGINT cascade makes interrupted ranks exit 130; that is the
		// cancel succeeding, not a failure.
		return true, nil
	}
	if code != 0 {
		return false, fmt.Errorf("fleet exited with code %d", code)
	}
	return false, nil
}

// fleetArgs renders the job's resolved case as mpcf-sim flags.
func (s *Service) fleetArgs(j *Job, c *scenario.Case) []string {
	cc := c.Config.Cluster
	p := j.Spec.Params
	args := []string{
		"-scenario", j.Spec.Scenario,
		"-quiet",
		"-steps", fmt.Sprint(c.Config.Steps),
		"-n", fmt.Sprint(cc.BlockSize),
		"-blocks", triple(cc.BlockDims),
		"-ranks", triple(cc.RankDims),
		"-diag-every", fmt.Sprint(c.Config.DiagEvery),
		"-stop-checkpoint",
		"-checkpoint", filepath.Join(j.Dir, "checkpoint.ckp"),
		"-stop-grace", s.cfg.StopGrace.String(),
	}
	if j.restore != "" {
		args = append(args, "-restore", j.restore)
	}
	if p.Seed != 0 {
		args = append(args, "-seed", fmt.Sprint(p.Seed))
	}
	if p.Beta > 0 {
		args = append(args, "-beta", fmt.Sprint(p.Beta))
	}
	if p.Bubbles != 0 {
		args = append(args, "-bubbles", fmt.Sprint(p.Bubbles))
	}
	if p.Workers != 0 {
		args = append(args, "-workers", fmt.Sprint(p.Workers))
	}
	if p.Layout != "" {
		args = append(args, "-layout", p.Layout)
	}
	if p.DumpEvery > 0 {
		// Dump flags are uniform across the fleet (frame streaming is
		// collective); -frame-log is uniform too, but only rank 0 — the
		// stream's sink — ever writes it, so the shared path is safe.
		args = append(args, "-dump-every", fmt.Sprint(p.DumpEvery),
			"-dump-dir", j.Dir,
			"-frame-log", filepath.Join(j.Dir, "frames.jsonl"))
		if p.Encoder != "" {
			args = append(args, "-encoder", p.Encoder)
		}
	}
	return args
}

func triple(t [3]int) string { return fmt.Sprintf("%d,%d,%d", t[0], t[1], t[2]) }

// tailStepLog polls rank 0's JSONL step log and re-emits each record as a
// step event; after stop it drains whatever the final flush appended.
func tailStepLog(path string, stop <-chan struct{}, done chan<- struct{}, j *Job) {
	tailJSONL(path, stop, done, func(line []byte) {
		var rec telemetry.StepRecord
		if json.Unmarshal(line, &rec) != nil {
			return
		}
		j.emit(Event{Type: "step", Step: &StepEvent{
			Step: rec.Step, T: rec.Time, DT: rec.DT, WallMS: rec.WallMS,
			HasDiag:     rec.HasDiag,
			MaxPressure: rec.MaxPressure, WallPressure: rec.WallPressure,
			KineticEnergy: rec.KineticEnergy, EquivRadius: rec.EquivRadius,
		}})
	})
}

// tailFrameLog polls the frame log the fleet's rank-0 sink appends
// (mpcf-sim -frame-log) and re-emits each record as a frame event carrying
// the complete dump-file bytes.
func tailFrameLog(path string, stop <-chan struct{}, done chan<- struct{}, j *Job) {
	tailJSONL(path, stop, done, func(line []byte) {
		var rec dump.FrameRecord
		if json.Unmarshal(line, &rec) != nil {
			return
		}
		j.emitFrame(dump.Frame{Name: rec.Name, Step: rec.Step,
			Quantity: rec.Quantity, Time: rec.Time, Data: rec.Data})
	})
}

// tailJSONL polls a growing JSONL file, invoking emit with each complete
// line; after stop it drains whatever the final flush appended. The file
// may not exist yet when the tail starts.
func tailJSONL(path string, stop <-chan struct{}, done chan<- struct{}, emit func(line []byte)) {
	defer close(done)
	var f *os.File
	var rd *bufio.Reader
	var partial []byte
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	drain := func() {
		if f == nil {
			var err error
			if f, err = os.Open(path); err != nil {
				return
			}
			rd = bufio.NewReader(f)
		}
		for {
			chunk, err := rd.ReadBytes('\n')
			if len(chunk) > 0 {
				partial = append(partial, chunk...)
			}
			if err != nil {
				return // EOF for now; the partial tail carries over
			}
			line := partial
			partial = nil
			emit(line)
		}
	}
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			drain()
		case <-stop:
			drain()
			return
		}
	}
}

// lineWriter adapts the job's log-event stream to an io.Writer for the
// fleet's output mux, splitting on newlines and flushing any unterminated
// tail when the fleet closes the stream.
func (j *Job) lineWriter(source string) io.Writer {
	return &lineWriter{j: j, source: source}
}

type lineWriter struct {
	j      *Job
	source string

	mu  sync.Mutex // the per-rank mux goroutines share one writer
	buf []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := string(w.buf[:i])
		w.buf = w.buf[i+1:]
		if line != "" {
			w.j.emit(Event{Type: "log", Line: line})
		}
	}
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readObservables(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return m, nil
}
