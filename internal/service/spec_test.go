package service

import (
	"strings"
	"testing"
)

func validSpec() JobSpec {
	return JobSpec{
		Scenario: "shockbubble",
		Tenant:   "alice",
		Params: SpecParams{
			Blocks: [3]int{2, 2, 2}, BlockSize: 8, Steps: 4, DiagEvery: 2,
		},
	}
}

func TestSpecIDDeterministic(t *testing.T) {
	a, b := validSpec(), validSpec()
	if a.ID() != b.ID() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.ID(), b.ID())
	}
	b.Nonce = "rerun-1"
	if a.ID() == b.ID() {
		t.Fatalf("nonce did not change the ID")
	}
	c := validSpec()
	c.Params.Steps = 5
	if a.ID() == c.ID() {
		t.Fatalf("parameter change did not change the ID")
	}
	if !strings.HasPrefix(a.ID(), "j-") || len(a.ID()) != 18 {
		t.Fatalf("ID %q not in j-<16 hex> form", a.ID())
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"scenario":"cloud","tenant":"a","bogus":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	_, err = ParseSpec(strings.NewReader(`{"scenario":"cloud","tenant":"a"} trailing`))
	if err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
	}{
		{"unknown scenario", func(s *JobSpec) { s.Scenario = "warp" }},
		{"empty tenant", func(s *JobSpec) { s.Tenant = "" }},
		{"tenant with slash", func(s *JobSpec) { s.Tenant = "a/b" }},
		{"tenant with dotdot is fine but spaces are not", func(s *JobSpec) { s.Tenant = "a b" }},
		{"priority out of range", func(s *JobSpec) { s.Priority = 11 }},
		{"bad mode", func(s *JobSpec) { s.Mode = "warp" }},
		{"partial ranks triple", func(s *JobSpec) { s.Params.Ranks = [3]int{2, 0, 0} }},
		{"rank product over cap", func(s *JobSpec) { s.Params.Ranks = [3]int{4, 4, 4} }},
		{"block size not multiple of 4", func(s *JobSpec) { s.Params.BlockSize = 10 }},
		{"negative steps", func(s *JobSpec) { s.Params.Steps = -1 }},
		{"negative seed", func(s *JobSpec) { s.Params.Seed = -3 }},
		{"bad layout", func(s *JobSpec) { s.Params.Layout = "zigzag" }},
		{"beta and bubbles together", func(s *JobSpec) {
			s.Scenario = "cloud"
			s.Params.Beta = 2
			s.Params.Bubbles = 5
		}},
		{"array edge beyond registry bound", func(s *JobSpec) {
			s.Scenario = "array"
			s.Params.Bubbles = 9
		}},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, s)
		}
	}
	ok := validSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// FuzzJobSpec drives the submit-side parser and validator with arbitrary
// bytes: no input may panic, and any input that validates must have a
// stable deterministic ID and an idempotent validation verdict.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"scenario":"cloud","tenant":"alice","params":{"steps":10}}`))
	f.Add([]byte(`{"scenario":"shockbubble","tenant":"bob","priority":5,"mode":"fleet","params":{"ranks":[2,1,1]}}`))
	f.Add([]byte(`{"scenario":"array","tenant":"t-1","nonce":"n","params":{"bubbles":2,"layout":"hilbert"}}`))
	f.Add([]byte(`{"scenario":"cloud","tenant":"x","params":{"beta":1.5,"seed":7}}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			return
		}
		if got, again := spec.ID(), spec.ID(); got != again {
			t.Fatalf("ID not deterministic: %s vs %s", got, again)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("validation not idempotent: %v", err)
		}
	})
}
