package service

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"time"

	"cubism/internal/dump"
	"cubism/internal/sim"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: Queued → Running → one of the terminal states. Canceled
// covers both a user cancel and a service drain (the StopReason event
// distinguishes them); a drained running job leaves a checkpoint at the
// stop boundary.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's result stream, replayed in full to every
// subscriber and then followed live. Seq is the 0-based position in the
// stream, so a reconnecting subscriber resumes with ?from=<next seq>.
type Event struct {
	Seq  int       `json:"seq"`
	Type string    `json:"type"` // state | step | log | observables | frame
	Time time.Time `json:"time"`

	// State transitions ("state" events); Reason explains cancels.
	State  JobState `json:"state,omitempty"`
	Reason string   `json:"reason,omitempty"`
	Error  string   `json:"error,omitempty"`

	// Step carries the per-step physics record ("step" events).
	Step *StepEvent `json:"step,omitempty"`

	// Line is one process-output line of a fleet job ("log" events).
	Line string `json:"line,omitempty"`

	// Observables is the final collapse metric map ("observables" events).
	Observables map[string]float64 `json:"observables,omitempty"`

	// Frame carries one streamed compressed snapshot ("frame" events).
	Frame *FrameEvent `json:"frame,omitempty"`
}

// FrameEvent is one streamed compressed dump on the event stream: Data is
// the complete dump-file image (bitwise identical to the file in the job's
// artifact directory), base64-encoded on the wire, decodable with
// dump.Decode.
type FrameEvent struct {
	Name     string  `json:"name"`
	Step     int     `json:"step"`
	Quantity string  `json:"quantity"`
	T        float64 `json:"t"`
	Bytes    int     `json:"bytes"`
	Data     []byte  `json:"data"`
}

// StepEvent is the streamed per-step record: step counter, simulated
// time, and the Figure-5 diagnostics when that step computed them.
type StepEvent struct {
	Step   int     `json:"step"`
	T      float64 `json:"t"`
	DT     float64 `json:"dt"`
	WallMS float64 `json:"wall_ms,omitempty"`

	HasDiag       bool    `json:"has_diag,omitempty"`
	MaxPressure   float64 `json:"max_p,omitempty"`
	WallPressure  float64 `json:"wall_p,omitempty"`
	KineticEnergy float64 `json:"kinetic_energy,omitempty"`
	EquivRadius   float64 `json:"equiv_radius,omitempty"`
}

// Job is one submitted simulation. All mutable state is guarded by mu;
// the cond broadcasts on every appended event and on the terminal
// transition, which is also what wakes streaming subscribers.
type Job struct {
	// Immutable after admission.
	ID   string
	Spec JobSpec
	Mode string // resolved ModeInproc or ModeFleet
	Dir  string // per-job artifact directory
	seq  int64  // admission order, tiebreak within a priority

	mu   sync.Mutex
	cond *sync.Cond

	state           JobState
	reason          string // cancel/drain reason
	errMsg          string
	cancelRequested bool
	// drained marks a running job canceled by a service drain: the queue
	// snapshot includes it (with its boundary checkpoint as the restore
	// point) so the next service start resumes its work.
	drained bool

	// restore is the checkpoint a requeued drained job resumes from. It is
	// installed by requeueSnapshot before the worker pool starts and never
	// written afterwards, so the engines read it without holding mu.
	restore string

	created, started, finished time.Time
	observables                map[string]float64
	subscribers                int

	events    []Event
	eventsLog *os.File // events.jsonl artifact, nil once closed

	// cancel is installed by the runner while the job executes: it
	// requests a graceful stop of whichever engine runs the job (controller
	// stop for in-process, SIGINT cascade for fleets).
	cancel func(reason string)
}

func newJob(id string, spec JobSpec, mode, dir string, seq int64) *Job {
	j := &Job{ID: id, Spec: spec, Mode: mode, Dir: dir, seq: seq,
		state: StateQueued, created: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// emitLocked appends one event, stamps its sequence number, persists it to
// the events.jsonl artifact and wakes subscribers. Callers hold mu.
func (j *Job) emitLocked(e Event) {
	e.Seq = len(j.events)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.events = append(j.events, e)
	if j.eventsLog != nil {
		if b, err := json.Marshal(e); err == nil {
			j.eventsLog.Write(append(b, '\n'))
		}
	}
	j.cond.Broadcast()
}

func (j *Job) emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(e)
}

// setState transitions the job and emits the state event; terminal states
// close the events artifact.
func (j *Job) setState(s JobState, reason, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	switch s {
	case StateRunning:
		j.started = time.Now()
	case StateSucceeded, StateFailed, StateCanceled:
		j.finished = time.Now()
		j.reason = reason
		j.errMsg = errMsg
	}
	j.emitLocked(Event{Type: "state", State: s, Reason: reason, Error: errMsg})
	if s.Terminal() && j.eventsLog != nil {
		j.eventsLog.Close()
		j.eventsLog = nil
	}
}

// emitStep streams one sim step.
func (j *Job) emitStep(s sim.StepInfo) {
	ev := &StepEvent{Step: s.Step, T: s.Time, DT: s.DT, WallMS: s.WallMS}
	if s.HasDiag {
		ev.HasDiag = true
		ev.MaxPressure = s.Diag.MaxPressure
		ev.WallPressure = s.Diag.WallPressure
		ev.KineticEnergy = s.Diag.KineticEnergy
		ev.EquivRadius = s.Diag.EquivRadius
	}
	j.emit(Event{Type: "step", Step: ev})
}

// emitFrame streams one compressed dump frame.
func (j *Job) emitFrame(f dump.Frame) {
	j.emit(Event{Type: "frame", Frame: &FrameEvent{
		Name: f.Name, Step: f.Step, Quantity: f.Quantity,
		T: f.Time, Bytes: len(f.Data), Data: f.Data,
	}})
}

// setObservables records the final metric map and streams it.
func (j *Job) setObservables(m map[string]float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.observables = m
	j.emitLocked(Event{Type: "observables", Observables: m})
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Observables returns the final metric map (nil until the run produced it).
func (j *Job) Observables() map[string]float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.observables
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.State().Terminal() }

// EventsSince blocks until events past seq exist (or the job is terminal),
// then returns a snapshot of them plus whether the stream is complete.
// A canceled ctx unblocks the wait and returns ctx.Err().
func (j *Job) EventsSince(ctx context.Context, seq int) ([]Event, bool, error) {
	// Wake the cond wait when the subscriber goes away; Broadcast is the
	// only cross-goroutine kick a cond understands.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= seq && !j.state.Terminal() {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		j.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	evs := append([]Event(nil), j.events[min(seq, len(j.events)):]...)
	// >= (not ==) clamps a resume position past the end of a terminal
	// stream: the wait loop above is skipped for terminal states, so an
	// out-of-range seq would otherwise report done=false forever and spin
	// the caller's stream loop hot.
	done := j.state.Terminal() && seq+len(evs) >= len(j.events)
	return evs, done, nil
}

// Status is the wire shape of GET /v1/jobs/{id}.
type Status struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	Scenario string   `json:"scenario"`
	Mode     string   `json:"mode"`
	Priority int      `json:"priority"`
	State    JobState `json:"state"`
	Reason   string   `json:"reason,omitempty"`
	Error    string   `json:"error,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	Events      int                `json:"events"`
	Subscribers int                `json:"subscribers"`
	ArtifactDir string             `json:"artifact_dir,omitempty"`
	Observables map[string]float64 `json:"observables,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Tenant: j.Spec.Tenant, Scenario: j.Spec.Scenario,
		Mode: j.Mode, Priority: j.Spec.Priority,
		State: j.state, Reason: j.reason, Error: j.errMsg,
		Created: j.created, Events: len(j.events),
		Subscribers: j.subscribers,
		ArtifactDir: j.Dir, Observables: j.observables,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
