package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cubism/internal/dump"
)

// TestInprocJobStreamsFrames: a job with dump_every set streams every
// compressed dump as a "frame" event whose payload is bitwise identical to
// the dump file in the job's artifact directory, and whose decoded fields
// match the file's decoded fields exactly.
func TestInprocJobStreamsFrames(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	spec := fastSpec("alice", "")
	spec.Params.DumpEvery = 2
	spec.Params.Encoder = "huff"
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 60*time.Second); st != StateSucceeded {
		t.Fatalf("job ended %s, want succeeded", st)
	}
	evs, done, err := j.EventsSince(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("terminal job's event stream not reported done")
	}
	frames := 0
	for _, e := range evs {
		if e.Type != "frame" {
			continue
		}
		frames++
		f := e.Frame
		if f == nil || f.Name == "" || len(f.Data) == 0 {
			t.Fatalf("frame event missing payload: %+v", f)
		}
		if f.Bytes != len(f.Data) {
			t.Fatalf("frame %s claims %d bytes, carries %d", f.Name, f.Bytes, len(f.Data))
		}
		// The event payload must be the dump file, bit for bit.
		fileData, err := os.ReadFile(filepath.Join(j.Dir, f.Name))
		if err != nil {
			t.Fatalf("frame %s has no artifact twin: %v", f.Name, err)
		}
		if !bytes.Equal(f.Data, fileData) {
			t.Fatalf("frame %s differs from the on-disk dump (%d vs %d bytes)",
				f.Name, len(f.Data), len(fileData))
		}
		// And it must decode: same header, losslessly recoverable fields.
		hdr, comps, err := dump.Decode(f.Data)
		if err != nil {
			t.Fatalf("decoding frame %s: %v", f.Name, err)
		}
		if hdr.Step != f.Step || hdr.Quantity != f.Quantity || hdr.Time != f.T {
			t.Fatalf("frame %s metadata %d/%s/%g disagrees with header %d/%s/%g",
				f.Name, f.Step, f.Quantity, f.T, hdr.Step, hdr.Quantity, hdr.Time)
		}
		fileHdr, fileComps, err := dump.Decode(fileData)
		if err != nil {
			t.Fatalf("decoding dump file %s: %v", f.Name, err)
		}
		if fileHdr.Step != hdr.Step || fileHdr.Quantity != hdr.Quantity || fileHdr.Time != hdr.Time {
			t.Fatalf("frame and file headers disagree for %s", f.Name)
		}
		if len(comps) != len(fileComps) {
			t.Fatalf("frame decodes to %d rank payloads, file to %d", len(comps), len(fileComps))
		}
		for r := range comps {
			got, err := comps[r].Decompress()
			if err != nil {
				t.Fatalf("decompressing frame %s rank %d: %v", f.Name, r, err)
			}
			want, err := fileComps[r].Decompress()
			if err != nil {
				t.Fatalf("decompressing file %s rank %d: %v", f.Name, r, err)
			}
			if len(got) != len(want) {
				t.Fatalf("rank %d: frame has %d blocks, file %d", r, len(got), len(want))
			}
			for b := range got {
				for i := range got[b] {
					if got[b][i] != want[b][i] {
						t.Fatalf("frame %s rank %d block %d sample %d: %g != %g",
							f.Name, r, b, i, got[b][i], want[b][i])
					}
				}
			}
		}
	}
	// Steps 2 and 4 dump, each shipping p and Γ.
	if frames != 4 {
		t.Fatalf("stream carries %d frame events, want 4", frames)
	}
}

// TestFleetFrameTail: a fleet job with dump_every set gets -frame-log in
// its rank args, and the service tails the records the rank-0 sink appends
// back into frame events with the payload intact.
func TestFleetFrameTail(t *testing.T) {
	s := fleetService(t, false)
	spec := fastSpec("alice", "")
	spec.Params.Ranks = [3]int{2, 1, 1}
	spec.Params.DumpEvery = 2
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateSucceeded {
		t.Fatalf("fleet job ended %s", st)
	}
	evs, _, err := j.EventsSince(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got *FrameEvent
	for _, e := range evs {
		if e.Type == "frame" {
			got = e.Frame
		}
	}
	if got == nil {
		t.Fatal("fleet stream carries no frame events")
	}
	if got.Name != "p_step000002.mpcf" || got.Step != 2 || got.Quantity != "p" {
		t.Fatalf("frame metadata %+v", got)
	}
	if !bytes.Equal(got.Data, fakeFramePayload()) {
		t.Fatalf("frame payload did not survive the log tail: %q", got.Data)
	}
}
