package sim

import (
	"math"
	"net"
	"sync"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
)

// TestTCPBitwiseMatchesInproc is the transport-correctness keystone: the
// same 2-rank Sod problem advanced over the tcp wire must produce conserved
// totals bitwise identical to the in-process transport. Any divergence —
// a reordered reduction, a corrupted halo byte, a dropped frame — shows up
// as a flipped float64 bit here.
func TestTCPBitwiseMatchesInproc(t *testing.T) {
	const steps = 3
	baseCfg := func() Config {
		return Config{
			Cluster: cluster.Config{
				RankDims:  [3]int{2, 1, 1},
				BlockDims: [3]int{2, 1, 1},
				BlockSize: 8,
				Extent:    1,
				Workers:   2,
				CFL:       0.3,
				Init:      SodInit,
			},
			Steps:     steps,
			DiagEvery: 1 << 30,
		}
	}

	totalsOn := func(cfg Config, sink *cluster.Totals) Config {
		cfg.OnFinish = func(r *cluster.Rank) {
			tot := r.ConservedTotals() // collective: every rank participates
			if r.Comm.Rank() == 0 {
				*sink = tot
			}
		}
		return cfg
	}

	var ref cluster.Totals
	if _, err := Run(totalsOn(baseCfg(), &ref), nil); err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	// The tcp run: two single-rank worlds in this process over loopback,
	// each driving its own sim.Run — exactly what two mpcf-sim processes do.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*mpi.World, 2)
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				OnError: func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}

	var got cluster.Totals
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := totalsOn(baseCfg(), &got)
			cfg.World = worlds[rank]
			_, runErrs[rank] = Run(cfg, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}

	fields := []struct {
		name     string
		ref, got float64
	}{
		{"mass", ref.Mass, got.Mass},
		{"mom_x", ref.MomX, got.MomX},
		{"mom_y", ref.MomY, got.MomY},
		{"mom_z", ref.MomZ, got.MomZ},
		{"energy", ref.Energy, got.Energy},
		{"gamma_min", ref.GammaMin, got.GammaMin},
		{"gamma_max", ref.GammaMax, got.GammaMax},
		{"pi_min", ref.PiMin, got.PiMin},
		{"pi_max", ref.PiMax, got.PiMax},
		{"time", ref.Time, got.Time},
	}
	for _, f := range fields {
		if math.Float64bits(f.ref) != math.Float64bits(f.got) {
			t.Errorf("%s diverged across transports: inproc %016x (%v) vs tcp %016x (%v)",
				f.name, math.Float64bits(f.ref), f.ref, math.Float64bits(f.got), f.got)
		}
	}
	if ref.Step != got.Step {
		t.Errorf("step count diverged: inproc %d vs tcp %d", ref.Step, got.Step)
	}
}
