package sim

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
	"cubism/internal/transport/faulty"
)

// rebalanceBase is the shared 2-rank problem for the migration keystones:
// a 4x2x2 global box (16 blocks) so skewed curve cuts leave real work to
// move between the ranks.
func rebalanceBase(steps int) Config {
	return Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: 8,
			Extent:    1,
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     steps,
		DiagEvery: 1 << 30,
	}
}

func rebalanceTotalsOn(cfg Config, sink *cluster.Totals) Config {
	cfg.OnFinish = func(r *cluster.Rank) {
		tot := r.ConservedTotals()
		if r.Comm.Rank() == 0 {
			*sink = tot
		}
	}
	return cfg
}

// TestSimForcedRebalanceBitwise: a hilbert run that starts from skewed curve
// cuts and migrates blocks mid-run (via the sim-level ForceRebalanceStep
// hook) must produce conserved totals bitwise identical to the undisturbed
// cartesian run — the layout layer and live migration are invisible to the
// physics all the way up through the campaign driver.
func TestSimForcedRebalanceBitwise(t *testing.T) {
	const steps = 5
	var ref cluster.Totals
	if _, err := Run(rebalanceTotalsOn(rebalanceBase(steps), &ref), nil); err != nil {
		t.Fatalf("cartesian run: %v", err)
	}

	var got cluster.Totals
	cfg := rebalanceTotalsOn(rebalanceBase(steps), &got)
	cfg.Cluster.Layout = "hilbert"
	cfg.Cluster.LayoutCuts = []int{0, 13, 16} // rank 0 starts with 13 of 16 blocks
	cfg.ForceRebalanceStep = 2
	var moved int
	if _, err := Run(cfg, func(s StepInfo) {
		if s.HasRebalance && s.Rebalance.Moved > moved {
			moved = s.Rebalance.Moved
		}
	}); err != nil {
		t.Fatalf("hilbert run: %v", err)
	}
	if moved == 0 {
		t.Fatal("forced rebalance moved no blocks; migration path not exercised")
	}
	assertTotalsBitwise(t, "migrated hilbert vs cartesian", ref, got)
}

// TestSimMigrationBitwiseOverTCPChaos is the migration fault drill: the
// skewed-cuts hilbert run rebalances mid-run while the tcp wire drops,
// duplicates and resets frames. The migration payloads ride the same
// reliability layer as the halos, so the final totals must still match the
// clean in-process cartesian run bit for bit.
func TestSimMigrationBitwiseOverTCPChaos(t *testing.T) {
	const steps = 5
	var ref cluster.Totals
	if _, err := Run(rebalanceTotalsOn(rebalanceBase(steps), &ref), nil); err != nil {
		t.Fatalf("inproc cartesian run: %v", err)
	}

	plan := faulty.Plan{Seed: 1311, Drop: 0.05, Dup: 0.05, Reset: 0.01}
	faults := &countingInjector{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*mpi.World, 2)
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				HeartbeatInterval: 50 * time.Millisecond,
				RetransmitTimeout: 150 * time.Millisecond,
				PeerTimeout:       20 * time.Second,
				Fault:             &countingShared{faults, faulty.New(plan)},
				OnError:           func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}

	var got cluster.Totals
	var moved atomic.Int64
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := rebalanceTotalsOn(rebalanceBase(steps), &got)
			cfg.Cluster.Layout = "hilbert"
			cfg.Cluster.LayoutCuts = []int{0, 13, 16}
			cfg.ForceRebalanceStep = 2
			cfg.World = worlds[rank]
			_, runErrs[rank] = Run(cfg, func(s StepInfo) {
				if s.HasRebalance && int64(s.Rebalance.Moved) > moved.Load() {
					moved.Store(int64(s.Rebalance.Moved))
				}
			})
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
	if moved.Load() == 0 {
		t.Fatal("forced rebalance moved no blocks over the wire")
	}
	assertTotalsBitwise(t, "chaos tcp migration vs inproc cartesian", ref, got)
	if faults.n.Load() == 0 {
		t.Fatalf("plan %q injected no faults; the drill proved nothing", plan.String())
	}
	t.Logf("faults injected: %d, blocks moved: %d", faults.n.Load(), moved.Load())
}
