package sim

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"cubism/internal/cluster"
)

func smallConfig() Config {
	return Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 1, 1},
			BlockSize: 8,
			Extent:    1,
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps: 5,
	}
}

func TestRunStepsAndSummary(t *testing.T) {
	var infos []StepInfo
	sum, err := Run(smallConfig(), func(s StepInfo) { infos = append(infos, s) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Steps != 5 {
		t.Fatalf("steps = %d, want 5", sum.Steps)
	}
	if len(infos) != 5 {
		t.Fatalf("callbacks = %d, want 5", len(infos))
	}
	if sum.GlobalCells != 2*8*8*8 {
		t.Fatalf("cells = %d", sum.GlobalCells)
	}
	if sum.PointsPerSec <= 0 {
		t.Fatal("points/s not positive")
	}
	for i, s := range infos {
		if s.Step != i+1 {
			t.Fatalf("info %d has step %d", i, s.Step)
		}
		if s.DT <= 0 || math.IsNaN(s.DT) {
			t.Fatalf("dt = %g", s.DT)
		}
		if !s.HasDiag {
			t.Fatal("diagnostics expected every step by default")
		}
	}
	// Time increases monotonically.
	for i := 1; i < len(infos); i++ {
		if infos[i].Time <= infos[i-1].Time {
			t.Fatal("time not increasing")
		}
	}
}

func TestRunTEndStopsEarly(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 100000
	cfg.TEnd = 1e-2
	sum, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SimTime < 1e-2 {
		t.Fatalf("stopped at t=%g before TEnd", sum.SimTime)
	}
	if sum.Steps >= 100000 {
		t.Fatal("TEnd did not stop the run")
	}
}

func TestRunMultiRankDumps(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{1, 1, 1},
			BlockSize: 8,
			Extent:    1,
			Workers:   1,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     4,
		DumpEvery: 2,
		DumpDir:   dir,
		DiagEvery: 2,
	}
	var rates []map[string]float64
	sum, err := Run(cfg, func(s StepInfo) {
		if s.DumpRates != nil {
			rates = append(rates, s.DumpRates)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Steps != 4 {
		t.Fatalf("steps = %d", sum.Steps)
	}
	if len(rates) != 2 {
		t.Fatalf("dump callbacks = %d, want 2", len(rates))
	}
	for _, r := range rates {
		if r["p"] <= 1 || r["G"] <= 1 {
			t.Fatalf("implausible rates %v", r)
		}
	}
	// Files exist and parse.
	for _, name := range []string{"p_step000002.mpcf", "G_step000002.mpcf", "p_step000004.mpcf", "G_step000004.mpcf"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing dump %s: %v", name, err)
		}
	}
}

func TestRunDiagCadence(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 6
	cfg.DiagEvery = 3
	var withDiag int
	if _, err := Run(cfg, func(s StepInfo) {
		if s.HasDiag {
			withDiag++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if withDiag != 2 {
		t.Fatalf("diagnostics at %d steps, want 2", withDiag)
	}
}

func TestRunInvalidRanks(t *testing.T) {
	cfg := smallConfig()
	cfg.Cluster.RankDims = [3]int{0, 1, 1}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("expected error for invalid rank dims")
	}
}

func TestSodInitStates(t *testing.T) {
	l := SodInit(0.25, 0, 0)
	r := SodInit(0.75, 0, 0)
	if l.Rho != 1 || l.P != 1 || r.Rho != 0.125 || r.P != 0.1 {
		t.Errorf("Sod states wrong: %+v %+v", l, r)
	}
	if l.G != r.G {
		t.Error("Sod must be single-phase")
	}
}

// TestKernelSharesShape: RHS must dominate the step time (paper Figure 7).
func TestKernelSharesShape(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 3
	sum, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.KernelShare["RHS"] < 0.5 {
		t.Errorf("RHS share %.2f, want > 0.5", sum.KernelShare["RHS"])
	}
	if sum.KernelShare["UP"] > sum.KernelShare["RHS"] {
		t.Error("UP share exceeds RHS share")
	}
}
