package sim

import (
	"path/filepath"
	"testing"

	"cubism/internal/cluster"
)

// controlCfg is the small 2-rank Sod problem of the restore tests, with
// the conserved-totals sink attached.
func controlCfg(steps int, sink *cluster.Totals) Config {
	cfg := Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{2, 1, 1},
			BlockSize: 8,
			Extent:    1,
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     steps,
		DiagEvery: 1 << 30,
	}
	if sink != nil {
		cfg.OnFinish = func(r *cluster.Rank) {
			tot := r.ConservedTotals()
			if r.Comm.Rank() == 0 {
				*sink = tot
			}
		}
	}
	return cfg
}

// TestControllerStopsAtBoundaryWithCheckpoint: Stop() mid-run must end the
// run at the next step boundary with Summary.Stopped set, write the final
// checkpoint there (StopCheckpoint, no periodic cadence), and a restored
// run must finish on conserved totals bitwise identical to an
// uninterrupted run — cancellation costs no physics.
func TestControllerStopsAtBoundaryWithCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "stop.ckp")

	// Reference: the uninterrupted 8-step run.
	var ref cluster.Totals
	if _, err := Run(controlCfg(8, &ref), nil); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Stopped run: request the stop from the rank-0 step callback after
	// step 3. The collective stop check must drain BOTH ranks at the step-4
	// boundary even though only rank 0's controller flag is set locally.
	ctl := NewController()
	stopped := controlCfg(8, nil)
	stopped.Control = ctl
	stopped.StopCheckpoint = true
	stopped.CheckpointPath = ckpt
	sum, err := Run(stopped, func(s StepInfo) {
		if s.Step == 3 {
			ctl.Stop("test cancel")
		}
	})
	if err != nil {
		t.Fatalf("stopped run: %v", err)
	}
	if !sum.Stopped {
		t.Fatalf("Summary.Stopped = false after a controller stop")
	}
	if sum.StopReason != "test cancel" {
		t.Fatalf("StopReason = %q, want %q", sum.StopReason, "test cancel")
	}
	if sum.Steps != 3 {
		t.Fatalf("stopped run ended at step %d, want the boundary after step 3", sum.Steps)
	}
	select {
	case <-ctl.Done():
	default:
		t.Fatal("controller Done channel not closed after Stop")
	}
	select {
	case <-ctl.Acked():
	default:
		t.Fatal("controller Acked channel not closed after the boundary stop")
	}

	// Resume: exactly steps 4..8 run, and the final totals match the
	// uninterrupted run bit for bit.
	var got cluster.Totals
	resumed := controlCfg(8, &got)
	resumed.RestorePath = ckpt
	var stepsSeen []int
	if _, err := Run(resumed, func(s StepInfo) { stepsSeen = append(stepsSeen, s.Step) }); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(stepsSeen) != 5 || stepsSeen[0] != 4 || stepsSeen[4] != 8 {
		t.Fatalf("resumed run executed steps %v, want [4 5 6 7 8]", stepsSeen)
	}
	assertTotalsBitwise(t, "resumed-after-cancel vs uninterrupted", ref, got)
}

// TestControllerStopBeforeFirstStep: a stop requested before the run
// begins must drain it before any step executes.
func TestControllerStopBeforeFirstStep(t *testing.T) {
	ctl := NewController()
	ctl.Stop("pre-run")
	cfg := controlCfg(8, nil)
	cfg.Control = ctl
	steps := 0
	sum, err := Run(cfg, func(StepInfo) { steps++ })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if steps != 0 || sum.Steps != 0 || !sum.Stopped {
		t.Fatalf("pre-stopped run executed %d steps (summary %d, stopped %v), want none",
			steps, sum.Steps, sum.Stopped)
	}
}

// TestControllerNoStopIsInert: an attached controller that never fires
// must not change the run's physics (the per-step stop allreduce is pure
// control traffic).
func TestControllerNoStopIsInert(t *testing.T) {
	var ref, got cluster.Totals
	if _, err := Run(controlCfg(6, &ref), nil); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	cfg := controlCfg(6, &got)
	cfg.Control = NewController()
	sum, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("controlled run: %v", err)
	}
	if sum.Stopped {
		t.Fatal("idle controller reported Stopped")
	}
	assertTotalsBitwise(t, "idle controller vs plain", ref, got)
}
