package sim

import (
	"bytes"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/dump"
	"cubism/internal/mpi"
	"cubism/internal/transport"
	"cubism/internal/transport/faulty"
)

// countingInjector wraps a fault injector to prove faults actually fired.
type countingInjector struct {
	inner transport.FaultInjector
	n     atomic.Int64
}

func (c *countingInjector) Outgoing(dst, tag, size int) transport.FaultDecision {
	d := c.inner.Outgoing(dst, tag, size)
	if d.Action != transport.FaultPass {
		c.n.Add(1)
	}
	return d
}

// countingShared gives each rank its own deterministic injector while
// funneling all ranks' hits into one shared counter.
type countingShared struct {
	c     *countingInjector
	inner transport.FaultInjector
}

func (cs *countingShared) Outgoing(dst, tag, size int) transport.FaultDecision {
	d := cs.inner.Outgoing(dst, tag, size)
	if d.Action != transport.FaultPass {
		cs.c.n.Add(1)
	}
	return d
}

// totalsFields flattens the conserved totals for bitwise comparison.
func totalsFields(tot cluster.Totals) []struct {
	name string
	v    float64
} {
	return []struct {
		name string
		v    float64
	}{
		{"mass", tot.Mass},
		{"mom_x", tot.MomX},
		{"mom_y", tot.MomY},
		{"mom_z", tot.MomZ},
		{"energy", tot.Energy},
		{"gamma_min", tot.GammaMin},
		{"gamma_max", tot.GammaMax},
		{"pi_min", tot.PiMin},
		{"pi_max", tot.PiMax},
		{"time", tot.Time},
	}
}

func assertTotalsBitwise(t *testing.T, label string, ref, got cluster.Totals) {
	t.Helper()
	rf, gf := totalsFields(ref), totalsFields(got)
	for i := range rf {
		if math.Float64bits(rf[i].v) != math.Float64bits(gf[i].v) {
			t.Errorf("%s: %s diverged: %016x (%v) vs %016x (%v)", label, rf[i].name,
				math.Float64bits(rf[i].v), rf[i].v, math.Float64bits(gf[i].v), gf[i].v)
		}
	}
	if ref.Step != got.Step {
		t.Errorf("%s: step count diverged: %d vs %d", label, ref.Step, got.Step)
	}
}

// TestSimBitwiseUnderChaos is the sim-level chaos keystone: a 2-rank Sod
// problem advanced over a tcp wire that drops, duplicates and resets frames
// (seeded, so the run reproduces) must produce conserved totals bitwise
// identical to the clean in-process run. The reliability layer — CRC,
// sequence-numbered replay, reconnect — has to mask every injected fault;
// any leak shows up as a flipped float64 bit here.
func TestSimBitwiseUnderChaos(t *testing.T) {
	const steps = 3
	baseCfg := func() Config {
		return Config{
			Cluster: cluster.Config{
				RankDims:  [3]int{2, 1, 1},
				BlockDims: [3]int{2, 1, 1},
				BlockSize: 8,
				Extent:    1,
				Workers:   2,
				CFL:       0.3,
				Init:      SodInit,
			},
			Steps:     steps,
			DiagEvery: 1 << 30,
		}
	}
	totalsOn := func(cfg Config, sink *cluster.Totals) Config {
		cfg.OnFinish = func(r *cluster.Rank) {
			tot := r.ConservedTotals()
			if r.Comm.Rank() == 0 {
				*sink = tot
			}
		}
		return cfg
	}

	var ref cluster.Totals
	if _, err := Run(totalsOn(baseCfg(), &ref), nil); err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	plan := faulty.Plan{Seed: 2013, Drop: 0.06, Dup: 0.06, Reset: 0.01}
	faults := &countingInjector{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*mpi.World, 2)
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				HeartbeatInterval: 50 * time.Millisecond,
				RetransmitTimeout: 150 * time.Millisecond,
				PeerTimeout:       20 * time.Second,
				Fault:             &countingShared{faults, faulty.New(plan)},
				OnError:           func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}

	var got cluster.Totals
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := totalsOn(baseCfg(), &got)
			cfg.World = worlds[rank]
			_, runErrs[rank] = Run(cfg, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
	assertTotalsBitwise(t, "chaos tcp vs inproc", ref, got)
	if faults.n.Load() == 0 {
		t.Fatalf("plan %q injected no faults; the run proved nothing", plan.String())
	}
	t.Logf("faults injected: %d", faults.n.Load())
}

// TestRestoreResumesBitwise is the checkpoint-restart contract the failure
// path leans on: interrupt a run at a checkpoint, restore into a fresh
// world, and the final conserved totals must be bitwise identical to the
// uninterrupted run — crash recovery costs no physics.
func TestRestoreResumesBitwise(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "chaos.ckp")
	baseCfg := func() Config {
		return Config{
			Cluster: cluster.Config{
				RankDims:  [3]int{2, 1, 1},
				BlockDims: [3]int{2, 1, 1},
				BlockSize: 8,
				Extent:    1,
				Workers:   2,
				CFL:       0.3,
				Init:      SodInit,
			},
			Steps:     6,
			DiagEvery: 1 << 30,
		}
	}
	totalsOn := func(cfg Config, sink *cluster.Totals) Config {
		cfg.OnFinish = func(r *cluster.Rank) {
			tot := r.ConservedTotals()
			if r.Comm.Rank() == 0 {
				*sink = tot
			}
		}
		return cfg
	}

	// The uninterrupted run; it leaves a step-4 checkpoint behind.
	var ref cluster.Totals
	full := totalsOn(baseCfg(), &ref)
	full.CheckpointEvery = 4
	full.CheckpointPath = ckpt
	if _, err := Run(full, nil); err != nil {
		t.Fatalf("full run: %v", err)
	}

	// The restored run must resume at step 5, execute exactly steps 5 and 6,
	// and land on the same bits.
	var got cluster.Totals
	resumed := totalsOn(baseCfg(), &got)
	resumed.RestorePath = ckpt
	var stepsSeen []int
	if _, err := Run(resumed, func(s StepInfo) { stepsSeen = append(stepsSeen, s.Step) }); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if len(stepsSeen) != 2 || stepsSeen[0] != 5 || stepsSeen[1] != 6 {
		t.Fatalf("restored run executed steps %v, want [5 6]", stepsSeen)
	}
	assertTotalsBitwise(t, "restored vs uninterrupted", ref, got)
}

// TestFrameStreamBitwiseUnderChaos extends the chaos keystone to the dump
// path: a 2-rank run that compresses and streams every snapshot over the
// same seeded faulty wire must deliver frames to the rank-0 sink that are
// bitwise identical to the dump files the very same run wrote locally.
// TagDump rides the reliability layer like any other traffic, so dropped,
// duplicated or reset frame chunks must reassemble without a flipped bit.
func TestFrameStreamBitwiseUnderChaos(t *testing.T) {
	dumpDir := t.TempDir()
	const steps = 2
	baseCfg := func() Config {
		return Config{
			Cluster: cluster.Config{
				RankDims:  [3]int{2, 1, 1},
				BlockDims: [3]int{2, 1, 1},
				BlockSize: 8,
				Extent:    1,
				Workers:   2,
				CFL:       0.3,
				Init:      SodInit,
			},
			Steps:        steps,
			DiagEvery:    1 << 30,
			DumpEvery:    1,
			DumpDir:      dumpDir,
			Encoder:      "huff",
			StreamFrames: true,
		}
	}

	plan := faulty.Plan{Seed: 2013, Drop: 0.06, Dup: 0.06, Reset: 0.01}
	faults := &countingInjector{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*mpi.World, 2)
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				HeartbeatInterval: 50 * time.Millisecond,
				RetransmitTimeout: 150 * time.Millisecond,
				PeerTimeout:       20 * time.Second,
				Fault:             &countingShared{faults, faulty.New(plan)},
				OnError:           func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}

	// Rank 0's sink runs serially inside its step loop: no lock needed.
	var frames []dump.Frame
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := baseCfg()
			cfg.World = worlds[rank]
			cfg.FrameSink = func(f dump.Frame) error {
				frames = append(frames, f)
				return nil
			}
			_, runErrs[rank] = Run(cfg, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}

	// Every dump step streams one frame per quantity (p and Γ).
	if want := steps * 2; len(frames) != want {
		t.Fatalf("sink received %d frames, want %d", len(frames), want)
	}
	for _, f := range frames {
		file, err := os.ReadFile(filepath.Join(dumpDir, f.Name))
		if err != nil {
			t.Fatalf("frame %s has no local dump file: %v", f.Name, err)
		}
		if !bytes.Equal(f.Data, file) {
			t.Errorf("frame %s: streamed bytes differ from the local dump file (%d vs %d bytes)",
				f.Name, len(f.Data), len(file))
		}
		if _, _, err := dump.Decode(f.Data); err != nil {
			t.Errorf("frame %s does not decode: %v", f.Name, err)
		}
	}
	if faults.n.Load() == 0 {
		t.Fatalf("plan %q injected no faults; the run proved nothing", plan.String())
	}
	t.Logf("faults injected: %d across %d frames", faults.n.Load(), len(frames))
}
