package sim

import "sync"

// Controller is the first-class cancellation hook of a run: Stop requests
// that the step loop end at the next step boundary, where every rank
// agrees on the stop step through a MaxOp allreduce — so stopping any one
// rank (a local Stop call, a SIGINT to a single process of a tcp fleet)
// stops the whole world at the same step, and the final checkpoint written
// there is globally consistent. A stopped run returns normally with
// Summary.Stopped set; it is a drain, not a failure.
//
// A Controller is reusable only for one run at a time; the zero value is
// ready to use. All methods are safe for concurrent use.
type Controller struct {
	mu      sync.Mutex
	stopped bool
	acked   bool
	reason  string
	done    chan struct{}
	ackCh   chan struct{}
}

// NewController returns a ready controller.
func NewController() *Controller { return &Controller{} }

// Stop requests a graceful stop at the next step boundary. The first
// reason wins; later calls are no-ops. Safe to call before the run starts
// (the run then stops before its first step).
func (c *Controller) Stop(reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	c.reason = reason
	if c.done != nil {
		close(c.done)
	}
}

// StopRequested reports whether a stop has been requested locally.
func (c *Controller) StopRequested() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// Reason returns the recorded stop reason ("" when none or stop was
// requested on a different rank of a distributed world).
func (c *Controller) Reason() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reason
}

// Done returns a channel closed once Stop has been called — a select hook
// for supervisors waiting on cancellation delivery.
func (c *Controller) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.stopped {
			close(c.done)
		}
	}
	return c.done
}

// Acknowledge records that the step loop took the stop: the run calls it
// at the boundary where all ranks agreed on the stop step, before the
// final checkpoint write. Idempotent.
func (c *Controller) Acknowledge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acked {
		return
	}
	c.acked = true
	if c.ackCh != nil {
		close(c.ackCh)
	}
}

// Acked returns a channel closed once the step loop acknowledged the stop
// at a boundary. From that point the run is past its last step and only
// the final artifact writes (checkpoint, observables, telemetry flush)
// remain, so a supervisor's force-exit fallback should stand down rather
// than kill them mid-write.
func (c *Controller) Acked() <-chan struct{} {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ackCh == nil {
		c.ackCh = make(chan struct{})
		if c.acked {
			close(c.ackCh)
		}
	}
	return c.ackCh
}
