package sim

import "sync"

// Controller is the first-class cancellation hook of a run: Stop requests
// that the step loop end at the next step boundary, where every rank
// agrees on the stop step through a MaxOp allreduce — so stopping any one
// rank (a local Stop call, a SIGINT to a single process of a tcp fleet)
// stops the whole world at the same step, and the final checkpoint written
// there is globally consistent. A stopped run returns normally with
// Summary.Stopped set; it is a drain, not a failure.
//
// A Controller is reusable only for one run at a time; the zero value is
// ready to use. All methods are safe for concurrent use.
type Controller struct {
	mu      sync.Mutex
	stopped bool
	reason  string
	done    chan struct{}
}

// NewController returns a ready controller.
func NewController() *Controller { return &Controller{} }

// Stop requests a graceful stop at the next step boundary. The first
// reason wins; later calls are no-ops. Safe to call before the run starts
// (the run then stops before its first step).
func (c *Controller) Stop(reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	c.reason = reason
	if c.done != nil {
		close(c.done)
	}
}

// StopRequested reports whether a stop has been requested locally.
func (c *Controller) StopRequested() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// Reason returns the recorded stop reason ("" when none or stop was
// requested on a different rank of a distributed world).
func (c *Controller) Reason() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reason
}

// Done returns a channel closed once Stop has been called — a select hook
// for supervisors waiting on cancellation delivery.
func (c *Controller) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.stopped {
			close(c.done)
		}
	}
	return c.done
}
