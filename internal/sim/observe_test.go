package sim

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
	"cubism/internal/telemetry"
)

func observeCfg(dir string) (Config, *ObserveConfig) {
	obs := &ObserveConfig{
		TracePath:      filepath.Join(dir, "trace_merged.json"),
		ReportPath:     filepath.Join(dir, "imbalance.txt"),
		ReportJSONPath: filepath.Join(dir, "imbalance.json"),
		WriteEvery:     2,
	}
	cfg := Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{2, 1, 1},
			BlockSize: 8,
			Extent:    1,
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     3,
		DiagEvery: 1 << 30,
		Observe:   obs,
	}
	return cfg, obs
}

// checkMergedTrace asserts the artifact is one loadable trace with span
// tracks from every expected rank.
func checkMergedTrace(t *testing.T, path string, ranks int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("merged trace: %v", err)
	}
	var tf telemetry.TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("merged trace parse: %v", err)
	}
	spanRanks := map[int]bool{}
	stepStarts := map[int][]float64{} // rank -> "step" span start times, us
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spanRanks[ev.PID] = true
			if ev.Name == "step" {
				stepStarts[ev.PID] = append(stepStarts[ev.PID], ev.TS)
			}
		}
	}
	for r := 0; r < ranks; r++ {
		if !spanRanks[r] {
			t.Fatalf("merged trace has no spans from rank %d (got ranks %v)", r, spanRanks)
		}
	}
	// Clock alignment: the ranks advance in lockstep (each step ends in
	// collective reductions), so on the merged timeline the i-th "step"
	// span of every rank must start within one second of rank 0's —
	// unaligned per-process epochs would be apart by the process start
	// skew, and a sign error by twice the offset.
	for r := 1; r < ranks; r++ {
		if len(stepStarts[r]) != len(stepStarts[0]) {
			t.Fatalf("rank %d has %d step spans, rank 0 has %d",
				r, len(stepStarts[r]), len(stepStarts[0]))
		}
		for i := range stepStarts[0] {
			d := stepStarts[r][i] - stepStarts[0][i]
			if d < 0 {
				d = -d
			}
			if d > 1e6 { // 1s in us
				t.Fatalf("step %d starts %v us apart across ranks — spans not clock-aligned", i, d)
			}
		}
	}
}

func checkReport(t *testing.T, rep *telemetry.ImbalanceReport, ranks, steps int) {
	t.Helper()
	if rep == nil {
		t.Fatal("summary has no observatory report")
	}
	if rep.Ranks != ranks || rep.StepsObserved != steps {
		t.Fatalf("report covers %d ranks / %d steps, want %d / %d",
			rep.Ranks, rep.StepsObserved, ranks, steps)
	}
	for _, phase := range []string{"ghost_exchange", "halo_wait"} {
		st, ok := rep.Run[phase]
		if !ok {
			t.Fatalf("report missing phase %q: %v", phase, rep.Run)
		}
		if st.Ranks != ranks {
			t.Fatalf("phase %q reported by %d ranks, want %d", phase, st.Ranks, ranks)
		}
	}
	if _, ok := rep.Run["RHS"]; !ok {
		if _, ok := rep.Run["RHSUP"]; !ok {
			t.Fatalf("report missing compute phase: %v", rep.Run)
		}
	}
	if rep.Straggler < 0 || rep.Straggler >= ranks {
		t.Fatalf("straggler = %d out of range", rep.Straggler)
	}
}

// TestObservatoryInproc: a 2-rank in-process run must produce the merged
// trace and an imbalance report covering both ranks and all phases.
func TestObservatoryInproc(t *testing.T) {
	dir := t.TempDir()
	cfg, obs := observeCfg(dir)
	cfg.Telemetry = &telemetry.Set{
		Tracer:  telemetry.NewTracer(),
		Metrics: telemetry.NewRegistry(),
	}
	sum, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkMergedTrace(t, obs.TracePath, 2)
	checkReport(t, sum.Observatory, 2, 3)
	if _, err := os.Stat(obs.ReportPath); err != nil {
		t.Fatalf("text report: %v", err)
	}
	var rep telemetry.ImbalanceReport
	data, err := os.ReadFile(obs.ReportJSONPath)
	if err != nil {
		t.Fatalf("json report: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("json report parse: %v", err)
	}
	if rep.StepsObserved != 3 {
		t.Fatalf("json report steps = %d, want 3", rep.StepsObserved)
	}
}

// TestObservatoryTCP: the distributed path — two single-rank worlds over
// loopback, each with its OWN tracer epoch and registry, exactly like two
// mpcf-sim processes. Rank 1's spans must be shipped, clock-aligned, and
// merged into rank 0's trace, and the report must include rank 1's counter
// snapshot.
func TestObservatoryTCP(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	worlds := make([]*mpi.World, 2)
	connErrs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := mpi.TCPConfig{
				Rank: rank, Size: 2, Coord: coord,
				OnError: func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				c.CoordListener = ln
			}
			worlds[rank], connErrs[rank] = mpi.ConnectTCP(c)
		}(r)
	}
	wg.Wait()
	for r, err := range connErrs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}

	sums := make([]Summary, 2)
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg, _ := observeCfg(dir)
			cfg.World = worlds[rank]
			cfg.Telemetry = &telemetry.Set{
				Tracer:  telemetry.NewTracer(), // per-process epoch, as in production
				Metrics: telemetry.NewRegistry(),
			}
			sums[rank], runErrs[rank] = Run(cfg, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range runErrs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}

	checkMergedTrace(t, filepath.Join(dir, "trace_merged.json"), 2)
	checkReport(t, sums[0].Observatory, 2, 3)
	if sums[1].Observatory != nil {
		t.Fatal("non-root rank produced an observatory report")
	}
	// The distributed path ships counter snapshots from remote ranks.
	if sums[0].Observatory.Counters == nil || sums[0].Observatory.Counters[1] == nil {
		t.Fatalf("report missing rank 1 counter snapshot: %+v", sums[0].Observatory.Counters)
	}
}
