package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/telemetry"
)

// TestRunWithTelemetry drives a small multi-rank campaign with every sink
// attached and checks the full contract: solver-phase spans on every rank's
// trace track, one JSONL record per step, and the Prometheus exposition
// carrying the step-latency histogram and per-kernel gauges.
func TestRunWithTelemetry(t *testing.T) {
	const steps, nRanks = 4, 2
	tel := &telemetry.Set{
		Tracer:  telemetry.NewTracer(),
		Metrics: telemetry.NewRegistry(),
	}
	var logBuf bytes.Buffer
	tel.StepLog = telemetry.NewStepLogger(&logBuf)

	cfg := Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{nRanks, 1, 1},
			BlockDims: [3]int{2, 1, 1},
			BlockSize: 8,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     steps,
		DumpEvery: 2,
		DumpDir:   t.TempDir(),
		DiagEvery: 2,
		Telemetry: tel,
	}
	summary, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Steps != steps {
		t.Fatalf("ran %d steps, want %d", summary.Steps, steps)
	}

	// Trace: RHS, DT, UP, ghost-exchange and step spans on every rank.
	trace := tel.Tracer.Export()
	type key struct {
		pid  int
		name string
	}
	have := map[key]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			have[key{ev.PID, ev.Name}]++
		}
	}
	for rank := 0; rank < nRanks; rank++ {
		for name, min := range map[string]int{
			"step":           steps,
			"DT":             steps,
			"RHS":            3 * steps, // three RK stages
			"UP":             3 * steps,
			"ghost_exchange": 3 * steps,
			"halo_wait":      3 * steps,
			"dump":           2 * 2, // two quantities, every other step
			"diagnose":       steps / 2,
			"RHS.worker":     1,
			"fwt_decimate":   1,
		} {
			if have[key{rank, name}] < min {
				t.Errorf("rank %d: %d %q spans, want >= %d", rank, have[key{rank, name}], name, min)
			}
		}
	}

	// Step log: one valid record per step with kernel timings.
	sc := bufio.NewScanner(&logBuf)
	var recs []telemetry.StepRecord
	for sc.Scan() {
		var r telemetry.StepRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad step-log line: %v", err)
		}
		recs = append(recs, r)
	}
	if len(recs) != steps {
		t.Fatalf("step log has %d records, want %d", len(recs), steps)
	}
	for i, r := range recs {
		if r.Step != i+1 || r.DT <= 0 || r.WallMS <= 0 {
			t.Errorf("record %d malformed: %+v", i, r)
		}
		if r.KernelMS["RHS"] <= 0 {
			t.Errorf("record %d missing RHS kernel time: %v", i, r.KernelMS)
		}
	}
	if recs[1].DumpRates["p"] <= 0 || recs[1].DumpMBps <= 0 {
		t.Errorf("dump step record missing rates/bitrate: %+v", recs[1])
	}

	// Metrics: step-latency histogram and per-kernel gauges on /metrics.
	var expo bytes.Buffer
	tel.Metrics.WritePrometheus(&expo)
	out := expo.String()
	for _, want := range []string{
		"# TYPE mpcf_step_latency_seconds histogram",
		`mpcf_step_latency_seconds_bucket{le="+Inf"} 4`,
		"mpcf_step_latency_seconds_count 4",
		"mpcf_steps_total 4",
		`mpcf_kernel_gflops{kernel="RHS"}`,
		`mpcf_kernel_gflops{kernel="UP"}`,
		`mpcf_kernel_gflops{kernel="DT"}`,
		`mpcf_kernel_flop_per_byte{kernel="RHS"}`,
		"mpcf_step_imbalance",
		"mpcf_dump_mbps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics exposition missing %q", want)
		}
	}

	// Summary carries machine-readable per-kernel stats.
	if summary.Kernels["RHS"].N != 3*steps {
		t.Errorf("summary RHS calls = %d, want %d", summary.Kernels["RHS"].N, 3*steps)
	}
}

// TestRunWithoutTelemetry pins the disabled path: no telemetry config, no
// imbalance reductions, zero-value instrumentation fields.
func TestRunWithoutTelemetry(t *testing.T) {
	cfg := Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: 8,
			Extent:    1,
			Workers:   2,
			CFL:       0.3,
			Init:      SodInit,
		},
		Steps:     2,
		DiagEvery: 1 << 30,
	}
	var last StepInfo
	if _, err := Run(cfg, func(s StepInfo) { last = s }); err != nil {
		t.Fatal(err)
	}
	if last.WallMS <= 0 {
		t.Error("WallMS should be measured even without telemetry")
	}
	if last.Imbalance != 0 {
		t.Error("imbalance must stay zero without telemetry")
	}
}
