// Package sim is the simulation driver: it stands up the (simulated) MPI
// world, builds one cluster rank per process, and runs the paper's step
// loop — DT, three Runge-Kutta stages of RHS+UP, periodic compressed data
// dumps and flow diagnostics (Figure 1 left, §7).
package sim

import (
	"fmt"
	"path/filepath"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/perf"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
)

// Config describes one simulation campaign.
type Config struct {
	Cluster cluster.Config

	// Steps is the number of time steps to run (0: run to TEnd).
	Steps int
	// TEnd stops the run when simulated time reaches it (0: ignore).
	TEnd float64

	// DumpEvery triggers a compressed dump of p and Γ every so many steps
	// (0: never). Paper: every 100 steps.
	DumpEvery int
	// DumpDir receives the dump files.
	DumpDir string
	// EpsP and EpsG are the decimation thresholds (paper: 1e-2 and 1e-3).
	EpsP, EpsG float64
	// Encoder is the lossless back-end ("zlib" default; also "rle", "sig",
	// "huff").
	Encoder string

	// StreamFrames additionally ships every dump as an assembled frame to
	// the rank-0 sink over the dedicated TagDump transport channel. The
	// streaming is collective, so the flag must be uniform across the
	// fleet. The frame bytes are identical to the dump file's.
	StreamFrames bool
	// FrameSink receives assembled frames on rank 0 (ignored elsewhere).
	// May be nil with StreamFrames set: frames are then assembled and
	// dropped, keeping the network work uniform.
	FrameSink dump.FrameSink

	// DiagEvery computes global diagnostics every so many steps (0: every
	// step).
	DiagEvery int
	// CheckpointEvery writes a lossless full-state checkpoint every so many
	// steps (0: never) to CheckpointPath.
	CheckpointEvery int
	CheckpointPath  string
	// RestorePath, when non-empty, resumes the run from a checkpoint before
	// the first step: the grid state, step counter and simulated time are
	// replaced by the checkpoint contents (the decomposition must match the
	// one the checkpoint was written with). This is the recovery path after
	// a rank failure: relaunch the job with RestorePath pointing at the last
	// checkpoint (mpcf-sim -restore; see docs/networking.md).
	RestorePath string
	// Wall marks a reflecting wall face for wall-pressure diagnostics.
	Wall    grid.Face
	HasWall bool

	// AuditEvery computes the global conserved-quantity totals every so
	// many steps (0: never) and delivers them in StepInfo.Totals and the
	// structured step log — the verification subsystem's conservation
	// audit. It costs one grid sweep plus reductions per audited step.
	AuditEvery int

	// RebalanceEvery checks the cross-rank load balance every so many
	// steps (0: never) and migrates blocks along the layout's curve when
	// max/avg − 1 of the per-rank pool load exceeds RebalanceThreshold.
	// Effective only under an SFC cluster layout (Cluster.Layout).
	RebalanceEvery int
	// RebalanceThreshold is the imbalance that triggers a rebalance
	// (0: default 0.1).
	RebalanceThreshold float64
	// ForceRebalanceStep, when > 0, forces one cut recomputation and
	// migration after that step regardless of measured imbalance — the
	// migration-determinism test and chaos-suite hook.
	ForceRebalanceStep int

	// Control (optional) attaches a cancellation controller: Stop() ends
	// the run at the next step boundary. The stop decision is collective
	// (a MaxOp allreduce per step while a controller is attached), so
	// every rank stops at the same step and a Stop on any one rank of a
	// distributed world stops the whole fleet. See Controller.
	Control *Controller
	// StopCheckpoint writes a final checkpoint to CheckpointPath when a
	// controller stop ends the run, even when periodic checkpointing
	// (CheckpointEvery) is off — the job-cancel and graceful-drain hook:
	// a stopped run can resume from exactly the stop boundary via
	// RestorePath. CheckpointEvery > 0 implies the same final write.
	StopCheckpoint bool

	// OnFinish (optional) is invoked on every rank after the last step with
	// the rank state still live; the verification harness samples the final
	// fields here. It runs before the summary is assembled.
	OnFinish func(r *cluster.Rank)

	// Telemetry (optional) attaches the tracer, metrics registry and
	// structured step log. Nil disables all instrumentation beyond a
	// per-phase pointer check; when set, the tracer is also threaded into
	// the cluster and node layers (unless Cluster.Tracer is already set).
	Telemetry *telemetry.Set

	// Observe (optional) enables the cross-rank performance observatory:
	// per-phase step samples (plus spans and counters on distributed
	// worlds) stream to rank 0 at every step boundary, which writes a
	// merged clock-aligned Chrome trace and a Table-4-shaped imbalance
	// report. See ObserveConfig.
	Observe *ObserveConfig

	// World (optional) supplies a pre-built communication world — a
	// distributed one from mpi.ConnectTCP, or a test's inproc world. Nil
	// builds the default in-process world sized to Cluster.RankDims. Its
	// size must equal the rank-dims product.
	World *mpi.World
}

// StepInfo is delivered to the per-step callback on rank 0.
type StepInfo struct {
	Step int
	Time float64
	DT   float64
	// WallMS is rank 0's wall-clock time for this step in milliseconds
	// (advance + diagnostics + dumps + checkpoints).
	WallMS float64
	// Imbalance is the cross-rank step-time statistic (tmax-tmin)/tavg,
	// computed only when Config.Telemetry is set (it costs reductions).
	Imbalance float64
	// Diag is valid when HasDiag is set (DiagEvery cadence).
	Diag    cluster.Diagnostics
	HasDiag bool
	// Totals is valid when HasTotals is set (AuditEvery cadence).
	Totals    cluster.Totals
	HasTotals bool
	// Rebalance is valid when HasRebalance is set: this step ran a
	// rebalance check (RebalanceEvery/ForceRebalanceStep cadence).
	Rebalance    cluster.RebalanceResult
	HasRebalance bool
	// DumpRates lists quantity:rate pairs when this step dumped.
	DumpRates map[string]float64
	// DumpMBps is the encoded dump bitrate in MB/s when this step dumped.
	DumpMBps float64
	// FrameBytes is the number of streamed-frame bytes this rank moved
	// over the TagDump channel when this step dumped with StreamFrames.
	FrameBytes int64
}

// Summary reports campaign-level results gathered on rank 0.
type Summary struct {
	Steps        int
	SimTime      float64
	WallTime     time.Duration
	GlobalCells  int64
	PointsPerSec float64
	// KernelShare maps kernel name to its fraction of the total kernel
	// wall-clock time on rank 0 (Figure 7 left).
	KernelShare map[string]float64
	// Kernels holds rank 0's full per-kernel statistics, keyed by kernel
	// name (machine-readable counterpart of Report).
	Kernels map[string]perf.Stats
	// Report is rank 0's full perf table.
	Report string
	// Observatory is the cross-rank imbalance report, present when
	// Config.Observe was set.
	Observatory *telemetry.ImbalanceReport
	// Stopped marks a run ended early by a Controller stop (a graceful
	// drain, not a failure); StopReason carries the rank-0 controller's
	// recorded reason ("" when the stop originated on another rank).
	Stopped    bool
	StopReason string
}

// Run executes the campaign. onStep (may be nil) is invoked on rank 0 after
// every step. Returns the rank-0 summary.
func Run(cfg Config, onStep func(StepInfo)) (Summary, error) {
	if cfg.Encoder == "" {
		cfg.Encoder = "zlib"
	}
	if cfg.EpsP == 0 {
		cfg.EpsP = 1e-2
	}
	if cfg.EpsG == 0 {
		cfg.EpsG = 1e-3
	}
	nRanks := cfg.Cluster.RankDims[0] * cfg.Cluster.RankDims[1] * cfg.Cluster.RankDims[2]
	if nRanks <= 0 {
		return Summary{}, fmt.Errorf("sim: invalid rank dims %v", cfg.Cluster.RankDims)
	}
	world := cfg.World
	if world == nil {
		world = mpi.NewWorld(nRanks)
	} else if world.Size() != nRanks {
		return Summary{}, fmt.Errorf("sim: world size %d does not match rank dims %v",
			world.Size(), cfg.Cluster.RankDims)
	}

	tel := cfg.Telemetry
	if tel != nil && cfg.Cluster.Tracer == nil {
		cfg.Cluster.Tracer = tel.Tracer
	}
	tracer := cfg.Cluster.Tracer
	reg := tel.GetMetrics()
	stepLog := tel.GetStepLog()

	// Rank-0 metric instruments, registered up front so the step loop only
	// stores values.
	var (
		stepHist                 *telemetry.Histogram
		stepsTotal               *telemetry.Counter
		simTimeG, dtG            *telemetry.Gauge
		imbalanceG, dumpMBpsG    *telemetry.Gauge
		pointsRateG, cellsGauge  *telemetry.Gauge
		poolWorkersG, poolQueueG *telemetry.Gauge
		poolBusyG                *telemetry.Gauge
		migrationsC              *telemetry.Counter
		streamBytesC             *telemetry.Counter
		layoutBlocksG            []*telemetry.Gauge
	)
	if reg != nil {
		stepHist = reg.Histogram("mpcf_step_latency_seconds",
			"wall-clock simulation step latency", telemetry.StepLatencyBuckets, nil)
		stepsTotal = reg.Counter("mpcf_steps_total", "completed simulation steps", nil)
		simTimeG = reg.Gauge("mpcf_sim_time", "simulated time", nil)
		dtG = reg.Gauge("mpcf_dt_seconds", "current CFL time step", nil)
		imbalanceG = reg.Gauge("mpcf_step_imbalance",
			"cross-rank step-time (tmax-tmin)/tavg", nil)
		dumpMBpsG = reg.Gauge("mpcf_dump_mbps", "encoded dump bitrate, MB/s", nil)
		pointsRateG = reg.Gauge("mpcf_points_per_second",
			"sustained grid points per second", nil)
		cellsGauge = reg.Gauge("mpcf_global_cells", "global cell count", nil)
		poolWorkersG = reg.Gauge("mpcf_pool_workers",
			"worker goroutines spawned by the rank-0 engine pool", nil)
		poolQueueG = reg.Gauge("mpcf_pool_queue_depth",
			"tasks waiting in the rank-0 pool queue", nil)
		poolBusyG = reg.Gauge("mpcf_pool_busy_ratio",
			"rank-0 pool busy time over busy+idle time", nil)
		migrationsC = reg.Counter("mpcf_migrations_total",
			"blocks migrated by layout rebalances, all ranks", nil)
		streamBytesC = reg.Counter("mpcf_dump_stream_bytes_total",
			"compressed-frame bytes this process moved over the TagDump channel", nil)
		layoutBlocksG = make([]*telemetry.Gauge, nRanks)
		for rk := range layoutBlocksG {
			layoutBlocksG[rk] = reg.Gauge("mpcf_layout_blocks",
				"blocks owned per rank under the current layout",
				telemetry.Labels{"rank": fmt.Sprint(rk)})
		}
	}

	var summary Summary
	var runErr error
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg.Cluster)
		defer r.Close()
		if cfg.RestorePath != "" {
			if err := r.RestoreCheckpoint(cfg.RestorePath); err != nil {
				runErr = fmt.Errorf("sim: restore %s: %w", cfg.RestorePath, err)
				return
			}
		}
		root := comm.Rank() == 0
		startStep := r.Step // non-zero after a checkpoint restore
		prevKernel := map[string]time.Duration{}
		var obs *observer
		if cfg.Observe != nil {
			obs = newObserver(*cfg.Observe, comm, cfg.Cluster.Tracer, reg,
				world.Distributed())
			// The first sync happens before any step, so even a run killed
			// mid-step leaves clock-aligned spans in the partial artifacts.
			obs.syncClocks()
		}
		if root {
			cellsGauge.Set(float64(r.G.Desc.Cells()))
			for rk, gauge := range layoutBlocksG {
				gauge.Set(float64(len(r.Layout.Blocks(rk))))
			}
		}
		start := time.Now()
		stopped := false
		for {
			if cfg.Steps > 0 && r.Step >= cfg.Steps {
				break
			}
			if cfg.TEnd > 0 && r.Time >= cfg.TEnd {
				break
			}
			if cfg.Steps == 0 && cfg.TEnd == 0 {
				break
			}
			if cfg.Control != nil {
				// Collective stop check at the step boundary: MaxOp over
				// the per-rank stop flags, so every rank agrees on the
				// stop step and any single rank's Stop drains the whole
				// world. Runs only while a controller is attached.
				flag := 0.0
				if cfg.Control.StopRequested() {
					flag = 1
				}
				if r.Comm.Allreduce(flag, mpi.MaxOp) > 0 {
					// All ranks agreed on the stop step; acknowledge before
					// the checkpoint write so supervisors cancel force-exit
					// fallbacks that would kill it mid-write.
					cfg.Control.Acknowledge()
					if cfg.CheckpointPath != "" && (cfg.StopCheckpoint || cfg.CheckpointEvery > 0) {
						// The final consistent checkpoint of the drain:
						// all ranks stopped at the same boundary, so the
						// job can resume from exactly here.
						if err := r.SaveCheckpoint(cfg.CheckpointPath); err != nil {
							runErr = err
							return
						}
					}
					stopped = true
					break
				}
			}
			stepStart := time.Now()
			stepSpan := tracer.StartSpan("step", comm.Rank(), 0)
			dt := r.Advance()
			info := StepInfo{Step: r.Step, Time: r.Time, DT: dt}

			if cfg.DiagEvery == 0 || r.Step%max(cfg.DiagEvery, 1) == 0 {
				info.Diag = r.Diagnose(cfg.Wall, cfg.HasWall)
				info.HasDiag = true
			}
			if cfg.AuditEvery > 0 && r.Step%cfg.AuditEvery == 0 {
				info.Totals = r.ConservedTotals()
				info.HasTotals = true
			}
			if cfg.DumpEvery > 0 && r.Step%cfg.DumpEvery == 0 {
				rates := map[string]float64{}
				dumpStart := time.Now()
				var encoded int64
				for _, dq := range []struct {
					q   compress.Quantity
					eps float64
				}{{compress.Pressure, cfg.EpsP}, {compress.Gamma, cfg.EpsG}} {
					target := cluster.DumpTarget{
						Path: filepath.Join(cfg.DumpDir,
							fmt.Sprintf("%s_step%06d.mpcf", dq.q, r.Step)),
						Stream: cfg.StreamFrames,
					}
					if root {
						target.Sink = cfg.FrameSink
					}
					st, streamed, err := r.DumpTo(target, dq.q, dq.eps, cfg.Encoder)
					if err != nil {
						runErr = err
						return
					}
					rates[dq.q.String()] = st.Rate()
					encoded += st.Encoded
					info.FrameBytes += streamed
				}
				info.DumpRates = rates
				if d := time.Since(dumpStart).Seconds(); d > 0 {
					info.DumpMBps = float64(encoded) / 1e6 / d
				}
				if streamBytesC != nil && info.FrameBytes > 0 {
					streamBytesC.Add(info.FrameBytes)
				}
			}
			if cfg.CheckpointEvery > 0 && r.Step%cfg.CheckpointEvery == 0 {
				if err := r.SaveCheckpoint(cfg.CheckpointPath); err != nil {
					runErr = err
					return
				}
			}
			stepSpan.End()
			stepSec := time.Since(stepStart).Seconds()
			info.WallMS = stepSec * 1e3
			if tel != nil {
				// Cross-rank imbalance of this step's wall time, the
				// (tmax-tmin)/tavg statistic of Table 4. Costs three
				// reductions, so it runs only with telemetry attached —
				// which therefore must be attached uniformly across the
				// fleet: these are collectives, and a world where only
				// some ranks carry telemetry deadlocks.
				tmax := r.Comm.Allreduce(stepSec, mpi.MaxOp)
				tmin := r.Comm.Allreduce(stepSec, mpi.MinOp)
				tsum := r.Comm.Allreduce(stepSec, mpi.SumOp)
				if avg := tsum / float64(nRanks); avg > 0 {
					info.Imbalance = (tmax - tmin) / avg
				}
			}
			if obs != nil {
				// Step-boundary observatory flush: the step's last ghost
				// exchange already opened a fresh tag epoch, so the batch
				// and sync tags cannot collide with halo traffic.
				if err := obs.flush(r, info.Step, info.WallMS); err != nil {
					runErr = err
					return
				}
			}
			forced := cfg.ForceRebalanceStep > 0 && r.Step == cfg.ForceRebalanceStep
			if forced || (cfg.RebalanceEvery > 0 && r.Step%cfg.RebalanceEvery == 0) {
				// Collective rebalance check at the step boundary, outside
				// any halo epoch. The decision is uniform across ranks.
				thr := cfg.RebalanceThreshold
				if thr <= 0 {
					thr = 0.1
				}
				info.Rebalance = r.Rebalance(thr, forced)
				info.HasRebalance = true
				if root && info.Rebalance.Rebalanced {
					if migrationsC != nil {
						migrationsC.Add(int64(info.Rebalance.Moved))
					}
					for rk, gauge := range layoutBlocksG {
						gauge.Set(float64(len(r.Layout.Blocks(rk))))
					}
				}
			}
			if root {
				if reg != nil {
					stepHist.Observe(stepSec)
					stepsTotal.Inc()
					simTimeG.Set(r.Time)
					dtG.Set(dt)
					imbalanceG.Set(info.Imbalance)
					if info.DumpMBps > 0 {
						dumpMBpsG.Set(info.DumpMBps)
					}
					if el := time.Since(start).Seconds(); el > 0 {
						pointsRateG.Set(float64(r.G.Desc.Cells()) *
							float64(r.Step-startStep) / el)
					}
					ps := r.Engine.PoolStats()
					poolWorkersG.Set(float64(ps.Spawned))
					poolQueueG.Set(float64(ps.QueueDepth))
					if tot := ps.BusyNS + ps.IdleNS; tot > 0 {
						poolBusyG.Set(float64(ps.BusyNS) / float64(tot))
					}
					r.Mon.Export(reg, tel.PeakGFLOPS)
				}
				if stepLog != nil {
					rec := telemetry.StepRecord{
						Step: info.Step, Time: info.Time, DT: info.DT,
						WallMS: info.WallMS, Imbalance: info.Imbalance,
						DumpRates: info.DumpRates, DumpMBps: info.DumpMBps,
						KernelMS: map[string]float64{},
					}
					for _, name := range r.Mon.Names() {
						cur := r.Mon.Kernel(name).Stats().Total
						if d := cur - prevKernel[name]; d > 0 {
							rec.KernelMS[name] = float64(d.Nanoseconds()) / 1e6
						}
						prevKernel[name] = cur
					}
					if info.HasDiag {
						rec.HasDiag = true
						rec.MaxPressure = info.Diag.MaxPressure
						rec.WallPressure = info.Diag.WallPressure
						rec.KineticEnergy = info.Diag.KineticEnergy
						rec.EquivRadius = info.Diag.EquivRadius
					}
					if info.HasTotals {
						rec.HasTotals = true
						rec.TotalMass = info.Totals.Mass
						rec.TotalMom = [3]float64{info.Totals.MomX, info.Totals.MomY, info.Totals.MomZ}
						rec.TotalEnergy = info.Totals.Energy
						rec.GammaRange = [2]float64{info.Totals.GammaMin, info.Totals.GammaMax}
						rec.PiRange = [2]float64{info.Totals.PiMin, info.Totals.PiMax}
						rec.NonFinite = info.Totals.NonFinite
					}
					if err := stepLog.Log(rec); err != nil {
						runErr = err
						return
					}
				}
				if onStep != nil {
					onStep(info)
				}
			}
		}
		if cfg.OnFinish != nil {
			cfg.OnFinish(r)
		}
		var obsReport *telemetry.ImbalanceReport
		if obs != nil {
			rep, err := obs.finish()
			if err != nil {
				runErr = err
				return
			}
			obsReport = rep
		}
		if root {
			wall := time.Since(start)
			cells := int64(r.G.Desc.Cells())
			summary = Summary{
				Steps:       r.Step,
				SimTime:     r.Time,
				WallTime:    wall,
				GlobalCells: cells,
				KernelShare: map[string]float64{},
				Kernels:     map[string]perf.Stats{},
				Report:      r.Mon.Report(),
				Observatory: obsReport,
				Stopped:     stopped,
				StopReason:  cfg.Control.Reason(),
			}
			if wall > 0 && r.Step > startStep {
				// Rate over the steps this run actually executed (a restored
				// run inherits the checkpoint's step counter).
				summary.PointsPerSec = float64(cells) * float64(r.Step-startStep) / wall.Seconds()
			}
			for _, k := range []string{"RHS", "UP", "RHSUP", "DT", "IO_WAVELET"} {
				summary.KernelShare[k] = r.Mon.Share(k)
			}
			for _, name := range r.Mon.Names() {
				summary.Kernels[name] = r.Mon.Kernel(name).Stats()
			}
		}
	})
	if runErr == nil {
		runErr = world.Err() // distributed shutdown failure, nil otherwise
	}
	return summary, runErr
}

// SodInit returns the classic Sod shock tube initial condition along x,
// posed in a single-phase ideal gas (Γ, Π constant), used by the validation
// tests and the quickstart example.
func SodInit(x, y, z float64) physics.Prim {
	g := 1 / (1.4 - 1)
	if x < 0.5 {
		return physics.Prim{Rho: 1, P: 1, G: g, Pi: 0}
	}
	return physics.Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0}
}
