package sim

// The sim side of the cluster-wide performance observatory: every rank
// derives a per-phase PhaseSample from its perf monitor at each step
// boundary and ships it — plus, on distributed worlds, its freshly drained
// tracer spans and a counter snapshot — to the collector on rank 0 over a
// dedicated observatory stream tag. The flush runs strictly between steps,
// after the step's last ghost exchange opened a fresh tag epoch, so it can
// never collide with halo traffic. Rank 0 periodically rewrites the merged
// trace and the imbalance report via temp+rename, so even a killed run
// leaves loadable artifacts.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/mpi"
	"cubism/internal/telemetry"
)

// ObserveConfig enables the cross-rank observatory.
type ObserveConfig struct {
	// TracePath receives the merged, clock-aligned Chrome trace (rank 0).
	TracePath string
	// ReportPath receives the Table-4-shaped text imbalance report (rank 0).
	ReportPath string
	// ReportJSONPath receives the machine-readable report (rank 0).
	ReportJSONPath string
	// SyncEvery re-runs the clock-offset ping-pong every so many steps on
	// distributed worlds (0: default 64; sync always runs once at start).
	SyncEvery int
	// SyncSamples is the ping-pong count per sync burst (0: default 8).
	SyncSamples int
	// WriteEvery rewrites the artifacts every so many steps so crashes
	// leave usable partial output (0: default 16; negative: only at end).
	WriteEvery int
}

func (c ObserveConfig) withDefaults() ObserveConfig {
	if c.SyncEvery == 0 {
		c.SyncEvery = 64
	}
	if c.SyncSamples <= 0 {
		c.SyncSamples = 8
	}
	if c.SyncSamples > mpi.ObsMaxSyncSamples {
		c.SyncSamples = mpi.ObsMaxSyncSamples
	}
	if c.WriteEvery == 0 {
		c.WriteEvery = 16
	}
	return c
}

// observer is the per-rank observatory state. Rank 0 holds the aggregator
// and writes the artifacts; other ranks only sample and ship.
type observer struct {
	cfg         ObserveConfig
	comm        *mpi.Comm
	tracer      *telemetry.Tracer
	reg         *telemetry.Registry
	distributed bool
	root        bool
	ranks       int

	agg *telemetry.Aggregator // rank 0 only
	est []telemetry.ClockEstimator

	prevKernel           map[string]time.Duration
	prevGhost, prevWait  time.Duration
	sinceWrite, flushed  int
}

func newObserver(cfg ObserveConfig, comm *mpi.Comm, tracer *telemetry.Tracer,
	reg *telemetry.Registry, distributed bool) *observer {
	o := &observer{
		cfg:         cfg.withDefaults(),
		comm:        comm,
		tracer:      tracer,
		reg:         reg,
		distributed: distributed,
		root:        comm.Rank() == 0,
		ranks:       comm.Size(),
		prevKernel:  map[string]time.Duration{},
	}
	if o.root {
		o.agg = telemetry.NewAggregator(o.ranks)
		o.est = make([]telemetry.ClockEstimator, o.ranks)
	}
	return o
}

// syncClocks runs one clock-offset ping-pong burst: rank 0 measures each
// peer in turn; every rank must call this at the same point of the step
// schedule. Estimators persist across bursts, so the minimum-RTT filter
// keeps improving over the run. No-op on in-process worlds (one clock).
func (o *observer) syncClocks() {
	if !o.distributed || o.ranks == 1 {
		return
	}
	if o.root {
		for peer := 1; peer < o.ranks; peer++ {
			est := &o.est[peer]
			for k := 0; k < o.cfg.SyncSamples; k++ {
				t0 := o.tracer.Now()
				o.comm.SendBytes(peer, mpi.TagObsPing(k), []byte{1})
				reply := o.comm.RecvInts(peer, mpi.TagObsPong(k))
				t3 := o.tracer.Now()
				if len(reply) == 2 {
					est.Add(t0, reply[0], reply[1], t3)
				}
			}
			o.agg.SetClockOffset(peer, est.Offset())
		}
		return
	}
	for k := 0; k < o.cfg.SyncSamples; k++ {
		o.comm.RecvBytes(0, mpi.TagObsPing(k))
		t1 := o.tracer.Now()
		o.comm.SendInts(0, mpi.TagObsPong(k), []int64{t1, o.tracer.Now()})
	}
}

// sample derives this rank's per-phase accounting of the step just
// completed: deltas of the perf monitor's cumulative kernel times plus the
// cluster layer's communication-phase counters.
func (o *observer) sample(r *cluster.Rank, step int, wallMS float64) telemetry.PhaseSample {
	s := telemetry.PhaseSample{Step: step, WallMS: wallMS,
		PhaseMS: map[string]float64{}}
	for _, name := range r.Mon.Names() {
		cur := r.Mon.Kernel(name).Stats().Total
		if d := cur - o.prevKernel[name]; d > 0 {
			s.PhaseMS[name] = float64(d.Nanoseconds()) / 1e6
		}
		o.prevKernel[name] = cur
	}
	ghost, wait := r.CommPhases()
	if d := ghost - o.prevGhost; d > 0 {
		s.PhaseMS["ghost_exchange"] = float64(d.Nanoseconds()) / 1e6
	}
	if d := wait - o.prevWait; d > 0 {
		s.PhaseMS["halo_wait"] = float64(d.Nanoseconds()) / 1e6
	}
	o.prevGhost, o.prevWait = ghost, wait
	return s
}

// flush runs the step-boundary exchange: every rank samples; non-root ranks
// ship one batch to rank 0 (including drained spans and a counter snapshot
// on distributed worlds — in-process worlds share one tracer and registry,
// so shipping those would double-count); rank 0 ingests all batches and
// periodically rewrites the artifacts.
func (o *observer) flush(r *cluster.Rank, step int, wallMS float64) error {
	s := o.sample(r, step, wallMS)
	if !o.root {
		b := telemetry.RankBatch{Rank: o.comm.Rank(), Steps: []telemetry.PhaseSample{s}}
		if o.distributed {
			b.Spans = o.tracer.Drain()
			b.Counters = telemetry.ScalarSnapshot(o.reg)
		}
		o.comm.SendBytes(0, mpi.TagObsBatch(), b.Encode())
	} else {
		o.agg.AddSample(0, s)
		for peer := 1; peer < o.ranks; peer++ {
			b, err := telemetry.DecodeBatch(o.comm.RecvBytes(peer, mpi.TagObsBatch()))
			if err != nil {
				o.agg.MarkMissing(peer, step)
				continue
			}
			o.agg.AddBatch(b)
		}
	}
	o.flushed++
	if o.cfg.SyncEvery > 0 && o.flushed%o.cfg.SyncEvery == 0 {
		o.syncClocks()
	}
	if o.root {
		o.sinceWrite++
		if o.cfg.WriteEvery > 0 && o.sinceWrite >= o.cfg.WriteEvery {
			o.sinceWrite = 0
			if err := o.writeArtifacts(); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish writes the final artifacts and returns the report (rank 0).
func (o *observer) finish() (*telemetry.ImbalanceReport, error) {
	if !o.root {
		return nil, nil
	}
	if err := o.writeArtifacts(); err != nil {
		return nil, err
	}
	return o.agg.Report(), nil
}

// writeArtifacts rewrites the merged trace and the imbalance report via
// temp+rename, so a reader (or a crash) never sees a torn file.
func (o *observer) writeArtifacts() error {
	if o.cfg.TracePath != "" {
		// On an in-process world the shared tracer already holds every
		// rank's spans; on a distributed world it holds rank 0's, and the
		// aggregator holds the clock-aligned remote ones.
		tf := o.agg.MergedTrace(o.tracer.Records())
		if err := writeJSONAtomic(o.cfg.TracePath, tf); err != nil {
			return fmt.Errorf("sim: merged trace: %w", err)
		}
	}
	if o.cfg.ReportPath != "" || o.cfg.ReportJSONPath != "" {
		rep := o.agg.Report()
		if o.cfg.ReportPath != "" {
			if err := writeAtomic(o.cfg.ReportPath, func(f *os.File) error {
				return rep.WriteText(f)
			}); err != nil {
				return fmt.Errorf("sim: imbalance report: %w", err)
			}
		}
		if o.cfg.ReportJSONPath != "" {
			if err := writeJSONAtomic(o.cfg.ReportJSONPath, rep); err != nil {
				return fmt.Errorf("sim: imbalance report json: %w", err)
			}
		}
	}
	return nil
}

func writeJSONAtomic(path string, v any) error {
	return writeAtomic(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

func writeAtomic(path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
