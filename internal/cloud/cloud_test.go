package cloud

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cubism/internal/physics"
)

func TestGenerateCount(t *testing.T) {
	spec := Spec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.4,
		N:      20,
		RMin:   0.02, RMax: 0.05,
		Seed: 1,
	}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(bubbles) != 20 {
		t.Fatalf("generated %d bubbles, want 20", len(bubbles))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 10, RMin: 0.02, RMax: 0.05, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bubble %d differs between runs", i)
		}
	}
}

func TestGenerateRadiiInRange(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 30, RMin: 0.02, RMax: 0.05, Seed: 3}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bubbles {
		if b.R < spec.RMin || b.R > spec.RMax {
			t.Fatalf("radius %g outside [%g, %g]", b.R, spec.RMin, spec.RMax)
		}
	}
}

func TestGenerateNoOverlap(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 25, RMin: 0.02, RMax: 0.05, Seed: 5}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range bubbles {
		for j := i + 1; j < len(bubbles); j++ {
			a, b := bubbles[i], bubbles[j]
			d := math.Sqrt((a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z))
			if d < a.R+b.R {
				t.Fatalf("bubbles %d and %d overlap: d=%g, r1+r2=%g", i, j, d, a.R+b.R)
			}
		}
	}
}

func TestGenerateInsideCloudRegion(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.3, N: 15, RMin: 0.02, RMax: 0.05, Seed: 2}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bubbles {
		d := math.Sqrt((b.X-0.5)*(b.X-0.5) + (b.Y-0.5)*(b.Y-0.5) + (b.Z-0.5)*(b.Z-0.5))
		if d+b.R > spec.Radius+1e-12 {
			t.Fatalf("bubble at distance %g with radius %g exceeds cloud radius %g", d, b.R, spec.Radius)
		}
	}
}

func TestGenerateTooDenseFails(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.1, N: 1000, RMin: 0.05, RMax: 0.09, Seed: 1}
	if _, err := spec.Generate(); err == nil {
		t.Error("expected failure for impossible density")
	}
}

func TestFieldPhaseStates(t *testing.T) {
	bubbles := []Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.2}}
	f := NewField(bubbles, 0.01)
	// Deep inside the bubble: pure vapor.
	inside := f.At(0.5, 0.5, 0.5)
	if math.Abs(inside.Rho-physics.VaporInit.Rho) > 1e-9 {
		t.Errorf("inside rho = %g, want vapor %g", inside.Rho, physics.VaporInit.Rho)
	}
	if math.Abs(inside.G-physics.Vapor.G()) > 1e-9 {
		t.Errorf("inside Γ = %g, want %g", inside.G, physics.Vapor.G())
	}
	// Far outside: pure pressurized liquid.
	outside := f.At(0.05, 0.05, 0.05)
	if math.Abs(outside.Rho-physics.LiquidInit.Rho) > 1e-9 {
		t.Errorf("outside rho = %g, want liquid %g", outside.Rho, physics.LiquidInit.Rho)
	}
	if math.Abs(outside.P-physics.LiquidInit.P) > 1e-9 {
		t.Errorf("outside p = %g, want %g", outside.P, physics.LiquidInit.P)
	}
	// On the interface: strictly between.
	mid := f.At(0.5, 0.5, 0.7)
	if mid.Rho <= physics.VaporInit.Rho || mid.Rho >= physics.LiquidInit.Rho {
		t.Errorf("interface rho = %g not between phases", mid.Rho)
	}
}

func TestAlphaMonotonicAcrossInterface(t *testing.T) {
	f := NewField([]Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.2}}, 0.02)
	prev := 2.0
	for x := 0.5; x < 0.8; x += 0.005 {
		a := f.alpha(x, 0.5, 0.5)
		if a > prev+1e-12 {
			t.Fatalf("alpha not monotone at x=%g: %g > %g", x, a, prev)
		}
		if a < 0 || a > 1 {
			t.Fatalf("alpha %g outside [0,1]", a)
		}
		prev = a
	}
}

func TestVaporVolume(t *testing.T) {
	bubbles := []Bubble{{R: 0.1}, {R: 0.2}}
	want := 4.0 / 3.0 * math.Pi * (0.001 + 0.008)
	if got := VaporVolume(bubbles); math.Abs(got-want) > 1e-12 {
		t.Errorf("VaporVolume = %g, want %g", got, want)
	}
}

func TestFieldPropertyBounds(t *testing.T) {
	bubbles := []Bubble{{X: 0.3, Y: 0.4, Z: 0.5, R: 0.15}, {X: 0.7, Y: 0.6, Z: 0.5, R: 0.1}}
	f := NewField(bubbles, 0.02)
	check := func(x, y, z float64) bool {
		x = math.Mod(math.Abs(x), 1)
		y = math.Mod(math.Abs(y), 1)
		z = math.Mod(math.Abs(z), 1)
		p := f.At(x, y, z)
		return p.Rho >= physics.VaporInit.Rho-1e-9 &&
			p.Rho <= physics.LiquidInit.Rho+1e-9 &&
			p.P >= physics.VaporInit.P-1e-9 &&
			p.P <= physics.LiquidInit.P+1e-9 &&
			p.G > 0 && p.Pi >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- property-based coverage of Generate (testing/quick) ------------------

// genSpec maps three raw quick inputs onto a feasible-ish spec space:
// 5-25 bubbles, radii within [0.01, 0.1], cloud radius 0.2-0.45.
func genSpec(seed int64, nRaw, rRaw uint8) Spec {
	n := 5 + int(nRaw%21)
	rMin := 0.01 + float64(rRaw%5)*0.005
	return Spec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.2 + float64(rRaw%6)*0.05,
		N:      n,
		RMin:   rMin,
		RMax:   rMin * (2 + float64(rRaw%3)),
		Seed:   seed,
	}
}

func TestGeneratePropertyRadiiClipped(t *testing.T) {
	prop := func(seed int64, nRaw, rRaw uint8) bool {
		spec := genSpec(seed, nRaw, rRaw)
		bubbles, err := spec.Generate()
		if err != nil {
			return true // infeasible packings are covered below
		}
		for _, b := range bubbles {
			if b.R < spec.RMin || b.R > spec.RMax {
				t.Logf("seed %d: radius %g outside [%g, %g]", seed, b.R, spec.RMin, spec.RMax)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePropertyMinGap(t *testing.T) {
	prop := func(seed int64, nRaw, rRaw uint8) bool {
		spec := genSpec(seed, nRaw, rRaw)
		spec.MinGap = 0.2
		bubbles, err := spec.Generate()
		if err != nil {
			return true
		}
		for i := range bubbles {
			for j := i + 1; j < len(bubbles); j++ {
				a, b := bubbles[i], bubbles[j]
				d := math.Sqrt((a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z))
				if min := a.R + b.R + spec.MinGap*math.Min(a.R, b.R); d < min {
					t.Logf("seed %d: bubbles %d,%d at distance %g violate min %g", seed, i, j, d, min)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePropertySeedDeterminism(t *testing.T) {
	prop := func(seed int64, nRaw, rRaw uint8) bool {
		spec := genSpec(seed, nRaw, rRaw)
		a, errA := spec.Generate()
		b, errB := spec.Generate()
		if (errA == nil) != (errB == nil) || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] { // bitwise: same seed must give the same cloud
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePropertyInfeasibleErrors(t *testing.T) {
	// Packings that cannot fit must return an error promptly (the attempt
	// budget is finite), never hang. The volume of N bubbles at RMin
	// exceeds the cloud volume, so the rejection loop can never succeed.
	prop := func(seed int64) bool {
		spec := Spec{
			Center: [3]float64{0.5, 0.5, 0.5},
			Radius: 0.08,
			N:      500,
			RMin:   0.04, RMax: 0.06,
			Seed: seed,
		}
		done := make(chan error, 1)
		go func() {
			_, err := spec.Generate()
			done <- err
		}()
		select {
		case err := <-done:
			return err != nil
		case <-time.After(30 * time.Second):
			t.Log("Generate hung on an infeasible packing")
			return false
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// --- interaction parameter & lattice ---------------------------------------

func TestVoidFractionAndBeta(t *testing.T) {
	// One bubble of half the cloud radius: α₀ = (1/2)³ = 1/8,
	// β = 1/8 · 7/8 · 2² = 7/16.
	bubbles := []Bubble{{R: 0.5}}
	if a := VoidFraction(bubbles, 1.0); math.Abs(a-0.125) > 1e-12 {
		t.Errorf("void fraction = %g, want 0.125", a)
	}
	if beta := InteractionParameter(bubbles, 1.0); math.Abs(beta-7.0/16.0) > 1e-12 {
		t.Errorf("beta = %g, want %g", beta, 7.0/16.0)
	}
	if beta := InteractionParameter(nil, 1.0); beta != 0 {
		t.Errorf("beta of empty cloud = %g, want 0", beta)
	}
}

func TestRadiusForBetaRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n    int
		r0   float64
		beta float64
	}{{12, 0.05, 0.5}, {50, 0.02, 2}, {8, 0.06, 0.1}} {
		rc, err := RadiusForBeta(tc.n, tc.r0, tc.beta)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		// A monodisperse cloud of that radius must realize the target β.
		bubbles := make([]Bubble, tc.n)
		for i := range bubbles {
			bubbles[i].R = tc.r0
		}
		if got := InteractionParameter(bubbles, rc); math.Abs(got-tc.beta)/tc.beta > 1e-9 {
			t.Errorf("n=%d r0=%g: β(R_C=%g) = %g, want %g", tc.n, tc.r0, rc, got, tc.beta)
		}
	}
	if _, err := RadiusForBeta(0, 0.05, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := RadiusForBeta(5, 0.05, 1e9); err == nil {
		t.Error("unreachable β should error")
	}
}

func TestCountForBetaRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		r0, rc, beta float64
	}{{0.06, 0.3, 0.5}, {0.06, 0.3, 2}, {0.02, 0.4, 10}} {
		n, err := CountForBeta(tc.r0, tc.rc, tc.beta)
		if err != nil {
			t.Fatalf("beta=%g: %v", tc.beta, err)
		}
		// A monodisperse cloud of that count must land near the target; the
		// only error is the rounding of n, so a few percent.
		bubbles := make([]Bubble, n)
		for i := range bubbles {
			bubbles[i].R = tc.r0
		}
		if got := InteractionParameter(bubbles, tc.rc); math.Abs(got-tc.beta)/tc.beta > 0.35 {
			t.Errorf("r0=%g rc=%g: β(n=%d) = %g, want ≈ %g", tc.r0, tc.rc, n, got, tc.beta)
		}
	}
	if _, err := CountForBeta(0.06, 0.3, 100); err == nil {
		t.Error("β above the α₀=1/2 branch maximum should error")
	}
	if _, err := CountForBeta(0.3, 0.06, 1); err == nil {
		t.Error("rc < r0 should error")
	}
}

func TestLattice(t *testing.T) {
	bubbles := Lattice(2, 3, 1, 0.05, [3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	if len(bubbles) != 6 {
		t.Fatalf("lattice has %d bubbles, want 6", len(bubbles))
	}
	for _, b := range bubbles {
		if b.R != 0.05 {
			t.Errorf("radius %g, want 0.05", b.R)
		}
		if b.X < 0.25-1e-12 || b.X > 0.75+1e-12 || b.Z != 0.5 {
			t.Errorf("bubble at (%g,%g,%g) off the cell centers", b.X, b.Y, b.Z)
		}
	}
	// No pair overlaps: the cell pitch exceeds the diameter.
	for i := range bubbles {
		for j := i + 1; j < len(bubbles); j++ {
			a, b := bubbles[i], bubbles[j]
			d2 := (a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z)
			if d2 < (a.R+b.R)*(a.R+b.R) {
				t.Fatalf("lattice bubbles %d and %d overlap", i, j)
			}
		}
	}
	if Lattice(0, 1, 1, 0.1, [3]float64{}, [3]float64{1, 1, 1}) != nil {
		t.Error("degenerate lattice should be nil")
	}
}

func TestTile(t *testing.T) {
	unit := []Bubble{{X: 0.2, Y: 0.3, Z: 0.4, R: 0.05}, {X: 0.7, Y: 0.6, Z: 0.5, R: 0.08}}
	tiled := Tile(unit, 1.0, 2, 1, 3)
	if len(tiled) != 2*2*1*3 {
		t.Fatalf("tiled %d bubbles, want 12", len(tiled))
	}
	// The last unit's copy of bubble 0 sits at offset (1, 0, 2).
	found := false
	for _, b := range tiled {
		if b.X == 1.2 && b.Y == 0.3 && b.Z == 2.4 && b.R == 0.05 {
			found = true
		}
	}
	if !found {
		t.Error("offset copy missing")
	}
	// Tiling preserves non-overlap across unit boundaries when the unit
	// keeps bubbles inside its extent.
	for i := range tiled {
		for j := i + 1; j < len(tiled); j++ {
			a, b := tiled[i], tiled[j]
			d2 := (a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z)
			if d2 < (a.R+b.R)*(a.R+b.R) {
				t.Fatalf("tiled bubbles %d and %d overlap", i, j)
			}
		}
	}
}
