package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"cubism/internal/physics"
)

func TestGenerateCount(t *testing.T) {
	spec := Spec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.4,
		N:      20,
		RMin:   0.02, RMax: 0.05,
		Seed: 1,
	}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(bubbles) != 20 {
		t.Fatalf("generated %d bubbles, want 20", len(bubbles))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 10, RMin: 0.02, RMax: 0.05, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bubble %d differs between runs", i)
		}
	}
}

func TestGenerateRadiiInRange(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 30, RMin: 0.02, RMax: 0.05, Seed: 3}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bubbles {
		if b.R < spec.RMin || b.R > spec.RMax {
			t.Fatalf("radius %g outside [%g, %g]", b.R, spec.RMin, spec.RMax)
		}
	}
}

func TestGenerateNoOverlap(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.4, N: 25, RMin: 0.02, RMax: 0.05, Seed: 5}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range bubbles {
		for j := i + 1; j < len(bubbles); j++ {
			a, b := bubbles[i], bubbles[j]
			d := math.Sqrt((a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z))
			if d < a.R+b.R {
				t.Fatalf("bubbles %d and %d overlap: d=%g, r1+r2=%g", i, j, d, a.R+b.R)
			}
		}
	}
}

func TestGenerateInsideCloudRegion(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.3, N: 15, RMin: 0.02, RMax: 0.05, Seed: 2}
	bubbles, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bubbles {
		d := math.Sqrt((b.X-0.5)*(b.X-0.5) + (b.Y-0.5)*(b.Y-0.5) + (b.Z-0.5)*(b.Z-0.5))
		if d+b.R > spec.Radius+1e-12 {
			t.Fatalf("bubble at distance %g with radius %g exceeds cloud radius %g", d, b.R, spec.Radius)
		}
	}
}

func TestGenerateTooDenseFails(t *testing.T) {
	spec := Spec{Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.1, N: 1000, RMin: 0.05, RMax: 0.09, Seed: 1}
	if _, err := spec.Generate(); err == nil {
		t.Error("expected failure for impossible density")
	}
}

func TestFieldPhaseStates(t *testing.T) {
	bubbles := []Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.2}}
	f := NewField(bubbles, 0.01)
	// Deep inside the bubble: pure vapor.
	inside := f.At(0.5, 0.5, 0.5)
	if math.Abs(inside.Rho-physics.VaporInit.Rho) > 1e-9 {
		t.Errorf("inside rho = %g, want vapor %g", inside.Rho, physics.VaporInit.Rho)
	}
	if math.Abs(inside.G-physics.Vapor.G()) > 1e-9 {
		t.Errorf("inside Γ = %g, want %g", inside.G, physics.Vapor.G())
	}
	// Far outside: pure pressurized liquid.
	outside := f.At(0.05, 0.05, 0.05)
	if math.Abs(outside.Rho-physics.LiquidInit.Rho) > 1e-9 {
		t.Errorf("outside rho = %g, want liquid %g", outside.Rho, physics.LiquidInit.Rho)
	}
	if math.Abs(outside.P-physics.LiquidInit.P) > 1e-9 {
		t.Errorf("outside p = %g, want %g", outside.P, physics.LiquidInit.P)
	}
	// On the interface: strictly between.
	mid := f.At(0.5, 0.5, 0.7)
	if mid.Rho <= physics.VaporInit.Rho || mid.Rho >= physics.LiquidInit.Rho {
		t.Errorf("interface rho = %g not between phases", mid.Rho)
	}
}

func TestAlphaMonotonicAcrossInterface(t *testing.T) {
	f := NewField([]Bubble{{X: 0.5, Y: 0.5, Z: 0.5, R: 0.2}}, 0.02)
	prev := 2.0
	for x := 0.5; x < 0.8; x += 0.005 {
		a := f.alpha(x, 0.5, 0.5)
		if a > prev+1e-12 {
			t.Fatalf("alpha not monotone at x=%g: %g > %g", x, a, prev)
		}
		if a < 0 || a > 1 {
			t.Fatalf("alpha %g outside [0,1]", a)
		}
		prev = a
	}
}

func TestVaporVolume(t *testing.T) {
	bubbles := []Bubble{{R: 0.1}, {R: 0.2}}
	want := 4.0 / 3.0 * math.Pi * (0.001 + 0.008)
	if got := VaporVolume(bubbles); math.Abs(got-want) > 1e-12 {
		t.Errorf("VaporVolume = %g, want %g", got, want)
	}
}

func TestFieldPropertyBounds(t *testing.T) {
	bubbles := []Bubble{{X: 0.3, Y: 0.4, Z: 0.5, R: 0.15}, {X: 0.7, Y: 0.6, Z: 0.5, R: 0.1}}
	f := NewField(bubbles, 0.02)
	check := func(x, y, z float64) bool {
		x = math.Mod(math.Abs(x), 1)
		y = math.Mod(math.Abs(y), 1)
		z = math.Mod(math.Abs(z), 1)
		p := f.At(x, y, z)
		return p.Rho >= physics.VaporInit.Rho-1e-9 &&
			p.Rho <= physics.LiquidInit.Rho+1e-9 &&
			p.P >= physics.VaporInit.P-1e-9 &&
			p.P <= physics.LiquidInit.P+1e-9 &&
			p.G > 0 && p.Pi >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTile(t *testing.T) {
	unit := []Bubble{{X: 0.2, Y: 0.3, Z: 0.4, R: 0.05}, {X: 0.7, Y: 0.6, Z: 0.5, R: 0.08}}
	tiled := Tile(unit, 1.0, 2, 1, 3)
	if len(tiled) != 2*2*1*3 {
		t.Fatalf("tiled %d bubbles, want 12", len(tiled))
	}
	// The last unit's copy of bubble 0 sits at offset (1, 0, 2).
	found := false
	for _, b := range tiled {
		if b.X == 1.2 && b.Y == 0.3 && b.Z == 2.4 && b.R == 0.05 {
			found = true
		}
	}
	if !found {
		t.Error("offset copy missing")
	}
	// Tiling preserves non-overlap across unit boundaries when the unit
	// keeps bubbles inside its extent.
	for i := range tiled {
		for j := i + 1; j < len(tiled); j++ {
			a, b := tiled[i], tiled[j]
			d2 := (a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + (a.Z-b.Z)*(a.Z-b.Z)
			if d2 < (a.R+b.R)*(a.R+b.R) {
				t.Fatalf("tiled bubbles %d and %d overlap", i, j)
			}
		}
	}
}
