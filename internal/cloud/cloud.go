// Package cloud generates the initial conditions of the paper's production
// runs (§7): clusters of spherical vapor bubbles inside pressurized liquid,
// with radii sampled from a lognormal distribution (Hansson et al., paper
// ref. [30]) and a smoothed two-phase field so the diffuse interface is
// resolved by a few cells.
package cloud

import (
	"fmt"
	"math"
	"math/rand"

	"cubism/internal/physics"
)

// Bubble is one spherical vapor cavity.
type Bubble struct {
	X, Y, Z float64 // center
	R       float64 // radius
}

// Spec describes a bubble cloud.
type Spec struct {
	// Center and Radius bound the spherical cloud region.
	Center [3]float64
	Radius float64
	// N is the number of bubbles.
	N int
	// RMin and RMax clip the sampled radii (paper: 50-200 microns).
	RMin, RMax float64
	// Sigma is the lognormal shape parameter (paper's distribution follows
	// [30]; 0 defaults to 0.4).
	Sigma float64
	// MinGap is the minimum surface-to-surface separation between bubbles,
	// as a fraction of the smaller radius (0 defaults to 0.1).
	MinGap float64
	// Seed makes the cloud reproducible.
	Seed int64
}

// Generate samples a non-overlapping bubble cloud by rejection. It returns
// an error when the requested count cannot be placed (cloud too dense).
func (s Spec) Generate() ([]Bubble, error) {
	if s.N <= 0 {
		return nil, nil
	}
	sigma := s.Sigma
	if sigma == 0 {
		sigma = 0.4
	}
	gap := s.MinGap
	if gap == 0 {
		gap = 0.1
	}
	// Median radius centered geometrically between the clip bounds.
	mu := math.Log(math.Sqrt(s.RMin * s.RMax))
	rng := rand.New(rand.NewSource(s.Seed))
	var bubbles []Bubble
	maxAttempts := 2000 * s.N
	for attempt := 0; attempt < maxAttempts && len(bubbles) < s.N; attempt++ {
		r := math.Exp(rng.NormFloat64()*sigma + mu)
		if r < s.RMin || r > s.RMax {
			continue
		}
		// Uniform position inside the cloud sphere (rejection in the cube).
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		z := 2*rng.Float64() - 1
		if x*x+y*y+z*z > 1 {
			continue
		}
		b := Bubble{
			X: s.Center[0] + x*(s.Radius-r),
			Y: s.Center[1] + y*(s.Radius-r),
			Z: s.Center[2] + z*(s.Radius-r),
			R: r,
		}
		ok := true
		for _, o := range b.overlaps(bubbles, gap) {
			if o {
				ok = false
				break
			}
		}
		if ok {
			bubbles = append(bubbles, b)
		}
	}
	if len(bubbles) < s.N {
		return bubbles, fmt.Errorf("cloud: placed only %d of %d bubbles; reduce density", len(bubbles), s.N)
	}
	return bubbles, nil
}

// overlaps reports, per existing bubble, whether b violates the gap.
func (b Bubble) overlaps(existing []Bubble, gap float64) []bool {
	out := make([]bool, len(existing))
	for i, o := range existing {
		dx, dy, dz := b.X-o.X, b.Y-o.Y, b.Z-o.Z
		d := math.Sqrt(dx*dx + dy*dy + dz*dz)
		minR := math.Min(b.R, o.R)
		out[i] = d < b.R+o.R+gap*minR
	}
	return out
}

// Field holds the two-phase initial condition built from a bubble set.
type Field struct {
	Bubbles []Bubble
	// Eps is the interface smoothing half-width (in physical length units,
	// typically a few cell spacings).
	Eps float64
	// Liquid and Vapor states; defaults are the paper's §7 values.
	LiquidRho, LiquidP float64
	VaporRho, VaporP   float64
}

// NewField builds a field with the paper's material states.
func NewField(bubbles []Bubble, eps float64) *Field {
	return &Field{
		Bubbles:   bubbles,
		Eps:       eps,
		LiquidRho: physics.LiquidInit.Rho, LiquidP: physics.LiquidInit.P,
		VaporRho: physics.VaporInit.Rho, VaporP: physics.VaporInit.P,
	}
}

// alpha returns the smoothed vapor volume fraction at a point: 1 deep
// inside a bubble, 0 in the liquid, smoothly varying across Eps.
func (f *Field) alpha(x, y, z float64) float64 {
	// Signed distance to the union of bubbles (positive inside).
	d := math.Inf(-1)
	for _, b := range f.Bubbles {
		dx, dy, dz := x-b.X, y-b.Y, z-b.Z
		di := b.R - math.Sqrt(dx*dx+dy*dy+dz*dz)
		if di > d {
			d = di
		}
	}
	if f.Eps == 0 {
		if d >= 0 {
			return 1
		}
		return 0
	}
	// Smooth Heaviside over [-Eps, Eps].
	if d <= -f.Eps {
		return 0
	}
	if d >= f.Eps {
		return 1
	}
	t := d / f.Eps
	return 0.5 * (1 + t + math.Sin(math.Pi*t)/math.Pi)
}

// At evaluates the primitive initial state at a point: mixture density and
// material functions by volume-fraction blending, pressure blended between
// the vapor and pressurized-liquid values, zero velocity (the cloud right
// before collapse).
func (f *Field) At(x, y, z float64) physics.Prim {
	a := f.alpha(x, y, z)
	g, pi := physics.Mix(physics.Liquid, physics.Vapor, a)
	return physics.Prim{
		Rho: (1-a)*f.LiquidRho + a*f.VaporRho,
		P:   (1-a)*f.LiquidP + a*f.VaporP,
		G:   g,
		Pi:  pi,
	}
}

// VaporVolume returns the analytic vapor volume of the bubble set
// (ignoring smearing), used to validate the diagnostic equivalent radius.
func VaporVolume(bubbles []Bubble) float64 {
	v := 0.0
	for _, b := range bubbles {
		v += 4.0 / 3.0 * math.Pi * b.R * b.R * b.R
	}
	return v
}

// VoidFraction is the gas volume fraction α₀ of a bubble set inside a
// spherical cloud region of the given radius: Σ(4/3 π r³) / (4/3 π R_C³).
func VoidFraction(bubbles []Bubble, cloudRadius float64) float64 {
	if cloudRadius <= 0 {
		return 0
	}
	return VaporVolume(bubbles) / (4.0 / 3.0 * math.Pi * cloudRadius * cloudRadius * cloudRadius)
}

// MeanRadius is the arithmetic mean bubble radius R₀ of the set.
func MeanRadius(bubbles []Bubble) float64 {
	if len(bubbles) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range bubbles {
		sum += b.R
	}
	return sum / float64(len(bubbles))
}

// InteractionParameter is the cloud interaction parameter
//
//	β = α₀ (1 − α₀) (R_C / R₀)²
//
// of d'Agostino & Brennen, the dimensionless coupling strength Rasthofer et
// al. use to characterize their 12'500-bubble clouds: β ≪ 1 means bubbles
// collapse as isolated Rayleigh bubbles, β ≳ 1 means the cloud collapses
// collectively from the outside in, focusing pressure at the center. α₀ is
// the gas void fraction of the cloud sphere and R₀ the mean bubble radius.
func InteractionParameter(bubbles []Bubble, cloudRadius float64) float64 {
	r0 := MeanRadius(bubbles)
	if r0 <= 0 || cloudRadius <= 0 {
		return 0
	}
	a := VoidFraction(bubbles, cloudRadius)
	x := cloudRadius / r0
	return a * (1 - a) * x * x
}

// RadiusForBeta solves for the cloud radius that yields a target
// interaction parameter β for n bubbles of mean radius r0, inverting the
// monodisperse relation β(R_C) = α₀(1−α₀)(R_C/R₀)² with α₀ = n(R₀/R_C)³.
// β decreases monotonically in R_C on the physical branch α₀ < 1/2, so the
// solution is a bisection; the realized β of a sampled cloud then deviates
// only by the spread of the lognormal radii around their mean.
func RadiusForBeta(n int, r0, beta float64) (float64, error) {
	if n <= 0 || r0 <= 0 || beta <= 0 {
		return 0, fmt.Errorf("cloud: RadiusForBeta needs positive n, r0 and beta")
	}
	betaAt := func(rc float64) float64 {
		a := float64(n) * (r0 / rc) * (r0 / rc) * (r0 / rc)
		return a * (1 - a) * (rc / r0) * (rc / r0)
	}
	// Bracket on the dilute branch: α₀ = 1/2 at lo (β maximal there for the
	// branch), β → 0 as R_C → ∞.
	lo := r0 * math.Cbrt(2*float64(n))
	if beta >= betaAt(lo) {
		return 0, fmt.Errorf("cloud: target β=%.3g unreachable with %d bubbles of mean radius %.3g (max %.3g)",
			beta, n, r0, betaAt(lo))
	}
	hi := lo
	for betaAt(hi) > beta {
		hi *= 2
		if hi > 1e9*r0 {
			return 0, fmt.Errorf("cloud: target β=%.3g too small to bracket", beta)
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if betaAt(mid) > beta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// CountForBeta solves for the bubble count that yields a target interaction
// parameter β for bubbles of mean radius r0 inside a cloud of radius rc,
// inverting β = α₀(1−α₀)(rc/r0)² with α₀ = n(r0/rc)³ on the dilute branch
// α₀ < 1/2. This is the practical knob at fixed domain size — β scales
// almost linearly with n while the geometry stays resolvable — whereas
// RadiusForBeta holds the count and moves the cloud boundary.
func CountForBeta(r0, rc, beta float64) (int, error) {
	if r0 <= 0 || rc <= r0 || beta <= 0 {
		return 0, fmt.Errorf("cloud: CountForBeta needs 0 < r0 < rc and beta > 0")
	}
	c := beta * (r0 / rc) * (r0 / rc)
	if c > 0.25 {
		return 0, fmt.Errorf("cloud: target β=%.3g unreachable at rc/r0=%.3g (max %.3g at α₀=1/2)",
			beta, rc/r0, 0.25*(rc/r0)*(rc/r0))
	}
	alpha := 0.5 * (1 - math.Sqrt(1-4*c))
	n := int(math.Round(alpha * (rc / r0) * (rc / r0) * (rc / r0)))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// Lattice places a regular kx × ky × kz array of equal bubbles of radius r,
// cell-centered inside the axis-aligned box [lo, hi] — the regular-array
// configuration used by cloud studies to isolate bubble-bubble interaction
// from statistical geometry (and the §7 "simulation unit" building block).
func Lattice(kx, ky, kz int, r float64, lo, hi [3]float64) []Bubble {
	if kx <= 0 || ky <= 0 || kz <= 0 {
		return nil
	}
	k := [3]int{kx, ky, kz}
	var step, base [3]float64
	for d := 0; d < 3; d++ {
		step[d] = (hi[d] - lo[d]) / float64(k[d])
		base[d] = lo[d] + 0.5*step[d]
	}
	out := make([]Bubble, 0, kx*ky*kz)
	for iz := 0; iz < kz; iz++ {
		for iy := 0; iy < ky; iy++ {
			for ix := 0; ix < kx; ix++ {
				out = append(out, Bubble{
					X: base[0] + float64(ix)*step[0],
					Y: base[1] + float64(iy)*step[1],
					Z: base[2] + float64(iz)*step[2],
					R: r,
				})
			}
		}
	}
	return out
}

// Tile replicates a bubble set across a kx x ky x kz array of simulation
// units, offsetting positions by the unit extent — the paper's §7 assembly:
// "the target physical system is assembled by piecing together the
// simulation units and keeping the same spatial resolution", which is how
// the production clouds reach 15'000 bubbles from 50-100 bubble units.
func Tile(unit []Bubble, extent float64, kx, ky, kz int) []Bubble {
	out := make([]Bubble, 0, len(unit)*kx*ky*kz)
	for iz := 0; iz < kz; iz++ {
		for iy := 0; iy < ky; iy++ {
			for ix := 0; ix < kx; ix++ {
				for _, b := range unit {
					out = append(out, Bubble{
						X: b.X + float64(ix)*extent,
						Y: b.Y + float64(iy)*extent,
						Z: b.Z + float64(iz)*extent,
						R: b.R,
					})
				}
			}
		}
	}
	return out
}
