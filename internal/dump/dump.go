// Package dump implements the compressed dump file format and its parallel
// writer: one file per quantity, written collectively by all ranks through
// the shared-file abstraction, with each rank's variable-size compressed
// payload placed at the offset obtained from an exclusive prefix sum of the
// payload sizes (paper §6, "MPI parallel file I/O is employed to generate a
// single compressed file per quantity ... preceded by an exclusive scan").
//
// Layout:
//
//	magic "MPCFDmp1" | header length (uint32) | JSON header | rank payloads
//
// The JSON header records the global geometry, compression parameters and
// the per-rank (offset, size, blocks) table, so the file is self-describing
// and single-process tools can decompress any subset of ranks.
package dump

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"cubism/internal/compress"
	"cubism/internal/mpi"
)

// Magic identifies dump files.
const Magic = "MPCFDmp1"

// RankEntry locates one rank's payload in the file.
type RankEntry struct {
	Offset  int64 `json:"offset"`
	Size    int64 `json:"size"`
	Blocks  int   `json:"blocks"`
	Streams []int `json:"streams"` // encoded stream sizes within the payload
	// BlockIDs lists the canonical (row-major global) linear block ids of
	// the rank's payload in block order. Absent in pre-layout files, whose
	// block order is implied by the cartesian decomposition.
	BlockIDs []int64 `json:"block_ids,omitempty"`
}

// Header is the self-describing metadata block of a dump file.
type Header struct {
	Quantity  string      `json:"quantity"`
	Encoder   string      `json:"encoder"`
	Epsilon   float64     `json:"epsilon"`
	BlockSize int         `json:"block_size"`
	RankDims  [3]int      `json:"rank_dims"`
	BlockDims [3]int      `json:"block_dims"` // blocks per rank per dimension
	Layout    string      `json:"layout,omitempty"`
	Step      int         `json:"step"`
	Time      float64     `json:"time"`
	Ranks     []RankEntry `json:"ranks"`
}

// WriteCollective writes one quantity's compressed payload from every rank
// into a single shared file. blockIDs (optional, may be nil) lists the
// canonical linear ids of this rank's blocks in payload order; when given,
// the header records every rank's table so readers can reassemble the
// global field under any layout. All ranks must call it; returns the number
// of payload bytes this rank wrote.
func WriteCollective(comm *mpi.Comm, path string, hdr Header, c *compress.Compressed, blockIDs []int64) (int64, error) {
	// Flatten this rank's streams.
	var payload []byte
	streams := make([]int, len(c.Streams))
	for i, s := range c.Streams {
		streams[i] = len(s)
		payload = append(payload, s...)
	}
	mySize := int64(len(payload))

	// Exclusive prefix sum assigns contiguous regions in rank order.
	prefix := comm.Exscan(mySize)

	// Rank 0 lays out the header; its size must be known to every rank, so
	// the header is built collectively: gather sizes and stream counts.
	sizes := comm.Gather(float64(mySize))
	blockCounts := comm.Gather(float64(c.Blocks))
	streamsFlat := comm.Gather(float64(len(streams)))

	// The per-rank stream-size tables (and, when present, block-id tables)
	// are exchanged point-to-point to rank 0. The id tables ride stream
	// channel 5, above the net-bench channels 1..4.
	tagStreams := mpi.TagStream(0)
	tagIDs := mpi.TagStream(5)
	if comm.Rank() != 0 {
		data := make([]int64, len(streams))
		for i, s := range streams {
			data[i] = int64(s)
		}
		comm.SendInts(0, tagStreams, data)
		if blockIDs != nil {
			comm.SendInts(0, tagIDs, blockIDs)
		}
	}

	var headerBytes []byte
	if comm.Rank() == 0 {
		entries := make([]RankEntry, comm.Size())
		entries[0] = RankEntry{Size: mySize, Blocks: c.Blocks, Streams: streams, BlockIDs: blockIDs}
		for r := 1; r < comm.Size(); r++ {
			data := comm.RecvInts(r, tagStreams)
			tbl := make([]int, int(streamsFlat[r]))
			for i := range tbl {
				tbl[i] = int(data[i])
			}
			entries[r] = RankEntry{Size: int64(sizes[r]), Blocks: int(blockCounts[r]), Streams: tbl}
			if blockIDs != nil {
				entries[r].BlockIDs = comm.RecvInts(r, tagIDs)
			}
		}
		var err error
		headerBytes, err = buildHeader(&hdr, entries)
		if err != nil {
			return 0, err
		}
	}

	// Every rank needs the payload base offset; rank 0 broadcasts it via
	// an allreduce (all other ranks contribute 0).
	var myBase float64
	if comm.Rank() == 0 {
		myBase = float64(int64(len(Magic)) + 4 + int64(len(headerBytes)))
	}
	base := int64(comm.Allreduce(myBase, mpi.MaxOp))

	f, err := mpi.CreateShared(comm, path)
	if err != nil {
		return 0, err
	}
	if comm.Rank() == 0 {
		var pre []byte
		pre = append(pre, Magic...)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(headerBytes)))
		pre = append(pre, lenBuf[:]...)
		pre = append(pre, headerBytes...)
		if _, err := f.WriteAt(pre, 0); err != nil {
			return 0, err
		}
	}
	if len(payload) > 0 {
		if _, err := f.WriteAt(payload, base+prefix); err != nil {
			return 0, err
		}
	}
	// Ensure all writes land before any rank proceeds (and the file can be
	// closed/read).
	comm.Barrier()
	return mySize, f.Close()
}

// buildHeader lays out the padded fixed-size header from the per-rank
// entries (offsets are assigned here). Extracted from the collective writer
// so the frame-streaming sink produces byte-identical headers — the bitwise
// file≡frame contract rests on this being the only header serializer.
func buildHeader(hdr *Header, entries []RankEntry) ([]byte, error) {
	hdr.Ranks = entries
	// Two passes: encode with zero offsets to learn the header length,
	// then fix the offsets and re-encode with padding to fixed size.
	probe, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	// Reserve room for offset digits growing after assignment.
	headerLen := len(probe) + 32*len(entries)
	base := int64(len(Magic)) + 4 + int64(headerLen)
	var off int64
	for r := range hdr.Ranks {
		hdr.Ranks[r].Offset = base + off
		off += hdr.Ranks[r].Size
	}
	body, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if len(body) > headerLen {
		return nil, fmt.Errorf("dump: header length estimate too small (%d > %d)", len(body), headerLen)
	}
	headerBytes := make([]byte, headerLen)
	copy(headerBytes, body)
	for i := len(body); i < headerLen; i++ {
		headerBytes[i] = ' '
	}
	return headerBytes, nil
}

// Read opens a dump file and returns its header and the per-rank compressed
// payloads, reassembled into compress.Compressed values ready to
// Decompress.
func Read(path string) (Header, []*compress.Compressed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	hdr, out, err := Decode(data)
	if err != nil {
		return hdr, nil, fmt.Errorf("dump: %s: %v", path, err)
	}
	return hdr, out, nil
}

// Decode parses a complete dump file (or streamed frame — the bytes are
// identical) held in memory. Every field of the self-describing header is
// untrusted: offsets, sizes and stream tables are bounds-checked before
// they slice the data, so corrupt or adversarial frames fail with an error
// instead of a panic or an outsized allocation.
func Decode(data []byte) (Header, []*compress.Compressed, error) {
	var hdr Header
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return hdr, nil, fmt.Errorf("bad magic")
	}
	hlen := int(binary.LittleEndian.Uint32(data[len(Magic):]))
	hstart := len(Magic) + 4
	if hlen < 0 || hstart+hlen > len(data) {
		return hdr, nil, fmt.Errorf("truncated header")
	}
	if err := json.Unmarshal(trimSpaces(data[hstart:hstart+hlen]), &hdr); err != nil {
		return hdr, nil, err
	}
	out := make([]*compress.Compressed, len(hdr.Ranks))
	for r, re := range hdr.Ranks {
		if re.Offset < 0 || re.Size < 0 || re.Size > int64(len(data)) || re.Offset+re.Size > int64(len(data)) {
			return hdr, nil, fmt.Errorf("rank %d payload out of range", r)
		}
		payload := data[re.Offset : re.Offset+re.Size]
		c := &compress.Compressed{
			N:        hdr.BlockSize,
			Blocks:   re.Blocks,
			Quantity: hdr.Quantity,
			Encoder:  hdr.Encoder,
			Epsilon:  hdr.Epsilon,
		}
		off := 0
		for _, sz := range re.Streams {
			if sz < 0 || sz > len(payload)-off {
				return hdr, nil, fmt.Errorf("rank %d stream table out of range", r)
			}
			c.Streams = append(c.Streams, payload[off:off+sz])
			off += sz
		}
		if int64(off) != re.Size {
			return hdr, nil, fmt.Errorf("rank %d stream table inconsistent", r)
		}
		out[r] = c
	}
	return hdr, out, nil
}

// trimSpaces removes the trailing padding of the fixed-size header.
func trimSpaces(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == ' ' {
		end--
	}
	return b[:end]
}
