package dump

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cubism/internal/compress"
)

// validFrameImage builds a well-formed two-rank frame image (the same
// bytes WriteCollective puts on disk and StreamCollective assembles) so
// the fuzzer starts from the success path.
func validFrameImage(tb testing.TB, encoder string) []byte {
	tb.Helper()
	enc, err := compress.NewEncoder(encoder)
	if err != nil {
		tb.Fatal(err)
	}
	// One 8³ block per rank: ordinal record + 512 float32 coefficients.
	raw := make([]byte, 4+8*8*8*4)
	for i := range raw[4:] {
		raw[4+i] = byte(i * 7)
	}
	var payloads [][]byte
	entries := make([]RankEntry, 2)
	for r := range entries {
		raw[0] = 0 // block ordinal 0 within the rank payload
		stream, err := enc.Encode(nil, raw)
		if err != nil {
			tb.Fatal(err)
		}
		payloads = append(payloads, stream)
		entries[r] = RankEntry{Size: int64(len(stream)), Blocks: 1, Streams: []int{len(stream)}}
	}
	hdr := Header{
		Quantity: "p", Encoder: encoder, Epsilon: 1e-3, BlockSize: 8,
		RankDims: [3]int{2, 1, 1}, BlockDims: [3]int{1, 1, 1}, Step: 1, Time: 1e-4,
	}
	headerBytes, err := buildHeader(&hdr, entries)
	if err != nil {
		tb.Fatal(err)
	}
	var data []byte
	data = append(data, Magic...)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(headerBytes)))
	data = append(data, lenBuf[:]...)
	data = append(data, headerBytes...)
	for _, p := range payloads {
		data = append(data, p...)
	}
	return data
}

// FuzzFrameStreamDecode feeds arbitrary bytes through the frame decoder
// (Decode parses both on-disk dump files and streamed frames — the bytes
// are identical). Corrupt or adversarial frames must surface as errors,
// never as panics, outsized allocations, or out-of-range slices; valid
// frames must keep decoding after the fuzzer mutates them back into shape.
func FuzzFrameStreamDecode(f *testing.F) {
	for _, encoder := range []string{"rle", "huff"} {
		img := validFrameImage(f, encoder)
		f.Add(img)
		f.Add(img[:len(img)/2])     // truncated payload
		f.Add(img[:len(Magic)+4+8]) // truncated header
	}
	f.Add([]byte(Magic))
	f.Add([]byte("MPCFDmp1\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, comps, err := Decode(data)
		if err != nil {
			return // corrupt input is allowed to fail, not to panic
		}
		if len(comps) != len(hdr.Ranks) {
			t.Fatalf("decoded %d rank payloads, header lists %d", len(comps), len(hdr.Ranks))
		}
		for r, c := range comps {
			// Every accepted stream slice must lie inside the input.
			for _, s := range c.Streams {
				if len(s) > len(data) {
					t.Fatalf("rank %d stream of %d bytes exceeds the %d-byte input", r, len(s), len(data))
				}
			}
			// Decompression of an accepted frame may fail on garbage
			// coefficients, but must not panic.
			if fields, err := c.Decompress(); err == nil && len(fields) != c.Blocks {
				t.Fatalf("rank %d decompressed to %d blocks, want %d", r, len(fields), c.Blocks)
			}
		}
	})
}

// TestWriteFrameSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzFrameStreamDecode (run with WRITE_FRAME_SEEDS=1); by
// default it only verifies the checked-in seeds still decode, so corpus
// and coder never drift apart silently.
func TestWriteFrameSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameStreamDecode")
	for _, encoder := range []string{"rle", "huff"} {
		img := validFrameImage(t, encoder)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", img)
		path := filepath.Join(dir, "seed-"+encoder)
		if os.Getenv("WRITE_FRAME_SEEDS") != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus missing (regenerate with WRITE_FRAME_SEEDS=1): %v", err)
		}
		if string(got) != body {
			t.Fatalf("seed %s stale: the frame layout or %s coder changed — regenerate with WRITE_FRAME_SEEDS=1", path, encoder)
		}
	}
}

// TestValidFrameImageDecodes pins the fuzz seed itself: the hand-assembled
// frame image must decode and decompress cleanly, or the fuzzer would
// start from a corpus that never exercises the success path.
func TestValidFrameImageDecodes(t *testing.T) {
	for _, encoder := range []string{"rle", "huff"} {
		img := validFrameImage(t, encoder)
		hdr, comps, err := Decode(img)
		if err != nil {
			t.Fatalf("%s: %v", encoder, err)
		}
		if hdr.Encoder != encoder || len(comps) != 2 {
			t.Fatalf("%s: decoded header %+v with %d ranks", encoder, hdr, len(comps))
		}
		for r, c := range comps {
			fields, err := c.Decompress()
			if err != nil {
				t.Fatalf("%s rank %d: %v", encoder, r, err)
			}
			if len(fields) != 1 || len(fields[0]) != 8*8*8 {
				t.Fatalf("%s rank %d: wrong shape", encoder, r)
			}
		}
		// The image is self-consistent: re-decoding a copy is identical.
		if !bytes.Equal(img, append([]byte(nil), img...)) {
			t.Fatal("unreachable")
		}
	}
}
