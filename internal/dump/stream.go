package dump

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"cubism/internal/compress"
	"cubism/internal/mpi"
)

// Frame is one streamed compressed snapshot delivered to the sink rank:
// Data holds the complete dump-file bytes (magic, padded header, rank
// payloads in rank order), bitwise identical to what WriteCollective puts
// on disk for the same state.
type Frame struct {
	Name     string
	Step     int
	Quantity string
	Time     float64
	Data     []byte
}

// FrameSink consumes assembled frames on the sink rank.
type FrameSink func(Frame) error

// FrameRecord is the JSONL shape of one streamed frame in a frame log
// (mpcf-sim -frame-log): Data is the full file image, base64 in JSON. The
// service tails these records back into "frame" events.
type FrameRecord struct {
	Name     string  `json:"name"`
	Step     int     `json:"step"`
	Quantity string  `json:"quantity"`
	Time     float64 `json:"time"`
	Bytes    int     `json:"bytes"`
	Data     []byte  `json:"data"`
}

// streamMeta is the per-rank metadata message of a streamed frame.
type streamMeta struct {
	Size     int64   `json:"size"`
	Blocks   int     `json:"blocks"`
	Streams  []int   `json:"streams"`
	BlockIDs []int64 `json:"block_ids,omitempty"`
	Chunks   int     `json:"chunks"`
}

// streamChunkSize is the target payload chunk size on the wire. Chunks grow
// past it only when a payload would otherwise exceed mpi.MaxDumpParts
// messages.
const streamChunkSize = 256 << 10

// StreamCollective ships one quantity's compressed payload from every rank
// to the sink rank (rank 0) over the dedicated TagDump channel, where the
// full dump-file image is assembled and handed to sink. All ranks must call
// it with the same seq (the caller's per-dump frame counter, which keeps
// successive frames on distinct tags). sink runs only on rank 0 and may be
// nil there (the frame is then assembled and dropped, keeping the network
// work identical). Returns the number of frame bytes this rank handled:
// metadata+payload sent for nonzero ranks, the assembled frame size for the
// sink.
func StreamCollective(comm *mpi.Comm, seq int, hdr Header, c *compress.Compressed, blockIDs []int64, sink FrameSink) (int64, error) {
	var payload []byte
	streams := make([]int, len(c.Streams))
	for i, s := range c.Streams {
		streams[i] = len(s)
		payload = append(payload, s...)
	}
	chunk := streamChunkSize
	if len(payload) > chunk*mpi.MaxDumpParts {
		chunk = (len(payload) + mpi.MaxDumpParts - 1) / mpi.MaxDumpParts
	}
	chunks := (len(payload) + chunk - 1) / chunk

	if comm.Rank() != 0 {
		meta, err := json.Marshal(streamMeta{
			Size: int64(len(payload)), Blocks: c.Blocks, Streams: streams,
			BlockIDs: blockIDs, Chunks: chunks,
		})
		if err != nil {
			return 0, err
		}
		comm.SendBytes(0, mpi.TagDump(seq, 0), meta)
		sent := int64(len(meta))
		for p := 0; p < chunks; p++ {
			lo := p * chunk
			hi := min(lo+chunk, len(payload))
			comm.SendBytes(0, mpi.TagDump(seq, p+1), payload[lo:hi])
			sent += int64(hi - lo)
		}
		return sent, nil
	}

	// Sink: collect every rank's metadata and payload in rank order, then
	// lay out the file image exactly like the collective writer.
	entries := make([]RankEntry, comm.Size())
	entries[0] = RankEntry{Size: int64(len(payload)), Blocks: c.Blocks, Streams: streams, BlockIDs: blockIDs}
	payloads := make([][]byte, comm.Size())
	payloads[0] = payload
	for r := 1; r < comm.Size(); r++ {
		var meta streamMeta
		if err := json.Unmarshal(comm.RecvBytes(r, mpi.TagDump(seq, 0)), &meta); err != nil {
			return 0, fmt.Errorf("dump: rank %d frame metadata: %v", r, err)
		}
		entries[r] = RankEntry{Size: meta.Size, Blocks: meta.Blocks, Streams: meta.Streams, BlockIDs: meta.BlockIDs}
		buf := make([]byte, 0, meta.Size)
		for p := 0; p < meta.Chunks; p++ {
			buf = append(buf, comm.RecvBytes(r, mpi.TagDump(seq, p+1))...)
		}
		if int64(len(buf)) != meta.Size {
			return 0, fmt.Errorf("dump: rank %d frame payload %d bytes, metadata says %d", r, len(buf), meta.Size)
		}
		payloads[r] = buf
	}
	headerBytes, err := buildHeader(&hdr, entries)
	if err != nil {
		return 0, err
	}
	var total int64 = int64(len(Magic)) + 4 + int64(len(headerBytes))
	for _, p := range payloads {
		total += int64(len(p))
	}
	data := make([]byte, 0, total)
	data = append(data, Magic...)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(headerBytes)))
	data = append(data, lenBuf[:]...)
	data = append(data, headerBytes...)
	for _, p := range payloads {
		data = append(data, p...)
	}
	if sink != nil {
		name := fmt.Sprintf("%s_step%06d.mpcf", hdr.Quantity, hdr.Step)
		if err := sink(Frame{Name: name, Step: hdr.Step, Quantity: hdr.Quantity, Time: hdr.Time, Data: data}); err != nil {
			return 0, err
		}
	}
	return int64(len(data)), nil
}
