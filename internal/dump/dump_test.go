package dump

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"cubism/internal/compress"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

func makeGrid(n, nb int, offset float64) *grid.Grid {
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					p := physics.Prim{
						Rho: 1000,
						P:   1e7 * (1 + 0.1*math.Sin(2*math.Pi*(x+offset))*math.Cos(2*math.Pi*y)*math.Sin(2*math.Pi*z)),
						G:   physics.Liquid.G(),
						Pi:  physics.Liquid.P(),
					}
					c := p.ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
	return g
}

func TestWriteReadRoundTripMultiRank(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mpcf")
	const nRanks = 4
	world := mpi.NewWorld(nRanks)
	originals := make([][][]float32, nRanks)
	world.Run(func(comm *mpi.Comm) {
		// Each rank compresses a slightly different field.
		g := makeGrid(8, 2, float64(comm.Rank())*0.1)
		c, _, err := compress.Compress(g, compress.Pressure, compress.Options{
			Epsilon: 1e-3, Encoder: "zlib", Workers: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Remember the reconstruction for comparison after reading back.
		fields, err := c.Decompress()
		if err != nil {
			t.Error(err)
			return
		}
		originals[comm.Rank()] = fields
		hdr := Header{
			Quantity: "p", Encoder: "zlib", Epsilon: 1e-3,
			BlockSize: 8,
			RankDims:  [3]int{4, 1, 1}, BlockDims: [3]int{2, 2, 2},
			Step: 42, Time: 1.25e-5,
		}
		if _, err := WriteCollective(comm, path, hdr, c, nil); err != nil {
			t.Error(err)
		}
	})

	hdr, payloads, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Quantity != "p" || hdr.Step != 42 || hdr.BlockSize != 8 {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if len(payloads) != nRanks {
		t.Fatalf("ranks = %d, want %d", len(payloads), nRanks)
	}
	for r, c := range payloads {
		fields, err := c.Decompress()
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if len(fields) != len(originals[r]) {
			t.Fatalf("rank %d: %d blocks, want %d", r, len(fields), len(originals[r]))
		}
		for bi := range fields {
			for i := range fields[bi] {
				if fields[bi][i] != originals[r][bi][i] {
					t.Fatalf("rank %d block %d elem %d differs", r, bi, i)
				}
			}
		}
	}
}

func TestReadRejectsCorruptMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.mpcf")
	if err := os.WriteFile(path, []byte("NOTADUMP0000"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(path); err == nil {
		t.Error("expected error for corrupt magic")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mpcf")
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		g := makeGrid(8, 1, 0)
		c, _, err := compress.Compress(g, compress.Pressure, compress.Options{Epsilon: 1e-3, Encoder: "zlib"})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := WriteCollective(comm, path, Header{
			Quantity: "p", Encoder: "zlib", BlockSize: 8,
			RankDims: [3]int{1, 1, 1}, BlockDims: [3]int{1, 1, 1},
		}, c, nil); err != nil {
			t.Error(err)
		}
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(path); err == nil {
		t.Error("expected error for truncated file")
	}
}
