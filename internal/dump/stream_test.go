package dump

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cubism/internal/compress"
	"cubism/internal/mpi"
)

// TestStreamMatchesFileBitwise is the frame-streaming contract: the file
// image assembled on the sink rank from TagDump messages must be bitwise
// identical to what the collective writer puts on disk for the same state
// — header padding, rank payload order, everything.
func TestStreamMatchesFileBitwise(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mpcf")
	const nRanks = 4
	for _, encoder := range []string{"zlib", "huff"} {
		world := mpi.NewWorld(nRanks)
		var frame Frame
		world.Run(func(comm *mpi.Comm) {
			g := makeGrid(8, 2, float64(comm.Rank())*0.1)
			c, _, err := compress.Compress(g, compress.Pressure, compress.Options{
				Epsilon: 1e-3, Encoder: encoder, Workers: 2,
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids := make([]int64, len(g.Blocks))
			for i := range ids {
				ids[i] = int64(comm.Rank()*len(ids) + i)
			}
			hdr := Header{
				Quantity: "p", Encoder: encoder, Epsilon: 1e-3,
				BlockSize: 8,
				RankDims:  [3]int{nRanks, 1, 1}, BlockDims: [3]int{2, 2, 2},
				Step: 7, Time: 2.5e-6,
			}
			if _, err := WriteCollective(comm, path, hdr, c, ids); err != nil {
				t.Error(err)
				return
			}
			var sink FrameSink
			if comm.Rank() == 0 {
				sink = func(f Frame) error {
					frame = f
					return nil
				}
			}
			if _, err := StreamCollective(comm, 3, hdr, c, ids, sink); err != nil {
				t.Error(err)
			}
		})
		fileBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if frame.Name != "p_step000007.mpcf" || frame.Step != 7 || frame.Quantity != "p" {
			t.Fatalf("%s: frame identity wrong: %+v", encoder, frame)
		}
		if !bytes.Equal(frame.Data, fileBytes) {
			t.Fatalf("%s: streamed frame (%d bytes) differs from collective file (%d bytes)",
				encoder, len(frame.Data), len(fileBytes))
		}
		// The frame must decode through the same path as the file.
		hdr, payloads, err := Decode(frame.Data)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Step != 7 || len(payloads) != nRanks {
			t.Fatalf("%s: decoded frame header wrong: %+v", encoder, hdr)
		}
		for r, c := range payloads {
			if _, err := c.Decompress(); err != nil {
				t.Fatalf("%s: rank %d decompress: %v", encoder, r, err)
			}
		}
	}
}

// TestStreamChunking forces multi-chunk payloads through a tiny chunk size
// budget by streaming a payload larger than streamChunkSize and checks the
// reassembly byte-for-byte.
func TestStreamChunking(t *testing.T) {
	const nRanks = 2
	world := mpi.NewWorld(nRanks)
	var frame Frame
	world.Run(func(comm *mpi.Comm) {
		// One artificial stream well past streamChunkSize so rank 1 sends
		// several TagDump parts.
		big := make([]byte, streamChunkSize*3+12345)
		for i := range big {
			big[i] = byte(i * (comm.Rank() + 3))
		}
		c := &compress.Compressed{N: 8, Blocks: 0, Quantity: "p", Encoder: "rle", Streams: [][]byte{big}}
		hdr := Header{Quantity: "p", Encoder: "rle", BlockSize: 8,
			RankDims: [3]int{nRanks, 1, 1}, BlockDims: [3]int{1, 1, 1}}
		var sink FrameSink
		if comm.Rank() == 0 {
			sink = func(f Frame) error {
				frame = f
				return nil
			}
		}
		if _, err := StreamCollective(comm, 0, hdr, c, nil, sink); err != nil {
			t.Error(err)
		}
	})
	hdr, payloads, err := Decode(frame.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != nRanks {
		t.Fatalf("decoded %d ranks, want %d", len(payloads), nRanks)
	}
	for r, c := range payloads {
		want := make([]byte, streamChunkSize*3+12345)
		for i := range want {
			want[i] = byte(i * (r + 3))
		}
		if len(c.Streams) != 1 || !bytes.Equal(c.Streams[0], want) {
			t.Fatalf("rank %d payload reassembled wrong", r)
		}
	}
	_ = hdr
}
