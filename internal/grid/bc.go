package grid

import "cubism/internal/physics"

// BCKind selects the physical boundary condition applied to a domain face.
type BCKind int

// Supported boundary conditions.
const (
	// Absorbing extrapolates the interior state with zero gradient
	// (non-reflecting outflow); the default for open cloud simulations.
	Absorbing BCKind = iota
	// Reflecting mirrors the interior state and flips the normal momentum:
	// the solid wall of the paper's cloud-collapse setup.
	Reflecting
	// Periodic wraps around to the opposite side of the domain.
	Periodic
)

// String implements fmt.Stringer.
func (k BCKind) String() string {
	return [...]string{"absorbing", "reflecting", "periodic"}[k]
}

// BC assigns a boundary condition to each of the six domain faces.
type BC [6]BCKind

// DefaultBC is all-absorbing.
func DefaultBC() BC { return BC{} }

// WallBC returns absorbing conditions everywhere except a reflecting solid
// wall on the given face.
func WallBC(wall Face) BC {
	var bc BC
	bc[wall] = Reflecting
	return bc
}

// PeriodicBC returns fully periodic conditions.
func PeriodicBC() BC {
	return BC{Periodic, Periodic, Periodic, Periodic, Periodic, Periodic}
}

// ghost resolves quantity q of cell (ix,iy,iz) where exactly one coordinate
// lies outside the global domain [0,CellsX) x [0,CellsY) x [0,CellsZ)
// through the physical boundary condition of the crossed face. Inter-rank
// ghosts never reach here: the Lab resolves owned neighbors directly and
// remote ones through the per-block halo slabs. The periodic branch reads
// through g.Cell and therefore requires the wrapped cell to be owned — the
// Lab routes periodic wraps through the block topology instead, so on
// partial grids this branch is never taken.
func (g *Grid) ghost(bc BC, ix, iy, iz, q int) float32 {
	f, _ := g.outFace(ix, iy, iz)
	switch bc[f] {
	case Periodic:
		nx, ny, nz := g.CellsX(), g.CellsY(), g.CellsZ()
		return g.Cell((ix+nx)%nx, (iy+ny)%ny, (iz+nz)%nz, q)
	case Reflecting:
		mx, my, mz := mirror(ix, g.CellsX()), mirror(iy, g.CellsY()), mirror(iz, g.CellsZ())
		v := g.Cell(mx, my, mz, q)
		// Flip the momentum component normal to the face.
		if q == physics.QU+f.Axis() {
			v = -v
		}
		return v
	default: // Absorbing: clamp to the nearest interior cell.
		cx, cy, cz := clamp(ix, g.CellsX()), clamp(iy, g.CellsY()), clamp(iz, g.CellsZ())
		return g.Cell(cx, cy, cz, q)
	}
}

// outFace identifies which domain face the out-of-range coordinate crosses
// and how deep beyond it the cell lies (1-based).
func (g *Grid) outFace(ix, iy, iz int) (Face, int) {
	switch {
	case ix < 0:
		return XLo, -ix
	case ix >= g.CellsX():
		return XHi, ix - g.CellsX() + 1
	case iy < 0:
		return YLo, -iy
	case iy >= g.CellsY():
		return YHi, iy - g.CellsY() + 1
	case iz < 0:
		return ZLo, -iz
	default:
		return ZHi, iz - g.CellsZ() + 1
	}
}

// mirror reflects an out-of-range coordinate about the domain face:
// -1 -> 0, -2 -> 1, n -> n-1, n+1 -> n-2.
func mirror(i, n int) int {
	if i < 0 {
		return -i - 1
	}
	if i >= n {
		return 2*n - 1 - i
	}
	return i
}

// clamp limits a coordinate to [0, n).
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
