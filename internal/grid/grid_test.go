package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cubism/internal/physics"
)

func fill(g *Grid, f func(ix, iy, iz, q int) float32) {
	for _, b := range g.Blocks {
		n := b.N
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					for q := 0; q < NQ; q++ {
						b.Set(ix, iy, iz, q, f(b.X*n+ix, b.Y*n+iy, b.Z*n+iz, q))
					}
				}
			}
		}
	}
}

// coordValue encodes global coordinates so ghost tests can identify exactly
// which cell a value came from.
func coordValue(ix, iy, iz, q int) float32 {
	return float32(((ix*1000+iy)*1000+iz)*10 + q)
}

func TestBlockIndexing(t *testing.T) {
	g := New(Desc{N: 8, NBX: 2, NBY: 3, NBZ: 1, H: 0.1})
	if len(g.Blocks) != 6 {
		t.Fatalf("blocks = %d, want 6", len(g.Blocks))
	}
	fill(g, coordValue)
	// Cell accessor agrees with block accessor at random positions.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ix, iy, iz := rng.Intn(16), rng.Intn(24), rng.Intn(8)
		q := rng.Intn(NQ)
		if got := g.Cell(ix, iy, iz, q); got != coordValue(ix, iy, iz, q) {
			t.Fatalf("Cell(%d,%d,%d,%d) = %v", ix, iy, iz, q, got)
		}
	}
}

func TestBlocksCoverDomainOnce(t *testing.T) {
	g := New(Desc{N: 8, NBX: 4, NBY: 4, NBZ: 4, H: 0.1})
	seen := map[[3]int]bool{}
	for _, b := range g.Blocks {
		key := [3]int{b.X, b.Y, b.Z}
		if seen[key] {
			t.Fatalf("block %v appears twice", key)
		}
		seen[key] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d blocks, want 64", len(seen))
	}
}

func TestLabInterior(t *testing.T) {
	g := New(Desc{N: 8, NBX: 2, NBY: 2, NBZ: 2, H: 0.1})
	fill(g, coordValue)
	lab := NewLab(8)
	b := g.BlockAt(1, 0, 1)
	lab.Load(g, DefaultBC(), b)
	for iz := 0; iz < 8; iz++ {
		for iy := 0; iy < 8; iy++ {
			for ix := 0; ix < 8; ix++ {
				for q := 0; q < NQ; q++ {
					want := coordValue(8+ix, iy, 8+iz, q)
					if got := lab.Get(ix, iy, iz, q); got != want {
						t.Fatalf("interior (%d,%d,%d,%d) = %v, want %v", ix, iy, iz, q, got, want)
					}
				}
			}
		}
	}
}

func TestLabGhostsFromNeighborBlocks(t *testing.T) {
	g := New(Desc{N: 8, NBX: 2, NBY: 1, NBZ: 1, H: 0.1})
	fill(g, coordValue)
	lab := NewLab(8)
	lab.Load(g, DefaultBC(), g.BlockAt(0, 0, 0))
	// x-high ghosts come from the neighboring block.
	for d := 0; d < StencilWidth; d++ {
		want := coordValue(8+d, 3, 4, 2)
		if got := lab.Get(8+d, 3, 4, 2); got != want {
			t.Fatalf("ghost x+%d = %v, want %v", d, got, want)
		}
	}
}

func TestAbsorbingGhosts(t *testing.T) {
	g := New(Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.1})
	fill(g, coordValue)
	lab := NewLab(8)
	lab.Load(g, DefaultBC(), g.Blocks[0])
	// Beyond the x-low face: clamped to cell 0.
	for d := 1; d <= StencilWidth; d++ {
		want := coordValue(0, 5, 6, 1)
		if got := lab.Get(-d, 5, 6, 1); got != want {
			t.Fatalf("absorbing ghost -%d = %v, want %v", d, got, want)
		}
	}
}

func TestPeriodicGhosts(t *testing.T) {
	g := New(Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.1})
	fill(g, coordValue)
	lab := NewLab(8)
	lab.Load(g, PeriodicBC(), g.Blocks[0])
	if got, want := lab.Get(-1, 2, 3, 0), coordValue(7, 2, 3, 0); got != want {
		t.Fatalf("periodic ghost x=-1 = %v, want %v", got, want)
	}
	if got, want := lab.Get(9, 2, 3, 0), coordValue(1, 2, 3, 0); got != want {
		t.Fatalf("periodic ghost x=9 = %v, want %v", got, want)
	}
}

func TestReflectingGhostsFlipNormalMomentum(t *testing.T) {
	g := New(Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.1})
	fill(g, coordValue)
	lab := NewLab(8)
	lab.Load(g, WallBC(ZLo), g.Blocks[0])
	// z-low ghost mirrors cell (x, y, d-1) with flipped w-momentum.
	for d := 1; d <= StencilWidth; d++ {
		if got, want := lab.Get(2, 3, -d, physics.QW), -coordValue(2, 3, d-1, physics.QW); got != want {
			t.Fatalf("wall ghost w at -%d = %v, want %v", d, got, want)
		}
		if got, want := lab.Get(2, 3, -d, physics.QR), coordValue(2, 3, d-1, physics.QR); got != want {
			t.Fatalf("wall ghost rho at -%d = %v, want %v", d, got, want)
		}
		// Tangential momentum is not flipped.
		if got, want := lab.Get(2, 3, -d, physics.QU), coordValue(2, 3, d-1, physics.QU); got != want {
			t.Fatalf("wall ghost u at -%d = %v, want %v", d, got, want)
		}
	}
}

func TestPackFaceHaloRoundTrip(t *testing.T) {
	// Two partial grids splitting one 2-block global box: packing a block
	// face of one and installing it as the neighbor block's halo on the
	// other must reproduce direct neighbor access in the lab.
	desc := Desc{N: 8, NBX: 2, NBY: 1, NBZ: 1, H: 0.1}
	left := NewPartial(desc, nil, [][3]int{{0, 0, 0}})
	right := NewPartial(desc, nil, [][3]int{{1, 0, 0}})
	fill(left, coordValue)
	fill(right, coordValue)

	// The right rank receives the left block's x-high face as the x-low
	// halo of its own block.
	payload := left.Blocks[0].PackFace(XHi, nil)
	right.Blocks[0].SetHalo(XLo, payload)
	lab := NewLab(8)
	lab.Load(right, DefaultBC(), right.Blocks[0])
	for d := 1; d <= StencilWidth; d++ {
		for iy := 0; iy < 8; iy++ {
			for q := 0; q < NQ; q++ {
				want := coordValue(8-d, iy, 5, q)
				if got := lab.Get(-d, iy, 5, q); got != want {
					t.Fatalf("halo ghost (-%d,%d) q=%d = %v, want %v", d, iy, q, got, want)
				}
			}
		}
	}
}

func TestHaloSizes(t *testing.T) {
	g := New(Desc{N: 8, NBX: 2, NBY: 3, NBZ: 4, H: 0.1})
	// Blocks are cubic, so every face slab has the same size.
	for f := XLo; f <= ZHi; f++ {
		if got, want := g.Blocks[0].HaloSize(), StencilWidth*8*8*NQ; got != want {
			t.Errorf("HaloSize() for face %v = %d, want %d", f, got, want)
		}
	}
}

func TestFaceProperties(t *testing.T) {
	if XLo.Axis() != 0 || YHi.Axis() != 1 || ZLo.Axis() != 2 {
		t.Error("face axes wrong")
	}
	if XLo.IsHigh() || !XHi.IsHigh() {
		t.Error("face side wrong")
	}
}

func TestCellCenter(t *testing.T) {
	d := Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.125, Origin: [3]float64{1, 2, 3}}
	x, y, z := d.CellCenter(0, 0, 0)
	if math.Abs(x-1.0625) > 1e-15 || math.Abs(y-2.0625) > 1e-15 || math.Abs(z-3.0625) > 1e-15 {
		t.Errorf("CellCenter = %v %v %v", x, y, z)
	}
}

func TestMirrorClampProperties(t *testing.T) {
	f := func(raw int) bool {
		// mirror/clamp are defined on the ghost range of the WENO stencil:
		// [-StencilWidth, n+StencilWidth).
		n := 16
		span := n + 2*StencilWidth
		i := ((raw%span)+span)%span - StencilWidth
		m := mirror(i, n)
		c := clamp(i, n)
		return m >= 0 && m < n && c >= 0 && c < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Exact values.
	if mirror(-1, 8) != 0 || mirror(-3, 8) != 2 || mirror(8, 8) != 7 || mirror(10, 8) != 5 {
		t.Error("mirror values wrong")
	}
}
