// Package grid implements the block-structured uniform-resolution grid of
// CUBISM-MPCF (paper §5, Figure 2).
//
// Computational elements are grouped into 3D blocks of contiguous memory in
// AoS format (one cell = NQ consecutive float32 values), and the blocks are
// reindexed with a space-filling curve. A rank owns a box of NBX x NBY x NBZ
// blocks of N³ cells each; ghost information needed by the WENO stencil is
// assembled per block into a Lab scratch structure from the surrounding
// blocks, the physical boundary conditions, or the halo slabs received from
// adjacent ranks.
package grid

import (
	"fmt"

	"cubism/internal/physics"
	"cubism/internal/sfc"
)

// NQ re-exports the number of flow quantities per cell.
const NQ = physics.NQ

// StencilWidth is the one-sided ghost width required by the fifth-order
// WENO reconstruction (3 cells).
const StencilWidth = 3

// Desc describes the geometry of a rank-local grid.
type Desc struct {
	N             int        // cells per dimension per block (32 in production)
	NBX, NBY, NBZ int        // blocks per dimension
	H             float64    // uniform cell spacing
	Origin        [3]float64 // physical coordinates of the low corner
}

// CellsX returns the rank-local cell count in x.
func (d Desc) CellsX() int { return d.N * d.NBX }

// CellsY returns the rank-local cell count in y.
func (d Desc) CellsY() int { return d.N * d.NBY }

// CellsZ returns the rank-local cell count in z.
func (d Desc) CellsZ() int { return d.N * d.NBZ }

// Cells returns the total rank-local cell count.
func (d Desc) Cells() int { return d.CellsX() * d.CellsY() * d.CellsZ() }

// Blocks returns the total rank-local block count.
func (d Desc) Blocks() int { return d.NBX * d.NBY * d.NBZ }

// CellCenter returns the physical coordinates of the center of global
// rank-local cell (ix,iy,iz).
func (d Desc) CellCenter(ix, iy, iz int) (x, y, z float64) {
	x = d.Origin[0] + (float64(ix)+0.5)*d.H
	y = d.Origin[1] + (float64(iy)+0.5)*d.H
	z = d.Origin[2] + (float64(iz)+0.5)*d.H
	return
}

// Block is one N³ tile of cells stored as a single AoS allocation.
// Data layout: ((iz*N+iy)*N+ix)*NQ + q.
type Block struct {
	X, Y, Z int    // block coordinates within the rank
	Index   uint64 // position along the space-filling curve
	N       int    // cells per dimension
	Data    []float32
}

// At returns a pointer to the NQ quantities of cell (ix,iy,iz).
func (b *Block) At(ix, iy, iz int) []float32 {
	off := ((iz*b.N+iy)*b.N + ix) * NQ
	return b.Data[off : off+NQ : off+NQ]
}

// Get returns quantity q of cell (ix,iy,iz).
func (b *Block) Get(ix, iy, iz, q int) float32 {
	return b.Data[((iz*b.N+iy)*b.N+ix)*NQ+q]
}

// Set assigns quantity q of cell (ix,iy,iz).
func (b *Block) Set(ix, iy, iz, q int, v float32) {
	b.Data[((iz*b.N+iy)*b.N+ix)*NQ+q] = v
}

// Grid is a rank-local collection of blocks in space-filling-curve order.
type Grid struct {
	Desc
	Curve  sfc.Curve
	Blocks []*Block          // in curve order
	byPos  map[[3]int]*Block // block coordinate lookup
	halos  [6][]float32      // per-face ghost slabs filled by the cluster layer
}

// Face identifies one of the six domain faces.
type Face int

// Face constants; the integer value is direction*2 + (0 for low, 1 for high).
const (
	XLo Face = iota
	XHi
	YLo
	YHi
	ZLo
	ZHi
)

// Axis returns 0, 1 or 2 for x, y, z.
func (f Face) Axis() int { return int(f) / 2 }

// IsHigh reports whether the face is on the high side of its axis.
func (f Face) IsHigh() bool { return int(f)%2 == 1 }

// String implements fmt.Stringer.
func (f Face) String() string {
	return [...]string{"x-", "x+", "y-", "y+", "z-", "z+"}[f]
}

// New allocates a grid of NBX x NBY x NBZ blocks of N³ cells, ordered along
// the space-filling curve best suited to the box shape.
func New(d Desc) *Grid {
	return NewWithCurve(d, sfc.ForBox(d.NBX, d.NBY, d.NBZ))
}

// NewWithCurve allocates a grid with an explicit block ordering, used by
// the space-filling-curve ablation benchmarks. The curve must cover the
// block box (power-of-two cube curves cover any smaller box).
func NewWithCurve(d Desc, curve sfc.Curve) *Grid {
	if d.N <= 0 || d.NBX <= 0 || d.NBY <= 0 || d.NBZ <= 0 {
		panic(fmt.Sprintf("grid: invalid descriptor %+v", d))
	}
	if d.N < 2*StencilWidth {
		panic(fmt.Sprintf("grid: block size %d smaller than twice the stencil width", d.N))
	}
	g := &Grid{
		Desc:  d,
		Curve: curve,
		byPos: make(map[[3]int]*Block, d.Blocks()),
	}
	order := sfc.Enumerate(g.Curve, d.NBX, d.NBY, d.NBZ)
	// One backing allocation for all blocks keeps them contiguous in curve
	// order, which is the locality the SFC reindexing is after.
	backing := make([]float32, d.Blocks()*d.N*d.N*d.N*NQ)
	per := d.N * d.N * d.N * NQ
	g.Blocks = make([]*Block, 0, d.Blocks())
	for i, c := range order {
		b := &Block{
			X: c[0], Y: c[1], Z: c[2],
			Index: g.Curve.Index(c[0], c[1], c[2]),
			N:     d.N,
			Data:  backing[i*per : (i+1)*per : (i+1)*per],
		}
		g.Blocks = append(g.Blocks, b)
		g.byPos[c] = b
	}
	return g
}

// BlockAt returns the block with the given block coordinates, or nil when
// the coordinates lie outside the rank.
func (g *Grid) BlockAt(bx, by, bz int) *Block {
	return g.byPos[[3]int{bx, by, bz}]
}

// Cell returns quantity q at rank-local global cell coordinates, which must
// be in range.
func (g *Grid) Cell(ix, iy, iz, q int) float32 {
	b := g.byPos[[3]int{ix / g.N, iy / g.N, iz / g.N}]
	return b.Get(ix%g.N, iy%g.N, iz%g.N, q)
}

// SetCell assigns quantity q at rank-local global cell coordinates.
func (g *Grid) SetCell(ix, iy, iz, q int, v float32) {
	b := g.byPos[[3]int{ix / g.N, iy / g.N, iz / g.N}]
	b.Set(ix%g.N, iy%g.N, iz%g.N, q, v)
}

// haloDims returns the cell dimensions (du, dv) of the plane spanned by the
// two axes tangent to face f, in fixed (lower-axis, higher-axis) order.
func (g *Grid) haloDims(f Face) (du, dv int) {
	switch f.Axis() {
	case 0:
		return g.CellsY(), g.CellsZ()
	case 1:
		return g.CellsX(), g.CellsZ()
	default:
		return g.CellsX(), g.CellsY()
	}
}

// HaloSize returns the float32 count of the ghost slab of face f:
// StencilWidth layers of the full tangent plane, NQ quantities per cell.
func (g *Grid) HaloSize(f Face) int {
	du, dv := g.haloDims(f)
	return StencilWidth * du * dv * NQ
}

// SetHalo installs a received ghost slab for face f. Layout: depth-major,
// then v, then u, then quantity: ((d*dv+v)*du+u)*NQ+q, where depth d=0 is
// the layer adjacent to the domain.
func (g *Grid) SetHalo(f Face, data []float32) {
	if len(data) != g.HaloSize(f) {
		panic(fmt.Sprintf("grid: halo size mismatch for face %v: got %d want %d", f, len(data), g.HaloSize(f)))
	}
	g.halos[f] = data
}

// Halo returns the installed ghost slab for face f, or nil.
func (g *Grid) Halo(f Face) []float32 { return g.halos[f] }

// ClearHalos drops all installed ghost slabs (single-rank runs use boundary
// conditions instead).
func (g *Grid) ClearHalos() {
	for i := range g.halos {
		g.halos[i] = nil
	}
}

// PackFace extracts the StencilWidth outermost interior layers adjacent to
// face f in the layout expected by SetHalo on the neighboring rank (depth
// d=0 is the layer closest to the face). It appends to dst and returns it.
func (g *Grid) PackFace(f Face, dst []float32) []float32 {
	du, dv := g.haloDims(f)
	need := StencilWidth * du * dv * NQ
	base := len(dst)
	dst = append(dst, make([]float32, need)...)
	out := dst[base:]
	nx, ny, nz := g.CellsX(), g.CellsY(), g.CellsZ()
	for d := 0; d < StencilWidth; d++ {
		for v := 0; v < dv; v++ {
			for u := 0; u < du; u++ {
				var ix, iy, iz int
				switch f {
				case XLo:
					ix, iy, iz = d, u, v
				case XHi:
					ix, iy, iz = nx-1-d, u, v
				case YLo:
					ix, iy, iz = u, d, v
				case YHi:
					ix, iy, iz = u, ny-1-d, v
				case ZLo:
					ix, iy, iz = u, v, d
				case ZHi:
					ix, iy, iz = u, v, nz-1-d
				}
				b := g.byPos[[3]int{ix / g.N, iy / g.N, iz / g.N}]
				cell := b.At(ix%g.N, iy%g.N, iz%g.N)
				off := ((d*dv+v)*du + u) * NQ
				copy(out[off:off+NQ], cell)
			}
		}
	}
	return dst
}

// haloAt reads quantity q of ghost cell (ix,iy,iz) (one coordinate out of
// range) from the installed slab of the corresponding face. It panics if no
// slab is installed; callers guard with Halo(f) != nil.
func (g *Grid) haloAt(f Face, ix, iy, iz, q int) float32 {
	du, dv := g.haloDims(f)
	var d, u, v int
	switch f {
	case XLo:
		d, u, v = -ix-1, iy, iz
	case XHi:
		d, u, v = ix-g.CellsX(), iy, iz
	case YLo:
		d, u, v = -iy-1, ix, iz
	case YHi:
		d, u, v = iy-g.CellsY(), ix, iz
	case ZLo:
		d, u, v = -iz-1, ix, iy
	case ZHi:
		d, u, v = iz-g.CellsZ(), ix, iy
	}
	return g.halos[f][((d*dv+v)*du+u)*NQ+q]
}
