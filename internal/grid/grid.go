// Package grid implements the block-structured uniform-resolution grid of
// CUBISM-MPCF (paper §5, Figure 2).
//
// Computational elements are grouped into 3D blocks of contiguous memory in
// AoS format (one cell = NQ consecutive float32 values), and the blocks are
// reindexed with a space-filling curve. The descriptor spans the global box
// of NBX x NBY x NBZ blocks of N³ cells each; a grid holds either the whole
// box (New, the single-rank case) or an arbitrary owned subset of it
// (NewPartial, the cluster layer's share under a layout). Ghost information
// needed by the WENO stencil is assembled per block into a Lab scratch
// structure from locally owned neighbor blocks, the physical boundary
// conditions, or the per-block halo slabs received from the owning ranks.
package grid

import (
	"fmt"

	"cubism/internal/physics"
	"cubism/internal/sfc"
)

// NQ re-exports the number of flow quantities per cell.
const NQ = physics.NQ

// StencilWidth is the one-sided ghost width required by the fifth-order
// WENO reconstruction (3 cells).
const StencilWidth = 3

// Desc describes the geometry of the block box a grid indexes into. For a
// full-box grid (New) every block of the box is present; for a partial grid
// (NewPartial) the box is the global domain and the grid holds only the
// owned subset.
type Desc struct {
	N             int        // cells per dimension per block (32 in production)
	NBX, NBY, NBZ int        // blocks per dimension of the (global) box
	H             float64    // uniform cell spacing
	Origin        [3]float64 // physical coordinates of the box's low corner
}

// CellsX returns the box cell count in x.
func (d Desc) CellsX() int { return d.N * d.NBX }

// CellsY returns the box cell count in y.
func (d Desc) CellsY() int { return d.N * d.NBY }

// CellsZ returns the box cell count in z.
func (d Desc) CellsZ() int { return d.N * d.NBZ }

// Cells returns the total box cell count. On a partial grid this is the
// global count; Grid.Cells shadows it with the owned count.
func (d Desc) Cells() int { return d.CellsX() * d.CellsY() * d.CellsZ() }

// Blocks returns the total box block count.
func (d Desc) Blocks() int { return d.NBX * d.NBY * d.NBZ }

// CellCenter returns the physical coordinates of the center of box-global
// cell (ix,iy,iz).
func (d Desc) CellCenter(ix, iy, iz int) (x, y, z float64) {
	x = d.Origin[0] + (float64(ix)+0.5)*d.H
	y = d.Origin[1] + (float64(iy)+0.5)*d.H
	z = d.Origin[2] + (float64(iz)+0.5)*d.H
	return
}

// Block is one N³ tile of cells stored as a single AoS allocation.
// Data layout: ((iz*N+iy)*N+ix)*NQ + q.
type Block struct {
	X, Y, Z int    // block coordinates within the (global) box
	Index   uint64 // position along the space-filling curve
	N       int    // cells per dimension
	Data    []float32

	// halos are the per-face ghost slabs installed by the cluster layer
	// when the face neighbor is owned by another rank; nil faces resolve
	// through locally owned blocks or the boundary conditions.
	halos [6][]float32
}

// At returns a pointer to the NQ quantities of cell (ix,iy,iz).
func (b *Block) At(ix, iy, iz int) []float32 {
	off := ((iz*b.N+iy)*b.N + ix) * NQ
	return b.Data[off : off+NQ : off+NQ]
}

// Get returns quantity q of cell (ix,iy,iz).
func (b *Block) Get(ix, iy, iz, q int) float32 {
	return b.Data[((iz*b.N+iy)*b.N+ix)*NQ+q]
}

// Set assigns quantity q of cell (ix,iy,iz).
func (b *Block) Set(ix, iy, iz, q int, v float32) {
	b.Data[((iz*b.N+iy)*b.N+ix)*NQ+q] = v
}

// Grid is a rank-local collection of blocks in space-filling-curve (or
// layout-assigned) order. A full-box grid holds every block of its Desc; a
// partial grid holds the owned subset of a larger global box.
type Grid struct {
	Desc
	Curve  sfc.Curve
	Blocks []*Block          // in curve (or layout) order
	byPos  map[[3]int]*Block // box-global block coordinate lookup
}

// Face identifies one of the six domain faces.
type Face int

// Face constants; the integer value is direction*2 + (0 for low, 1 for high).
const (
	XLo Face = iota
	XHi
	YLo
	YHi
	ZLo
	ZHi
)

// Axis returns 0, 1 or 2 for x, y, z.
func (f Face) Axis() int { return int(f) / 2 }

// IsHigh reports whether the face is on the high side of its axis.
func (f Face) IsHigh() bool { return int(f)%2 == 1 }

// String implements fmt.Stringer.
func (f Face) String() string {
	return [...]string{"x-", "x+", "y-", "y+", "z-", "z+"}[f]
}

// New allocates a grid of NBX x NBY x NBZ blocks of N³ cells, ordered along
// the space-filling curve best suited to the box shape.
func New(d Desc) *Grid {
	return NewWithCurve(d, sfc.ForBox(d.NBX, d.NBY, d.NBZ))
}

// NewWithCurve allocates a grid with an explicit block ordering, used by
// the space-filling-curve ablation benchmarks. The curve must cover the
// block box (power-of-two cube curves cover any smaller box).
func NewWithCurve(d Desc, curve sfc.Curve) *Grid {
	if d.N <= 0 || d.NBX <= 0 || d.NBY <= 0 || d.NBZ <= 0 {
		panic(fmt.Sprintf("grid: invalid descriptor %+v", d))
	}
	if d.N < 2*StencilWidth {
		panic(fmt.Sprintf("grid: block size %d smaller than twice the stencil width", d.N))
	}
	g := &Grid{
		Desc:  d,
		Curve: curve,
		byPos: make(map[[3]int]*Block, d.Blocks()),
	}
	order := sfc.Enumerate(g.Curve, d.NBX, d.NBY, d.NBZ)
	// One backing allocation for all blocks keeps them contiguous in curve
	// order, which is the locality the SFC reindexing is after.
	backing := make([]float32, d.Blocks()*d.N*d.N*d.N*NQ)
	per := d.N * d.N * d.N * NQ
	g.Blocks = make([]*Block, 0, d.Blocks())
	for i, c := range order {
		b := &Block{
			X: c[0], Y: c[1], Z: c[2],
			Index: g.Curve.Index(c[0], c[1], c[2]),
			N:     d.N,
			Data:  backing[i*per : (i+1)*per : (i+1)*per],
		}
		g.Blocks = append(g.Blocks, b)
		g.byPos[c] = b
	}
	return g
}

// NewPartial allocates a grid holding only the listed blocks of the global
// box described by d, in the given order (the layout's per-rank block
// enumeration). One backing allocation keeps the owned blocks contiguous in
// that order; Block.Index is the canonical row-major position in the box.
func NewPartial(d Desc, curve sfc.Curve, coords [][3]int) *Grid {
	if d.N <= 0 || d.NBX <= 0 || d.NBY <= 0 || d.NBZ <= 0 {
		panic(fmt.Sprintf("grid: invalid descriptor %+v", d))
	}
	if d.N < 2*StencilWidth {
		panic(fmt.Sprintf("grid: block size %d smaller than twice the stencil width", d.N))
	}
	g := &Grid{
		Desc:  d,
		Curve: curve,
		byPos: make(map[[3]int]*Block, len(coords)),
	}
	backing := make([]float32, len(coords)*d.N*d.N*d.N*NQ)
	per := d.N * d.N * d.N * NQ
	g.Blocks = make([]*Block, 0, len(coords))
	for i, c := range coords {
		if c[0] < 0 || c[0] >= d.NBX || c[1] < 0 || c[1] >= d.NBY || c[2] < 0 || c[2] >= d.NBZ {
			panic(fmt.Sprintf("grid: block %v outside box %dx%dx%d", c, d.NBX, d.NBY, d.NBZ))
		}
		if g.byPos[c] != nil {
			panic(fmt.Sprintf("grid: block %v listed twice", c))
		}
		b := &Block{
			X: c[0], Y: c[1], Z: c[2],
			Index: uint64((c[2]*d.NBY+c[1])*d.NBX + c[0]),
			N:     d.N,
			Data:  backing[i*per : (i+1)*per : (i+1)*per],
		}
		g.Blocks = append(g.Blocks, b)
		g.byPos[c] = b
	}
	return g
}

// Cells returns the cell count of the owned blocks, shadowing the promoted
// Desc.Cells (the full box) — per-rank work accounting wants the owned
// share. Use g.Desc.Cells() for the global count.
func (g *Grid) Cells() int { return len(g.Blocks) * g.N * g.N * g.N }

// BlockAt returns the block with the given box-global block coordinates, or
// nil when the block is not owned by this grid.
func (g *Grid) BlockAt(bx, by, bz int) *Block {
	return g.byPos[[3]int{bx, by, bz}]
}

// Cell returns quantity q at box-global cell coordinates, which must lie in
// an owned block.
func (g *Grid) Cell(ix, iy, iz, q int) float32 {
	b := g.byPos[[3]int{ix / g.N, iy / g.N, iz / g.N}]
	return b.Get(ix%g.N, iy%g.N, iz%g.N, q)
}

// SetCell assigns quantity q at box-global cell coordinates.
func (g *Grid) SetCell(ix, iy, iz, q int, v float32) {
	b := g.byPos[[3]int{ix / g.N, iy / g.N, iz / g.N}]
	b.Set(ix%g.N, iy%g.N, iz%g.N, q, v)
}

// ClearHalos drops every installed ghost slab on every owned block (faces
// resolved locally or through boundary conditions use none).
func (g *Grid) ClearHalos() {
	for _, b := range g.Blocks {
		b.ClearHalos()
	}
}

// HaloSize returns the float32 count of one face ghost slab of the block:
// StencilWidth layers of the N x N tangent plane, NQ quantities per cell.
// All six faces of a cubic block are the same size.
func (b *Block) HaloSize() int {
	return StencilWidth * b.N * b.N * NQ
}

// SetHalo installs a received ghost slab for face f of this block. Layout:
// depth-major, then v (higher tangent axis), then u (lower tangent axis),
// then quantity: ((d*N+v)*N+u)*NQ+q, where depth d=0 is the layer adjacent
// to the block.
func (b *Block) SetHalo(f Face, data []float32) {
	if len(data) != b.HaloSize() {
		panic(fmt.Sprintf("grid: halo size mismatch for face %v: got %d want %d", f, len(data), b.HaloSize()))
	}
	b.halos[f] = data
}

// Halo returns the installed ghost slab for face f of this block, or nil.
func (b *Block) Halo(f Face) []float32 { return b.halos[f] }

// ClearHalos drops the block's installed ghost slabs.
func (b *Block) ClearHalos() {
	for i := range b.halos {
		b.halos[i] = nil
	}
}

// PackFace extracts the block's StencilWidth outermost layers adjacent to
// face f in the layout expected by SetHalo on the neighboring block (depth
// d=0 is the layer closest to the shared face). It appends to dst and
// returns it.
func (b *Block) PackFace(f Face, dst []float32) []float32 {
	n := b.N
	need := b.HaloSize()
	base := len(dst)
	dst = append(dst, make([]float32, need)...)
	out := dst[base:]
	for d := 0; d < StencilWidth; d++ {
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				var ix, iy, iz int
				switch f {
				case XLo:
					ix, iy, iz = d, u, v
				case XHi:
					ix, iy, iz = n-1-d, u, v
				case YLo:
					ix, iy, iz = u, d, v
				case YHi:
					ix, iy, iz = u, n-1-d, v
				case ZLo:
					ix, iy, iz = u, v, d
				case ZHi:
					ix, iy, iz = u, v, n-1-d
				}
				cell := b.At(ix, iy, iz)
				off := ((d*n+v)*n + u) * NQ
				copy(out[off:off+NQ], cell)
			}
		}
	}
	return dst
}

// haloCell returns the NQ quantities of ghost cell (ix,iy,iz) in block-local
// stencil coordinates (exactly one coordinate outside [0,N)) from the
// installed slab of the crossed face. It panics when no slab is installed —
// a missing halo is a cluster-layer bug, never silently absorbed.
func (b *Block) haloCell(f Face, ix, iy, iz int) []float32 {
	n := b.N
	var d, u, v int
	switch f {
	case XLo:
		d, u, v = -ix-1, iy, iz
	case XHi:
		d, u, v = ix-n, iy, iz
	case YLo:
		d, u, v = -iy-1, ix, iz
	case YHi:
		d, u, v = iy-n, ix, iz
	case ZLo:
		d, u, v = -iz-1, ix, iy
	case ZHi:
		d, u, v = iz-n, ix, iy
	}
	if b.halos[f] == nil {
		panic(fmt.Sprintf("grid: block (%d,%d,%d) read face %v ghost with no halo installed", b.X, b.Y, b.Z, f))
	}
	off := ((d*n+v)*n + u) * NQ
	return b.halos[f][off : off+NQ : off+NQ]
}
