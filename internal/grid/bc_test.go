package grid

import (
	"fmt"
	"testing"

	"cubism/internal/physics"
)

// ghostCoord places a ghost cell d layers beyond the given face, at tangent
// position (u, v) in the face plane (u on the lower tangent axis).
func ghostCoord(f Face, d, u, v, n int) (ix, iy, iz int) {
	lo, hi := -d, n-1+d
	switch f {
	case XLo:
		return lo, u, v
	case XHi:
		return hi, u, v
	case YLo:
		return u, lo, v
	case YHi:
		return u, hi, v
	case ZLo:
		return u, v, lo
	default:
		return u, v, hi
	}
}

// expectedGhost reimplements the boundary-condition semantics independently
// of grid.ghost, as the oracle for the table tests below: periodic wraps,
// absorbing clamps, reflecting mirrors about the face and flips the
// momentum component normal to it.
func expectedGhost(kind BCKind, f Face, ix, iy, iz, q, n int) float32 {
	wrap := func(i int) int { return ((i % n) + n) % n }
	mir := func(i int) int {
		if i < 0 {
			return -i - 1
		}
		if i >= n {
			return 2*n - 1 - i
		}
		return i
	}
	clmp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	switch kind {
	case Periodic:
		return coordValue(wrap(ix), wrap(iy), wrap(iz), q)
	case Reflecting:
		v := coordValue(mir(ix), mir(iy), mir(iz), q)
		if q == physics.QU+f.Axis() {
			v = -v
		}
		return v
	default:
		return coordValue(clmp(ix), clmp(iy), clmp(iz), q)
	}
}

// TestGhostFaceTable exercises every (BC kind, face) pair through the full
// Lab assembly path, probing all stencil depths at tangent positions that
// include the corners and edges of each face slab.
func TestGhostFaceTable(t *testing.T) {
	const n = 8
	faces := []Face{XLo, XHi, YLo, YHi, ZLo, ZHi}
	for _, kind := range []BCKind{Absorbing, Reflecting, Periodic} {
		for _, face := range faces {
			t.Run(fmt.Sprintf("%v/%v", kind, face), func(t *testing.T) {
				g := New(Desc{N: n, NBX: 1, NBY: 1, NBZ: 1, H: 1.0 / n})
				fill(g, coordValue)
				var bc BC
				bc[face] = kind
				lab := NewLab(n)
				lab.Load(g, bc, g.Blocks[0])
				// Tangent positions: the face-slab corners (0, n-1) plus an
				// interior point, so edge-adjacent ghost layers are covered.
				for d := 1; d <= StencilWidth; d++ {
					for _, u := range []int{0, 3, n - 1} {
						for _, v := range []int{0, 5, n - 1} {
							ix, iy, iz := ghostCoord(face, d, u, v, n)
							for q := 0; q < NQ; q++ {
								want := expectedGhost(kind, face, ix, iy, iz, q, n)
								if got := lab.Get(ix, iy, iz, q); got != want {
									t.Fatalf("ghost (%d,%d,%d) q=%d depth %d: got %v, want %v",
										ix, iy, iz, q, d, got, want)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestGhostFullSweep checks grid.ghost directly over every ghost cell of
// every face (all depths, the entire tangent plane, all quantities) for
// each BC kind — the exhaustive version of the table above.
func TestGhostFullSweep(t *testing.T) {
	const n = 8
	g := New(Desc{N: n, NBX: 1, NBY: 1, NBZ: 1, H: 1.0 / n})
	fill(g, coordValue)
	faces := []Face{XLo, XHi, YLo, YHi, ZLo, ZHi}
	for _, kind := range []BCKind{Absorbing, Reflecting, Periodic} {
		bc := BC{kind, kind, kind, kind, kind, kind}
		for _, face := range faces {
			for d := 1; d <= StencilWidth; d++ {
				for u := 0; u < n; u++ {
					for v := 0; v < n; v++ {
						ix, iy, iz := ghostCoord(face, d, u, v, n)
						for q := 0; q < NQ; q++ {
							want := expectedGhost(kind, face, ix, iy, iz, q, n)
							if got := g.ghost(bc, ix, iy, iz, q); got != want {
								t.Fatalf("%v %v ghost (%d,%d,%d) q=%d: got %v, want %v",
									kind, face, ix, iy, iz, q, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestMixedBCFacesIndependent: the kind assigned to one face must not leak
// into the resolution of any other face.
func TestMixedBCFacesIndependent(t *testing.T) {
	const n = 8
	g := New(Desc{N: n, NBX: 1, NBY: 1, NBZ: 1, H: 1.0 / n})
	fill(g, coordValue)
	var bc BC
	bc[XLo] = Reflecting
	bc[YHi] = Periodic
	// Remaining faces default to Absorbing.
	perFace := map[Face]BCKind{
		XLo: Reflecting, XHi: Absorbing,
		YLo: Absorbing, YHi: Periodic,
		ZLo: Absorbing, ZHi: Absorbing,
	}
	for face, kind := range perFace {
		ix, iy, iz := ghostCoord(face, 2, 1, n-1, n)
		for q := 0; q < NQ; q++ {
			want := expectedGhost(kind, face, ix, iy, iz, q, n)
			if got := g.ghost(bc, ix, iy, iz, q); got != want {
				t.Errorf("face %v with mixed BC: ghost (%d,%d,%d) q=%d got %v, want %v",
					face, ix, iy, iz, q, got, want)
			}
		}
	}
}

// TestLabRoutesRemoteNeighborsThroughHalos: on a partial grid, the lab must
// resolve ghost cells whose neighbor block is not locally owned through the
// installed per-block halo slab — including periodic wraps, which are
// topology (not BC) on partial grids — while physical boundaries still go
// through the BC resolver and owned neighbors are read directly.
func TestLabRoutesRemoteNeighborsThroughHalos(t *testing.T) {
	const n = 8
	desc := Desc{N: n, NBX: 2, NBY: 1, NBZ: 1, H: 1.0 / (2 * n)}
	g := NewPartial(desc, nil, [][3]int{{0, 0, 0}})
	fill(g, coordValue)
	b := g.Blocks[0]
	halo := make([]float32, b.HaloSize())
	for i := range halo {
		halo[i] = float32(1e6 + i)
	}
	// Block (0,0,0) under periodic x wraps its XLo face to global block
	// (1,0,0), which this grid does not own: the lab must read the slab.
	// The XHi face reaches the same remote block directly and needs one too.
	b.SetHalo(XLo, halo)
	hiHalo := make([]float32, b.HaloSize())
	for i := range hiHalo {
		hiHalo[i] = float32(2e6 + i)
	}
	b.SetHalo(XHi, hiHalo)
	bc := PeriodicBC()
	lab := NewLab(n)
	lab.Load(g, bc, b)
	// Slab layout ((d*n+v)*n+u)*NQ+q, d=0 adjacent, u=iy, v=iz for x faces.
	for q := 0; q < NQ; q++ {
		want := halo[((0*n+3)*n+2)*NQ+q]
		if got := lab.Get(-1, 2, 3, q); got != want {
			t.Errorf("halo-backed ghost q=%d: got %v, want %v", q, got, want)
		}
	}
	// y stays periodic through the block itself (NBY=1 wraps to the owned
	// block), resolved by direct topology, not the slab.
	if got, want := lab.Get(2, n, 3, 0), coordValue(2, 0, 3, 0); got != want {
		t.Errorf("periodic self-wrap: got %v, want %v", got, want)
	}

	// Under a non-periodic BC the XLo face is a physical boundary: the BC
	// resolver wins and the slab is not consulted. (XHi remains an
	// interior inter-block face and still reads its slab.)
	lab.Load(g, DefaultBC(), b)
	if got, want := lab.Get(-1, 2, 3, 0), coordValue(0, 2, 3, 0); got != want {
		t.Errorf("absorbing ghost: got %v, want %v", got, want)
	}
	if got, want := lab.Get(n, 2, 3, 0), hiHalo[((0*n+3)*n+2)*NQ]; got != want {
		t.Errorf("interior halo ghost: got %v, want %v", got, want)
	}

	// A missing slab on a topology-remote face must fail loudly rather
	// than silently fall back to a BC.
	g.ClearHalos()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("lab read of a remote neighbor with no installed halo did not panic")
			}
		}()
		lab.Load(g, bc, b)
	}()
}
