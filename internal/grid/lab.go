package grid

// Lab is the per-worker scratch structure that assembles one block together
// with its ghost cells before a stencil evaluation (the paper's node layer:
// "the assigned thread loads the block data and ghosts into a per-thread
// dedicated buffer"). It mirrors CUBISM's BlockLab.
//
// The buffer extends the N³ block by StencilWidth cells on each side. Only
// the face slabs of the extension are filled (the "cross" region); corner
// and edge regions are never read by the directional WENO sweeps.
type Lab struct {
	N    int       // block cells per dimension
	M    int       // buffer extent: N + 2*StencilWidth
	Data []float32 // AoS, ((lz*M+ly)*M+lx)*NQ + q
}

// NewLab allocates a lab for blocks of N³ cells.
func NewLab(n int) *Lab {
	m := n + 2*StencilWidth
	return &Lab{N: n, M: m, Data: make([]float32, m*m*m*NQ)}
}

// offset returns the float32 offset of stencil coordinates (ix,iy,iz) in
// [-StencilWidth, N+StencilWidth).
func (l *Lab) offset(ix, iy, iz int) int {
	lx, ly, lz := ix+StencilWidth, iy+StencilWidth, iz+StencilWidth
	return ((lz*l.M+ly)*l.M + lx) * NQ
}

// At returns the NQ quantities of cell (ix,iy,iz); coordinates may extend
// StencilWidth cells beyond the block in the face-slab (cross) region.
func (l *Lab) At(ix, iy, iz int) []float32 {
	off := l.offset(ix, iy, iz)
	return l.Data[off : off+NQ : off+NQ]
}

// Get returns quantity q of cell (ix,iy,iz).
func (l *Lab) Get(ix, iy, iz, q int) float32 {
	return l.Data[l.offset(ix, iy, iz)+q]
}

// Row returns the contiguous AoS row of cells (x0..x0+n-1, iy, iz).
func (l *Lab) Row(x0, iy, iz, n int) []float32 {
	off := l.offset(x0, iy, iz)
	return l.Data[off : off+n*NQ : off+n*NQ]
}

// Load assembles block b of grid g with its ghosts under boundary
// conditions bc. Interior data is row-copied. Each ghost cell resolves, in
// order: a periodic wrap of the global coordinate (the topology, not the
// BC fallback — so a wrapped neighbor behaves exactly like an interior
// one), then a reflecting/absorbing boundary condition when the cell lies
// beyond a non-periodic domain face (mirror and clamp always land back in
// b itself), then a locally owned block (direct copy), and finally the
// per-block halo slab installed by the cluster layer for neighbors owned
// by another rank.
func (l *Lab) Load(g *Grid, bc BC, b *Block) {
	if b.N != l.N {
		panic("grid: lab/block size mismatch")
	}
	n, sw := l.N, StencilWidth
	// Base box-global cell coordinates of the block.
	gx, gy, gz := b.X*n, b.Y*n, b.Z*n
	cx, cy, cz := g.CellsX(), g.CellsY(), g.CellsZ()

	// Interior: straight row copies.
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			src := b.Data[((iz*n+iy)*n)*NQ : ((iz*n+iy)*n+n)*NQ]
			dst := l.Row(0, iy, iz, n)
			copy(dst, src)
		}
	}

	// Face slabs of the cross region: exactly one of (ix,iy,iz) lies
	// outside [0,n), so exactly one global coordinate can leave the domain
	// — and it crosses the same face f the block-local coordinate does.
	fill := func(f Face, x0, x1, y0, y1, z0, z1 int) {
		for iz := z0; iz < z1; iz++ {
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					dst := l.At(ix, iy, iz)
					jx, jy, jz := gx+ix, gy+iy, gz+iz
					if jx < 0 || jx >= cx || jy < 0 || jy >= cy || jz < 0 || jz >= cz {
						if bc[f] != Periodic {
							// Mirror/clamp read cells of b itself.
							for q := 0; q < NQ; q++ {
								dst[q] = g.ghost(bc, jx, jy, jz, q)
							}
							continue
						}
						jx, jy, jz = (jx+cx)%cx, (jy+cy)%cy, (jz+cz)%cz
					}
					if nb := g.byPos[[3]int{jx / n, jy / n, jz / n}]; nb != nil {
						copy(dst, nb.At(jx%n, jy%n, jz%n))
					} else {
						copy(dst, b.haloCell(f, ix, iy, iz))
					}
				}
			}
		}
	}
	fill(XLo, -sw, 0, 0, n, 0, n)  // x-
	fill(XHi, n, n+sw, 0, n, 0, n) // x+
	fill(YLo, 0, n, -sw, 0, 0, n)  // y-
	fill(YHi, 0, n, n, n+sw, 0, n) // y+
	fill(ZLo, 0, n, 0, n, -sw, 0)  // z-
	fill(ZHi, 0, n, 0, n, n, n+sw) // z+
}
