package baseline

import (
	"math"
	"testing"

	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

func sodInit(x, y, z float64) physics.Prim {
	g := 1 / (1.4 - 1)
	if x < 0.5 {
		return physics.Prim{Rho: 1, P: 1, G: g, Pi: 0}
	}
	return physics.Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0}
}

// TestBaselineMatchesProduction: the naive solver implements the same
// discretization, so on the same grid it must track the production solver's
// trajectory closely (both use WENO5/HLLE/RK3; they differ only in data
// movement and ghost handling at the domain boundary).
func TestBaselineMatchesProduction(t *testing.T) {
	const n = 16
	b := New(n, n, n, 1.0/n)
	b.Init(sodInit)

	world := mpi.NewWorld(1)
	var maxDiff float64
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: n / 2,
			Extent:    1,
			BC:        grid.DefaultBC(),
			Workers:   2,
			CFL:       0.3,
			Init:      sodInit,
		})
		for s := 0; s < 5; s++ {
			dtProd := r.MaxDT()
			dtBase := b.Step()
			if math.Abs(dtProd-dtBase)/dtProd > 1e-3 {
				t.Fatalf("step %d: dt %g vs %g", s, dtProd, dtBase)
			}
			r.RKStep(dtProd)
		}
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					pb := b.Prim(x, y, z)
					c := r.G.Cell(x, y, z, physics.QR)
					if d := math.Abs(float64(c) - pb.Rho); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	})
	if maxDiff > 1e-4 {
		t.Errorf("baseline deviates from production by %g in density", maxDiff)
	}
}

func TestBaselineUniformStaysUniform(t *testing.T) {
	b := New(12, 12, 12, 1.0/12)
	b.Init(func(x, y, z float64) physics.Prim {
		return physics.Prim{Rho: 1000, P: 1e7, G: physics.Liquid.G(), Pi: physics.Liquid.P()}
	})
	for s := 0; s < 3; s++ {
		if dt := b.Step(); dt <= 0 {
			t.Fatal("non-positive dt")
		}
	}
	for z := 0; z < 12; z++ {
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				p := b.Prim(x, y, z)
				if math.Abs(p.Rho-1000)/1000 > 1e-5 {
					t.Fatalf("density drifted to %g", p.Rho)
				}
				if math.Abs(p.P-1e7)/1e7 > 1e-4 {
					t.Fatalf("pressure drifted to %g", p.P)
				}
			}
		}
	}
}

func TestBaselineCharVel(t *testing.T) {
	b := New(8, 8, 8, 1.0/8)
	b.Init(func(x, y, z float64) physics.Prim {
		return physics.Prim{Rho: 1.4, U: 3, P: 1, G: 2.5, Pi: 0}
	})
	want := 3.0 + 1.0 // |u| + c, c = sqrt(1.4*1/1.4) = 1
	if got := b.MaxCharVel(); math.Abs(got-want) > 1e-5 {
		t.Errorf("MaxCharVel = %g, want %g", got, want)
	}
}
