// Package baseline is the comparator solver: the same governing equations,
// reconstruction and flux as the production core, implemented the
// straightforward way — one global AoS array, per-cell stencil gathering
// with full index arithmetic, no blocking, no SoA data-slices, no ring
// buffers, no kernel fusion, and flux recomputation on both faces of every
// cell.
//
// It represents the "naive" row of Table 3 (every stencil operand travels
// from memory, no spatial or temporal reuse) and stands in for the
// state-of-the-art throughput reference [68] that the paper's 20X
// time-to-solution claim is measured against. The physics is identical, so
// the tests cross-validate it against the production solver; only the data
// movement differs.
package baseline

import (
	"math"

	"cubism/internal/physics"
)

const nq = physics.NQ

// Solver is a uniform-grid compressible two-phase flow solver without any
// of the paper's data reordering.
type Solver struct {
	NX, NY, NZ int
	H          float64
	// Data is the conserved state, AoS: ((z*NY+y)*NX+x)*NQ + q.
	Data []float32
	// CFL safety factor.
	CFL float64

	reg []float32
	rhs []float32
}

// New allocates a solver for an NX x NY x NZ grid with spacing h.
func New(nx, ny, nz int, h float64) *Solver {
	total := nx * ny * nz * nq
	return &Solver{
		NX: nx, NY: ny, NZ: nz, H: h, CFL: 0.3,
		Data: make([]float32, total),
		reg:  make([]float32, total),
		rhs:  make([]float32, total),
	}
}

// Init fills the grid from a primitive field.
func (s *Solver) Init(f func(x, y, z float64) physics.Prim) {
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				px := (float64(x) + 0.5) * s.H
				py := (float64(y) + 0.5) * s.H
				pz := (float64(z) + 0.5) * s.H
				c := f(px, py, pz).ToCons()
				cell := s.at(x, y, z)
				cell[0] = float32(c.R)
				cell[1] = float32(c.RU)
				cell[2] = float32(c.RV)
				cell[3] = float32(c.RW)
				cell[4] = float32(c.E)
				cell[5] = float32(c.G)
				cell[6] = float32(c.Pi)
			}
		}
	}
}

// at returns the cell quantities with clamped (absorbing) out-of-range
// coordinates — the naive ghost treatment.
func (s *Solver) at(x, y, z int) []float32 {
	x = clamp(x, s.NX)
	y = clamp(y, s.NY)
	z = clamp(z, s.NZ)
	off := ((z*s.NY+y)*s.NX + x) * nq
	return s.Data[off : off+nq : off+nq]
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// prim converts one cell to primitives, recomputed on every stencil access
// (no caching — the naive data flow).
func (s *Solver) prim(x, y, z int) physics.Prim {
	c := s.at(x, y, z)
	cons := physics.Cons{
		R: float64(c[0]), RU: float64(c[1]), RV: float64(c[2]), RW: float64(c[3]),
		E: float64(c[4]), G: float64(c[5]), Pi: float64(c[6]),
	}
	return cons.ToPrim()
}

// weno5 is the classic reconstruction on five cell values.
func weno5(a, b, c, d, e float64) float64 {
	t1 := a - 2*b + c
	t2 := a - 4*b + 3*c
	b0 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	t1 = b - 2*c + d
	t2 = b - d
	b1 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	t1 = c - 2*d + e
	t2 = 3*c - 4*d + e
	b2 := 13.0/12.0*t1*t1 + 0.25*t2*t2
	w0 := 0.1 / ((1e-6 + b0) * (1e-6 + b0))
	w1 := 0.6 / ((1e-6 + b1) * (1e-6 + b1))
	w2 := 0.3 / ((1e-6 + b2) * (1e-6 + b2))
	inv := 1 / (w0 + w1 + w2)
	q0 := (2*a - 7*b + 11*c) / 6
	q1 := (-b + 5*c + 2*d) / 6
	q2 := (2*c + 5*d - e) / 6
	return (w0*q0 + w1*q1 + w2*q2) * inv
}

// faceFlux computes the HLLE flux across one face given the five cells on
// each side (per primitive quantity), with axis selecting the normal
// velocity component (0=x,1=y,2=z). Returns the seven fluxes and the face
// velocity.
func faceFlux(ps [6]physics.Prim, axis int) (f [nq]float64, ustar float64) {
	comp := func(p physics.Prim) (un, ut1, ut2 float64) {
		switch axis {
		case 0:
			return p.U, p.V, p.W
		case 1:
			return p.V, p.U, p.W
		default:
			return p.W, p.U, p.V
		}
	}
	recon := func(get func(physics.Prim) float64, side int) float64 {
		if side == 0 {
			return weno5(get(ps[0]), get(ps[1]), get(ps[2]), get(ps[3]), get(ps[4]))
		}
		return weno5(get(ps[5]), get(ps[4]), get(ps[3]), get(ps[2]), get(ps[1]))
	}
	type st struct{ r, un, ut1, ut2, p, g, pi float64 }
	var m, p st
	m.r = recon(func(q physics.Prim) float64 { return q.Rho }, 0)
	p.r = recon(func(q physics.Prim) float64 { return q.Rho }, 1)
	m.un = recon(func(q physics.Prim) float64 { un, _, _ := comp(q); return un }, 0)
	p.un = recon(func(q physics.Prim) float64 { un, _, _ := comp(q); return un }, 1)
	m.ut1 = recon(func(q physics.Prim) float64 { _, t, _ := comp(q); return t }, 0)
	p.ut1 = recon(func(q physics.Prim) float64 { _, t, _ := comp(q); return t }, 1)
	m.ut2 = recon(func(q physics.Prim) float64 { _, _, t := comp(q); return t }, 0)
	p.ut2 = recon(func(q physics.Prim) float64 { _, _, t := comp(q); return t }, 1)
	m.p = recon(func(q physics.Prim) float64 { return q.P }, 0)
	p.p = recon(func(q physics.Prim) float64 { return q.P }, 1)
	m.g = recon(func(q physics.Prim) float64 { return q.G }, 0)
	p.g = recon(func(q physics.Prim) float64 { return q.G }, 1)
	m.pi = recon(func(q physics.Prim) float64 { return q.Pi }, 0)
	p.pi = recon(func(q physics.Prim) float64 { return q.Pi }, 1)

	cs := func(r, pr, g, pi float64) float64 {
		c2 := ((g+1)*pr + pi) / (g * r)
		if c2 < 0 {
			return 0
		}
		return math.Sqrt(c2)
	}
	cm, cp := cs(m.r, m.p, m.g, m.pi), cs(p.r, p.p, p.g, p.pi)
	sm := math.Min(math.Min(m.un-cm, p.un-cp), 0)
	sp := math.Max(math.Max(m.un+cm, p.un+cp), 0)
	inv := 1 / (sp - sm)
	combine := func(fl, fr, ul, ur float64) float64 {
		return (sp*fl - sm*fr + sp*sm*(ur-ul)) * inv
	}
	kem := 0.5 * m.r * (m.un*m.un + m.ut1*m.ut1 + m.ut2*m.ut2)
	kep := 0.5 * p.r * (p.un*p.un + p.ut1*p.ut1 + p.ut2*p.ut2)
	em := m.g*m.p + m.pi + kem
	ep := p.g*p.p + p.pi + kep

	var un, ut1, ut2 int
	switch axis {
	case 0:
		un, ut1, ut2 = physics.QU, physics.QV, physics.QW
	case 1:
		un, ut1, ut2 = physics.QV, physics.QU, physics.QW
	default:
		un, ut1, ut2 = physics.QW, physics.QU, physics.QV
	}
	f[physics.QR] = combine(m.r*m.un, p.r*p.un, m.r, p.r)
	f[un] = combine(m.r*m.un*m.un+m.p, p.r*p.un*p.un+p.p, m.r*m.un, p.r*p.un)
	f[ut1] = combine(m.r*m.un*m.ut1, p.r*p.un*p.ut1, m.r*m.ut1, p.r*p.ut1)
	f[ut2] = combine(m.r*m.un*m.ut2, p.r*p.un*p.ut2, m.r*m.ut2, p.r*p.ut2)
	f[physics.QE] = combine((em+m.p)*m.un, (ep+p.p)*p.un, em, ep)
	f[physics.QG] = combine(m.g*m.un, p.g*p.un, m.g, p.g)
	f[physics.QP] = combine(m.pi*m.un, p.pi*p.un, m.pi, p.pi)
	ustar = (sp*m.un - sm*p.un) * inv
	return
}

// computeRHS evaluates dU/dt cell by cell with no reuse: both faces of
// every cell are recomputed from scratch in each direction.
func (s *Solver) computeRHS() {
	invH := 1 / s.H
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				var acc [nq]float64
				gSelf := s.prim(x, y, z)
				for axis := 0; axis < 3; axis++ {
					var lo, hi [6]physics.Prim
					for k := 0; k < 6; k++ {
						switch axis {
						case 0:
							lo[k] = s.prim(x-3+k, y, z)
							hi[k] = s.prim(x-2+k, y, z)
						case 1:
							lo[k] = s.prim(x, y-3+k, z)
							hi[k] = s.prim(x, y-2+k, z)
						default:
							lo[k] = s.prim(x, y, z-3+k)
							hi[k] = s.prim(x, y, z-2+k)
						}
					}
					fl, ul := faceFlux(lo, axis)
					fh, uh := faceFlux(hi, axis)
					for q := 0; q < nq; q++ {
						acc[q] -= fh[q] - fl[q]
					}
					du := uh - ul
					acc[physics.QG] += gSelf.G * du
					acc[physics.QP] += gSelf.Pi * du
				}
				off := ((z*s.NY+y)*s.NX + x) * nq
				for q := 0; q < nq; q++ {
					s.rhs[off+q] = float32(acc[q] * invH)
				}
			}
		}
	}
}

// MaxCharVel is the naive DT kernel.
func (s *Solver) MaxCharVel() float64 {
	maxV := 0.0
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				if v := s.prim(x, y, z).CharVel(); v > maxV {
					maxV = v
				}
			}
		}
	}
	return maxV
}

// RK3 coefficients (identical to the production solver).
var (
	rkA = [3]float64{0, -5.0 / 9.0, -153.0 / 128.0}
	rkB = [3]float64{1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0}
)

// Step advances one time step and returns dt.
func (s *Solver) Step() float64 {
	vel := s.MaxCharVel()
	if vel <= 0 {
		return 0
	}
	dt := s.CFL * s.H / vel
	for st := 0; st < 3; st++ {
		s.computeRHS()
		for i := range s.Data {
			r := rkA[st]*float64(s.reg[i]) + dt*float64(s.rhs[i])
			s.reg[i] = float32(r)
			s.Data[i] = float32(float64(s.Data[i]) + rkB[st]*r)
		}
	}
	return dt
}

// Prim returns the primitive state of a cell (for tests and examples).
func (s *Solver) Prim(x, y, z int) physics.Prim { return s.prim(x, y, z) }

// RHSOnce evaluates the right-hand side once without advancing the state —
// the benchmark unit for the naive-versus-reordered comparison (Table 3).
func (s *Solver) RHSOnce() { s.computeRHS() }
