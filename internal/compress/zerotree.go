package compress

import (
	"errors"
	"math"

	"cubism/internal/wavelet"
)

// Zerotree coding of 3D wavelet coefficient blocks — the paper's cited
// alternative to the ZLIB back-end ("efficient lossy encoders can also be
// used such as the zerotree coding scheme [72] and the SPIHT library
// [48]"). This is an EZW-style embedded coder: coefficients are scanned in
// bitplanes from the most significant down; a coefficient whose entire
// descendant tree (across resolution levels) is insignificant at the
// current threshold is encoded as a single zerotree-root symbol, which is
// where the compression comes from. The bitstream is embedded: decoding
// can stop after any pass, yielding the best reconstruction for the bits
// read.
//
// Layout contract: the block holds an in-place multi-level transform as
// produced by wavelet.FWT3 (coarse corner at the origin), edge n a power
// of two. Parent (x,y,z) outside the coarsest band has up to eight
// children at (2x+i, 2y+j, 2z+k); a coarsest-detail-band coefficient roots
// the tree spanning all finer bands below it.

// ztSymbol is one 2-bit significance-pass symbol.
type ztSymbol byte

const (
	ztZTR ztSymbol = iota // zerotree root: self and all descendants insignificant
	ztIZ                  // isolated zero: self insignificant, some descendant significant
	ztPOS                 // significant, positive
	ztNEG                 // significant, negative
)

// bitWriter packs bits little-endian within bytes.
type bitWriter struct {
	buf []byte
	n   uint // bits used in the last byte
}

func (w *bitWriter) writeBit(b int) {
	if w.n == 0 {
		w.buf = append(w.buf, 0)
		w.n = 8
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (8 - w.n)
	}
	w.n--
}

func (w *bitWriter) writeBits(v uint32, count uint) {
	for i := uint(0); i < count; i++ {
		w.writeBit(int((v >> i) & 1))
	}
}

// bitReader mirrors bitWriter.
type bitReader struct {
	buf []byte
	pos uint // absolute bit position
}

var errZTUnderflow = errors.New("compress: zerotree bitstream underflow")

func (r *bitReader) readBit() (int, error) {
	byteIdx := r.pos / 8
	if int(byteIdx) >= len(r.buf) {
		return 0, errZTUnderflow
	}
	bit := (r.buf[byteIdx] >> (r.pos % 8)) & 1
	r.pos++
	return int(bit), nil
}

func (r *bitReader) readBits(count uint) (uint32, error) {
	var v uint32
	for i := uint(0); i < count; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << i
	}
	return v, nil
}

// ztCoder holds the shared scan state.
type ztCoder struct {
	n     int // block edge
	c0    int // coarsest band edge (scaling coefficients)
	field []float32
}

func newZTCoder(field []float32, n int) *ztCoder {
	return &ztCoder{n: n, c0: n >> uint(wavelet.Levels(n)), field: field}
}

func (z *ztCoder) at(x, y, v int) float32 { return z.field[(v*z.n+y)*z.n+x] }

// maxDescendant returns the maximum |coefficient| over the descendant tree
// of (x,y,zc), excluding the node itself.
func (z *ztCoder) maxDescendant(x, y, zc int) float32 {
	var m float32
	cx, cy, cz := 2*x, 2*y, 2*zc
	if cx >= z.n || cy >= z.n || cz >= z.n {
		return 0
	}
	for dz := 0; dz < 2; dz++ {
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				nx, ny, nz := cx+dx, cy+dy, cz+dz
				a := abs32(z.at(nx, ny, nz))
				if a > m {
					m = a
				}
				if d := z.maxDescendant(nx, ny, nz); d > m {
					m = d
				}
			}
		}
	}
	return m
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// scanOrder enumerates coefficients band by band from coarse to fine,
// excluding the scaling (coarse approximation) band.
func (z *ztCoder) scanOrder() [][3]int {
	var order [][3]int
	for m := z.c0; m < z.n; m *= 2 {
		// The three + four detail octants of the band with corner cube m.
		for zc := 0; zc < 2*m; zc++ {
			for y := 0; y < 2*m; y++ {
				for x := 0; x < 2*m; x++ {
					if x < m && y < m && zc < m {
						continue // covered by coarser bands
					}
					order = append(order, [3]int{x, y, zc})
				}
			}
		}
	}
	return order
}

// ZerotreeEncode codes the transformed block down to the given absolute
// threshold (the embedded analog of the decimation ε·scale) and returns
// the bitstream. The scaling band is stored verbatim (never lossy), like
// the pipeline's protected coarse corner.
func ZerotreeEncode(field []float32, n int, threshold float64) []byte {
	z := newZTCoder(field, n)
	w := &bitWriter{}

	// Header: scaling band raw (c0³ float32), then the initial bitplane
	// exponent.
	for zc := 0; zc < z.c0; zc++ {
		for y := 0; y < z.c0; y++ {
			for x := 0; x < z.c0; x++ {
				w.writeBits(math.Float32bits(z.at(x, y, zc)), 32)
			}
		}
	}
	var maxMag float32
	order := z.scanOrder()
	for _, p := range order {
		if a := abs32(z.at(p[0], p[1], p[2])); a > maxMag {
			maxMag = a
		}
	}
	exp := int8(-128)
	if maxMag > 0 {
		exp = int8(math.Floor(math.Log2(float64(maxMag))))
	}
	w.writeBits(uint32(uint8(exp)), 8)

	if exp == -128 {
		return w.buf
	}
	type sigEntry struct {
		pos [3]int
		val float32
	}
	var significant []sigEntry
	isSig := make(map[[3]int]bool)

	t := math.Pow(2, float64(exp))
	for t >= threshold && t > 0 {
		// Significance pass with zerotree skipping.
		skip := make(map[[3]int]bool)
		for _, p := range order {
			if skip[p] || isSig[p] {
				continue
			}
			v := z.at(p[0], p[1], p[2])
			if float64(abs32(v)) >= t {
				if v >= 0 {
					w.writeBits(uint32(ztPOS), 2)
				} else {
					w.writeBits(uint32(ztNEG), 2)
				}
				isSig[p] = true
				significant = append(significant, sigEntry{pos: p, val: v})
				continue
			}
			if float64(z.maxDescendant(p[0], p[1], p[2])) < t {
				w.writeBits(uint32(ztZTR), 2)
				markDescendants(z, p, skip)
			} else {
				w.writeBits(uint32(ztIZ), 2)
			}
		}
		// Refinement pass: one bit per previously significant coefficient.
		half := t / 2
		for _, e := range significant {
			mag := float64(abs32(e.val))
			// The bit tells whether the magnitude lies in the upper half of
			// its current uncertainty interval.
			steps := math.Floor(mag / t)
			inUpper := mag-steps*t >= half
			if inUpper {
				w.writeBit(1)
			} else {
				w.writeBit(0)
			}
		}
		t = half
	}
	return w.buf
}

// markDescendants flags the whole subtree below p as skipped this pass.
func markDescendants(z *ztCoder, p [3]int, skip map[[3]int]bool) {
	cx, cy, cz := 2*p[0], 2*p[1], 2*p[2]
	if cx >= z.n || cy >= z.n || cz >= z.n {
		return
	}
	for dz := 0; dz < 2; dz++ {
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				c := [3]int{cx + dx, cy + dy, cz + dz}
				skip[c] = true
				markDescendants(z, c, skip)
			}
		}
	}
}

// ZerotreeDecode inverts ZerotreeEncode into a transformed coefficient
// block (still in wavelet space; apply wavelet.FWT3.Inverse afterwards).
func ZerotreeDecode(data []byte, n int, threshold float64) ([]float32, error) {
	field := make([]float32, n*n*n)
	z := newZTCoder(field, n)
	r := &bitReader{buf: data}

	for zc := 0; zc < z.c0; zc++ {
		for y := 0; y < z.c0; y++ {
			for x := 0; x < z.c0; x++ {
				bits, err := r.readBits(32)
				if err != nil {
					return nil, err
				}
				field[(zc*n+y)*n+x] = math.Float32frombits(bits)
			}
		}
	}
	expBits, err := r.readBits(8)
	if err != nil {
		return nil, err
	}
	exp := int8(uint8(expBits))
	if exp == -128 {
		return field, nil
	}

	order := z.scanOrder()
	type sigEntry struct {
		pos  [3]int
		mag  float64
		sign float64
	}
	var significant []sigEntry
	isSig := make(map[[3]int]bool)

	t := math.Pow(2, float64(exp))
	// The stream is embedded: running out of bits mid-pass simply ends the
	// refinement at the precision encoded so far.
passes:
	for t >= threshold && t > 0 {
		skip := make(map[[3]int]bool)
		for _, p := range order {
			if skip[p] || isSig[p] {
				continue
			}
			symBits, err := r.readBits(2)
			if err != nil {
				break passes
			}
			switch ztSymbol(symBits) {
			case ztPOS, ztNEG:
				sign := 1.0
				if ztSymbol(symBits) == ztNEG {
					sign = -1
				}
				isSig[p] = true
				// Initial magnitude estimate: middle of [t, 2t).
				significant = append(significant, sigEntry{pos: p, mag: 1.5 * t, sign: sign})
			case ztZTR:
				markDescendants(z, p, skip)
			case ztIZ:
			}
		}
		half := t / 2
		for i := range significant {
			bit, err := r.readBit()
			if err != nil {
				break passes
			}
			// Narrow the uncertainty interval by a quarter of the plane.
			if bit == 1 {
				significant[i].mag += half / 2
			} else {
				significant[i].mag -= half / 2
			}
		}
		t = half
	}
	for _, e := range significant {
		field[(e.pos[2]*n+e.pos[1])*n+e.pos[0]] = float32(e.sign * e.mag)
	}
	return field, nil
}
