package compress

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cubism/internal/grid"
	"cubism/internal/physics"
)

func testGrid(n, nb int, f func(x, y, z float64) physics.Prim) *grid.Grid {
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
	return g
}

func smoothPrim(x, y, z float64) physics.Prim {
	return physics.Prim{
		Rho: 1000,
		P:   1e7 * (1 + 0.1*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y)),
		G:   physics.Liquid.G(),
		Pi:  physics.Liquid.P(),
	}
}

func TestEncodersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"zlib", "rle", "sig", "huff"} {
		enc, err := NewEncoder(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{0, 1, 100, 10000} {
			src := make([]byte, size)
			for i := range src {
				if rng.Intn(3) == 0 {
					src[i] = byte(rng.Intn(256))
				} // else leave zero: sparse like decimated data
			}
			c, err := enc.Encode(nil, src)
			if err != nil {
				t.Fatalf("%s encode: %v", name, err)
			}
			d, err := enc.Decode(nil, c)
			if err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if !bytes.Equal(d, src) {
				t.Fatalf("%s roundtrip mismatch at size %d", name, size)
			}
		}
	}
}

func TestRLEPropertyRoundTrip(t *testing.T) {
	enc := RLE{}
	f := func(src []byte) bool {
		c, err := enc.Encode(nil, src)
		if err != nil {
			return false
		}
		d, err := enc.Decode(nil, c)
		if err != nil {
			return false
		}
		return bytes.Equal(d, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressDecompressErrorBound(t *testing.T) {
	g := testGrid(16, 2, smoothPrim)
	const eps = 1e-3
	for _, encName := range []string{"zlib", "rle", "sig"} {
		c, stats, err := Compress(g, Pressure, Options{Epsilon: eps, Encoder: encName, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rate() < 2 {
			t.Errorf("%s: smooth field compresses only %.2f:1", encName, stats.Rate())
		}
		fields, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		n := g.N
		buf := make([]float32, n*n*n)
		for bi, b := range g.Blocks {
			Pressure.Extract(b, buf)
			// Relative threshold scale is the block max (~1e7).
			var scale float64
			for _, v := range buf {
				if a := math.Abs(float64(v)); a > scale {
					scale = a
				}
			}
			for i := range buf {
				e := math.Abs(float64(fields[bi][i] - buf[i]))
				if e > 25*eps*scale {
					t.Fatalf("%s block %d: reconstruction error %g > bound %g", encName, bi, e, 25*eps*scale)
				}
			}
		}
	}
}

func TestCompressionRateOrdering(t *testing.T) {
	// Γ is piecewise constant in a two-phase field and must compress far
	// better than the oscillatory pressure (paper §7: 100-150:1 vs 10-20:1).
	g := testGrid(16, 2, func(x, y, z float64) physics.Prim {
		pr := smoothPrim(x, y, z)
		pr.P *= 1 + 0.2*math.Sin(13*x+17*y+19*z) // rough pressure
		return pr
	})
	_, pStats, err := Compress(g, Pressure, Options{Epsilon: 1e-2, Encoder: "zlib", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, gStats, err := Compress(g, Gamma, Options{Epsilon: 1e-3, Encoder: "zlib", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gStats.Rate() <= pStats.Rate() {
		t.Errorf("Gamma rate %.1f:1 not better than pressure rate %.1f:1", gStats.Rate(), pStats.Rate())
	}
}

func TestCompressLossless(t *testing.T) {
	// Epsilon 0 keeps every coefficient: reconstruction must be within
	// float32 transform roundoff of the original.
	g := testGrid(8, 1, smoothPrim)
	c, stats, err := Compress(g, Density, Options{Epsilon: 0, Encoder: "zlib"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != stats.Total {
		t.Errorf("eps=0 kept %d of %d coefficients", stats.Kept, stats.Total)
	}
	fields, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	n := g.N
	buf := make([]float32, n*n*n)
	Density.Extract(g.Blocks[0], buf)
	for i := range buf {
		if math.Abs(float64(fields[0][i]-buf[i])) > 1e-3 {
			t.Fatalf("lossless reconstruction differs at %d: %g vs %g", i, fields[0][i], buf[i])
		}
	}
}

// poolRunner runs the parallel-for body on w real goroutines pulling block
// indexes from a shared channel — a stand-in for the node engine pool with
// a deliberately nondeterministic schedule.
func poolRunner(workers int) func(region string, n int, body func(w, i int)) {
	return func(region string, n int, body func(w, i int)) {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range ch {
					body(w, i)
				}
			}(w)
		}
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}
}

// TestParallelSerialBitwise is the determinism keystone of the parallel ENC
// stage: for every encoder, the per-block streams produced by a serial pass
// and by a multi-worker pool with a racing schedule must be bitwise
// identical.
func TestParallelSerialBitwise(t *testing.T) {
	g := testGrid(8, 3, smoothPrim)
	for _, name := range []string{"zlib", "rle", "sig", "huff"} {
		for _, eps := range []float64{0, 1e-3} {
			serial, _, err := Compress(g, Pressure, Options{Epsilon: eps, Encoder: name})
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			for _, workers := range []int{2, 4, 7} {
				par, stats, err := Compress(g, Pressure, Options{
					Epsilon: eps, Encoder: name, Workers: workers, Parallel: poolRunner(workers),
				})
				if err != nil {
					t.Fatalf("%s parallel: %v", name, err)
				}
				if len(par.Streams) != len(serial.Streams) {
					t.Fatalf("%s: stream count %d vs %d", name, len(par.Streams), len(serial.Streams))
				}
				for i := range par.Streams {
					if !bytes.Equal(par.Streams[i], serial.Streams[i]) {
						t.Fatalf("%s eps=%g workers=%d: block %d stream differs from serial", name, eps, workers, i)
					}
				}
				if len(stats.EncTimes) != workers {
					t.Fatalf("%s: EncTimes has %d slots, want %d", name, len(stats.EncTimes), workers)
				}
			}
		}
	}
}

func TestImbalanceStatistic(t *testing.T) {
	ts := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	got := Imbalance(ts)
	want := (0.3 - 0.1) / 0.2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Imbalance = %g, want %g", got, want)
	}
	if Imbalance(nil) != 0 || Imbalance(ts[:1]) != 0 {
		t.Error("degenerate imbalance should be 0")
	}
}

func TestHuffPropertyRoundTrip(t *testing.T) {
	enc := Huff{}
	f := func(src []byte) bool {
		c, err := enc.Encode(nil, src)
		if err != nil {
			return false
		}
		d, err := enc.Decode(nil, c)
		if err != nil {
			return false
		}
		return bytes.Equal(d, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffDeterministicAcrossCalls(t *testing.T) {
	// The golden corpus pins huff output bitwise, so encoding must be a
	// pure function of the input — including tie-breaks in tree building.
	src := []byte("aabbbcccc\x00\x00\x00\x00\x00dddddddd")
	a, err := Huff{}.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Huff{}.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("huff encoding not deterministic")
	}
}

func TestSigPropertyRoundTrip(t *testing.T) {
	enc := Sig{}
	f := func(src []byte) bool {
		c, err := enc.Encode(nil, src)
		if err != nil {
			return false
		}
		d, err := enc.Decode(nil, c)
		if err != nil {
			return false
		}
		return bytes.Equal(d, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSigCompressesSparseData(t *testing.T) {
	// 90% zero words must compress close to the information content.
	src := make([]byte, 4000)
	for w := 0; w < 1000; w += 10 {
		src[4*w] = byte(w)
		src[4*w+1] = 1
	}
	c, err := Sig{}.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	// 100 nonzero words x 4B + 125B bitmap + header ~ 530B.
	if len(c) > 700 {
		t.Errorf("sig encoded %d bytes, want < 700", len(c))
	}
}

func TestDecompressRejectsCorruptStream(t *testing.T) {
	g := testGrid(8, 1, smoothPrim)
	c, _, err := Compress(g, Pressure, Options{Epsilon: 1e-3, Encoder: "zlib"})
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the zlib stream body.
	for i := 10; i < len(c.Streams[0]) && i < 40; i++ {
		c.Streams[0][i] ^= 0xff
	}
	if _, err := c.Decompress(); err == nil {
		t.Error("expected error for corrupt zlib stream")
	}
}

func TestDecompressRejectsBadOrdinal(t *testing.T) {
	g := testGrid(8, 1, smoothPrim)
	c, _, err := Compress(g, Pressure, Options{Epsilon: 0, Encoder: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	// Decode, corrupt the block ordinal, re-encode.
	enc, _ := NewEncoder("sig")
	raw, err := enc.Decode(nil, c.Streams[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0x7f
	c.Streams[0], err = enc.Encode(nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(); err == nil {
		t.Error("expected error for out-of-range block ordinal")
	}
}

func TestUnknownEncoderRejected(t *testing.T) {
	if _, err := NewEncoder("lz4"); err == nil {
		t.Error("expected error for unknown encoder")
	}
	if _, _, err := Compress(testGrid(8, 1, smoothPrim), Pressure, Options{Encoder: "nope"}); err == nil {
		t.Error("Compress accepted unknown encoder")
	}
}
