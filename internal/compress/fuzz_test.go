package compress

import (
	"bytes"
	"math"
	"testing"
)

// FuzzEntropyRoundTrip checks the lossless coders' contract on arbitrary
// byte payloads: Encode then Decode reproduces the input exactly, and
// encoding the same payload twice produces the same bytes — the
// determinism the parallel ENC pipeline's bitwise guarantee rests on.
func FuzzEntropyRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0}, uint8(3))
	f.Add(bytes.Repeat([]byte{0}, 300), uint8(1))                       // long zero run (rle)
	f.Add(bytes.Repeat([]byte{0xAB}, 64), uint8(3))                     // single-symbol alphabet (huff)
	f.Add([]byte("abacabadabacabae"), uint8(3))                         // skewed alphabet
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0}, uint8(2))   // sparse words (sig)
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x01, 0xfe, 0x55, 0xaa}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, encSel uint8) {
		name := []string{"zlib", "rle", "sig", "huff"}[int(encSel)%4]
		enc, err := NewEncoder(name)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := enc.Encode(nil, data)
		if err != nil {
			t.Fatalf("%s: encoding %d bytes: %v", name, len(data), err)
		}
		got, err := enc.Decode(nil, stream)
		if err != nil {
			t.Fatalf("%s: decoding own encoding: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip of %d bytes returned %d different bytes", name, len(data), len(got))
		}
		again, err := enc.Encode(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stream, again) {
			t.Fatalf("%s: encoding is not deterministic across calls", name)
		}
	})
}

// fieldFromBytes builds an n³ coefficient block from arbitrary fuzz bytes:
// four bytes per coefficient, cycled when data is short, with non-finite
// values sanitized to zero (the coder's contract covers finite fields; the
// pipeline never produces NaN/Inf coefficients).
func fieldFromBytes(data []byte, n int) []float32 {
	field := make([]float32, n*n*n)
	if len(data) == 0 {
		return field
	}
	for i := range field {
		var bits uint32
		for b := 0; b < 4; b++ {
			bits |= uint32(data[(i*4+b)%len(data)]) << (8 * uint(b))
		}
		v := math.Float32frombits(bits)
		if v != v || math.IsInf(float64(v), 0) {
			v = 0
		}
		field[i] = v
	}
	return field
}

// FuzzZerotreeRoundTrip checks the embedded coder's contract on arbitrary
// finite fields: encode-decode must succeed and reconstruct every
// coefficient to within 2x the threshold (plus float32 quantization of the
// refinement estimate, which matters once magnitudes dwarf the threshold).
func FuzzZerotreeRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(8))
	f.Add([]byte{0x00, 0x00, 0x80, 0x3f}, uint8(1), uint8(16)) // 1.0 everywhere
	f.Add([]byte{0xff, 0xff, 0x7f, 0x7f, 0x01, 0x00}, uint8(2), uint8(0))
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07}, uint8(1), uint8(23))
	f.Fuzz(func(t *testing.T, data []byte, nSel, thrExp uint8) {
		n := []int{4, 8, 16}[int(nSel)%3]
		threshold := math.Pow(2, float64(int(thrExp%24)-16))
		field := fieldFromBytes(data, n)

		stream := ZerotreeEncode(append([]float32(nil), field...), n, threshold)
		got, err := ZerotreeDecode(stream, n, threshold)
		if err != nil {
			t.Fatalf("decode of own encoding failed (n=%d thr=%g): %v", n, threshold, err)
		}
		if len(got) != len(field) {
			t.Fatalf("decoded %d coefficients, want %d", len(got), len(field))
		}
		for i := range field {
			// 2^-20 relative slack: ~8 float32 ulps, covering rounding of
			// the float64 magnitude estimate back to float32.
			tol := 2*threshold + math.Abs(float64(field[i]))*math.Pow(2, -20)
			d := math.Abs(float64(got[i]) - float64(field[i]))
			if !(d <= tol) {
				t.Fatalf("coefficient %d: got %g want %g (err %g > tol %g, n=%d thr=%g)",
					i, got[i], field[i], d, tol, n, threshold)
			}
		}
	})
}

// FuzzDecompressCorrupt feeds arbitrary bytes through every decode path —
// the four lossless encoders, the record-framed Decompress, and the
// zerotree decoder. Corrupt input must surface as an error, never a panic
// or a runaway allocation.
func FuzzDecompressCorrupt(f *testing.F) {
	encoders := []string{"zlib", "rle", "sig", "huff"}
	// Seed with a valid single-block stream per encoder (block 0, all-zero
	// coefficients, n=8) so the fuzzer starts from the success path, plus a
	// truncation of each.
	raw := make([]byte, 4+8*8*8*4)
	for i, name := range encoders {
		enc, err := NewEncoder(name)
		if err != nil {
			f.Fatal(err)
		}
		stream, err := enc.Encode(nil, raw)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stream, uint8(i), uint8(0), uint8(1))
		f.Add(stream[:len(stream)/2], uint8(i), uint8(0), uint8(1))
	}
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint8(1), uint8(3), uint8(2))
	f.Add([]byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint8(2), uint8(200), uint8(0))
	f.Fuzz(func(t *testing.T, stream []byte, encSel, nSel, blocks uint8) {
		name := encoders[int(encSel)%len(encoders)]

		// Raw encoder decode: error or success, never a panic.
		enc, err := NewEncoder(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.Decode(nil, stream); err != nil {
			_ = err // corrupt input is allowed to fail
		}

		// Framed pipeline with a well-formed header.
		n := []int{8, 16, 32}[int(nSel)%3]
		c := &Compressed{
			N: n, Blocks: int(blocks % 8),
			Encoder: name, Streams: [][]byte{stream},
		}
		if fields, err := c.Decompress(); err == nil {
			if len(fields) != c.Blocks {
				t.Fatalf("Decompress returned %d blocks, want %d", len(fields), c.Blocks)
			}
			for i, fd := range fields {
				if len(fd) != n*n*n {
					t.Fatalf("block %d has %d cells, want %d", i, len(fd), n*n*n)
				}
			}
		}

		// Framed pipeline with an arbitrary (possibly invalid) header: the
		// edge/count validation must reject junk instead of panicking in
		// the wavelet transform.
		bad := &Compressed{
			N: int(nSel), Blocks: int(blocks),
			Encoder: name, Streams: [][]byte{stream},
		}
		if _, err := bad.Decompress(); err != nil {
			_ = err
		}

		// Embedded zerotree decoder on raw bytes: truncation ends the
		// refinement early by design, so only hard errors are acceptable.
		if _, err := ZerotreeDecode(stream, n, 1e-3); err != nil {
			_ = err
		}
	})
}
