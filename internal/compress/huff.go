package compress

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Huff is a canonical order-0 Huffman coder over bytes — the "faster
// entropy coder" slot of the pipeline. Unlike zlib (whose emitted bytes
// depend on the library version), the format below is fully specified by
// this file, so its output is stable across platforms and Go releases and
// can be pinned bitwise by the golden corpus. It spends no time on match
// finding, which makes encoding substantially cheaper than DEFLATE on the
// decimated coefficient streams while still collapsing the dominant zero
// bytes to about one bit each.
//
// Stream layout:
//
//	uvarint srcLen
//	  (empty source: nothing else)
//	256 bytes: canonical code length per symbol (0 = absent)
//	MSB-first bitstream of srcLen canonical codes
//
// Canonical code assignment: symbols sorted by (length, value); codes count
// upward within a length and shift left when the length grows. Ties while
// building the tree are broken by deterministic rules (stable sort by
// (frequency, symbol); leaf queue preferred on equal weight), so identical
// input always yields identical bytes.
type Huff struct{}

// Name implements Encoder.
func (Huff) Name() string { return "huff" }

// maxHuffLen bounds code lengths. A length above 56 would overflow the
// encoder's bit accumulator; reaching it requires Fibonacci-like frequency
// growth and an input beyond 2^34 bytes, far past any block payload.
const maxHuffLen = 56

// huffLengths computes deterministic Huffman code lengths for the given
// frequency table using the two-queue method over leaves sorted by
// (frequency, symbol).
func huffLengths(freq *[256]int64) ([256]uint8, error) {
	var lengths [256]uint8
	type hnode struct {
		weight      int64
		left, right int // node indexes, -1 for leaves
		sym         int
	}
	var nodes []hnode
	for s := 0; s < 256; s++ {
		if freq[s] > 0 {
			nodes = append(nodes, hnode{weight: freq[s], left: -1, right: -1, sym: s})
		}
	}
	switch len(nodes) {
	case 0:
		return lengths, nil
	case 1:
		lengths[nodes[0].sym] = 1
		return lengths, nil
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		if nodes[i].weight != nodes[j].weight {
			return nodes[i].weight < nodes[j].weight
		}
		return nodes[i].sym < nodes[j].sym
	})
	// Two queues: sorted leaves and internal nodes (produced in
	// nondecreasing weight order). Preferring the leaf queue on ties keeps
	// the construction deterministic and the tree shallow.
	leaves := make([]int, len(nodes))
	for i := range leaves {
		leaves[i] = i
	}
	var internal []int
	pop := func() int {
		if len(leaves) > 0 && (len(internal) == 0 || nodes[leaves[0]].weight <= nodes[internal[0]].weight) {
			n := leaves[0]
			leaves = leaves[1:]
			return n
		}
		n := internal[0]
		internal = internal[1:]
		return n
	}
	for len(leaves)+len(internal) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, hnode{weight: nodes[a].weight + nodes[b].weight, left: a, right: b, sym: -1})
		internal = append(internal, len(nodes)-1)
	}
	root := pop()
	// Depth-first depth assignment; the tree has at most 511 nodes.
	type walk struct{ node, depth int }
	stack := []walk{{root, 0}}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[w.node]
		if nd.left < 0 {
			if w.depth > maxHuffLen {
				return lengths, fmt.Errorf("compress: huff code length %d exceeds limit", w.depth)
			}
			lengths[nd.sym] = uint8(w.depth)
			continue
		}
		stack = append(stack, walk{nd.left, w.depth + 1}, walk{nd.right, w.depth + 1})
	}
	return lengths, nil
}

// huffCodes assigns canonical codes from the length table: symbols ordered
// by (length, value), codes counting upward per length.
func huffCodes(lengths *[256]uint8) [256]uint64 {
	var codes [256]uint64
	var countPerLen [maxHuffLen + 1]int
	for _, l := range lengths {
		countPerLen[l]++
	}
	countPerLen[0] = 0 // absent symbols carry no codes
	var nextCode [maxHuffLen + 1]uint64
	code := uint64(0)
	for l := 1; l <= maxHuffLen; l++ {
		code = (code + uint64(countPerLen[l-1])) << 1
		nextCode[l] = code
	}
	for s := 0; s < 256; s++ {
		if l := lengths[s]; l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

// Encode implements Encoder.
func (Huff) Encode(dst, src []byte) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(src)))
	dst = append(dst, tmp[:n]...)
	if len(src) == 0 {
		return dst, nil
	}
	var freq [256]int64
	for _, b := range src {
		freq[b]++
	}
	lengths, err := huffLengths(&freq)
	if err != nil {
		return nil, err
	}
	codes := huffCodes(&lengths)
	dst = append(dst, lengths[:]...)
	// MSB-first bit packing: the accumulator holds < 8 pending bits before
	// each code is shifted in, so lengths up to maxHuffLen=56 fit in 64.
	var acc uint64
	var nbits uint
	for _, b := range src {
		l := uint(lengths[b])
		acc = acc<<l | codes[b]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	return dst, nil
}

// Decode implements Encoder.
func (Huff) Decode(dst, src []byte) ([]byte, error) {
	srcLen64, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("compress: corrupt huff header")
	}
	src = src[n:]
	if srcLen64 == 0 {
		return dst, nil
	}
	// Every decoded symbol consumes at least one bit, so a valid claim
	// never exceeds 8 bits per remaining byte (minus the 256-byte length
	// table); this bounds the allocation against the input size.
	if len(src) < 256 {
		return nil, fmt.Errorf("compress: truncated huff length table")
	}
	var lengths [256]uint8
	copy(lengths[:], src[:256])
	bits := src[256:]
	if srcLen64 > uint64(len(bits))*8 {
		return nil, fmt.Errorf("compress: huff length %d exceeds stream capacity", srcLen64)
	}
	srcLen := int(srcLen64)

	// Canonical decode tables: per length, the first code and the index of
	// its first symbol in the (length, value)-ordered symbol list.
	var countPerLen [maxHuffLen + 1]int
	kraft := uint64(0)
	for s := 0; s < 256; s++ {
		l := lengths[s]
		if l > maxHuffLen {
			return nil, fmt.Errorf("compress: huff code length %d exceeds limit", l)
		}
		if l > 0 {
			countPerLen[l]++
			kraft += 1 << (maxHuffLen - uint(l))
		}
	}
	if kraft > 1<<maxHuffLen {
		return nil, fmt.Errorf("compress: huff length table oversubscribed")
	}
	var firstCode [maxHuffLen + 1]uint64
	var firstSym [maxHuffLen + 1]int
	syms := make([]byte, 0, 256)
	code, idx := uint64(0), 0
	for l := 1; l <= maxHuffLen; l++ {
		if l > 1 {
			code = (code + uint64(countPerLen[l-1])) << 1
		}
		firstCode[l] = code
		firstSym[l] = idx
		idx += countPerLen[l]
	}
	for l := 1; l <= maxHuffLen; l++ {
		for s := 0; s < 256; s++ {
			if int(lengths[s]) == l {
				syms = append(syms, byte(s))
			}
		}
	}

	out := make([]byte, 0, srcLen)
	var acc uint64
	var nbits uint
	bi := 0
	for len(out) < srcLen {
		code, l := uint64(0), 0
		for {
			if nbits == 0 {
				if bi >= len(bits) {
					return nil, fmt.Errorf("compress: truncated huff bitstream")
				}
				acc = uint64(bits[bi])
				nbits = 8
				bi++
			}
			nbits--
			code = code<<1 | (acc>>nbits)&1
			l++
			if l > maxHuffLen {
				return nil, fmt.Errorf("compress: huff code too long")
			}
			if d := code - firstCode[l]; code >= firstCode[l] && d < uint64(countPerLen[l]) {
				out = append(out, syms[firstSym[l]+int(d)])
				break
			}
		}
	}
	return append(dst, out...), nil
}
