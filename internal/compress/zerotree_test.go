package compress

import (
	"math"
	"math/rand"
	"testing"

	"cubism/internal/wavelet"
)

// ztTestField builds a transformed smooth block.
func ztTestField(t *testing.T, n int) ([]float32, []float32) {
	t.Helper()
	orig := make([]float32, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				orig[(z*n+y)*n+x] = float32(
					2 + math.Sin(5*float64(x)/float64(n))*math.Cos(3*float64(y)/float64(n))*
						math.Sin(4*float64(z)/float64(n)))
			}
		}
	}
	coeff := append([]float32(nil), orig...)
	wavelet.NewFWT3(n).Forward(coeff)
	return orig, coeff
}

func TestZerotreeRoundTripErrorBound(t *testing.T) {
	const n = 16
	orig, coeff := ztTestField(t, n)
	const threshold = 1e-3
	stream := ZerotreeEncode(append([]float32(nil), coeff...), n, threshold)
	dec, err := ZerotreeDecode(stream, n, threshold)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficient-domain error bound: coefficients below the last bitplane
	// threshold t_last (< 2*threshold) are dropped entirely, and refined
	// ones carry at most t_last/2 uncertainty.
	for i := range coeff {
		if e := math.Abs(float64(dec[i] - coeff[i])); e > 2*threshold {
			t.Fatalf("coefficient %d error %g > 2*threshold %g", i, e, 2*threshold)
		}
	}
	// ...and the reconstruction error by a small multiple (level cascade).
	wavelet.NewFWT3(n).Inverse(dec)
	for i := range orig {
		if e := math.Abs(float64(dec[i] - orig[i])); e > 20*threshold {
			t.Fatalf("field %d error %g > 20*threshold", i, e)
		}
	}
}

func TestZerotreeCompressesSmoothField(t *testing.T) {
	const n = 16
	_, coeff := ztTestField(t, n)
	stream := ZerotreeEncode(append([]float32(nil), coeff...), n, 1e-2)
	raw := n * n * n * 4
	if len(stream) >= raw/3 {
		t.Errorf("zerotree stream %d bytes, want < 1/3 of raw %d", len(stream), raw)
	}
}

func TestZerotreeEmbeddedTruncation(t *testing.T) {
	const n = 16
	_, coeff := ztTestField(t, n)
	const threshold = 1e-4
	full := ZerotreeEncode(append([]float32(nil), coeff...), n, threshold)
	fullDec, err := ZerotreeDecode(full, n, threshold)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating the stream must still decode, with larger but bounded error.
	header := (n / (1 << uint(wavelet.Levels(n)))) // coarse edge
	minLen := header*header*header*4 + 1
	cut := minLen + (len(full)-minLen)/2
	truncDec, err := ZerotreeDecode(full[:cut], n, threshold)
	if err != nil {
		t.Fatal(err)
	}
	var fullErr, truncErr float64
	for i := range coeff {
		fullErr += math.Abs(float64(fullDec[i] - coeff[i]))
		truncErr += math.Abs(float64(truncDec[i] - coeff[i]))
	}
	if truncErr < fullErr {
		t.Errorf("truncated stream decoded better (%g) than full (%g)?", truncErr, fullErr)
	}
	if truncErr == 0 {
		t.Error("truncation had no effect; embedded property not exercised")
	}
}

func TestZerotreeZeroField(t *testing.T) {
	const n = 8
	coeff := make([]float32, n*n*n)
	stream := ZerotreeEncode(append([]float32(nil), coeff...), n, 1e-6)
	dec, err := ZerotreeDecode(stream, n, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("zero field decoded nonzero at %d: %g", i, v)
		}
	}
	// A zero field costs only the scaling band + exponent.
	c0 := n >> uint(wavelet.Levels(n))
	if len(stream) > c0*c0*c0*4+2 {
		t.Errorf("zero field stream %d bytes", len(stream))
	}
}

func TestZerotreeSparseSpike(t *testing.T) {
	// A single significant detail coefficient: the zerotree should collapse
	// everything else into a handful of root symbols.
	const n = 16
	coeff := make([]float32, n*n*n)
	rng := rand.New(rand.NewSource(2))
	x, y, z := 8+rng.Intn(8), 8+rng.Intn(8), 8+rng.Intn(8)
	coeff[(z*n+y)*n+x] = 3.75
	stream := ZerotreeEncode(append([]float32(nil), coeff...), n, 1e-3)
	dec, err := ZerotreeDecode(stream, n, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(dec[(z*n+y)*n+x])
	if math.Abs(got-3.75) > 1e-3 {
		t.Errorf("spike decoded as %g, want 3.75 +- 1e-3", got)
	}
	count := 0
	for _, v := range dec {
		if v != 0 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d nonzero coefficients decoded, want 1", count)
	}
}
