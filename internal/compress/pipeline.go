package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
	"cubism/internal/wavelet"
)

// Quantity selects which scalar field is extracted from the flow state for
// a dump. The paper dumps only p and Γ, "the main quantities of interest
// for the study and visualization of the cloud collapse dynamics".
type Quantity int

// Supported dump quantities.
const (
	Pressure Quantity = iota
	Gamma
	Density
)

// String implements fmt.Stringer.
func (q Quantity) String() string {
	return [...]string{"p", "G", "rho"}[q]
}

// Extract fills dst (N³ float32, x-fastest) with the quantity's value for
// every cell of the block.
func (q Quantity) Extract(b *grid.Block, dst []float32) {
	n := b.N
	for i := 0; i < n*n*n; i++ {
		c := b.Data[i*physics.NQ : (i+1)*physics.NQ]
		switch q {
		case Gamma:
			dst[i] = c[physics.QG]
		case Density:
			dst[i] = c[physics.QR]
		default: // Pressure via the stiffened equation of state.
			r := float64(c[physics.QR])
			ru, rv, rw := float64(c[physics.QU]), float64(c[physics.QV]), float64(c[physics.QW])
			ke := 0.5 * (ru*ru + rv*rv + rw*rw) / r
			dst[i] = float32(physics.Pressure(float64(c[physics.QE]), ke, float64(c[physics.QG]), float64(c[physics.QP])))
		}
	}
}

// Options configures a compression pass.
type Options struct {
	// Epsilon is the decimation threshold: detail coefficients with
	// magnitude <= Epsilon*Scale are zeroed. The paper uses 1e-2 for p and
	// 1e-3 for Γ (relative thresholds; Scale carries the field magnitude).
	Epsilon float64
	// Scale converts Epsilon to an absolute threshold; 0 means the max
	// absolute value of each block (a per-block relative threshold).
	Scale float64
	// Encoder selects the lossless back-end ("zlib", "rle", "sig" or
	// "huff").
	Encoder string
	// Workers is the number of worker slots: the width of the per-worker
	// timing arrays and of the scratch pool. When Parallel is set it must
	// be at least the pool's worker count; 0 means one.
	Workers int
	// Parallel (optional) runs body(w, i) for every i in [0, n) across a
	// persistent worker pool, with worker ids w < Workers. The per-block
	// tasks are independent and slot their output by block index, so any
	// schedule produces the same bytes. nil runs the blocks serially on
	// worker 0 — bitwise identical to every parallel schedule.
	Parallel func(region string, n int, body func(w, i int))
	// Tracer (optional) records per-worker fwt_decimate/encode spans on
	// Rank's trace tracks.
	Tracer *telemetry.Tracer
	// Rank is the trace process id used with Tracer.
	Rank int
}

// Stats reports the outcome and per-stage work distribution of a pass.
type Stats struct {
	Blocks   int
	RawBytes int64           // uncompressed payload size
	Encoded  int64           // compressed payload size
	Kept     int64           // significant coefficients after decimation
	Total    int64           // total coefficients
	DecTimes []time.Duration // per-worker wavelet transform + decimation
	EncTimes []time.Duration // per-worker lossless encoding
}

// Rate returns the compression rate (raw : encoded).
func (s Stats) Rate() float64 {
	if s.Encoded == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.Encoded)
}

// Imbalance returns (tmax-tmin)/tavg across the per-worker durations, the
// statistic of Table 4.
func Imbalance(ts []time.Duration) float64 {
	if len(ts) < 2 {
		return 0
	}
	minT, maxT, sum := ts[0], ts[0], time.Duration(0)
	for _, t := range ts {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		sum += t
	}
	avg := sum.Seconds() / float64(len(ts))
	if avg == 0 {
		return 0
	}
	return (maxT.Seconds() - minT.Seconds()) / avg
}

// Compressed is one quantity's compressed payload: one encoded stream per
// block, in block order, self-describing enough to invert. (Decompress also
// accepts the pre-PR-10 layout of multi-record per-worker streams; the
// record format is shared.)
type Compressed struct {
	N        int // block edge
	Blocks   int // number of blocks
	Quantity string
	Encoder  string
	Epsilon  float64
	Streams  [][]byte
}

// encScratch is one worker's reusable buffers: the FWT plan, the extracted
// field, and the raw record the encoder consumes. A pool worker executes
// its tasks serially, so indexing scratch by worker id is race-free.
type encScratch struct {
	fwt   *wavelet.FWT3
	field []float32
	raw   []byte
}

// Compress runs the full pipeline over every block of the grid: extract the
// quantity, forward-transform, decimate, and encode each block as its own
// stream, slotted by block index. Block tasks are independent and outputs
// are position-addressed, so the bytes are identical whether the blocks run
// serially or scattered across a worker pool in any order — the determinism
// contract the dump format and the golden corpus rely on.
func Compress(g *grid.Grid, q Quantity, opt Options) (*Compressed, Stats, error) {
	enc, err := NewEncoder(opt.Encoder)
	if err != nil {
		return nil, Stats{}, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	nb := len(g.Blocks)
	n := g.N
	cells := n * n * n

	out := &Compressed{
		N: n, Blocks: nb,
		Quantity: q.String(), Encoder: opt.Encoder, Epsilon: opt.Epsilon,
		Streams: make([][]byte, nb),
	}
	stats := Stats{
		Blocks:   nb,
		RawBytes: int64(nb) * int64(cells) * 4,
		Total:    int64(nb) * int64(cells),
		DecTimes: make([]time.Duration, workers),
		EncTimes: make([]time.Duration, workers),
	}

	kept := make([]int64, workers)
	encodeErr := make([]error, nb)
	scratch := make([]*encScratch, workers)
	for w := range scratch {
		scratch[w] = &encScratch{fwt: wavelet.NewFWT3(n), field: make([]float32, cells)}
	}
	body := func(w, bi int) {
		s := scratch[w]
		t0 := time.Now()
		sp := opt.Tracer.StartSpan("fwt_decimate", opt.Rank, w+1)
		q.Extract(g.Blocks[bi], s.field)
		s.fwt.Forward(s.field)
		k := decimate(s.field, n, opt.Epsilon, opt.Scale)
		var rec [4]byte
		binary.LittleEndian.PutUint32(rec[:], uint32(bi))
		s.raw = append(s.raw[:0], rec[:]...)
		s.raw = appendFloats(s.raw, s.field)
		sp.End()
		t1 := time.Now()
		stats.DecTimes[w] += t1.Sub(t0)
		kept[w] += k
		sp = opt.Tracer.StartSpan("encode", opt.Rank, w+1)
		out.Streams[bi], encodeErr[bi] = enc.Encode(nil, s.raw)
		sp.End()
		stats.EncTimes[w] += time.Since(t1)
	}
	if opt.Parallel != nil {
		opt.Parallel("ENC.block", nb, body)
	} else {
		for bi := 0; bi < nb; bi++ {
			body(0, bi)
		}
	}
	for _, e := range encodeErr {
		if e != nil {
			return nil, Stats{}, e
		}
	}
	for w := 0; w < workers; w++ {
		stats.Kept += kept[w]
	}
	for _, s := range out.Streams {
		stats.Encoded += int64(len(s))
	}
	return out, stats, nil
}

// decimate zeroes detail coefficients with |d| <= eps*scale and returns the
// number of significant coefficients kept. The coarse corner (the lowest
// resolution approximation) is never decimated, preserving the error bound.
func decimate(field []float32, n int, eps, scale float64) int64 {
	if eps == 0 {
		// Lossless mode: keep every coefficient untouched.
		return int64(len(field))
	}
	if scale == 0 {
		for _, v := range field {
			if a := math.Abs(float64(v)); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
	}
	levels := wavelet.Levels(n)
	c := n >> uint(levels)
	// Depth-weighted thresholds: a detail dropped at depth k re-enters the
	// prediction of k finer levels, amplifying its error by up to the
	// boundary-stencil gain per level and direction. Tightening the
	// threshold by 8x per depth keeps the total L∞ error at O(eps) while
	// costing almost nothing in rate (level k holds only 1/8^k of the
	// coefficients).
	thr := make([]float32, levels)
	t := eps * scale
	for k := 0; k < levels; k++ {
		thr[k] = float32(t)
		t /= 8
	}
	var kept int64
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := (z*n+y)*n + x
				m := max(x, max(y, z))
				if m < c {
					kept++ // coarse approximation: never decimated
					continue
				}
				// Depth: 0 for the finest detail band (m >= n/2), 1 for the
				// next, etc.
				depth := 0
				for m < n>>(depth+1) {
					depth++
				}
				v := field[i]
				tk := thr[depth]
				if v <= tk && v >= -tk {
					field[i] = 0
				} else {
					kept++
				}
			}
		}
	}
	return kept
}

// Decompress inverts the pipeline, returning the reconstructed scalar field
// of every block (indexed like g.Blocks at compression time).
func (c *Compressed) Decompress() ([][]float32, error) {
	// A Compressed typically arrives deserialized from a dump file, so the
	// header fields are untrusted: validate them before they size
	// allocations or reach wavelet.NewFWT3 (which panics on bad edges).
	n := c.N
	if n < wavelet.MinLen || n > 1<<10 || n&(n-1) != 0 {
		return nil, fmt.Errorf("compress: invalid block edge %d", n)
	}
	if c.Blocks < 0 {
		return nil, fmt.Errorf("compress: invalid block count %d", c.Blocks)
	}
	enc, err := NewEncoder(c.Encoder)
	if err != nil {
		return nil, err
	}
	cells := n * n * n
	recSize := 4 + cells*4
	// Decode every stream before sizing the output: the block count is an
	// untrusted header field, so it must be corroborated by actual decoded
	// records before it drives an allocation (a frame claiming 2^60 blocks
	// must fail cheaply, not OOM).
	raws := make([][]byte, 0, len(c.Streams))
	totalRecs := 0
	for _, stream := range c.Streams {
		raw, err := enc.Decode(nil, stream)
		if err != nil {
			return nil, err
		}
		if len(raw)%recSize != 0 {
			return nil, fmt.Errorf("compress: stream size %d not a multiple of record size %d", len(raw), recSize)
		}
		totalRecs += len(raw) / recSize
		raws = append(raws, raw)
	}
	if totalRecs != c.Blocks {
		return nil, fmt.Errorf("compress: payload carries %d block records, header says %d blocks", totalRecs, c.Blocks)
	}
	fields := make([][]float32, c.Blocks)
	fwt := wavelet.NewFWT3(n)
	for _, raw := range raws {
		for off := 0; off < len(raw); off += recSize {
			bi := int(binary.LittleEndian.Uint32(raw[off:]))
			if bi < 0 || bi >= c.Blocks {
				return nil, fmt.Errorf("compress: block ordinal %d out of range", bi)
			}
			field := readFloats(raw[off+4:off+recSize], cells)
			fwt.Inverse(field)
			fields[bi] = field
		}
	}
	for i, f := range fields {
		if f == nil {
			return nil, fmt.Errorf("compress: block %d missing from payload", i)
		}
	}
	return fields, nil
}

// appendFloats appends the little-endian bytes of the float32 slice.
func appendFloats(dst []byte, src []float32) []byte {
	var b [4]byte
	for _, v := range src {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// readFloats decodes cells little-endian float32 values.
func readFloats(src []byte, cells int) []float32 {
	out := make([]float32, cells)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
	return out
}
