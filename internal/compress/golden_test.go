package compress

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubism/internal/grid"
	"cubism/internal/physics"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden compression corpus under testdata/golden")

// goldenGrid builds the corpus input: a 2×2×2 grid of 8³ blocks whose Γ
// channel holds small LCG-generated integers. Integer-valued inputs keep
// the forward-transform arithmetic low-rounding and bit-for-bit
// reproducible across machines (every operand is an exact dyadic value,
// so there is no libm call or FMA-contraction-sensitive cancellation to
// drift), unlike a math.Sin-filled field.
func goldenGrid() *grid.Grid {
	const n, nb = 8, 2
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	state := uint32(0x2545F491)
	for _, b := range g.Blocks {
		for i := 0; i < n*n*n; i++ {
			state = state*1664525 + 1013904223 // Numerical Recipes LCG
			v := float32(int32(state>>20) - 2048) // integers in [-2048, 2048)
			cell := b.Data[i*physics.NQ : (i+1)*physics.NQ]
			cell[physics.QG] = v
		}
	}
	return g
}

// goldenCases sweeps the deterministic coders across the rate targets the
// corpus pins: lossless (eps 0) and the paper's two dump thresholds.
var goldenCases = []struct {
	encoder string
	eps     float64
}{
	{"rle", 0}, {"rle", 1e-2}, {"rle", 1e-3},
	{"sig", 0}, {"sig", 1e-2}, {"sig", 1e-3},
	{"huff", 0}, {"huff", 1e-2}, {"huff", 1e-3},
}

// goldenBlob flattens a compression result into the committed blob shape:
// for each block stream, a uint32 length followed by the bytes.
func goldenBlob(c *Compressed) []byte {
	var out []byte
	var lenBuf [4]byte
	for _, s := range c.Streams {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		out = append(out, lenBuf[:]...)
		out = append(out, s...)
	}
	return out
}

func goldenName(encoder string, eps float64) string {
	tag := strings.ReplaceAll(fmt.Sprintf("%g", eps), "-", "m")
	return fmt.Sprintf("%s_eps%s.bin", encoder, tag)
}

// TestGoldenCorpus is the cross-machine determinism contract of the ENC
// stage: both encoder paths — serial and the parallel pool — must
// reproduce the committed compressed blobs bitwise at every rate target,
// and every blob must decode. The bitwise contract is on the compressed
// bytes; the decoded floats at eps 0 are lossless up to float32 rounding
// in the multi-level lifting steps (a few ulps), which the eps 0 branch
// bounds tightly. Regenerate with
// `go test ./internal/compress -run TestGoldenCorpus -update` after an
// intentional format change, and commit the diff.
func TestGoldenCorpus(t *testing.T) {
	g := goldenGrid()
	const scale = 2048 // fixed absolute threshold scale: eps*scale stays a power-of-two-ish exact bound
	for _, tc := range goldenCases {
		t.Run(goldenName(tc.encoder, tc.eps), func(t *testing.T) {
			serial, _, err := Compress(g, Gamma, Options{
				Epsilon: tc.eps, Scale: scale, Encoder: tc.encoder, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := Compress(g, Gamma, Options{
				Epsilon: tc.eps, Scale: scale, Encoder: tc.encoder,
				Workers: 4, Parallel: poolRunner(4),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Streams) != len(serial.Streams) {
				t.Fatalf("parallel produced %d streams, serial %d", len(par.Streams), len(serial.Streams))
			}
			for i := range par.Streams {
				if !bytes.Equal(par.Streams[i], serial.Streams[i]) {
					t.Fatalf("block %d: parallel stream differs from serial", i)
				}
			}

			blob := goldenBlob(serial)
			path := filepath.Join("testdata", "golden", goldenName(tc.encoder, tc.eps))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden blob missing (regenerate with -update): %v", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("%s: compressed bytes diverged from the committed corpus (%d vs %d bytes) — the coder or pipeline changed; if intentional, regenerate with -update",
					path, len(blob), len(want))
			}

			// Every committed blob must decode; at eps 0 zero-threshold
			// decimation drops nothing, so the only reconstruction error
			// left is float32 rounding inside the forward/inverse lifting
			// cascade — a handful of ulps.
			fields, err := par.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			if len(fields) != len(g.Blocks) {
				t.Fatalf("decoded %d blocks, want %d", len(fields), len(g.Blocks))
			}
			for bi, b := range g.Blocks {
				for i := range fields[bi] {
					want := b.Data[i*physics.NQ+physics.QG]
					got := fields[bi][i]
					d := float64(got) - float64(want)
					if d < 0 {
						d = -d
					}
					if tc.eps == 0 {
						// Lossless up to float32 rounding in the lifting
						// cascade: 2^-18 relative (~64 ulps) plus a small
						// absolute floor for near-zero cells.
						tol := math.Abs(float64(want))*math.Pow(2, -18) + 1e-4
						if d > tol {
							t.Fatalf("block %d cell %d: lossless round trip %g vs %g (err %g > tol %g)",
								bi, i, got, want, d, tol)
						}
						continue
					}
					// The wavelet decimation error bound: a factor over
					// eps*scale covering accumulation across levels.
					if d > 8*tc.eps*scale {
						t.Fatalf("block %d cell %d: error %g exceeds bound %g", bi, i, d, 8*tc.eps*scale)
					}
				}
			}
		})
	}
}

// TestGoldenZerotree pins the embedded zerotree coder the same way: its
// stream for the corpus field is committed and must stay bitwise stable.
func TestGoldenZerotree(t *testing.T) {
	g := goldenGrid()
	field := make([]float32, 8*8*8)
	Gamma.Extract(g.Blocks[0], field)
	stream := ZerotreeEncode(append([]float32(nil), field...), 8, 1.0)
	path := filepath.Join("testdata", "golden", "zerotree_thr1.bin")
	if *updateGolden {
		if err := os.WriteFile(path, stream, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden blob missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatalf("zerotree stream diverged from the committed corpus (%d vs %d bytes) — regenerate with -update if intentional",
			len(stream), len(want))
	}
	if _, err := ZerotreeDecode(stream, 8, 1.0); err != nil {
		t.Fatalf("committed zerotree stream does not decode: %v", err)
	}
}
