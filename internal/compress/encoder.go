// Package compress implements the paper's wavelet-based data compression
// scheme (§5, Figure 3): per-block forward wavelet transform, threshold
// decimation of detail coefficients, and lossless encoding. Each block is
// an independent extract→FWT→decimate→encode task producing its own
// stream, slotted by block index — the unit the node worker pool
// parallelizes while keeping the bytes schedule-independent.
package compress

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
)

// Encoder is the lossless back-end applied to the decimated coefficient
// streams. The paper uses ZLIB (ref. [23]) and notes zerotree/SPIHT coders
// as alternatives; this package provides zlib and a zero-run-length coder
// specialized for decimated (sparse) data.
type Encoder interface {
	// Name identifies the encoder in dump headers.
	Name() string
	// Encode appends the compressed form of src to dst and returns it.
	Encode(dst, src []byte) ([]byte, error)
	// Decode appends the decompressed form of src to dst and returns it.
	Decode(dst, src []byte) ([]byte, error)
}

// NewEncoder returns the encoder registered under name ("zlib", "rle",
// "sig" or "huff").
func NewEncoder(name string) (Encoder, error) {
	switch name {
	case "zlib":
		return Zlib{}, nil
	case "rle":
		return RLE{}, nil
	case "sig":
		return Sig{}, nil
	case "huff":
		return Huff{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown encoder %q", name)
	}
}

// Zlib wraps the standard DEFLATE coder.
type Zlib struct{}

// Name implements Encoder.
func (Zlib) Name() string { return "zlib" }

// Encode implements Encoder.
func (Zlib) Encode(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := zlib.NewWriterLevel(&buf, zlib.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

// Decode implements Encoder.
func (Zlib) Decode(dst, src []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

// RLE is a byte-level zero-run-length coder: runs of zero bytes (dominant
// after decimation) are stored as a marker plus a varint length; literal
// stretches are stored verbatim with a varint length. It is much faster
// than zlib at lower compression rates — the trade-off space the paper's
// encoder choice discusses.
type RLE struct{}

// Name implements Encoder.
func (RLE) Name() string { return "rle" }

// Encode implements Encoder.
func (RLE) Encode(dst, src []byte) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(src) {
		if src[i] == 0 {
			j := i
			for j < len(src) && src[j] == 0 {
				j++
			}
			// Zero run: tag byte 0x00 + varint run length.
			dst = append(dst, 0)
			n := binary.PutUvarint(tmp[:], uint64(j-i))
			dst = append(dst, tmp[:n]...)
			i = j
			continue
		}
		j := i
		for j < len(src) && src[j] != 0 {
			j++
		}
		// Literal run: tag byte 0x01 + varint length + bytes.
		dst = append(dst, 1)
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, src[i:j]...)
		i = j
	}
	return dst, nil
}

// maxRLERun bounds a single decoded run. A corrupt varint could otherwise
// demand an arbitrarily large allocation (zero runs) or overflow the int
// conversion guarding the literal copy.
const maxRLERun = 1 << 30

// Decode implements Encoder.
func (RLE) Decode(dst, src []byte) ([]byte, error) {
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		runLen, n := binary.Uvarint(src[i:])
		if n <= 0 {
			return nil, fmt.Errorf("compress: corrupt RLE varint at %d", i)
		}
		if runLen > maxRLERun {
			return nil, fmt.Errorf("compress: RLE run length %d exceeds limit at %d", runLen, i)
		}
		i += n
		switch tag {
		case 0:
			dst = append(dst, make([]byte, runLen)...)
		case 1:
			if i+int(runLen) > len(src) {
				return nil, fmt.Errorf("compress: truncated RLE literal at %d", i)
			}
			dst = append(dst, src[i:i+int(runLen)]...)
			i += int(runLen)
		default:
			return nil, fmt.Errorf("compress: bad RLE tag %d at %d", tag, i-1)
		}
	}
	return dst, nil
}

// Sig is a significance-map coder specialized for decimated wavelet data
// on 4-byte word granularity: a bitmap marks nonzero words, followed by
// the packed nonzero words and the unaligned tail verbatim. It trades
// compression rate (no entropy coding of the survivors) for speed and
// total predictability — the same trade the paper discusses for zerotree
// and SPIHT alternatives to ZLIB.
type Sig struct{}

// Name implements Encoder.
func (Sig) Name() string { return "sig" }

// Encode implements Encoder.
func (Sig) Encode(dst, src []byte) ([]byte, error) {
	words := len(src) / 4
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(words))
	dst = append(dst, tmp[:n]...)
	bitmapStart := len(dst)
	dst = append(dst, make([]byte, (words+7)/8)...)
	for w := 0; w < words; w++ {
		word := src[4*w : 4*w+4]
		if word[0]|word[1]|word[2]|word[3] != 0 {
			dst[bitmapStart+w/8] |= 1 << uint(w%8)
			dst = append(dst, word...)
		}
	}
	// Unaligned tail bytes verbatim.
	dst = append(dst, src[4*words:]...)
	return dst, nil
}

// Decode implements Encoder.
func (Sig) Decode(dst, src []byte) ([]byte, error) {
	words64, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("compress: corrupt sig header")
	}
	src = src[n:]
	// A valid stream carries one bitmap bit per word, so the word count can
	// never exceed 8x the remaining bytes; this also keeps the int
	// conversion below from overflowing into a negative slice bound.
	if words64 > uint64(len(src))*8 {
		return nil, fmt.Errorf("compress: sig word count %d exceeds stream capacity", words64)
	}
	words := int(words64)
	bitmapLen := (words + 7) / 8
	if len(src) < bitmapLen {
		return nil, fmt.Errorf("compress: truncated sig bitmap")
	}
	bitmap := src[:bitmapLen]
	payload := src[bitmapLen:]
	for w := 0; w < words; w++ {
		if bitmap[w/8]&(1<<uint(w%8)) != 0 {
			if len(payload) < 4 {
				return nil, fmt.Errorf("compress: truncated sig payload")
			}
			dst = append(dst, payload[:4]...)
			payload = payload[4:]
		} else {
			dst = append(dst, 0, 0, 0, 0)
		}
	}
	return append(dst, payload...), nil
}
