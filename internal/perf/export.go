package perf

import "cubism/internal/telemetry"

// Export publishes the monitor's per-kernel statistics into the metrics
// registry as gauges — the live counterpart of the Table 3 columns: GFLOP/s,
// operational intensity (FLOP/B), total time, call count, share of kernel
// time, the (tmax-tmin)/tavg imbalance, and (when peakGFLOPS > 0) the
// fraction of nominal machine peak. Call it again to refresh the values;
// gauges are created on first use. A nil registry makes this a no-op.
func (m *Monitor) Export(reg *telemetry.Registry, peakGFLOPS float64) {
	if reg == nil {
		return
	}
	total := m.TotalDuration()
	for _, name := range m.Names() {
		st := m.Kernel(name).Stats()
		ls := telemetry.Labels{"kernel": name}
		reg.Gauge("mpcf_kernel_gflops",
			"kernel throughput in GFLOP/s", ls).Set(st.GFLOPS())
		reg.Gauge("mpcf_kernel_flop_per_byte",
			"kernel operational intensity", ls).Set(st.Intensity())
		reg.Gauge("mpcf_kernel_seconds_total",
			"accumulated kernel wall-clock seconds", ls).Set(st.Total.Seconds())
		reg.Gauge("mpcf_kernel_calls_total",
			"accumulated kernel invocations", ls).Set(float64(st.N))
		reg.Gauge("mpcf_kernel_imbalance",
			"(tmax-tmin)/tavg across kernel samples", ls).Set(st.Imbalance())
		share := 0.0
		if total > 0 {
			share = st.Total.Seconds() / total.Seconds()
		}
		reg.Gauge("mpcf_kernel_share",
			"kernel share of total kernel time", ls).Set(share)
		if peakGFLOPS > 0 {
			reg.Gauge("mpcf_kernel_peak_fraction",
				"kernel GFLOP/s over nominal machine peak", ls).Set(st.GFLOPS() / peakGFLOPS)
		}
	}
}
