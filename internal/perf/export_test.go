package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cubism/internal/telemetry"
)

// TestStatsZeroSamples pins the zero-sample contract: every derived
// quantity is zero, never garbage, before the first Record.
func TestStatsZeroSamples(t *testing.T) {
	m := NewMonitor()
	st := m.Kernel("RHS").Stats()
	if st.N != 0 || st.Min != 0 || st.Max != 0 || st.Total != 0 {
		t.Fatalf("zero-sample stats not zero: %+v", st)
	}
	if st.GFLOPS() != 0 || st.Intensity() != 0 || st.Imbalance() != 0 {
		t.Fatalf("zero-sample derived stats not zero: GFLOPS=%v OI=%v imb=%v",
			st.GFLOPS(), st.Intensity(), st.Imbalance())
	}
	if m.Share("RHS") != 0 {
		t.Fatalf("zero-sample share = %v", m.Share("RHS"))
	}
	// One sample: Min == Max == the sample, imbalance still zero (needs 2).
	m.Kernel("RHS").Record(Sample{Duration: time.Millisecond, FLOPs: 1e6, Bytes: 1e3})
	st = m.Kernel("RHS").Stats()
	if st.Min != time.Millisecond || st.Max != time.Millisecond {
		t.Fatalf("single-sample min/max wrong: %+v", st)
	}
	if st.Imbalance() != 0 {
		t.Fatalf("single-sample imbalance = %v, want 0", st.Imbalance())
	}
	// After Reset the zero-sample contract holds again.
	m.Kernel("RHS").Reset()
	st = m.Kernel("RHS").Stats()
	if st.N != 0 || st.Min != 0 || st.Max != 0 {
		t.Fatalf("post-reset stats not zero: %+v", st)
	}
}

// TestMonitorExport checks the perf -> telemetry bridge renders the
// Table 3 quantities as labelled gauges.
func TestMonitorExport(t *testing.T) {
	m := NewMonitor()
	m.Kernel("RHS").Record(Sample{Duration: 100 * time.Millisecond, FLOPs: 5e9, Bytes: 1e9})
	m.Kernel("UP").Record(Sample{Duration: 50 * time.Millisecond, FLOPs: 1e9, Bytes: 2e9})

	reg := telemetry.NewRegistry()
	m.Export(reg, 204.8)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`mpcf_kernel_gflops{kernel="RHS"} 50`,
		`mpcf_kernel_gflops{kernel="UP"} 20`,
		`mpcf_kernel_flop_per_byte{kernel="RHS"} 5`,
		`mpcf_kernel_flop_per_byte{kernel="UP"} 0.5`,
		`mpcf_kernel_calls_total{kernel="RHS"} 1`,
		`mpcf_kernel_peak_fraction{kernel="RHS"}`,
		`mpcf_kernel_share{kernel="RHS"}`,
		`mpcf_kernel_imbalance{kernel="RHS"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Refreshing after more samples must update, not duplicate, the gauges.
	m.Kernel("RHS").Record(Sample{Duration: 100 * time.Millisecond, FLOPs: 15e9, Bytes: 1e9})
	m.Export(reg, 0)
	buf.Reset()
	reg.WritePrometheus(&buf)
	out = buf.String()
	if !strings.Contains(out, `mpcf_kernel_gflops{kernel="RHS"} 100`) {
		t.Errorf("refresh did not update gauge:\n%s", out)
	}
	if strings.Count(out, `mpcf_kernel_gflops{kernel="RHS"}`) != 1 {
		t.Errorf("refresh duplicated gauge:\n%s", out)
	}
	// Export into a nil registry is a no-op.
	m.Export(nil, 0)
}
