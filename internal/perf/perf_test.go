package perf

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKernelStats(t *testing.T) {
	m := NewMonitor()
	k := m.Kernel("RHS")
	k.Record(Sample{Duration: 100 * time.Millisecond, FLOPs: 1e9, Bytes: 1e8})
	k.Record(Sample{Duration: 300 * time.Millisecond, FLOPs: 3e9, Bytes: 3e8})
	st := k.Stats()
	if st.N != 2 {
		t.Fatalf("N = %d", st.N)
	}
	if math.Abs(st.GFLOPS()-10) > 1e-9 {
		t.Errorf("GFLOPS = %g, want 10", st.GFLOPS())
	}
	if math.Abs(st.Intensity()-10) > 1e-9 {
		t.Errorf("Intensity = %g, want 10", st.Intensity())
	}
	if st.Min != 100*time.Millisecond || st.Max != 300*time.Millisecond {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
}

func TestImbalanceFormula(t *testing.T) {
	k := &Kernel{name: "x"}
	k.Record(Sample{Duration: 100 * time.Millisecond})
	k.Record(Sample{Duration: 200 * time.Millisecond})
	k.Record(Sample{Duration: 300 * time.Millisecond})
	// (tmax - tmin)/tavg = (0.3-0.1)/0.2 = 1.
	if got := k.Stats().Imbalance(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Imbalance = %g, want 1", got)
	}
}

func TestShares(t *testing.T) {
	m := NewMonitor()
	m.Kernel("RHS").Record(Sample{Duration: 900 * time.Millisecond})
	m.Kernel("UP").Record(Sample{Duration: 100 * time.Millisecond})
	if s := m.Share("RHS"); math.Abs(s-0.9) > 1e-9 {
		t.Errorf("RHS share = %g", s)
	}
	if s := m.Share("UP"); math.Abs(s-0.1) > 1e-9 {
		t.Errorf("UP share = %g", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := NewMonitor()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Kernel("K").Record(Sample{Duration: time.Millisecond, FLOPs: 1})
			}
		}()
	}
	wg.Wait()
	if st := m.Kernel("K").Stats(); st.N != 800 || st.TotalFLOP != 800 {
		t.Errorf("stats after concurrent recording: %+v", st)
	}
}

func TestReportContainsKernels(t *testing.T) {
	m := NewMonitor()
	m.Kernel("RHS").Record(Sample{Duration: time.Second, FLOPs: 5e9, Bytes: 1e8})
	r := m.Report()
	if !strings.Contains(r, "RHS") || !strings.Contains(r, "5.000") {
		t.Errorf("report missing content:\n%s", r)
	}
}

func TestResetAndNames(t *testing.T) {
	m := NewMonitor()
	m.Kernel("B").Record(Sample{Duration: time.Millisecond})
	m.Kernel("A").Record(Sample{Duration: time.Millisecond})
	names := m.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
	m.Kernel("A").Reset()
	if st := m.Kernel("A").Stats(); st.N != 0 {
		t.Errorf("after reset N = %d", st.N)
	}
}

func TestRecordSince(t *testing.T) {
	k := &Kernel{name: "x"}
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	k.RecordSince(start, 100, 10)
	st := k.Stats()
	if st.Total < 2*time.Millisecond {
		t.Errorf("recorded duration %v too small", st.Total)
	}
	if st.TotalFLOP != 100 || st.TotalByte != 10 {
		t.Errorf("counts: %+v", st)
	}
}
