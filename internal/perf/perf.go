// Package perf is the reproduction's stand-in for the IBM Hardware
// Performance Monitor (HPM) the paper uses to report weighted GFLOP/s.
//
// Kernels declare their floating-point operation count and off-chip byte
// traffic analytically (the counts are validated against the instruction
// audit in internal/core); perf combines those with wall-clock timings into
// GFLOP/s, operational intensity (FLOP/B) and peak fractions, and computes
// the work-imbalance statistic (tmax-tmin)/tavg used by Table 4.
package perf

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sample is one timed execution of a kernel with its operation counts.
type Sample struct {
	Duration time.Duration
	FLOPs    int64 // floating point operations performed
	Bytes    int64 // compulsory off-chip byte traffic
}

// Kernel accumulates samples for one named compute kernel (RHS, DT, UP, ...).
type Kernel struct {
	mu      sync.Mutex
	name    string
	samples []Sample
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// Record adds one sample.
func (k *Kernel) Record(s Sample) {
	k.mu.Lock()
	k.samples = append(k.samples, s)
	k.mu.Unlock()
}

// RecordSince is shorthand for recording a sample timed from start.
func (k *Kernel) RecordSince(start time.Time, flops, bytes int64) {
	k.Record(Sample{Duration: time.Since(start), FLOPs: flops, Bytes: bytes})
}

// Stats summarizes the accumulated samples of a kernel.
type Stats struct {
	Name      string
	N         int
	Total     time.Duration
	TotalFLOP int64
	TotalByte int64
	Min, Max  time.Duration
}

// GFLOPS returns throughput in billions of floating point ops per second.
func (s Stats) GFLOPS() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.TotalFLOP) / s.Total.Seconds() / 1e9
}

// Intensity returns the operational intensity in FLOP/Byte.
func (s Stats) Intensity() float64 {
	if s.TotalByte == 0 {
		return 0
	}
	return float64(s.TotalFLOP) / float64(s.TotalByte)
}

// Imbalance returns (tmax - tmin)/tavg over the samples, the statistic the
// paper reports for the compression stages (Table 4). It is zero when fewer
// than two samples exist.
func (s Stats) Imbalance() float64 {
	if s.N < 2 || s.Total <= 0 {
		return 0
	}
	avg := s.Total.Seconds() / float64(s.N)
	return (s.Max.Seconds() - s.Min.Seconds()) / avg
}

// Stats computes the summary of all recorded samples. With zero samples
// every field is zero — Min and Max in particular never carry garbage.
func (k *Kernel) Stats() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	st := Stats{Name: k.name, N: len(k.samples)}
	if len(k.samples) == 0 {
		return st
	}
	for i, s := range k.samples {
		st.Total += s.Duration
		st.TotalFLOP += s.FLOPs
		st.TotalByte += s.Bytes
		if i == 0 || s.Duration < st.Min {
			st.Min = s.Duration
		}
		if s.Duration > st.Max {
			st.Max = s.Duration
		}
	}
	return st
}

// Reset discards all samples.
func (k *Kernel) Reset() {
	k.mu.Lock()
	k.samples = k.samples[:0]
	k.mu.Unlock()
}

// Monitor is a registry of kernels, one per compute stage.
type Monitor struct {
	mu      sync.Mutex
	kernels map[string]*Kernel
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{kernels: make(map[string]*Kernel)}
}

// Kernel returns the kernel with the given name, creating it if needed.
func (m *Monitor) Kernel(name string) *Kernel {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.kernels[name]
	if !ok {
		k = &Kernel{name: name}
		m.kernels[name] = k
	}
	return k
}

// Names returns the registered kernel names, sorted.
func (m *Monitor) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.kernels))
	for n := range m.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalDuration sums the wall-clock time over all kernels.
func (m *Monitor) TotalDuration() time.Duration {
	var total time.Duration
	for _, n := range m.Names() {
		total += m.Kernel(n).Stats().Total
	}
	return total
}

// Share returns kernel time / total time across all kernels, in [0,1].
func (m *Monitor) Share(name string) float64 {
	total := m.TotalDuration()
	if total <= 0 {
		return 0
	}
	return m.Kernel(name).Stats().Total.Seconds() / total.Seconds()
}

// Report renders a fixed-width table of all kernels.
func (m *Monitor) Report() string {
	out := fmt.Sprintf("%-12s %10s %12s %12s %10s %8s\n",
		"kernel", "calls", "time", "GFLOP/s", "FLOP/B", "share")
	total := m.TotalDuration()
	for _, n := range m.Names() {
		st := m.Kernel(n).Stats()
		share := 0.0
		if total > 0 {
			share = st.Total.Seconds() / total.Seconds()
		}
		out += fmt.Sprintf("%-12s %10d %12s %12.3f %10.2f %7.1f%%\n",
			st.Name, st.N, st.Total.Round(time.Microsecond), st.GFLOPS(), st.Intensity(), 100*share)
	}
	return out
}
