package launch

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as a fake mpcf-sim: when MPCF_LAUNCH_PKG_HELPER is set,
// the test binary plays the child rank. The helper prints its own argv (so
// per-rank argument injection is observable), then either exits promptly
// (MPCF_HELPER_EXIT_FAST) or sleeps until signaled — SIGINT kills it with
// the default signal disposition, standing in for a rank that stops when
// the supervisor cancels the fleet.
func TestMain(m *testing.M) {
	if os.Getenv("MPCF_LAUNCH_PKG_HELPER") == "" {
		os.Exit(m.Run())
	}
	rank := -1
	for i, a := range os.Args {
		if a == "-rank" && i+1 < len(os.Args) {
			rank, _ = strconv.Atoi(os.Args[i+1])
		}
	}
	fmt.Printf("helper rank %d argv %s\n", rank, strings.Join(os.Args[1:], " "))
	if os.Getenv("MPCF_HELPER_EXIT_FAST") != "" {
		os.Exit(0)
	}
	time.Sleep(60 * time.Second)
	os.Exit(0)
}

// TestStartInjectsPerRankArgs: RankArgs must reach exactly the targeted
// rank — the hook the service uses to give only rank 0 a -step-log path.
func TestStartInjectsPerRankArgs(t *testing.T) {
	t.Setenv("MPCF_LAUNCH_PKG_HELPER", "1")
	t.Setenv("MPCF_HELPER_EXIT_FAST", "1")
	var out, errOut bytes.Buffer
	f, err := Start(Spec{
		N:      2,
		SimBin: os.Args[0],
		Args:   []string{"-steps", "3"},
		RankArgs: func(rank int) []string {
			if rank == 0 {
				return []string{"-step-log", "root-only.jsonl"}
			}
			return nil
		},
		Stdout: &out,
		Stderr: &errOut,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if code := f.Wait(); code != 0 {
		t.Fatalf("fleet exited %d\nstderr:\n%s", code, errOut.String())
	}
	lines := out.String()
	if !strings.Contains(lines, "[rank 0] helper rank 0") || !strings.Contains(lines, "[rank 1] helper rank 1") {
		t.Fatalf("missing prefixed helper output:\n%s", lines)
	}
	for _, line := range strings.Split(strings.TrimSpace(lines), "\n") {
		hasLog := strings.Contains(line, "-step-log root-only.jsonl")
		switch {
		case strings.HasPrefix(line, "[rank 0]") && !hasLog:
			t.Fatalf("rank 0 did not receive its per-rank args: %s", line)
		case strings.HasPrefix(line, "[rank 1]") && hasLog:
			t.Fatalf("rank 1 received rank 0's per-rank args: %s", line)
		}
	}
	if !strings.Contains(lines, "-ranks 2,1,1") {
		t.Fatalf("default -ranks triple was not injected:\n%s", lines)
	}
}

// TestInterruptCancelsHangingFleet: a supervisor cancel must tear down
// ranks that would otherwise run forever, and Wait must return promptly.
func TestInterruptCancelsHangingFleet(t *testing.T) {
	t.Setenv("MPCF_LAUNCH_PKG_HELPER", "1")
	var out, errOut bytes.Buffer
	f, err := Start(Spec{N: 2, SimBin: os.Args[0], Stdout: &out, Stderr: &errOut})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	done := make(chan int, 1)
	go func() { done <- f.Wait() }()
	// Give the ranks a moment to start, then cancel.
	time.Sleep(200 * time.Millisecond)
	f.Interrupt()
	select {
	case code := <-done:
		if code == 0 {
			t.Fatalf("interrupted fleet reported success; want the interrupted ranks' non-zero code")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait did not return after Interrupt: the cascade kill is broken")
	}
}

// TestStartRejectsRankMismatch: spec validation errors carry ErrUsage and
// surface before any process starts.
func TestStartRejectsRankMismatch(t *testing.T) {
	var out, errOut bytes.Buffer
	code := Run(Spec{N: 2, SimBin: os.Args[0], Args: []string{"-ranks", "2,2,1"},
		Stdout: &out, Stderr: &errOut})
	if code != 2 {
		t.Fatalf("rank mismatch returned %d, want usage code 2", code)
	}
	if !strings.Contains(errOut.String(), "does not match") {
		t.Fatalf("usage error does not explain the mismatch:\n%s", errOut.String())
	}
}
