// Package launch forks and supervises local rank fleets: N mpcf-sim
// processes over the tcp transport with the per-rank flags injected
// (-transport tcp -rank i -coord), output multiplexed with [rank i]
// prefixes, and first-failure kill semantics — a minimal local mpirun,
// importable so the job service (internal/service) and the CLI wrapper
// (cmd/mpcf-launch) share one fleet-spawning path.
//
// The lifecycle is split into Start (fork the ranks) and (*Fleet).Wait
// (collect the verdict), so a supervisor can cancel a running fleet with
// Interrupt — the same polite-SIGINT-then-SIGKILL cascade a rank failure
// triggers — while Wait is pending. Run is the one-shot convenience the
// CLI uses.
package launch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrUsage marks spec validation failures (bad rank count, mismatched
// -ranks triple) so the CLI can map them to its usage exit code 2, apart
// from environmental failures (exit 1).
var ErrUsage = errors.New("usage")

// KillGrace is how long the cascade kill waits between the polite SIGINT
// (which lets mpcf-sim flush its telemetry buffers and write a final
// checkpoint, leaving usable partial artifacts) and the SIGKILL escalation
// for ranks that ignore it.
const KillGrace = 2 * time.Second

// Spec describes one fleet launch.
type Spec struct {
	// N is the number of ranks (local processes). The -ranks triple in
	// Args must multiply to N; when absent, "-ranks N,1,1" is injected.
	N int
	// SimBin is the mpcf-sim binary ("" resolves a sibling of this
	// executable, falling back to PATH lookup).
	SimBin string
	// Args is passed to every rank verbatim, after the injected
	// per-rank transport flags.
	Args []string
	// RankArgs (optional) returns extra arguments for one specific rank,
	// appended after Args — how a supervisor gives each rank its own
	// -step-log path, or only rank 0 an -observables path. Beware that
	// telemetry flags (-step-log, -trace, -telemetry-addr) change a
	// rank's collective schedule and must be attached uniformly across
	// the fleet (see internal/sim's imbalance statistic).
	RankArgs func(rank int) []string
	// Stdout receives the [rank i]-prefixed output mux; Stderr receives
	// launcher diagnostics. Either nil defaults to the os stream.
	Stdout, Stderr io.Writer
	// KillGrace overrides the SIGINT→SIGKILL escalation delay for this
	// fleet (0: the package KillGrace constant). A supervisor that grants
	// its ranks a longer -stop-grace must stretch this past it, or the
	// SIGKILL lands before the ranks reach their stop boundary.
	KillGrace time.Duration
}

// Fleet is a running set of rank processes.
type Fleet struct {
	stderr    io.Writer
	killGrace time.Duration

	// outMu serializes every line the fleet writes to the caller's Stdout
	// and Stderr: the per-rank pump and exit goroutines write concurrently,
	// and the writers the supervisor passes in need not be thread-safe.
	outMu sync.Mutex

	// mu guards procs/aborted: the launch loop appends while rank-exit
	// goroutines may already be cascading a kill.
	mu      sync.Mutex
	procs   []*exec.Cmd
	aborted bool

	failOnce sync.Once
	failCode int

	procWG sync.WaitGroup
	outWG  sync.WaitGroup
}

// Start validates the spec, forks the ranks and returns the live fleet.
// Errors before any rank starts (bad spec, unreservable coordinator port)
// are returned directly; a rank that fails after starting is handled by
// the first-failure cascade and reported by Wait.
func Start(spec Spec) (*Fleet, error) {
	if spec.Stdout == nil {
		spec.Stdout = os.Stdout
	}
	if spec.Stderr == nil {
		spec.Stderr = os.Stderr
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("launch: rank count %d must be positive: %w", spec.N, ErrUsage)
	}
	args := spec.Args
	// Validate or inject the -ranks decomposition: its product must be N.
	if prod, ok := RanksProduct(args); !ok {
		args = append(append([]string(nil), args...), "-ranks", fmt.Sprintf("%d,1,1", spec.N))
	} else if prod != spec.N {
		return nil, fmt.Errorf("launch: -ranks product %d does not match rank count %d: %w", prod, spec.N, ErrUsage)
	}
	bin := spec.SimBin
	if bin == "" {
		bin = SiblingOrPath("mpcf-sim")
	}

	// Bind the coordinator port here: rank 0 could race another launcher if
	// it picked its own. The listener is closed and the address re-bound by
	// rank 0; the window is tiny and a stolen port fails loudly at dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("launch: reserving coordinator port: %w", err)
	}
	coord := ln.Addr().String()
	ln.Close()

	f := &Fleet{stderr: spec.Stderr, killGrace: spec.KillGrace}
	if f.killGrace <= 0 {
		f.killGrace = KillGrace
	}
	for r := 0; r < spec.N; r++ {
		rankArgs := append([]string{
			"-transport", "tcp",
			"-rank", strconv.Itoa(r),
			"-coord", coord,
		}, args...)
		if spec.RankArgs != nil {
			rankArgs = append(rankArgs, spec.RankArgs(r)...)
		}
		cmd := exec.Command(bin, rankArgs...)
		pipe, err := cmd.StdoutPipe()
		if err == nil {
			cmd.Stderr = cmd.Stdout // one interleave-safe stream per rank
		}
		if err != nil {
			f.printf(spec.Stderr, "launch: rank %d pipe: %v\n", r, err)
			f.fail(1)
			break
		}
		f.mu.Lock()
		if f.aborted {
			f.mu.Unlock()
			break
		}
		if err := cmd.Start(); err != nil {
			f.mu.Unlock()
			f.printf(spec.Stderr, "launch: rank %d start: %v\n", r, err)
			f.fail(1)
			break
		}
		f.procs = append(f.procs, cmd)
		f.mu.Unlock()
		outDone := make(chan struct{})
		f.outWG.Add(1)
		go func(r int, pipe io.Reader) {
			defer close(outDone)
			f.prefixCopy(spec.Stdout, r, pipe)
		}(r, pipe)
		f.procWG.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer f.procWG.Done()
			// cmd.Wait closes the read end of the stdout pipe, so it must
			// not race the output pump: a rank that exits quickly would
			// have its tail silently dropped by the closed pipe. The pump
			// sees EOF once the rank (killed or exited) releases the write
			// end, so waiting for it first cannot hang.
			<-outDone
			err := cmd.Wait()
			code := 0
			if err != nil {
				code = 1
				if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
					code = ee.ExitCode()
				}
			}
			if code != 0 {
				f.printf(spec.Stderr, "[rank %d] exited with code %d\n", r, code)
				f.fail(code) // a dead rank wedges the others; fail fast
			}
		}(r, cmd)
	}
	return f, nil
}

// printf writes one message under the fleet's output lock.
func (f *Fleet) printf(w io.Writer, format string, args ...any) {
	f.outMu.Lock()
	defer f.outMu.Unlock()
	fmt.Fprintf(w, format, args...)
}

// fail records the FIRST failure observed, exactly once, before the
// cascade kill: the ranks killed by the cascade die with -1 (signal) and
// must not shadow the real failing code.
func (f *Fleet) fail(code int) {
	f.failOnce.Do(func() { f.failCode = code })
	f.killAll()
}

// killAll interrupts every rank, then kills the stragglers after the
// fleet's kill grace. Interrupt first so the ranks can stop at a step
// boundary and flush trace and step-log buffers on the way down.
// Signaling an already-exited process just returns an error, which is
// fine to drop.
func (f *Fleet) killAll() {
	f.mu.Lock()
	f.aborted = true
	targets := append([]*exec.Cmd(nil), f.procs...)
	f.mu.Unlock()
	for _, p := range targets {
		if p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	go func() {
		time.Sleep(f.killGrace)
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, p := range f.procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
	}()
}

// Interrupt cancels the fleet cooperatively: every rank gets SIGINT (ranks
// stop at the next step boundary, write their final checkpoint when
// configured, and flush telemetry), with the SIGKILL escalation after
// KillGrace for ranks that ignore it. Wait still returns the first
// recorded verdict; a fleet that only died from this cancellation reports
// the interrupted ranks' exit code.
func (f *Fleet) Interrupt() { f.killAll() }

// Kill force-kills every rank immediately, skipping the polite phase.
func (f *Fleet) Kill() {
	f.mu.Lock()
	f.aborted = true
	targets := append([]*exec.Cmd(nil), f.procs...)
	f.mu.Unlock()
	for _, p := range targets {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
}

// Wait blocks until every rank exited and the output mux drained, and
// returns the first failing rank's exit code (normalized: a signal death
// counts as 1), or 0 when every rank succeeded.
func (f *Fleet) Wait() int {
	f.procWG.Wait()
	f.outWG.Wait()
	return f.failCode
}

// Run is Start + Wait: the one-shot path of the CLI wrapper. Spec errors
// return the usage exit code 2.
func Run(spec Spec) int {
	f, err := Start(spec)
	if err != nil {
		stderr := spec.Stderr
		if stderr == nil {
			stderr = os.Stderr
		}
		fmt.Fprintf(stderr, "mpcf-launch: %v\n", err)
		if errors.Is(err, ErrUsage) {
			return 2
		}
		return 1
	}
	return f.Wait()
}

// prefixCopy copies r's output line by line with a "[rank i]" prefix, so
// interleaved output from concurrent ranks stays attributable.
func (f *Fleet) prefixCopy(w io.Writer, rank int, r io.Reader) {
	defer f.outWG.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		f.printf(w, "[rank %d] %s\n", rank, sc.Text())
	}
}

// RanksProduct scans args for -ranks/--ranks and returns the product of
// the decomposition triple (single value = cube shorthand, as mpcf-sim
// parses it).
func RanksProduct(args []string) (int, bool) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		var val string
		switch {
		case a == "-ranks" || a == "--ranks":
			if i+1 >= len(args) {
				return 0, false
			}
			val = args[i+1]
		case strings.HasPrefix(a, "-ranks="):
			val = strings.TrimPrefix(a, "-ranks=")
		case strings.HasPrefix(a, "--ranks="):
			val = strings.TrimPrefix(a, "--ranks=")
		default:
			continue
		}
		parts := strings.Split(val, ",")
		if len(parts) == 1 {
			parts = []string{parts[0], parts[0], parts[0]}
		}
		prod := 1
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return 0, false
			}
			prod *= v
		}
		return prod, true
	}
	return 0, false
}

// SiblingOrPath prefers a binary sitting next to this executable (the
// common "make bin" layout), falling back to PATH lookup.
func SiblingOrPath(name string) string {
	if self, err := os.Executable(); err == nil {
		if i := strings.LastIndexByte(self, '/'); i >= 0 {
			sib := self[:i+1] + name
			if st, err := os.Stat(sib); err == nil && !st.IsDir() {
				return sib
			}
		}
	}
	return name
}
