package layout

import (
	"testing"

	"cubism/internal/grid"
	"cubism/internal/sfc"
)

func TestOwnerMatchesBlocksExactlyOnce(t *testing.T) {
	for _, name := range []string{"cartesian", "hilbert", "morton", "rowmajor"} {
		rankDims := [3]int{2, 2, 1}
		blockDims := [3]int{2, 1, 2}
		l := MustNew(name, rankDims, blockDims, 4, [3]bool{})
		seen := make(map[[3]int]int)
		for r := 0; r < l.NRanks; r++ {
			for _, c := range l.Blocks(r) {
				seen[c]++
				if own := l.Owner(c); own != r {
					t.Errorf("%s: Blocks(%d) yields %v but Owner says rank %d", name, r, c, own)
				}
			}
		}
		if len(seen) != l.TotalBlocks() {
			t.Errorf("%s: %d distinct blocks owned, want %d", name, len(seen), l.TotalBlocks())
		}
		for c, cnt := range seen {
			if cnt != 1 {
				t.Errorf("%s: block %v owned %d times", name, c, cnt)
			}
		}
	}
}

// TestCartesianPreservesHistoricalOrder pins the degenerate layout to the
// pre-layout-layer decomposition: rank r owns its cartesian box, enumerated
// along sfc.ForBox of the per-rank block dims — the order every existing
// checkpoint and dump on disk was serialized in.
func TestCartesianPreservesHistoricalOrder(t *testing.T) {
	rankDims := [3]int{2, 1, 1}
	blockDims := [3]int{2, 2, 2}
	l := MustNew("cartesian", rankDims, blockDims, 2, [3]bool{})
	for r := 0; r < 2; r++ {
		rx := r % rankDims[0]
		local := sfc.Enumerate(sfc.ForBox(2, 2, 2), 2, 2, 2)
		got := l.Blocks(r)
		if len(got) != len(local) {
			t.Fatalf("rank %d owns %d blocks, want %d", r, len(got), len(local))
		}
		for i, c := range local {
			want := [3]int{rx*2 + c[0], c[1], c[2]}
			if got[i] != want {
				t.Fatalf("rank %d block %d: got %v want %v", r, i, got[i], want)
			}
		}
	}
}

func TestSFCChunksContiguousOnCurve(t *testing.T) {
	l := MustNew("hilbert", [3]int{2, 2, 2}, [3]int{2, 2, 2}, 8, [3]bool{})
	order := sfc.Enumerate(l.curve, l.GB[0], l.GB[1], l.GB[2])
	i := 0
	for r := 0; r < l.NRanks; r++ {
		for _, c := range l.Blocks(r) {
			if c != order[i] {
				t.Fatalf("rank %d: curve position %d holds %v, want %v", r, i, c, order[i])
			}
			i++
		}
	}
}

func TestLinearIDRoundTrip(t *testing.T) {
	l := MustNew("hilbert", [3]int{2, 2, 1}, [3]int{2, 3, 4}, 4, [3]bool{})
	seen := make(map[int64]bool)
	for z := 0; z < l.GB[2]; z++ {
		for y := 0; y < l.GB[1]; y++ {
			for x := 0; x < l.GB[0]; x++ {
				c := [3]int{x, y, z}
				id := l.LinearID(c)
				if seen[id] {
					t.Fatalf("duplicate linear id %d", id)
				}
				seen[id] = true
				if got := l.CoordsOf(id); got != c {
					t.Fatalf("CoordsOf(LinearID(%v)) = %v", c, got)
				}
			}
		}
	}
}

func TestNeighborTopology(t *testing.T) {
	l := MustNew("cartesian", [3]int{2, 1, 1}, [3]int{2, 2, 2}, 2, [3]bool{true, false, false})
	// Interior adjacency.
	if nc, ok := l.Neighbor([3]int{1, 0, 0}, grid.XHi); !ok || nc != ([3]int{2, 0, 0}) {
		t.Fatalf("XHi neighbor of (1,0,0): got %v ok=%v", nc, ok)
	}
	// Periodic wrap on x.
	if nc, ok := l.Neighbor([3]int{3, 0, 0}, grid.XHi); !ok || nc != ([3]int{0, 0, 0}) {
		t.Fatalf("periodic XHi wrap: got %v ok=%v", nc, ok)
	}
	// Non-periodic boundary on y.
	if _, ok := l.Neighbor([3]int{0, 0, 0}, grid.YLo); ok {
		t.Fatal("YLo at the domain boundary should have no neighbor")
	}
}

func TestWithCutsMovesOwnership(t *testing.T) {
	l := MustNew("hilbert", [3]int{2, 1, 1}, [3]int{2, 2, 2}, 2, [3]bool{})
	total := l.TotalBlocks()
	if l.Cuts[1] != total/2 {
		t.Fatalf("uniform cuts: got %v", l.Cuts)
	}
	skew := l.WithCuts([]int{0, 2, total})
	if n0 := len(skew.Blocks(0)); n0 != 2 {
		t.Fatalf("skewed rank 0 owns %d blocks, want 2", n0)
	}
	moved := Diff(l, skew)
	if moved != total/2-2 {
		t.Fatalf("Diff = %d, want %d", moved, total/2-2)
	}
	// The original is untouched.
	if len(l.Blocks(0)) != total/2 {
		t.Fatal("WithCuts mutated its receiver")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New("hilbert", [3]int{2, 1, 1}, [3]int{2, 2, 2}, 3, [3]bool{}); err == nil {
		t.Error("world size mismatch accepted")
	}
	if _, err := New("zigzag", [3]int{1, 1, 1}, [3]int{2, 2, 2}, 1, [3]bool{}); err == nil {
		t.Error("unknown layout name accepted")
	}
	if _, err := New("morton", [3]int{0, 1, 1}, [3]int{2, 2, 2}, 0, [3]bool{}); err == nil {
		t.Error("zero rank dims accepted")
	}
}

func TestCartesianOwnerMatchesRankFormula(t *testing.T) {
	rankDims := [3]int{2, 3, 2}
	blockDims := [3]int{1, 2, 1}
	l := MustNew("cartesian", rankDims, blockDims, 12, [3]bool{})
	for rz := 0; rz < rankDims[2]; rz++ {
		for ry := 0; ry < rankDims[1]; ry++ {
			for rx := 0; rx < rankDims[0]; rx++ {
				want := (rz*rankDims[1]+ry)*rankDims[0] + rx // mpi.Cart's x-fastest mapping
				c := [3]int{rx * blockDims[0], ry * blockDims[1], rz * blockDims[2]}
				if got := l.Owner(c); got != want {
					t.Fatalf("block %v: owner %d, want %d", c, got, want)
				}
			}
		}
	}
}
