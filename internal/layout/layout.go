// Package layout owns the cross-rank block decomposition: a global index of
// all blocks in the simulation, an Owner(block) → rank map every rank
// derives identically, and the per-rank block enumeration the grid layer
// allocates from.
//
// Two families of layouts exist. The cartesian layout is the paper's
// decomposition — a fixed grid of ranks, each owning an identical box of
// blocks — and is the degenerate case every pre-existing configuration maps
// onto bit-for-bit. The SFC layouts (hilbert, morton, rowmajor) enumerate
// the global block box along a space-filling curve and split the curve into
// contiguous chunks, one per rank (internal/sfc.Partition); because a chunk
// boundary can fall anywhere along the curve, a block's six face-neighbors
// may live on any rank, and because the chunks are just cut points, the
// rebalancer can move them at run time (WithCuts) without touching the
// curve itself.
//
// Every constructor is deterministic: ranks build their own Layout from the
// shared configuration and agree on ownership without communication.
package layout

import (
	"fmt"

	"cubism/internal/grid"
	"cubism/internal/sfc"
)

// Cartesian is the Name of the degenerate fixed-rank-grid layout.
const Cartesian = "cartesian"

// Layout is an immutable assignment of every block in the global
// RankDims·BlockDims box to a rank.
type Layout struct {
	// Name is "cartesian" or the SFC curve name ("hilbert", "morton",
	// "rowmajor").
	Name string
	// GB is the global block box: RankDims[i]*BlockDims[i] per dimension.
	GB [3]int
	// NRanks is the world size the layout partitions over.
	NRanks int
	// RankDims and BlockDims carry the configured cartesian shape; SFC
	// layouts use them only to derive GB and NRanks.
	RankDims, BlockDims [3]int
	// Periodic marks the axes with periodic boundary conditions, which wrap
	// the face-neighbor topology.
	Periodic [3]bool
	// Cuts are the curve cut points of an SFC layout (len NRanks+1): rank r
	// owns curve positions [Cuts[r], Cuts[r+1]). Nil for cartesian.
	Cuts []int

	curve sfc.Curve
	order [][3]int       // global curve enumeration (SFC layouts; nil for cartesian)
	pos   map[[3]int]int // block coords → curve ordinal (SFC layouts)
}

// New builds the named layout. name "" or "cartesian" yields the cartesian
// layout; "hilbert", "morton" and "rowmajor" yield SFC layouts with uniform
// cut points. nranks must equal the RankDims product.
func New(name string, rankDims, blockDims [3]int, nranks int, periodic [3]bool) (*Layout, error) {
	for a := 0; a < 3; a++ {
		if rankDims[a] <= 0 || blockDims[a] <= 0 {
			return nil, fmt.Errorf("layout: invalid dims (ranks %v, blocks %v)", rankDims, blockDims)
		}
	}
	if want := rankDims[0] * rankDims[1] * rankDims[2]; want != nranks {
		return nil, fmt.Errorf("layout: rank dims %v incompatible with world size %d", rankDims, nranks)
	}
	gb := [3]int{rankDims[0] * blockDims[0], rankDims[1] * blockDims[1], rankDims[2] * blockDims[2]}
	l := &Layout{
		Name:      name,
		GB:        gb,
		NRanks:    nranks,
		RankDims:  rankDims,
		BlockDims: blockDims,
		Periodic:  periodic,
	}
	switch name {
	case "", Cartesian:
		l.Name = Cartesian
		return l, nil
	case "hilbert", "morton":
		// Power-of-two cube curves cover any smaller box via Enumerate.
		edge := 1
		bits := uint(0)
		for edge < gb[0] || edge < gb[1] || edge < gb[2] {
			edge <<= 1
			bits++
		}
		if bits == 0 {
			bits = 1
		}
		if name == "hilbert" {
			l.curve = sfc.Hilbert{Bits: bits}
		} else {
			l.curve = sfc.Morton{Bits: bits}
		}
	case "rowmajor":
		l.curve = sfc.RowMajor{NX: gb[0], NY: gb[1], NZ: gb[2]}
	default:
		return nil, fmt.Errorf("layout: unknown layout %q (want cartesian, hilbert, morton or rowmajor)", name)
	}
	l.order = sfc.Enumerate(l.curve, gb[0], gb[1], gb[2])
	l.pos = make(map[[3]int]int, len(l.order))
	for i, c := range l.order {
		l.pos[c] = i
	}
	l.Cuts = sfc.Partition(l.curve, gb[0], gb[1], gb[2], nranks)
	return l, nil
}

// MustNew is New for statically valid configurations.
func MustNew(name string, rankDims, blockDims [3]int, nranks int, periodic [3]bool) *Layout {
	l, err := New(name, rankDims, blockDims, nranks, periodic)
	if err != nil {
		panic(err)
	}
	return l
}

// CanRebalance reports whether the layout supports moving its cut points
// (true for SFC layouts; the cartesian layout has no cuts to move).
func (l *Layout) CanRebalance() bool { return l.curve != nil }

// WithCuts returns a copy of an SFC layout with the given curve cut points
// (len NRanks+1, monotone, spanning the full curve). The curve, order and
// coordinate tables are shared — cut points are the only mutable part of a
// layout, which is exactly what block migration exploits.
func (l *Layout) WithCuts(cuts []int) *Layout {
	if !l.CanRebalance() {
		panic("layout: cartesian layout has no curve cuts")
	}
	if len(cuts) != l.NRanks+1 || cuts[0] != 0 || cuts[l.NRanks] != len(l.order) {
		panic(fmt.Sprintf("layout: invalid cuts %v for %d blocks over %d ranks", cuts, len(l.order), l.NRanks))
	}
	for r := 0; r < l.NRanks; r++ {
		if cuts[r+1] <= cuts[r] {
			panic(fmt.Sprintf("layout: empty chunk %d in cuts %v", r, cuts))
		}
	}
	nl := *l
	nl.Cuts = append([]int(nil), cuts...)
	return &nl
}

// TotalBlocks returns the global block count.
func (l *Layout) TotalBlocks() int { return l.GB[0] * l.GB[1] * l.GB[2] }

// InBox reports whether block coordinates lie inside the global box.
func (l *Layout) InBox(c [3]int) bool {
	return c[0] >= 0 && c[0] < l.GB[0] && c[1] >= 0 && c[1] < l.GB[1] && c[2] >= 0 && c[2] < l.GB[2]
}

// Owner returns the rank owning block c. Every rank computes the identical
// answer from its own copy of the layout.
func (l *Layout) Owner(c [3]int) int {
	if !l.InBox(c) {
		panic(fmt.Sprintf("layout: block %v outside global box %v", c, l.GB))
	}
	if l.curve == nil {
		rx, ry, rz := c[0]/l.BlockDims[0], c[1]/l.BlockDims[1], c[2]/l.BlockDims[2]
		return (rz*l.RankDims[1]+ry)*l.RankDims[0] + rx
	}
	p := l.pos[c]
	// Binary search the cut table: the rank whose [Cuts[r], Cuts[r+1])
	// chunk holds p.
	lo, hi := 0, l.NRanks-1
	for lo < hi {
		mid := (lo + hi) / 2
		if l.Cuts[mid+1] <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Blocks returns the block coordinates rank owns, in the exact order the
// rank-local grid allocates and every on-disk payload (checkpoint, dump)
// serializes. For the cartesian layout this is the historical order — the
// rank's own box enumerated along sfc.ForBox(BlockDims) — so existing
// single- and multi-rank configurations keep their bitwise file layouts.
// For SFC layouts it is the rank's contiguous chunk of the global curve.
func (l *Layout) Blocks(rank int) [][3]int {
	if rank < 0 || rank >= l.NRanks {
		panic(fmt.Sprintf("layout: rank %d outside world of %d", rank, l.NRanks))
	}
	if l.curve == nil {
		rx := rank % l.RankDims[0]
		ry := (rank / l.RankDims[0]) % l.RankDims[1]
		rz := rank / (l.RankDims[0] * l.RankDims[1])
		bd := l.BlockDims
		local := sfc.Enumerate(sfc.ForBox(bd[0], bd[1], bd[2]), bd[0], bd[1], bd[2])
		out := make([][3]int, len(local))
		for i, c := range local {
			out[i] = [3]int{rx*bd[0] + c[0], ry*bd[1] + c[1], rz*bd[2] + c[2]}
		}
		return out
	}
	return append([][3]int(nil), l.order[l.Cuts[rank]:l.Cuts[rank+1]]...)
}

// LinearID returns the canonical, layout-independent identifier of a block:
// its row-major position in the global box. Message tags, checkpoint block
// tables and the canonical reduction order all key on it, so two ranks with
// different layouts (or the same rank before and after a migration) always
// agree on what a block is called.
func (l *Layout) LinearID(c [3]int) int64 {
	if !l.InBox(c) {
		panic(fmt.Sprintf("layout: block %v outside global box %v", c, l.GB))
	}
	return int64((c[2]*l.GB[1]+c[1])*l.GB[0] + c[0])
}

// CoordsOf inverts LinearID.
func (l *Layout) CoordsOf(id int64) [3]int {
	if id < 0 || id >= int64(l.TotalBlocks()) {
		panic(fmt.Sprintf("layout: block id %d outside global box %v", id, l.GB))
	}
	i := int(id)
	x := i % l.GB[0]
	i /= l.GB[0]
	return [3]int{x, i % l.GB[1], i / l.GB[1]}
}

// Neighbor returns the block adjacent to c through face f, wrapping on
// periodic axes. ok is false when the face is a non-periodic domain
// boundary (the ghost cells come from the physical BC instead).
func (l *Layout) Neighbor(c [3]int, f grid.Face) (nc [3]int, ok bool) {
	nc = c
	a := f.Axis()
	if f.IsHigh() {
		nc[a]++
	} else {
		nc[a]--
	}
	if nc[a] < 0 || nc[a] >= l.GB[a] {
		if !l.Periodic[a] {
			return nc, false
		}
		nc[a] = (nc[a] + l.GB[a]) % l.GB[a]
	}
	return nc, true
}

// Diff counts the blocks whose owner differs between two layouts over the
// same global box — the global migration volume of a cut move.
func Diff(a, b *Layout) int {
	if a.GB != b.GB {
		panic(fmt.Sprintf("layout: diff across different boxes %v vs %v", a.GB, b.GB))
	}
	moved := 0
	for z := 0; z < a.GB[2]; z++ {
		for y := 0; y < a.GB[1]; y++ {
			for x := 0; x < a.GB[0]; x++ {
				c := [3]int{x, y, z}
				if a.Owner(c) != b.Owner(c) {
					moved++
				}
			}
		}
	}
	return moved
}
