package transport

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosTCPOptions are aggressive-recovery settings for fault tests: tight
// retransmit/peer deadlines so recovery (or detection) happens in test time.
func chaosTCPOptions(rank, size int, coord string) TCPOptions {
	return TCPOptions{
		Rank: rank, Size: size, Coord: coord,
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		PeerTimeout:       8 * time.Second,
		RetransmitTimeout: 150 * time.Millisecond,
	}
}

// makeTCPWith builds a loopback mesh with per-rank option customization.
func makeTCPWith(t *testing.T, size int, custom func(rank int, o *TCPOptions)) *mesh {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := &mesh{eps: make([]Endpoint, size), cols: make([]*collector, size)}
	coord := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		col := newCollector()
		m.cols[r] = col
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opts := chaosTCPOptions(rank, size, coord)
			if rank == 0 {
				opts.CoordListener = ln
			}
			if custom != nil {
				custom(rank, &opts)
			}
			m.eps[rank], errs[rank] = DialTCP(opts, col.handle)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return m
}

// resetEveryN injects a connection reset on every nth data frame, capped.
type resetEveryN struct {
	n   int
	max int32
	cnt atomic.Int32
	hit atomic.Int32
}

func (f *resetEveryN) Outgoing(dst, tag, size int) FaultDecision {
	if f.cnt.Add(1)%int32(f.n) == 0 && f.hit.Load() < f.max {
		f.hit.Add(1)
		return FaultDecision{Action: FaultReset}
	}
	return FaultDecision{}
}

// TestTCPReconnectAfterReset proves an injected mid-stream connection reset
// is invisible above the transport: every frame sent across repeated resets
// arrives exactly once, in order.
func TestTCPReconnectAfterReset(t *testing.T) {
	inj := &resetEveryN{n: 40, max: 8}
	m := makeTCPWith(t, 2, func(rank int, o *TCPOptions) {
		if rank == 0 {
			o.Fault = inj
		}
		o.OnError = func(err error) { t.Errorf("rank %d wire: %v", rank, err) }
	})
	const n = 400
	for i := 0; i < n; i++ {
		if err := m.eps[0].Send(1, 5, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	m.cols[1].waitN(t, n)
	for i, f := range m.cols[1].frames {
		if got := int(f.payload[0]) | int(f.payload[1])<<8; got != i {
			t.Fatalf("frame %d carried sequence %d after resets", i, got)
		}
	}
	if inj.hit.Load() == 0 {
		t.Fatal("no resets were injected; the test exercised nothing")
	}
	m.close(t)
}

// dropEveryN drops every nth data frame, capped.
type dropEveryN struct {
	n   int
	max int32
	cnt atomic.Int32
	hit atomic.Int32
}

func (f *dropEveryN) Outgoing(dst, tag, size int) FaultDecision {
	if f.cnt.Add(1)%int32(f.n) == 0 && f.hit.Load() < f.max {
		f.hit.Add(1)
		return FaultDecision{Action: FaultDrop}
	}
	return FaultDecision{}
}

// TestTCPTailDropRecoveredByStall drops the final frame of a burst — no
// later traffic creates a sequence gap, so only the sender-side ack-stall
// check can notice. Recovery must still deliver it.
func TestTCPTailDropRecoveredByStall(t *testing.T) {
	inj := &dropEveryN{n: 10, max: 1} // drops exactly frame #10 of 10
	m := makeTCPWith(t, 2, func(rank int, o *TCPOptions) {
		if rank == 0 {
			o.Fault = inj
		}
		o.OnError = func(err error) { t.Errorf("rank %d wire: %v", rank, err) }
	})
	const n = 10
	for i := 0; i < n; i++ {
		if err := m.eps[0].Send(1, 3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.cols[1].waitN(t, n)
	if inj.hit.Load() != 1 {
		t.Fatalf("expected exactly one drop, injected %d", inj.hit.Load())
	}
	for i, f := range m.cols[1].frames {
		if int(f.payload[0]) != i {
			t.Fatalf("frame %d carried %d after tail-drop recovery", i, f.payload[0])
		}
	}
	m.close(t)
}

// TestTCPPeerAbortEscalates kills one rank without FIN (a crash) and
// requires the survivor to detect the failure and surface it through
// OnError — once — instead of hanging.
func TestTCPPeerAbortEscalates(t *testing.T) {
	for _, victim := range []int{0, 1} {
		name := map[int]string{0: "AcceptSideSurvivor", 1: "DialSideSurvivor"}[1-victim]
		t.Run(name, func(t *testing.T) {
			errCh := make(chan error, 4)
			var reported atomic.Int32
			m := makeTCPWith(t, 2, func(rank int, o *TCPOptions) {
				o.PeerTimeout = 1 * time.Second
				o.MaxReconnect = 2
				if rank != victim {
					o.OnError = func(err error) {
						reported.Add(1)
						errCh <- err
					}
				} else {
					o.OnError = func(error) {} // the crashing rank reports nothing useful
				}
			})
			m.eps[victim].(interface{ Abort() }).Abort()
			// Keep the survivor's link active so the failure is noticed.
			survivor := 1 - victim
			_ = m.eps[survivor].Send(victim, 1, []byte{1})
			select {
			case err := <-errCh:
				if err == nil {
					t.Fatal("OnError delivered nil")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("peer crash was never escalated through OnError")
			}
			time.Sleep(100 * time.Millisecond)
			if n := reported.Load(); n != 1 {
				t.Fatalf("OnError fired %d times, want exactly 1", n)
			}
			// Sends to the dead peer now fail fast instead of blocking.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if err := m.eps[survivor].Send(victim, 1, []byte{2}); err != nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("send to a declared-dead peer kept succeeding")
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err := m.eps[survivor].Close(); err == nil {
				t.Log("survivor close succeeded (peer already drained)")
			}
		})
	}
}

// TestFrameEveryBitFlipDetected flips every bit of an encoded frame, one at
// a time, and requires readFrame to reject each mutation. This is the
// integrity guarantee the chaos suite leans on: no single-bit corruption —
// header or payload — can be delivered as data. If checksumming were
// removed, payload mutations would decode cleanly and this test fails.
func TestFrameEveryBitFlipDetected(t *testing.T) {
	payload := []byte("conserved quantities must not drift")
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, uint32(len(payload)), 3, 0x20001, 9, payload)
	frame := append(append([]byte{}, hdr[:]...), payload...)
	// The pristine frame decodes.
	if _, _, _, _, err := readFrame(bytes.NewReader(frame), DefaultMaxFrame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := append([]byte{}, frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, _, _, _, err := readFrame(bytes.NewReader(mut), DefaultMaxFrame); err == nil {
			t.Fatalf("bit flip at offset %d (byte %d) decoded as a valid frame", bit, bit/8)
		}
	}
}

// TestCoordinatorTimeout: a rendezvous where not all ranks show up must
// fail within the budget, naming the shortfall.
func TestCoordinatorTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordErr := make(chan error, 1)
	go func() { coordErr <- runCoordinator(ln, 3, 500*time.Millisecond) }()
	go func() {
		_, _ = register(ln.Addr().String(), 0, "a:1", 2*time.Second)
	}()
	select {
	case err := <-coordErr:
		if err == nil {
			t.Fatal("coordinator succeeded with 1 of 3 registrations")
		}
		if !strings.Contains(err.Error(), "1/3") {
			t.Fatalf("timeout error does not name the registration shortfall: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not time out")
	}
}

// TestTCPDoubleClose: Close is idempotent and the second call returns the
// first call's verdict.
func TestTCPDoubleClose(t *testing.T) {
	m := makeTCP(t, 2)
	if err := m.eps[0].Send(1, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	m.cols[1].waitN(t, 1)
	m.close(t)
	for r, ep := range m.eps {
		if err := ep.Close(); err != nil {
			t.Fatalf("rank %d second close: %v", r, err)
		}
	}
}

// TestInprocSendAfterClose: the inproc endpoint honors the Endpoint
// contract's ErrClosed, same as tcp.
func TestInprocSendAfterClose(t *testing.T) {
	m := makeInproc(t, 2)
	if err := m.eps[0].Send(1, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.eps[0].Send(1, 1, []byte{2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close returned %v, want ErrClosed", err)
	}
	// The other endpoint is unaffected.
	if err := m.eps[1].Send(0, 1, []byte{3}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPSendToFailedPeerErrors: once a peer is declared lost, sends to it
// fail fast with a peer-failure error (not ErrClosed — the endpoint itself
// is still alive for its other peers).
func TestTCPSendToFailedPeerErrors(t *testing.T) {
	m := makeTCPWith(t, 2, func(rank int, o *TCPOptions) {
		o.PeerTimeout = 500 * time.Millisecond
		o.MaxReconnect = 1
		o.OnError = func(error) {}
	})
	m.eps[1].(interface{ Abort() }).Abort()
	_ = m.eps[0].Send(1, 1, []byte{1}) // wake the link so failure is detected
	deadline := time.Now().Add(8 * time.Second)
	for {
		err := m.eps[0].Send(1, 1, []byte{1})
		if err != nil {
			if errors.Is(err, ErrClosed) {
				t.Fatalf("send to failed peer returned ErrClosed, want a peer-failure error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to a dead peer never started failing")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = m.eps[0].Close()
}
