package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Rendezvous protocol (docs/networking.md): rank 0 listens on the
// coordinator address; every rank (rank 0 included, over loopback) dials
// it, sends one JSON registration line {"rank":r,"addr":"host:port"} with
// its data listener address, and blocks. Once all size registrations have
// arrived the coordinator answers every connection with one JSON table
// line {"addrs":[...]} and closes; only then do the ranks start dialing
// each other, so every data listener is known to be up before the first
// peer dial.

type coordReg struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
}

type coordTable struct {
	Addrs []string `json:"addrs"`
	Err   string   `json:"err,omitempty"`
}

// runCoordinator accepts size registrations on ln, broadcasts the peer
// table and closes the listener. It runs on rank 0's setup goroutine; the
// budget bounds the whole rendezvous.
func runCoordinator(ln net.Listener, size int, budget time.Duration) error {
	defer ln.Close()
	deadline := time.Now().Add(budget)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	conns := make([]net.Conn, 0, size)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	addrs := make([]string, size)
	registered := make([]bool, size)
	for n := 0; n < size; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: coordinator accept (have %d/%d registrations): %w", n, size, err)
		}
		conn.SetDeadline(deadline)
		var reg coordReg
		if err := json.NewDecoder(conn).Decode(&reg); err != nil {
			conn.Close() // not a registrant; keep waiting for the rest
			continue
		}
		if reg.Rank < 0 || reg.Rank >= size || registered[reg.Rank] {
			json.NewEncoder(conn).Encode(coordTable{Err: fmt.Sprintf("invalid or duplicate rank %d", reg.Rank)})
			conn.Close()
			return fmt.Errorf("transport: coordinator: invalid or duplicate registration for rank %d", reg.Rank)
		}
		registered[reg.Rank] = true
		addrs[reg.Rank] = reg.Addr
		conns = append(conns, conn)
		n++
	}
	table := coordTable{Addrs: addrs}
	for _, c := range conns {
		if err := json.NewEncoder(c).Encode(table); err != nil {
			return fmt.Errorf("transport: coordinator broadcast: %w", err)
		}
	}
	return nil
}

// register dials the coordinator (retrying with backoff until it is up),
// announces (rank, addr) and returns the broadcast peer table.
func register(coord string, rank int, addr string, budget time.Duration) ([]string, error) {
	conn, err := dialRetry(coord, budget)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d cannot reach coordinator %s: %w", rank, coord, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(budget))
	if err := json.NewEncoder(conn).Encode(coordReg{Rank: rank, Addr: addr}); err != nil {
		return nil, fmt.Errorf("transport: rank %d registration: %w", rank, err)
	}
	var table coordTable
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&table); err != nil {
		return nil, fmt.Errorf("transport: rank %d waiting for peer table: %w", rank, err)
	}
	if table.Err != "" {
		return nil, fmt.Errorf("transport: coordinator rejected rank %d: %s", rank, table.Err)
	}
	if len(table.Addrs) == 0 {
		return nil, fmt.Errorf("transport: coordinator sent empty peer table to rank %d", rank)
	}
	return table.Addrs, nil
}

// dialRetry dials addr with exponential backoff plus jitter until it
// succeeds or the budget elapses. Retrying covers staggered process
// startup (the listener may simply not exist yet) as well as transient
// refusals under load.
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 25 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("transport: dial %s: budget exhausted: %w", addr, lastErr)
		}
		attempt := remain
		if attempt > 2*time.Second {
			attempt = 2 * time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		// Jittered exponential backoff: sleep delay/2 .. delay, double, cap.
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if sleep > remain {
			return nil, fmt.Errorf("transport: dial %s: budget exhausted: %w", addr, lastErr)
		}
		time.Sleep(sleep)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}
