package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// collector is a test Handler recording delivered frames.
type collector struct {
	mu     sync.Mutex
	frames []struct {
		src, tag int
		payload  []byte
	}
	signal chan struct{}
}

func newCollector() *collector {
	return &collector{signal: make(chan struct{}, 1)}
}

func (c *collector) handle(src, tag int, payload []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, struct {
		src, tag int
		payload  []byte
	}{src, tag, payload})
	c.mu.Unlock()
	select { // must never block: the handler runs on the transport's pump
	case c.signal <- struct{}{}:
	default:
	}
}

func (c *collector) waitN(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		c.mu.Lock()
		have := len(c.frames)
		c.mu.Unlock()
		if have >= n {
			return
		}
		select {
		case <-c.signal:
		case <-time.After(10 * time.Millisecond):
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames (have %d)", n, have)
		}
	}
}

// mesh is one transport instance under conformance test.
type mesh struct {
	eps  []Endpoint
	cols []*collector
}

func (m *mesh) close(t *testing.T) {
	t.Helper()
	var wg sync.WaitGroup
	for _, ep := range m.eps {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			if err := ep.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}(ep)
	}
	wg.Wait()
}

// makeInproc builds a size-rank inproc mesh.
func makeInproc(t *testing.T, size int) *mesh {
	t.Helper()
	m := &mesh{}
	hub := NewHub(size)
	for r := 0; r < size; r++ {
		col := newCollector()
		m.cols = append(m.cols, col)
		m.eps = append(m.eps, hub.Endpoint(r, col.handle))
	}
	return m
}

// makeTCP builds a size-rank tcp mesh over loopback, all endpoints in this
// process.
func makeTCP(t *testing.T, size int) *mesh {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := &mesh{eps: make([]Endpoint, size), cols: make([]*collector, size)}
	coord := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		col := newCollector()
		m.cols[r] = col
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opts := TCPOptions{
				Rank: rank, Size: size, Coord: coord,
				DialTimeout: 10 * time.Second,
				OnError:     func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				opts.CoordListener = ln
			}
			m.eps[rank], errs[rank] = DialTCP(opts, col.handle)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return m
}

// conformance runs the shared behavioral suite against a transport factory.
func conformance(t *testing.T, make func(t *testing.T, size int) *mesh) {
	t.Run("Delivery", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		want := []byte{1, 2, 3, 4}
		if err := m.eps[0].Send(1, 7, want); err != nil {
			t.Fatal(err)
		}
		m.cols[1].waitN(t, 1)
		got := m.cols[1].frames[0]
		if got.src != 0 || got.tag != 7 || !bytes.Equal(got.payload, want) {
			t.Fatalf("got (src=%d tag=%d %v), want (0, 7, %v)", got.src, got.tag, got.payload, want)
		}
	})
	t.Run("PerPairFIFO", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		const n = 500
		for i := 0; i < n; i++ {
			if err := m.eps[0].Send(1, 5, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
		m.cols[1].waitN(t, n)
		for i, f := range m.cols[1].frames {
			if got := int(f.payload[0]) | int(f.payload[1])<<8; got != i {
				t.Fatalf("frame %d carried sequence %d: per-pair order not preserved", i, got)
			}
		}
	})
	t.Run("ConcurrentSenders", func(t *testing.T) {
		m := make(t, 3)
		defer m.close(t)
		const per = 200
		var wg sync.WaitGroup
		for _, src := range []int{0, 2} {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := m.eps[src].Send(1, src, []byte{byte(i)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(src)
		}
		wg.Wait()
		m.cols[1].waitN(t, 2*per)
		next := map[int]int{} // per-source FIFO must hold even interleaved
		for _, f := range m.cols[1].frames {
			if int(f.payload[0]) != next[f.src]%256 {
				t.Fatalf("src %d frame out of order", f.src)
			}
			next[f.src]++
		}
		if next[0] != per || next[2] != per {
			t.Fatalf("got %d/%d frames, want %d each", next[0], next[2], per)
		}
	})
	t.Run("EmptyPayload", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		if err := m.eps[1].Send(0, 9, nil); err != nil {
			t.Fatal(err)
		}
		m.cols[0].waitN(t, 1)
		if f := m.cols[0].frames[0]; f.src != 1 || f.tag != 9 || len(f.payload) != 0 {
			t.Fatalf("empty frame arrived as (src=%d tag=%d len=%d)", f.src, f.tag, len(f.payload))
		}
	})
	t.Run("LargeFrame", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		want := bytes.Repeat([]byte{0xAB}, 4<<20)
		want[0], want[len(want)-1] = 0x01, 0x02
		if err := m.eps[0].Send(1, 3, want); err != nil {
			t.Fatal(err)
		}
		m.cols[1].waitN(t, 1)
		if !bytes.Equal(m.cols[1].frames[0].payload, want) {
			t.Fatal("4 MiB payload corrupted in flight")
		}
	})
	t.Run("InvalidDst", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		if err := m.eps[0].Send(5, 1, nil); err == nil {
			t.Fatal("send to out-of-range rank succeeded")
		}
	})
	t.Run("ReservedTag", func(t *testing.T) {
		m := make(t, 2)
		defer m.close(t)
		if err := m.eps[0].Send(1, int(TagReserved), nil); err == nil {
			t.Fatal("send with reserved control tag succeeded")
		}
	})
}

func TestInprocConformance(t *testing.T) { conformance(t, makeInproc) }
func TestTCPConformance(t *testing.T)    { conformance(t, makeTCP) }

func TestTCPSelfSend(t *testing.T) {
	m := makeTCP(t, 2)
	defer m.close(t)
	if err := m.eps[1].Send(1, 4, []byte{42}); err != nil {
		t.Fatal(err)
	}
	m.cols[1].waitN(t, 1)
	if f := m.cols[1].frames[0]; f.src != 1 || f.payload[0] != 42 {
		t.Fatalf("self-send arrived as src=%d payload=%v", f.src, f.payload)
	}
}

func TestTCPSizeOne(t *testing.T) {
	// A 1-rank world needs no coordinator, listener or peers.
	col := newCollector()
	ep, err := DialTCP(TCPOptions{Rank: 0, Size: 1}, col.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(0, 1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	col.waitN(t, 1)
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialRetry(t *testing.T) {
	// Rank 1 starts dialing before rank 0's coordinator exists; the backoff
	// loop must carry it through the staggered startup.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	cols := []*collector{newCollector(), newCollector()}
	eps := make([]Endpoint, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[1], errs[1] = DialTCP(TCPOptions{
			Rank: 1, Size: 2, Coord: coord, DialTimeout: 10 * time.Second,
		}, cols[1].handle)
	}()
	time.Sleep(300 * time.Millisecond) // let rank 1 burn through a few dial attempts
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[0], errs[0] = DialTCP(TCPOptions{
			Rank: 0, Size: 2, Coord: coord, DialTimeout: 10 * time.Second,
			CoordListener: ln,
		}, cols[0].handle)
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m := &mesh{eps: eps, cols: cols}
	defer m.close(t)
	if err := eps[1].Send(0, 1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	cols[0].waitN(t, 1)
}

func TestTCPGracefulCloseDeliversAll(t *testing.T) {
	// Frames enqueued before Close must all arrive: Close drains the write
	// queue, sends FIN and half-closes, and the receiving side's Close
	// waits for the peer's FIN before tearing down the pump.
	m := makeTCP(t, 2)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := m.eps[0].Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.close(t)
	m.cols[1].mu.Lock()
	got := len(m.cols[1].frames)
	m.cols[1].mu.Unlock()
	if got != n {
		t.Fatalf("graceful close delivered %d of %d frames", got, n)
	}
	if err := m.eps[0].Send(1, 1, nil); err != ErrClosed {
		t.Fatalf("send after close returned %v, want ErrClosed", err)
	}
}

func TestTCPOversizeSend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	eps := make([]Endpoint, 2)
	errs := make([]error, 2)
	cols := []*collector{newCollector(), newCollector()}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opts := TCPOptions{Rank: rank, Size: 2, Coord: coord,
				DialTimeout: 10 * time.Second, MaxFrame: 1 << 10}
			if rank == 0 {
				opts.CoordListener = ln
			}
			eps[rank], errs[rank] = DialTCP(opts, cols[rank].handle)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m := &mesh{eps: eps, cols: cols}
	defer m.close(t)
	if err := eps[0].Send(1, 1, make([]byte, 2<<10)); err == nil {
		t.Fatal("oversize send succeeded")
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("NOTMPCF2")
	buf.Write(make([]byte, handshakeLen-len(handshakeMagic)))
	if _, _, err := readHandshake(&buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHandshake(&buf, 3, 77); err != nil {
		t.Fatal(err)
	}
	rank, recvNext, err := readHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 || recvNext != 77 {
		t.Fatalf("handshake decoded as (rank=%d recv_next=%d), want (3, 77)", rank, recvNext)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("ghost halo bytes")
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, uint32(len(payload)), 3, 0x01020304, 42, payload)
	buf.Write(hdr[:])
	buf.Write(payload)
	src, tag, seq, got, err := readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if src != 3 || tag != 0x01020304 || seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame decoded as (src=%d tag=%#x seq=%d %q)", src, tag, seq, got)
	}
}

func TestFrameRejectsOversizeHeader(t *testing.T) {
	var buf bytes.Buffer
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, 1<<30, 0, 1, 0, nil)
	buf.Write(hdr[:])
	if _, _, _, _, err := readFrame(&buf, 1<<20); err == nil {
		t.Fatal("oversize length prefix accepted")
	}
}

func TestHubPanicsOnDuplicateAttach(t *testing.T) {
	hub := NewHub(2)
	hub.Endpoint(0, func(int, int, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	hub.Endpoint(0, func(int, int, []byte) {})
}

func TestAdvertiseAddr(t *testing.T) {
	cases := []struct {
		bound  *net.TCPAddr
		listen string
		want   string
	}{
		{&net.TCPAddr{IP: net.IPv4zero, Port: 4000}, "", "127.0.0.1:4000"},
		{&net.TCPAddr{IP: net.IPv4zero, Port: 4000}, "0.0.0.0:4000", "127.0.0.1:4000"},
		{&net.TCPAddr{IP: net.IPv4zero, Port: 4000}, "node7:0", "node7:4000"},
		{&net.TCPAddr{IP: net.ParseIP("10.0.0.5"), Port: 4000}, "10.0.0.5:4000", "10.0.0.5:4000"},
	}
	for _, c := range cases {
		if got := advertiseAddr(c.bound, c.listen); got != c.want {
			t.Errorf("advertiseAddr(%v, %q) = %q, want %q", c.bound, c.listen, got, c.want)
		}
	}
}

func TestDialRetryBudgetExhausted(t *testing.T) {
	// A port nothing listens on: the retry loop must give up within the
	// budget rather than spin forever.
	start := time.Now()
	_, err := dialRetry("127.0.0.1:1", 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget exceeded: %v", elapsed)
	}
}

func TestCoordinatorRejectsDuplicateRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordErr := make(chan error, 1)
	go func() { coordErr <- runCoordinator(ln, 2, 10*time.Second) }()
	// Two registrants both claim rank 0: whichever arrives second trips the
	// duplicate check, the coordinator aborts, and both registrations fail
	// (the second with the rejection, the first when its conn is torn down).
	regErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := register(ln.Addr().String(), 0, "a:1", 10*time.Second)
			regErr <- err
		}()
	}
	select {
	case err := <-coordErr:
		if err == nil {
			t.Fatal("coordinator accepted a duplicate rank 0 registration")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not terminate")
	}
	for i := 0; i < 2; i++ {
		if err := <-regErr; err == nil {
			t.Fatal("registration succeeded in an aborted rendezvous")
		}
	}
}
