// Package transport is the rank-to-rank wire layer beneath internal/mpi:
// point-to-point delivery of typed byte frames between the ranks of one
// world, behind a pluggable Endpoint interface.
//
// Two implementations exist. The inproc endpoint is the original in-process
// substrate — every rank lives in one address space and Send hands the
// payload slice to the destination by reference, so all existing
// determinism and zero-copy guarantees hold bitwise. The tcp endpoint
// shards the world across OS processes: frames are length-prefixed binary
// records on one persistent duplex connection per peer pair, written by a
// per-peer coalescing loop and demultiplexed by a per-peer read pump
// (docs/networking.md describes the wire format and the rendezvous
// protocol).
//
// The layering contract: transport moves frames and knows nothing about
// matching or collectives; internal/mpi owns (source, tag) matching,
// request objects and the collective algorithms, which is why the cluster
// layer runs unchanged on either implementation.
package transport

import "errors"

// Handler consumes one delivered frame. Implementations call it from the
// goroutine that produced the frame (inproc: the sender; tcp: the peer's
// read pump), so it must be safe for concurrent use and must not block for
// long — internal/mpi points it at a mailbox enqueue.
type Handler func(src, tag int, payload []byte)

// Endpoint is one rank's attachment to the wire.
//
// Send enqueues one frame for dst. The payload is handed off by reference:
// the caller must not mutate it until the receiver is done with it (the
// MPI-layer contract; the cluster layer double-buffers per stage). Tags are
// opaque to the transport except for the reserved control namespace
// (TagReserved and above). Send may block on transport backpressure but
// never on the receiver's consumption in the tcp case.
//
// Close flushes queued frames, performs the graceful FIN exchange (tcp)
// and releases all resources. Send after Close returns ErrClosed. Close
// must not race an in-flight Send — callers sequence a barrier first.
type Endpoint interface {
	Rank() int
	Size() int
	Send(dst, tag int, payload []byte) error
	Close() error
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")
