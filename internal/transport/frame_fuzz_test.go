package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameRoundTrip: any (src, tag, seq, payload) tuple must survive
// encode→decode bit-exactly. Exercises the CRC computation on both sides.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint64(0), []byte{})
	f.Add(uint32(3), uint32(0x20001), uint64(42), []byte("ghost halo bytes"))
	f.Add(uint32(511), uint32(0xFEFFFFFF), uint64(1<<60), bytes.Repeat([]byte{0xAB}, 1024))
	f.Fuzz(func(t *testing.T, src, tag uint32, seq uint64, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var hdr [frameHeader]byte
		putFrameHeader(&hdr, uint32(len(payload)), src, tag, seq, payload)
		frame := append(append([]byte{}, hdr[:]...), payload...)
		gs, gt, gq, gp, err := readFrame(bytes.NewReader(frame), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if gs != src || gt != tag || gq != seq || !bytes.Equal(gp, payload) {
			t.Fatalf("decoded (src=%d tag=%#x seq=%d len=%d), want (src=%d tag=%#x seq=%d len=%d)",
				gs, gt, gq, len(gp), src, tag, seq, len(payload))
		}
	})
}

// fuzzCorruptFrame builds a valid frame then damages it — a handy seed for
// the decoder fuzzer's interesting paths.
func fuzzCorruptFrame(mutate func([]byte)) []byte {
	payload := []byte("seed corpus payload")
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, uint32(len(payload)), 1, 2, 3, payload)
	frame := append(append([]byte{}, hdr[:]...), payload...)
	if mutate != nil {
		mutate(frame)
	}
	return frame
}

// FuzzFrameDecode throws arbitrary bytes at the decoder: it must never
// panic or over-allocate, and anything it does accept must re-encode to the
// identical header (i.e. only genuinely consistent frames pass the CRC).
func FuzzFrameDecode(f *testing.F) {
	f.Add(fuzzCorruptFrame(nil))                              // valid
	f.Add(fuzzCorruptFrame(nil)[:frameHeader+4])              // truncated payload
	f.Add(fuzzCorruptFrame(nil)[:7])                          // truncated header
	f.Add(fuzzCorruptFrame(func(b []byte) { b[25] ^= 0x10 })) // payload bit flip
	f.Add(fuzzCorruptFrame(func(b []byte) { b[20] ^= 0xFF })) // CRC field damage
	f.Add(fuzzCorruptFrame(func(b []byte) {                   // length overflow
		binary.LittleEndian.PutUint32(b[0:4], 1<<31)
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src, tag, seq, payload, err := readFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if len(data) < frameHeader+len(payload) {
			t.Fatalf("decoder produced %d payload bytes from %d input bytes", len(payload), len(data))
		}
		var hdr [frameHeader]byte
		putFrameHeader(&hdr, uint32(len(payload)), src, tag, seq, payload)
		if !bytes.Equal(hdr[:], data[:frameHeader]) {
			t.Fatalf("accepted frame does not re-encode to its own header (CRC collision or decode bug)")
		}
	})
}
