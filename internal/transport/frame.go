package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format v2 (little-endian, docs/networking.md):
//
//	connection handshake:  "MPCFNet2" | uint32 rank | uint64 recv_next   (each direction)
//	frame:                 uint32 len | uint32 src | uint32 tag | uint64 seq | uint32 crc | payload
//
// len counts payload bytes only. seq is the per-(src,dst) sequence number
// of sequenced frames (data and FIN); for ACK control frames it carries the
// cumulative acknowledgment instead. crc is CRC32C (Castagnoli) over the
// first 20 header bytes plus the payload, so a flipped bit anywhere in the
// frame — header or payload — is detected at the receiver and the frame is
// poisoned (the connection fails and recovery replays) instead of silently
// corrupting solver state. The handshake's recv_next field is the next
// sequence number the handshaking side expects from its peer; on a
// reconnect it doubles as a cumulative ack and tells the peer where to
// resume its replay.
//
// The tag field carries the mpi-layer namespace bits (class and RK stage
// live in the tag's high bytes), so a frame header identifies rank, tag and
// stage without the transport knowing the solver's tag map. Tags at
// TagReserved and above are transport control frames and never reach the
// Handler.
const (
	handshakeMagic = "MPCFNet2"
	handshakeLen   = len(handshakeMagic) + 4 + 8
	frameHeader    = 24

	// TagReserved is the first transport-reserved tag value; application
	// tags must stay below it.
	TagReserved = 0xFF000000

	// tagFIN announces a graceful shutdown of the sending side: no further
	// data frames will be sent. FIN is sequenced like a data frame, so it
	// is delivered exactly once, in order, and survives reconnects.
	tagFIN = 0xFFFFFFFF

	// tagACK carries the receiver's cumulative acknowledgment in the seq
	// field: every sequenced frame below that value has been delivered.
	// Unsequenced and idempotent.
	tagACK = 0xFFFFFFFE

	// tagHB is the idle-link heartbeat; its only job is to keep the peer's
	// read deadline from expiring so wire silence means peer failure, not
	// a long compute phase. Unsequenced, never retransmitted.
	tagHB = 0xFFFFFFFD

	// DefaultMaxFrame bounds a single frame's payload; a length prefix
	// beyond the limit means a corrupt or hostile stream and fails the
	// connection instead of attempting a huge allocation.
	DefaultMaxFrame = 1 << 28
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a frame whose CRC32C did not match its contents: the
// frame is poisoned and the connection must be recovered, never delivered.
var ErrChecksum = errors.New("transport: frame checksum mismatch (payload corrupted in flight)")

// putFrameHeader encodes the fixed header, including the CRC32C over the
// header prefix and the payload the frame will carry.
func putFrameHeader(hdr *[frameHeader]byte, n, src, tag uint32, seq uint64, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], n)
	binary.LittleEndian.PutUint32(hdr[4:8], src)
	binary.LittleEndian.PutUint32(hdr[8:12], tag)
	binary.LittleEndian.PutUint64(hdr[12:20], seq)
	crc := crc32.Checksum(hdr[0:20], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[20:24], crc)
}

// readFrame reads one frame from r, verifying its checksum. It returns the
// src, tag and seq fields and a freshly allocated payload (nil for empty
// payloads). A checksum mismatch returns an error wrapping ErrChecksum.
func readFrame(r io.Reader, maxFrame int) (src, tag uint32, seq uint64, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	src = binary.LittleEndian.Uint32(hdr[4:8])
	tag = binary.LittleEndian.Uint32(hdr[8:12])
	seq = binary.LittleEndian.Uint64(hdr[12:20])
	want := binary.LittleEndian.Uint32(hdr[20:24])
	if int64(n) > int64(maxFrame) {
		return 0, 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d (corrupt stream?)", n, maxFrame)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, 0, nil, fmt.Errorf("transport: short frame payload: %w", err)
		}
	}
	crc := crc32.Checksum(hdr[0:20], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, 0, 0, nil, fmt.Errorf("%w: frame (src=%d tag=%#x seq=%d len=%d)", ErrChecksum, src, tag, seq, n)
	}
	return src, tag, seq, payload, nil
}

// writeHandshake sends the connection preamble announcing rank and the next
// sequence number this side expects from the peer (0 on a fresh world; the
// replay resume point on a reconnect).
func writeHandshake(w io.Writer, rank int, recvNext uint64) error {
	buf := make([]byte, handshakeLen)
	copy(buf, handshakeMagic)
	binary.LittleEndian.PutUint32(buf[len(handshakeMagic):], uint32(rank))
	binary.LittleEndian.PutUint64(buf[len(handshakeMagic)+4:], recvNext)
	_, err := w.Write(buf)
	return err
}

// readHandshake validates the preamble and returns the announced rank and
// the peer's expected next sequence number.
func readHandshake(r io.Reader) (int, uint64, error) {
	buf := make([]byte, handshakeLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if string(buf[:len(handshakeMagic)]) != handshakeMagic {
		return 0, 0, fmt.Errorf("transport: bad handshake magic %q", buf[:len(handshakeMagic)])
	}
	rank := int(binary.LittleEndian.Uint32(buf[len(handshakeMagic):]))
	recvNext := binary.LittleEndian.Uint64(buf[len(handshakeMagic)+4:])
	return rank, recvNext, nil
}
