package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format (little-endian, docs/networking.md):
//
//	connection handshake:  "MPCFNet1" | uint32 rank        (each direction)
//	frame:                 uint32 len | uint32 src | uint32 tag | payload
//
// len counts payload bytes only. The tag field carries the mpi-layer
// namespace bits (class and RK stage live in the tag's high bytes), so a
// frame header identifies rank, tag and stage without the transport
// knowing the solver's tag map. Tags at TagReserved and above are
// transport control frames and never reach the Handler.
const (
	handshakeMagic = "MPCFNet1"
	frameHeader    = 12

	// TagReserved is the first transport-reserved tag value; application
	// tags must stay below it.
	TagReserved = 0xFF000000

	// tagFIN announces a graceful shutdown of the sending side: the peer
	// will write no further frames and will half-close its connection.
	tagFIN = 0xFFFFFFFF

	// DefaultMaxFrame bounds a single frame's payload; a length prefix
	// beyond the limit means a corrupt or hostile stream and fails the
	// connection instead of attempting a huge allocation.
	DefaultMaxFrame = 1 << 28
)

// putFrameHeader encodes the fixed header into hdr.
func putFrameHeader(hdr *[frameHeader]byte, n, src, tag uint32) {
	binary.LittleEndian.PutUint32(hdr[0:4], n)
	binary.LittleEndian.PutUint32(hdr[4:8], src)
	binary.LittleEndian.PutUint32(hdr[8:12], tag)
}

// readFrame reads one frame from r. It returns the src and tag fields and
// a freshly allocated payload (nil for empty payloads).
func readFrame(r io.Reader, maxFrame int) (src, tag uint32, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	src = binary.LittleEndian.Uint32(hdr[4:8])
	tag = binary.LittleEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxFrame) {
		return 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d (corrupt stream?)", n, maxFrame)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, fmt.Errorf("transport: short frame payload: %w", err)
		}
	}
	return src, tag, payload, nil
}

// writeHandshake sends the connection preamble announcing rank.
func writeHandshake(w io.Writer, rank int) error {
	buf := make([]byte, len(handshakeMagic)+4)
	copy(buf, handshakeMagic)
	binary.LittleEndian.PutUint32(buf[len(handshakeMagic):], uint32(rank))
	_, err := w.Write(buf)
	return err
}

// readHandshake validates the preamble and returns the announced rank.
func readHandshake(r io.Reader) (int, error) {
	buf := make([]byte, len(handshakeMagic)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if string(buf[:len(handshakeMagic)]) != handshakeMagic {
		return 0, fmt.Errorf("transport: bad handshake magic %q", buf[:len(handshakeMagic)])
	}
	return int(binary.LittleEndian.Uint32(buf[len(handshakeMagic):])), nil
}
