// Package faulty is the deterministic fault injector behind the transport
// chaos suite: it wraps the tcp endpoint's write path (via
// transport.TCPOptions.Fault) and injects frame drops, delays,
// duplications, reorders, payload bit-flips and mid-stream connection
// resets according to a seeded plan. Every draw comes from a per-peer
// deterministic stream, so a failing chaos run is replayed exactly by its
// seed. Faults act below the reliability layer; a correct transport makes
// every one of them invisible to the mpi layer, which is precisely what the
// conformance-under-chaos tests assert.
package faulty

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cubism/internal/transport"
)

// Plan is the per-frame fault distribution. Each rate is a probability in
// [0,1] evaluated per outgoing data frame, checked in the order Drop, Dup,
// Reorder, Flip, Reset, Delay (at most one fault fires per frame).
type Plan struct {
	// Seed fixes the decision streams; runs with equal seeds and equal
	// traffic draw identical fault sequences.
	Seed int64

	Drop    float64 // skip the write entirely
	Dup     float64 // write the frame twice
	Reorder float64 // hold the frame, emit it after the next one
	Flip    float64 // invert one payload bit (CRC must catch it)
	Reset   float64 // RST the connection mid-stream
	Delay   float64 // sleep before the write

	// DelayMax bounds an injected delay (default 2ms); the drawn delay is
	// uniform in (0, DelayMax].
	DelayMax time.Duration

	// Max, when positive, caps the number of injected faults per class per
	// peer stream — e.g. Flip=1 with Max=4 corrupts exactly the first four
	// data frames and then goes quiet, which lets a test force faults onto
	// early traffic while still guaranteeing overall progress.
	Max int
}

// Parse builds a Plan from a comma-separated spec such as
// "drop=0.01,dup=0.005,reorder=0.01,flip=0.001,reset=0.002,delay=0.01,
// delaymax=5ms,max=100,seed=7" (the mpcf-sim -net-chaos flag format).
func Parse(spec string) (Plan, error) {
	var p Plan
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faulty: bad field %q (want key=value)", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faulty: bad seed %q: %v", val, err)
			}
			p.Seed = v
		case "max":
			v, err := strconv.Atoi(val)
			if err != nil {
				return Plan{}, fmt.Errorf("faulty: bad max %q: %v", val, err)
			}
			p.Max = v
		case "delaymax":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Plan{}, fmt.Errorf("faulty: bad delaymax %q: %v", val, err)
			}
			p.DelayMax = d
		default:
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return Plan{}, fmt.Errorf("faulty: bad rate %s=%q (want 0..1)", key, val)
			}
			switch key {
			case "drop":
				p.Drop = rate
			case "dup":
				p.Dup = rate
			case "reorder":
				p.Reorder = rate
			case "flip":
				p.Flip = rate
			case "reset":
				p.Reset = rate
			case "delay":
				p.Delay = rate
			default:
				return Plan{}, fmt.Errorf("faulty: unknown fault class %q", key)
			}
		}
	}
	return p, nil
}

// String renders the plan in Parse's format (only non-zero fields).
func (p Plan) String() string {
	var parts []string
	for _, f := range []struct {
		k string
		v float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"reorder", p.Reorder},
		{"flip", p.Flip}, {"reset", p.Reset}, {"delay", p.Delay}} {
		if f.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", f.k, f.v))
		}
	}
	sort.Strings(parts)
	if p.DelayMax > 0 {
		parts = append(parts, "delaymax="+p.DelayMax.String())
	}
	if p.Max > 0 {
		parts = append(parts, "max="+strconv.Itoa(p.Max))
	}
	parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	return strings.Join(parts, ",")
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 || p.Flip > 0 || p.Reset > 0 || p.Delay > 0
}

// Injector implements transport.FaultInjector from a Plan. One Injector
// belongs to one endpoint; each destination rank gets its own seeded
// decision stream, so the fault sequence on the stream to peer r does not
// depend on traffic to other peers.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	peers map[int]*peerStream
}

type peerStream struct {
	rng    *rand.Rand
	counts [6]int // injected so far, per class
}

// New builds an injector from the plan.
func New(plan Plan) *Injector {
	if plan.DelayMax <= 0 {
		plan.DelayMax = 2 * time.Millisecond
	}
	return &Injector{plan: plan, peers: make(map[int]*peerStream)}
}

// classes indexes peerStream.counts; the order fixes fault precedence.
const (
	classDrop = iota
	classDup
	classReorder
	classFlip
	classReset
	classDelay
)

// Outgoing draws the fault decision for one data frame headed to dst. The
// action/delay/flip-bit semantics are documented on transport.FaultDecision;
// the tcp endpoint consults this through the transport.FaultInjector
// interface.
func (in *Injector) Outgoing(dst, tag, size int) transport.FaultDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	ps := in.peers[dst]
	if ps == nil {
		// Mix the destination into the seed so each peer stream is
		// distinct but individually reproducible.
		ps = &peerStream{rng: rand.New(rand.NewSource(in.plan.Seed*1000003 + int64(dst)))}
		in.peers[dst] = ps
	}
	p := in.plan
	allow := func(class int) bool {
		if p.Max > 0 && ps.counts[class] >= p.Max {
			return false
		}
		ps.counts[class]++
		return true
	}
	// One uniform draw decides among the classes by stacked thresholds, so
	// at most one fault fires per frame and the per-class rates hold.
	u := ps.rng.Float64()
	switch {
	case u < p.Drop:
		if allow(classDrop) {
			return transport.FaultDecision{Action: transport.FaultDrop}
		}
	case u < p.Drop+p.Dup:
		if allow(classDup) {
			return transport.FaultDecision{Action: transport.FaultDup}
		}
	case u < p.Drop+p.Dup+p.Reorder:
		if allow(classReorder) {
			return transport.FaultDecision{Action: transport.FaultReorder}
		}
	case u < p.Drop+p.Dup+p.Reorder+p.Flip:
		if size > 0 && allow(classFlip) {
			return transport.FaultDecision{Action: transport.FaultFlip, FlipBit: uint64(ps.rng.Int63())}
		}
	case u < p.Drop+p.Dup+p.Reorder+p.Flip+p.Reset:
		if allow(classReset) {
			return transport.FaultDecision{Action: transport.FaultReset}
		}
	case u < p.Drop+p.Dup+p.Reorder+p.Flip+p.Reset+p.Delay:
		if allow(classDelay) {
			d := time.Duration(ps.rng.Int63n(int64(p.DelayMax))) + 1
			return transport.FaultDecision{Action: transport.FaultDelay, Delay: d}
		}
	}
	return transport.FaultDecision{}
}
