// Chaos conformance: the transport behavioral suite re-run over a faulty
// wire, once per fault class plus an everything-at-once mix, all with fixed
// seeds. A correct reliability layer makes every class invisible: delivery
// stays exactly-once, per-pair FIFO, and bit-identical, and graceful close
// still drains everything. These tests live in the faulty package (not
// transport) because faulty imports transport for the injector types.
package faulty_test

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cubism/internal/transport"
	"cubism/internal/transport/faulty"
)

// chaosClasses are the per-class fixed-seed plans. Rates are chosen so each
// ~1000-frame test run injects dozens of faults of its class; seeds are
// arbitrary but frozen — a failure reproduces exactly from the plan string.
var chaosClasses = []struct {
	name string
	plan faulty.Plan
}{
	{"Drop", faulty.Plan{Seed: 101, Drop: 0.05}},
	{"Delay", faulty.Plan{Seed: 102, Delay: 0.20, DelayMax: time.Millisecond}},
	{"Dup", faulty.Plan{Seed: 103, Dup: 0.10}},
	{"Reorder", faulty.Plan{Seed: 104, Reorder: 0.05}},
	{"BitFlip", faulty.Plan{Seed: 105, Flip: 0.02}},
	{"Reset", faulty.Plan{Seed: 106, Reset: 0.01}},
	{"Everything", faulty.Plan{Seed: 107, Drop: 0.02, Dup: 0.02, Reorder: 0.02,
		Flip: 0.01, Reset: 0.005, Delay: 0.05, DelayMax: time.Millisecond}},
}

// counting wraps an injector so tests can assert faults actually fired.
type counting struct {
	inner transport.FaultInjector
	n     atomic.Int64
}

func (c *counting) Outgoing(dst, tag, size int) transport.FaultDecision {
	d := c.inner.Outgoing(dst, tag, size)
	if d.Action != transport.FaultPass {
		c.n.Add(1)
	}
	return d
}

type recorded struct {
	src, tag int
	payload  []byte
}

type sink struct {
	mu     sync.Mutex
	frames []recorded
}

func (s *sink) handle(src, tag int, payload []byte) {
	s.mu.Lock()
	s.frames = append(s.frames, recorded{src, tag, payload})
	s.mu.Unlock()
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func (s *sink) waitN(t *testing.T, n int) []recorded {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames (have %d)", n, s.count())
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]recorded{}, s.frames...)
}

// chaosMesh builds a loopback tcp mesh where every rank's outgoing wire
// runs through its own deterministic injector for the given plan.
func chaosMesh(t *testing.T, size int, plan faulty.Plan) (eps []transport.Endpoint, sinks []*sink, faults *counting) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	eps = make([]transport.Endpoint, size)
	sinks = make([]*sink, size)
	faults = &counting{}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		s := &sink{}
		sinks[r] = s
		wg.Add(1)
		// Each rank gets its own injector (per-endpoint determinism), all
		// funneled into one shared counter for the fired-at-all assertion.
		go func(rank int, inj transport.FaultInjector) {
			defer wg.Done()
			opts := transport.TCPOptions{
				Rank: rank, Size: size, Coord: coord,
				DialTimeout:       10 * time.Second,
				HeartbeatInterval: 50 * time.Millisecond,
				PeerTimeout:       15 * time.Second,
				RetransmitTimeout: 120 * time.Millisecond,
				Fault:             inj,
				OnError:           func(err error) { t.Errorf("rank %d wire: %v", rank, err) },
			}
			if rank == 0 {
				opts.CoordListener = ln
			}
			eps[rank], errs[rank] = transport.DialTCP(opts, s.handle)
		}(r, &countingShared{faults, faulty.New(plan)})
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return eps, sinks, faults
}

// countingShared funnels per-rank injectors into one shared fault counter.
type countingShared struct {
	c     *counting
	inner transport.FaultInjector
}

func (cs *countingShared) Outgoing(dst, tag, size int) transport.FaultDecision {
	d := cs.inner.Outgoing(dst, tag, size)
	if d.Action != transport.FaultPass {
		cs.c.n.Add(1)
	}
	return d
}

func closeAll(t *testing.T, eps []transport.Endpoint) {
	t.Helper()
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			if err := ep.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}(ep)
	}
	wg.Wait()
}

// TestTCPChaosConformance is the headline suite: for each fault class the
// transport must deliver exactly-once, in per-pair order, bit-identically,
// and still drain everything through a graceful close — the faults are
// invisible above the Endpoint interface.
func TestTCPChaosConformance(t *testing.T) {
	for _, tc := range chaosClasses {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("OrderedDelivery", func(t *testing.T) {
				eps, sinks, faults := chaosMesh(t, 2, tc.plan)
				const n = 600
				for i := 0; i < n; i++ {
					payload := []byte{byte(i), byte(i >> 8), 0xA5}
					if err := eps[0].Send(1, 5, payload); err != nil {
						t.Fatal(err)
					}
				}
				frames := sinks[1].waitN(t, n)
				if len(frames) != n {
					t.Fatalf("delivered %d frames, want exactly %d (duplicates or losses)", len(frames), n)
				}
				for i, f := range frames {
					if got := int(f.payload[0]) | int(f.payload[1])<<8; got != i || f.payload[2] != 0xA5 {
						t.Fatalf("frame %d arrived as seq=%d marker=%#x: order or integrity lost", i, got, f.payload[2])
					}
				}
				closeAll(t, eps)
				if sinks[1].count() != n {
					t.Fatalf("close delivered %d frames, want %d", sinks[1].count(), n)
				}
				if faults.n.Load() == 0 {
					t.Fatalf("plan %q injected no faults; the run proved nothing", tc.plan.String())
				}
			})
			t.Run("ConcurrentSenders", func(t *testing.T) {
				eps, sinks, _ := chaosMesh(t, 3, tc.plan)
				const per = 200
				var wg sync.WaitGroup
				for _, src := range []int{0, 2} {
					wg.Add(1)
					go func(src int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							if err := eps[src].Send(1, src, []byte{byte(i), byte(i >> 8)}); err != nil {
								t.Errorf("send: %v", err)
								return
							}
						}
					}(src)
				}
				wg.Wait()
				frames := sinks[1].waitN(t, 2*per)
				next := map[int]int{}
				for _, f := range frames {
					if got := int(f.payload[0]) | int(f.payload[1])<<8; got != next[f.src] {
						t.Fatalf("src %d frame out of order under chaos: got %d want %d", f.src, got, next[f.src])
					}
					next[f.src]++
				}
				if next[0] != per || next[2] != per {
					t.Fatalf("got %d/%d frames, want %d each", next[0], next[2], per)
				}
				closeAll(t, eps)
			})
			t.Run("LargeFrame", func(t *testing.T) {
				eps, sinks, _ := chaosMesh(t, 2, tc.plan)
				want := bytes.Repeat([]byte{0xCD}, 1<<20)
				want[0], want[len(want)-1] = 0x01, 0x02
				if err := eps[0].Send(1, 3, want); err != nil {
					t.Fatal(err)
				}
				frames := sinks[1].waitN(t, 1)
				if !bytes.Equal(frames[0].payload, want) {
					t.Fatal("1 MiB payload corrupted across a faulty wire")
				}
				closeAll(t, eps)
			})
		})
	}
}

// TestBitFlipAlwaysDetected is the CRC acceptance test: with a plan that
// flips a bit in the first 40 data frames, every delivered payload must
// still be pristine and the flips must actually have fired. If frame
// checksumming were disabled, the corrupted payloads would be delivered
// and the integrity assertion below fails.
func TestBitFlipAlwaysDetected(t *testing.T) {
	plan := faulty.Plan{Seed: 1234, Flip: 1, Max: 40}
	eps, sinks, faults := chaosMesh(t, 2, plan)
	const n = 200
	payload := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i)}, 64)
		b[0], b[63] = byte(i>>8), ^byte(i)
		return b
	}
	for i := 0; i < n; i++ {
		if err := eps[0].Send(1, 7, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames := sinks[1].waitN(t, n)
	for i, f := range frames {
		if !bytes.Equal(f.payload, payload(i)) {
			t.Fatalf("frame %d delivered corrupted: a flipped bit got past the checksum", i)
		}
	}
	if got := faults.n.Load(); got < 40 {
		t.Fatalf("only %d flips injected, want 40: the test did not stress the CRC", got)
	}
	closeAll(t, eps)
}
