package faulty

import (
	"testing"
	"time"

	"cubism/internal/transport"
)

func TestParseFields(t *testing.T) {
	p, err := Parse("drop=0.01,dup=0.005,reorder=0.02,flip=0.001,reset=0.002,delay=0.1,delaymax=5ms,max=100,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, Drop: 0.01, Dup: 0.005, Reorder: 0.02, Flip: 0.001,
		Reset: 0.002, Delay: 0.1, DelayMax: 5 * time.Millisecond, Max: 100}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Fatal("plan with rates reported inactive")
	}
	if (Plan{Seed: 3}).Active() {
		t.Fatal("empty plan reported active")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	p := Plan{Seed: 42, Drop: 0.03, Reset: 0.001, DelayMax: 2 * time.Millisecond, Max: 16}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %q gave %+v, want %+v", p.String(), back, p)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"drop",          // no value
		"drop=1.5",      // rate out of range
		"drop=-0.1",     // negative rate
		"warp=0.5",      // unknown class
		"seed=abc",      // non-integer seed
		"delaymax=fast", // bad duration
		"max=lots",      // bad int
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := Plan{Seed: 99, Drop: 0.2, Dup: 0.1, Reorder: 0.1, Flip: 0.1, Reset: 0.05, Delay: 0.2}
	a, b := New(plan), New(plan)
	for i := 0; i < 2000; i++ {
		dst := i % 3
		da := a.Outgoing(dst, 1, 128)
		db := b.Outgoing(dst, 1, 128)
		if da != db {
			t.Fatalf("call %d: injectors with equal seeds diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestInjectorPerPeerStreamsIndependent(t *testing.T) {
	plan := Plan{Seed: 7, Drop: 0.3, Delay: 0.3}
	// Injector a interleaves traffic to peers 1 and 2; injector b sends only
	// to peer 1. The peer-1 decision stream must be identical — traffic to
	// other peers must not perturb it.
	a, b := New(plan), New(plan)
	for i := 0; i < 500; i++ {
		a.Outgoing(2, 1, 64) // noise on another stream
		da := a.Outgoing(1, 1, 64)
		db := b.Outgoing(1, 1, 64)
		if da != db {
			t.Fatalf("call %d: peer-1 stream perturbed by peer-2 traffic: %+v vs %+v", i, da, db)
		}
	}
}

func TestInjectorMaxCap(t *testing.T) {
	in := New(Plan{Seed: 1, Flip: 1, Max: 3})
	flips := 0
	for i := 0; i < 100; i++ {
		if d := in.Outgoing(1, 1, 64); d.Action == transport.FaultFlip {
			flips++
		}
	}
	if flips != 3 {
		t.Fatalf("Max=3 plan injected %d flips", flips)
	}
}

func TestInjectorFlipNeedsPayload(t *testing.T) {
	in := New(Plan{Seed: 1, Flip: 1})
	for i := 0; i < 50; i++ {
		if d := in.Outgoing(1, 1, 0); d.Action != transport.FaultPass {
			t.Fatalf("flip injected on an empty payload: %+v", d)
		}
	}
}

func TestInjectorDelayBounded(t *testing.T) {
	max := 3 * time.Millisecond
	in := New(Plan{Seed: 5, Delay: 1, DelayMax: max})
	for i := 0; i < 200; i++ {
		d := in.Outgoing(0, 1, 8)
		if d.Action != transport.FaultDelay {
			t.Fatalf("delay=1 plan returned %+v", d)
		}
		if d.Delay <= 0 || d.Delay > max {
			t.Fatalf("injected delay %v outside (0, %v]", d.Delay, max)
		}
	}
}
