package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cubism/internal/telemetry"
)

// TCPOptions configures one rank's TCP endpoint.
type TCPOptions struct {
	// Rank and Size identify this rank within the world. Required.
	Rank int
	Size int

	// Coord is the rendezvous coordinator address (host:port). Rank 0
	// listens on it (unless CoordListener is set); every rank dials it to
	// register. Required when Size > 1.
	Coord string

	// Listen is the address the data listener binds ("" means any port on
	// all interfaces, which is right for single-host runs; set an explicit
	// host for multi-homed machines so peers dial a reachable address).
	Listen string

	// DialTimeout bounds the whole rendezvous plus mesh construction
	// (default 30s). ReadTimeout/WriteTimeout are per-frame I/O deadlines
	// on established connections; zero means no deadline (the default —
	// a rank legitimately goes quiet for the length of a compute phase).
	// CloseTimeout bounds the graceful FIN drain in Close (default 10s).
	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	CloseTimeout time.Duration

	// MaxFrame bounds a single frame payload (default DefaultMaxFrame).
	// SendQueue is the per-peer outgoing frame queue depth (default 256);
	// Send blocks when the peer's queue is full (backpressure).
	MaxFrame  int
	SendQueue int

	// Registry/Tracer receive net metrics and spans; nil disables them.
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	// CoordListener, when non-nil on rank 0, is a pre-bound listener used
	// for rendezvous instead of binding Coord. Lets tests and mpcf-launch
	// pick a free port without a bind race.
	CoordListener net.Listener

	// OnError, when non-nil, observes asynchronous connection failures
	// (read-pump errors after the endpoint is established).
	OnError func(error)
}

func (o *TCPOptions) withDefaults() TCPOptions {
	v := *o
	if v.DialTimeout <= 0 {
		v.DialTimeout = 30 * time.Second
	}
	if v.CloseTimeout <= 0 {
		v.CloseTimeout = 10 * time.Second
	}
	if v.MaxFrame <= 0 {
		v.MaxFrame = DefaultMaxFrame
	}
	if v.SendQueue <= 0 {
		v.SendQueue = 256
	}
	return v
}

type outFrame struct {
	tag     uint32
	payload []byte
	enq     time.Time
}

// peerConn is one side of the persistent duplex connection to a peer.
type peerConn struct {
	rank int
	conn *net.TCPConn
	out  chan outFrame
	done chan struct{} // read pump exited
	wg   sync.WaitGroup

	latency *telemetry.Histogram // enqueue→flush seconds, nil when telemetry off
}

type tcpEndpoint struct {
	opts    TCPOptions
	deliver Handler
	peersMu sync.Mutex
	peers   []*peerConn // index by rank; nil at self

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	finSeen []atomic.Bool // per-peer: FIN frame received

	bytesSent *telemetry.Counter
	bytesRecv *telemetry.Counter
}

// DialTCP establishes the full peer mesh for one rank: rendezvous through
// the coordinator, then one persistent duplex TCP connection per peer pair
// (the higher rank dials the lower; both sides handshake with their rank).
// It returns only after every peer connection is up, so the first Send
// never races mesh construction.
func DialTCP(opts TCPOptions, deliver Handler) (Endpoint, error) {
	o := opts.withDefaults()
	if o.Size <= 0 || o.Rank < 0 || o.Rank >= o.Size {
		return nil, fmt.Errorf("transport: invalid rank %d of %d", o.Rank, o.Size)
	}
	e := &tcpEndpoint{
		opts:    o,
		deliver: deliver,
		peers:   make([]*peerConn, o.Size),
		finSeen: make([]atomic.Bool, o.Size),
	}
	if o.Registry != nil {
		rankLabel := telemetry.Labels{"rank": fmt.Sprint(o.Rank)}
		e.bytesSent = o.Registry.Counter("mpcf_net_bytes_sent",
			"Wire bytes sent by the tcp transport (headers included).", rankLabel)
		e.bytesRecv = o.Registry.Counter("mpcf_net_bytes_recv",
			"Wire bytes received by the tcp transport (headers included).", rankLabel)
	}
	if o.Size == 1 {
		return e, nil // no listener, no rendezvous: a 1-rank world has no wire
	}
	if o.Coord == "" && o.CoordListener == nil {
		return nil, fmt.Errorf("transport: coordinator address required for size %d", o.Size)
	}

	// Data listener first so its address can be registered.
	ln, err := net.Listen("tcp", o.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d data listener: %w", o.Rank, err)
	}
	dataAddr := advertiseAddr(ln.Addr().(*net.TCPAddr), o.Listen)

	// Rank 0 runs the coordinator concurrently with its own registration.
	coordErr := make(chan error, 1)
	coord := o.Coord
	if o.Rank == 0 {
		cln := o.CoordListener
		if cln == nil {
			if cln, err = net.Listen("tcp", o.Coord); err != nil {
				ln.Close()
				return nil, fmt.Errorf("transport: rank 0 coordinator listener: %w", err)
			}
		}
		coord = cln.Addr().String()
		go func() { coordErr <- runCoordinator(cln, o.Size, o.DialTimeout) }()
	}
	addrs, err := register(coord, o.Rank, dataAddr, o.DialTimeout)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if len(addrs) != o.Size {
		ln.Close()
		return nil, fmt.Errorf("transport: peer table has %d entries, want %d", len(addrs), o.Size)
	}

	// Mesh construction. Lower ranks accept from higher ranks; this rank
	// dials every lower rank. Both run concurrently — with deadlines, a
	// stuck peer fails the whole setup rather than hanging it.
	deadline := time.Now().Add(o.DialTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // accept side: expect Size-1-Rank inbound connections
		defer wg.Done()
		for i := 0; i < o.Size-1-o.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("transport: rank %d accept: %w", o.Rank, err))
				return
			}
			tc := conn.(*net.TCPConn)
			tc.SetDeadline(deadline)
			peer, err := readHandshake(tc)
			if err != nil || peer <= o.Rank || peer >= o.Size {
				if err == nil {
					err = fmt.Errorf("unexpected peer rank %d", peer)
				}
				tc.Close()
				fail(fmt.Errorf("transport: rank %d inbound handshake: %w", o.Rank, err))
				return
			}
			if err := writeHandshake(tc, o.Rank); err != nil {
				tc.Close()
				fail(fmt.Errorf("transport: rank %d handshake reply to %d: %w", o.Rank, peer, err))
				return
			}
			tc.SetDeadline(time.Time{})
			if !e.addPeer(peer, tc) {
				tc.Close()
				fail(fmt.Errorf("transport: duplicate connection from rank %d", peer))
				return
			}
		}
	}()
	for lower := 0; lower < o.Rank; lower++ {
		wg.Add(1)
		go func(lower int) { // dial side: connect to every lower rank
			defer wg.Done()
			conn, err := dialRetry(addrs[lower], time.Until(deadline))
			if err != nil {
				fail(fmt.Errorf("transport: rank %d dialing rank %d: %w", o.Rank, lower, err))
				return
			}
			tc := conn.(*net.TCPConn)
			tc.SetDeadline(deadline)
			if err := writeHandshake(tc, o.Rank); err == nil {
				var peer int
				if peer, err = readHandshake(tc); err == nil && peer != lower {
					err = fmt.Errorf("dialed rank %d but peer announced %d", lower, peer)
				}
			}
			if err != nil {
				tc.Close()
				fail(fmt.Errorf("transport: rank %d handshake with rank %d: %w", o.Rank, lower, err))
				return
			}
			tc.SetDeadline(time.Time{})
			if !e.addPeer(lower, tc) {
				tc.Close()
				fail(fmt.Errorf("transport: duplicate connection to rank %d", lower))
			}
		}(lower)
	}
	wg.Wait()
	ln.Close()
	if o.Rank == 0 {
		if err := <-coordErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		e.teardown()
		return nil, firstErr
	}
	for _, p := range e.peers {
		if p != nil {
			e.startPeer(p)
		}
	}
	return e, nil
}

// advertiseAddr turns the bound listener address into one peers can dial:
// a wildcard-host bind advertises loopback (single-host default) unless an
// explicit host was configured.
func advertiseAddr(bound *net.TCPAddr, listen string) string {
	if host, _, err := net.SplitHostPort(listen); err == nil && host != "" && host != "0.0.0.0" && host != "::" {
		return net.JoinHostPort(host, fmt.Sprint(bound.Port))
	}
	if bound.IP == nil || bound.IP.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", fmt.Sprint(bound.Port))
	}
	return bound.String()
}

func (e *tcpEndpoint) addPeer(rank int, conn *net.TCPConn) bool {
	p := &peerConn{
		rank: rank,
		conn: conn,
		out:  make(chan outFrame, e.opts.SendQueue),
		done: make(chan struct{}),
	}
	conn.SetNoDelay(true)
	if e.opts.Registry != nil {
		p.latency = e.opts.Registry.Histogram("mpcf_net_frame_latency_seconds",
			"Per-peer frame latency from send enqueue to socket flush.",
			telemetry.NetLatencyBuckets, telemetry.Labels{"peer": fmt.Sprint(rank)})
	}
	// peersMu guards only mesh-construction publication; the steady state
	// (after DialTCP returns) reads peers without locks.
	e.peersMu.Lock()
	defer e.peersMu.Unlock()
	if e.peers[rank] != nil {
		return false
	}
	e.peers[rank] = p
	return true
}

func (e *tcpEndpoint) startPeer(p *peerConn) {
	p.wg.Add(2)
	go e.writeLoop(p)
	go e.readPump(p)
}

// writeLoop drains p.out into a buffered writer, coalescing every frame
// available right now into one flush — small ghost-halo faces and header
// frames batch into single syscalls under load, while an idle queue still
// flushes each frame immediately.
func (e *tcpEndpoint) writeLoop(p *peerConn) {
	defer p.wg.Done()
	bw := bufio.NewWriterSize(p.conn, 256<<10)
	writeOne := func(f outFrame) error {
		if e.opts.WriteTimeout > 0 {
			p.conn.SetWriteDeadline(time.Now().Add(e.opts.WriteTimeout))
		}
		var hdr [frameHeader]byte
		putFrameHeader(&hdr, uint32(len(f.payload)), uint32(e.opts.Rank), f.tag)
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if len(f.payload) > 0 {
			if _, err := bw.Write(f.payload); err != nil {
				return err
			}
		}
		e.bytesSent.Add(int64(frameHeader + len(f.payload)))
		return nil
	}
	var pending []outFrame // frames in the buffer, not yet flushed
	flush := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		if p.latency != nil {
			now := time.Now()
			for _, f := range pending {
				p.latency.Observe(now.Sub(f.enq).Seconds())
			}
		}
		pending = pending[:0]
		return nil
	}
	fail := func(err error) {
		e.reportError(fmt.Errorf("transport: rank %d write to rank %d: %w", e.opts.Rank, p.rank, err))
		for range p.out { // drain so Send never blocks forever on a dead peer
		}
	}
	for f := range p.out {
		if err := writeOne(f); err != nil {
			fail(err)
			return
		}
		pending = append(pending, f)
	coalesce:
		for {
			select {
			case g, ok := <-p.out:
				if !ok {
					_ = flush()
					p.conn.CloseWrite()
					return
				}
				if err := writeOne(g); err != nil {
					fail(err)
					return
				}
				pending = append(pending, g)
			default:
				break coalesce
			}
		}
		if err := flush(); err != nil {
			fail(err)
			return
		}
	}
	// Queue closed with no trailing frame: flush whatever the last
	// iteration buffered and half-close so the peer's read pump sees EOF.
	_ = flush()
	p.conn.CloseWrite()
}

// readPump demultiplexes inbound frames into the delivery handler until
// the peer half-closes (after its FIN) or the connection fails.
func (e *tcpEndpoint) readPump(p *peerConn) {
	defer p.wg.Done()
	defer close(p.done)
	br := bufio.NewReaderSize(p.conn, 256<<10)
	for {
		if e.opts.ReadTimeout > 0 && !e.closed.Load() {
			p.conn.SetReadDeadline(time.Now().Add(e.opts.ReadTimeout))
		}
		src, tag, payload, err := readFrame(br, e.opts.MaxFrame)
		if err != nil {
			if err == io.EOF && (e.finSeen[p.rank].Load() || e.closed.Load()) {
				return // clean shutdown: FIN then half-close
			}
			if !e.closed.Load() {
				e.reportError(fmt.Errorf("transport: rank %d read from rank %d: %w", e.opts.Rank, p.rank, err))
			}
			return
		}
		if int(src) != p.rank {
			e.reportError(fmt.Errorf("transport: rank %d: frame from rank %d arrived on rank %d's connection", e.opts.Rank, src, p.rank))
			return
		}
		if tag >= TagReserved {
			if tag == tagFIN {
				e.finSeen[p.rank].Store(true)
			}
			continue // control frames never reach the handler
		}
		e.bytesRecv.Add(int64(frameHeader + len(payload)))
		var span telemetry.Span
		if e.opts.Tracer != nil {
			span = e.opts.Tracer.StartSpan("net_recv", e.opts.Rank, 1<<11|p.rank)
		}
		e.deliver(int(src), int(tag), payload)
		span.End()
	}
}

func (e *tcpEndpoint) Rank() int { return e.opts.Rank }
func (e *tcpEndpoint) Size() int { return e.opts.Size }

func (e *tcpEndpoint) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= e.opts.Size {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	if uint32(tag) >= TagReserved {
		return fmt.Errorf("transport: tag %#x is in the reserved control namespace", tag)
	}
	if len(payload) > e.opts.MaxFrame {
		return fmt.Errorf("transport: payload of %d bytes exceeds frame limit %d", len(payload), e.opts.MaxFrame)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if dst == e.opts.Rank {
		e.deliver(dst, tag, payload) // self-send short-circuits the wire
		return nil
	}
	var span telemetry.Span
	if e.opts.Tracer != nil {
		span = e.opts.Tracer.StartSpan("net_send", e.opts.Rank, 1<<10|dst)
	}
	e.peers[dst].out <- outFrame{tag: uint32(tag), payload: payload, enq: time.Now()}
	span.End()
	return nil
}

// Close performs the graceful shutdown: FIN to every peer, drain and
// half-close the write sides, then wait (bounded by CloseTimeout) for the
// peers' FIN + EOF so in-flight inbound frames are fully delivered.
func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		for _, p := range e.peers {
			if p == nil {
				continue
			}
			// FIN is the last frame; closing out lets the write loop drain,
			// flush and CloseWrite. Send-after-Close is excluded by contract.
			p.out <- outFrame{tag: tagFIN}
			close(p.out)
		}
		deadline := time.Now().Add(e.opts.CloseTimeout)
		for _, p := range e.peers {
			if p == nil {
				continue
			}
			select {
			case <-p.done:
			case <-time.After(time.Until(deadline)):
				p.conn.SetReadDeadline(time.Now()) // unstick the pump
				<-p.done
				if e.closeErr == nil {
					e.closeErr = fmt.Errorf("transport: rank %d: close timed out waiting for rank %d", e.opts.Rank, p.rank)
				}
			}
			p.conn.Close()
			p.wg.Wait()
		}
	})
	return e.closeErr
}

// teardown releases a partially built mesh after a setup failure.
func (e *tcpEndpoint) teardown() {
	for _, p := range e.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

func (e *tcpEndpoint) reportError(err error) {
	if e.opts.OnError != nil {
		e.opts.OnError(err)
	}
}
