package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cubism/internal/telemetry"
)

// TCPOptions configures one rank's TCP endpoint.
type TCPOptions struct {
	// Rank and Size identify this rank within the world. Required.
	Rank int
	Size int

	// Coord is the rendezvous coordinator address (host:port). Rank 0
	// listens on it (unless CoordListener is set); every rank dials it to
	// register. Required when Size > 1.
	Coord string

	// Listen is the address the data listener binds ("" means any port on
	// all interfaces, which is right for single-host runs; set an explicit
	// host for multi-homed machines so peers dial a reachable address).
	Listen string

	// DialTimeout bounds the whole rendezvous plus mesh construction
	// (default 30s). ReadTimeout/WriteTimeout are per-frame I/O deadlines
	// on established connections; a zero ReadTimeout falls back to
	// PeerTimeout (wire silence longer than that means the peer is gone —
	// heartbeats keep healthy-but-idle links alive). CloseTimeout bounds
	// the graceful FIN drain in Close (default 10s).
	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	CloseTimeout time.Duration

	// MaxFrame bounds a single frame payload (default DefaultMaxFrame).
	// SendQueue is the per-peer outgoing frame queue depth (default 256);
	// Send blocks when the peer's queue is full (backpressure).
	MaxFrame  int
	SendQueue int

	// Reliability knobs (docs/networking.md "Fault model and recovery").
	//
	// HeartbeatInterval is how often an idle link emits a heartbeat frame
	// so the peer's liveness deadline stays fresh (default 2s; negative
	// disables). PeerTimeout is the failure-detection horizon: the longest
	// the endpoint tolerates a silent or unreachable peer before declaring
	// it lost (default 30s). RetransmitTimeout is the longest a sent frame
	// may sit unacknowledged before the connection is presumed broken and
	// recovered (default 3s; negative disables). MaxReconnect caps dial
	// attempts per recovery episode (default 8; negative disables
	// reconnection entirely, turning any connection fault into a peer
	// failure). ResendQueue bounds the per-peer window of sent-but-unacked
	// frames (default 1024); a full window pauses the writer until acks
	// arrive.
	HeartbeatInterval time.Duration
	PeerTimeout       time.Duration
	RetransmitTimeout time.Duration
	MaxReconnect      int
	ResendQueue       int

	// Fault, when non-nil, is consulted for every outgoing data frame and
	// may corrupt the wire (drops, duplicates, reorders, bit-flips, resets,
	// delays). Retransmissions and control frames are exempt so recovery
	// always makes progress. Test-only; production runs leave it nil.
	Fault FaultInjector

	// Registry/Tracer receive net metrics and spans; nil disables them.
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	// CoordListener, when non-nil on rank 0, is a pre-bound listener used
	// for rendezvous instead of binding Coord. Lets tests and mpcf-launch
	// pick a free port without a bind race.
	CoordListener net.Listener

	// OnError, when non-nil, observes unrecoverable failures: a peer that
	// stayed unreachable past PeerTimeout/MaxReconnect. Transient faults
	// (resets, drops, corrupted frames) are recovered internally and never
	// reported. At most one error is delivered per endpoint.
	OnError func(error)
}

func (o *TCPOptions) withDefaults() TCPOptions {
	v := *o
	if v.DialTimeout <= 0 {
		v.DialTimeout = 30 * time.Second
	}
	if v.CloseTimeout <= 0 {
		v.CloseTimeout = 10 * time.Second
	}
	if v.MaxFrame <= 0 {
		v.MaxFrame = DefaultMaxFrame
	}
	if v.SendQueue <= 0 {
		v.SendQueue = 256
	}
	if v.HeartbeatInterval == 0 {
		v.HeartbeatInterval = 2 * time.Second
	}
	if v.PeerTimeout <= 0 {
		v.PeerTimeout = 30 * time.Second
	}
	if v.RetransmitTimeout == 0 {
		v.RetransmitTimeout = 3 * time.Second
	}
	if v.MaxReconnect == 0 {
		v.MaxReconnect = 8
	}
	if v.ResendQueue <= 0 {
		v.ResendQueue = 1024
	}
	return v
}

type outFrame struct {
	tag     uint32
	payload []byte
	enq     time.Time
}

// wireFrame is a sequenced frame held in the resend window: assigned its
// sequence number at writer dequeue, removed when the peer's cumulative ack
// passes it, replayed verbatim after a reconnect.
type wireFrame struct {
	tag     uint32
	seq     uint64
	payload []byte
	sentAt  time.Time // last (re)transmission; drives the ack-stall check
}

// acceptedConn is a redial admitted by the accept loop, waiting for the
// peer's supervisor to adopt it.
type acceptedConn struct {
	conn         *net.TCPConn
	peerRecvNext uint64
}

// peerConn is one side of the persistent duplex link to a peer. The conn
// itself is replaceable (reconnects swap it); the reliability state — the
// sequence counters and the resend window — outlives any one connection.
type peerConn struct {
	rank      int
	out       chan outFrame
	accepted  chan acceptedConn // redials admitted by the accept loop (cap 1)
	done      chan struct{}     // supervisor exited
	ackPing   chan struct{}     // reader → writer: ack state advanced (cap 1)
	failed    atomic.Bool
	drainOnce sync.Once

	mu        sync.Mutex
	conn      *net.TCPConn
	nextSeq   uint64      // next outgoing sequence number
	unacked   []wireFrame // sent, not yet cumulatively acked (ascending seq)
	recvNext  uint64      // next sequence number expected from the peer
	ackSent   uint64      // highest recvNext acked on the current connection
	peerFIN   bool        // peer's FIN delivered
	finQueued bool        // our FIN assigned its sequence number
	outClosed bool        // Close drained p.out

	initPRN uint64 // peer's handshake recv_next from mesh construction

	latency *telemetry.Histogram // enqueue→flush seconds, nil when telemetry off
}

type tcpEndpoint struct {
	opts    TCPOptions
	deliver Handler
	peersMu sync.Mutex
	peers   []*peerConn // index by rank; nil at self
	addrs   []string    // peer data-listener addresses (for redials)
	ln      net.Listener

	closed    atomic.Bool // Send rejected; graceful teardown underway
	shutdown  atomic.Bool // hard teardown: stop reconnecting, exit loops
	closeOnce sync.Once
	closeErr  error
	failOnce  sync.Once

	acceptWG sync.WaitGroup
	supWG    sync.WaitGroup

	bytesSent      *telemetry.Counter
	bytesRecv      *telemetry.Counter
	crcErrors      *telemetry.Counter
	reconnects     *telemetry.Counter
	retransmits    *telemetry.Counter
	dupDropped     *telemetry.Counter
	faultsInjected *telemetry.Counter
}

// DialTCP establishes the full peer mesh for one rank: rendezvous through
// the coordinator, then one persistent duplex TCP connection per peer pair
// (the higher rank dials the lower; both sides handshake with their rank
// and expected next sequence number). It returns only after every peer
// connection is up, so the first Send never races mesh construction.
func DialTCP(opts TCPOptions, deliver Handler) (Endpoint, error) {
	o := opts.withDefaults()
	if o.Size <= 0 || o.Rank < 0 || o.Rank >= o.Size {
		return nil, fmt.Errorf("transport: invalid rank %d of %d", o.Rank, o.Size)
	}
	e := &tcpEndpoint{
		opts:    o,
		deliver: deliver,
		peers:   make([]*peerConn, o.Size),
	}
	if o.Registry != nil {
		rankLabel := telemetry.Labels{"rank": fmt.Sprint(o.Rank)}
		e.bytesSent = o.Registry.Counter("mpcf_net_bytes_sent",
			"Wire bytes sent by the tcp transport (headers included).", rankLabel)
		e.bytesRecv = o.Registry.Counter("mpcf_net_bytes_recv",
			"Wire bytes received by the tcp transport (headers included).", rankLabel)
		e.crcErrors = o.Registry.Counter("mpcf_net_crc_errors",
			"Frames rejected by the CRC32C integrity check.", rankLabel)
		e.reconnects = o.Registry.Counter("mpcf_net_reconnects",
			"Peer connections re-established after a failure.", rankLabel)
		e.retransmits = o.Registry.Counter("mpcf_net_retransmits",
			"Frames replayed from the resend window after a reconnect.", rankLabel)
		e.dupDropped = o.Registry.Counter("mpcf_net_dup_frames",
			"Duplicate frames discarded by sequence-number dedup.", rankLabel)
		e.faultsInjected = o.Registry.Counter("mpcf_net_faults_injected",
			"Wire faults injected by the configured fault plan (tests only).", rankLabel)
	}
	if o.Size == 1 {
		return e, nil // no listener, no rendezvous: a 1-rank world has no wire
	}
	if o.Coord == "" && o.CoordListener == nil {
		return nil, fmt.Errorf("transport: coordinator address required for size %d", o.Size)
	}

	// Data listener first so its address can be registered.
	ln, err := net.Listen("tcp", o.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d data listener: %w", o.Rank, err)
	}
	dataAddr := advertiseAddr(ln.Addr().(*net.TCPAddr), o.Listen)

	// Rank 0 runs the coordinator concurrently with its own registration.
	coordErr := make(chan error, 1)
	coord := o.Coord
	if o.Rank == 0 {
		cln := o.CoordListener
		if cln == nil {
			if cln, err = net.Listen("tcp", o.Coord); err != nil {
				ln.Close()
				return nil, fmt.Errorf("transport: rank 0 coordinator listener: %w", err)
			}
		}
		coord = cln.Addr().String()
		go func() { coordErr <- runCoordinator(cln, o.Size, o.DialTimeout) }()
	}
	addrs, err := register(coord, o.Rank, dataAddr, o.DialTimeout)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if len(addrs) != o.Size {
		ln.Close()
		return nil, fmt.Errorf("transport: peer table has %d entries, want %d", len(addrs), o.Size)
	}
	e.addrs = addrs

	// Mesh construction. Lower ranks accept from higher ranks; this rank
	// dials every lower rank. Both run concurrently — with deadlines, a
	// stuck peer fails the whole setup rather than hanging it.
	deadline := time.Now().Add(o.DialTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // accept side: expect Size-1-Rank inbound connections
		defer wg.Done()
		for i := 0; i < o.Size-1-o.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("transport: rank %d accept: %w", o.Rank, err))
				return
			}
			tc := conn.(*net.TCPConn)
			tc.SetDeadline(deadline)
			peer, prn, err := readHandshake(tc)
			if err != nil || peer <= o.Rank || peer >= o.Size {
				if err == nil {
					err = fmt.Errorf("unexpected peer rank %d", peer)
				}
				tc.Close()
				fail(fmt.Errorf("transport: rank %d inbound handshake: %w", o.Rank, err))
				return
			}
			if err := writeHandshake(tc, o.Rank, 0); err != nil {
				tc.Close()
				fail(fmt.Errorf("transport: rank %d handshake reply to %d: %w", o.Rank, peer, err))
				return
			}
			tc.SetDeadline(time.Time{})
			if !e.addPeer(peer, tc, prn) {
				tc.Close()
				fail(fmt.Errorf("transport: duplicate connection from rank %d", peer))
				return
			}
		}
	}()
	for lower := 0; lower < o.Rank; lower++ {
		wg.Add(1)
		go func(lower int) { // dial side: connect to every lower rank
			defer wg.Done()
			conn, err := dialRetry(addrs[lower], time.Until(deadline))
			if err != nil {
				fail(fmt.Errorf("transport: rank %d dialing rank %d: %w", o.Rank, lower, err))
				return
			}
			tc := conn.(*net.TCPConn)
			tc.SetDeadline(deadline)
			var peer int
			var prn uint64
			if err := writeHandshake(tc, o.Rank, 0); err == nil {
				if peer, prn, err = readHandshake(tc); err == nil && peer != lower {
					err = fmt.Errorf("dialed rank %d but peer announced %d", lower, peer)
				}
			}
			if err != nil {
				tc.Close()
				fail(fmt.Errorf("transport: rank %d handshake with rank %d: %w", o.Rank, lower, err))
				return
			}
			tc.SetDeadline(time.Time{})
			if !e.addPeer(lower, tc, prn) {
				tc.Close()
				fail(fmt.Errorf("transport: duplicate connection to rank %d", lower))
			}
		}(lower)
	}
	wg.Wait()
	if o.Rank == 0 {
		if err := <-coordErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		ln.Close()
		e.teardown()
		return nil, firstErr
	}
	// The data listener stays open for the life of the endpoint: it is the
	// door through which higher-ranked peers redial after a connection
	// failure.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	e.ln = ln
	e.acceptWG.Add(1)
	go e.acceptLoop()
	for _, p := range e.peers {
		if p != nil {
			e.supWG.Add(1)
			go e.supervise(p, p.conn, p.initPRN)
		}
	}
	return e, nil
}

// advertiseAddr turns the bound listener address into one peers can dial:
// a wildcard-host bind advertises loopback (single-host default) unless an
// explicit host was configured.
func advertiseAddr(bound *net.TCPAddr, listen string) string {
	if host, _, err := net.SplitHostPort(listen); err == nil && host != "" && host != "0.0.0.0" && host != "::" {
		return net.JoinHostPort(host, fmt.Sprint(bound.Port))
	}
	if bound.IP == nil || bound.IP.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", fmt.Sprint(bound.Port))
	}
	return bound.String()
}

func (e *tcpEndpoint) addPeer(rank int, conn *net.TCPConn, peerRecvNext uint64) bool {
	p := &peerConn{
		rank:     rank,
		conn:     conn,
		out:      make(chan outFrame, e.opts.SendQueue),
		accepted: make(chan acceptedConn, 1),
		done:     make(chan struct{}),
		ackPing:  make(chan struct{}, 1),
		initPRN:  peerRecvNext,
	}
	conn.SetNoDelay(true)
	if e.opts.Registry != nil {
		p.latency = e.opts.Registry.Histogram("mpcf_net_frame_latency_seconds",
			"Per-peer frame latency from send enqueue to socket flush.",
			telemetry.NetLatencyBuckets, telemetry.Labels{"peer": fmt.Sprint(rank)})
	}
	// peersMu guards only mesh-construction publication; the steady state
	// (after DialTCP returns) reads peers without locks.
	e.peersMu.Lock()
	defer e.peersMu.Unlock()
	if e.peers[rank] != nil {
		return false
	}
	e.peers[rank] = p
	return true
}

// acceptLoop admits peer redials for the life of the endpoint. It exits
// when Close/Abort shuts the listener.
func (e *tcpEndpoint) acceptLoop() {
	defer e.acceptWG.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.acceptWG.Add(1)
		go e.admitReconnect(conn.(*net.TCPConn))
	}
}

// admitReconnect handshakes an inbound redial and hands the fresh
// connection to the peer's supervisor, displacing any stale one.
func (e *tcpEndpoint) admitReconnect(tc *net.TCPConn) {
	defer e.acceptWG.Done()
	tc.SetDeadline(time.Now().Add(10 * time.Second))
	peer, prn, err := readHandshake(tc)
	if err != nil || peer <= e.opts.Rank || peer >= e.opts.Size {
		tc.Close()
		return
	}
	p := e.peers[peer]
	if p == nil || p.failed.Load() || e.shutdown.Load() {
		tc.Close()
		return
	}
	p.mu.Lock()
	rn := p.recvNext
	p.mu.Unlock()
	if err := writeHandshake(tc, e.opts.Rank, rn); err != nil {
		tc.Close()
		return
	}
	tc.SetDeadline(time.Time{})
	tc.SetNoDelay(true)
	ac := acceptedConn{conn: tc, peerRecvNext: prn}
	for {
		select {
		case p.accepted <- ac:
			return
		default:
		}
		select {
		case stale := <-p.accepted:
			stale.conn.Close()
		default:
		}
	}
}

// supervise owns the link to one peer: it runs the reader/writer pair over
// the current connection and, when the connection fails for any reason
// (injected reset, CRC poisoning, sequence gap, ack stall, peer silence),
// re-establishes it and replays the resend window. It exits on a completed
// graceful shutdown, endpoint teardown, or an unrecoverable peer failure.
func (e *tcpEndpoint) supervise(p *peerConn, conn *net.TCPConn, peerRecvNext uint64) {
	defer e.supWG.Done()
	defer close(p.done)
	for {
		p.mu.Lock()
		p.conn = conn
		p.mu.Unlock()
		// The handshake's recv_next is a cumulative ack: trim the resend
		// window before the writer replays the remainder.
		p.advanceAck(peerRecvNext)
		clean, err := e.runConn(p, conn)
		conn.Close()
		if clean || e.shutdownDone(p) || e.shutdown.Load() {
			return
		}
		e.reconnects.Inc()
		var nerr error
		conn, peerRecvNext, nerr = e.reestablish(p)
		if nerr != nil {
			if e.shutdown.Load() {
				return
			}
			e.peerFail(p, fmt.Errorf("transport: rank %d: peer rank %d lost: %v (last connection error: %v)",
				e.opts.Rank, p.rank, nerr, err))
			return
		}
	}
}

// runConn drives one connection until graceful completion or the first
// failure on either direction. clean means the graceful FIN exchange
// finished on this connection.
func (e *tcpEndpoint) runConn(p *peerConn, conn *net.TCPConn) (bool, error) {
	stop := make(chan struct{})
	var mu sync.Mutex
	var firstErr error
	failed := false
	fail := func(err error) {
		mu.Lock()
		if !failed {
			failed = true
			firstErr = err
			close(stop)
			conn.Close() // unstick both loops
		}
		mu.Unlock()
	}
	var readerClean, writerClean bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		readerClean = e.connReader(p, conn, fail)
	}()
	go func() {
		defer wg.Done()
		writerClean = e.connWriter(p, conn, stop, fail)
	}()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return readerClean && writerClean && !failed, firstErr
}

// shutdownDone reports whether the graceful shutdown with this peer has
// fully completed: our FIN sequenced and acked, the peer's FIN delivered.
func (e *tcpEndpoint) shutdownDone(p *peerConn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finQueued && len(p.unacked) == 0 && p.peerFIN
}

// connReader demultiplexes inbound frames: data is checked against the
// expected sequence number (behind dup-drop, ahead poisons the connection),
// delivered in order exactly once, and acknowledged via the writer.
func (e *tcpEndpoint) connReader(p *peerConn, conn *net.TCPConn, fail func(error)) bool {
	br := bufio.NewReaderSize(conn, 256<<10)
	rt := e.opts.ReadTimeout
	if rt <= 0 {
		rt = e.opts.PeerTimeout
	}
	for {
		if rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		src, tag, seq, payload, err := readFrame(br, e.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				e.crcErrors.Inc()
			}
			if err == io.EOF {
				if e.shutdownDone(p) || e.shutdown.Load() {
					return true
				}
				err = errors.New("connection closed without FIN")
			}
			fail(fmt.Errorf("transport: rank %d read from rank %d: %w", e.opts.Rank, p.rank, err))
			return false
		}
		if int(src) != p.rank {
			fail(fmt.Errorf("transport: rank %d: frame from rank %d arrived on rank %d's connection", e.opts.Rank, src, p.rank))
			return false
		}
		switch {
		case tag == tagACK:
			p.advanceAck(seq)
		case tag == tagHB:
			// Nothing to do: the read itself refreshed the liveness deadline.
		case tag == tagFIN || tag < TagReserved:
			p.mu.Lock()
			want := p.recvNext
			switch {
			case seq < want:
				p.mu.Unlock()
				e.dupDropped.Inc()
				p.ping() // re-ack so a replaying peer stops resending
			case seq > want:
				p.mu.Unlock()
				fail(fmt.Errorf("transport: rank %d: sequence gap from rank %d (got %d, want %d): frame lost in flight", e.opts.Rank, p.rank, seq, want))
				return false
			default:
				p.recvNext++
				if tag == tagFIN {
					p.peerFIN = true
					p.mu.Unlock()
				} else {
					p.mu.Unlock()
					e.bytesRecv.Add(int64(frameHeader + len(payload)))
					var span telemetry.Span
					if e.opts.Tracer != nil {
						span = e.opts.Tracer.StartSpan("net_recv", e.opts.Rank, 1<<11|p.rank)
					}
					e.deliver(int(src), int(tag), payload)
					span.End()
				}
				p.ping()
			}
		default:
			// Unknown reserved tag: tolerated for forward compatibility.
		}
	}
}

// connWriter drains p.out into the connection, assigning sequence numbers
// at dequeue and parking every sent frame in the resend window until the
// peer's cumulative ack passes it. On a fresh connection it first replays
// the window (retransmissions are exempt from fault injection). It also
// emits acks on the reader's behalf, heartbeats on idle, and the ack-stall
// check that turns a silently broken link into a recovery.
func (e *tcpEndpoint) connWriter(p *peerConn, conn *net.TCPConn, stop <-chan struct{}, fail func(error)) bool {
	bw := bufio.NewWriterSize(conn, 256<<10)
	fatal := func(err error) bool {
		fail(fmt.Errorf("transport: rank %d write to rank %d: %w", e.opts.Rank, p.rank, err))
		return false
	}

	p.mu.Lock()
	p.ackSent = 0 // re-ack from scratch: the previous conn's acks may be lost
	replay := make([]wireFrame, len(p.unacked))
	copy(replay, p.unacked)
	now := time.Now()
	for i := range p.unacked {
		p.unacked[i].sentAt = now
	}
	p.mu.Unlock()
	for _, f := range replay {
		e.retransmits.Inc()
		if err := e.writeWire(bw, conn, f.tag, f.seq, f.payload); err != nil {
			return fatal(err)
		}
	}
	if err := e.maybeAck(p, conn, bw); err != nil {
		return fatal(err)
	}
	if err := bw.Flush(); err != nil {
		return fatal(err)
	}

	hb := e.opts.HeartbeatInterval
	tick := e.opts.RetransmitTimeout / 4
	if hb > 0 && (tick <= 0 || hb < tick) {
		tick = hb
	}
	if tick <= 0 {
		tick = time.Second
	}
	if tick < 2*time.Millisecond {
		tick = 2 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	var held *wireFrame     // reorder-fault frame awaiting its successor
	var pending []time.Time // enqueue stamps of unflushed frames
	lastWrite := time.Now()
	flush := func() bool {
		if err := bw.Flush(); err != nil {
			return fatal(err)
		}
		if p.latency != nil {
			fnow := time.Now()
			for _, enq := range pending {
				p.latency.Observe(fnow.Sub(enq).Seconds())
			}
		}
		pending = pending[:0]
		return true
	}

	for {
		// Gate: stop pulling frames while the resend window is full (acks
		// reopen it) or after Close drained the queue.
		src := p.out
		p.mu.Lock()
		if p.outClosed || len(p.unacked) >= e.opts.ResendQueue {
			src = nil
		}
		ready := p.finQueued && len(p.unacked) == 0 && p.peerFIN
		p.mu.Unlock()
		if ready {
			// Graceful shutdown complete both ways: ack the peer's FIN and
			// half-close so its reader sees a clean EOF.
			if err := e.maybeAck(p, conn, bw); err != nil {
				return fatal(err)
			}
			if err := bw.Flush(); err != nil {
				return fatal(err)
			}
			conn.CloseWrite()
			return true
		}

		select {
		case <-stop:
			return false
		case f, ok := <-src:
			if !ok {
				p.mu.Lock()
				p.outClosed = true
				p.mu.Unlock()
				continue
			}
			if err := e.writeData(p, conn, bw, p.assign(f), &held); err != nil {
				return fatal(err)
			}
			pending = append(pending, f.enq)
			// Coalesce whatever is ready right now into the same flush —
			// small ghost-halo faces batch into single syscalls under load.
		coalesce:
			for {
				p.mu.Lock()
				full := len(p.unacked) >= e.opts.ResendQueue
				p.mu.Unlock()
				if full {
					break
				}
				select {
				case g, ok := <-p.out:
					if !ok {
						p.mu.Lock()
						p.outClosed = true
						p.mu.Unlock()
						break coalesce
					}
					if err := e.writeData(p, conn, bw, p.assign(g), &held); err != nil {
						return fatal(err)
					}
					pending = append(pending, g.enq)
				default:
					break coalesce
				}
			}
			if err := e.maybeAck(p, conn, bw); err != nil {
				return fatal(err)
			}
			if !flush() {
				return false
			}
			lastWrite = time.Now()
		case <-p.ackPing:
			if err := e.maybeAck(p, conn, bw); err != nil {
				return fatal(err)
			}
			if !flush() {
				return false
			}
		case <-ticker.C:
			if held != nil { // complete a dangling reorder: nothing followed it
				h := *held
				held = nil
				if err := e.writeWire(bw, conn, h.tag, h.seq, h.payload); err != nil {
					return fatal(err)
				}
				if !flush() {
					return false
				}
				lastWrite = time.Now()
			}
			p.mu.Lock()
			var oldest time.Time
			if len(p.unacked) > 0 {
				oldest = p.unacked[0].sentAt
			}
			p.mu.Unlock()
			if rt := e.opts.RetransmitTimeout; rt > 0 && !oldest.IsZero() && time.Since(oldest) > rt {
				fail(fmt.Errorf("transport: rank %d: rank %d stopped acknowledging (oldest frame outstanding %v)",
					e.opts.Rank, p.rank, time.Since(oldest).Round(time.Millisecond)))
				return false
			}
			if hb > 0 && time.Since(lastWrite) >= hb {
				if err := e.writeWire(bw, conn, tagHB, 0, nil); err != nil {
					return fatal(err)
				}
				if !flush() {
					return false
				}
				lastWrite = time.Now()
			}
		}
	}
}

// assign stamps an outgoing frame with its sequence number and parks it in
// the resend window. Called only by the writer, immediately before the
// write attempt, so replay order always matches sequence order.
func (p *peerConn) assign(f outFrame) wireFrame {
	p.mu.Lock()
	defer p.mu.Unlock()
	wf := wireFrame{tag: f.tag, seq: p.nextSeq, payload: f.payload, sentAt: time.Now()}
	p.nextSeq++
	if f.tag == tagFIN {
		p.finQueued = true
	}
	p.unacked = append(p.unacked, wf)
	return wf
}

// advanceAck trims the resend window up to (excluding) the peer's
// cumulative ack and wakes the writer (the window gate may have reopened).
func (p *peerConn) advanceAck(upto uint64) {
	p.mu.Lock()
	i := 0
	for i < len(p.unacked) && p.unacked[i].seq < upto {
		i++
	}
	if i > 0 {
		n := copy(p.unacked, p.unacked[i:])
		tail := p.unacked[n:]
		for j := range tail {
			tail[j] = wireFrame{} // drop payload references
		}
		p.unacked = p.unacked[:n]
	}
	p.mu.Unlock()
	if i > 0 {
		p.ping()
	}
}

// ping nudges the writer without blocking (delivery advanced, ack due, or
// the resend window reopened).
func (p *peerConn) ping() {
	select {
	case p.ackPing <- struct{}{}:
	default:
	}
}

// maybeAck writes a cumulative ack if delivery has advanced past the last
// ack sent on this connection.
func (e *tcpEndpoint) maybeAck(p *peerConn, conn *net.TCPConn, bw *bufio.Writer) error {
	p.mu.Lock()
	rn := p.recvNext
	send := rn > p.ackSent
	if send {
		p.ackSent = rn
	}
	p.mu.Unlock()
	if !send {
		return nil
	}
	return e.writeWire(bw, conn, tagACK, rn, nil)
}

// writeWire emits one frame verbatim.
func (e *tcpEndpoint) writeWire(bw *bufio.Writer, conn *net.TCPConn, tag uint32, seq uint64, payload []byte) error {
	if e.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(e.opts.WriteTimeout))
	}
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, uint32(len(payload)), uint32(e.opts.Rank), tag, seq, payload)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	e.bytesSent.Add(int64(frameHeader + len(payload)))
	return nil
}

// writeWireFlipped emits a frame whose header (CRC included) describes the
// pristine payload but whose payload bytes carry one inverted bit — the
// shared payload slice itself is never mutated.
func (e *tcpEndpoint) writeWireFlipped(bw *bufio.Writer, conn *net.TCPConn, f wireFrame, bit uint64) error {
	if e.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(e.opts.WriteTimeout))
	}
	var hdr [frameHeader]byte
	putFrameHeader(&hdr, uint32(len(f.payload)), uint32(e.opts.Rank), f.tag, f.seq, f.payload)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	idx := int(bit % uint64(len(f.payload)*8))
	byteIdx, mask := idx/8, byte(1)<<(idx%8)
	if _, err := bw.Write(f.payload[:byteIdx]); err != nil {
		return err
	}
	if err := bw.WriteByte(f.payload[byteIdx] ^ mask); err != nil {
		return err
	}
	if _, err := bw.Write(f.payload[byteIdx+1:]); err != nil {
		return err
	}
	e.bytesSent.Add(int64(frameHeader + len(f.payload)))
	return nil
}

// writeData emits one freshly sequenced frame, routed through the fault
// injector when one is configured. Every fault leaves the frame parked in
// the resend window, so recovery — dedup, gap detection, ack-stall, replay
// — makes it invisible to the layer above.
func (e *tcpEndpoint) writeData(p *peerConn, conn *net.TCPConn, bw *bufio.Writer, f wireFrame, held **wireFrame) error {
	if *held != nil && f.tag == tagFIN {
		// Never reorder past FIN: release the held frame first.
		h := **held
		*held = nil
		if err := e.writeWire(bw, conn, h.tag, h.seq, h.payload); err != nil {
			return err
		}
	}
	var dec FaultDecision
	if e.opts.Fault != nil && f.tag < TagReserved {
		dec = e.opts.Fault.Outgoing(p.rank, int(f.tag), len(f.payload))
	}
	switch dec.Action {
	case FaultDrop:
		e.faultsInjected.Inc()
		return nil // stays in the window; gap or ack-stall recovers it
	case FaultDup:
		e.faultsInjected.Inc()
		if err := e.writeWire(bw, conn, f.tag, f.seq, f.payload); err != nil {
			return err
		}
		return e.writeWire(bw, conn, f.tag, f.seq, f.payload)
	case FaultReorder:
		e.faultsInjected.Inc()
		if *held != nil {
			h := **held
			if err := e.writeWire(bw, conn, h.tag, h.seq, h.payload); err != nil {
				return err
			}
		}
		cp := f
		*held = &cp
		return nil
	case FaultFlip:
		e.faultsInjected.Inc()
		if len(f.payload) > 0 {
			return e.writeWireFlipped(bw, conn, f, dec.FlipBit)
		}
	case FaultReset:
		e.faultsInjected.Inc()
		werr := e.writeWire(bw, conn, f.tag, f.seq, f.payload)
		if werr == nil {
			werr = bw.Flush()
		}
		conn.SetLinger(0)
		conn.Close()
		if werr != nil {
			return werr
		}
		return errors.New("injected connection reset")
	case FaultDelay:
		e.faultsInjected.Inc()
		time.Sleep(dec.Delay)
	}
	if err := e.writeWire(bw, conn, f.tag, f.seq, f.payload); err != nil {
		return err
	}
	if *held != nil { // the successor is on the wire: emit the held frame
		h := **held
		*held = nil
		return e.writeWire(bw, conn, h.tag, h.seq, h.payload)
	}
	return nil
}

// reestablish recovers the connection to a peer after a failure. The rank
// that dialed originally redials; the rank that accepted waits for the
// redial through the standing data listener. Bounded by PeerTimeout and
// MaxReconnect — exhausting either declares the peer lost.
func (e *tcpEndpoint) reestablish(p *peerConn) (*net.TCPConn, uint64, error) {
	if e.opts.MaxReconnect < 0 {
		return nil, 0, errors.New("reconnect disabled")
	}
	deadline := time.Now().Add(e.opts.PeerTimeout)
	if p.rank < e.opts.Rank {
		var lastErr error
		for attempt := 0; attempt < e.opts.MaxReconnect; attempt++ {
			if e.shutdown.Load() {
				return nil, 0, ErrClosed
			}
			budget := time.Until(deadline)
			if budget <= 0 {
				break
			}
			if budget > 2*time.Second {
				budget = 2 * time.Second
			}
			conn, err := dialRetry(e.addrs[p.rank], budget)
			if err != nil {
				lastErr = err
				continue
			}
			tc := conn.(*net.TCPConn)
			tc.SetDeadline(time.Now().Add(5 * time.Second))
			p.mu.Lock()
			rn := p.recvNext
			p.mu.Unlock()
			var peer int
			var prn uint64
			if err = writeHandshake(tc, e.opts.Rank, rn); err == nil {
				if peer, prn, err = readHandshake(tc); err == nil && peer != p.rank {
					err = fmt.Errorf("redialed rank %d but peer announced %d", p.rank, peer)
				}
			}
			if err != nil {
				lastErr = err
				tc.Close()
				continue
			}
			tc.SetDeadline(time.Time{})
			tc.SetNoDelay(true)
			return tc, prn, nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("no redial succeeded within %v", e.opts.PeerTimeout)
		}
		return nil, 0, lastErr
	}
	for {
		if e.shutdown.Load() {
			return nil, 0, ErrClosed
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, 0, fmt.Errorf("rank %d did not redial within %v", p.rank, e.opts.PeerTimeout)
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		select {
		case ac := <-p.accepted:
			return ac.conn, ac.peerRecvNext, nil
		case <-time.After(wait):
		}
	}
}

// peerFail marks a peer permanently unreachable: Sends to it fail fast, a
// drain keeps already-blocked Sends from hanging, and the failure escalates
// through OnError exactly once.
func (e *tcpEndpoint) peerFail(p *peerConn, err error) {
	p.failed.Store(true)
	p.drainOnce.Do(func() {
		ch := p.out
		go func() {
			for range ch {
			}
		}()
	})
	e.reportError(err)
}

func (e *tcpEndpoint) Rank() int { return e.opts.Rank }
func (e *tcpEndpoint) Size() int { return e.opts.Size }

func (e *tcpEndpoint) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= e.opts.Size {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	if uint32(tag) >= TagReserved {
		return fmt.Errorf("transport: tag %#x is in the reserved control namespace", tag)
	}
	if len(payload) > e.opts.MaxFrame {
		return fmt.Errorf("transport: payload of %d bytes exceeds frame limit %d", len(payload), e.opts.MaxFrame)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if dst == e.opts.Rank {
		e.deliver(dst, tag, payload) // self-send short-circuits the wire
		return nil
	}
	p := e.peers[dst]
	if p.failed.Load() {
		return fmt.Errorf("transport: rank %d unreachable (peer failed)", dst)
	}
	var span telemetry.Span
	if e.opts.Tracer != nil {
		span = e.opts.Tracer.StartSpan("net_send", e.opts.Rank, 1<<10|dst)
	}
	p.out <- outFrame{tag: uint32(tag), payload: payload, enq: time.Now()}
	span.End()
	return nil
}

// Close performs the graceful shutdown: FIN to every peer (sequenced, so it
// survives reconnects and arrives exactly once), then wait — bounded by
// CloseTimeout — for every FIN exchange to complete so in-flight frames in
// both directions are fully delivered.
func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		deadline := time.Now().Add(e.opts.CloseTimeout)
		for _, p := range e.peers {
			if p == nil {
				continue
			}
			p.out <- outFrame{tag: tagFIN}
			close(p.out)
		}
		for _, p := range e.peers {
			if p == nil {
				continue
			}
			wait := time.Until(deadline)
			if wait < 0 {
				wait = 0
			}
			select {
			case <-p.done:
			case <-time.After(wait):
				if e.closeErr == nil {
					e.closeErr = fmt.Errorf("transport: rank %d: close timed out waiting for rank %d", e.opts.Rank, p.rank)
				}
				e.shutdown.Store(true)
				p.forceClose()
				<-p.done
			}
		}
		e.shutdown.Store(true)
		if e.ln != nil {
			e.ln.Close()
		}
		e.acceptWG.Wait()
		e.supWG.Wait()
	})
	return e.closeErr
}

// Abort hard-kills the endpoint: no FIN, no drain — from the peers'
// perspective this rank crashed mid-step. The chaos suite uses it to prove
// failure detection; production code always prefers Close.
func (e *tcpEndpoint) Abort() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.shutdown.Store(true)
		e.closeErr = ErrClosed
		if e.ln != nil {
			e.ln.Close()
		}
		for _, p := range e.peers {
			if p == nil {
				continue
			}
			p.failed.Store(true)
			p.drainOnce.Do(func() {
				ch := p.out
				go func() {
					for range ch {
					}
				}()
			})
			p.forceClose()
		}
		e.acceptWG.Wait()
		e.supWG.Wait()
	})
}

// forceClose tears down the peer's live connection and any admitted redial.
func (p *peerConn) forceClose() {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
	select {
	case ac := <-p.accepted:
		ac.conn.Close()
	default:
	}
}

// teardown releases a partially built mesh after a setup failure.
func (e *tcpEndpoint) teardown() {
	for _, p := range e.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// reportError escalates the first unrecoverable failure. Failures during a
// deliberate teardown surface through Close's return value instead.
func (e *tcpEndpoint) reportError(err error) {
	if e.closed.Load() {
		return
	}
	e.failOnce.Do(func() {
		if e.opts.OnError != nil {
			e.opts.OnError(err)
		}
	})
}
