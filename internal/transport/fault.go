package transport

import "time"

// FaultAction is what a FaultInjector tells the tcp write path to do with
// one outgoing data frame. Faults act strictly below the reliability layer
// (the frame is already registered in the resend queue when the decision is
// consulted), so every action must be recovered transparently by the
// sequence/ack/reconnect machinery — that recovery is exactly what the
// chaos suite proves.
type FaultAction uint8

const (
	// FaultPass writes the frame normally.
	FaultPass FaultAction = iota
	// FaultDrop skips the write; the receiver sees a sequence gap (or the
	// sender an ack stall) and recovery replays the frame.
	FaultDrop
	// FaultDup writes the frame twice; the receiver's dedup drops the copy.
	FaultDup
	// FaultReorder holds the frame back and emits it after the next data
	// frame, producing an out-of-order arrival.
	FaultReorder
	// FaultFlip writes the frame with one payload bit inverted (header CRC
	// already computed over the pristine payload), forcing a checksum
	// failure at the receiver. Empty payloads pass through unharmed.
	FaultFlip
	// FaultReset writes the frame, then hard-closes the connection with
	// SO_LINGER 0 so the peer sees a mid-stream RST.
	FaultReset
	// FaultDelay sleeps for Decision.Delay before writing.
	FaultDelay
)

// FaultDecision is one injector verdict for one outgoing data frame.
type FaultDecision struct {
	Action FaultAction
	// Delay applies to FaultDelay.
	Delay time.Duration
	// FlipBit is the payload bit index to invert for FaultFlip (taken
	// modulo the payload bit length).
	FlipBit uint64
}

// FaultInjector decides, per outgoing data frame, whether and how to
// corrupt the wire. Implementations must be safe for concurrent use (one
// writer goroutine per peer consults it) and deterministic for a fixed
// seed, so chaos runs are reproducible. internal/transport/faulty provides
// the seeded implementation; production runs leave it nil.
type FaultInjector interface {
	Outgoing(dst, tag, size int) FaultDecision
}
