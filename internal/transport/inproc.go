package transport

import (
	"fmt"
	"sync/atomic"
)

// Hub connects the ranks of one in-process world. Send delivers the
// payload slice to the destination's handler directly on the sender's
// goroutine — exactly the semantics of the original mailbox substrate:
// sends complete at post time, payloads travel by reference with zero
// copies, and ordering per (src, dst) pair is the sender's program order.
type Hub struct {
	size     int
	handlers []Handler
}

// NewHub creates a hub for a world of the given size. All endpoints must
// be attached (Endpoint) before the first Send.
func NewHub(size int) *Hub {
	if size <= 0 {
		panic("transport: hub size must be positive")
	}
	return &Hub{size: size, handlers: make([]Handler, size)}
}

// Endpoint attaches rank's delivery handler and returns its endpoint.
func (h *Hub) Endpoint(rank int, deliver Handler) Endpoint {
	if rank < 0 || rank >= h.size {
		panic(fmt.Sprintf("transport: endpoint rank %d out of range [0,%d)", rank, h.size))
	}
	if h.handlers[rank] != nil {
		panic(fmt.Sprintf("transport: endpoint for rank %d attached twice", rank))
	}
	h.handlers[rank] = deliver
	return &inprocEndpoint{hub: h, rank: rank}
}

type inprocEndpoint struct {
	hub    *Hub
	rank   int
	closed atomic.Bool
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.hub.size }

func (e *inprocEndpoint) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= e.hub.size {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	if uint32(tag) >= TagReserved {
		return fmt.Errorf("transport: tag %#x is in the reserved control namespace", tag)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	e.hub.handlers[dst](e.rank, tag, payload)
	return nil
}

func (e *inprocEndpoint) Close() error {
	e.closed.Store(true)
	return nil
}
