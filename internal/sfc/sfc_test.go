package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMortonRoundTrip(t *testing.T) {
	m := Morton{Bits: 5}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y, z := rng.Intn(32), rng.Intn(32), rng.Intn(32)
		gx, gy, gz := m.Coords(m.Index(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	h := Hilbert{Bits: 4}
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			for z := 0; z < 16; z++ {
				gx, gy, gz := h.Coords(h.Index(x, y, z))
				if gx != x || gy != y || gz != z {
					t.Fatalf("hilbert roundtrip (%d,%d,%d) -> (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
}

func TestHilbertBijective(t *testing.T) {
	h := Hilbert{Bits: 3}
	seen := make(map[uint64]bool)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				idx := h.Index(x, y, z)
				if idx >= 512 {
					t.Fatalf("index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d at (%d,%d,%d)", idx, x, y, z)
				}
				seen[idx] = true
			}
		}
	}
}

// TestHilbertAdjacency: consecutive Hilbert indices are face-adjacent
// blocks — the locality property motivating the SFC reindexing.
func TestHilbertAdjacency(t *testing.T) {
	h := Hilbert{Bits: 3}
	px, py, pz := h.Coords(0)
	for i := uint64(1); i < 512; i++ {
		x, y, z := h.Coords(i)
		d := abs(x-px) + abs(y-py) + abs(z-pz)
		if d != 1 {
			t.Fatalf("indices %d and %d are not adjacent: (%d,%d,%d) vs (%d,%d,%d)", i-1, i, px, py, pz, x, y, z)
		}
		px, py, pz = x, y, z
	}
}

func TestMortonLocalityVsRowMajor(t *testing.T) {
	// Average index distance between neighboring blocks should be smaller
	// for Hilbert than for row-major on a 8³ box — the reason the grid uses
	// an SFC ordering.
	n := 8
	hil := Hilbert{Bits: 3}
	row := RowMajor{NX: n, NY: n, NZ: n}
	// Locality metric: mean Manhattan distance between spatially consecutive
	// curve positions. Hilbert achieves the optimum (1.0 everywhere); the
	// row-major sweep jumps at every row end.
	meanStep := func(c Curve) float64 {
		total := uint64(n) * uint64(n) * uint64(n)
		px, py, pz := c.Coords(0)
		sum := 0.0
		for i := uint64(1); i < total; i++ {
			x, y, z := c.Coords(i)
			sum += float64(abs(x-px) + abs(y-py) + abs(z-pz))
			px, py, pz = x, y, z
		}
		return sum / float64(total-1)
	}
	dh, dr := meanStep(hil), meanStep(row)
	if dh >= dr {
		t.Errorf("Hilbert mean curve step %.2f not better than row-major %.2f", dh, dr)
	}
}

func TestRowMajorRoundTrip(t *testing.T) {
	r := RowMajor{NX: 3, NY: 5, NZ: 7}
	for z := 0; z < 7; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 3; x++ {
				gx, gy, gz := r.Coords(r.Index(x, y, z))
				if gx != x || gy != y || gz != z {
					t.Fatalf("rowmajor roundtrip failed at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestForBox(t *testing.T) {
	if _, ok := ForBox(8, 8, 8).(Hilbert); !ok {
		t.Error("cubic power-of-two box should use Hilbert")
	}
	if _, ok := ForBox(4, 2, 8).(RowMajor); !ok {
		t.Error("non-cubic box should use RowMajor")
	}
	if _, ok := ForBox(1, 1, 1).(RowMajor); !ok {
		t.Error("single block should use RowMajor")
	}
}

func TestEnumerateCoversBox(t *testing.T) {
	for _, dims := range [][3]int{{4, 4, 4}, {2, 3, 5}, {8, 8, 8}, {1, 1, 1}} {
		c := ForBox(dims[0], dims[1], dims[2])
		pts := Enumerate(c, dims[0], dims[1], dims[2])
		seen := make(map[[3]int]bool)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%v: duplicate %v", dims, p)
			}
			seen[p] = true
		}
		if len(pts) != dims[0]*dims[1]*dims[2] {
			t.Fatalf("%v: enumerated %d points", dims, len(pts))
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func absU(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
