package sfc

import (
	"fmt"
	"math"
)

// Partition splits the blocks of an nx x ny x nz box, taken in the order of
// curve c, into nranks contiguous chunks of near-equal size. It returns the
// cut points as a slice of length nranks+1: rank r owns curve positions
// [cuts[r], cuts[r+1]). Every block is owned exactly once, the chunks are
// contiguous along the curve, and for this uniform-cost split the chunk
// sizes differ by at most one block.
//
// The curve parameter documents (and pins) the enumeration the cut points
// index into; the cut positions themselves depend only on the block count.
func Partition(c Curve, nx, ny, nz, nranks int) []int {
	total := nx * ny * nz
	if nranks <= 0 || total < nranks {
		panic(fmt.Sprintf("sfc: cannot partition %d blocks (%dx%dx%d along %s) into %d ranks",
			total, nx, ny, nz, c.Name(), nranks))
	}
	cuts := make([]int, nranks+1)
	for r := 0; r <= nranks; r++ {
		cuts[r] = r * total / nranks
	}
	return cuts
}

// PartitionWeighted splits len(w) blocks with the given non-negative costs
// into nranks contiguous chunks whose cost sums track the uniform target
// sum(w)/nranks: the cut after chunk r is placed at the prefix position
// closest to the ideal prefix (r+1)·sum(w)/nranks, subject to every chunk
// holding at least one block. The result is deterministic — every rank
// computing it from the same weight vector derives the identical cuts, which
// is what lets the rebalancer skip a layout broadcast.
func PartitionWeighted(w []float64, nranks int) []int {
	n := len(w)
	if nranks <= 0 || n < nranks {
		panic(fmt.Sprintf("sfc: cannot partition %d weighted blocks into %d ranks", n, nranks))
	}
	var total float64
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("sfc: invalid block weight w[%d]=%v", i, x))
		}
		total += x
	}
	cuts := make([]int, nranks+1)
	cuts[nranks] = n
	i, acc := 0, 0.0
	for r := 0; r < nranks-1; r++ {
		cuts[r] = i
		target := total * float64(r+1) / float64(nranks)
		// Take one block unconditionally, then extend while the next block
		// brings the prefix at least as close to the ideal cut — leaving
		// every remaining rank at least one block.
		acc += w[i]
		i++
		limit := n - (nranks - r - 1)
		for i < limit && math.Abs(acc+w[i]-target) <= math.Abs(acc-target) {
			acc += w[i]
			i++
		}
	}
	cuts[nranks-1] = i
	return cuts
}
