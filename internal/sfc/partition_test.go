package sfc

import (
	"math/rand"
	"testing"
)

// checkCuts asserts the structural partition invariants: monotone cut
// points covering [0, total) — i.e. every curve position owned exactly once
// by exactly one contiguous chunk — with every chunk non-empty.
func checkCuts(t *testing.T, cuts []int, total, nranks int) {
	t.Helper()
	if len(cuts) != nranks+1 {
		t.Fatalf("got %d cut points, want %d", len(cuts), nranks+1)
	}
	if cuts[0] != 0 || cuts[nranks] != total {
		t.Fatalf("cuts %v do not span [0,%d]", cuts, total)
	}
	for r := 0; r < nranks; r++ {
		if cuts[r+1] <= cuts[r] {
			t.Fatalf("chunk %d empty or non-monotone: cuts %v", r, cuts)
		}
	}
}

func TestPartitionUniform(t *testing.T) {
	for _, tc := range []struct {
		nx, ny, nz, nranks int
	}{
		{1, 1, 1, 1}, {2, 2, 2, 2}, {2, 2, 2, 3}, {4, 4, 4, 5},
		{4, 4, 4, 64}, {3, 2, 5, 4}, {8, 8, 8, 7}, {2, 1, 2, 4},
	} {
		c := ForBox(tc.nx, tc.ny, tc.nz)
		cuts := Partition(c, tc.nx, tc.ny, tc.nz, tc.nranks)
		total := tc.nx * tc.ny * tc.nz
		checkCuts(t, cuts, total, tc.nranks)
		// Uniform cost: chunk sizes within ±1 block of each other.
		minSz, maxSz := total, 0
		for r := 0; r < tc.nranks; r++ {
			sz := cuts[r+1] - cuts[r]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("%dx%dx%d over %d ranks: chunk sizes span [%d,%d], want ±1 (cuts %v)",
				tc.nx, tc.ny, tc.nz, tc.nranks, minSz, maxSz, cuts)
		}
	}
}

func TestPartitionOwnsEveryBlockOnce(t *testing.T) {
	nx, ny, nz, nranks := 4, 4, 4, 5
	c := ForBox(nx, ny, nz)
	cuts := Partition(c, nx, ny, nz, nranks)
	order := Enumerate(c, nx, ny, nz)
	owned := make(map[[3]int]int)
	for r := 0; r < nranks; r++ {
		for i := cuts[r]; i < cuts[r+1]; i++ {
			owned[order[i]]++
		}
	}
	if len(owned) != nx*ny*nz {
		t.Fatalf("owned %d distinct blocks, want %d", len(owned), nx*ny*nz)
	}
	for b, cnt := range owned {
		if cnt != 1 {
			t.Errorf("block %v owned %d times", b, cnt)
		}
	}
}

func TestPartitionTooFewBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic partitioning 8 blocks into 9 ranks")
		}
	}()
	Partition(ForBox(2, 2, 2), 2, 2, 2, 9)
}

func TestPartitionWeightedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		nranks := 1 + rng.Intn(n)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		// A sprinkle of zero-cost blocks exercises the tie-handling.
		if trial%3 == 0 {
			w[rng.Intn(n)] = 0
		}
		cuts := PartitionWeighted(w, nranks)
		checkCuts(t, cuts, n, nranks)
	}
}

func TestPartitionWeightedUniformMatchesPartition(t *testing.T) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1
	}
	for nranks := 1; nranks <= 9; nranks++ {
		cuts := PartitionWeighted(w, nranks)
		checkCuts(t, cuts, len(w), nranks)
		minSz, maxSz := len(w), 0
		for r := 0; r < nranks; r++ {
			sz := cuts[r+1] - cuts[r]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("uniform weights over %d ranks: sizes span [%d,%d], want ±1 (cuts %v)",
				nranks, minSz, maxSz, cuts)
		}
	}
}

func TestPartitionWeightedSkewMovesCut(t *testing.T) {
	// One hot block at the front: the first chunk should shrink toward it.
	w := []float64{10, 1, 1, 1, 1, 1, 1, 1}
	cuts := PartitionWeighted(w, 2)
	checkCuts(t, cuts, len(w), 2)
	if cuts[1] > 2 {
		t.Errorf("hot front block: first chunk holds %d blocks, want ≤2 (cuts %v)", cuts[1], cuts)
	}
	// Deterministic: same inputs, same cuts.
	again := PartitionWeighted(w, 2)
	for i := range cuts {
		if cuts[i] != again[i] {
			t.Fatalf("non-deterministic cuts: %v vs %v", cuts, again)
		}
	}
}
