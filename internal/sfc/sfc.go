// Package sfc provides 3D space-filling curves for block reindexing.
//
// CUBISM-MPCF groups cells into 3D blocks and reindexes the blocks with a
// space-filling curve to increase spatial locality of the block sweep (paper
// §5, "Data reordering ... reindexing the blocks with a space-filling
// curve"). This package implements the Morton (Z-order) curve and the
// Hilbert curve, both with exact inverses, for domains of power-of-two edge
// length, plus a row-major fallback for arbitrary box shapes.
package sfc

import "fmt"

// Curve maps 3D block coordinates to a linear index and back.
type Curve interface {
	// Index returns the position of block (x,y,z) along the curve.
	Index(x, y, z int) uint64
	// Coords inverts Index.
	Coords(idx uint64) (x, y, z int)
	// Name identifies the curve.
	Name() string
}

// Morton is the Z-order curve over a 2^Bits-edge cube.
type Morton struct {
	// Bits is the number of bits per dimension (edge length 2^Bits).
	Bits uint
}

// Name implements Curve.
func (Morton) Name() string { return "morton" }

// spread3 inserts two zero bits between every bit of x (lowest Bits bits).
func spread3(x uint64, bits uint) uint64 {
	var r uint64
	for i := uint(0); i < bits; i++ {
		r |= ((x >> i) & 1) << (3 * i)
	}
	return r
}

// compact3 inverts spread3.
func compact3(x uint64, bits uint) uint64 {
	var r uint64
	for i := uint(0); i < bits; i++ {
		r |= ((x >> (3 * i)) & 1) << i
	}
	return r
}

// Index implements Curve.
func (m Morton) Index(x, y, z int) uint64 {
	return spread3(uint64(x), m.Bits) | spread3(uint64(y), m.Bits)<<1 | spread3(uint64(z), m.Bits)<<2
}

// Coords implements Curve.
func (m Morton) Coords(idx uint64) (x, y, z int) {
	return int(compact3(idx, m.Bits)), int(compact3(idx>>1, m.Bits)), int(compact3(idx>>2, m.Bits))
}

// Hilbert is the 3D Hilbert curve over a 2^Bits-edge cube. It offers better
// locality than Morton: successive indices are always face-adjacent blocks.
type Hilbert struct {
	Bits uint
}

// Name implements Curve.
func (Hilbert) Name() string { return "hilbert" }

// Index implements Curve using the Butz/Skilling transpose algorithm.
func (h Hilbert) Index(x, y, z int) uint64 {
	X := [3]uint64{uint64(x), uint64(y), uint64(z)}
	b := h.Bits
	// Inverse undo excess work (Skilling's AxestoTranspose).
	M := uint64(1) << (b - 1)
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < 3; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert
			} else { // exchange
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	var t uint64
	for Q := M; Q > 1; Q >>= 1 {
		if X[2]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
	// Interleave the transposed bits into a single index: bit (3*k+d) of the
	// result comes from bit k of axis (2-d) at the appropriate position.
	var idx uint64
	for k := uint(0); k < b; k++ {
		for d := 0; d < 3; d++ {
			bit := (X[d] >> (b - 1 - k)) & 1
			idx = (idx << 1) | bit
		}
	}
	return idx
}

// Coords implements Curve (Skilling's TransposetoAxes).
func (h Hilbert) Coords(idx uint64) (x, y, z int) {
	b := h.Bits
	var X [3]uint64
	// De-interleave.
	for k := uint(0); k < b; k++ {
		for d := 0; d < 3; d++ {
			bit := (idx >> (3*(b-1-k) + uint(2-d))) & 1
			X[d] |= bit << (b - 1 - k)
		}
	}
	N := uint64(2) << (b - 1)
	// Gray decode by H ^ (H/2)
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work
	for Q := uint64(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				tt := (X[0] ^ X[i]) & P
				X[0] ^= tt
				X[i] ^= tt
			}
		}
	}
	return int(X[0]), int(X[1]), int(X[2])
}

// RowMajor is the trivial curve for an arbitrary (possibly non-cubic,
// non-power-of-two) box of NX x NY x NZ blocks.
type RowMajor struct {
	NX, NY, NZ int
}

// Name implements Curve.
func (RowMajor) Name() string { return "rowmajor" }

// Index implements Curve.
func (r RowMajor) Index(x, y, z int) uint64 {
	return uint64((z*r.NY+y)*r.NX + x)
}

// Coords implements Curve.
func (r RowMajor) Coords(idx uint64) (x, y, z int) {
	i := int(idx)
	x = i % r.NX
	i /= r.NX
	y = i % r.NY
	z = i / r.NY
	return
}

// ForBox returns the best curve for an NX x NY x NZ box of blocks: a Hilbert
// curve when the box is a power-of-two cube (the production configuration,
// 32 blocks per dimension), otherwise row-major order.
func ForBox(nx, ny, nz int) Curve {
	if nx == ny && ny == nz && nx > 0 && nx&(nx-1) == 0 && nx > 1 {
		bits := uint(0)
		for 1<<bits < nx {
			bits++
		}
		return Hilbert{Bits: bits}
	}
	return RowMajor{NX: nx, NY: ny, NZ: nz}
}

// Enumerate returns the block coordinates of a box in curve order, skipping
// curve positions that fall outside the box (for curves defined on the
// enclosing power-of-two cube).
func Enumerate(c Curve, nx, ny, nz int) [][3]int {
	out := make([][3]int, 0, nx*ny*nz)
	switch cc := c.(type) {
	case RowMajor:
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					out = append(out, [3]int{x, y, z})
				}
			}
		}
		_ = cc
	default:
		// Walk the full curve of the enclosing cube and keep in-box points.
		edge := 1
		for edge < nx || edge < ny || edge < nz {
			edge <<= 1
		}
		total := uint64(edge) * uint64(edge) * uint64(edge)
		for i := uint64(0); i < total; i++ {
			x, y, z := c.Coords(i)
			if x < nx && y < ny && z < nz {
				out = append(out, [3]int{x, y, z})
			}
		}
	}
	if len(out) != nx*ny*nz {
		panic(fmt.Sprintf("sfc: enumerated %d of %d blocks", len(out), nx*ny*nz))
	}
	return out
}
