package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("RHS", 0, 0)
	sp.End() // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should report zero state")
	}
	out := tr.Export()
	if len(out.TraceEvents) != 0 {
		t.Fatal("nil tracer should export no events")
	}
	var zero Span
	zero.End() // zero span is inert
}

// TestTraceRoundTrip marshals a trace and checks the trace_event contract:
// valid ph/pid/tid/name fields and monotonic timestamps per track.
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	for step := 0; step < 3; step++ {
		for rank := 0; rank < 2; rank++ {
			sp := tr.StartSpan("RHS", rank, 0)
			time.Sleep(time.Microsecond)
			sp.End()
			wsp := tr.StartSpan("RHS.worker", rank, 1)
			wsp.End()
		}
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var out TraceFile
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	lastTS := map[[2]int]float64{}
	spans, meta := 0, 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		case "X":
			spans++
			if ev.Name == "" {
				t.Error("span with empty name")
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("negative ts/dur: %+v", ev)
			}
			key := [2]int{ev.PID, ev.TID}
			if ev.TS < lastTS[key] {
				t.Errorf("non-monotonic ts on track %v: %v after %v", key, ev.TS, lastTS[key])
			}
			lastTS[key] = ev.TS
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 12 {
		t.Errorf("expected 12 spans, got %d", spans)
	}
	// 2 ranks x (process_name + main thread_name + worker thread_name).
	if meta != 6 {
		t.Errorf("expected 6 metadata events, got %d", meta)
	}
}

// TestTracerConcurrent hammers the tracer from many goroutines; run under
// -race it proves concurrent worker spans do not corrupt the buffer.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartSpan("RHS.worker", 0, w)
				sp.End()
			}
		}(w)
	}
	// Concurrent export while spans are being recorded.
	for i := 0; i < 10; i++ {
		_ = tr.Export()
	}
	wg.Wait()
	if got := tr.Len(); got != workers*perWorker {
		t.Fatalf("expected %d spans, got %d", workers*perWorker, got)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s", 0, 0).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("expected buffer capped at 4, got %d", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("expected 6 dropped, got %d", tr.Dropped())
	}
}
