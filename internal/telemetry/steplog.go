package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// StepRecord is one structured step-log entry: the quantities the paper
// tracks per step (t, dt, per-kernel time, imbalance, dump bitrate) plus
// the Figure 5 diagnostics when they were computed that step.
type StepRecord struct {
	Step   int     `json:"step"`
	Time   float64 `json:"t"`
	DT     float64 `json:"dt"`
	WallMS float64 `json:"wall_ms"`
	// KernelMS is the wall-clock time each kernel spent during this step
	// (rank 0), in milliseconds.
	KernelMS map[string]float64 `json:"kernel_ms,omitempty"`
	// Imbalance is the cross-rank step-time statistic (tmax-tmin)/tavg.
	Imbalance float64 `json:"imbalance,omitempty"`
	// DumpRates maps dumped quantity to its compression rate (raw:encoded).
	DumpRates map[string]float64 `json:"dump_rates,omitempty"`
	// DumpMBps is the encoded dump bitrate in MB/s when this step dumped.
	DumpMBps float64 `json:"dump_mbps,omitempty"`

	// Figure 5 diagnostics, present on DiagEvery steps.
	HasDiag       bool    `json:"has_diag,omitempty"`
	MaxPressure   float64 `json:"max_p,omitempty"`
	WallPressure  float64 `json:"wall_p,omitempty"`
	KineticEnergy float64 `json:"kinetic_energy,omitempty"`
	EquivRadius   float64 `json:"equiv_radius,omitempty"`

	// Conservation-audit totals (∫dV of the conserved quantities), present
	// on AuditEvery steps; the verification subsystem tracks their drift.
	HasTotals   bool       `json:"has_totals,omitempty"`
	TotalMass   float64    `json:"total_mass,omitempty"`
	TotalMom    [3]float64 `json:"total_momentum,omitempty"`
	TotalEnergy float64    `json:"total_energy,omitempty"`
	GammaRange  [2]float64 `json:"gamma_range,omitempty"`
	PiRange     [2]float64 `json:"pi_range,omitempty"`
	NonFinite   int        `json:"non_finite,omitempty"`
}

// StepLogger writes StepRecords as JSON Lines. A nil *StepLogger discards
// records. The logger is safe for concurrent use.
type StepLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
	c   io.Closer
}

// NewStepLogger logs to w; if w is also an io.Closer, Close closes it.
func NewStepLogger(w io.Writer) *StepLogger {
	l := &StepLogger{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Log appends one record as a JSON line.
func (l *StepLogger) Log(rec StepRecord) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(rec)
}

// Close closes the underlying writer when it is closable.
func (l *StepLogger) Close() error {
	if l == nil || l.c == nil {
		return nil
	}
	return l.c.Close()
}
