package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "", nil)
	c.Inc()
	g := r.Gauge("g", "", nil)
	g.Set(1)
	h := r.Histogram("h", "", []float64{1}, nil)
	h.Observe(2)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatal("nil registry must render nothing")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mpcf_steps_total", "steps", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("mpcf_steps_total", "steps", nil); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("mpcf_dt_seconds", "dt", nil)
	g.Set(2.5)
	g.Add(0.5)
	if g.Value() != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", g.Value())
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: Prometheus
// buckets are cumulative with inclusive upper bounds (le).
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	upper, counts := h.Buckets()
	if len(upper) != 3 || len(counts) != 4 {
		t.Fatalf("unexpected shapes: %v %v", upper, counts)
	}
	// 0.05 and 0.1 land in le=0.1 (inclusive); 0.5 and 1.0 in le=1;
	// 5 in le=10; 100 in +Inf.
	want := []int64{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+5+100; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpcf_steps_total", "total steps", nil).Add(7)
	r.Gauge("mpcf_kernel_gflops", "kernel throughput", Labels{"kernel": "RHS"}).Set(12.5)
	r.Gauge("mpcf_kernel_gflops", "kernel throughput", Labels{"kernel": "UP"}).Set(3)
	h := r.Histogram("mpcf_step_latency_seconds", "step latency", []float64{0.5, 2}, nil)
	h.Observe(0.25)
	h.Observe(3)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE mpcf_steps_total counter\n",
		"mpcf_steps_total 7\n",
		"# TYPE mpcf_kernel_gflops gauge\n",
		`mpcf_kernel_gflops{kernel="RHS"} 12.5` + "\n",
		`mpcf_kernel_gflops{kernel="UP"} 3` + "\n",
		"# TYPE mpcf_step_latency_seconds histogram\n",
		`mpcf_step_latency_seconds_bucket{le="0.5"} 1` + "\n",
		`mpcf_step_latency_seconds_bucket{le="2"} 1` + "\n",
		`mpcf_step_latency_seconds_bucket{le="+Inf"} 2` + "\n",
		"mpcf_step_latency_seconds_sum 3.25\n",
		"mpcf_step_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// The TYPE header must appear exactly once per metric name even with
	// several label sets.
	if n := strings.Count(out, "# TYPE mpcf_kernel_gflops gauge"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

func TestHistogramLabelsExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("k_seconds", "", []float64{1}, Labels{"kernel": "RHS"})
	h.Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `k_seconds_bucket{kernel="RHS",le="1"} 1`) {
		t.Fatalf("labelled histogram bucket malformed:\n%s", buf.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "", nil).Inc()
				r.Gauge("g", "", Labels{"w": string(rune('a' + w))}).Add(1)
				r.Histogram("h", "", []float64{1, 2, 4}, nil).Observe(float64(i % 5))
			}
		}(w)
	}
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		r.WritePrometheus(&buf)
		_ = r.Snapshot()
	}
	wg.Wait()
	if r.Counter("c", "", nil).Value() != 8*500 {
		t.Fatal("lost counter increments")
	}
	if r.Histogram("h", "", []float64{1, 2, 4}, nil).Count() != 8*500 {
		t.Fatal("lost histogram observations")
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", nil).Add(3)
	r.Gauge("g", "", nil).Set(1.5)
	snap := r.Snapshot()
	if snap["c"] != int64(3) || snap["g"] != 1.5 {
		t.Fatalf("bad snapshot: %v", snap)
	}
	r.PublishExpvar("mpcf_test_reg")
	r.PublishExpvar("mpcf_test_reg") // idempotent, must not panic
}
