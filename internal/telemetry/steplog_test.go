package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestStepLoggerNil(t *testing.T) {
	var l *StepLogger
	if err := l.Log(StepRecord{Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStepLoggerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewStepLogger(&buf)
	recs := []StepRecord{
		{Step: 1, Time: 1e-6, DT: 1e-6, WallMS: 2.5,
			KernelMS: map[string]float64{"RHS": 2.0, "UP": 0.3}, Imbalance: 0.1},
		{Step: 2, Time: 2e-6, DT: 1e-6, WallMS: 2.4,
			DumpRates: map[string]float64{"p": 12.5}, DumpMBps: 80,
			HasDiag: true, MaxPressure: 1e7, EquivRadius: 0.2},
	}
	for _, r := range recs {
		if err := l.Log(r); err != nil {
			t.Fatal(err)
		}
	}
	sc := bufio.NewScanner(&buf)
	var got []StepRecord
	for sc.Scan() {
		var r StepRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line not valid JSON: %v", err)
		}
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(got))
	}
	if got[0].KernelMS["RHS"] != 2.0 || got[1].DumpRates["p"] != 12.5 || !got[1].HasDiag {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func TestStepLoggerConcurrent(t *testing.T) {
	var buf syncBuffer
	l := NewStepLogger(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := l.Log(StepRecord{Step: w*100 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	buf.mu.Lock()
	defer buf.mu.Unlock()
	sc := bufio.NewScanner(&buf.buf)
	lines := 0
	for sc.Scan() {
		var r StepRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("interleaved/corrupt line: %v", err)
		}
		lines++
	}
	if lines != 800 {
		t.Fatalf("expected 800 lines, got %d", lines)
	}
}
