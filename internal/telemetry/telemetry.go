// Package telemetry is the solver's observability layer: a low-overhead
// span tracer exporting Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto), a metrics registry with Prometheus text
// exposition and expvar publication, a structured JSONL step log, and an
// opt-in HTTP server that mounts /metrics, /debug/vars and /debug/pprof.
//
// The paper's evaluation (Tables 3-4, Figure 5) rests on per-kernel timing
// and imbalance measurements collected with IBM's Hardware Performance
// Monitor; this package is the reproduction's live counterpart. Every sink
// is nil-safe: a nil *Tracer, *Registry or *StepLogger turns the
// instrumentation call sites into a pointer check, so the hot loop pays
// nothing when telemetry is disabled.
package telemetry

// Set bundles the telemetry sinks threaded through the solver stack. A nil
// *Set (or any nil field) disables the corresponding instrumentation.
type Set struct {
	// Tracer records solver-phase spans (RHS, DT, UP, ghost exchange,
	// dump, checkpoint) for a Chrome trace_event timeline.
	Tracer *Tracer
	// Metrics receives counters, gauges and histograms (step latency,
	// per-kernel GFLOP/s) for /metrics and expvar.
	Metrics *Registry
	// StepLog receives one structured JSONL record per simulation step.
	StepLog *StepLogger
	// PeakGFLOPS, when positive, enables per-kernel peak-fraction gauges
	// (kernel GFLOP/s over this nominal machine peak).
	PeakGFLOPS float64
}

// GetTracer returns the tracer, tolerating a nil receiver.
func (s *Set) GetTracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// GetMetrics returns the registry, tolerating a nil receiver.
func (s *Set) GetMetrics() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// GetStepLog returns the step logger, tolerating a nil receiver.
func (s *Set) GetStepLog() *StepLogger {
	if s == nil {
		return nil
	}
	return s.StepLog
}
