package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mpcf_steps_total", "steps", nil).Add(3)
	reg.Gauge("mpcf_kernel_gflops", "", Labels{"kernel": "RHS"}).Set(9)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"mpcf_steps_total 3",
		`mpcf_kernel_gflops{kernel="RHS"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, "mpcf") {
		t.Errorf("/debug/vars status %d, body %q", code, body)
	}

	code, _ = get("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
