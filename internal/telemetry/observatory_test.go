package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRankBatchEncodeDecode(t *testing.T) {
	b := RankBatch{
		Rank: 3,
		Steps: []PhaseSample{{
			Step: 7, WallMS: 12.5,
			PhaseMS: map[string]float64{"RHS": 10, "halo_wait": 2.5},
		}},
		Spans:    []SpanRecord{{Name: "rhs", Rank: 3, Worker: 1, StartNS: 1000, DurNS: 500}},
		Counters: map[string]float64{"mpcf_net_bytes_sent": 4096},
	}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Rank != 3 || len(got.Steps) != 1 || len(got.Spans) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Steps[0].PhaseMS["halo_wait"] != 2.5 {
		t.Fatalf("phase lost: %+v", got.Steps[0])
	}
	if got.Spans[0] != b.Spans[0] {
		t.Fatalf("span mismatch: %+v", got.Spans[0])
	}
	if got.Counters["mpcf_net_bytes_sent"] != 4096 {
		t.Fatalf("counter lost: %+v", got.Counters)
	}
	if _, err := DecodeBatch([]byte("{nope")); err == nil {
		t.Fatal("want error on malformed batch")
	}
}

// TestMergedTraceTrackOrdering: the merged trace must carry one process
// (pid) per rank with its metadata emitted before any events, threads
// mapped from workers, and monotonic timestamps within each track —
// regardless of the arrival order of remote batches.
func TestMergedTraceTrackOrdering(t *testing.T) {
	a := NewAggregator(3)
	// Remote batches arrive out of order, rank 2 before rank 1, with spans
	// unsorted inside each batch.
	a.SetClockOffset(2, 1_000_000) // rank 2's clock runs 1ms ahead of rank 0
	a.AddBatch(RankBatch{Rank: 2, Spans: []SpanRecord{
		{Name: "rhs", Rank: 2, Worker: 1, StartNS: 5_000_000, DurNS: 100_000},
		{Name: "step", Rank: 2, Worker: 0, StartNS: 4_000_000, DurNS: 2_000_000},
	}})
	a.AddBatch(RankBatch{Rank: 1, Spans: []SpanRecord{
		{Name: "step", Rank: 1, Worker: 0, StartNS: 3_500_000, DurNS: 1_000_000},
	}})
	local := []SpanRecord{
		{Name: "step", Rank: 0, Worker: 0, StartNS: 3_000_000, DurNS: 1_500_000},
		{Name: "rhs", Rank: 0, Worker: 2, StartNS: 3_200_000, DurNS: 300_000},
	}
	tf := a.MergedTrace(local)

	// Metadata first: a process_name per rank and a thread_name per track.
	var metaEnd int
	procs := map[int]string{}
	threads := map[[2]int]string{}
	for i, ev := range tf.TraceEvents {
		if ev.Ph != "M" {
			metaEnd = i
			break
		}
		name, _ := ev.Args["name"].(string)
		switch ev.Name {
		case "process_name":
			procs[ev.PID] = name
		case "thread_name":
			threads[[2]int{ev.PID, ev.TID}] = name
		}
	}
	for _, ev := range tf.TraceEvents[metaEnd:] {
		if ev.Ph == "M" {
			t.Fatal("metadata interleaved with events")
		}
	}
	for pid, want := range map[int]string{0: "rank 0", 1: "rank 1", 2: "rank 2"} {
		if procs[pid] != want {
			t.Fatalf("pid %d process_name = %q, want %q", pid, procs[pid], want)
		}
	}
	for tr, want := range map[[2]int]string{
		{0, 0}: "main", {0, 2}: "worker 2", {1, 0}: "main",
		{2, 0}: "main", {2, 1}: "worker 1",
	} {
		if threads[tr] != want {
			t.Fatalf("track %v thread_name = %q, want %q", tr, threads[tr], want)
		}
	}

	// Events sorted by (pid, tid, ts); rank 2's spans re-based by -1ms.
	events := tf.TraceEvents[metaEnd:]
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.PID > b.PID || (a.PID == b.PID && a.TID > b.TID) ||
			(a.PID == b.PID && a.TID == b.TID && a.TS > b.TS) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
	for _, ev := range events {
		if ev.PID == 2 && ev.TID == 0 && ev.TS != 3000 { // 4ms - 1ms offset, in us
			t.Fatalf("rank 2 span not clock-aligned: ts = %v us, want 3000", ev.TS)
		}
	}
}

func TestImbalanceSingleRankIsZero(t *testing.T) {
	a := NewAggregator(1)
	a.AddSample(0, PhaseSample{Step: 1, WallMS: 10, PhaseMS: map[string]float64{"RHS": 9}})
	rep := a.Report()
	if rep.StepsObserved != 1 {
		t.Fatalf("steps observed = %d", rep.StepsObserved)
	}
	if got := rep.Run["RHS"].Imbalance; got != 0 {
		t.Fatalf("single rank imbalance = %v, want 0", got)
	}
	if rep.Steps[0].WallImbalance != 0 {
		t.Fatalf("single rank wall imbalance = %v, want 0", rep.Steps[0].WallImbalance)
	}
	if rep.Straggler != 0 {
		t.Fatalf("straggler = %d, want 0 (the only rank)", rep.Straggler)
	}
}

func TestImbalanceZeroDurationPhase(t *testing.T) {
	a := NewAggregator(2)
	for r := 0; r < 2; r++ {
		a.AddSample(r, PhaseSample{Step: 0, WallMS: 5, PhaseMS: map[string]float64{"ENC": 0}})
	}
	rep := a.Report()
	if got := rep.Run["ENC"].Imbalance; got != 0 {
		t.Fatalf("zero-duration phase imbalance = %v, want 0 (no NaN/Inf)", got)
	}
}

func TestImbalanceMaxOverAvg(t *testing.T) {
	a := NewAggregator(2)
	a.AddSample(0, PhaseSample{Step: 4, WallMS: 10, PhaseMS: map[string]float64{"RHS": 10, "halo_wait": 0}})
	a.AddSample(1, PhaseSample{Step: 4, WallMS: 30, PhaseMS: map[string]float64{"RHS": 12, "halo_wait": 18}})
	rep := a.Report()
	// Wall: max 30, avg 20 -> 50%.
	if got := rep.Steps[0].WallImbalance; got < 49.99 || got > 50.01 {
		t.Fatalf("wall imbalance = %v, want 50", got)
	}
	if rep.Steps[0].Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", rep.Steps[0].Straggler)
	}
	if rep.Steps[0].StragglerWait != "halo_wait" {
		t.Fatalf("straggler wait = %q, want halo_wait", rep.Steps[0].StragglerWait)
	}
	// halo_wait: max 18, avg 9 -> 100%.
	if got := rep.Steps[0].Phases["halo_wait"].Imbalance; got < 99.99 || got > 100.01 {
		t.Fatalf("halo_wait imbalance = %v, want 100", got)
	}
	if rep.Straggler != 1 || rep.StragglerWait != "halo_wait" {
		t.Fatalf("run straggler = %d/%q, want 1/halo_wait", rep.Straggler, rep.StragglerWait)
	}
}

// TestImbalanceMissingRankBatches: after a peer death the report must be
// computed over the ranks that did report, and count what is missing.
func TestImbalanceMissingRankBatches(t *testing.T) {
	a := NewAggregator(3)
	for _, r := range []int{0, 1} {
		a.AddSample(r, PhaseSample{Step: 0, WallMS: 10 + float64(r)*10,
			PhaseMS: map[string]float64{"RHS": 10}})
	}
	a.MarkMissing(2, 0)
	rep := a.Report()
	if rep.MissingBatches != 1 {
		t.Fatalf("missing = %d, want 1", rep.MissingBatches)
	}
	if rep.Steps[0].Ranks != 2 {
		t.Fatalf("reporting ranks = %d, want 2", rep.Steps[0].Ranks)
	}
	// max 20, avg 15 -> 33.3% over the surviving ranks.
	if got := rep.Steps[0].WallImbalance; got < 33.3 || got > 33.4 {
		t.Fatalf("wall imbalance over survivors = %v, want ~33.3", got)
	}
}

func TestReportTextAndCounters(t *testing.T) {
	a := NewAggregator(2)
	a.AddSample(0, PhaseSample{Step: 0, WallMS: 10, PhaseMS: map[string]float64{"RHS": 8, "ghost_exchange": 2}})
	a.AddSample(1, PhaseSample{Step: 0, WallMS: 14, PhaseMS: map[string]float64{"RHS": 8, "ghost_exchange": 6}})
	a.AddBatch(RankBatch{Rank: 1, Counters: map[string]float64{"mpcf_net_bytes_sent": 1 << 20}})
	var buf bytes.Buffer
	if err := a.Report().WriteText(&buf); err != nil {
		t.Fatalf("write text: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"2 ranks", "RHS", "ghost_exchange", "straggler: rank 1", "rank 1 net:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
	var js bytes.Buffer
	if err := a.Report().WriteJSON(&js); err != nil {
		t.Fatalf("write json: %v", err)
	}
	if !strings.Contains(js.String(), "\"imbalance_pct\"") {
		t.Fatalf("json missing imbalance_pct:\n%s", js.String())
	}
}

// TestAggregatorSpanLimit: the merge buffer must not grow without bound.
func TestAggregatorSpanLimit(t *testing.T) {
	a := NewAggregator(2)
	a.limit = 4
	spans := make([]SpanRecord, 6)
	for i := range spans {
		spans[i] = SpanRecord{Name: "s", Rank: 1, StartNS: int64(i)}
	}
	a.AddBatch(RankBatch{Rank: 1, Spans: spans})
	if len(a.spans) != 4 {
		t.Fatalf("buffered spans = %d, want 4", len(a.spans))
	}
	if a.Dropped() == 0 {
		t.Fatal("dropped counter not incremented")
	}
}
