package telemetry

// Clock-offset estimation between ranks, so spans recorded on a remote
// rank's tracer clock can be re-based onto rank 0's timeline in the merged
// trace. The protocol is the classic NTP ping-pong: rank 0 stamps a ping at
// t0 (its clock), the peer stamps the receive at t1 and the reply at t2
// (its clock), rank 0 stamps the reply arrival at t3. Then
//
//	offset θ = ((t1-t0) + (t2-t3)) / 2   (peer clock minus root clock)
//	rtt    δ = (t3-t0) - (t2-t1)         (pure wire time, both directions)
//
// θ is exact when the forward and return paths are symmetric; an asymmetry
// of Δ biases θ by Δ/2, which is bounded by δ/2. The estimator therefore
// keeps the sample with the smallest δ seen so far — queuing noise only
// ever inflates δ, so the minimum-δ sample is the one with the least room
// for asymmetric error (Cristian's algorithm / NTP's clock filter).

// ClockSample is one ping-pong measurement.
type ClockSample struct {
	OffsetNS int64 // peer clock minus root clock, at minimum observed RTT
	RTTNS    int64 // round-trip time of that sample
}

// ClockEstimator accumulates ping-pong samples for one peer and exposes
// the best (minimum-RTT) offset estimate. The zero value is ready to use.
type ClockEstimator struct {
	best ClockSample
	n    int
}

// Add folds in one ping-pong: t0/t3 on the root clock, t1/t2 on the peer
// clock (all nanoseconds). It returns the sample it derived.
func (e *ClockEstimator) Add(t0, t1, t2, t3 int64) ClockSample {
	s := ClockSample{
		OffsetNS: ((t1 - t0) + (t2 - t3)) / 2,
		RTTNS:    (t3 - t0) - (t2 - t1),
	}
	if e.n == 0 || s.RTTNS < e.best.RTTNS {
		e.best = s
	}
	e.n++
	return s
}

// Offset returns the current best estimate of (peer clock - root clock) in
// nanoseconds; 0 before any sample.
func (e *ClockEstimator) Offset() int64 { return e.best.OffsetNS }

// RTT returns the round-trip time of the best sample in nanoseconds.
func (e *ClockEstimator) RTT() int64 { return e.best.RTTNS }

// Samples returns the number of samples folded in.
func (e *ClockEstimator) Samples() int { return e.n }

// ErrorBound returns the worst-case error of the current offset estimate
// in nanoseconds: half the best sample's RTT (an adversarially asymmetric
// path can hide at most that much).
func (e *ClockEstimator) ErrorBound() int64 {
	if e.best.RTTNS < 0 {
		return 0
	}
	return e.best.RTTNS / 2
}
